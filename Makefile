# Local targets mirror .github/workflows/ci.yml exactly, so `make ci` is the
# same bar CI enforces.

GO ?= go
RACE_PKGS := ./internal/tsdb/... ./internal/api/... ./internal/lb/... ./internal/scrape/... ./internal/thanos/... ./internal/workpool/... ./internal/cluster/... ./internal/querycache/...

.PHONY: build test race wal-recovery querycache bench bench-querycache lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# The crash/corruption harness is randomized; run it twice, under race.
wal-recovery:
	$(GO) test -race -count=2 -run 'WAL|Checkpoint' ./internal/tsdb/ ./internal/relstore/

# Splice-correctness property test and cache concurrency, twice, under race.
querycache:
	$(GO) test -race -count=2 ./internal/querycache/

# Real measurements for BENCH_querycache.json (slow).
bench-querycache:
	$(GO) test -run '^$$' -bench QueryCache -benchmem -benchtime=2s ./internal/querycache/

# Full benchmark run (real measurements; slow).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One-iteration smoke pass so the bench suite can never silently rot.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

lint:
	$(GO) vet ./...
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi

ci: build lint test race wal-recovery querycache bench-smoke
	@echo "ci: all green"
