# Local targets mirror .github/workflows/ci.yml exactly, so `make ci` is the
# same bar CI enforces. `make ci-sync-check` (also a CI step) diffs the
# package lists between this file and ci.yml so they cannot drift.
# The storage stages these harnesses cover (head/WAL/blocks/downsampling)
# are mapped in docs/ARCHITECTURE.md; benchmark baselines in docs/BENCHMARKS.md.

GO ?= go
RACE_PKGS := ./internal/tsdb/... ./internal/api/... ./internal/lb/... ./internal/scrape/... ./internal/thanos/... ./internal/workpool/... ./internal/cluster/... ./internal/promql/... ./internal/promapi/... ./internal/querycache/... ./internal/remotewrite/... ./internal/telemetry/...

.PHONY: build test race wal-recovery querycache cluster-chaos remote-write telemetry blocks bench bench-querycache bench-smoke benchdiff ci-sync-check lint ci

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race $(RACE_PKGS)

# The crash/corruption harness is randomized; run it twice, under race.
# Covers the v2 (compressed) and mixed v1/v2 migration tests too — they all
# match 'WAL'.
wal-recovery:
	$(GO) test -race -count=2 -run 'WAL|Checkpoint' ./internal/tsdb/ ./internal/relstore/

# Splice-correctness property test and cache concurrency, twice, under race.
querycache:
	$(GO) test -race -count=2 ./internal/querycache/

# Cluster quorum/chaos/handoff harness: kill mid-scrape, partition,
# disk-full, WAL-backed rejoin — randomized, so two passes, under race.
# Set CHAOS_ARTIFACT_DIR to keep the per-node WAL dirs and replay-stats
# logs (CI uploads them on failure).
cluster-chaos:
	$(GO) test -race -count=2 -run 'Chaos|Quorum|Handoff|Tombstone|ReadRepair|Hint' ./internal/cluster/

# Remote-write ingest harness: framing torn/corruption byte sweeps,
# receiver backpressure and idempotent-retry tests, and the out-of-order
# window paths including the OOO WAL crash test — randomized, so two
# passes, under race.
remote-write:
	$(GO) test -race -count=2 -run 'RemoteWrite|Ingest|OOO' ./internal/remotewrite/ ./internal/promapi/ ./internal/tsdb/

# Self-telemetry suite: registry/trace unit tests plus the self-scrape
# e2e loop (a prometheus_sim-shaped harness scraping its own /metrics and
# range-querying the telemetry_ series back out) — twice, under race.
telemetry:
	$(GO) test -race -count=2 ./internal/telemetry/

# Block-store lifecycle harness (docs/ARCHITECTURE.md): block format
# round-trip/corruption tests, the kill-at-any-byte publication sweep,
# compaction/downsample crash-window recovery, and the downsampling
# equivalence property test — randomized, so two passes, under race. Set
# BLOCKS_ARTIFACT_DIR to keep the store directories of failing crash
# states (CI uploads them on failure).
blocks:
	$(GO) test -race -count=2 -run 'Block|Compact|Downsample' ./internal/tsdb/ ./internal/thanos/

# Real measurements for BENCH_querycache.json (slow).
bench-querycache:
	$(GO) test -run '^$$' -bench QueryCache -benchmem -benchtime=2s ./internal/querycache/

# Full benchmark run (real measurements; slow).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One-iteration smoke pass so the bench suite can never silently rot.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Benchmark-regression gate: re-runs the suites 5x and compares medians
# against the committed baselines (BENCH_*.json) with the
# confidence-interval rule (median ± 3×MAD overlap; flat 25% fallback for
# legacy entries). Slow; runs nightly in CI (.github/workflows/bench.yml)
# or on demand.
benchdiff:
	$(GO) run ./tools/benchdiff -count 5

# Guard against Makefile <-> ci.yml drift (race package lists, .PHONY).
ci-sync-check:
	./tools/ci_sync_check.sh

lint:
	$(GO) vet ./...
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi

ci: build lint ci-sync-check test race wal-recovery querycache cluster-chaos remote-write telemetry blocks bench-smoke
	@echo "ci: all green"
