// Command ceems_bench regenerates the paper's evaluation artifacts: every
// figure, table and headline claim has an experiment (see DESIGN.md's
// index) that runs the real stack over the simulated platform and prints
// the corresponding table or panel.
//
// Usage:
//
//	ceems_bench -list
//	ceems_bench -exp eq1
//	ceems_bench -exp all > report.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment id, or 'all'")
		list = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	ctx := context.Background()
	if *exp == "all" {
		if err := experiments.WriteAll(ctx, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	run, ok := experiments.Registry[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q (use -list)", *exp)
	}
	res, err := run(ctx)
	if err != nil {
		log.Fatalf("experiment %s: %v", *exp, err)
	}
	fmt.Println(res.Text)
}
