// Command cluster_sim runs the entire CEEMS stack end-to-end over a
// simulated HPC platform driven from one YAML config file (the paper's
// single-file configuration): simulated nodes, SLURM, exporters, TSDB,
// recording rules, Thanos, the API server, and the load balancer, with a
// synthetic 20k-jobs/day-style workload. It serves the Prometheus API
// (behind the LB) and the CEEMS API over HTTP and periodically prints the
// Fig. 2 dashboards.
//
// Usage:
//
//	cluster_sim -config ceems.yaml -accel 60 -duration 2h
//	cluster_sim -duration 1h            # built-in defaults
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/grafana"
	"repro/internal/lb"
	"repro/internal/model"
	"repro/internal/promapi"
	"repro/internal/relstore"
)

func main() {
	var (
		cfgPath    = flag.String("config", "", "YAML config file (empty uses defaults)")
		accel      = flag.Float64("accel", 120, "simulated seconds per wall second")
		duration   = flag.Duration("duration", time.Hour, "simulated duration to run")
		promListen = flag.String("prom-listen", ":9090", "Prometheus API (behind LB) listen address")
		apiListen  = flag.String("api-listen", ":9200", "CEEMS API server listen address")
		report     = flag.Duration("report", 10*time.Minute, "simulated interval between dashboard prints")
		walDir     = flag.String("wal-dir", "", "TSDB write-ahead-log directory; a restarted sim replays it (empty = memory-only head)")
		walComp    = flag.Bool("wal-compression", true, "write new WAL files in format v2 (Gorilla samples, block-compressed series); false keeps raw v1 records")
	)
	flag.Parse()

	cfg := config.Default()
	if *cfgPath != "" {
		var err error
		cfg, err = config.Load(*cfgPath)
		if err != nil {
			log.Fatalf("config: %v", err)
		}
	}
	topo := cluster.Topology{
		Name:             cfg.Cluster.Name,
		IntelNodes:       cfg.Sim.IntelNodes,
		AMDNodes:         cfg.Sim.AMDNodes,
		GPUIncludedNodes: cfg.Sim.GPUIncludedNodes,
		GPUExcludedNodes: cfg.Sim.GPUExcludedNodes,
		GPUsPerNode:      4,
		GPUKinds:         []model.GPUKind{model.GPUV100, model.GPUA100, model.GPUH100},
		Seed:             cfg.Sim.Seed,
	}
	opts := cluster.DefaultOptions()
	opts.ScrapeInterval = cfg.TSDB.ScrapeInterval
	opts.RuleInterval = cfg.TSDB.RuleInterval
	opts.UpdateInterval = cfg.APIServer.UpdateInterval
	opts.ShipInterval = cfg.Thanos.ShipInterval
	opts.ShortUnitCutoff = cfg.APIServer.ShortUnitCutoff
	opts.Zone = cfg.Cluster.Zone
	opts.WALDir = *walDir
	opts.WALCompression = *walComp

	sim, err := cluster.New(topo, opts, cfg.Sim.Users, cfg.Sim.Projects, cfg.Sim.JobsPerDay)
	if err != nil {
		log.Fatalf("sim: %v", err)
	}
	if ws, ok := sim.DB.WALStats(); ok {
		r := ws.Replay
		log.Printf("tsdb: wal replay: %d shards, %d segments, %d records, %d samples recovered, %d torn-tail repairs, in %v",
			r.Shards, r.Segments, r.Records, r.Samples, r.TornRepairs, r.Duration)
	}
	for _, admin := range cfg.APIServer.AdminUsers {
		sim.APIServer.AddAdmin(admin)
	}
	log.Printf("cluster_sim: %q with %d nodes (%d GPUs), %.0f jobs/day, %.0fx acceleration",
		topo.Name, topo.TotalNodes(), topo.TotalGPUs(), cfg.Sim.JobsPerDay, *accel)

	// HTTP endpoints: Prometheus API behind the LB, plus the CEEMS API.
	promHandler := (&promapi.Handler{Query: sim.Querier, Now: sim.Now}).Mux()
	promSrv := &http.Server{Addr: "127.0.0.1:0"}
	_ = promSrv
	go func() {
		// The raw backend listens on a derived port; the LB fronts it.
		backendAddr := "127.0.0.1:19090"
		go http.ListenAndServe(backendAddr, promHandler)
		b, err := lb.NewBackend("http://" + backendAddr)
		if err != nil {
			log.Fatalf("lb backend: %v", err)
		}
		sim.LB.Backends = []*lb.Backend{b}
		log.Printf("prometheus API via LB on %s (access controlled)", *promListen)
		log.Fatal(http.ListenAndServe(*promListen, sim.LB))
	}()
	go func() {
		log.Printf("CEEMS API on %s", *apiListen)
		log.Fatal(http.ListenAndServe(*apiListen, sim.APIServer.Handler()))
	}()

	ctx := context.Background()
	stepsPerWallSec := *accel / opts.ScrapeInterval.Seconds()
	if stepsPerWallSec <= 0 {
		stepsPerWallSec = 1
	}
	total := int(*duration / opts.ScrapeInterval)
	reportEvery := int(*report / opts.ScrapeInterval)
	sleep := time.Duration(float64(time.Second) / stepsPerWallSec)
	for i := 0; i < total; i++ {
		sim.Step(ctx)
		if reportEvery > 0 && i%reportEvery == reportEvery-1 {
			printReport(sim)
		}
		time.Sleep(sleep)
	}
	if err := sim.FinalizeUpdate(ctx); err != nil {
		log.Printf("final update: %v", err)
	}
	printReport(sim)
	for _, e := range sim.Errors {
		log.Printf("subsystem error: %s", e)
	}
}

func printReport(sim *cluster.Sim) {
	st := sim.Sched.Stats()
	ts := sim.DB.Stats()
	fmt.Printf("\n===== %s (simulated) =====\n", sim.Now().Format(time.RFC3339))
	fmt.Printf("jobs: %d pending / %d running / %d finished | tsdb: %d series, %d samples | cold blocks: %d\n",
		st.Pending, st.Running, st.Finished, ts.NumSeries, ts.NumSamples, sim.Cold.NumBlocks())
	// Top users table (Fig 2a shape).
	rows, err := sim.Store.Select("users", relstore.Query{OrderBy: "total_energy_j", Desc: true, Limit: 5})
	if err == nil && len(rows) > 0 {
		fmt.Println("top users by energy:")
		for _, r := range rows {
			fmt.Printf("  %-8v units=%-4v energy=%8.4f kWh  co2=%7.2f g\n",
				r["user"], r["num_units"], toF(r["total_energy_j"])/3.6e6, toF(r["emissions_g"]))
		}
	}
	_ = grafana.Sparkline // dashboards render in examples; keep import honest
	os.Stdout.Sync()
}

func toF(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	}
	return 0
}
