// Command cluster_sim runs the entire CEEMS stack end-to-end over a
// simulated HPC platform driven from one YAML config file (the paper's
// single-file configuration): simulated nodes, SLURM, exporters, TSDB,
// recording rules, Thanos, the API server, and the load balancer, with a
// synthetic 20k-jobs/day-style workload. It serves the Prometheus API
// (behind the LB) and the CEEMS API over HTTP and periodically prints the
// Fig. 2 dashboards.
//
// Usage:
//
//	cluster_sim -config ceems.yaml -accel 60 -duration 2h
//	cluster_sim -duration 1h            # built-in defaults
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints on the -pprof-addr listener
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/grafana"
	"repro/internal/lb"
	"repro/internal/model"
	"repro/internal/promapi"
	"repro/internal/relstore"
	"repro/internal/remotewrite"
	"repro/internal/scrape"
	"repro/internal/telemetry"
)

func main() {
	var (
		cfgPath    = flag.String("config", "", "YAML config file (empty uses defaults)")
		accel      = flag.Float64("accel", 120, "simulated seconds per wall second")
		duration   = flag.Duration("duration", time.Hour, "simulated duration to run")
		promListen = flag.String("prom-listen", ":9090", "Prometheus API (behind LB) listen address")
		apiListen  = flag.String("api-listen", ":9200", "CEEMS API server listen address")
		report     = flag.Duration("report", 10*time.Minute, "simulated interval between dashboard prints")
		walDir     = flag.String("wal-dir", "", "TSDB write-ahead-log directory; a restarted sim replays it (empty = memory-only head)")
		walComp    = flag.Bool("wal-compression", true, "write new WAL files in format v2 (Gorilla samples, block-compressed series); false keeps raw v1 records")
		nodes      = flag.Int("cluster-nodes", 1, "number of TSDB storage nodes; >1 runs the consistent-hash ring with quorum replication (per-node WALs under -wal-dir/<node>)")
		replFactor = flag.Int("replication-factor", 0, "ring replication factor R (copies per series); 0 picks min(3, cluster-nodes)")
		writeQ     = flag.Int("write-quorum", 0, "write quorum W (node acks before a scrape commit returns); 0 picks the majority R/2+1; reads need R-W+1 live replicas")
		chaos      = flag.String("chaos", "", "chaos scenario on the ring: kill | partition | diskfull (inject at 1/3 of the run, recover at 2/3; needs -cluster-nodes > 1)")
		hintLimit  = flag.Int("hint-limit", 0, "hinted-handoff queue bound per dead/partitioned node (drop-oldest past it); 0 keeps the default, -1 disables hinting")
		remoteWr   = flag.Bool("remote-write", false, "serve POST /api/v1/write on the Prometheus API: framed expofmt push ingest with 429 backpressure; clustered runs commit pushed samples with W-quorum semantics (see /api/v1/status/ingest)")
		rwMaxInf   = flag.Int("remote-write-max-inflight", 0, "max concurrently committing remote-write requests before 429 (0 = 2x GOMAXPROCS)")
		oooWin     = flag.Duration("ooo-window", 0, "accept samples up to this far behind each node's max time (remote-write retry tolerance); 0 keeps strict ordering")
		slowThr    = flag.Duration("slow-query-threshold", 0, "queries at or above this duration land in the slow-query ring at /api/v1/status/queries (0 disables the slow log; active-query tracking always on)")
		slowCap    = flag.Int("slow-query-capacity", 0, "slow-query ring size (0 = 128)")
		pprofAdr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables); kept off the query listeners so profiling is never exposed to query clients")
	)
	flag.Parse()

	cfg := config.Default()
	if *cfgPath != "" {
		var err error
		cfg, err = config.Load(*cfgPath)
		if err != nil {
			log.Fatalf("config: %v", err)
		}
	}
	topo := cluster.Topology{
		Name:             cfg.Cluster.Name,
		IntelNodes:       cfg.Sim.IntelNodes,
		AMDNodes:         cfg.Sim.AMDNodes,
		GPUIncludedNodes: cfg.Sim.GPUIncludedNodes,
		GPUExcludedNodes: cfg.Sim.GPUExcludedNodes,
		GPUsPerNode:      4,
		GPUKinds:         []model.GPUKind{model.GPUV100, model.GPUA100, model.GPUH100},
		Seed:             cfg.Sim.Seed,
	}
	opts := cluster.DefaultOptions()
	opts.ScrapeInterval = cfg.TSDB.ScrapeInterval
	opts.RuleInterval = cfg.TSDB.RuleInterval
	opts.UpdateInterval = cfg.APIServer.UpdateInterval
	opts.ShipInterval = cfg.Thanos.ShipInterval
	opts.ShortUnitCutoff = cfg.APIServer.ShortUnitCutoff
	opts.Zone = cfg.Cluster.Zone
	opts.WALDir = *walDir
	opts.WALCompression = *walComp
	opts.ClusterNodes = *nodes
	opts.ReplicationFactor = *replFactor
	opts.WriteQuorum = *writeQ
	opts.HintLimit = *hintLimit
	opts.OutOfOrderWindow = *oooWin
	// One registry for the whole process: the sim registers the TSDB (or
	// ring), scrape manager, and caches; /metrics on the Prometheus API
	// serves it for self-scraping.
	reg := telemetry.NewRegistry()
	telemetry.RegisterProcess(reg)
	opts.Telemetry = reg
	if *chaos != "" && *nodes <= 1 {
		log.Fatalf("-chaos %q needs -cluster-nodes > 1", *chaos)
	}

	sim, err := cluster.New(topo, opts, cfg.Sim.Users, cfg.Sim.Projects, cfg.Sim.JobsPerDay)
	if err != nil {
		log.Fatalf("sim: %v", err)
	}
	if sim.Ring != nil {
		log.Printf("cluster: %d-node ring, R=%d W=%d (reads need %d live replicas per owner group)",
			len(sim.Ring.MemberNames()), sim.Ring.R, sim.Ring.W, sim.Ring.R-sim.Ring.W+1)
		for _, n := range sim.Ring.MemberNames() {
			if ws, ok := sim.Ring.Member(n).DB().WALStats(); ok && ws.Replay.Samples > 0 {
				r := ws.Replay
				log.Printf("%s: wal replay: %d segments, %d samples recovered, %d torn-tail repairs, in %v",
					n, r.Segments, r.Samples, r.TornRepairs, r.Duration)
			}
		}
	} else if ws, ok := sim.DB.WALStats(); ok {
		r := ws.Replay
		log.Printf("tsdb: wal replay: %d shards, %d segments, %d records, %d samples recovered, %d torn-tail repairs, in %v",
			r.Shards, r.Segments, r.Records, r.Samples, r.TornRepairs, r.Duration)
	}
	for _, admin := range cfg.APIServer.AdminUsers {
		sim.APIServer.AddAdmin(admin)
	}
	log.Printf("cluster_sim: %q with %d nodes (%d GPUs), %.0f jobs/day, %.0fx acceleration",
		topo.Name, topo.TotalNodes(), topo.TotalGPUs(), cfg.Sim.JobsPerDay, *accel)

	// HTTP endpoints: Prometheus API behind the LB, plus the CEEMS API.
	// The query source is the thanos fan-in, or the quorum scatter-gather
	// when clustered — sim.Engine() picks the right one.
	_, qsrc := sim.Engine()
	promH := &promapi.Handler{
		Query: qsrc, Now: sim.Now,
		Metrics: reg,
		Queries: &telemetry.QueryLog{SlowThreshold: *slowThr, SlowCapacity: *slowCap},
	}
	if *remoteWr {
		rcv := &remotewrite.Receiver{MaxInflight: *rwMaxInf, Telemetry: reg}
		if sim.Ring != nil {
			// Pushed batches take the same W-quorum commit path as scrapes.
			rcv.NewBatch = func() scrape.Batch { return sim.Ring.NewBatch() }
		} else {
			rcv.NewBatch = func() scrape.Batch { return sim.DB.Appender() }
		}
		promH.Ingest = rcv
		log.Printf("remote-write ingest enabled (max in-flight %d, ooo window %v)", rcv.Stats().MaxInflight, *oooWin)
	}
	promHandler := promH.Mux()
	promSrv := &http.Server{Addr: "127.0.0.1:0"}
	_ = promSrv
	go func() {
		// The raw backend listens on a derived port; the LB fronts it.
		backendAddr := "127.0.0.1:19090"
		go http.ListenAndServe(backendAddr, promHandler)
		b, err := lb.NewBackend("http://" + backendAddr)
		if err != nil {
			log.Fatalf("lb backend: %v", err)
		}
		sim.LB.Backends = []*lb.Backend{b}
		// After Backends: the per-backend bridges close over the final list.
		// The LB then also answers /metrics itself from the same registry.
		sim.LB.InstrumentTelemetry(reg)
		log.Printf("prometheus API via LB on %s (access controlled)", *promListen)
		log.Fatal(http.ListenAndServe(*promListen, sim.LB))
	}()
	go func() {
		log.Printf("CEEMS API on %s", *apiListen)
		log.Fatal(http.ListenAndServe(*apiListen, sim.APIServer.Handler()))
	}()
	if *pprofAdr != "" {
		go func() {
			// net/http/pprof registered itself on DefaultServeMux; serve that
			// mux only here, never on the query listeners.
			log.Printf("pprof: serving on %s", *pprofAdr)
			log.Fatal(http.ListenAndServe(*pprofAdr, nil))
		}()
	}

	ctx := context.Background()
	stepsPerWallSec := *accel / opts.ScrapeInterval.Seconds()
	if stepsPerWallSec <= 0 {
		stepsPerWallSec = 1
	}
	total := int(*duration / opts.ScrapeInterval)
	reportEvery := int(*report / opts.ScrapeInterval)
	sleep := time.Duration(float64(time.Second) / stepsPerWallSec)
	// Chaos schedule: break one node a third of the way in, repair it at
	// two thirds, and let the final third prove convergence.
	injectAt, recoverAt := total/3, 2*total/3
	for i := 0; i < total; i++ {
		sim.Step(ctx)
		if *chaos != "" {
			if i == injectAt {
				injectChaos(sim, *chaos)
			}
			if i == recoverAt {
				recoverChaos(sim, *chaos)
			}
		}
		if reportEvery > 0 && i%reportEvery == reportEvery-1 {
			printReport(sim)
		}
		time.Sleep(sleep)
	}
	if err := sim.FinalizeUpdate(ctx); err != nil {
		log.Printf("final update: %v", err)
	}
	printReport(sim)
	for _, e := range sim.Errors {
		log.Printf("subsystem error: %s", e)
	}
}

// chaosVictim picks the highest-named ring member as the node to break.
func chaosVictim(sim *cluster.Sim) string {
	names := sim.Ring.MemberNames()
	return names[len(names)-1]
}

func injectChaos(sim *cluster.Sim, kind string) {
	victim := chaosVictim(sim)
	switch kind {
	case "kill":
		if err := sim.Ring.Kill(victim); err != nil {
			log.Printf("chaos: kill %s: %v", victim, err)
			return
		}
		log.Printf("chaos: killed %s mid-scrape; scrapes continue on W=%d acks", victim, sim.Ring.W)
	case "partition":
		sim.Ring.Partition(victim)
		log.Printf("chaos: partitioned %s from the coordinator", victim)
	case "diskfull":
		sim.Ring.SetDiskFull(victim, true)
		log.Printf("chaos: %s rejects writes (WAL disk full); it still serves reads", victim)
	default:
		log.Fatalf("unknown -chaos scenario %q (want kill | partition | diskfull)", kind)
	}
}

func recoverChaos(sim *cluster.Sim, kind string) {
	victim := chaosVictim(sim)
	switch kind {
	case "kill":
		replay, sync, err := sim.Ring.Rejoin(victim)
		if err != nil {
			log.Printf("chaos: rejoin %s: %v", victim, err)
			return
		}
		hs := sim.Ring.HintStats()
		log.Printf("chaos: %s rejoined: WAL replayed %d samples (%d series, %d torn-tail repairs), hints drained %d samples, handoff pulled %d missed samples from peers",
			victim, replay.Samples, replay.Series, replay.TornRepairs, hs.SamplesDrained, sync.SamplesApplied)
	case "partition":
		sim.Ring.Heal()
		if sync, err := sim.Ring.SyncNode(victim); err != nil {
			log.Printf("chaos: post-heal sync %s: %v", victim, err)
		} else {
			log.Printf("chaos: %s healed; anti-entropy repaired %d samples", victim, sync.SamplesApplied)
		}
	case "diskfull":
		sim.Ring.SetDiskFull(victim, false)
		if sync, err := sim.Ring.SyncNode(victim); err != nil {
			log.Printf("chaos: post-diskfull sync %s: %v", victim, err)
		} else {
			log.Printf("chaos: %s writable again; anti-entropy repaired %d samples", victim, sync.SamplesApplied)
		}
	}
}

func printReport(sim *cluster.Sim) {
	st := sim.Sched.Stats()
	fmt.Printf("\n===== %s (simulated) =====\n", sim.Now().Format(time.RFC3339))
	if sim.Ring != nil {
		var series int
		var samples uint64
		live := 0
		for _, n := range sim.Ring.MemberNames() {
			if db := sim.Ring.Member(n).DB(); db != nil {
				s := db.Stats()
				series += s.NumSeries
				samples += s.NumSamples
				live++
			}
		}
		fmt.Printf("jobs: %d pending / %d running / %d finished | ring: %d/%d nodes up, %d series, %d samples (replicated)\n",
			st.Pending, st.Running, st.Finished, live, len(sim.Ring.MemberNames()), series, samples)
		if hs := sim.Ring.HintStats(); hs.SamplesQueued+hs.SamplesDropped+hs.TombstonesQueued > 0 || hs.Pending > 0 {
			fmt.Printf("hints: %d queued / %d drained / %d dropped samples, %d tombstones, %d pending\n",
				hs.SamplesQueued, hs.SamplesDrained, hs.SamplesDropped, hs.TombstonesQueued, hs.Pending)
		}
		if rs := sim.Ring.Scatter().RepairStatsSnapshot(); rs.SeriesRepaired+rs.Dropped+rs.Errors > 0 {
			fmt.Printf("read-repair: %d series / %d samples back-filled, %d dropped, %d errors\n",
				rs.SeriesRepaired, rs.SamplesRepaired, rs.Dropped, rs.Errors)
		}
	} else {
		ts := sim.DB.Stats()
		fmt.Printf("jobs: %d pending / %d running / %d finished | tsdb: %d series, %d samples | cold blocks: %d\n",
			st.Pending, st.Running, st.Finished, ts.NumSeries, ts.NumSamples, sim.Cold.NumBlocks())
	}
	// Top users table (Fig 2a shape).
	rows, err := sim.Store.Select("users", relstore.Query{OrderBy: "total_energy_j", Desc: true, Limit: 5})
	if err == nil && len(rows) > 0 {
		fmt.Println("top users by energy:")
		for _, r := range rows {
			fmt.Printf("  %-8v units=%-4v energy=%8.4f kWh  co2=%7.2f g\n",
				r["user"], r["num_units"], toF(r["total_energy_j"])/3.6e6, toF(r["emissions_g"]))
		}
	}
	_ = grafana.Sparkline // dashboards render in examples; keep import honest
	os.Stdout.Sync()
}

func toF(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	}
	return 0
}
