// Command ceems_lb runs the CEEMS load balancer: a reverse proxy over one
// or more Prometheus/Thanos backends that enforces per-compute-unit access
// control by introspecting queries and verifying ownership against the
// CEEMS API server.
//
// Usage:
//
//	ceems_lb -listen :9091 -backends http://tsdb-a:9090,http://tsdb-b:9090 \
//	    -api-server http://ceems-api:9200 -strategy least-connection
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/lb"
	"repro/internal/querycache"
	"repro/internal/telemetry"
)

func main() {
	var (
		listen   = flag.String("listen", ":9091", "HTTP listen address")
		backends = flag.String("backends", "", "comma-separated backend base URLs (required)")
		apiURL   = flag.String("api-server", "", "CEEMS API server base URL for ownership checks (empty disables access control)")
		strategy = flag.String("strategy", "round-robin", "round-robin or least-connection")
		healthIv = flag.Duration("health-interval", 15*time.Second, "backend health check interval")
		queryTmo = flag.Duration("query-timeout", 2*time.Minute, "per-query proxy deadline covering ownership check and backend round-trip (0 disables)")
		cacheSz  = flag.Int64("cache-bytes", 32<<20, "response cache byte budget; repeat dashboard queries are served without hitting a backend (0 disables)")
		cacheTTL = flag.Duration("cache-ttl", lb.DefaultCacheTTL, "max staleness of cached responses whose window touches the present")
		cacheSet = flag.Duration("cache-settled-ttl", lb.DefaultCacheSettledTTL, "TTL for cached range responses whose window ended in the past")
		replFact = flag.Int("replication-factor", 0, "replication factor R of the TSDB cluster behind the LB; with -write-quorum derives the failover budget R-W (0 disables failover)")
		writeQ   = flag.Int("write-quorum", 0, "write quorum W of the cluster; reads tolerate R-W node losses, so GET/HEAD requests retry up to R-W other backends on transport error")
		retries  = flag.Int("proxy-retries", -1, "explicit failover budget for safe requests; overrides the R-W derivation when >= 0")
	)
	flag.Parse()
	if *backends == "" {
		log.Fatal("-backends required")
	}

	reg := telemetry.NewRegistry()
	telemetry.RegisterProcess(reg)
	balancer := &lb.LB{Strategy: lb.Strategy(*strategy), QueryTimeout: *queryTmo}
	switch {
	case *retries >= 0:
		balancer.ProxyRetries = *retries
	case *replFact > 0 && *writeQ > 0:
		if *writeQ > *replFact {
			log.Fatalf("-write-quorum %d exceeds -replication-factor %d", *writeQ, *replFact)
		}
		balancer.ProxyRetries = *replFact - *writeQ
	}
	if *cacheSz > 0 {
		balancer.Cache = querycache.New(querycache.Options{
			MaxBytes: *cacheSz, Telemetry: reg, Name: "lb",
		})
		balancer.CacheTTL = *cacheTTL
		balancer.CacheSettledTTL = *cacheSet
	}
	for _, raw := range strings.Split(*backends, ",") {
		b, err := lb.NewBackend(raw)
		if err != nil {
			log.Fatalf("backend: %v", err)
		}
		balancer.Backends = append(balancer.Backends, b)
	}
	if *apiURL != "" {
		balancer.Checker = &lb.HTTPChecker{BaseURL: *apiURL}
	} else {
		log.Print("warning: running WITHOUT access control (-api-server empty)")
	}
	// After Backends: the per-backend bridges close over the final list.
	balancer.InstrumentTelemetry(reg)
	go func() {
		tick := time.NewTicker(*healthIv)
		defer tick.Stop()
		for range tick.C {
			balancer.HealthCheck(context.Background())
		}
	}()

	log.Printf("ceems_lb: %d backends, strategy %s, failover budget %d, serving %s",
		len(balancer.Backends), *strategy, balancer.ProxyRetries, *listen)
	log.Fatal(http.ListenAndServe(*listen, balancer))
}
