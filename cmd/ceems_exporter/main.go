// Command ceems_exporter runs the CEEMS exporter on a simulated compute
// node: the node hardware (RAPL, IPMI, cgroups, optional GPUs) advances in
// real time with synthetic workloads, and the exporter serves /metrics
// over HTTP exactly as it would on a production node.
//
// Usage:
//
//	ceems_exporter -listen :9100 -class intel -workloads 4
//	ceems_exporter -listen :9100 -class gpuinc -auth-user ceems -auth-pass secret
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/exporter"
	"repro/internal/gpusim"
	"repro/internal/hw"
	"repro/internal/model"
)

func main() {
	var (
		listen    = flag.String("listen", ":9100", "HTTP listen address")
		class     = flag.String("class", "intel", "node class: intel, amd, gpuinc, gpuexc")
		nodeName  = flag.String("node", "node0", "node name")
		workloads = flag.Int("workloads", 4, "synthetic workloads to run")
		authUser  = flag.String("auth-user", "", "basic auth user (empty disables auth)")
		authPass  = flag.String("auth-pass", "", "basic auth password")
		disable   = flag.String("disable", "", "comma-separated collectors to disable")
	)
	flag.Parse()

	var spec hw.NodeSpec
	switch *class {
	case "intel":
		spec = hw.DefaultIntelSpec(*nodeName)
	case "amd":
		spec = hw.DefaultAMDSpec(*nodeName)
	case "gpuinc":
		spec = hw.DefaultGPUSpec(*nodeName, true, model.GPUA100, model.GPUA100, model.GPUA100, model.GPUA100)
	case "gpuexc":
		spec = hw.DefaultGPUSpec(*nodeName, false, model.GPUA100, model.GPUA100, model.GPUA100, model.GPUA100)
	default:
		fmt.Fprintf(os.Stderr, "unknown class %q\n", *class)
		os.Exit(2)
	}
	node, err := hw.NewNode(spec, time.Now())
	if err != nil {
		log.Fatalf("node: %v", err)
	}
	// Synthetic workloads keep the counters moving.
	for i := 0; i < *workloads; i++ {
		util := 0.3 + 0.15*float64(i%4)
		w := &hw.Workload{
			ID:       fmt.Sprintf("job_%d", i+1),
			CPUs:     spec.TotalCPUs() / (*workloads + 1),
			MemLimit: spec.MemBytes / int64(*workloads+1),
			CPUUtil:  func(time.Duration) float64 { return util },
		}
		if len(spec.GPUs) > 0 && i < len(spec.GPUs) {
			w.GPUOrdinals = []int{i}
			w.GPUUtil = func(time.Duration) float64 { return util + 0.2 }
		}
		if err := node.AddWorkload(w); err != nil {
			log.Fatalf("workload: %v", err)
		}
	}
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for range tick.C {
			node.Advance(time.Second)
		}
	}()

	cols := []exporter.Collector{
		&exporter.CgroupCollector{FS: node.FS, Layout: exporter.SlurmLayout()},
		&exporter.RAPLCollector{FS: node.FS},
		&exporter.IPMICollector{Reader: node},
		&exporter.NodeCollector{FS: node.FS},
	}
	if len(spec.GPUs) > 0 {
		cols = append(cols, &gpusim.DCGMCollector{Hostname: spec.Name, Devices: node})
	}
	exp := exporter.New(cols...)
	exp.Username = *authUser
	exp.Password = *authPass
	if *disable != "" {
		for _, name := range splitComma(*disable) {
			if err := exp.SetEnabled(name, false); err != nil {
				log.Fatalf("disable %s: %v", name, err)
			}
		}
	}
	log.Printf("ceems_exporter: %s node %q with %d workloads on %s (collectors: %v)",
		*class, *nodeName, *workloads, *listen, exp.CollectorNames())
	log.Fatal(http.ListenAndServe(*listen, exp))
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
