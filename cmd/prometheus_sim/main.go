// Command prometheus_sim plays the Prometheus role of the stack: it
// scrapes CEEMS exporters over HTTP, evaluates the CEEMS energy-estimation
// recording rules, and serves the Prometheus query API plus the JSON
// remote-read endpoint the standalone CEEMS API server consumes.
//
// Usage:
//
//	prometheus_sim -listen :9090 -targets node1:9100,node2:9100 -class intel
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints on the -pprof-addr listener
	"strings"
	"time"

	"repro/internal/promapi"
	"repro/internal/promql"
	"repro/internal/querycache"
	"repro/internal/remotewrite"
	"repro/internal/rules"
	"repro/internal/rules/ceemsrules"
	"repro/internal/scrape"
	"repro/internal/telemetry"
	"repro/internal/thanos"
	"repro/internal/tsdb"
)

func main() {
	var (
		listen   = flag.String("listen", ":9090", "HTTP listen address")
		targets  = flag.String("targets", "", "comma-separated exporter targets (host:port)")
		class    = flag.String("class", "intel", "nodeclass label for the scrape group")
		cluster  = flag.String("cluster", "sim", "cluster label")
		interval = flag.Duration("scrape-interval", 15*time.Second, "scrape interval")
		ruleInt  = flag.Duration("rule-interval", time.Minute, "rule evaluation interval")
		user     = flag.String("scrape-auth-user", "", "basic auth user for scraping")
		pass     = flag.String("scrape-auth-pass", "", "basic auth password for scraping")
		shards   = flag.Int("tsdb-shards", 0, "TSDB head shards (power of two; 0 = GOMAXPROCS)")
		queryTmo = flag.Duration("query-timeout", 2*time.Minute, "per-query evaluation deadline (0 disables)")
		walDir   = flag.String("wal-dir", "", "per-shard TSDB write-ahead-log directory; restarts replay it (empty = memory-only head)")
		walComp  = flag.Bool("wal-compression", true, "write new WAL files in format v2 (Gorilla samples, block-compressed series; ~3-4x fewer journal bytes); false keeps raw v1 records — existing files always replay either way")
		cacheSz  = flag.Int64("query-cache-bytes", 64<<20, "query-result cache byte budget; repeated dashboard range queries reuse cached steps and evaluate only the new tail (0 disables)")
		remoteWr = flag.Bool("remote-write", false, "serve POST /api/v1/write: framed expofmt push ingest with 429 backpressure (see /api/v1/status/ingest)")
		rwMaxInf = flag.Int("remote-write-max-inflight", 0, "max concurrently committing remote-write requests before 429 (0 = 2x GOMAXPROCS)")
		oooWin   = flag.Duration("ooo-window", 0, "accept samples up to this far behind the head max time (remote-write retry tolerance); 0 keeps strict ordering")
		slowThr  = flag.Duration("slow-query-threshold", 0, "queries at or above this duration land in the slow-query ring at /api/v1/status/queries (0 disables the slow log; active-query tracking always on)")
		slowCap  = flag.Int("slow-query-capacity", 0, "slow-query ring size (0 = 128)")
		pprofAdr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables); kept off the main listener so profiling is never exposed to query clients")
		blockDir = flag.String("blocks-dir", "", "persistent block store directory: the head is cut into immutable blocks every -block-range, compacted and downsampled in the background, and queries fan in over head + blocks (see docs/ARCHITECTURE.md); empty keeps the head-only lifecycle")
		blockRng = flag.Duration("block-range", 2*time.Hour, "block cut cadence; the head keeps 2x this after each cut so lookback windows never straddle a gap")
		compactN = flag.Int("compaction-factor", 0, "consecutive same-level blocks merged per compaction level (0 = 3); overlapping blocks always compact first regardless")
		downsmpl = flag.Bool("downsample", true, "maintain 5m/1h downsampled aggregates alongside raw blocks (cut after 2x/10x -block-range); hinted range queries then read sum/count/min/max points instead of raw chunks")
	)
	flag.Parse()
	if *targets == "" {
		log.Fatal("at least one -targets entry required")
	}

	// One registry for the whole process: tsdb, scrape, engine, caches and
	// ingest all register here, and /metrics serves it — the self-telemetry
	// loop our own scrape path can ingest.
	reg := telemetry.NewRegistry()
	telemetry.RegisterProcess(reg)

	opts := tsdb.DefaultOptions()
	opts.Shards = *shards
	opts.WALDir = *walDir
	opts.WALCompression = *walComp
	opts.OutOfOrderWindow = oooWin.Milliseconds()
	opts.Telemetry = reg
	db, err := tsdb.Open(opts)
	if err != nil {
		log.Fatalf("tsdb: %v", err)
	}
	if ws, ok := db.WALStats(); ok {
		r := ws.Replay
		log.Printf("tsdb: wal replay: %d shards, %d segments, %d records, %d samples (%d series) recovered, %d torn-tail repairs, in %v",
			r.Shards, r.Segments, r.Records, r.Samples, r.Series, r.TornRepairs, r.Duration)
	}
	sm := &scrape.Manager{
		Dest:     db,
		Fetcher:  &scrape.HTTPFetcher{Username: *user, Password: *pass},
		NewBatch: func() scrape.Batch { return db.Appender() },
		Groups: []*scrape.TargetGroup{{
			JobName:  "ceems",
			Targets:  strings.Split(*targets, ","),
			Labels:   map[string]string{"nodeclass": *class, "cluster": *cluster},
			Interval: *interval,
		}},
	}
	sm.InstrumentTelemetry(reg)
	ropts := ceemsrules.DefaultOptions()
	ropts.Interval = *ruleInt
	rm := &rules.Manager{
		Engine: rules.NewEngine(nil), Query: db, Dest: db,
		Groups:  ceemsrules.AllGroups(ropts),
		OnError: func(err error) { log.Printf("rules: %v", err) },
	}
	ctx := context.Background()
	go sm.Run(ctx)
	go rm.Run(ctx)

	// Block-store lifecycle: ship head cuts into the cold store on a
	// ticker, compact and downsample in the same pass, and serve queries
	// through the hot/cold fan-in querier so dashboards never notice the
	// seam. Without -blocks-dir the head (plus its WAL) is the only store.
	var queryable promql.Queryable = db
	if *blockDir != "" {
		store, err := thanos.NewStore(*blockDir)
		if err != nil {
			log.Fatalf("blocks: %v", err)
		}
		store.CompactionFactor = *compactN
		store.Instrument(reg)
		log.Printf("blocks: store %s opened with %d blocks, cutting every %v", *blockDir, store.NumBlocks(), *blockRng)
		sc := &thanos.Sidecar{DB: db, Store: store, HeadRetention: 2 * *blockRng}
		queryable = &thanos.Querier{Hot: db, Cold: store}
		go func() {
			tick := time.NewTicker(*blockRng)
			defer tick.Stop()
			for now := range tick.C {
				if err := sc.Ship(now); err != nil {
					log.Printf("blocks: ship: %v", err)
					continue
				}
				if n, err := store.Compact(db.Tombstones()); err != nil {
					log.Printf("blocks: compact: %v", err)
				} else if n > 0 {
					log.Printf("blocks: compacted %d block sets", n)
				}
				if *downsmpl {
					for _, lvl := range []struct {
						age time.Duration
						res time.Duration
					}{{2 * *blockRng, 5 * time.Minute}, {10 * *blockRng, time.Hour}} {
						n, err := store.Downsample(now.Add(-lvl.age).UnixMilli(), lvl.res)
						if err != nil {
							log.Printf("blocks: downsample %v: %v", lvl.res, err)
						} else if n > 0 {
							log.Printf("blocks: downsampled %d blocks to %v", n, lvl.res)
						}
					}
				}
			}
		}()
	}

	eng := promql.NewEngine()
	eng.InstrumentTelemetry(reg)
	h := &promapi.Handler{
		Engine:  eng,
		Query:   queryable,
		Timeout: *queryTmo,
		Metrics: reg,
		Queries: &telemetry.QueryLog{SlowThreshold: *slowThr, SlowCapacity: *slowCap},
	}
	if *remoteWr {
		h.Ingest = &remotewrite.Receiver{
			NewBatch:    func() scrape.Batch { return db.Appender() },
			MaxInflight: *rwMaxInf,
			Telemetry:   reg,
		}
	}
	if *cacheSz > 0 {
		h.Cache = querycache.New(querycache.Options{
			MaxBytes:  *cacheSz,
			Head:      db,
			Lookback:  eng.LookbackDelta,
			MaxSteps:  eng.MaxSteps,
			Telemetry: reg,
			Name:      "promapi",
		})
	}
	if *pprofAdr != "" {
		go func() {
			// net/http/pprof registered itself on DefaultServeMux; serve that
			// mux only here, never on the query listener.
			log.Printf("pprof: serving on %s", *pprofAdr)
			log.Fatal(http.ListenAndServe(*pprofAdr, nil))
		}()
	}
	log.Printf("prometheus_sim: scraping %s (class %s) every %v, serving %s (query cache %d bytes)",
		*targets, *class, *interval, *listen, *cacheSz)
	log.Fatal(http.ListenAndServe(*listen, h.Mux()))
}
