// Command ceems_api_server runs the CEEMS API server standalone: it polls
// a slurmdbd endpoint for compute units, aggregates their metrics from a
// Prometheus backend via remote read, stores everything in its relational
// DB (with WAL and optional continuous backup), and serves the REST API.
//
// Usage:
//
//	ceems_api_server -listen :9200 -slurmdbd http://dbd:6819 \
//	    -prometheus http://tsdb:9090 -data-dir /var/lib/ceems \
//	    -backup-dir /backup/ceems -admins root,ops
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/emissions"
	"repro/internal/promapi"
	"repro/internal/relstore"
	"repro/internal/resourcemanager"
)

func main() {
	var (
		listen    = flag.String("listen", ":9200", "HTTP listen address")
		dbd       = flag.String("slurmdbd", "", "slurmdbd base URL (required)")
		prom      = flag.String("prometheus", "", "Prometheus/Thanos base URL for remote read (required)")
		cluster   = flag.String("cluster", "sim", "cluster name")
		zone      = flag.String("zone", "FR", "emission factor zone")
		dataDir   = flag.String("data-dir", "", "DB directory (empty = in-memory)")
		backupDir = flag.String("backup-dir", "", "continuous backup directory (empty disables)")
		interval  = flag.Duration("update-interval", 5*time.Minute, "aggregate update interval")
		cutoff    = flag.Duration("short-unit-cutoff", time.Minute, "TSDB cleanup cutoff (informational; cleanup needs an embedded TSDB)")
		admins    = flag.String("admins", "", "comma-separated admin users")
	)
	flag.Parse()
	if *dbd == "" || *prom == "" {
		log.Fatal("-slurmdbd and -prometheus are required")
	}
	_ = cutoff

	store, err := relstore.Open(*dataDir)
	if err != nil {
		log.Fatalf("store: %v", err)
	}
	defer store.Close()
	for _, s := range api.Schemas() {
		if err := store.CreateTable(s); err != nil {
			log.Fatalf("schema: %v", err)
		}
	}
	updater := &api.Updater{
		Store: store,
		Fetchers: []resourcemanager.Fetcher{
			&resourcemanager.SlurmDBD{Cluster: *cluster, BaseURL: *dbd},
		},
		Query:  &promapi.RemoteQueryable{BaseURL: *prom},
		Factor: &emissions.Cached{Provider: emissions.OWID{}},
		Zone:   *zone,
	}
	server := &api.Server{Store: store, Updater: updater}
	for _, a := range strings.Split(*admins, ",") {
		if a != "" {
			if err := server.AddAdmin(a); err != nil {
				log.Fatalf("admin %s: %v", a, err)
			}
		}
	}

	var backup func() error
	if *backupDir != "" {
		if *dataDir == "" {
			log.Fatal("-backup-dir requires -data-dir")
		}
		rep := &relstore.Replica{DB: store, Dir: *backupDir}
		backup = func() error {
			if err := store.Checkpoint(); err != nil {
				return err
			}
			return rep.Sync()
		}
	}
	go api.RunPeriodic(context.Background(), updater, *interval, backup)

	log.Printf("ceems_api_server: cluster %s, slurmdbd %s, prometheus %s, serving %s",
		*cluster, *dbd, *prom, *listen)
	log.Fatal(http.ListenAndServe(*listen, server.Handler()))
}
