package workpool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoCoversAll(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		Do(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, got)
			}
		}
	}
}

func TestDoEmpty(t *testing.T) {
	called := false
	Do(0, 4, func(int) { called = true })
	Do(-3, 4, func(int) { called = true })
	if called {
		t.Error("f called for n <= 0")
	}
}

func TestDoSequentialWhenOneWorker(t *testing.T) {
	// With workers=1 the calls must run on the caller's goroutine in order.
	var order []int
	Do(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("order = %v", order)
	}
}

func TestDoBoundsWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	var inflight, peak atomic.Int32
	Do(64, 4, func(int) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inflight.Add(-1)
	})
	if p := peak.Load(); p > 4 {
		t.Errorf("peak concurrency %d > 4 (GOMAXPROCS %d)", p, prev)
	}
}
