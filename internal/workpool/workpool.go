// Package workpool provides the bounded fan-out primitive shared by the
// TSDB shard querier and the scrape manager: run f(0..n-1) on a fixed pool
// of workers and wait for all of them.
package workpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// tasks counts every f(i) invocation ever dispatched through Do. It exists
// so tests can assert that a code path really fanned out through the pool
// (the counting-pool pattern); one atomic add per task is noise next to the
// work each task performs.
var tasks atomic.Uint64

// Tasks returns the monotonic count of task invocations dispatched through
// Do since process start.
func Tasks() uint64 { return tasks.Load() }

// Do invokes f(i) for every i in [0, n) from at most `workers` goroutines
// and returns when all calls have finished. workers <= 0 means GOMAXPROCS;
// the pool is always clamped to n. With one worker (or n == 1) f runs
// inline on the caller's goroutine, preserving sequential semantics.
func Do(n, workers int, f func(i int)) {
	if n <= 0 {
		return
	}
	tasks.Add(uint64(n))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
