package labels

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestFromMapSorted(t *testing.T) {
	ls := FromMap(map[string]string{"z": "1", "a": "2", "m": "3"})
	if !sort.IsSorted(ls) {
		t.Fatalf("labels not sorted: %v", ls)
	}
	if got := ls.Get("a"); got != "2" {
		t.Errorf("Get(a) = %q, want 2", got)
	}
	if got := ls.Get("missing"); got != "" {
		t.Errorf("Get(missing) = %q, want empty", got)
	}
}

func TestFromStrings(t *testing.T) {
	ls := FromStrings(MetricName, "up", "job", "node")
	if ls.Name() != "up" {
		t.Errorf("Name() = %q, want up", ls.Name())
	}
	if ls.Get("job") != "node" {
		t.Errorf("Get(job) = %q", ls.Get("job"))
	}
}

func TestFromStringsPanicsOnOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd arg count")
		}
	}()
	FromStrings("a")
}

func TestNewDeduplicates(t *testing.T) {
	ls := New(Label{"a", "1"}, Label{"a", "2"})
	if len(ls) != 1 || ls.Get("a") != "2" {
		t.Fatalf("New dedup failed: %v", ls)
	}
}

func TestEqualAndCompare(t *testing.T) {
	a := FromStrings("a", "1", "b", "2")
	b := FromStrings("a", "1", "b", "2")
	c := FromStrings("a", "1", "b", "3")
	if !a.Equal(b) {
		t.Error("a should equal b")
	}
	if a.Equal(c) {
		t.Error("a should not equal c")
	}
	if Compare(a, c) >= 0 {
		t.Error("a should sort before c")
	}
	if Compare(c, a) <= 0 {
		t.Error("c should sort after a")
	}
	if Compare(a, b) != 0 {
		t.Error("equal sets should compare 0")
	}
	d := FromStrings("a", "1")
	if Compare(d, a) >= 0 {
		t.Error("shorter prefix should sort first")
	}
}

func TestHashDistinguishes(t *testing.T) {
	a := FromStrings("a", "1", "b", "2")
	b := FromStrings("a", "12", "b", "") // would collide with naive concat
	if a.Hash() == b.Hash() {
		t.Error("hash collision between distinct label sets")
	}
	// Separator safety: {"a":"1b","":"2"} vs {"a":"1","b":"2"}.
	c := FromStrings("a", "1\xffb", "b", "2")
	if a.Hash() == c.Hash() {
		t.Error("hash collision via separator byte")
	}
}

func TestHashForWithout(t *testing.T) {
	a := FromStrings(MetricName, "m", "job", "x", "instance", "1")
	b := FromStrings(MetricName, "m2", "job", "x", "instance", "2")
	if a.HashFor("job") != b.HashFor("job") {
		t.Error("HashFor(job) should match for same job value")
	}
	if a.HashWithout("instance") != b.HashWithout("instance") {
		t.Error("HashWithout(instance) should ignore name and instance")
	}
	if a.HashFor("instance") == b.HashFor("instance") {
		t.Error("HashFor(instance) should differ")
	}
}

func TestWithoutKeepNames(t *testing.T) {
	a := FromStrings(MetricName, "m", "job", "x", "instance", "1")
	w := a.WithoutNames("instance")
	if w.Has("instance") || w.Has(MetricName) {
		t.Errorf("WithoutNames left names behind: %v", w)
	}
	if !w.Has("job") {
		t.Error("WithoutNames dropped job")
	}
	k := a.KeepNames("job")
	if len(k) != 1 || k.Get("job") != "x" {
		t.Errorf("KeepNames = %v", k)
	}
}

func TestBuilder(t *testing.T) {
	base := FromStrings("a", "1", "b", "2")
	ls := NewBuilder(base).Set("c", "3").Del("a").Set("b", "9").Labels()
	want := FromStrings("b", "9", "c", "3")
	if !ls.Equal(want) {
		t.Errorf("builder = %v, want %v", ls, want)
	}
	// Setting empty deletes.
	ls2 := NewBuilder(base).Set("a", "").Labels()
	if ls2.Has("a") {
		t.Error("Set(a, \"\") should delete a")
	}
	// Base unchanged.
	if !base.Equal(FromStrings("a", "1", "b", "2")) {
		t.Error("builder mutated base")
	}
}

func TestMatchers(t *testing.T) {
	cases := []struct {
		t       MatchType
		val     string
		in      string
		matches bool
	}{
		{MatchEqual, "x", "x", true},
		{MatchEqual, "x", "y", false},
		{MatchNotEqual, "x", "y", true},
		{MatchRegexp, "a.*", "abc", true},
		{MatchRegexp, "a.*", "zabc", false}, // anchored
		{MatchNotRegexp, "a.*", "zzz", true},
		{MatchRegexp, "", "", true},
		{MatchEqual, "", "", true}, // absent label matches empty
	}
	for _, c := range cases {
		m, err := NewMatcher(c.t, "l", c.val)
		if err != nil {
			t.Fatalf("NewMatcher: %v", err)
		}
		if got := m.Matches(c.in); got != c.matches {
			t.Errorf("%v on %q = %v, want %v", m, c.in, got, c.matches)
		}
	}
}

func TestMatcherBadRegexp(t *testing.T) {
	if _, err := NewMatcher(MatchRegexp, "l", "("); err == nil {
		t.Error("expected error for bad regexp")
	}
}

func TestMatchLabels(t *testing.T) {
	ls := FromStrings(MetricName, "up", "job", "node", "instance", "n1")
	ok := MatchLabels(ls,
		MustMatcher(MatchEqual, MetricName, "up"),
		MustMatcher(MatchRegexp, "instance", "n.+"),
	)
	if !ok {
		t.Error("expected match")
	}
	// Matcher on absent label sees "".
	if !MatchLabels(ls, MustMatcher(MatchEqual, "ghost", "")) {
		t.Error("absent label should match empty equality")
	}
	if MatchLabels(ls, MustMatcher(MatchEqual, "job", "other")) {
		t.Error("unexpected match")
	}
}

func TestStringFormat(t *testing.T) {
	ls := FromStrings(MetricName, "up", "job", "n")
	if got := ls.String(); got != `up{job="n"}` {
		t.Errorf("String() = %q", got)
	}
}

// Property: FromMap(ls.Map()) round-trips any label set.
func TestMapRoundTripProperty(t *testing.T) {
	f := func(m map[string]string) bool {
		ls := FromMap(m)
		return ls.Equal(FromMap(ls.Map()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Hash equality follows from Equal; Compare is antisymmetric.
func TestHashCompareProperty(t *testing.T) {
	f := func(a, b map[string]string) bool {
		la, lb := FromMap(a), FromMap(b)
		if la.Equal(lb) && la.Hash() != lb.Hash() {
			return false
		}
		if Compare(la, lb) != -Compare(lb, la) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Copy is independent of the original.
func TestCopyIndependent(t *testing.T) {
	a := FromStrings("a", "1", "b", "2")
	c := a.Copy()
	c[0].Value = "mutated"
	if a.Get("a") != "1" {
		t.Error("Copy shares backing array")
	}
}
