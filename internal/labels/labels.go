// Package labels implements immutable metric label sets, matchers and
// hashing, modelled after the Prometheus data model. A Labels value is a
// sorted list of name/value pairs; the metric name itself is carried under
// the reserved label name "__name__".
package labels

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Inlined FNV-1a, byte-identical to hash/fnv's 64a variant. The stdlib
// hash.Hash64 interface forces a []byte conversion (an allocation) per
// Write; hashing label sets is on the append, query-merge and aggregation
// hot paths, so these helpers keep it allocation-free.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvAddString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fnvAddSep(h uint64) uint64 {
	h ^= 0xFF
	h *= fnvPrime64
	return h
}

// MetricName is the reserved label name holding the metric name.
const MetricName = "__name__"

// Label is a single name/value pair.
type Label struct {
	Name  string
	Value string
}

// Labels is a sorted (by name) set of labels. The zero value is the empty
// label set. Labels must be treated as immutable once built.
type Labels []Label

// New returns a sorted label set from the given pairs. Duplicate names keep
// the last value.
func New(ls ...Label) Labels {
	set := make(map[string]string, len(ls))
	for _, l := range ls {
		set[l.Name] = l.Value
	}
	return FromMap(set)
}

// FromMap builds a sorted Labels from a map.
func FromMap(m map[string]string) Labels {
	ls := make(Labels, 0, len(m))
	for n, v := range m {
		ls = append(ls, Label{Name: n, Value: v})
	}
	sort.Sort(ls)
	return ls
}

// FromStrings builds Labels from alternating name, value strings. It panics
// on an odd number of arguments; this is a programmer error.
func FromStrings(ss ...string) Labels {
	if len(ss)%2 != 0 {
		panic("labels.FromStrings: odd number of arguments")
	}
	ls := make(Labels, 0, len(ss)/2)
	for i := 0; i < len(ss); i += 2 {
		ls = append(ls, Label{Name: ss[i], Value: ss[i+1]})
	}
	sort.Sort(ls)
	return ls
}

func (ls Labels) Len() int           { return len(ls) }
func (ls Labels) Swap(i, j int)      { ls[i], ls[j] = ls[j], ls[i] }
func (ls Labels) Less(i, j int) bool { return ls[i].Name < ls[j].Name }

// Get returns the value of the label with the given name, or "".
func (ls Labels) Get(name string) string {
	// Binary search: labels are sorted by name.
	i := sort.Search(len(ls), func(i int) bool { return ls[i].Name >= name })
	if i < len(ls) && ls[i].Name == name {
		return ls[i].Value
	}
	return ""
}

// Has reports whether the label name is present.
func (ls Labels) Has(name string) bool {
	i := sort.Search(len(ls), func(i int) bool { return ls[i].Name >= name })
	return i < len(ls) && ls[i].Name == name
}

// Name returns the metric name (the __name__ label).
func (ls Labels) Name() string { return ls.Get(MetricName) }

// Map returns the labels as a fresh map.
func (ls Labels) Map() map[string]string {
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Name] = l.Value
	}
	return m
}

// Copy returns an independent copy of the label set.
func (ls Labels) Copy() Labels {
	out := make(Labels, len(ls))
	copy(out, ls)
	return out
}

// Equal reports whether two label sets are identical.
func (ls Labels) Equal(o Labels) bool {
	if len(ls) != len(o) {
		return false
	}
	for i := range ls {
		if ls[i] != o[i] {
			return false
		}
	}
	return true
}

// Compare orders label sets lexicographically.
func Compare(a, b Labels) int {
	l := len(a)
	if len(b) < l {
		l = len(b)
	}
	for i := 0; i < l; i++ {
		if a[i].Name != b[i].Name {
			if a[i].Name < b[i].Name {
				return -1
			}
			return 1
		}
		if a[i].Value != b[i].Value {
			if a[i].Value < b[i].Value {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

// Hash returns a stable 64-bit hash of the label set. Separator bytes 0xFF
// cannot appear in valid UTF-8 label content, which keeps the encoding
// unambiguous.
func (ls Labels) Hash() uint64 {
	h := uint64(fnvOffset64)
	for _, l := range ls {
		h = fnvAddSep(fnvAddString(h, l.Name))
		h = fnvAddSep(fnvAddString(h, l.Value))
	}
	return h
}

// HashWithout hashes the label set ignoring the given names (used by
// aggregation "without").
func (ls Labels) HashWithout(names ...string) uint64 {
	h := uint64(fnvOffset64)
outer:
	for _, l := range ls {
		if l.Name == MetricName {
			continue
		}
		for _, n := range names {
			if l.Name == n {
				continue outer
			}
		}
		h = fnvAddSep(fnvAddString(h, l.Name))
		h = fnvAddSep(fnvAddString(h, l.Value))
	}
	return h
}

// HashFor hashes only the given label names (used by aggregation "by").
func (ls Labels) HashFor(names ...string) uint64 {
	sorted := names
	if !sort.StringsAreSorted(sorted) {
		sorted = append([]string(nil), names...)
		sort.Strings(sorted)
	}
	h := uint64(fnvOffset64)
	for _, n := range sorted {
		h = fnvAddSep(fnvAddString(h, n))
		h = fnvAddSep(fnvAddString(h, ls.Get(n)))
	}
	return h
}

// WithoutNames returns a copy dropping the given names plus __name__.
func (ls Labels) WithoutNames(names ...string) Labels {
	out := make(Labels, 0, len(ls))
outer:
	for _, l := range ls {
		if l.Name == MetricName {
			continue
		}
		for _, n := range names {
			if l.Name == n {
				continue outer
			}
		}
		out = append(out, l)
	}
	return out
}

// KeepNames returns a copy retaining only the given names.
func (ls Labels) KeepNames(names ...string) Labels {
	out := make(Labels, 0, len(names))
	for _, l := range ls {
		for _, n := range names {
			if l.Name == n {
				out = append(out, l)
				break
			}
		}
	}
	return out
}

// String renders the labels in the canonical {a="b", c="d"} form with the
// metric name, if any, prefixed.
func (ls Labels) String() string {
	var b strings.Builder
	name := ls.Name()
	b.WriteString(name)
	b.WriteByte('{')
	first := true
	for _, l := range ls {
		if l.Name == MetricName {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Builder incrementally constructs a label set, typically by modifying a
// base set.
type Builder struct {
	base Labels
	add  []Label
	del  []string
}

// NewBuilder returns a Builder seeded with base.
func NewBuilder(base Labels) *Builder {
	return &Builder{base: base}
}

// Set adds or replaces a label. Setting an empty value deletes the label.
func (b *Builder) Set(name, value string) *Builder {
	if value == "" {
		return b.Del(name)
	}
	for i := range b.add {
		if b.add[i].Name == name {
			b.add[i].Value = value
			return b
		}
	}
	b.add = append(b.add, Label{Name: name, Value: value})
	return b
}

// Del marks a label for deletion.
func (b *Builder) Del(names ...string) *Builder {
	b.del = append(b.del, names...)
	return b
}

// Labels materializes the built label set.
func (b *Builder) Labels() Labels {
	m := b.base.Map()
	for _, n := range b.del {
		delete(m, n)
	}
	for _, l := range b.add {
		m[l.Name] = l.Value
	}
	return FromMap(m)
}

// MatchType enumerates matcher operators.
type MatchType int

const (
	MatchEqual     MatchType = iota // =
	MatchNotEqual                   // !=
	MatchRegexp                     // =~
	MatchNotRegexp                  // !~
)

func (t MatchType) String() string {
	switch t {
	case MatchEqual:
		return "="
	case MatchNotEqual:
		return "!="
	case MatchRegexp:
		return "=~"
	case MatchNotRegexp:
		return "!~"
	}
	return "?"
}

// Matcher tests a single label against a value or anchored regexp.
type Matcher struct {
	Type  MatchType
	Name  string
	Value string
	re    *regexp.Regexp
}

// NewMatcher builds a matcher; regexp values are anchored (^...$) as in
// Prometheus.
func NewMatcher(t MatchType, name, value string) (*Matcher, error) {
	m := &Matcher{Type: t, Name: name, Value: value}
	if t == MatchRegexp || t == MatchNotRegexp {
		re, err := regexp.Compile("^(?:" + value + ")$")
		if err != nil {
			return nil, fmt.Errorf("labels: bad matcher regexp %q: %w", value, err)
		}
		m.re = re
	}
	return m, nil
}

// MustMatcher is NewMatcher that panics on error, for static matchers.
func MustMatcher(t MatchType, name, value string) *Matcher {
	m, err := NewMatcher(t, name, value)
	if err != nil {
		panic(err)
	}
	return m
}

// Matches reports whether the value satisfies the matcher.
func (m *Matcher) Matches(v string) bool {
	switch m.Type {
	case MatchEqual:
		return v == m.Value
	case MatchNotEqual:
		return v != m.Value
	case MatchRegexp:
		return m.re.MatchString(v)
	case MatchNotRegexp:
		return !m.re.MatchString(v)
	}
	return false
}

func (m *Matcher) String() string {
	return fmt.Sprintf("%s%s%q", m.Name, m.Type, m.Value)
}

// MatchLabels reports whether all matchers are satisfied by the label set.
// A matcher on an absent label sees the empty string, as in Prometheus.
func MatchLabels(ls Labels, ms ...*Matcher) bool {
	for _, m := range ms {
		if !m.Matches(ls.Get(m.Name)) {
			return false
		}
	}
	return true
}

// SortedKeys returns the keys of a string set, sorted.
func SortedKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// UnionSorted deduplicates and sorts the union of the given string slices
// (label names or values gathered from multiple shards or storage tiers).
func UnionSorted(lists ...[]string) []string {
	set := make(map[string]struct{})
	for _, l := range lists {
		for _, s := range l {
			set[s] = struct{}{}
		}
	}
	return SortedKeys(set)
}
