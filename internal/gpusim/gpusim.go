// Package gpusim emulates the vendor GPU metric exporters CEEMS deploys
// alongside its own exporter: NVIDIA's DCGM exporter and AMD's SMI
// exporter (paper §II.B.a: "either DCGM exporter or AMD SMI exporter must
// be deployed alongside the CEEMS exporter"). Each renders the metrics of
// the simulated GPU devices of one node in the vendor's native metric
// naming, so downstream recording rules exercise the same relabelling CEEMS
// needs on real clusters.
package gpusim

import (
	"fmt"
	"net/http"

	"repro/internal/expofmt"
	"repro/internal/hw"
	"repro/internal/labels"
)

// DeviceProvider yields the current GPU devices; *hw.Node satisfies it via
// the adapter below.
type DeviceProvider interface {
	GPUs() []*hw.GPU
}

// DCGMCollector renders NVIDIA DCGM-exporter-compatible metric families.
type DCGMCollector struct {
	Hostname string
	Devices  DeviceProvider
}

// Name identifies the collector.
func (c *DCGMCollector) Name() string { return "dcgm" }

// Collect renders the DCGM metric families.
func (c *DCGMCollector) Collect() ([]*expofmt.Family, error) {
	gpus := c.Devices.GPUs()
	power := &expofmt.Family{Name: "DCGM_FI_DEV_POWER_USAGE", Type: expofmt.TypeGauge,
		Help: "Power draw (in W)."}
	util := &expofmt.Family{Name: "DCGM_FI_DEV_GPU_UTIL", Type: expofmt.TypeGauge,
		Help: "GPU utilization (in %)."}
	fbUsed := &expofmt.Family{Name: "DCGM_FI_DEV_FB_USED", Type: expofmt.TypeGauge,
		Help: "Framebuffer memory used (in MiB)."}
	energy := &expofmt.Family{Name: "DCGM_FI_DEV_TOTAL_ENERGY_CONSUMPTION", Type: expofmt.TypeCounter,
		Help: "Total energy consumption since boot (in mJ)."}
	for _, g := range gpus {
		if g.Kind.Vendor() != "nvidia" {
			continue
		}
		ls := labels.FromStrings(
			"gpu", fmt.Sprintf("%d", g.Index),
			"UUID", g.UUID,
			"modelName", "NVIDIA "+string(g.Kind),
			"Hostname", c.Hostname,
		)
		power.Metrics = append(power.Metrics, expofmt.Metric{Labels: ls, Value: g.PowerWatts()})
		util.Metrics = append(util.Metrics, expofmt.Metric{Labels: ls, Value: g.Util() * 100})
		fbUsed.Metrics = append(fbUsed.Metrics, expofmt.Metric{Labels: ls, Value: float64(g.MemUsedBytes()) / (1 << 20)})
		energy.Metrics = append(energy.Metrics, expofmt.Metric{Labels: ls, Value: g.EnergyMilliJoules()})
	}
	return []*expofmt.Family{power, util, fbUsed, energy}, nil
}

// AMDSMICollector renders AMD SMI-exporter-compatible metric families.
type AMDSMICollector struct {
	Hostname string
	Devices  DeviceProvider
}

// Name identifies the collector.
func (c *AMDSMICollector) Name() string { return "amd_smi" }

// Collect renders the AMD SMI metric families.
func (c *AMDSMICollector) Collect() ([]*expofmt.Family, error) {
	gpus := c.Devices.GPUs()
	power := &expofmt.Family{Name: "amd_gpu_power", Type: expofmt.TypeGauge,
		Help: "GPU power (in W)."}
	util := &expofmt.Family{Name: "amd_gpu_use_percent", Type: expofmt.TypeGauge,
		Help: "GPU utilization (in %)."}
	mem := &expofmt.Family{Name: "amd_gpu_memory_use_percent", Type: expofmt.TypeGauge,
		Help: "GPU memory utilization (in %)."}
	for _, g := range gpus {
		if g.Kind.Vendor() != "amd" {
			continue
		}
		ls := labels.FromStrings(
			"gpu_id", fmt.Sprintf("%d", g.Index),
			"gpu_uuid", g.UUID,
			"productname", "AMD Instinct "+string(g.Kind),
			"hostname", c.Hostname,
		)
		power.Metrics = append(power.Metrics, expofmt.Metric{Labels: ls, Value: g.PowerWatts()})
		util.Metrics = append(util.Metrics, expofmt.Metric{Labels: ls, Value: g.Util() * 100})
		mem.Metrics = append(mem.Metrics, expofmt.Metric{
			Labels: ls,
			Value:  100 * float64(g.MemUsedBytes()) / float64(g.Kind.MemoryBytes()),
		})
	}
	return []*expofmt.Family{power, util, mem}, nil
}

// collector is the shared shape of the two collectors.
type collector interface {
	Collect() ([]*expofmt.Family, error)
}

// Handler returns an HTTP handler serving the collector's metrics in
// exposition format, mirroring the standalone vendor exporters.
func Handler(c collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fams, err := c.Collect()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		enc := expofmt.NewWriter(w)
		for _, f := range fams {
			if err := enc.WriteFamily(f); err != nil {
				return
			}
		}
		enc.Flush()
	})
}
