package gpusim

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/expofmt"
	"repro/internal/hw"
	"repro/internal/model"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func gpuNode(t *testing.T, kinds ...model.GPUKind) *hw.Node {
	t.Helper()
	spec := hw.DefaultGPUSpec("g1", true, kinds...)
	spec.NoiseFrac = 0
	n, err := hw.NewNode(spec, t0)
	if err != nil {
		t.Fatal(err)
	}
	n.AddWorkload(&hw.Workload{
		ID: "job_1", CPUs: 4, MemLimit: 8 << 30, GPUOrdinals: []int{0},
		GPUUtil: func(time.Duration) float64 { return 0.5 },
	})
	n.Advance(15 * time.Second)
	return n
}

func TestDCGMCollector(t *testing.T) {
	n := gpuNode(t, model.GPUA100, model.GPUA100)
	c := &DCGMCollector{Hostname: "g1", Devices: n}
	fams, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*expofmt.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	power := byName["DCGM_FI_DEV_POWER_USAGE"]
	if len(power.Metrics) != 2 {
		t.Fatalf("power metrics = %d", len(power.Metrics))
	}
	// GPU 0 at 50% util: idle + 0.5*(max-idle) = 50 + 175 = 225.
	if got := power.Metrics[0].Value; got != 225 {
		t.Errorf("gpu0 power = %v, want 225", got)
	}
	if power.Metrics[0].Labels.Get("gpu") != "0" || power.Metrics[0].Labels.Get("modelName") != "NVIDIA A100" {
		t.Errorf("labels = %v", power.Metrics[0].Labels)
	}
	util := byName["DCGM_FI_DEV_GPU_UTIL"]
	if util.Metrics[0].Value != 50 || util.Metrics[1].Value != 0 {
		t.Errorf("utils = %v, %v", util.Metrics[0].Value, util.Metrics[1].Value)
	}
	energy := byName["DCGM_FI_DEV_TOTAL_ENERGY_CONSUMPTION"]
	if energy.Metrics[0].Value != 225*15*1000 {
		t.Errorf("energy = %v mJ", energy.Metrics[0].Value)
	}
}

func TestDCGMSkipsAMD(t *testing.T) {
	n := gpuNode(t, model.GPUMI250)
	fams, _ := (&DCGMCollector{Hostname: "g1", Devices: n}).Collect()
	for _, f := range fams {
		if len(f.Metrics) != 0 {
			t.Errorf("DCGM exported AMD device in %s", f.Name)
		}
	}
}

func TestAMDSMICollector(t *testing.T) {
	n := gpuNode(t, model.GPUMI250)
	c := &AMDSMICollector{Hostname: "g1", Devices: n}
	fams, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*expofmt.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	power := byName["amd_gpu_power"]
	if len(power.Metrics) != 1 {
		t.Fatalf("amd power metrics = %d", len(power.Metrics))
	}
	// MI250 at 50%: 90 + 0.5*(560-90) = 325.
	if power.Metrics[0].Value != 325 {
		t.Errorf("amd power = %v, want 325", power.Metrics[0].Value)
	}
	if byName["amd_gpu_use_percent"].Metrics[0].Value != 50 {
		t.Error("amd util wrong")
	}
	// Skips NVIDIA.
	n2 := gpuNode(t, model.GPUV100)
	fams, _ = (&AMDSMICollector{Hostname: "g1", Devices: n2}).Collect()
	for _, f := range fams {
		if len(f.Metrics) != 0 {
			t.Error("AMD SMI exported NVIDIA device")
		}
	}
}

func TestHandler(t *testing.T) {
	n := gpuNode(t, model.GPUH100)
	srv := httptest.NewServer(Handler(&DCGMCollector{Hostname: "g1", Devices: n}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "DCGM_FI_DEV_POWER_USAGE") {
		t.Errorf("payload = %s", body)
	}
	if _, err := expofmt.Parse(strings.NewReader(string(body))); err != nil {
		t.Errorf("payload unparseable: %v", err)
	}
}
