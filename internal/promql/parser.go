package promql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/labels"
)

// ParseExpr parses a PromQL expression string into an AST.
func ParseExpr(input string) (Expr, error) {
	items, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{items: items, input: input}
	expr, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if p.cur().typ != EOF {
		return nil, p.errorf("unexpected %s after expression", p.cur())
	}
	return expr, nil
}

type parser struct {
	items []item
	pos   int
	input string
}

func (p *parser) cur() item  { return p.items[p.pos] }
func (p *parser) next() item { it := p.items[p.pos]; p.pos++; return it }
func (p *parser) backup()    { p.pos-- }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("promql: parse error in %q at token %d: %s", p.input, p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) expect(t ItemType) (item, error) {
	it := p.next()
	if it.typ != t {
		return it, p.errorf("expected %s, got %s", itemName(t), it)
	}
	return it, nil
}

// Operator precedences; higher binds tighter.
func precedence(t ItemType) int {
	switch t {
	case OR:
		return 1
	case AND, UNLESS:
		return 2
	case EQL, NEQ, LTE, LSS, GTE, GTR:
		return 3
	case ADD, SUB:
		return 4
	case MUL, DIV, MOD:
		return 5
	case POW:
		return 6
	}
	return 0
}

func isBinary(t ItemType) bool { return precedence(t) > 0 }

func isComparison(t ItemType) bool {
	switch t {
	case EQL, NEQ, LTE, LSS, GTE, GTR:
		return true
	}
	return false
}

func isSetOp(t ItemType) bool { return t == AND || t == OR || t == UNLESS }

// parseExpr is a precedence-climbing expression parser.
func (p *parser) parseExpr(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().typ
		if !isBinary(op) || precedence(op) < minPrec {
			return lhs, nil
		}
		p.next()

		be := &BinaryExpr{Op: op, LHS: lhs}
		if p.cur().typ == BOOL {
			if !isComparison(op) {
				return nil, p.errorf("bool modifier only allowed on comparison operators")
			}
			p.next()
			be.ReturnBool = true
		}
		// on/ignoring vector matching.
		if p.cur().typ == ON || p.cur().typ == IGNORING {
			vm := &VectorMatching{On: p.cur().typ == ON}
			p.next()
			ls, err := p.parseLabelList()
			if err != nil {
				return nil, err
			}
			vm.Labels = ls
			if p.cur().typ == GroupLeft || p.cur().typ == GroupRight {
				if p.cur().typ == GroupLeft {
					vm.Card = CardManyToOne
				} else {
					vm.Card = CardOneToMany
				}
				p.next()
				if p.cur().typ == LPAREN {
					inc, err := p.parseLabelList()
					if err != nil {
						return nil, err
					}
					vm.Include = inc
				}
			}
			be.Matching = vm
		}
		// Right-hand side: POW is right-associative.
		nextMin := precedence(op) + 1
		if op == POW {
			nextMin = precedence(op)
		}
		rhs, err := p.parseExpr(nextMin)
		if err != nil {
			return nil, err
		}
		be.RHS = rhs
		if err := p.checkBinary(be); err != nil {
			return nil, err
		}
		lhs = be
	}
}

func (p *parser) checkBinary(b *BinaryExpr) error {
	lt, rt := b.LHS.Type(), b.RHS.Type()
	if lt == ValueMatrix || rt == ValueMatrix {
		return p.errorf("binary operators not defined on range vectors")
	}
	if isSetOp(b.Op) && (lt != ValueVector || rt != ValueVector) {
		return p.errorf("set operators only defined between instant vectors")
	}
	if lt == ValueScalar && rt == ValueScalar && isComparison(b.Op) && !b.ReturnBool {
		return p.errorf("comparisons between scalars must use bool modifier")
	}
	return nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.cur().typ {
	case ADD:
		p.next()
		return p.parseUnary()
	case SUB:
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if n, ok := e.(*NumberLiteral); ok {
			return &NumberLiteral{Val: -n.Val}, nil
		}
		return &UnaryExpr{Op: SUB, Expr: e}, nil
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary expression plus [range] and offset.
func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	// Range selector.
	if p.cur().typ == LBRACKET {
		vs, ok := e.(*VectorSelector)
		if !ok {
			return nil, p.errorf("range selector only allowed after a vector selector")
		}
		p.next()
		d, err := p.expect(DURATION)
		if err != nil {
			return nil, err
		}
		dur, err := parseDuration(d.val)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		if _, err := p.expect(RBRACKET); err != nil {
			return nil, err
		}
		e = &MatrixSelector{VS: vs, Range: dur}
	}
	// Offset modifier.
	if p.cur().typ == OFFSET {
		p.next()
		d, err := p.expect(DURATION)
		if err != nil {
			return nil, err
		}
		dur, err := parseDuration(d.val)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		switch v := e.(type) {
		case *VectorSelector:
			v.Offset = dur
		case *MatrixSelector:
			v.VS.Offset = dur
		default:
			return nil, p.errorf("offset only allowed after selectors")
		}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	it := p.cur()
	switch it.typ {
	case NUMBER:
		p.next()
		v, err := parseNumber(it.val)
		if err != nil {
			return nil, p.errorf("bad number %q", it.val)
		}
		return &NumberLiteral{Val: v}, nil
	case STRING:
		p.next()
		return &StringLiteral{Val: it.val}, nil
	case LPAREN:
		p.next()
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return &ParenExpr{Expr: e}, nil
	case LBRACE:
		// Selector without metric name: {job="x"}.
		return p.parseVectorSelector("")
	case IDENT:
		p.next()
		if p.cur().typ == LPAREN {
			return p.parseCall(it.val)
		}
		if p.cur().typ == LBRACE {
			return p.parseVectorSelector(it.val)
		}
		return makeSelector(it.val, nil)
	default:
		if isAggregator(it.typ) {
			return p.parseAggregate()
		}
		return nil, p.errorf("unexpected %s", it)
	}
}

func parseNumber(s string) (float64, error) {
	switch strings.ToLower(s) {
	case "nan":
		return strconv.ParseFloat("NaN", 64)
	case "inf":
		return strconv.ParseFloat("Inf", 64)
	}
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		n, err := strconv.ParseInt(s, 0, 64)
		return float64(n), err
	}
	return strconv.ParseFloat(s, 64)
}

func makeSelector(name string, ms []*labels.Matcher) (*VectorSelector, error) {
	vs := &VectorSelector{Name: name, Matchers: ms}
	if name != "" {
		vs.Matchers = append(vs.Matchers, labels.MustMatcher(labels.MatchEqual, labels.MetricName, name))
	}
	if len(vs.Matchers) == 0 {
		return nil, fmt.Errorf("promql: vector selector must have at least one matcher")
	}
	return vs, nil
}

func (p *parser) parseVectorSelector(name string) (Expr, error) {
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	var ms []*labels.Matcher
	for p.cur().typ != RBRACE {
		ln := p.next()
		// Keywords are valid label names inside matchers (e.g. {on="x"}).
		if ln.typ != IDENT && itemNames[ln.typ] != strings.ToLower(ln.val) {
			return nil, p.errorf("expected label name, got %s", ln)
		}
		var mt labels.MatchType
		switch p.next().typ {
		case ASSIGN:
			mt = labels.MatchEqual
		case NEQ:
			mt = labels.MatchNotEqual
		case EQLRegex:
			mt = labels.MatchRegexp
		case NEQRegex:
			mt = labels.MatchNotRegexp
		default:
			p.backup()
			return nil, p.errorf("expected matcher operator, got %s", p.cur())
		}
		val, err := p.expect(STRING)
		if err != nil {
			return nil, err
		}
		m, err := labels.NewMatcher(mt, ln.val, val.val)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		ms = append(ms, m)
		if p.cur().typ == COMMA {
			p.next()
		}
	}
	p.next() // consume RBRACE
	vs, err := makeSelector(name, ms)
	if err != nil {
		return nil, p.errorf("%v", err)
	}
	return vs, nil
}

func (p *parser) parseCall(name string) (Expr, error) {
	fn, ok := Functions[name]
	if !ok {
		return nil, p.errorf("unknown function %q", name)
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var args []Expr
	for p.cur().typ != RPAREN {
		a, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.cur().typ == COMMA {
			p.next()
		} else if p.cur().typ != RPAREN {
			return nil, p.errorf("expected , or ) in call to %s", name)
		}
	}
	p.next() // RPAREN
	if len(args) < fn.MinArgs || len(args) > fn.MaxArgs {
		return nil, p.errorf("wrong number of arguments for %s: got %d, want %d..%d",
			name, len(args), fn.MinArgs, fn.MaxArgs)
	}
	for i, a := range args {
		want := fn.ArgType(i)
		if a.Type() != want {
			return nil, p.errorf("argument %d of %s must be %s, got %s", i+1, name, want, a.Type())
		}
	}
	return &Call{Func: fn, Args: args}, nil
}

func (p *parser) parseAggregate() (Expr, error) {
	op := p.next().typ
	agg := &AggregateExpr{Op: op}
	// Modifier may precede or follow the argument list.
	if p.cur().typ == BY || p.cur().typ == WITHOUT {
		agg.Without = p.cur().typ == WITHOUT
		p.next()
		ls, err := p.parseLabelList()
		if err != nil {
			return nil, err
		}
		agg.Grouping = ls
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	first, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if p.cur().typ == COMMA {
		// topk(k, expr) form: first was the parameter.
		p.next()
		second, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		agg.Param = first
		agg.Expr = second
	} else {
		agg.Expr = first
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if len(agg.Grouping) == 0 && !agg.Without {
		if p.cur().typ == BY || p.cur().typ == WITHOUT {
			agg.Without = p.cur().typ == WITHOUT
			p.next()
			ls, err := p.parseLabelList()
			if err != nil {
				return nil, err
			}
			agg.Grouping = ls
		}
	}
	if (op == TOPK || op == BOTTOMK || op == QUANTILE) && agg.Param == nil {
		return nil, p.errorf("%s requires a parameter", itemName(op))
	}
	if agg.Param != nil && agg.Param.Type() != ValueScalar {
		return nil, p.errorf("aggregation parameter must be a scalar")
	}
	if agg.Expr.Type() != ValueVector {
		return nil, p.errorf("aggregation operand must be an instant vector")
	}
	return agg, nil
}

// parseLabelList parses "(a, b, c)" and returns the names.
func (p *parser) parseLabelList() ([]string, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var out []string
	for p.cur().typ != RPAREN {
		it := p.next()
		if it.typ != IDENT && itemNames[it.typ] != strings.ToLower(it.val) {
			return nil, p.errorf("expected label name in grouping, got %s", it)
		}
		out = append(out, it.val)
		if p.cur().typ == COMMA {
			p.next()
		}
	}
	p.next() // RPAREN
	return out, nil
}
