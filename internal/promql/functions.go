package promql

import (
	"fmt"
	"math"
	"regexp"
	"sort"

	"repro/internal/labels"
	"repro/internal/model"
)

// Function describes a callable PromQL function.
type Function struct {
	Name       string
	ArgTypes   []ValueType // fixed prefix; Variadic extends the last type
	MinArgs    int
	MaxArgs    int
	ReturnType ValueType
	Call       func(ev *evaluator, args []Expr) (Value, error)
}

// ArgType returns the expected type of argument i.
func (f *Function) ArgType(i int) ValueType {
	if i < len(f.ArgTypes) {
		return f.ArgTypes[i]
	}
	return f.ArgTypes[len(f.ArgTypes)-1]
}

// Functions is the registry of supported functions.
var Functions = map[string]*Function{}

func register(f *Function) { Functions[f.Name] = f }

func init() {
	// Range-vector functions.
	for _, def := range []struct {
		name string
		fn   func(samples []model.Sample, rangeMs int64) (float64, bool)
	}{
		{"rate", funcRate},
		{"irate", funcIrate},
		{"increase", funcIncrease},
		{"delta", funcDelta},
		{"idelta", funcIdelta},
		{"deriv", funcDeriv},
		{"changes", funcChanges},
		{"resets", funcResets},
		{"avg_over_time", overTime(func(vs []float64) float64 {
			s := 0.0
			for _, v := range vs {
				s += v
			}
			return s / float64(len(vs))
		})},
		{"sum_over_time", overTime(func(vs []float64) float64 {
			s := 0.0
			for _, v := range vs {
				s += v
			}
			return s
		})},
		{"min_over_time", overTime(func(vs []float64) float64 {
			m := math.Inf(1)
			for _, v := range vs {
				if v < m {
					m = v
				}
			}
			return m
		})},
		{"max_over_time", overTime(func(vs []float64) float64 {
			m := math.Inf(-1)
			for _, v := range vs {
				if v > m {
					m = v
				}
			}
			return m
		})},
		{"count_over_time", overTime(func(vs []float64) float64 { return float64(len(vs)) })},
		{"last_over_time", overTime(func(vs []float64) float64 { return vs[len(vs)-1] })},
		{"stddev_over_time", overTime(func(vs []float64) float64 {
			mean := 0.0
			for _, v := range vs {
				mean += v
			}
			mean /= float64(len(vs))
			acc := 0.0
			for _, v := range vs {
				acc += (v - mean) * (v - mean)
			}
			return math.Sqrt(acc / float64(len(vs)))
		})},
	} {
		fn := def.fn
		register(&Function{
			Name: def.name, ArgTypes: []ValueType{ValueMatrix},
			MinArgs: 1, MaxArgs: 1, ReturnType: ValueVector,
			Call: rangeFunc(fn),
		})
	}

	register(&Function{
		Name: "quantile_over_time", ArgTypes: []ValueType{ValueScalar, ValueMatrix},
		MinArgs: 2, MaxArgs: 2, ReturnType: ValueVector,
		Call: func(ev *evaluator, args []Expr) (Value, error) {
			pv, err := ev.eval(args[0])
			if err != nil {
				return nil, err
			}
			phi := pv.(Scalar).V
			return applyRange(ev, args[1], func(samples []model.Sample, _ int64) (float64, bool) {
				vs := make([]float64, len(samples))
				for i, s := range samples {
					vs[i] = s.V
				}
				return quantile(phi, vs), true
			})
		},
	})

	// Instant-vector math functions.
	for _, def := range []struct {
		name string
		fn   func(float64) float64
	}{
		{"abs", math.Abs}, {"ceil", math.Ceil}, {"floor", math.Floor},
		{"exp", math.Exp}, {"ln", math.Log}, {"log2", math.Log2},
		{"log10", math.Log10}, {"sqrt", math.Sqrt},
	} {
		fn := def.fn
		register(&Function{
			Name: def.name, ArgTypes: []ValueType{ValueVector},
			MinArgs: 1, MaxArgs: 1, ReturnType: ValueVector,
			Call: vectorMap(fn),
		})
	}

	register(&Function{
		Name: "round", ArgTypes: []ValueType{ValueVector, ValueScalar},
		MinArgs: 1, MaxArgs: 2, ReturnType: ValueVector,
		Call: func(ev *evaluator, args []Expr) (Value, error) {
			nearest := 1.0
			if len(args) == 2 {
				sv, err := ev.eval(args[1])
				if err != nil {
					return nil, err
				}
				nearest = sv.(Scalar).V
			}
			return mapVector(ev, args[0], func(v float64) float64 {
				return math.Round(v/nearest) * nearest
			})
		},
	})
	register(&Function{
		Name: "clamp", ArgTypes: []ValueType{ValueVector, ValueScalar, ValueScalar},
		MinArgs: 3, MaxArgs: 3, ReturnType: ValueVector,
		Call: func(ev *evaluator, args []Expr) (Value, error) {
			lo, err := evalScalar(ev, args[1])
			if err != nil {
				return nil, err
			}
			hi, err := evalScalar(ev, args[2])
			if err != nil {
				return nil, err
			}
			return mapVector(ev, args[0], func(v float64) float64 {
				return math.Max(lo, math.Min(hi, v))
			})
		},
	})
	register(&Function{
		Name: "clamp_min", ArgTypes: []ValueType{ValueVector, ValueScalar},
		MinArgs: 2, MaxArgs: 2, ReturnType: ValueVector,
		Call: func(ev *evaluator, args []Expr) (Value, error) {
			lo, err := evalScalar(ev, args[1])
			if err != nil {
				return nil, err
			}
			return mapVector(ev, args[0], func(v float64) float64 { return math.Max(lo, v) })
		},
	})
	register(&Function{
		Name: "clamp_max", ArgTypes: []ValueType{ValueVector, ValueScalar},
		MinArgs: 2, MaxArgs: 2, ReturnType: ValueVector,
		Call: func(ev *evaluator, args []Expr) (Value, error) {
			hi, err := evalScalar(ev, args[1])
			if err != nil {
				return nil, err
			}
			return mapVector(ev, args[0], func(v float64) float64 { return math.Min(hi, v) })
		},
	})

	register(&Function{
		Name: "time", ArgTypes: []ValueType{}, MinArgs: 0, MaxArgs: 0,
		ReturnType: ValueScalar,
		Call: func(ev *evaluator, _ []Expr) (Value, error) {
			return Scalar{T: ev.ts, V: float64(ev.ts) / 1000}, nil
		},
	})
	register(&Function{
		Name: "timestamp", ArgTypes: []ValueType{ValueVector}, MinArgs: 1, MaxArgs: 1,
		ReturnType: ValueVector,
		Call: func(ev *evaluator, args []Expr) (Value, error) {
			v, err := ev.eval(args[0])
			if err != nil {
				return nil, err
			}
			vec := v.(Vector)
			out := make(Vector, len(vec))
			for i, s := range vec {
				out[i] = Sample{Labels: dropName(s.Labels), T: s.T, V: float64(s.T) / 1000}
			}
			return out, nil
		},
	})
	register(&Function{
		Name: "scalar", ArgTypes: []ValueType{ValueVector}, MinArgs: 1, MaxArgs: 1,
		ReturnType: ValueScalar,
		Call: func(ev *evaluator, args []Expr) (Value, error) {
			v, err := ev.eval(args[0])
			if err != nil {
				return nil, err
			}
			vec := v.(Vector)
			if len(vec) != 1 {
				return Scalar{T: ev.ts, V: math.NaN()}, nil
			}
			return Scalar{T: ev.ts, V: vec[0].V}, nil
		},
	})
	register(&Function{
		Name: "vector", ArgTypes: []ValueType{ValueScalar}, MinArgs: 1, MaxArgs: 1,
		ReturnType: ValueVector,
		Call: func(ev *evaluator, args []Expr) (Value, error) {
			s, err := evalScalar(ev, args[0])
			if err != nil {
				return nil, err
			}
			return Vector{{Labels: labels.Labels{}, T: ev.ts, V: s}}, nil
		},
	})
	register(&Function{
		Name: "absent", ArgTypes: []ValueType{ValueVector}, MinArgs: 1, MaxArgs: 1,
		ReturnType: ValueVector,
		Call: func(ev *evaluator, args []Expr) (Value, error) {
			v, err := ev.eval(args[0])
			if err != nil {
				return nil, err
			}
			if len(v.(Vector)) > 0 {
				return Vector{}, nil
			}
			return Vector{{Labels: labels.Labels{}, T: ev.ts, V: 1}}, nil
		},
	})
	register(&Function{
		Name: "sort", ArgTypes: []ValueType{ValueVector}, MinArgs: 1, MaxArgs: 1,
		ReturnType: ValueVector,
		Call:       sortFunc(false),
	})
	register(&Function{
		Name: "sort_desc", ArgTypes: []ValueType{ValueVector}, MinArgs: 1, MaxArgs: 1,
		ReturnType: ValueVector,
		Call:       sortFunc(true),
	})
	register(&Function{
		Name:     "label_replace",
		ArgTypes: []ValueType{ValueVector, ValueString, ValueString, ValueString, ValueString},
		MinArgs:  5, MaxArgs: 5, ReturnType: ValueVector,
		Call: funcLabelReplace,
	})
	register(&Function{
		Name:     "label_join",
		ArgTypes: []ValueType{ValueVector, ValueString, ValueString, ValueString},
		MinArgs:  3, MaxArgs: 16, ReturnType: ValueVector,
		Call: funcLabelJoin,
	})
}

func evalScalar(ev *evaluator, e Expr) (float64, error) {
	v, err := ev.eval(e)
	if err != nil {
		return 0, err
	}
	s, ok := v.(Scalar)
	if !ok {
		return 0, fmt.Errorf("promql: expected scalar, got %s", v.Type())
	}
	return s.V, nil
}

// rangeFunc adapts a per-series range computation into a Call.
func rangeFunc(fn func([]model.Sample, int64) (float64, bool)) func(*evaluator, []Expr) (Value, error) {
	return func(ev *evaluator, args []Expr) (Value, error) {
		return applyRange(ev, args[0], fn)
	}
}

func applyRange(ev *evaluator, arg Expr, fn func([]model.Sample, int64) (float64, bool)) (Value, error) {
	ms, ok := arg.(*MatrixSelector)
	if !ok {
		if p, isParen := arg.(*ParenExpr); isParen {
			return applyRange(ev, p.Expr, fn)
		}
		return nil, fmt.Errorf("promql: range function requires a range selector argument")
	}
	if ev.win != nil {
		// Windowed range evaluation: slide over the prefetched samples
		// instead of re-selecting, with per-series cached label drops.
		return ev.win.applyRangeFunc(ms, ev.ts, fn)
	}
	mv, err := ev.matrixSelector(ms)
	if err != nil {
		return nil, err
	}
	rangeMs := model.DurationMillis(ms.Range)
	out := make(Vector, 0, len(mv))
	for _, s := range mv {
		v, ok := fn(s.Samples, rangeMs)
		if !ok {
			continue
		}
		out = append(out, Sample{Labels: dropName(s.Labels), T: ev.ts, V: v})
	}
	return out, nil
}

// overTime wraps a simple value aggregation as a range function.
func overTime(agg func([]float64) float64) func([]model.Sample, int64) (float64, bool) {
	return func(samples []model.Sample, _ int64) (float64, bool) {
		if len(samples) == 0 {
			return 0, false
		}
		vs := make([]float64, len(samples))
		for i, s := range samples {
			vs[i] = s.V
		}
		return agg(vs), true
	}
}

// counterDelta returns the reset-adjusted increase over the samples.
func counterDelta(samples []model.Sample) float64 {
	d := samples[len(samples)-1].V - samples[0].V
	prev := samples[0].V
	for _, s := range samples[1:] {
		if s.V < prev {
			d += prev // counter reset: add the value lost at the reset
		}
		prev = s.V
	}
	return d
}

// funcRate computes the per-second reset-adjusted rate over the sample
// window. Unlike Prometheus it does not extrapolate to the window
// boundaries; the denominator is the observed sample span. This keeps
// rate × span == increase exactly, which the energy-conservation tests
// rely on.
func funcRate(samples []model.Sample, rangeMs int64) (float64, bool) {
	if len(samples) < 2 {
		return 0, false
	}
	span := float64(samples[len(samples)-1].T-samples[0].T) / 1000
	if span <= 0 {
		return 0, false
	}
	return counterDelta(samples) / span, true
}

func funcIncrease(samples []model.Sample, rangeMs int64) (float64, bool) {
	if len(samples) < 2 {
		return 0, false
	}
	return counterDelta(samples), true
}

func funcIrate(samples []model.Sample, _ int64) (float64, bool) {
	if len(samples) < 2 {
		return 0, false
	}
	a, b := samples[len(samples)-2], samples[len(samples)-1]
	span := float64(b.T-a.T) / 1000
	if span <= 0 {
		return 0, false
	}
	d := b.V - a.V
	if d < 0 { // reset between the two points
		d = b.V
	}
	return d / span, true
}

func funcDelta(samples []model.Sample, _ int64) (float64, bool) {
	if len(samples) < 2 {
		return 0, false
	}
	return samples[len(samples)-1].V - samples[0].V, true
}

func funcIdelta(samples []model.Sample, _ int64) (float64, bool) {
	if len(samples) < 2 {
		return 0, false
	}
	return samples[len(samples)-1].V - samples[len(samples)-2].V, true
}

// funcDeriv computes the least-squares slope per second.
func funcDeriv(samples []model.Sample, _ int64) (float64, bool) {
	if len(samples) < 2 {
		return 0, false
	}
	// Center timestamps to reduce float error.
	t0 := samples[0].T
	var n, sumX, sumY, sumXY, sumX2 float64
	for _, s := range samples {
		x := float64(s.T-t0) / 1000
		n++
		sumX += x
		sumY += s.V
		sumXY += x * s.V
		sumX2 += x * x
	}
	det := n*sumX2 - sumX*sumX
	if det == 0 {
		return 0, false
	}
	return (n*sumXY - sumX*sumY) / det, true
}

func funcChanges(samples []model.Sample, _ int64) (float64, bool) {
	if len(samples) == 0 {
		return 0, false
	}
	changes := 0
	for i := 1; i < len(samples); i++ {
		if samples[i].V != samples[i-1].V &&
			!(math.IsNaN(samples[i].V) && math.IsNaN(samples[i-1].V)) {
			changes++
		}
	}
	return float64(changes), true
}

func funcResets(samples []model.Sample, _ int64) (float64, bool) {
	if len(samples) == 0 {
		return 0, false
	}
	resets := 0
	for i := 1; i < len(samples); i++ {
		if samples[i].V < samples[i-1].V {
			resets++
		}
	}
	return float64(resets), true
}

func vectorMap(fn func(float64) float64) func(*evaluator, []Expr) (Value, error) {
	return func(ev *evaluator, args []Expr) (Value, error) {
		return mapVector(ev, args[0], fn)
	}
}

func mapVector(ev *evaluator, arg Expr, fn func(float64) float64) (Value, error) {
	v, err := ev.eval(arg)
	if err != nil {
		return nil, err
	}
	vec, ok := v.(Vector)
	if !ok {
		return nil, fmt.Errorf("promql: expected instant vector, got %s", v.Type())
	}
	out := make(Vector, len(vec))
	for i, s := range vec {
		out[i] = Sample{Labels: dropName(s.Labels), T: s.T, V: fn(s.V)}
	}
	return out, nil
}

func sortFunc(desc bool) func(*evaluator, []Expr) (Value, error) {
	return func(ev *evaluator, args []Expr) (Value, error) {
		v, err := ev.eval(args[0])
		if err != nil {
			return nil, err
		}
		vec := append(Vector(nil), v.(Vector)...)
		sort.SliceStable(vec, func(i, j int) bool {
			if desc {
				return vec[i].V > vec[j].V
			}
			return vec[i].V < vec[j].V
		})
		return vec, nil
	}
}

func funcLabelReplace(ev *evaluator, args []Expr) (Value, error) {
	v, err := ev.eval(args[0])
	if err != nil {
		return nil, err
	}
	dst := args[1].(*StringLiteral).Val
	repl := args[2].(*StringLiteral).Val
	src := args[3].(*StringLiteral).Val
	pattern := args[4].(*StringLiteral).Val
	re, err := regexp.Compile("^(?:" + pattern + ")$")
	if err != nil {
		return nil, fmt.Errorf("promql: label_replace: bad regexp %q: %w", pattern, err)
	}
	vec := v.(Vector)
	out := make(Vector, len(vec))
	for i, s := range vec {
		srcVal := s.Labels.Get(src)
		idx := re.FindStringSubmatchIndex(srcVal)
		ls := s.Labels
		if idx != nil {
			res := re.ExpandString(nil, repl, srcVal, idx)
			ls = labels.NewBuilder(s.Labels).Set(dst, string(res)).Labels()
		}
		out[i] = Sample{Labels: ls, T: s.T, V: s.V}
	}
	return out, nil
}

func funcLabelJoin(ev *evaluator, args []Expr) (Value, error) {
	v, err := ev.eval(args[0])
	if err != nil {
		return nil, err
	}
	dst := args[1].(*StringLiteral).Val
	sep := args[2].(*StringLiteral).Val
	var srcs []string
	for _, a := range args[3:] {
		srcs = append(srcs, a.(*StringLiteral).Val)
	}
	vec := v.(Vector)
	out := make(Vector, len(vec))
	for i, s := range vec {
		parts := make([]string, len(srcs))
		for j, src := range srcs {
			parts[j] = s.Labels.Get(src)
		}
		joined := ""
		for j, p := range parts {
			if j > 0 {
				joined += sep
			}
			joined += p
		}
		out[i] = Sample{
			Labels: labels.NewBuilder(s.Labels).Set(dst, joined).Labels(),
			T:      s.T, V: s.V,
		}
	}
	return out, nil
}
