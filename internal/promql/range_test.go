package promql

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb"
)

// countingQueryable wraps a Queryable and counts Select calls — the proof
// that the windowed range evaluator performs exactly one storage pass per
// selector per query.
type countingQueryable struct {
	inner   Queryable
	selects atomic.Int64
}

func (c *countingQueryable) Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error) {
	c.selects.Add(1)
	return c.inner.Select(mint, maxt, ms...)
}

// rangeTestStorage builds a head with gauge/counter shapes, a series with
// staleness markers mid-stream, and a series that starts late — the cases
// the window layer must interpret identically to the per-step path.
func rangeTestStorage(t testing.TB) *tsdb.DB {
	t.Helper()
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	app := func(ls labels.Labels, ts int64, v float64) {
		if err := db.Append(ls, ts, v); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	for i := int64(0); i <= 40; i++ {
		ts := i * 15000
		app(labels.FromStrings(labels.MetricName, "rq_counter_total", "inst", "a"), ts, float64(i)*150)
		app(labels.FromStrings(labels.MetricName, "rq_counter_total", "inst", "b"), ts, float64(i)*300)
		app(labels.FromStrings(labels.MetricName, "rq_gauge", "inst", "a"), ts, float64(i%7))
		// Counter with a reset at i=25.
		v := float64(i) * 10
		if i >= 25 {
			v = float64(i-25) * 10
		}
		app(labels.FromStrings(labels.MetricName, "rq_resetting_total", "inst", "a"), ts, v)
	}
	// Series that goes stale at i=20 and returns at i=30.
	stale := labels.FromStrings(labels.MetricName, "rq_flappy", "inst", "c")
	for i := int64(0); i <= 40; i++ {
		switch {
		case i < 20:
			app(stale, i*15000, float64(i))
		case i == 20:
			app(stale, i*15000, model.StaleNaN())
		case i >= 30:
			app(stale, i*15000, float64(i))
		}
	}
	// Series that only starts at i=30 (tests lookback edges).
	late := labels.FromStrings(labels.MetricName, "rq_late", "inst", "d")
	for i := int64(30); i <= 40; i++ {
		app(late, i*15000, float64(i))
	}
	return db
}

// TestRangeWindowedMatchesNaive is the equivalence property test: the
// windowed one-Select evaluator must return byte-identical Matrix results
// to the per-step reference across selectors, range functions,
// aggregations, binaries, offsets and staleness handling — at several
// range/step geometries, including steps misaligned with the scrape grid.
func TestRangeWindowedMatchesNaive(t *testing.T) {
	db := rangeTestStorage(t)
	queries := []string{
		`rq_counter_total`,
		`rq_gauge{inst="a"}`,
		`rq_flappy`,
		`rq_late`,
		`rate(rq_counter_total[2m])`,
		`increase(rq_resetting_total[5m])`,
		`irate(rq_counter_total[3m])`,
		`delta(rq_gauge[4m])`,
		`avg_over_time(rq_gauge[3m])`,
		`max_over_time(rq_flappy[5m])`,
		`count_over_time(rq_flappy[10m])`,
		`quantile_over_time(0.9, rq_gauge[5m])`,
		`rq_counter_total offset 2m`,
		`rate(rq_counter_total[2m] offset 1m)`,
		`sum(rate(rq_counter_total[2m]))`,
		`sum by (inst) (rate(rq_counter_total[2m]))`,
		`avg without (inst) (rq_counter_total)`,
		`topk(1, rq_counter_total)`,
		`quantile(0.5, rq_counter_total)`,
		`rq_counter_total / on (inst) group_left rq_gauge`,
		`rq_counter_total{inst="a"} + rq_counter_total{inst="b"} * 2`,
		`rq_counter_total > 3000`,
		`rq_counter_total > bool 3000`,
		`rq_gauge and rq_counter_total`,
		`rq_gauge or rq_late`,
		`rq_gauge unless rq_flappy`,
		`abs(rq_gauge - 3)`,
		`clamp_max(rq_counter_total, 5000)`,
		`label_replace(rq_gauge, "zone", "z-$1", "inst", "(.*)")`,
		`-rq_gauge`,
		`vector(42)`,
		`3 * 7`,
		`scalar(rq_gauge{inst="a"}) * rq_counter_total`,
		`absent(rq_nonexistent)`,
		`timestamp(rq_gauge)`,
	}
	geometries := []struct {
		startS, endS, stepS int64
	}{
		{0, 600, 15},   // aligned with the scrape grid
		{0, 600, 47},   // misaligned step
		{100, 550, 30}, // misaligned start
		{590, 610, 7},  // past the end of data (lookback tail)
		{300, 300, 15}, // single step
	}
	eng := NewEngine()
	for _, q := range queries {
		expr, err := ParseExpr(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		for _, g := range geometries {
			start := model.MillisToTime(g.startS * 1000)
			end := model.MillisToTime(g.endS * 1000)
			step := time.Duration(g.stepS) * time.Second
			want, err := eng.rangeExprNaive(db, expr, start, end, step)
			if err != nil {
				t.Fatalf("naive %q %+v: %v", q, g, err)
			}
			got, err := eng.RangeExpr(db, expr, start, end, step)
			if err != nil {
				t.Fatalf("windowed %q %+v: %v", q, g, err)
			}
			if !matrixIdentical(got, want) {
				t.Errorf("%q %+v:\n got  %v\n want %v", q, g, got, want)
			}
		}
	}
}

// matrixIdentical is bit-exact Matrix equality: reflect.DeepEqual would
// reject NaN == NaN, but byte-identical results must compare float values
// by their bit patterns.
func matrixIdentical(a, b Matrix) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Labels.Equal(b[i].Labels) || len(a[i].Samples) != len(b[i].Samples) {
			return false
		}
		for j := range a[i].Samples {
			sa, sb := a[i].Samples[j], b[i].Samples[j]
			if sa.T != sb.T || math.Float64bits(sa.V) != math.Float64bits(sb.V) {
				return false
			}
		}
	}
	return true
}

// TestRangeSingleSelectPerSelector asserts the tentpole property: a range
// query with N selectors issues exactly N storage Selects no matter how
// many steps it evaluates.
func TestRangeSingleSelectPerSelector(t *testing.T) {
	db := rangeTestStorage(t)
	eng := NewEngine()
	cases := []struct {
		q         string
		selectors int64
	}{
		{`rq_gauge`, 1},
		{`rate(rq_counter_total[2m])`, 1},
		{`sum by (inst) (rate(rq_counter_total[2m])) / rq_gauge`, 2},
		{`rq_counter_total + rq_counter_total offset 1m + rate(rq_counter_total[5m])`, 3},
	}
	for _, tc := range cases {
		cq := &countingQueryable{inner: db}
		expr, err := ParseExpr(tc.q)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.q, err)
		}
		// 41 steps: the naive path would issue 41× as many Selects.
		_, err = eng.RangeExpr(cq, expr, model.MillisToTime(0), model.MillisToTime(600_000), 15*time.Second)
		if err != nil {
			t.Fatalf("range %q: %v", tc.q, err)
		}
		if got := cq.selects.Load(); got != tc.selectors {
			t.Errorf("%q: %d Selects, want exactly %d", tc.q, got, tc.selectors)
		}
	}
}

// TestRangeMaxSteps verifies the step-count guardrail fails fast, before
// any storage access.
func TestRangeMaxSteps(t *testing.T) {
	db := rangeTestStorage(t)
	cq := &countingQueryable{inner: db}
	eng := NewEngine()
	start := time.Unix(0, 0)
	end := time.Unix(2_000_000_000, 0)
	_, err := eng.Range(cq, `rq_gauge`, start, end, 5*time.Second)
	if err == nil {
		t.Fatal("expected step-limit error")
	}
	if !IsLimitError(err) {
		t.Fatalf("expected LimitError, got %T: %v", err, err)
	}
	if n := cq.selects.Load(); n != 0 {
		t.Errorf("guardrail ran %d Selects; must fail before storage", n)
	}
}

// TestRangeSampleBudget verifies the prefetch sample budget, both through
// the hint-aware storage path (tsdb.DB) and the plain-Queryable fallback.
func TestRangeSampleBudget(t *testing.T) {
	db := rangeTestStorage(t)
	eng := NewEngine()
	eng.MaxSamples = 10 // the storage holds far more matching samples
	for name, q := range map[string]Queryable{
		"hinted": db,
		"plain":  &countingQueryable{inner: db}, // hides SelectWithHints
	} {
		_, err := eng.Range(q, `rq_counter_total`, model.MillisToTime(0), model.MillisToTime(600_000), 15*time.Second)
		if err == nil || !IsLimitError(err) {
			t.Errorf("%s: expected LimitError, got %v", name, err)
		}
	}
}

// TestRangeContextCancel verifies RangeCtx aborts on an expired deadline.
func TestRangeContextCancel(t *testing.T) {
	db := rangeTestStorage(t)
	eng := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.RangeCtx(ctx, db, `rate(rq_counter_total[2m])`, model.MillisToTime(0), model.MillisToTime(600_000), 15*time.Second)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

// TestParseExprCached verifies cache hits return the same AST and the LRU
// stays bounded.
func TestParseExprCached(t *testing.T) {
	e1, err := ParseExprCached(`rate(cache_test_metric[5m])`)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ParseExprCached(`rate(cache_test_metric[5m])`)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("cache miss on identical query text")
	}
	if _, err := ParseExprCached(`this is not promql`); err == nil {
		t.Error("expected parse error")
	}
	// Bound: insert > parseCacheSize distinct queries; the cache must not
	// exceed its capacity.
	for i := 0; i < parseCacheSize+100; i++ {
		if _, err := ParseExprCached(fmt.Sprintf(`cache_fill_metric{i="%d"}`, i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := sharedParseCache.len(); n > parseCacheSize {
		t.Errorf("cache grew to %d entries, cap is %d", n, parseCacheSize)
	}
}
