package promql

import (
	"fmt"
	"strings"
	"time"
	"unicode"
)

// ItemType identifies lexical token kinds.
type ItemType int

const (
	ERROR ItemType = iota
	EOF
	IDENT
	NUMBER
	STRING
	DURATION

	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA
	COLON

	ASSIGN   // =
	EQL      // ==
	NEQ      // !=
	LTE      // <=
	LSS      // <
	GTE      // >=
	GTR      // >
	EQLRegex // =~
	NEQRegex // !~
	ADD      // +
	SUB      // -
	MUL      // *
	DIV      // /
	MOD      // %
	POW      // ^

	// Keywords
	AND
	OR
	UNLESS
	BY
	WITHOUT
	ON
	IGNORING
	GroupLeft
	GroupRight
	OFFSET
	BOOL

	// Aggregators
	SUM
	AVG
	MIN
	MAX
	COUNT
	STDDEV
	STDVAR
	TOPK
	BOTTOMK
	GROUP
	QUANTILE
)

var keywords = map[string]ItemType{
	"and": AND, "or": OR, "unless": UNLESS,
	"by": BY, "without": WITHOUT, "on": ON, "ignoring": IGNORING,
	"group_left": GroupLeft, "group_right": GroupRight,
	"offset": OFFSET, "bool": BOOL,
	"sum": SUM, "avg": AVG, "min": MIN, "max": MAX, "count": COUNT,
	"stddev": STDDEV, "stdvar": STDVAR, "topk": TOPK, "bottomk": BOTTOMK,
	"group": GROUP, "quantile": QUANTILE,
}

var itemNames = map[ItemType]string{
	ERROR: "error", EOF: "eof", IDENT: "identifier", NUMBER: "number",
	STRING: "string", DURATION: "duration",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", COMMA: ",", COLON: ":",
	ASSIGN: "=", EQL: "==", NEQ: "!=", LTE: "<=", LSS: "<", GTE: ">=",
	GTR: ">", EQLRegex: "=~", NEQRegex: "!~",
	ADD: "+", SUB: "-", MUL: "*", DIV: "/", MOD: "%", POW: "^",
	AND: "and", OR: "or", UNLESS: "unless", BY: "by", WITHOUT: "without",
	ON: "on", IGNORING: "ignoring", GroupLeft: "group_left",
	GroupRight: "group_right", OFFSET: "offset", BOOL: "bool",
	SUM: "sum", AVG: "avg", MIN: "min", MAX: "max", COUNT: "count",
	STDDEV: "stddev", STDVAR: "stdvar", TOPK: "topk", BOTTOMK: "bottomk",
	GROUP: "group", QUANTILE: "quantile",
}

func itemName(t ItemType) string {
	if n, ok := itemNames[t]; ok {
		return n
	}
	return fmt.Sprintf("item(%d)", int(t))
}

// isAggregator reports whether the token is an aggregation operator.
func isAggregator(t ItemType) bool {
	switch t {
	case SUM, AVG, MIN, MAX, COUNT, STDDEV, STDVAR, TOPK, BOTTOMK, GROUP, QUANTILE:
		return true
	}
	return false
}

// item is one lexical token.
type item struct {
	typ ItemType
	val string
	pos int
}

func (i item) String() string { return fmt.Sprintf("%s(%q)", itemName(i.typ), i.val) }

// lexer tokenizes a PromQL expression string.
type lexer struct {
	input string
	pos   int
	items []item
	err   error
}

// lex tokenizes the whole input eagerly.
func lex(input string) ([]item, error) {
	l := &lexer{input: input}
	for l.err == nil {
		it := l.next()
		l.items = append(l.items, it)
		if it.typ == EOF || it.typ == ERROR {
			break
		}
	}
	if l.err != nil {
		return nil, l.err
	}
	last := l.items[len(l.items)-1]
	if last.typ == ERROR {
		return nil, fmt.Errorf("promql: lex error at %d: %s", last.pos, last.val)
	}
	return l.items, nil
}

func (l *lexer) next() item {
	// Skip whitespace and comments.
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '#' {
			for l.pos < len(l.input) && l.input[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.input) {
		return item{typ: EOF, pos: l.pos}
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case c == '(':
		l.pos++
		return item{LPAREN, "(", start}
	case c == ')':
		l.pos++
		return item{RPAREN, ")", start}
	case c == '{':
		l.pos++
		return item{LBRACE, "{", start}
	case c == '}':
		l.pos++
		return item{RBRACE, "}", start}
	case c == '[':
		l.pos++
		return item{LBRACKET, "[", start}
	case c == ']':
		l.pos++
		return item{RBRACKET, "]", start}
	case c == ',':
		l.pos++
		return item{COMMA, ",", start}
	case c == ':':
		l.pos++
		return item{COLON, ":", start}
	case c == '+':
		l.pos++
		return item{ADD, "+", start}
	case c == '-':
		l.pos++
		return item{SUB, "-", start}
	case c == '*':
		l.pos++
		return item{MUL, "*", start}
	case c == '/':
		l.pos++
		return item{DIV, "/", start}
	case c == '%':
		l.pos++
		return item{MOD, "%", start}
	case c == '^':
		l.pos++
		return item{POW, "^", start}
	case c == '=':
		l.pos++
		if l.peek() == '=' {
			l.pos++
			return item{EQL, "==", start}
		}
		if l.peek() == '~' {
			l.pos++
			return item{EQLRegex, "=~", start}
		}
		return item{ASSIGN, "=", start}
	case c == '!':
		l.pos++
		if l.peek() == '=' {
			l.pos++
			return item{NEQ, "!=", start}
		}
		if l.peek() == '~' {
			l.pos++
			return item{NEQRegex, "!~", start}
		}
		return item{ERROR, "unexpected '!'", start}
	case c == '<':
		l.pos++
		if l.peek() == '=' {
			l.pos++
			return item{LTE, "<=", start}
		}
		return item{LSS, "<", start}
	case c == '>':
		l.pos++
		if l.peek() == '=' {
			l.pos++
			return item{GTE, ">=", start}
		}
		return item{GTR, ">", start}
	case c == '"' || c == '\'':
		return l.lexString(c)
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.input) && l.input[l.pos+1] >= '0' && l.input[l.pos+1] <= '9':
		return l.lexNumberOrDuration()
	case isAlpha(rune(c)):
		return l.lexIdent()
	}
	return item{ERROR, fmt.Sprintf("unexpected character %q", c), start}
}

func (l *lexer) peek() byte {
	if l.pos < len(l.input) {
		return l.input[l.pos]
	}
	return 0
}

func (l *lexer) lexString(quote byte) item {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '\\' && l.pos+1 < len(l.input) {
			l.pos++
			switch l.input[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\':
				b.WriteByte('\\')
			case quote:
				b.WriteByte(quote)
			default:
				b.WriteByte('\\')
				b.WriteByte(l.input[l.pos])
			}
			l.pos++
			continue
		}
		if c == quote {
			l.pos++
			return item{STRING, b.String(), start}
		}
		b.WriteByte(c)
		l.pos++
	}
	return item{ERROR, "unterminated string", start}
}

func (l *lexer) lexNumberOrDuration() item {
	start := l.pos
	// Hex?
	if l.input[l.pos] == '0' && l.pos+1 < len(l.input) && (l.input[l.pos+1] == 'x' || l.input[l.pos+1] == 'X') {
		l.pos += 2
		for l.pos < len(l.input) && isHex(l.input[l.pos]) {
			l.pos++
		}
		return item{NUMBER, l.input[start:l.pos], start}
	}
	seenDot, seenExp := false, false
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp:
			// Exponent only if followed by digit or sign+digit.
			if l.pos+1 < len(l.input) && (isDigit(l.input[l.pos+1]) ||
				(l.input[l.pos+1] == '+' || l.input[l.pos+1] == '-') && l.pos+2 < len(l.input) && isDigit(l.input[l.pos+2])) {
				seenExp = true
				l.pos++
				if l.input[l.pos] == '+' || l.input[l.pos] == '-' {
					l.pos++
				}
			} else {
				goto done
			}
		default:
			goto done
		}
	}
done:
	// Duration suffix? (e.g. 5m, 1h30m, 90s, 2d, 1w, 1y, 100ms)
	if !seenDot && !seenExp && l.pos < len(l.input) && isDurUnit(l.input[l.pos]) {
		for l.pos < len(l.input) && (isDigit(l.input[l.pos]) || isDurUnit(l.input[l.pos])) {
			l.pos++
		}
		return item{DURATION, l.input[start:l.pos], start}
	}
	return item{NUMBER, l.input[start:l.pos], start}
}

func (l *lexer) lexIdent() item {
	start := l.pos
	for l.pos < len(l.input) {
		c := rune(l.input[l.pos])
		if isAlpha(c) || unicode.IsDigit(c) || c == ':' {
			l.pos++
			continue
		}
		break
	}
	word := l.input[start:l.pos]
	if t, ok := keywords[strings.ToLower(word)]; ok {
		return item{t, word, start}
	}
	// Special float words.
	switch strings.ToLower(word) {
	case "nan", "inf":
		return item{NUMBER, word, start}
	}
	return item{IDENT, word, start}
}

func isAlpha(c rune) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func isDurUnit(c byte) bool {
	switch c {
	case 's', 'm', 'h', 'd', 'w', 'y':
		return true
	}
	return false
}

// parseDuration parses PromQL duration literals like "1h30m", "15s", "100ms".
func parseDuration(s string) (time.Duration, error) {
	if s == "" {
		return 0, fmt.Errorf("promql: empty duration")
	}
	var total time.Duration
	i := 0
	for i < len(s) {
		j := i
		for j < len(s) && isDigit(s[j]) {
			j++
		}
		if j == i {
			return 0, fmt.Errorf("promql: bad duration %q", s)
		}
		n := int64(0)
		for _, c := range s[i:j] {
			n = n*10 + int64(c-'0')
		}
		if j >= len(s) {
			return 0, fmt.Errorf("promql: missing unit in duration %q", s)
		}
		var unit time.Duration
		var ul int
		switch {
		case strings.HasPrefix(s[j:], "ms"):
			unit, ul = time.Millisecond, 2
		case s[j] == 's':
			unit, ul = time.Second, 1
		case s[j] == 'm':
			unit, ul = time.Minute, 1
		case s[j] == 'h':
			unit, ul = time.Hour, 1
		case s[j] == 'd':
			unit, ul = 24*time.Hour, 1
		case s[j] == 'w':
			unit, ul = 7*24*time.Hour, 1
		case s[j] == 'y':
			unit, ul = 365*24*time.Hour, 1
		default:
			return 0, fmt.Errorf("promql: bad duration unit in %q", s)
		}
		total += time.Duration(n) * unit
		i = j + ul
	}
	return total, nil
}
