package promql

import (
	"context"
	"time"

	"repro/internal/telemetry"
)

// stageMetrics holds the engine's per-stage latency histograms, all series
// of one telemetry_promql_stage_seconds family keyed by the stage label.
type stageMetrics struct {
	parse    *telemetry.Histogram
	prefetch *telemetry.Histogram
	eval     *telemetry.Histogram
	merge    *telemetry.Histogram
}

// InstrumentTelemetry registers the engine's stage histograms on reg. Call
// once at wiring time, before the engine serves queries. Independently of
// registration, every evaluation also reports its stages to the QueryTrace
// attached to its context (see telemetry.ContextWithTrace), which is how
// the slow-query log and the X-Query-Trace header get per-query spans.
func (e *Engine) InstrumentTelemetry(reg *telemetry.Registry) {
	h := func(stage string) *telemetry.Histogram {
		return reg.Histogram("telemetry_promql_stage_seconds",
			"PromQL evaluation latency by stage (parse, prefetch, eval, merge).",
			telemetry.LatencyBuckets, "stage", stage)
	}
	e.metrics = &stageMetrics{
		parse:    h("parse"),
		prefetch: h("prefetch"),
		eval:     h("eval"),
		merge:    h("merge"),
	}
}

// noteStage records the time since start under the named stage: into the
// engine's histograms when instrumented, and into the context's QueryTrace
// when one is attached. Uninstrumented, untraced evaluations pay two clock
// reads and two nil checks per stage — stages are per query, not per
// sample.
func (e *Engine) noteStage(ctx context.Context, stage string, start time.Time) {
	d := time.Since(start)
	if m := e.metrics; m != nil {
		var h *telemetry.Histogram
		switch stage {
		case "parse":
			h = m.parse
		case "prefetch":
			h = m.prefetch
		case "eval":
			h = m.eval
		case "merge":
			h = m.merge
		}
		h.Observe(d.Seconds())
	}
	if ctx != nil {
		telemetry.TraceFrom(ctx).ObserveStage(stage, d)
	}
}
