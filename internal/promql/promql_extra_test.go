package promql

import (
	"math"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb"
)

func TestUnaryMinusVector(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `-temperature`, 600)
	if len(vec) != 2 || vec[0].V != -7 {
		t.Errorf("unary minus = %+v", vec)
	}
	if vec[0].Labels.Has(labels.MetricName) {
		t.Error("unary minus kept metric name")
	}
	if got := evalScalarAt(t, db, `-(3)`, 600); got != -3 {
		t.Errorf("-(3) = %v", got)
	}
}

func TestGroupLeftIncludeLabels(t *testing.T) {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	// Per-unit metric and node metadata carrying an extra label to pull in.
	db.Append(labels.FromStrings(labels.MetricName, "unit_cpu", "uuid", "1", "instance", "n1"), 1000, 4)
	db.Append(labels.FromStrings(labels.MetricName, "unit_cpu", "uuid", "2", "instance", "n1"), 1000, 8)
	db.Append(labels.FromStrings(labels.MetricName, "node_meta", "instance", "n1", "rack", "r7"), 1000, 1)
	vec := evalAt(t, db, `unit_cpu * on (instance) group_left (rack) node_meta`, 1)
	if len(vec) != 2 {
		t.Fatalf("group_left include = %+v", vec)
	}
	for _, s := range vec {
		if s.Labels.Get("rack") != "r7" {
			t.Errorf("include label missing: %v", s.Labels)
		}
		if !s.Labels.Has("uuid") {
			t.Errorf("many-side label lost: %v", s.Labels)
		}
	}
}

func TestGroupRight(t *testing.T) {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	db.Append(labels.FromStrings(labels.MetricName, "one_side", "instance", "n1"), 1000, 100)
	db.Append(labels.FromStrings(labels.MetricName, "many_side", "instance", "n1", "k", "a"), 1000, 1)
	db.Append(labels.FromStrings(labels.MetricName, "many_side", "instance", "n1", "k", "b"), 1000, 2)
	vec := evalAt(t, db, `one_side * on (instance) group_right many_side`, 1)
	if len(vec) != 2 {
		t.Fatalf("group_right = %+v", vec)
	}
	// Result keeps the many (RHS) side labels.
	if !vec[0].Labels.Has("k") {
		t.Errorf("labels = %v", vec[0].Labels)
	}
	if vec[0].V != 100 && vec[0].V != 200 {
		t.Errorf("values = %+v", vec)
	}
}

func TestSetOpsWithOnMatching(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `http_requests_total and on (job) temperature`, 600)
	if len(vec) != 0 {
		t.Errorf("and on(job): %+v", vec)
	}
	vec = evalAt(t, db, `http_requests_total unless on (instance) http_requests_total{instance="a"}`, 600)
	if len(vec) != 1 || vec[0].Labels.Get("instance") != "b" {
		t.Errorf("unless on: %+v", vec)
	}
}

func TestOffsetOnMatrix(t *testing.T) {
	db := testStorage(t)
	// rate over a window ending 5m earlier.
	vec := evalAt(t, db, `rate(http_requests_total{instance="a"}[2m] offset 5m)`, 600)
	if len(vec) != 1 || !approx(vec[0].V, 10) {
		t.Errorf("offset matrix rate = %+v", vec)
	}
}

func TestComparisonOperatorsVectorVector(t *testing.T) {
	db := testStorage(t)
	// a(6000) < b(12000): filter keeps the lhs sample where true.
	vec := evalAt(t, db, `http_requests_total{instance="a"} < on () group_left http_requests_total{instance="b"}`, 600)
	if len(vec) != 1 || vec[0].V != 6000 {
		t.Errorf("vector< = %+v", vec)
	}
	vec = evalAt(t, db, `http_requests_total{instance="a"} > bool on () group_left http_requests_total{instance="b"}`, 600)
	if len(vec) != 1 || vec[0].V != 0 {
		t.Errorf("vector> bool = %+v", vec)
	}
}

func TestQuantileEdges(t *testing.T) {
	if !math.IsNaN(quantile(0.5, nil)) {
		t.Error("quantile of empty should be NaN")
	}
	vals := []float64{1, 2, 3, 4}
	if got := quantile(0, vals); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := quantile(1, vals); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if !math.IsInf(quantile(-0.1, vals), -1) || !math.IsInf(quantile(1.1, vals), 1) {
		t.Error("out-of-range phi should be ±Inf")
	}
}

func TestStddevOverTimeAndLabelJoin(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `stddev_over_time(temperature{zone="dc1"}[2m])`, 600)
	if len(vec) != 1 || vec[0].V != 0 {
		t.Errorf("stddev of constant = %+v", vec)
	}
	vec = evalAt(t, db, `label_join(temperature, "combo", "-", "zone", "__name__")`, 600)
	if len(vec) != 2 || vec[0].Labels.Get("combo") != "dc1-temperature" {
		t.Errorf("label_join = %+v", vec)
	}
}

func TestTimestampFunction(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `timestamp(temperature{zone="dc1"})`, 600)
	if len(vec) != 1 || vec[0].V != 600 {
		t.Errorf("timestamp = %+v", vec)
	}
}

func TestAggregateWithoutKeepsOtherLabels(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `max without (zone) (temperature)`, 600)
	if len(vec) != 1 || vec[0].V != 40 {
		t.Errorf("max without = %+v", vec)
	}
	if vec[0].Labels.Has("zone") || vec[0].Labels.Has(labels.MetricName) {
		t.Errorf("labels = %v", vec[0].Labels)
	}
}

func TestTopkPreservesSeriesLabels(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `topk(2, http_requests_total)`, 600)
	if len(vec) != 2 {
		t.Fatalf("topk(2) = %+v", vec)
	}
	// topk keeps full original labels including __name__.
	if vec[0].Labels.Name() != "http_requests_total" {
		t.Errorf("topk dropped name: %v", vec[0].Labels)
	}
	// k larger than set size returns everything.
	vec = evalAt(t, db, `topk(10, http_requests_total)`, 600)
	if len(vec) != 2 {
		t.Errorf("topk(10) = %d", len(vec))
	}
	// k <= 0 yields nothing.
	vec = evalAt(t, db, `topk(0, http_requests_total)`, 600)
	if len(vec) != 0 {
		t.Errorf("topk(0) = %+v", vec)
	}
}

func TestRangeQueryErrors(t *testing.T) {
	db := testStorage(t)
	eng := NewEngine()
	if _, err := eng.Range(db, `up`, time.Unix(10, 0), time.Unix(0, 0), -time.Second); err == nil {
		t.Error("negative step accepted")
	}
	if _, err := eng.Range(db, `up[5m]`, time.Unix(0, 0), time.Unix(10, 0), time.Second); err == nil {
		t.Error("matrix range query accepted")
	}
	if _, err := eng.Range(db, `sum(`, time.Unix(0, 0), time.Unix(10, 0), time.Second); err == nil {
		t.Error("parse error swallowed")
	}
}

func TestVectorSelectorStaleSkipped(t *testing.T) {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	ls := labels.FromStrings(labels.MetricName, "m")
	db.Append(ls, 1000, 5)
	db.Append(ls, 2000, model.StaleNaN())
	vec := evalAt(t, db, `m`, 3)
	if len(vec) != 0 {
		t.Errorf("stale series returned: %+v", vec)
	}
	// Range function over stale+live samples only sees live ones.
	db.Append(ls, 3000, 7)
	vec = evalAt(t, db, `count_over_time(m[10s])`, 4)
	if len(vec) != 1 || vec[0].V != 2 {
		t.Errorf("count over stale window = %+v", vec)
	}
}

func TestParenAndPrecedenceCombos(t *testing.T) {
	db := testStorage(t)
	cases := []struct {
		q    string
		want float64
	}{
		{`2 * 3 + 4`, 10},
		{`2 + 3 * 4`, 14},
		{`(2 + 3) * 4`, 20},
		{`2 ^ 2 ^ 3`, 256}, // right assoc: 2^(2^3)
		// Divergence from Prometheus: unary minus folds into the number
		// literal before ^ applies, so -2^2 = (-2)^2 = 4 here (Prometheus
		// parses it as -(2^2) = -4). Parenthesize to disambiguate.
		{`-2 ^ 2`, 4},
		{`-(2 ^ 2)`, -4},
		{`10 % 3 + 1`, 2},
	}
	for _, c := range cases {
		if got := evalScalarAt(t, db, c.q, 600); !approx(got, c.want) {
			t.Errorf("%s = %v, want %v", c.q, got, c.want)
		}
	}
}
