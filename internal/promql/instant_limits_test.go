package promql

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb"
)

// hintRecordingQueryable records the SampleLimit each hinted Select was
// given — the proof that the instant path threads the engine budget into
// the storage pass (where the head aborts mid-copy) rather than counting
// after materializing.
type hintRecordingQueryable struct {
	inner  *tsdb.DB
	limits []int64
}

func (h *hintRecordingQueryable) Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error) {
	return h.inner.Select(mint, maxt, ms...)
}

func (h *hintRecordingQueryable) SelectWithHints(hints model.SelectHints, ms ...*labels.Matcher) ([]model.Series, error) {
	h.limits = append(h.limits, hints.SampleLimit)
	return h.inner.SelectWithHints(hints, ms...)
}

func instantLimitsDB(t *testing.T) *tsdb.DB {
	t.Helper()
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	for s := 0; s < 50; s++ {
		ls := labels.FromStrings(labels.MetricName, "il_metric", "inst", fmt.Sprintf("i%02d", s))
		for i := int64(0); i < 100; i++ {
			if err := db.Append(ls, i*1000, float64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// TestInstantQuerySampleLimit: an instant query whose selectors would
// materialize more than MaxSamples fails with a LimitError — through the
// hint-aware path (budget enforced inside the storage pass) and through a
// plain Queryable (budget enforced as the selectors accumulate).
func TestInstantQuerySampleLimit(t *testing.T) {
	db := instantLimitsDB(t)
	ts := time.UnixMilli(99_000)
	// 50 series x 100 samples in range: the matrix selector touches 5000.
	oversized := `sum(avg_over_time(il_metric[200s]))`

	for name, q := range map[string]Queryable{
		"hinted": db,
		"plain":  &countingQueryable{inner: db}, // hides SelectWithHints
	} {
		t.Run(name, func(t *testing.T) {
			e := NewEngine()
			e.MaxSamples = 200
			_, err := e.Instant(q, oversized, ts)
			if !IsLimitError(err) {
				t.Fatalf("oversized instant query returned %v, want LimitError", err)
			}
			// A budget that fits must leave the result untouched.
			e.MaxSamples = 1 << 40
			if _, err := e.Instant(q, oversized, ts); err != nil {
				t.Fatalf("roomy budget: %v", err)
			}
		})
	}
}

// TestInstantQueryThreadsBudgetIntoStorage: the storage pass must receive
// the remaining budget via SelectHints — and successive selectors in one
// evaluation see a shrinking remainder, so a query cannot evade the budget
// by splitting its load across selectors.
func TestInstantQueryThreadsBudgetIntoStorage(t *testing.T) {
	db := instantLimitsDB(t)
	rec := &hintRecordingQueryable{inner: db}
	e := NewEngine()
	e.MaxSamples = 100_000
	ts := time.UnixMilli(99_000)
	if _, err := e.Instant(rec, `il_metric + on(inst) count_over_time(il_metric[30s])`, ts); err != nil {
		t.Fatalf("instant: %v", err)
	}
	if len(rec.limits) != 2 {
		t.Fatalf("want 2 hinted selects (one per selector), got %d", len(rec.limits))
	}
	if rec.limits[0] != 100_000 {
		t.Fatalf("first selector got SampleLimit %d, want the full budget 100000", rec.limits[0])
	}
	if rec.limits[1] >= rec.limits[0] {
		t.Fatalf("second selector's budget %d did not shrink below the first's %d",
			rec.limits[1], rec.limits[0])
	}
	// With no engine budget the hints must not invent one.
	rec.limits = nil
	e.MaxSamples = 0
	if _, err := e.Instant(rec, `il_metric`, ts); err != nil {
		t.Fatal(err)
	}
	if len(rec.limits) != 1 || rec.limits[0] != 0 {
		t.Fatalf("budget-less engine sent SampleLimit %v, want [0]", rec.limits)
	}
}

// TestInstantQueryBudgetUnchangedResults: enabling the budget must not
// change any in-budget result (the hinted and plain paths agree).
func TestInstantQueryBudgetUnchangedResults(t *testing.T) {
	db := instantLimitsDB(t)
	ts := time.UnixMilli(50_000)
	queries := []string{
		`il_metric{inst="i07"}`,
		`sum(il_metric)`,
		`rate(il_metric[60s])`,
		`topk(3, il_metric)`,
	}
	unlimited := NewEngine()
	unlimited.MaxSamples = 0
	budgeted := NewEngine()
	budgeted.MaxSamples = 1 << 30
	for _, qs := range queries {
		want, err := unlimited.Instant(db, qs, ts)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		got, err := budgeted.Instant(db, qs, ts)
		if err != nil {
			t.Fatalf("%s budgeted: %v", qs, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: budgeted result diverged:\n got %v\nwant %v", qs, got, want)
		}
	}
}
