package promql

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
)

// Value is a PromQL evaluation result: Scalar, Vector, Matrix or String.
type Value interface {
	Type() ValueType
}

// Scalar is a single float at an evaluation timestamp.
type Scalar struct {
	T int64
	V float64
}

func (Scalar) Type() ValueType { return ValueScalar }

// Sample is one labelled value of an instant vector.
type Sample struct {
	Labels labels.Labels
	T      int64
	V      float64
}

// Vector is the result of an instant-vector expression.
type Vector []Sample

func (Vector) Type() ValueType { return ValueVector }

// Clone returns a deep copy of the vector (fresh label slices); see
// Matrix.Clone for why retained results must be snapshotted.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	out := make(Vector, len(v))
	for i, s := range v {
		out[i] = Sample{Labels: s.Labels.Copy(), T: s.T, V: s.V}
	}
	return out
}

// Matrix is a set of series over time: the result of a range query or a
// range selector.
type Matrix []model.Series

func (Matrix) Type() ValueType { return ValueMatrix }

// Clone returns a deep copy of the matrix: fresh series, label and sample
// slices sharing nothing with the receiver. Result label slices otherwise
// alias storage-owned label sets (see the aliasing note on the range
// merge), so anything that retains a result beyond the request — the query
// result cache above all — must snapshot it with Clone.
func (m Matrix) Clone() Matrix {
	if m == nil {
		return nil
	}
	out := make(Matrix, len(m))
	for i, s := range m {
		out[i] = model.Series{
			Labels:  s.Labels.Copy(),
			Samples: append([]model.Sample(nil), s.Samples...),
		}
	}
	return out
}

// String is a string literal value.
type String struct {
	V string
}

func (String) Type() ValueType { return ValueString }

// Queryable abstracts the storage the engine reads from; *tsdb.DB and the
// Thanos fan-in querier implement it.
type Queryable interface {
	Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error)
}

// HintedQueryable is optionally implemented by storage that can exploit
// per-query hints — the evaluation bounds, resolution step, and a sample
// budget enforced mid-pass. *tsdb.DB, the Thanos store and the fan-in
// querier all implement it; the windowed range evaluator prefers it for
// prefetch so oversized queries fail inside the storage pass instead of
// after materializing every sample.
type HintedQueryable interface {
	SelectWithHints(hints model.SelectHints, ms ...*labels.Matcher) ([]model.Series, error)
}

// Engine evaluates PromQL expressions against a Queryable.
type Engine struct {
	// LookbackDelta bounds how far an instant selector reaches back for the
	// most recent sample; Prometheus defaults to 5 minutes.
	LookbackDelta time.Duration
	// MaxSamples bounds how many samples a range query may load during
	// prefetch; 0 means unlimited. Violations surface as *LimitError.
	MaxSamples int
	// MaxSteps bounds how many steps a range query may evaluate; 0 falls
	// back to a hard safety ceiling (absMaxSteps) so even a hand-built
	// Engine cannot be driven into an unbounded per-step allocation.
	// Violations surface as *LimitError before any storage work.
	MaxSteps int

	// metrics holds the per-stage latency histograms; nil until
	// InstrumentTelemetry.
	metrics *stageMetrics
}

// absMaxSteps is the backstop applied when MaxSteps is unset: it bounds
// the per-step result table a range query may allocate.
const absMaxSteps = 10_000_000

// DefaultMaxSteps matches Prometheus's 11 000-point limit per range query.
const DefaultMaxSteps = 11000

// NewEngine returns an Engine with Prometheus-like defaults.
func NewEngine() *Engine {
	return &Engine{
		LookbackDelta: 5 * time.Minute,
		MaxSamples:    50_000_000,
		MaxSteps:      DefaultMaxSteps,
	}
}

// LimitError reports a query that tripped an engine guardrail (step count
// or sample budget). promapi maps it to HTTP 422: the query is well-formed
// but unprocessable at this size.
type LimitError struct {
	Msg string
}

func (e *LimitError) Error() string { return e.Msg }

// IsLimitError reports whether err (or anything it wraps) is an engine
// guardrail violation.
func IsLimitError(err error) bool {
	var le *LimitError
	return errors.As(err, &le)
}

// Instant evaluates the expression at a single timestamp.
func (e *Engine) Instant(q Queryable, input string, ts time.Time) (Value, error) {
	return e.InstantCtx(context.Background(), q, input, ts)
}

// InstantCtx is Instant with cancellation/deadline support; the context is
// checked before each storage access.
func (e *Engine) InstantCtx(ctx context.Context, q Queryable, input string, ts time.Time) (Value, error) {
	parseStart := time.Now()
	expr, err := ParseExprCached(input)
	e.noteStage(ctx, "parse", parseStart)
	if err != nil {
		return nil, err
	}
	evalStart := time.Now()
	v, err := e.InstantExprCtx(ctx, q, expr, ts)
	e.noteStage(ctx, "eval", evalStart)
	return v, err
}

// InstantExpr is Instant for a pre-parsed expression.
func (e *Engine) InstantExpr(q Queryable, expr Expr, ts time.Time) (Value, error) {
	return e.InstantExprCtx(context.Background(), q, expr, ts)
}

// InstantExprCtx is InstantExpr with cancellation/deadline support.
func (e *Engine) InstantExprCtx(ctx context.Context, q Queryable, expr Expr, ts time.Time) (Value, error) {
	ev := &evaluator{engine: e, q: q, ts: model.TimeToMillis(ts), ctx: ctx}
	return ev.eval(expr)
}

// Range evaluates the expression at every step in [start, end] and returns
// a Matrix keyed by result labels.
func (e *Engine) Range(q Queryable, input string, start, end time.Time, step time.Duration) (Matrix, error) {
	return e.RangeCtx(context.Background(), q, input, start, end, step)
}

// RangeCtx is Range with cancellation/deadline support.
func (e *Engine) RangeCtx(ctx context.Context, q Queryable, input string, start, end time.Time, step time.Duration) (Matrix, error) {
	parseStart := time.Now()
	expr, err := ParseExprCached(input)
	e.noteStage(ctx, "parse", parseStart)
	if err != nil {
		return nil, err
	}
	return e.RangeExprCtx(ctx, q, expr, start, end, step)
}

// RangeExpr is Range for a pre-parsed expression.
func (e *Engine) RangeExpr(q Queryable, expr Expr, start, end time.Time, step time.Duration) (Matrix, error) {
	return e.RangeExprCtx(context.Background(), q, expr, start, end, step)
}

// RangeExprCtx evaluates the expression over [start, end] at step
// resolution with the windowed one-Select-per-selector strategy: every
// selector in the tree is prefetched with a single storage Select spanning
// the whole (lookback/range-padded) window, then steps are evaluated in
// parallel batches against per-series cursors sliding over the prefetched
// samples. Output is identical to evaluating InstantExpr per step.
func (e *Engine) RangeExprCtx(ctx context.Context, q Queryable, expr Expr, start, end time.Time, step time.Duration) (Matrix, error) {
	if step <= 0 {
		return nil, fmt.Errorf("promql: step must be positive")
	}
	if expr.Type() == ValueMatrix {
		return nil, fmt.Errorf("promql: range queries require scalar or instant-vector expressions")
	}
	if start.After(end) {
		return Matrix{}, nil
	}
	steps64 := int64(end.Sub(start)/step) + 1
	maxSteps := int64(e.MaxSteps)
	if maxSteps <= 0 {
		maxSteps = absMaxSteps
	}
	if steps64 > maxSteps {
		return nil, &LimitError{Msg: fmt.Sprintf(
			"promql: query would evaluate %d steps, exceeding the limit of %d (shrink the range or increase the step)",
			steps64, maxSteps)}
	}
	re := &rangeEvaluator{
		engine: e, q: q, expr: expr,
		start: start, step: step, steps: int(steps64),
	}
	return re.run(ctx)
}

// rangeExprNaive is the original per-step reference implementation: a full
// InstantExpr evaluation — with one storage Select per selector — at every
// step. It is retained as the oracle for the equivalence tests and as the
// baseline the range benchmarks were recorded against; it enforces none of
// the engine guardrails.
func (e *Engine) rangeExprNaive(q Queryable, expr Expr, start, end time.Time, step time.Duration) (Matrix, error) {
	if step <= 0 {
		return nil, fmt.Errorf("promql: step must be positive")
	}
	if expr.Type() == ValueMatrix {
		return nil, fmt.Errorf("promql: range queries require scalar or instant-vector expressions")
	}
	acc := map[uint64]*model.Series{}
	var order []uint64
	for ts := start; !ts.After(end); ts = ts.Add(step) {
		v, err := e.InstantExpr(q, expr, ts)
		if err != nil {
			return nil, err
		}
		var vec Vector
		switch tv := v.(type) {
		case Vector:
			vec = tv
		case Scalar:
			vec = Vector{{Labels: labels.Labels{}, T: tv.T, V: tv.V}}
		default:
			return nil, fmt.Errorf("promql: unexpected %s result in range query", v.Type())
		}
		for _, s := range vec {
			h := s.Labels.Hash()
			sr, ok := acc[h]
			if !ok {
				sr = &model.Series{Labels: s.Labels}
				acc[h] = sr
				order = append(order, h)
			}
			sr.Samples = append(sr.Samples, model.Sample{T: s.T, V: s.V})
		}
	}
	out := make(Matrix, 0, len(order))
	for _, h := range order {
		out = append(out, *acc[h])
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out, nil
}

// evaluator evaluates one expression tree at one timestamp.
type evaluator struct {
	engine *Engine
	q      Queryable
	ts     int64 // evaluation time in ms
	ctx    context.Context
	// win, when non-nil, serves selectors from the range evaluator's
	// prefetched window instead of live storage Selects.
	win *stepWindow
	// loaded counts samples materialized by this evaluation's live
	// selectors, charged against Engine.MaxSamples. The range path budgets
	// during prefetch instead (its selectors never hit live storage).
	loaded int64
}

// selectSeries is the live selector storage access: one Select over
// [mint, maxt] with the engine's sample budget threaded through. Hint-aware
// storage (the TSDB head, the Thanos fan-in) enforces the remaining budget
// mid-pass, so an oversized instant query aborts during the copy instead of
// after materializing everything; plain Queryables are charged after the
// fact, which still bounds what one evaluation can accumulate.
func (ev *evaluator) selectSeries(mint, maxt int64, ms []*labels.Matcher) ([]model.Series, error) {
	budget := int64(ev.engine.MaxSamples)
	var series []model.Series
	var err error
	if hq, hinted := ev.q.(HintedQueryable); hinted {
		hints := model.SelectHints{Start: mint, End: maxt}
		if budget > 0 {
			rem := budget - ev.loaded
			if rem <= 0 {
				// Exactly exhausted: 0 means "unlimited" to storage, so pass
				// 1 — an empty selector still succeeds, any sample trips.
				rem = 1
			}
			hints.SampleLimit = rem
		}
		series, err = hq.SelectWithHints(hints, ms...)
	} else {
		series, err = ev.q.Select(mint, maxt, ms...)
	}
	if err != nil {
		if errors.Is(err, model.ErrSampleLimit) {
			return nil, ev.sampleLimitErr()
		}
		return nil, err
	}
	for _, s := range series {
		ev.loaded += int64(len(s.Samples))
	}
	if budget > 0 && ev.loaded > budget {
		return nil, ev.sampleLimitErr()
	}
	return series, nil
}

func (ev *evaluator) sampleLimitErr() error {
	return &LimitError{Msg: fmt.Sprintf(
		"promql: query exceeds the sample budget of %d (narrow the selectors or the range)",
		ev.engine.MaxSamples)}
}

// ctxErr reports context cancellation; checked before storage accesses.
func (ev *evaluator) ctxErr() error {
	if ev.ctx == nil {
		return nil
	}
	return ev.ctx.Err()
}

func (ev *evaluator) eval(expr Expr) (Value, error) {
	switch e := expr.(type) {
	case *NumberLiteral:
		return Scalar{T: ev.ts, V: e.Val}, nil
	case *StringLiteral:
		return String{V: e.Val}, nil
	case *ParenExpr:
		return ev.eval(e.Expr)
	case *UnaryExpr:
		v, err := ev.eval(e.Expr)
		if err != nil {
			return nil, err
		}
		switch tv := v.(type) {
		case Scalar:
			return Scalar{T: tv.T, V: -tv.V}, nil
		case Vector:
			out := make(Vector, len(tv))
			for i, s := range tv {
				out[i] = Sample{Labels: dropName(s.Labels), T: s.T, V: -s.V}
			}
			return out, nil
		}
		return nil, fmt.Errorf("promql: unary minus undefined on %s", v.Type())
	case *VectorSelector:
		return ev.vectorSelector(e)
	case *MatrixSelector:
		return ev.matrixSelector(e)
	case *Call:
		return e.Func.Call(ev, e.Args)
	case *AggregateExpr:
		return ev.aggregate(e)
	case *BinaryExpr:
		return ev.binary(e)
	}
	return nil, fmt.Errorf("promql: unhandled expression %T", expr)
}

// vectorSelector returns, per matching series, the most recent sample
// within the lookback window ending at the (offset-adjusted) eval time.
func (ev *evaluator) vectorSelector(vs *VectorSelector) (Vector, error) {
	if ev.win != nil {
		return ev.win.vectorAt(vs, ev.ts)
	}
	if err := ev.ctxErr(); err != nil {
		return nil, err
	}
	ts := ev.ts - model.DurationMillis(vs.Offset)
	mint := ts - model.DurationMillis(ev.engine.LookbackDelta)
	series, err := ev.selectSeries(mint, ts, vs.Matchers)
	if err != nil {
		return nil, err
	}
	out := make(Vector, 0, len(series))
	for _, s := range series {
		if len(s.Samples) == 0 {
			continue
		}
		last := s.Samples[len(s.Samples)-1]
		if model.IsStaleNaN(last.V) {
			// The series disappeared from its source; staleness markers
			// end its visibility immediately.
			continue
		}
		out = append(out, Sample{Labels: s.Labels, T: ev.ts, V: last.V})
	}
	return out, nil
}

// matrixSelector returns all samples per series in the range window ending
// at the (offset-adjusted) eval time.
func (ev *evaluator) matrixSelector(ms *MatrixSelector) (Matrix, error) {
	if ev.win != nil {
		return ev.win.matrixAt(ms, ev.ts)
	}
	if err := ev.ctxErr(); err != nil {
		return nil, err
	}
	ts := ev.ts - model.DurationMillis(ms.VS.Offset)
	mint := ts - model.DurationMillis(ms.Range)
	series, err := ev.selectSeries(mint+1, ts, ms.VS.Matchers) // window is (ts-range, ts]
	if err != nil {
		return nil, err
	}
	// Drop staleness markers: range functions must not see them as values.
	out := make(Matrix, 0, len(series))
	for _, s := range series {
		kept := dropStaleMarkers(s.Samples)
		if len(kept) == 0 {
			continue
		}
		out = append(out, model.Series{Labels: s.Labels, Samples: kept})
	}
	return out, nil
}

// dropStaleMarkers filters staleness markers out of a sample window; the
// common marker-free case returns the input slice unchanged. Both the live
// matrixSelector and the windowed range path use it, so their staleness
// semantics cannot diverge.
func dropStaleMarkers(samples []model.Sample) []model.Sample {
	hasStale := false
	for _, smp := range samples {
		if model.IsStaleNaN(smp.V) {
			hasStale = true
			break
		}
	}
	if !hasStale {
		return samples
	}
	filtered := make([]model.Sample, 0, len(samples))
	for _, smp := range samples {
		if !model.IsStaleNaN(smp.V) {
			filtered = append(filtered, smp)
		}
	}
	return filtered
}

// dropName removes the metric name, as PromQL does for derived values.
func dropName(ls labels.Labels) labels.Labels {
	if !ls.Has(labels.MetricName) {
		return ls
	}
	return ls.WithoutNames()
}

// aggregate implements sum/avg/min/max/count/stddev/stdvar/topk/bottomk/
// group/quantile with by/without grouping.
func (ev *evaluator) aggregate(agg *AggregateExpr) (Value, error) {
	val, err := ev.eval(agg.Expr)
	if err != nil {
		return nil, err
	}
	vec, ok := val.(Vector)
	if !ok {
		return nil, fmt.Errorf("promql: aggregation over %s not allowed", val.Type())
	}
	var param float64
	if agg.Param != nil {
		pv, err := ev.eval(agg.Param)
		if err != nil {
			return nil, err
		}
		ps, ok := pv.(Scalar)
		if !ok {
			return nil, fmt.Errorf("promql: aggregation parameter must be scalar")
		}
		param = ps.V
	}

	type group struct {
		labels  labels.Labels
		values  []float64
		samples []Sample // retained for topk/bottomk only
	}
	// Pre-sort the "by" grouping once so HashFor never copies per sample.
	grouping := agg.Grouping
	if !agg.Without && !sort.StringsAreSorted(grouping) {
		grouping = append([]string(nil), grouping...)
		sort.Strings(grouping)
	}
	keepSamples := agg.Op == TOPK || agg.Op == BOTTOMK
	groups := map[uint64]*group{}
	var order []uint64
	for _, s := range vec {
		var h uint64
		if agg.Without {
			h = s.Labels.HashWithout(grouping...)
		} else {
			h = s.Labels.HashFor(grouping...)
		}
		g, ok := groups[h]
		if !ok {
			var gl labels.Labels
			if agg.Without {
				gl = s.Labels.WithoutNames(agg.Grouping...)
			} else {
				gl = s.Labels.KeepNames(agg.Grouping...)
			}
			g = &group{labels: gl, values: make([]float64, 0, 8)}
			groups[h] = g
			order = append(order, h)
		}
		g.values = append(g.values, s.V)
		if keepSamples {
			g.samples = append(g.samples, s)
		}
	}

	out := make(Vector, 0, len(groups))
	for _, h := range order {
		g := groups[h]
		switch agg.Op {
		case TOPK, BOTTOMK:
			k := int(param)
			if k <= 0 {
				continue
			}
			sorted := append([]Sample(nil), g.samples...)
			sort.Slice(sorted, func(i, j int) bool {
				if agg.Op == TOPK {
					return sorted[i].V > sorted[j].V
				}
				return sorted[i].V < sorted[j].V
			})
			if k > len(sorted) {
				k = len(sorted)
			}
			// topk keeps original series labels.
			out = append(out, sorted[:k]...)
			continue
		}
		v, err := aggValue(agg.Op, g.values, param)
		if err != nil {
			return nil, err
		}
		out = append(out, Sample{Labels: g.labels, T: ev.ts, V: v})
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out, nil
}

func aggValue(op ItemType, vals []float64, param float64) (float64, error) {
	switch op {
	case SUM:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s, nil
	case AVG:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals)), nil
	case MIN:
		m := math.Inf(1)
		for _, v := range vals {
			if v < m || math.IsNaN(m) {
				m = v
			}
		}
		return m, nil
	case MAX:
		m := math.Inf(-1)
		for _, v := range vals {
			if v > m || math.IsNaN(m) {
				m = v
			}
		}
		return m, nil
	case COUNT:
		return float64(len(vals)), nil
	case GROUP:
		return 1, nil
	case STDDEV, STDVAR:
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		acc := 0.0
		for _, v := range vals {
			acc += (v - mean) * (v - mean)
		}
		acc /= float64(len(vals))
		if op == STDDEV {
			return math.Sqrt(acc), nil
		}
		return acc, nil
	case QUANTILE:
		return quantile(param, vals), nil
	}
	return 0, fmt.Errorf("promql: unsupported aggregation %s", itemName(op))
}

// quantile computes the φ-quantile with linear interpolation, matching
// Prometheus semantics.
func quantile(phi float64, vals []float64) float64 {
	if len(vals) == 0 || math.IsNaN(phi) {
		return math.NaN()
	}
	if phi < 0 {
		return math.Inf(-1)
	}
	if phi > 1 {
		return math.Inf(1)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	rank := phi * (n - 1)
	lower := int(math.Floor(rank))
	upper := int(math.Ceil(rank))
	if lower == upper {
		return sorted[lower]
	}
	w := rank - float64(lower)
	return sorted[lower]*(1-w) + sorted[upper]*w
}

// binary evaluates a binary operator expression.
func (ev *evaluator) binary(b *BinaryExpr) (Value, error) {
	lv, err := ev.eval(b.LHS)
	if err != nil {
		return nil, err
	}
	rv, err := ev.eval(b.RHS)
	if err != nil {
		return nil, err
	}
	switch l := lv.(type) {
	case Scalar:
		switch r := rv.(type) {
		case Scalar:
			v, keep := binOp(b.Op, l.V, r.V, b.ReturnBool)
			if !keep {
				v = 0 // scalar comparisons always use bool (checked at parse)
			}
			return Scalar{T: ev.ts, V: v}, nil
		case Vector:
			return ev.scalarVector(b, l.V, r, true)
		}
	case Vector:
		switch r := rv.(type) {
		case Scalar:
			return ev.scalarVector(b, r.V, l, false)
		case Vector:
			if isSetOp(b.Op) {
				return ev.setOp(b, l, r)
			}
			return ev.vectorVector(b, l, r)
		}
	}
	return nil, fmt.Errorf("promql: binary op %s undefined between %s and %s",
		itemName(b.Op), lv.Type(), rv.Type())
}

// scalarVector applies op between a scalar and each vector element.
// scalarLeft indicates the scalar was the left operand.
func (ev *evaluator) scalarVector(b *BinaryExpr, sc float64, vec Vector, scalarLeft bool) (Vector, error) {
	out := make(Vector, 0, len(vec))
	for _, s := range vec {
		l, r := sc, s.V
		if !scalarLeft {
			l, r = s.V, sc
		}
		v, keep := binOp(b.Op, l, r, b.ReturnBool)
		if isComparison(b.Op) && !b.ReturnBool {
			if !keep {
				continue
			}
			v = s.V // filter semantics: keep original value
		}
		out = append(out, Sample{Labels: dropName(s.Labels), T: ev.ts, V: v})
	}
	return out, nil
}

// matchKey hashes the matching labels of a sample per the VectorMatching.
func matchKey(vm *VectorMatching, ls labels.Labels) uint64 {
	if vm == nil {
		return ls.HashWithout() // all labels except __name__
	}
	if vm.On {
		return ls.HashFor(vm.Labels...)
	}
	return ls.HashWithout(vm.Labels...)
}

// sortedMatching returns vm with its On-labels sorted so the per-sample
// HashFor calls never re-sort. The AST is shared (parse cache) and must not
// be mutated, so an unsorted spec is shallow-cloned once per evaluation.
func sortedMatching(vm *VectorMatching) *VectorMatching {
	if vm == nil || !vm.On || sort.StringsAreSorted(vm.Labels) {
		return vm
	}
	ls := append([]string(nil), vm.Labels...)
	sort.Strings(ls)
	cp := *vm
	cp.Labels = ls
	return &cp
}

func (ev *evaluator) vectorVector(b *BinaryExpr, lhs, rhs Vector) (Vector, error) {
	vm := sortedMatching(b.Matching)
	// Identify the "one" side for many-to-one / one-to-many.
	oneSide, manySide := rhs, lhs
	swapped := false
	if vm != nil && vm.Card == CardOneToMany {
		oneSide, manySide = lhs, rhs
		swapped = true
	}
	oneByKey := make(map[uint64]Sample, len(oneSide))
	for _, s := range oneSide {
		k := matchKey(vm, s.Labels)
		if prev, dup := oneByKey[k]; dup {
			return nil, fmt.Errorf("promql: many-to-many matching: duplicate series %s and %s on 'one' side",
				prev.Labels, s.Labels)
		}
		oneByKey[k] = s
	}
	card := CardOneToOne
	if vm != nil {
		card = vm.Card
	}
	seen := map[uint64]bool{}
	out := make(Vector, 0, len(manySide))
	for _, ms := range manySide {
		k := matchKey(vm, ms.Labels)
		os, ok := oneByKey[k]
		if !ok {
			continue
		}
		if card == CardOneToOne {
			if seen[k] {
				return nil, fmt.Errorf("promql: one-to-one matching: multiple matches for %s; use group_left/group_right", ms.Labels)
			}
			seen[k] = true
		}
		l, r := ms.V, os.V
		if swapped != (vm != nil && vm.Card == CardOneToMany) {
			// unreachable; kept for clarity
		}
		if !swapped {
			// manySide is LHS
		} else {
			l, r = os.V, ms.V
		}
		v, keep := binOp(b.Op, l, r, b.ReturnBool)
		if isComparison(b.Op) && !b.ReturnBool {
			if !keep {
				continue
			}
			v = l
		}
		// Result labels: matching labels of the many side (minus name),
		// plus any group_left/right include labels from the one side.
		rl := resultLabels(vm, ms.Labels, os.Labels)
		out = append(out, Sample{Labels: rl, T: ev.ts, V: v})
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out, nil
}

func resultLabels(vm *VectorMatching, many, one labels.Labels) labels.Labels {
	if vm == nil {
		return many.WithoutNames()
	}
	var base labels.Labels
	if vm.Card == CardOneToOne {
		if vm.On {
			base = many.KeepNames(vm.Labels...)
		} else {
			base = many.WithoutNames(vm.Labels...)
		}
		return base
	}
	// group_left/right: keep all labels of the many side (minus name).
	b := labels.NewBuilder(many.WithoutNames())
	for _, inc := range vm.Include {
		if v := one.Get(inc); v != "" {
			b.Set(inc, v)
		} else {
			b.Del(inc)
		}
	}
	return b.Labels()
}

// setOp implements and/or/unless.
func (ev *evaluator) setOp(b *BinaryExpr, lhs, rhs Vector) (Vector, error) {
	vm := sortedMatching(b.Matching)
	rkeys := make(map[uint64]bool, len(rhs))
	for _, s := range rhs {
		rkeys[matchKey(vm, s.Labels)] = true
	}
	var out Vector
	switch b.Op {
	case AND:
		for _, s := range lhs {
			if rkeys[matchKey(vm, s.Labels)] {
				out = append(out, s)
			}
		}
	case UNLESS:
		for _, s := range lhs {
			if !rkeys[matchKey(vm, s.Labels)] {
				out = append(out, s)
			}
		}
	case OR:
		lkeys := make(map[uint64]bool, len(lhs))
		for _, s := range lhs {
			lkeys[matchKey(vm, s.Labels)] = true
			out = append(out, s)
		}
		for _, s := range rhs {
			if !lkeys[matchKey(vm, s.Labels)] {
				out = append(out, s)
			}
		}
	}
	return out, nil
}

// binOp applies the operator; for comparisons it returns (lhs, matched)
// unless returnBool, in which case it returns (0|1, true).
func binOp(op ItemType, l, r float64, returnBool bool) (float64, bool) {
	switch op {
	case ADD:
		return l + r, true
	case SUB:
		return l - r, true
	case MUL:
		return l * r, true
	case DIV:
		return l / r, true
	case MOD:
		return math.Mod(l, r), true
	case POW:
		return math.Pow(l, r), true
	}
	var match bool
	switch op {
	case EQL:
		match = l == r
	case NEQ:
		match = l != r
	case LTE:
		match = l <= r
	case LSS:
		match = l < r
	case GTE:
		match = l >= r
	case GTR:
		match = l > r
	}
	if returnBool {
		if match {
			return 1, true
		}
		return 0, true
	}
	return l, match
}
