package promql

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb"
)

// testStorage builds a DB with a fixed scrape pattern: samples every 15s
// from t=0 to t=10min for several series.
func testStorage(t testing.TB) *tsdb.DB {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	add := func(lset labels.Labels, f func(step int64) float64) {
		for i := int64(0); i <= 40; i++ {
			if err := db.Append(lset, i*15000, f(i)); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
	}
	// Counter increasing 10/s => 150 per 15s step.
	add(labels.FromStrings(labels.MetricName, "http_requests_total", "job", "api", "instance", "a"),
		func(i int64) float64 { return float64(i) * 150 })
	// Counter increasing 20/s.
	add(labels.FromStrings(labels.MetricName, "http_requests_total", "job", "api", "instance", "b"),
		func(i int64) float64 { return float64(i) * 300 })
	// Gauge constant 7.
	add(labels.FromStrings(labels.MetricName, "temperature", "zone", "dc1"),
		func(i int64) float64 { return 7 })
	// Gauge ramp 0..40.
	add(labels.FromStrings(labels.MetricName, "temperature", "zone", "dc2"),
		func(i int64) float64 { return float64(i) })
	// Counter with a reset at i=20.
	add(labels.FromStrings(labels.MetricName, "resetting_total", "job", "api"),
		func(i int64) float64 {
			if i < 20 {
				return float64(i) * 10
			}
			return float64(i-20) * 10
		})
	// Per-node RAPL-style counters for join tests.
	add(labels.FromStrings(labels.MetricName, "rapl_cpu_joules_total", "node", "n1"),
		func(i int64) float64 { return float64(i) * 100 * 15 }) // 100 W
	add(labels.FromStrings(labels.MetricName, "rapl_dram_joules_total", "node", "n1"),
		func(i int64) float64 { return float64(i) * 25 * 15 }) // 25 W
	add(labels.FromStrings(labels.MetricName, "node_cpus", "node", "n1"),
		func(i int64) float64 { return 64 })
	return db
}

func evalAt(t testing.TB, db *tsdb.DB, q string, atSec int64) Vector {
	t.Helper()
	eng := NewEngine()
	v, err := eng.Instant(db, q, model.MillisToTime(atSec*1000))
	if err != nil {
		t.Fatalf("Instant(%q): %v", q, err)
	}
	vec, ok := v.(Vector)
	if !ok {
		t.Fatalf("Instant(%q) returned %s, want vector", q, v.Type())
	}
	return vec
}

func evalScalarAt(t testing.TB, db *tsdb.DB, q string, atSec int64) float64 {
	t.Helper()
	eng := NewEngine()
	v, err := eng.Instant(db, q, model.MillisToTime(atSec*1000))
	if err != nil {
		t.Fatalf("Instant(%q): %v", q, err)
	}
	s, ok := v.(Scalar)
	if !ok {
		t.Fatalf("Instant(%q) returned %s, want scalar", q, v.Type())
	}
	return s.V
}

func approx(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestVectorSelector(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `http_requests_total`, 600)
	if len(vec) != 2 {
		t.Fatalf("got %d series", len(vec))
	}
	// At t=600s (i=40): a=6000, b=12000.
	if vec[0].V != 6000 || vec[1].V != 12000 {
		t.Errorf("values = %v, %v", vec[0].V, vec[1].V)
	}
	// Lookback: query beyond last sample but within 5m.
	vec = evalAt(t, db, `http_requests_total{instance="a"}`, 600+200)
	if len(vec) != 1 || vec[0].V != 6000 {
		t.Errorf("lookback failed: %+v", vec)
	}
	// Beyond lookback: empty.
	vec = evalAt(t, db, `http_requests_total{instance="a"}`, 600+400)
	if len(vec) != 0 {
		t.Errorf("expected staleness after lookback, got %+v", vec)
	}
}

func TestSelectorMatchers(t *testing.T) {
	db := testStorage(t)
	if vec := evalAt(t, db, `http_requests_total{instance=~"a|b"}`, 600); len(vec) != 2 {
		t.Errorf("regex matcher: %d", len(vec))
	}
	if vec := evalAt(t, db, `http_requests_total{instance!="a"}`, 600); len(vec) != 1 {
		t.Errorf("neq matcher: %d", len(vec))
	}
	if vec := evalAt(t, db, `{__name__=~"temp.*"}`, 600); len(vec) != 2 {
		t.Errorf("name regex: %d", len(vec))
	}
}

func TestOffset(t *testing.T) {
	db := testStorage(t)
	// At 600s offset 300s → value at 300s (i=20): a=3000.
	vec := evalAt(t, db, `http_requests_total{instance="a"} offset 5m`, 600)
	if len(vec) != 1 || vec[0].V != 3000 {
		t.Errorf("offset: %+v", vec)
	}
}

func TestRateIncrease(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `rate(http_requests_total{instance="a"}[2m])`, 600)
	if len(vec) != 1 || !approx(vec[0].V, 10) {
		t.Errorf("rate = %+v, want 10", vec)
	}
	// Metric name must be dropped.
	if vec[0].Labels.Has(labels.MetricName) {
		t.Error("rate kept __name__")
	}
	vec = evalAt(t, db, `increase(http_requests_total{instance="a"}[2m])`, 600)
	// Window (480,600]: samples at 495..600 → 8 samples, delta = 7 steps * 150 = 1050.
	if len(vec) != 1 || !approx(vec[0].V, 1050) {
		t.Errorf("increase = %+v, want 1050", vec)
	}
}

func TestRateWithReset(t *testing.T) {
	db := testStorage(t)
	// Window (270, 330] covers the reset at i=20 (t=300s): samples are
	// 190 (t=285), 0 (t=300), 10, 20. Reset-adjusted delta:
	// 20 - 190 + 190 (value lost at reset) = 20.
	vec := evalAt(t, db, `increase(resetting_total[60s])`, 330)
	if len(vec) != 1 || !approx(vec[0].V, 20) {
		t.Errorf("increase over reset = %+v, want 20", vec)
	}
	if v := evalAt(t, db, `resets(resetting_total[10m])`, 600); len(v) != 1 || v[0].V != 1 {
		t.Errorf("resets = %+v", v)
	}
}

func TestIrateIdelta(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `irate(http_requests_total{instance="b"}[1m])`, 600)
	if len(vec) != 1 || !approx(vec[0].V, 20) {
		t.Errorf("irate = %+v, want 20", vec)
	}
	vec = evalAt(t, db, `idelta(temperature{zone="dc2"}[1m])`, 600)
	if len(vec) != 1 || !approx(vec[0].V, 1) {
		t.Errorf("idelta = %+v, want 1", vec)
	}
}

func TestOverTimeFunctions(t *testing.T) {
	db := testStorage(t)
	cases := []struct {
		q    string
		want float64
	}{
		// Window (540,600] has i=37..40 → values 37,38,39,40.
		{`avg_over_time(temperature{zone="dc2"}[1m])`, 38.5},
		{`sum_over_time(temperature{zone="dc2"}[1m])`, 154},
		{`min_over_time(temperature{zone="dc2"}[1m])`, 37},
		{`max_over_time(temperature{zone="dc2"}[1m])`, 40},
		{`count_over_time(temperature{zone="dc2"}[1m])`, 4},
		{`last_over_time(temperature{zone="dc2"}[1m])`, 40},
		{`quantile_over_time(0.5, temperature{zone="dc2"}[1m])`, 38.5},
	}
	for _, c := range cases {
		vec := evalAt(t, db, c.q, 600)
		if len(vec) != 1 || !approx(vec[0].V, c.want) {
			t.Errorf("%s = %+v, want %v", c.q, vec, c.want)
		}
	}
}

func TestDeriv(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `deriv(temperature{zone="dc2"}[2m])`, 600)
	// Ramp of 1 per 15s = 1/15 per second.
	if len(vec) != 1 || !approx(vec[0].V, 1.0/15) {
		t.Errorf("deriv = %+v, want %v", vec, 1.0/15)
	}
}

func TestChanges(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `changes(temperature{zone="dc1"}[5m])`, 600)
	if len(vec) != 1 || vec[0].V != 0 {
		t.Errorf("changes constant = %+v", vec)
	}
}

func TestAggregations(t *testing.T) {
	db := testStorage(t)
	cases := []struct {
		q    string
		want float64
	}{
		{`sum(http_requests_total)`, 18000},
		{`avg(http_requests_total)`, 9000},
		{`min(http_requests_total)`, 6000},
		{`max(http_requests_total)`, 12000},
		{`count(http_requests_total)`, 2},
		{`stddev(http_requests_total)`, 3000},
		{`stdvar(http_requests_total)`, 9000000},
		{`quantile(0.5, http_requests_total)`, 9000},
	}
	for _, c := range cases {
		vec := evalAt(t, db, c.q, 600)
		if len(vec) != 1 || !approx(vec[0].V, c.want) {
			t.Errorf("%s = %+v, want %v", c.q, vec, c.want)
		}
		if len(vec) == 1 && len(vec[0].Labels) != 0 {
			t.Errorf("%s: aggregate labels should be empty, got %v", c.q, vec[0].Labels)
		}
	}
}

func TestAggregationGrouping(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `sum by (instance) (http_requests_total)`, 600)
	if len(vec) != 2 {
		t.Fatalf("by grouping: %d groups", len(vec))
	}
	if vec[0].Labels.Get("instance") != "a" || vec[0].V != 6000 {
		t.Errorf("group a = %+v", vec[0])
	}
	// Trailing modifier form.
	vec2 := evalAt(t, db, `sum(http_requests_total) by (instance)`, 600)
	if len(vec2) != 2 || vec2[0].V != vec[0].V {
		t.Errorf("trailing by differs: %+v", vec2)
	}
	// without drops the label (and name).
	vec3 := evalAt(t, db, `sum without (instance) (http_requests_total)`, 600)
	if len(vec3) != 1 || vec3[0].V != 18000 || vec3[0].Labels.Get("job") != "api" {
		t.Errorf("without = %+v", vec3)
	}
}

func TestTopkBottomk(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `topk(1, http_requests_total)`, 600)
	if len(vec) != 1 || vec[0].V != 12000 || vec[0].Labels.Get("instance") != "b" {
		t.Errorf("topk = %+v", vec)
	}
	vec = evalAt(t, db, `bottomk(1, http_requests_total)`, 600)
	if len(vec) != 1 || vec[0].V != 6000 {
		t.Errorf("bottomk = %+v", vec)
	}
}

func TestScalarArithmetic(t *testing.T) {
	db := testStorage(t)
	cases := []struct {
		q    string
		want float64
	}{
		{`1 + 2 * 3`, 7},
		{`(1 + 2) * 3`, 9},
		{`2 ^ 3 ^ 2`, 512}, // right-assoc
		{`7 % 3`, 1},
		{`-3 + 4`, 1},
		{`10 / 4`, 2.5},
		{`1 == bool 1`, 1},
		{`1 > bool 2`, 0},
	}
	for _, c := range cases {
		if got := evalScalarAt(t, db, c.q, 600); !approx(got, c.want) {
			t.Errorf("%s = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestVectorScalarOps(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `http_requests_total / 1000`, 600)
	if len(vec) != 2 || !approx(vec[0].V, 6) || !approx(vec[1].V, 12) {
		t.Errorf("div = %+v", vec)
	}
	if vec[0].Labels.Has(labels.MetricName) {
		t.Error("binop kept metric name")
	}
	// Comparison filter semantics.
	vec = evalAt(t, db, `http_requests_total > 10000`, 600)
	if len(vec) != 1 || vec[0].V != 12000 {
		t.Errorf("filter = %+v", vec)
	}
	// bool modifier.
	vec = evalAt(t, db, `http_requests_total > bool 10000`, 600)
	if len(vec) != 2 || vec[0].V != 0 || vec[1].V != 1 {
		t.Errorf("bool = %+v", vec)
	}
	// Scalar on the left.
	vec = evalAt(t, db, `100000 - http_requests_total`, 600)
	if len(vec) != 2 || vec[0].V != 94000 {
		t.Errorf("scalar-left = %+v", vec)
	}
}

func TestVectorVectorMatching(t *testing.T) {
	db := testStorage(t)
	// Same labels: one-to-one.
	vec := evalAt(t, db, `http_requests_total + http_requests_total`, 600)
	if len(vec) != 2 || vec[0].V != 12000 || vec[1].V != 24000 {
		t.Errorf("self add = %+v", vec)
	}
	// Join on node between different metrics.
	vec = evalAt(t, db,
		`rate(rapl_cpu_joules_total[2m]) / (rate(rapl_cpu_joules_total[2m]) + rate(rapl_dram_joules_total[2m]))`, 600)
	if len(vec) != 1 || !approx(vec[0].V, 0.8) {
		t.Errorf("rapl ratio = %+v, want 0.8", vec)
	}
	// on() matching.
	vec = evalAt(t, db, `rate(rapl_cpu_joules_total[2m]) * on (node) node_cpus`, 600)
	if len(vec) != 1 || !approx(vec[0].V, 6400) {
		t.Errorf("on-match = %+v", vec)
	}
}

func TestSetOps(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `http_requests_total and http_requests_total{instance="a"}`, 600)
	if len(vec) != 1 || vec[0].Labels.Get("instance") != "a" {
		t.Errorf("and = %+v", vec)
	}
	vec = evalAt(t, db, `http_requests_total unless http_requests_total{instance="a"}`, 600)
	if len(vec) != 1 || vec[0].Labels.Get("instance") != "b" {
		t.Errorf("unless = %+v", vec)
	}
	vec = evalAt(t, db, `temperature{zone="dc1"} or temperature{zone="dc2"}`, 600)
	if len(vec) != 2 {
		t.Errorf("or = %+v", vec)
	}
}

func TestFunctions(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `clamp_max(temperature, 10)`, 600)
	if len(vec) != 2 || vec[0].V != 7 || vec[1].V != 10 {
		t.Errorf("clamp_max = %+v", vec)
	}
	vec = evalAt(t, db, `abs(temperature - 100)`, 600)
	if len(vec) != 2 || vec[0].V != 93 || vec[1].V != 60 {
		t.Errorf("abs = %+v", vec)
	}
	if got := evalScalarAt(t, db, `scalar(temperature{zone="dc1"})`, 600); got != 7 {
		t.Errorf("scalar() = %v", got)
	}
	if got := evalScalarAt(t, db, `scalar(temperature)`, 600); !math.IsNaN(got) {
		t.Errorf("scalar(multi) = %v, want NaN", got)
	}
	vec = evalAt(t, db, `vector(42)`, 600)
	if len(vec) != 1 || vec[0].V != 42 {
		t.Errorf("vector() = %+v", vec)
	}
	if got := evalScalarAt(t, db, `time()`, 600); got != 600 {
		t.Errorf("time() = %v", got)
	}
	vec = evalAt(t, db, `absent(nonexistent_metric)`, 600)
	if len(vec) != 1 || vec[0].V != 1 {
		t.Errorf("absent = %+v", vec)
	}
	vec = evalAt(t, db, `absent(temperature)`, 600)
	if len(vec) != 0 {
		t.Errorf("absent(present) = %+v", vec)
	}
}

func TestLabelReplace(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `label_replace(temperature, "site", "$1", "zone", "dc(.*)")`, 600)
	if len(vec) != 2 {
		t.Fatalf("label_replace: %d", len(vec))
	}
	if vec[0].Labels.Get("site") != "1" || vec[1].Labels.Get("site") != "2" {
		t.Errorf("label_replace = %v, %v", vec[0].Labels, vec[1].Labels)
	}
	// Non-matching regex leaves labels untouched.
	vec = evalAt(t, db, `label_replace(temperature, "site", "$1", "zone", "xx(.*)")`, 600)
	if vec[0].Labels.Has("site") {
		t.Error("label_replace added label despite no match")
	}
}

func TestSortFunctions(t *testing.T) {
	db := testStorage(t)
	vec := evalAt(t, db, `sort_desc(http_requests_total)`, 600)
	if vec[0].V != 12000 || vec[1].V != 6000 {
		t.Errorf("sort_desc = %+v", vec)
	}
	vec = evalAt(t, db, `sort(http_requests_total)`, 600)
	if vec[0].V != 6000 || vec[1].V != 12000 {
		t.Errorf("sort = %+v", vec)
	}
}

func TestRangeQuery(t *testing.T) {
	db := testStorage(t)
	eng := NewEngine()
	m, err := eng.Range(db, `sum(http_requests_total)`,
		model.MillisToTime(0), model.MillisToTime(600*1000), time.Minute)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if len(m) != 1 {
		t.Fatalf("range series = %d", len(m))
	}
	if len(m[0].Samples) != 11 {
		t.Fatalf("range steps = %d, want 11", len(m[0].Samples))
	}
	// At t=0: 0; at t=60 (i=4): 600+1200=1800.
	if m[0].Samples[0].V != 0 || m[0].Samples[1].V != 1800 {
		t.Errorf("range values = %+v", m[0].Samples[:2])
	}
}

func TestRangeQueryScalar(t *testing.T) {
	db := testStorage(t)
	eng := NewEngine()
	m, err := eng.Range(db, `42`, model.MillisToTime(0), model.MillisToTime(120*1000), time.Minute)
	if err != nil {
		t.Fatalf("Range scalar: %v", err)
	}
	if len(m) != 1 || len(m[0].Samples) != 3 || m[0].Samples[2].V != 42 {
		t.Errorf("scalar range = %+v", m)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`sum(`,
		`rate(http_requests_total)`,              // missing range
		`rate(http_requests_total[5m]`,           // unclosed paren
		`http_requests_total[5m] + 1`,            // binop on matrix
		`foo{bar=}`,                              // missing matcher value
		`foo and 1`,                              // set op with scalar
		`1 == 2`,                                 // scalar comparison without bool
		`unknown_func(foo)`,                      // unknown function
		`topk(http_requests_total)`,              // missing param
		`label_replace(foo, "a", "b", "c", "(")`, // bad regex (eval-time ok at parse) -- parse ok
		`foo offset`,                             // missing duration
		`foo[]`,                                  // empty range
		`{}`,                                     // empty selector
		`sum(foo) bar`,                           // trailing garbage
	}
	for _, q := range bad {
		if strings.HasPrefix(q, "label_replace") {
			continue // parse succeeds; error surfaces at eval time
		}
		if _, err := ParseExpr(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	db := testStorage(t)
	eng := NewEngine()
	if _, err := eng.Instant(db, `label_replace(temperature, "site", "$1", "zone", "(")`, time.Unix(600, 0)); err == nil {
		t.Error("expected bad-regex eval error")
	}
	// Many-to-many matching error.
	if _, err := eng.Instant(db, `http_requests_total + on (job) http_requests_total`, time.Unix(600, 0)); err == nil {
		t.Error("expected many-to-many error")
	}
}

func TestParseDurations(t *testing.T) {
	cases := map[string]time.Duration{
		"15s": 15 * time.Second, "5m": 5 * time.Minute, "1h30m": 90 * time.Minute,
		"2d": 48 * time.Hour, "1w": 7 * 24 * time.Hour, "100ms": 100 * time.Millisecond,
	}
	for in, want := range cases {
		got, err := parseDuration(in)
		if err != nil || got != want {
			t.Errorf("parseDuration(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "5", "x", "5q"} {
		if _, err := parseDuration(in); err == nil {
			t.Errorf("parseDuration(%q) should fail", in)
		}
	}
}

func TestExprString(t *testing.T) {
	// String round-trip: parse → String → parse again must succeed.
	exprs := []string{
		`rate(http_requests_total{job="api"}[5m])`,
		`sum by (instance) (rate(x_total[1m]))`,
		`a / (a + b) * 100`,
		`topk(3, metric)`,
		`label_replace(m, "a", "$1", "b", "(.*)")`,
	}
	for _, q := range exprs {
		e, err := ParseExpr(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := ParseExpr(e.String()); err != nil {
			t.Errorf("re-parse of %q (%q) failed: %v", q, e.String(), err)
		}
	}
}

func BenchmarkInstantSimple(b *testing.B) {
	db := testStorage(b)
	eng := NewEngine()
	ts := model.MillisToTime(600 * 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Instant(db, `sum(rate(http_requests_total[2m]))`, ts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	q := `0.9 * ipmi_watts * (rapl_cpu / (rapl_cpu + rapl_dram)) * (job_cpu / node_cpu)`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseExpr(q); err != nil {
			b.Fatal(err)
		}
	}
}
