package promql

import (
	"container/list"
	"sync"
)

// parseCacheSize bounds the shared parsed-expression LRU. Grafana
// dashboards and the LB's access-control introspection re-issue the same
// panel queries continuously, so a small cache absorbs nearly all parses.
const parseCacheSize = 512

// parseCache is a bounded LRU of query text -> parsed expression.
type parseCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
}

type parseCacheEntry struct {
	key  string
	expr Expr
}

func newParseCache(max int) *parseCache {
	return &parseCache{max: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

func (c *parseCache) get(key string) (Expr, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*parseCacheEntry).expr, true
}

func (c *parseCache) put(key string, expr Expr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*parseCacheEntry).expr = expr
		return
	}
	c.entries[key] = c.ll.PushFront(&parseCacheEntry{key: key, expr: expr})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*parseCacheEntry).key)
	}
}

func (c *parseCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

var sharedParseCache = newParseCache(parseCacheSize)

// ParseExprCached is ParseExpr behind a process-wide bounded LRU keyed by
// the query text. Parsed expressions are immutable after construction — the
// evaluator and all tree walkers only read them — so cache hits are shared
// freely across goroutines. Parse errors are not cached.
func ParseExprCached(input string) (Expr, error) {
	if expr, ok := sharedParseCache.get(input); ok {
		return expr, nil
	}
	expr, err := ParseExpr(input)
	if err != nil {
		return nil, err
	}
	sharedParseCache.put(input, expr)
	return expr, nil
}
