// Package promql implements the query-language substrate of the CEEMS
// stack: a PromQL-subset lexer, parser and evaluation engine sufficient for
// the paper's energy-estimation recording rules (Eq. 1) and dashboard
// queries — vector selectors, range selectors, rate/increase and
// *_over_time functions, aggregations with by/without, arithmetic and
// comparison binary operators with on/ignoring vector matching, and
// label_replace.
package promql

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/labels"
)

// Expr is a parsed PromQL expression node.
type Expr interface {
	// Type returns the value type the expression evaluates to.
	Type() ValueType
	String() string
}

// ValueType enumerates PromQL value types.
type ValueType string

const (
	ValueScalar ValueType = "scalar"
	ValueVector ValueType = "vector"
	ValueMatrix ValueType = "matrix"
	ValueString ValueType = "string"
)

// NumberLiteral is a scalar constant.
type NumberLiteral struct {
	Val float64
}

func (*NumberLiteral) Type() ValueType  { return ValueScalar }
func (n *NumberLiteral) String() string { return fmt.Sprintf("%g", n.Val) }

// StringLiteral is a string constant (only used as a function argument).
type StringLiteral struct {
	Val string
}

func (*StringLiteral) Type() ValueType  { return ValueString }
func (s *StringLiteral) String() string { return fmt.Sprintf("%q", s.Val) }

// VectorSelector selects instant vectors by matchers.
type VectorSelector struct {
	Name     string
	Matchers []*labels.Matcher
	Offset   time.Duration
}

func (*VectorSelector) Type() ValueType { return ValueVector }
func (v *VectorSelector) String() string {
	var parts []string
	for _, m := range v.Matchers {
		// Skip only the matcher synthesized from the metric name itself; an
		// explicit, conflicting __name__ matcher must survive reprinting —
		// the query cache keys on String(), and two selectors that match
		// different series must never share a key.
		if m.Name == labels.MetricName && m.Type == labels.MatchEqual && m.Value == v.Name {
			continue
		}
		parts = append(parts, m.String())
	}
	s := v.Name
	if len(parts) > 0 {
		s += "{" + strings.Join(parts, ",") + "}"
	}
	if v.Offset > 0 {
		s += fmt.Sprintf(" offset %s", v.Offset)
	}
	return s
}

// MatrixSelector selects a range of samples per series.
type MatrixSelector struct {
	VS    *VectorSelector
	Range time.Duration
}

func (*MatrixSelector) Type() ValueType { return ValueMatrix }
func (m *MatrixSelector) String() string {
	off := ""
	if m.VS.Offset > 0 {
		off = fmt.Sprintf(" offset %s", m.VS.Offset)
	}
	base := (&VectorSelector{Name: m.VS.Name, Matchers: m.VS.Matchers}).String()
	return fmt.Sprintf("%s[%s]%s", base, m.Range, off)
}

// Call is a function call.
type Call struct {
	Func *Function
	Args []Expr
}

func (c *Call) Type() ValueType { return c.Func.ReturnType }
func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Func.Name, strings.Join(args, ", "))
}

// AggregateExpr applies sum/avg/... over a vector, grouped by labels.
type AggregateExpr struct {
	Op       ItemType // SUM, AVG, ...
	Expr     Expr
	Param    Expr // for topk/bottomk/quantile
	Grouping []string
	Without  bool
}

func (*AggregateExpr) Type() ValueType { return ValueVector }
func (a *AggregateExpr) String() string {
	mod := ""
	if a.Without {
		mod = fmt.Sprintf(" without (%s)", strings.Join(a.Grouping, ", "))
	} else if len(a.Grouping) > 0 {
		mod = fmt.Sprintf(" by (%s)", strings.Join(a.Grouping, ", "))
	}
	param := ""
	if a.Param != nil {
		param = a.Param.String() + ", "
	}
	return fmt.Sprintf("%s%s(%s%s)", itemName(a.Op), mod, param, a.Expr.String())
}

// VectorMatching describes how binary-operator operands join.
type VectorMatching struct {
	On      bool // true: match on listed labels; false: ignoring them
	Labels  []string
	Card    MatchCardinality
	Include []string // group_left/right extra labels from the "one" side
}

// MatchCardinality is the many/one relation of a binary op.
type MatchCardinality int

const (
	CardOneToOne MatchCardinality = iota
	CardManyToOne
	CardOneToMany
)

// BinaryExpr combines two expressions with an operator.
type BinaryExpr struct {
	Op         ItemType
	LHS, RHS   Expr
	Matching   *VectorMatching
	ReturnBool bool
}

func (b *BinaryExpr) Type() ValueType {
	if b.LHS.Type() == ValueScalar && b.RHS.Type() == ValueScalar {
		return ValueScalar
	}
	return ValueVector
}

func (b *BinaryExpr) String() string {
	boolMod := ""
	if b.ReturnBool {
		boolMod = " bool"
	}
	match := ""
	if b.Matching != nil && len(b.Matching.Labels) > 0 {
		kw := "ignoring"
		if b.Matching.On {
			kw = "on"
		}
		match = fmt.Sprintf(" %s (%s)", kw, strings.Join(b.Matching.Labels, ", "))
		switch b.Matching.Card {
		case CardManyToOne:
			match += fmt.Sprintf(" group_left (%s)", strings.Join(b.Matching.Include, ", "))
		case CardOneToMany:
			match += fmt.Sprintf(" group_right (%s)", strings.Join(b.Matching.Include, ", "))
		}
	}
	return fmt.Sprintf("%s %s%s%s %s", b.LHS, itemName(b.Op), boolMod, match, b.RHS)
}

// ParenExpr wraps a parenthesized expression.
type ParenExpr struct {
	Expr Expr
}

func (p *ParenExpr) Type() ValueType { return p.Expr.Type() }
func (p *ParenExpr) String() string  { return "(" + p.Expr.String() + ")" }

// UnaryExpr is -expr or +expr.
type UnaryExpr struct {
	Op   ItemType
	Expr Expr
}

func (u *UnaryExpr) Type() ValueType { return u.Expr.Type() }
func (u *UnaryExpr) String() string  { return itemName(u.Op) + u.Expr.String() }
