package promql

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/workpool"
)

// rangeEvaluator implements the windowed range-query strategy. Instead of
// re-running every storage Select at every step (O(steps × Select)), it
//
//  1. walks the expression tree once and registers every selector,
//  2. prefetches each selector's series with ONE Select spanning the whole
//     padded window [start − lookback/range − offset, lastStep − offset],
//     charging a per-query sample budget inside the storage pass when the
//     Queryable is hint-aware,
//  3. evaluates the steps in parallel contiguous batches on the shared
//     worker pool, each batch sliding monotonic per-series cursors over
//     the prefetched samples (staleness markers are interpreted at this
//     window layer, exactly as the live selector paths do), and
//  4. merges the per-step vectors — independent by construction — into the
//     output Matrix in step order.
//
// The result is byte-identical to the per-step reference implementation
// (see rangeExprNaive and the equivalence tests).
type rangeEvaluator struct {
	engine *Engine
	q      Queryable
	expr   Expr
	start  time.Time
	step   time.Duration
	steps  int

	sels  []*selectorData
	index map[Expr]int // selector node -> index into sels
}

// selectorData is one selector's prefetched window.
type selectorData struct {
	vs       *VectorSelector
	isRange  bool
	rangeMs  int64 // matrix selectors only
	offsetMs int64
	mint     int64 // prefetch bounds, inclusive ms
	maxt     int64
	// funcName is the PromQL function directly consuming this selector
	// ("" for a bare selector), forwarded as SelectHints.Func so
	// downsampling-aware storage knows whether an aggregate stream may
	// substitute for raw samples (rate and friends force raw).
	funcName string
	series   []model.Series
	// dropped caches dropName(series[i].Labels) for matrix selectors, so
	// range functions pay the label copy once per series instead of once
	// per series per step.
	dropped []labels.Labels
}

// stepTime returns the evaluation time of step i, exactly as the per-step
// loop `for ts := start; !ts.After(end); ts = ts.Add(step)` computes it.
func (re *rangeEvaluator) stepTime(i int) time.Time {
	return re.start.Add(time.Duration(i) * re.step)
}

func (re *rangeEvaluator) run(ctx context.Context) (Matrix, error) {
	start := time.Now()
	re.collect()
	if err := re.prefetch(ctx); err != nil {
		return nil, err
	}
	re.engine.noteStage(ctx, "prefetch", start)
	start = time.Now()
	results, err := re.evalSteps(ctx)
	if err != nil {
		return nil, err
	}
	re.engine.noteStage(ctx, "eval", start)
	start = time.Now()
	m := re.merge(results)
	re.engine.noteStage(ctx, "merge", start)
	return m, nil
}

// collect registers every selector in the expression tree and computes its
// prefetch bounds. Matrix selectors are registered as a unit (their inner
// VectorSelector is not additionally registered as an instant selector).
func (re *rangeEvaluator) collect() {
	re.index = map[Expr]int{}
	lookback := model.DurationMillis(re.engine.LookbackDelta)
	startMs := model.TimeToMillis(re.start)
	endMs := model.TimeToMillis(re.stepTime(re.steps - 1))
	// fn is the function whose call directly encloses the selector; any
	// other intervening node resets it, which errs on the side of raw data.
	var add func(e Expr, fn string)
	add = func(e Expr, fn string) {
		switch t := e.(type) {
		case *VectorSelector:
			if _, dup := re.index[t]; dup {
				return
			}
			off := model.DurationMillis(t.Offset)
			re.index[t] = len(re.sels)
			re.sels = append(re.sels, &selectorData{
				vs: t, offsetMs: off, funcName: fn,
				mint: startMs - off - lookback,
				maxt: endMs - off,
			})
		case *MatrixSelector:
			if _, dup := re.index[t]; dup {
				return
			}
			off := model.DurationMillis(t.VS.Offset)
			rng := model.DurationMillis(t.Range)
			re.index[t] = len(re.sels)
			re.sels = append(re.sels, &selectorData{
				vs: t.VS, isRange: true, rangeMs: rng, offsetMs: off, funcName: fn,
				mint: startMs - off - rng + 1, // windows are (t-range, t]
				maxt: endMs - off,
			})
		case *ParenExpr:
			add(t.Expr, fn)
		case *UnaryExpr:
			add(t.Expr, "")
		case *AggregateExpr:
			add(t.Expr, "")
			if t.Param != nil {
				add(t.Param, "")
			}
		case *BinaryExpr:
			add(t.LHS, "")
			add(t.RHS, "")
		case *Call:
			for _, a := range t.Args {
				add(a, t.Func.Name)
			}
		}
	}
	add(re.expr, "")
}

// prefetch issues exactly one Select per registered selector, accounting
// every loaded sample against the engine's MaxSamples budget. Hint-aware
// storage enforces the remaining budget mid-pass, so an oversized query
// aborts during the copy instead of after it.
func (re *rangeEvaluator) prefetch(ctx context.Context) error {
	budget := int64(re.engine.MaxSamples)
	var used int64
	hq, hinted := re.q.(HintedQueryable)
	stepMs := model.DurationMillis(re.step)
	for _, sd := range re.sels {
		if err := ctx.Err(); err != nil {
			return err
		}
		var (
			series []model.Series
			err    error
		)
		if hinted {
			hints := model.SelectHints{Start: sd.mint, End: sd.maxt, Step: stepMs, Func: sd.funcName, Range: sd.rangeMs}
			if budget > 0 {
				rem := budget - used
				if rem <= 0 {
					// Budget exactly exhausted: 0 would mean "unlimited" to
					// the storage, so pass 1 — a selector matching nothing
					// still succeeds, any sample trips the limit.
					rem = 1
				}
				hints.SampleLimit = rem
			}
			series, err = hq.SelectWithHints(hints, sd.vs.Matchers...)
		} else {
			series, err = re.q.Select(sd.mint, sd.maxt, sd.vs.Matchers...)
		}
		if err != nil {
			if errors.Is(err, model.ErrSampleLimit) {
				return re.sampleLimitErr()
			}
			return err
		}
		for _, s := range series {
			used += int64(len(s.Samples))
		}
		if budget > 0 && used > budget {
			return re.sampleLimitErr()
		}
		sd.series = series
		if sd.isRange {
			sd.dropped = make([]labels.Labels, len(series))
			for i := range series {
				sd.dropped[i] = dropName(series[i].Labels)
			}
		}
	}
	return nil
}

func (re *rangeEvaluator) sampleLimitErr() error {
	return &LimitError{Msg: fmt.Sprintf(
		"promql: query exceeds the sample budget of %d (narrow the selectors or the range)",
		re.engine.MaxSamples)}
}

// evalSteps evaluates all steps, splitting them into contiguous batches on
// the shared worker pool. Steps are independent; within a batch they run in
// increasing time order so the window cursors only ever move forward.
func (re *rangeEvaluator) evalSteps(ctx context.Context) ([]Vector, error) {
	results := make([]Vector, re.steps)
	var (
		errMu    sync.Mutex
		errStep  = -1
		firstErr error
	)
	setErr := func(step int, err error) {
		errMu.Lock()
		if errStep < 0 || step < errStep {
			errStep, firstErr = step, err
		}
		errMu.Unlock()
	}
	batches := runtime.GOMAXPROCS(0) * 4
	if batches > re.steps {
		batches = re.steps
	}
	workpool.Do(batches, 0, func(bi int) {
		lo := re.steps * bi / batches
		hi := re.steps * (bi + 1) / batches
		win := re.newWindow()
		for si := lo; si < hi; si++ {
			if err := ctx.Err(); err != nil {
				setErr(si, err)
				return
			}
			ev := &evaluator{
				engine: re.engine, q: re.q, ctx: ctx, win: win,
				ts: model.TimeToMillis(re.stepTime(si)),
			}
			v, err := ev.eval(re.expr)
			if err != nil {
				setErr(si, err)
				return
			}
			switch tv := v.(type) {
			case Vector:
				results[si] = tv
			case Scalar:
				results[si] = Vector{{Labels: labels.Labels{}, T: tv.T, V: tv.V}}
			default:
				setErr(si, fmt.Errorf("promql: unexpected %s result in range query", v.Type()))
				return
			}
		}
	})
	if errStep >= 0 {
		return nil, firstErr
	}
	return results, nil
}

// merge folds the per-step vectors into a Matrix in step order, identical
// to the accumulation the per-step reference performs.
//
// Aliasing: the sample slices are freshly allocated here, but the Labels
// values flow through from the per-step vectors and may alias storage-owned
// label sets (a bare selector hands out the head's memSeries labels).
// Results are safe to read and to append samples to, but their label
// slices must not be mutated in place, and anything retaining a result
// beyond the request must snapshot it with Matrix.Clone — the query-result
// cache does this on every insert and hit.
func (re *rangeEvaluator) merge(results []Vector) Matrix {
	acc := map[uint64]*model.Series{}
	var order []uint64
	for si, vec := range results {
		for _, s := range vec {
			h := s.Labels.Hash()
			sr, ok := acc[h]
			if !ok {
				capHint := re.steps - si
				if capHint > 512 {
					capHint = 512
				}
				sr = &model.Series{Labels: s.Labels, Samples: make([]model.Sample, 0, capHint)}
				acc[h] = sr
				order = append(order, h)
			}
			sr.Samples = append(sr.Samples, model.Sample{T: s.T, V: s.V})
		}
	}
	out := make(Matrix, 0, len(order))
	for _, h := range order {
		out = append(out, *acc[h])
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out
}

// winCursor tracks one series' position in a prefetched sample slice for
// one step batch: lo is the first index inside the current window, hi the
// first index past it. Both only move forward as the batch's evaluation
// time advances; the first access binary-searches to the batch's start.
type winCursor struct {
	lo, hi int
	init   bool
}

// stepWindow serves selector lookups for one step batch from the
// prefetched data. It is single-goroutine state: each batch owns its own.
type stepWindow struct {
	re      *rangeEvaluator
	cursors [][]winCursor // [selector index][series index]
}

func (re *rangeEvaluator) newWindow() *stepWindow {
	cur := make([][]winCursor, len(re.sels))
	for i, sd := range re.sels {
		cur[i] = make([]winCursor, len(sd.series))
	}
	return &stepWindow{re: re, cursors: cur}
}

// vectorAt mirrors evaluator.vectorSelector against the prefetched window:
// the most recent sample at or before the (offset-adjusted) eval time,
// dropped if it falls out of the lookback window or is a staleness marker.
func (w *stepWindow) vectorAt(vs *VectorSelector, ts int64) (Vector, error) {
	idx, ok := w.re.index[vs]
	if !ok {
		return nil, fmt.Errorf("promql: internal: selector %s missing from range prefetch", vs)
	}
	sd := w.re.sels[idx]
	t := ts - sd.offsetMs
	mint := t - model.DurationMillis(w.re.engine.LookbackDelta)
	curs := w.cursors[idx]
	out := make(Vector, 0, len(sd.series))
	for i := range sd.series {
		samples := sd.series[i].Samples
		c := &curs[i]
		if !c.init {
			c.hi = sort.Search(len(samples), func(k int) bool { return samples[k].T > t })
			c.init = true
		} else {
			for c.hi < len(samples) && samples[c.hi].T <= t {
				c.hi++
			}
		}
		if c.hi == 0 {
			continue
		}
		last := samples[c.hi-1]
		if last.T < mint || model.IsStaleNaN(last.V) {
			// Out of lookback, or the series went stale: invisible.
			continue
		}
		out = append(out, Sample{Labels: sd.series[i].Labels, T: ts, V: last.V})
	}
	return out, nil
}

// matrixAt mirrors evaluator.matrixSelector: all samples in the window
// (t−range, t], with staleness markers filtered out and emptied series
// dropped. The common no-stale case returns subslices of the prefetched
// data — no copying.
func (w *stepWindow) matrixAt(ms *MatrixSelector, ts int64) (Matrix, error) {
	idx, ok := w.re.index[ms]
	if !ok {
		return nil, fmt.Errorf("promql: internal: selector %s missing from range prefetch", ms)
	}
	sd := w.re.sels[idx]
	t := ts - sd.offsetMs
	mint := t - sd.rangeMs // window is (mint, t]
	curs := w.cursors[idx]
	out := make(Matrix, 0, len(sd.series))
	for i := range sd.series {
		kept := windowSlice(sd.series[i].Samples, &curs[i], mint, t)
		if len(kept) == 0 {
			continue
		}
		out = append(out, model.Series{Labels: sd.series[i].Labels, Samples: kept})
	}
	return out, nil
}

// applyRangeFunc evaluates a range-vector function against the prefetched
// window, emitting one sample per series whose window is non-empty. It is
// the windowed counterpart of applyRange's live path, with the name-drop
// served from the per-series cache.
func (w *stepWindow) applyRangeFunc(ms *MatrixSelector, ts int64, fn func([]model.Sample, int64) (float64, bool)) (Value, error) {
	idx, ok := w.re.index[ms]
	if !ok {
		return nil, fmt.Errorf("promql: internal: selector %s missing from range prefetch", ms)
	}
	sd := w.re.sels[idx]
	t := ts - sd.offsetMs
	mint := t - sd.rangeMs // window is (mint, t]
	curs := w.cursors[idx]
	out := make(Vector, 0, len(sd.series))
	for i := range sd.series {
		kept := windowSlice(sd.series[i].Samples, &curs[i], mint, t)
		if len(kept) == 0 {
			continue
		}
		v, keep := fn(kept, sd.rangeMs)
		if !keep {
			continue
		}
		out = append(out, Sample{Labels: sd.dropped[i], T: ts, V: v})
	}
	return out, nil
}

// windowSlice returns the samples in (mint, t], advancing the cursor
// monotonically (binary-searching on its first use in a batch), with
// staleness markers filtered out. The no-stale common case is a subslice of
// the prefetched data — no copying.
func windowSlice(samples []model.Sample, c *winCursor, mint, t int64) []model.Sample {
	if !c.init {
		c.hi = sort.Search(len(samples), func(k int) bool { return samples[k].T > t })
		c.lo = sort.Search(len(samples), func(k int) bool { return samples[k].T > mint })
		c.init = true
	} else {
		for c.hi < len(samples) && samples[c.hi].T <= t {
			c.hi++
		}
		for c.lo < len(samples) && samples[c.lo].T <= mint {
			c.lo++
		}
	}
	return dropStaleMarkers(samples[c.lo:c.hi])
}
