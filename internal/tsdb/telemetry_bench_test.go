package tsdb

import (
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// BenchmarkTelemetryAppendOverhead proves the instrumentation budget on the
// hottest path: the same WAL-v2 commit workload as BenchmarkWALAppend, bare
// versus with a telemetry registry attached. The bare/instrumented ns/op
// delta is the whole cost of self-telemetry per appended sample — the
// commit-latency histogram observe, the WAL flush timing, and the
// nil-checks — and the gate is that it stays within a few percent (and
// zero extra allocations).
func BenchmarkTelemetryAppendOverhead(b *testing.B) {
	for _, mode := range []string{"bare", "instrumented"} {
		b.Run(mode, func(b *testing.B) {
			opts := Options{Shards: 8, WALDir: filepath.Join(b.TempDir(), "wal"), WALCompression: true}
			if mode == "instrumented" {
				opts.Telemetry = telemetry.NewRegistry()
			}
			db, err := Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			lsets := benchLabels(100)
			b.ReportAllocs()
			b.ResetTimer()
			i := 0
			for i < b.N {
				app := db.Appender()
				t := int64(i) * 1000
				for s := 0; s < len(lsets) && i < b.N; s++ {
					app.Add(lsets[s], t, float64(i))
					i++
				}
				if _, err := app.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if mode == "instrumented" {
				// The registry must have seen every commit, or the benchmark
				// is measuring an unwired head.
				if n := db.metrics.commitSeconds.Count(); n == 0 {
					b.Fatal("instrumented head recorded no commit observations")
				}
			}
		})
	}
}
