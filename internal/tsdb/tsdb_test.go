package tsdb

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/labels"
	"repro/internal/model"
)

func mustAppend(t *testing.T, db *DB, lset labels.Labels, samples ...model.Sample) {
	t.Helper()
	for _, s := range samples {
		if err := db.Append(lset, s.T, s.V); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func TestAppendSelect(t *testing.T) {
	db := MustOpen(DefaultOptions())
	ls := labels.FromStrings(labels.MetricName, "up", "instance", "n1")
	mustAppend(t, db, ls, model.Sample{T: 1000, V: 1}, model.Sample{T: 2000, V: 0})

	got, err := db.Select(0, 5000, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "up"))
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("want 1 series, got %d", len(got))
	}
	want := []model.Sample{{T: 1000, V: 1}, {T: 2000, V: 0}}
	if !reflect.DeepEqual(got[0].Samples, want) {
		t.Errorf("samples = %v, want %v", got[0].Samples, want)
	}
}

func TestSelectTimeRange(t *testing.T) {
	db := MustOpen(DefaultOptions())
	ls := labels.FromStrings(labels.MetricName, "m")
	for i := int64(0); i < 10; i++ {
		mustAppend(t, db, ls, model.Sample{T: i * 1000, V: float64(i)})
	}
	got, _ := db.Select(3000, 6000, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m"))
	if len(got) != 1 || len(got[0].Samples) != 4 {
		t.Fatalf("range select wrong: %+v", got)
	}
	if got[0].Samples[0].T != 3000 || got[0].Samples[3].T != 6000 {
		t.Errorf("bounds wrong: %v", got[0].Samples)
	}
	// Disjoint range yields nothing.
	got, _ = db.Select(100000, 200000, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m"))
	if len(got) != 0 {
		t.Errorf("expected empty result, got %v", got)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	db := MustOpen(DefaultOptions())
	ls := labels.FromStrings(labels.MetricName, "m")
	mustAppend(t, db, ls, model.Sample{T: 1000, V: 1})
	if err := db.Append(ls, 1000, 2); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("want ErrOutOfOrder, got %v", err)
	}
	if err := db.Append(ls, 500, 2); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("want ErrOutOfOrder, got %v", err)
	}
}

func TestMatcherSelection(t *testing.T) {
	db := MustOpen(DefaultOptions())
	for i := 0; i < 10; i++ {
		ls := labels.FromStrings(labels.MetricName, "cpu", "node", fmt.Sprintf("n%d", i), "dc", map[bool]string{true: "a", false: "b"}[i%2 == 0])
		mustAppend(t, db, ls, model.Sample{T: 1000, V: float64(i)})
	}
	sel := func(ms ...*labels.Matcher) int {
		t.Helper()
		got, err := db.Select(0, 2000, ms...)
		if err != nil {
			t.Fatalf("Select: %v", err)
		}
		return len(got)
	}
	if n := sel(labels.MustMatcher(labels.MatchEqual, "dc", "a")); n != 5 {
		t.Errorf("dc=a: %d", n)
	}
	if n := sel(labels.MustMatcher(labels.MatchRegexp, "node", "n[0-2]")); n != 3 {
		t.Errorf("regex: %d", n)
	}
	if n := sel(labels.MustMatcher(labels.MatchEqual, labels.MetricName, "cpu"),
		labels.MustMatcher(labels.MatchNotEqual, "dc", "a")); n != 5 {
		t.Errorf("negation: %d", n)
	}
	if n := sel(labels.MustMatcher(labels.MatchEqual, labels.MetricName, "cpu"),
		labels.MustMatcher(labels.MatchNotRegexp, "node", "n[0-8]")); n != 1 {
		t.Errorf("not-regexp: %d", n)
	}
	// Matcher for absent label value "" matches all (none have "rack").
	if n := sel(labels.MustMatcher(labels.MatchEqual, labels.MetricName, "cpu"),
		labels.MustMatcher(labels.MatchEqual, "rack", "")); n != 10 {
		t.Errorf("empty-value matcher: %d", n)
	}
}

func TestSelectRequiresMatcher(t *testing.T) {
	db := MustOpen(DefaultOptions())
	if _, err := db.Select(0, 1); err == nil {
		t.Error("expected error with no matchers")
	}
}

func TestLabelValuesNames(t *testing.T) {
	db := MustOpen(DefaultOptions())
	mustAppend(t, db, labels.FromStrings(labels.MetricName, "m", "a", "2"), model.Sample{T: 1, V: 1})
	mustAppend(t, db, labels.FromStrings(labels.MetricName, "m", "a", "1"), model.Sample{T: 1, V: 1})
	if got := db.LabelValues("a"); !reflect.DeepEqual(got, []string{"1", "2"}) {
		t.Errorf("LabelValues = %v", got)
	}
	if got := db.LabelNames(); !reflect.DeepEqual(got, []string{labels.MetricName, "a"}) {
		t.Errorf("LabelNames = %v", got)
	}
}

func TestChunkRollover(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxSamplesPerChunk = 10
	db := MustOpen(opts)
	ls := labels.FromStrings(labels.MetricName, "m")
	for i := int64(0); i < 55; i++ {
		mustAppend(t, db, ls, model.Sample{T: i, V: float64(i)})
	}
	got, _ := db.Select(0, 100, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m"))
	if len(got) != 1 || len(got[0].Samples) != 55 {
		t.Fatalf("rollover lost samples: %d", len(got[0].Samples))
	}
	for i, s := range got[0].Samples {
		if s.T != int64(i) {
			t.Fatalf("sample %d out of order: %v", i, s)
		}
	}
}

func TestTruncate(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxSamplesPerChunk = 5
	db := MustOpen(opts)
	old := labels.FromStrings(labels.MetricName, "old")
	live := labels.FromStrings(labels.MetricName, "live")
	for i := int64(0); i < 20; i++ {
		mustAppend(t, db, old, model.Sample{T: i * 100, V: 1})
	}
	for i := int64(0); i < 40; i++ {
		mustAppend(t, db, live, model.Sample{T: i * 100, V: 1})
	}
	db.Truncate(2500)
	// old's chunks: 4 chunks of 5 samples [0..400],[500..900],[1000..1400],[1500..1900]
	// all < 2500 but lastT=1900 < 2500 and no head chunk... all four chunks were
	// closed, so the series is removed entirely.
	got, _ := db.Select(0, 10000, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "old"))
	if len(got) != 0 {
		t.Errorf("old series should be gone, got %v", got)
	}
	got, _ = db.Select(0, 10000, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "live"))
	if len(got) != 1 {
		t.Fatalf("live series missing")
	}
	if first := got[0].Samples[0].T; first < 2500 {
		t.Errorf("truncated chunk data still present (first=%d)", first)
	}
}

func TestDeleteSeries(t *testing.T) {
	db := MustOpen(DefaultOptions())
	for i := 0; i < 10; i++ {
		ls := labels.FromStrings(labels.MetricName, "job_cpu", "jobid", fmt.Sprintf("%d", i))
		mustAppend(t, db, ls, model.Sample{T: 1000, V: 1})
	}
	n := db.DeleteSeries(labels.MustMatcher(labels.MatchRegexp, "jobid", "[0-4]"))
	if n != 5 {
		t.Fatalf("deleted %d, want 5", n)
	}
	got, _ := db.Select(0, 2000, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "job_cpu"))
	if len(got) != 5 {
		t.Errorf("remaining %d, want 5", len(got))
	}
	if db.Stats().NumSeries != 5 {
		t.Errorf("stats series = %d", db.Stats().NumSeries)
	}
	// Label values index updated.
	if vals := db.LabelValues("jobid"); len(vals) != 5 {
		t.Errorf("jobid values = %v", vals)
	}
}

func TestStats(t *testing.T) {
	db := MustOpen(DefaultOptions())
	ls := labels.FromStrings(labels.MetricName, "m")
	mustAppend(t, db, ls, model.Sample{T: 5, V: 1}, model.Sample{T: 10, V: 2})
	st := db.Stats()
	if st.NumSeries != 1 || st.NumSamples != 2 || st.MinTime != 5 || st.MaxTime != 10 {
		t.Errorf("stats = %+v", st)
	}
	if _, ok := db.MinTime(); !ok {
		t.Error("MinTime should be available")
	}
	empty := MustOpen(DefaultOptions())
	if _, ok := empty.MinTime(); ok {
		t.Error("empty DB should have no MinTime")
	}
}

func TestConcurrentAppend(t *testing.T) {
	db := MustOpen(DefaultOptions())
	var wg sync.WaitGroup
	const goroutines = 8
	const samplesEach = 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ls := labels.FromStrings(labels.MetricName, "m", "g", fmt.Sprintf("%d", g))
			for i := int64(0); i < samplesEach; i++ {
				if err := db.Append(ls, i, float64(i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := db.Stats()
	if st.NumSeries != goroutines || st.NumSamples != goroutines*samplesEach {
		t.Errorf("stats after concurrent append: %+v", st)
	}
}

func TestCutBlockAndReadBack(t *testing.T) {
	db := MustOpen(DefaultOptions())
	for i := 0; i < 5; i++ {
		ls := labels.FromStrings(labels.MetricName, "m", "i", fmt.Sprintf("%d", i))
		for j := int64(0); j < 100; j++ {
			mustAppend(t, db, ls, model.Sample{T: j * 1000, V: float64(i*1000) + float64(j)})
		}
	}
	blk, err := db.CutBlock(10000, 50000)
	if err != nil {
		t.Fatalf("CutBlock: %v", err)
	}
	if len(blk.Series) != 5 {
		t.Fatalf("block series = %d", len(blk.Series))
	}
	if blk.MinTime != 10000 || blk.MaxTime != 50000 {
		t.Errorf("block bounds = [%d, %d]", blk.MinTime, blk.MaxTime)
	}
	if blk.NumSamples() != 5*41 {
		t.Errorf("block samples = %d, want %d", blk.NumSamples(), 5*41)
	}

	path := filepath.Join(t.TempDir(), "b.blk")
	if err := blk.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadBlockFile(path)
	if err != nil {
		t.Fatalf("ReadBlockFile: %v", err)
	}
	if got.NumSamples() != blk.NumSamples() || len(got.Series) != len(blk.Series) {
		t.Fatalf("decoded block differs: %d/%d", got.NumSamples(), len(got.Series))
	}
	// Query the decoded block.
	res := got.Select(10000, 20000, labels.MustMatcher(labels.MatchEqual, "i", "3"))
	if len(res) != 1 || len(res[0].Samples) != 11 {
		t.Errorf("block select = %+v", res)
	}
}

func TestReadBlockFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadBlockFile(filepath.Join(dir, "missing.blk")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestCutBlockEmptyRange(t *testing.T) {
	db := MustOpen(DefaultOptions())
	mustAppend(t, db, labels.FromStrings(labels.MetricName, "m"), model.Sample{T: 1, V: 1})
	blk, err := db.CutBlock(1000, 2000)
	if err != nil {
		t.Fatalf("CutBlock: %v", err)
	}
	if len(blk.Series) != 0 || blk.NumSamples() != 0 {
		t.Errorf("expected empty block")
	}
}

// Property: Select over the full range returns exactly what was appended,
// regardless of chunk boundaries.
func TestAppendSelectProperty(t *testing.T) {
	f := func(seed int64, nSeries uint8, chunkSize uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := DefaultOptions()
		opts.MaxSamplesPerChunk = int(chunkSize%50) + 2
		db := MustOpen(opts)
		ns := int(nSeries%8) + 1
		want := map[string][]model.Sample{}
		for i := 0; i < ns; i++ {
			key := fmt.Sprintf("%d", i)
			ls := labels.FromStrings(labels.MetricName, "m", "s", key)
			tcur := int64(0)
			n := rng.Intn(300)
			for j := 0; j < n; j++ {
				tcur += rng.Int63n(5000) + 1
				v := rng.NormFloat64()
				if db.Append(ls, tcur, v) != nil {
					return false
				}
				want[key] = append(want[key], model.Sample{T: tcur, V: v})
			}
		}
		got, err := db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m"))
		if err != nil {
			return false
		}
		count := 0
		for _, s := range got {
			count++
			if !reflect.DeepEqual(s.Samples, want[s.Labels.Get("s")]) {
				return false
			}
		}
		nonEmpty := 0
		for _, w := range want {
			if len(w) > 0 {
				nonEmpty++
			}
		}
		return count == nonEmpty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: block write/read round-trip preserves all samples.
func TestBlockRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := MustOpen(DefaultOptions())
		for i := 0; i < 3; i++ {
			ls := labels.FromStrings(labels.MetricName, "m", "i", fmt.Sprintf("%d", i))
			tcur := int64(0)
			for j := 0; j < 50; j++ {
				tcur += rng.Int63n(1000) + 1
				db.Append(ls, tcur, rng.Float64()*100)
			}
		}
		blk, err := db.CutBlock(0, 1<<60)
		if err != nil {
			return false
		}
		path := filepath.Join(dir, fmt.Sprintf("p%d.blk", seed))
		if err := blk.WriteFile(path); err != nil {
			return false
		}
		got, err := ReadBlockFile(path)
		if err != nil {
			return false
		}
		a := blk.Select(0, 1<<60, labels.MustMatcher(labels.MatchRegexp, labels.MetricName, ".*"))
		b := got.Select(0, 1<<60, labels.MustMatcher(labels.MatchRegexp, labels.MetricName, ".*"))
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	db := MustOpen(DefaultOptions())
	ls := make([]labels.Labels, 100)
	for i := range ls {
		ls[i] = labels.FromStrings(labels.MetricName, "m", "series", fmt.Sprintf("%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Append(ls[i%100], int64(i), float64(i))
	}
}

func BenchmarkSelect(b *testing.B) {
	db := MustOpen(DefaultOptions())
	for i := 0; i < 1000; i++ {
		ls := labels.FromStrings(labels.MetricName, "m", "series", fmt.Sprintf("%d", i))
		for j := int64(0); j < 100; j++ {
			db.Append(ls, j*15000, float64(j))
		}
	}
	m1 := labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m")
	m2 := labels.MustMatcher(labels.MatchEqual, "series", "500")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Select(0, 1<<60, m1, m2)
	}
}
