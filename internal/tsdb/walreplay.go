package tsdb

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/labels"
	"repro/internal/workpool"
)

// WAL recovery.
//
// Open replays every shard directory in parallel on the shared workpool: a
// shard's records apply independently of every other shard's (a series lives
// in exactly one shard, so its whole history is in one directory), which is
// the same property that lets appends and queries stripe without cross-shard
// locks. Each worker replays checkpoint.snap first, then the numbered
// segments in order.
//
// Corruption tolerance follows Prometheus: a record that is cut short or
// fails its CRC ends that file's replay — the file is truncated back to the
// last whole record ("torn-tail repair") and, because later segments are
// causally after the damage, they are dropped too. Everything before the bad
// byte is recovered.

// walMeta is the WAL directory's self-description; it pins the shard count
// the directory was written with.
type walMeta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// WALReplayStats summarizes one recovery pass.
type WALReplayStats struct {
	Shards      int           // shard directories replayed
	Segments    int           // files replayed (checkpoints + segments)
	Records     int           // whole records applied
	Series      int           // series registrations seen
	Samples     int           // samples re-appended to the head
	TornRepairs int           // files truncated back to the last whole record
	Dropped     int           // samples dropping an unknown series ref
	Skipped     int           // samples skipped as out-of-order (checkpoint dedup)
	Rebuilt     bool          // WAL rewritten because the shard count changed
	Duration    time.Duration // wall time of the whole replay
}

// openWAL replays an existing WAL directory into the fresh shards and
// attaches a writer to every shard. Called by Open when Options.WALDir is
// set, before the DB is visible to anyone.
func (db *DB) openWAL() error {
	dir := db.opts.WALDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	start := time.Now()

	// Crashed-rebuild leftovers: an unpublished staging dir is garbage; a
	// published one is a complete new layout whose swap must be finished
	// before anything is replayed.
	if err := os.RemoveAll(filepath.Join(dir, walRebuildTmp)); err != nil {
		return err
	}
	if fileExists(filepath.Join(dir, walRebuildDir)) {
		if err := swapInWALRebuild(dir); err != nil {
			return err
		}
	}

	meta, err := readWALMeta(dir)
	if err != nil {
		return err
	}
	dirs, err := listShardDirs(dir)
	if err != nil {
		return err
	}
	sameLayout := meta.Shards == 0 || meta.Shards == len(db.shards)

	replays := make([]*dirReplay, len(dirs))
	var (
		errMu    sync.Mutex
		firstErr error
	)
	workpool.Do(len(dirs), 0, func(i int) {
		dr, err := db.replayShardDir(dirs[i])
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			return
		}
		replays[i] = dr
	})
	if firstErr != nil {
		return firstErr
	}

	st := WALReplayStats{Shards: len(dirs)}
	for _, dr := range replays {
		st.Segments += dr.segments
		st.Records += dr.records
		st.Series += dr.series
		st.Samples += dr.samples
		st.TornRepairs += dr.torn
		st.Dropped += dr.dropped
		st.Skipped += dr.skipped
	}

	if sameLayout && len(dirs) <= len(db.shards) {
		// Fast path: shard directory i feeds shard i; hand each shard its
		// journal, seeded so new records keep using the refs the existing
		// segments already define.
		byIndex := make(map[int]*dirReplay, len(dirs))
		for i, d := range dirs {
			byIndex[shardDirIndex(d)] = replays[i]
		}
		for i, sh := range db.shards {
			dr := byIndex[i]
			segIndex, firstSeg, nextRef := 1, 1, uint64(0)
			if dr != nil {
				segIndex, firstSeg = dr.lastSeg+1, dr.firstSeg
				if firstSeg > segIndex {
					firstSeg = segIndex
				}
				nextRef = dr.maxRef
				for ref, e := range dr.refMap {
					e.s.walRef = ref
				}
			}
			w, err := openShardWAL(walShardDir(dir, i), db.opts.WALSegmentSize, segIndex, firstSeg, nextRef, db.opts.WALCompression)
			if err != nil {
				return err
			}
			sh.wal = w
		}
	} else {
		// The shard count changed: the replayed series were hash-routed to
		// their new shards above, but their history is spread across the old
		// layout. Rewrite the WAL in the new layout so every shard's journal
		// is self-contained again — staged in a temp dir, published with one
		// rename, and only then is the old layout deleted: a crash at any
		// point leaves either the complete old WAL or the complete new one.
		st.Rebuilt = true
		if err := db.rebuildWAL(dir); err != nil {
			return err
		}
	}

	if err := writeWALMeta(dir, walMeta{Version: 1, Shards: len(db.shards)}); err != nil {
		return err
	}
	st.Duration = time.Since(start)
	db.walReplay = st
	return nil
}

const (
	// walRebuildTmp stages a shard-count rebuild; walRebuildDir is the
	// staging dir after its atomic publish rename. Their presence at open
	// time means a rebuild crashed mid-way: .tmp is discarded, the
	// published dir is swapped in.
	walRebuildTmp = "rebuild.tmp"
	walRebuildDir = "rebuild"
)

// rebuildWAL rewrites the whole WAL in the current shard layout from the
// (already replayed) head: one fsynced full snapshot per shard, staged
// under rebuild.tmp, published by renaming it to rebuild, and swapped over
// the old layout. The old journals are not touched until the complete new
// layout is durable.
func (db *DB) rebuildWAL(dir string) error {
	tmpRoot := filepath.Join(dir, walRebuildTmp)
	if err := os.RemoveAll(tmpRoot); err != nil {
		return err
	}
	nextRefs := make([]uint64, len(db.shards))
	// The staged layout carries its own meta: the swap reads it to know the
	// authoritative new shard count even after a mid-swap crash.
	if err := os.MkdirAll(tmpRoot, 0o755); err != nil {
		return err
	}
	if err := writeWALMeta(tmpRoot, walMeta{Version: 1, Shards: len(db.shards)}); err != nil {
		return err
	}
	for i, sh := range db.shards {
		sdir := filepath.Join(tmpRoot, fmt.Sprintf("shard-%04d", i))
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			return err
		}
		// Fresh refs per shard, streamed series-by-series like a checkpoint;
		// no writers exist yet, so no lock needed.
		path := filepath.Join(sdir, walCheckpointFile)
		err := writeFileDurably(path, func(dst *bufio.Writer) error {
			return streamShardSnapshot(dst, sh, db.opts.WALCompression, db.Tombstones(), func(s *memSeries) uint64 {
				nextRefs[i]++
				s.walRef = nextRefs[i]
				return s.walRef
			})
		})
		if err != nil {
			return err
		}
		if err := syncDir(sdir); err != nil {
			return err
		}
	}
	if err := syncDir(tmpRoot); err != nil {
		return err
	}
	// Publish: from here on, a crash recovers from the new layout.
	if err := os.Rename(tmpRoot, filepath.Join(dir, walRebuildDir)); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	if err := swapInWALRebuild(dir); err != nil {
		return err
	}
	for i, sh := range db.shards {
		w, err := openShardWAL(walShardDir(dir, i), db.opts.WALSegmentSize, 1, 1, nextRefs[i], db.opts.WALCompression)
		if err != nil {
			return err
		}
		sh.wal = w
	}
	return nil
}

// swapInWALRebuild replaces the top-level shard layout with the published
// rebuild dir's contents. It is idempotent across crashes at any step: a
// shard dir still inside rebuild/ is authoritative and replaces its
// top-level namesake; one already moved out by an earlier attempt is left
// alone; old-layout dirs beyond the new shard count (read from the staged
// meta) are deleted; the top-level meta is rewritten last.
func swapInWALRebuild(dir string) error {
	rebuilt := filepath.Join(dir, walRebuildDir)
	meta, err := readWALMeta(rebuilt)
	if err != nil {
		return err
	}
	if meta.Shards <= 0 {
		// No staged meta: the publish rename cannot have happened (meta is
		// written before it); treat the dir as garbage.
		return os.RemoveAll(rebuilt)
	}
	for i := 0; i < meta.Shards; i++ {
		staged := filepath.Join(rebuilt, fmt.Sprintf("shard-%04d", i))
		if !fileExists(staged) {
			continue // already swapped in by a previous attempt
		}
		target := walShardDir(dir, i)
		if err := os.RemoveAll(target); err != nil {
			return err
		}
		if err := os.Rename(staged, target); err != nil {
			return err
		}
	}
	old, err := listShardDirs(dir)
	if err != nil {
		return err
	}
	for _, d := range old {
		if idx := shardDirIndex(d); idx < 0 || idx >= meta.Shards {
			if err := os.RemoveAll(d); err != nil {
				return err
			}
		}
	}
	if err := writeWALMeta(dir, walMeta{Version: 1, Shards: meta.Shards}); err != nil {
		return err
	}
	if err := os.RemoveAll(rebuilt); err != nil {
		return err
	}
	return syncDir(dir)
}

func readWALMeta(dir string) (walMeta, error) {
	var m walMeta
	data, err := os.ReadFile(filepath.Join(dir, walMetaFile))
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		// An unparsable meta (e.g. zeroed by power loss mid-rename) is
		// treated like an absent one: the shard journals are the data, the
		// meta only optimizes layout detection, so replay proceeds from the
		// directory names and the meta is rewritten.
		return walMeta{}, nil
	}
	return m, nil
}

func writeWALMeta(dir string, m walMeta) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, walMetaFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, walMetaFile))
}

// listShardDirs returns the shard-NNNN directories under the WAL root,
// sorted by index.
func listShardDirs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

func shardDirIndex(dir string) int {
	var i int
	if _, err := fmt.Sscanf(filepath.Base(dir), "shard-%d", &i); err != nil {
		return -1
	}
	return i
}

// walEntry resolves one WAL series ref during replay: the live series plus
// its target shard index (cached so samples don't rehash labels).
type walEntry struct {
	s     *memSeries
	shard int
}

// dirReplay is the outcome of replaying one shard directory.
type dirReplay struct {
	refMap   map[uint64]walEntry
	maxRef   uint64
	lastSeg  int // highest segment index on disk (0 when none)
	firstSeg int // lowest segment index still on disk

	segments, records, series, samples int
	torn, dropped, skipped             int
}

// shardAcc accumulates noteAppend input per target shard during replay so
// the atomic time-bound CAS loops run once per shard, not per sample.
type shardAcc struct {
	mint, maxt int64
	n          uint64
}

// replayShardDir applies one shard directory's checkpoint and segments to
// the head. Series route by their label hash, which is a no-op when the
// shard layout is unchanged and re-distributes them when it is not.
func (db *DB) replayShardDir(dir string) (*dirReplay, error) {
	dr := &dirReplay{refMap: make(map[uint64]walEntry)}
	acc := make([]shardAcc, len(db.shards))
	for i := range acc {
		acc[i] = shardAcc{mint: int64(1) << 62, maxt: -(int64(1) << 62)}
	}

	// Leftover temp files from an interrupted checkpoint are garbage by
	// definition (the rename never happened).
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	for _, t := range tmps {
		os.Remove(t)
	}

	var files []string
	nCheckpoints := 0
	if cp := filepath.Join(dir, walCheckpointFile); fileExists(cp) {
		files = append(files, cp)
		nCheckpoints = 1
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		return nil, err
	}
	sort.Strings(segs)
	dr.firstSeg = 0
	for _, s := range segs {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(s), "%08d.wal", &idx); err == nil {
			if dr.firstSeg == 0 || idx < dr.firstSeg {
				dr.firstSeg = idx
			}
			if idx > dr.lastSeg {
				dr.lastSeg = idx
			}
		}
	}
	if dr.firstSeg == 0 {
		dr.firstSeg = 1
	}
	files = append(files, segs...)

	for fi, path := range files {
		torn, err := db.replayWALFile(path, dr, acc)
		if err != nil {
			return nil, err
		}
		dr.segments++
		if torn {
			dr.torn++
			// A torn SEGMENT ends this shard's recovery: later segments were
			// appended after the damaged record, so their contents are
			// causally past it — drop them so a future replay cannot
			// resurrect records this recovery already declared dead. A torn
			// CHECKPOINT is different: the segments were journalled after
			// the checkpoint was cut but are not derived from its bytes —
			// they stay and replay (samples whose series registration sat in
			// the checkpoint's lost tail surface as dropped refs).
			if fi >= nCheckpoints {
				for _, later := range files[fi+1:] {
					if err := os.Remove(later); err != nil && !os.IsNotExist(err) {
						return nil, err
					}
				}
				break
			}
		}
	}

	for i, a := range acc {
		if a.n > 0 {
			db.shards[i].noteAppend(a.mint, a.maxt, a.n)
		}
	}
	return dr, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// replayWALFile applies one file's records. The file's format is sniffed
// from its (optional) header: v1 files are raw record streams, v2 files
// carry compressed payloads decoded through a per-file walV2Dec whose
// Gorilla state spans records but never files. It returns torn=true when
// the file ended in a cut-short or CRC-corrupt record, in which case the
// file has been truncated back to its last whole record.
func (db *DB) replayWALFile(path string, dr *dirReplay, acc []shardAcc) (torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	version, off, hdrTorn, err := walSniffVersion(data)
	if err != nil {
		return false, fmt.Errorf("tsdb: wal replay %s: %w", path, err)
	}
	if hdrTorn {
		// Crash during the very first write: the file is a strict prefix of
		// the v2 header. Truncate to empty and report the tear.
		if err := os.Truncate(path, 0); err != nil {
			return true, err
		}
		return true, nil
	}
	var dec *walV2Dec
	if version >= walFormatV2 {
		dec = newWalV2Dec()
	}
	var scratch []walSampleRec
	for off < len(data) {
		if len(data)-off < walHeaderSize {
			break // cut short mid-header
		}
		typ := data[off]
		plen := int(binary.LittleEndian.Uint32(data[off+1 : off+5]))
		crc := binary.LittleEndian.Uint32(data[off+5 : off+9])
		if plen > walMaxPayload || !walRecTypeValid(version, typ) {
			break // framing garbage: treat as torn at this offset
		}
		if len(data)-off-walHeaderSize < plen {
			break // cut short mid-payload
		}
		payload := data[off+walHeaderSize : off+walHeaderSize+plen]
		if crc32.Checksum(payload, walCRC) != crc {
			break // flipped bits: everything before this record is good
		}
		// A record whose CRC passed but whose payload does not decode is
		// fatal corruption (encoder bug or CRC collision), like v1's
		// malformed-payload errors — never silently dropped.
		switch typ {
		case walRecSeries:
			err = db.applySeriesPayload(payload, dr)
		case walRecSeriesV2:
			var raw []byte
			if raw, err = walDecompress(payload); err == nil {
				err = db.applySeriesPayload(raw, dr)
			}
		case walRecSamples:
			if scratch, err = decodeSamplesPayload(scratch[:0], payload); err == nil {
				db.applySamples(scratch, dr, acc)
			}
		case walRecSamplesV2:
			if scratch, err = dec.decodeSamples(scratch[:0], payload); err == nil {
				db.applySamples(scratch, dr, acc)
			}
		case walRecDeletes:
			err = db.applyDeletesPayload(payload, dr)
		case walRecDeletesV2:
			var raw []byte
			if raw, err = walDecompress(payload); err == nil {
				err = db.applyDeletesPayload(raw, dr)
			}
		case walRecTombstone:
			err = db.applyTombstonePayload(payload, dr)
		case walRecTombstoneV2:
			var raw []byte
			if raw, err = walDecompress(payload); err == nil {
				err = db.applyTombstonePayload(raw, dr)
			}
		}
		if err != nil {
			return false, fmt.Errorf("tsdb: wal replay %s: %w", path, err)
		}
		dr.records++
		off += walHeaderSize + plen
	}
	if off == len(data) {
		return false, nil
	}
	if err := os.Truncate(path, int64(off)); err != nil {
		return true, err
	}
	return true, nil
}

// applySeriesPayload registers every series of one (decoded) series payload
// with the head, hash-routing each to its shard.
func (db *DB) applySeriesPayload(payload []byte, dr *dirReplay) error {
	count, payload, err := readUvarint(payload)
	if err != nil {
		return err
	}
	for i := uint64(0); i < count; i++ {
		var ref, nLabels uint64
		if ref, payload, err = readUvarint(payload); err != nil {
			return err
		}
		if nLabels, payload, err = readUvarint(payload); err != nil {
			return err
		}
		lset := make(labels.Labels, 0, nLabels)
		for j := uint64(0); j < nLabels; j++ {
			var name, value string
			if name, payload, err = readString(payload); err != nil {
				return err
			}
			if value, payload, err = readString(payload); err != nil {
				return err
			}
			lset = append(lset, labels.Label{Name: name, Value: value})
		}
		h := lset.Hash()
		s := db.shardFor(h).getOrCreate(h, lset)
		dr.refMap[ref] = walEntry{s: s, shard: int(h & db.mask)}
		if ref > dr.maxRef {
			dr.maxRef = ref
		}
		dr.series++
	}
	return nil
}

// decodeSamplesPayload decodes one v1 samples payload onto dst.
func decodeSamplesPayload(dst []walSampleRec, payload []byte) ([]walSampleRec, error) {
	count, payload, err := readUvarint(payload)
	if err != nil {
		return dst, err
	}
	for i := uint64(0); i < count; i++ {
		var ref uint64
		var t int64
		if ref, payload, err = readUvarint(payload); err != nil {
			return dst, err
		}
		if t, payload, err = readVarint(payload); err != nil {
			return dst, err
		}
		if len(payload) < 8 {
			return dst, fmt.Errorf("truncated sample value")
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[:8]))
		payload = payload[8:]
		dst = append(dst, walSampleRec{ref: ref, t: t, v: v})
	}
	return dst, nil
}

// applySamples re-appends decoded samples to the head, resolving each
// through the replay ref map.
func (db *DB) applySamples(recs []walSampleRec, dr *dirReplay, acc []shardAcc) {
	maxPerChunk := db.opts.MaxSamplesPerChunk
	// With the out-of-order window on, replay accepts any journalled
	// backwards sample regardless of the configured width: the write path
	// only journals samples it accepted, so re-checking the window here
	// (against time bounds that are not maintained incrementally during
	// replay) would drop durable data. Duplicates from checkpoint overlap
	// still dedup via the t==lastT / buffer-duplicate skips.
	var ooo *oooAppendCtx
	if db.opts.OutOfOrderWindow > 0 {
		ooo = &oooAppendCtx{bound: math.MinInt64}
	}
	for _, r := range recs {
		e, ok := dr.refMap[r.ref]
		if !ok {
			dr.dropped++
			continue
		}
		s := e.s
		s.mu.Lock()
		outcome, aerr := s.appendLocked(r.t, r.v, maxPerChunk, ooo)
		s.mu.Unlock()
		if aerr != nil || outcome == appendDuplicate {
			// Out-of-order or duplicate here means the sample is already in
			// the head (a checkpoint raced a commit, or the record was
			// journalled for a rejected append) — skipping reproduces the
			// write path's behavior exactly.
			dr.skipped++
			continue
		}
		a := &acc[e.shard]
		if r.t < a.mint {
			a.mint = r.t
		}
		if r.t > a.maxt {
			a.maxt = r.t
		}
		a.n++
		dr.samples++
	}
}

// applyDeletesPayload removes every series named by one (decoded) tombstone
// payload from the head.
func (db *DB) applyDeletesPayload(payload []byte, dr *dirReplay) error {
	count, payload, err := readUvarint(payload)
	if err != nil {
		return err
	}
	for i := uint64(0); i < count; i++ {
		var ref uint64
		if ref, payload, err = readUvarint(payload); err != nil {
			return err
		}
		e, ok := dr.refMap[ref]
		if !ok {
			continue
		}
		delete(dr.refMap, ref)
		h := e.s.lset.Hash()
		db.shardFor(h).removeSeries(h, e.s)
	}
	return nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated uvarint")
	}
	return v, b[n:], nil
}

func readVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated varint")
	}
	return v, b[n:], nil
}

func readString(b []byte) (string, []byte, error) {
	l, b, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(b)) < l {
		return "", nil, fmt.Errorf("truncated string")
	}
	return string(b[:l]), b[l:], nil
}

// removeSeries unlinks one series from the shard (collision chain, byRef and
// postings); used by WAL replay to apply delete records.
func (sh *headShard) removeSeries(hash uint64, s *memSeries) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	chain := sh.series[hash]
	keep := chain[:0]
	for _, cs := range chain {
		if cs != s {
			keep = append(keep, cs)
		}
	}
	if len(keep) == 0 {
		delete(sh.series, hash)
	} else {
		sh.series[hash] = keep
	}
	sh.dropSeriesLocked(s)
}
