package tsdb

import (
	"fmt"
	"sort"

	"repro/internal/labels"
)

// Matcher-level delete tombstones.
//
// DeleteSeries removes series by ref: the WAL deletes record (type 3/6)
// names the refs that were live at delete time, which is exactly right for a
// single node — replay reproduces the delete byte-for-byte. It is NOT enough
// for a replicated deployment: a replica that was down during the delete
// never saw the refs, and when it rejoins, peer handoff would happily copy
// the "deleted" series right back (resurrection). The cluster layer
// (internal/cluster) therefore deletes through ApplyTombstone: a durable,
// matcher-level tombstone record carrying a coordinator-assigned sequence
// number. The record is journalled to EVERY shard WAL — replay is
// per-shard-parallel with no cross-shard ordering, so each shard's journal
// must be self-contained — and the per-DB tombstone log it rebuilds is what
// handoff replays into a warming member before that member serves reads.
//
// On-disk format (record types 7 raw / 8 block-compressed, see wal.go):
//
//	tombstone := seq uvarint, nMatchers uvarint, then per matcher:
//	             type byte | len uvarint + name bytes | len uvarint + value bytes
//
// Type 7 is valid in v1 and v2 files alike (a tombstone is format-agnostic);
// type 8, like the other compressed types, only in v2 files.
//
// Within one shard's journal, ordering gives re-create-after-delete for
// free: a tombstone record deletes only series registered before it, and a
// series re-created later is journalled after it. Across the DB, the seq is
// the dedup key — every shard carries a copy of each tombstone, replay and
// ApplyTombstone both record a given seq exactly once.

const (
	walRecTombstone   byte = 7
	walRecTombstoneV2 byte = 8
)

// TombstoneRec is one applied matcher-level delete: the coordinator-assigned
// sequence number plus the matchers it deleted by. The matcher slice is
// shared with the journal — callers must treat it as read-only.
type TombstoneRec struct {
	Seq      uint64
	Matchers []*labels.Matcher
}

// ApplyTombstone deletes every series matching ms and journals a durable
// matcher-level tombstone with the given sequence number to every shard WAL.
// A seq the DB has already seen (live or via replay) is a no-op returning
// (0, nil) — re-applying a peer's tombstone log is idempotent. It returns
// the number of series deleted and the first journal error.
func (db *DB) ApplyTombstone(seq uint64, ms ...*labels.Matcher) (int, error) {
	if !db.recordTombstone(seq, ms) {
		return 0, nil
	}

	// Double mutation bump, same reasoning as DeleteSeries: a cache fill
	// snapshotting mid-delete records a generation that is stale by the time
	// the delete finishes.
	db.mutations.Add(1)
	defer db.mutations.Add(1)
	deleted := make([]int, len(db.shards))
	errs := make([]error, len(db.shards))
	db.forEachShard(func(i int, sh *headShard) {
		w := sh.wal
		if w == nil {
			deleted[i], _ = sh.deleteSeries(ms)
			return
		}
		// Delete and journal under one WAL mutex hold, like DeleteSeries: a
		// racing commit is either fully journalled before the tombstone (the
		// tombstone wins on replay) or sees s.dropped after.
		w.mu.Lock()
		deleted[i], _ = sh.deleteSeries(ms)
		errs[i] = w.logTombstoneLocked(seq, ms)
		w.mu.Unlock()
	})
	total := 0
	var firstErr error
	for i, n := range deleted {
		total += n
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
	}
	db.noteWALErr(firstErr)
	return total, firstErr
}

// TombstoneSeq returns the highest tombstone sequence number this DB has
// recorded (0 when none). The cluster coordinator seeds its delete-sequence
// allocator from the max over all members at startup.
func (db *DB) TombstoneSeq() uint64 {
	db.tombMu.Lock()
	defer db.tombMu.Unlock()
	return db.tombMax
}

// Tombstones returns a copy of the tombstone log, sorted by sequence number.
// Handoff unions peers' logs and re-applies missing entries to a warming
// member via ApplyTombstone.
func (db *DB) Tombstones() []TombstoneRec {
	db.tombMu.Lock()
	out := make([]TombstoneRec, len(db.tombs))
	copy(out, db.tombs)
	db.tombMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// recordTombstone adds one tombstone to the in-memory log if its seq is new,
// reporting whether it was. On replay the matching series are removed per
// shard directory regardless of the dedup outcome (each dir carries its own
// copy of the record, but its refMap holds only that dir's series).
func (db *DB) recordTombstone(seq uint64, ms []*labels.Matcher) bool {
	db.tombMu.Lock()
	defer db.tombMu.Unlock()
	if _, dup := db.tombSeen[seq]; dup {
		return false
	}
	if db.tombSeen == nil {
		db.tombSeen = make(map[uint64]struct{})
	}
	db.tombSeen[seq] = struct{}{}
	db.tombs = append(db.tombs, TombstoneRec{Seq: seq, Matchers: ms})
	if seq > db.tombMax {
		db.tombMax = seq
	}
	return true
}

func encodeTombstonePayload(dst []byte, seq uint64, ms []*labels.Matcher) []byte {
	dst = appendUvarint(dst, seq)
	dst = appendUvarint(dst, uint64(len(ms)))
	for _, m := range ms {
		dst = append(dst, byte(m.Type))
		dst = appendUvarint(dst, uint64(len(m.Name)))
		dst = append(dst, m.Name...)
		dst = appendUvarint(dst, uint64(len(m.Value)))
		dst = append(dst, m.Value...)
	}
	return dst
}

func decodeTombstonePayload(payload []byte) (uint64, []*labels.Matcher, error) {
	seq, payload, err := readUvarint(payload)
	if err != nil {
		return 0, nil, err
	}
	count, payload, err := readUvarint(payload)
	if err != nil {
		return 0, nil, err
	}
	ms := make([]*labels.Matcher, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(payload) < 1 {
			return 0, nil, fmt.Errorf("truncated matcher type")
		}
		typ := labels.MatchType(payload[0])
		payload = payload[1:]
		if typ < labels.MatchEqual || typ > labels.MatchNotRegexp {
			return 0, nil, fmt.Errorf("bad matcher type %d", typ)
		}
		var name, value string
		if name, payload, err = readString(payload); err != nil {
			return 0, nil, err
		}
		if value, payload, err = readString(payload); err != nil {
			return 0, nil, err
		}
		// A regexp that fails to compile was never encodable, so this is
		// payload corruption that slipped past the CRC — fatal, like every
		// other decode error.
		m, err := labels.NewMatcher(typ, name, value)
		if err != nil {
			return 0, nil, err
		}
		ms = append(ms, m)
	}
	return seq, ms, nil
}

func (e *walRecEncoder) appendTombstoneRecord(dst []byte, seq uint64, ms []*labels.Matcher) []byte {
	if !e.compress {
		return appendFramed(dst, walRecTombstone, func(b []byte) []byte { return encodeTombstonePayload(b, seq, ms) })
	}
	e.scratch = encodeTombstonePayload(e.scratch[:0], seq, ms)
	return appendFramed(dst, walRecTombstoneV2, func(b []byte) []byte { return appendCompressed(b, e.scratch) })
}

// logTombstoneLocked journals one tombstone record; the caller holds w.mu.
// Mirrors logLocked's rotate-before-encode and nil-writer retry.
func (w *shardWAL) logTombstoneLocked(seq uint64, ms []*labels.Matcher) error {
	if w.f == nil {
		if err := w.openSegmentLocked(); err != nil {
			return err
		}
	}
	if w.segBytes >= w.segLimit {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	w.buf = w.appendTombstoneRecord(w.buf[:0], seq, ms)
	if _, err := w.bw.Write(w.buf); err != nil {
		return fmt.Errorf("tsdb: wal append: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("tsdb: wal flush: %w", err)
	}
	w.segBytes += int64(len(w.buf))
	w.records.Add(1)
	return nil
}

// applyTombstonePayload replays one tombstone record: matching series
// registered earlier in this shard directory's stream are removed, and the
// tombstone is recorded in the DB-level log (deduped by seq — every shard
// carries a copy).
func (db *DB) applyTombstonePayload(payload []byte, dr *dirReplay) error {
	seq, ms, err := decodeTombstonePayload(payload)
	if err != nil {
		return err
	}
	for ref, e := range dr.refMap {
		if !labels.MatchLabels(e.s.lset, ms...) {
			continue
		}
		delete(dr.refMap, ref)
		h := e.s.lset.Hash()
		db.shardFor(h).removeSeries(h, e.s)
	}
	db.recordTombstone(seq, ms)
	return nil
}
