package tsdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/labels"
)

// Per-shard write-ahead log.
//
// Each head shard journals its own appends to an independent segmented WAL
// under <WALDir>/shard-<i>/, mirroring how the shard owns its series map and
// postings: the hot path takes the shard's WAL mutex and nothing else, so
// durability adds no cross-shard locks. A batch Appender commit produces one
// buffered write + flush per shard per scrape.
//
// On-disk format (all integers little-endian unless varint):
//
//	record  := type(1) | payloadLen(uint32) | crc32c(payload)(uint32) | payload
//	series  := count uvarint, then per series:
//	           ref uvarint, nLabels uvarint, {len uvarint + name bytes,
//	           len uvarint + value bytes} per label
//	samples := count uvarint, then per sample:
//	           ref uvarint, t varint, value float64 bits (8 bytes)
//	deletes := count uvarint, then ref uvarint per deleted series
//
// That is format v1: self-describing, raw payloads. With
// Options.WALCompression, new files are written in format v2 (walv2.go): a
// 5-byte magic+version header, then the same framing with Gorilla-encoded
// samples records and block-compressed series/tombstone records. The format
// is chosen per file, so v1 and v2 files coexist in one shard directory and
// toggling the option migrates the journal at the next rotation.
//
// Segments are numbered 00000001.wal, 00000002.wal, ... and rotate at
// Options.WALSegmentSize. A checkpoint (run per shard by Truncate) streams
// checkpoint.snap — a full snapshot of the shard's retained series and
// samples in the same record format, written series-by-series through a
// buffered writer so the resident cost is O(series), not O(shard bytes) —
// fsyncs it into place, and then drops every segment that predates it, so
// the WAL stays bounded by head size.
//
// Replay (walreplay.go) tolerates a torn final record per file: the file is
// truncated back to the last whole record and recovery continues, exactly
// like Prometheus's WAL repair.

const (
	walRecSeries  byte = 1
	walRecSamples byte = 2
	walRecDeletes byte = 3

	// walHeaderSize is type + payload length + payload CRC.
	walHeaderSize = 1 + 4 + 4

	// walMaxPayload is the decoder's sanity bound on a record payload; a
	// longer length is treated as corruption, not an allocation request.
	walMaxPayload = 1 << 30

	walMetaFile       = "wal-meta.json"
	walCheckpointFile = "checkpoint.snap"

	// DefaultWALSegmentSize rotates segments at 4 MiB, small enough that
	// checkpoints delete files promptly and large enough to amortize file
	// creation.
	DefaultWALSegmentSize = 4 << 20
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// walSeriesRec is one series registration: a shard-local WAL ref bound to a
// label set. Samples reference the ref, never the labels.
type walSeriesRec struct {
	ref  uint64
	lset labels.Labels
}

// walSampleRec is one journalled sample.
type walSampleRec struct {
	ref uint64
	t   int64
	v   float64
}

// shardWAL is the journal of one head shard. Its mutex serializes every
// append to the shard's memory AND the matching WAL write, so the log order
// per series always matches the in-memory apply order — replay cannot be
// tricked into out-of-order skips by concurrent writers.
type shardWAL struct {
	mu       sync.Mutex
	dir      string
	segLimit int64

	// walRecEncoder carries the format choice (v1 or v2) plus the encoder
	// state of the OPEN SEGMENT; rotation resets it. Checkpoint files get
	// their own encoder — their state must not leak into the segment's.
	walRecEncoder

	f        *os.File
	bw       *bufio.Writer
	segIndex int   // index of the open segment
	firstSeg int   // oldest segment still on disk
	segBytes int64 // bytes written to the open segment
	nextRef  uint64
	buf      []byte // scratch encode buffer, reused across commits

	records     atomic.Uint64 // records written since open
	checkpoints atomic.Uint64

	// metrics shares the DB's instrumentation (nil = uninstrumented); the
	// write paths branch on it once per flush/fsync.
	metrics *tsdbMetrics
}

// walRecEncoder frames records in one format: v1 raw payloads, or v2 with
// Gorilla samples and block-compressed series/tombstones. enc is the
// per-file Gorilla state (nil in v1 mode).
type walRecEncoder struct {
	compress bool
	enc      *walV2Enc
	scratch  []byte // staging buffer for payloads compressed as a block
}

func newWalRecEncoder(compress bool) walRecEncoder {
	e := walRecEncoder{compress: compress}
	if compress {
		e.enc = newWalV2Enc()
	}
	return e
}

func (e *walRecEncoder) appendSeriesRecord(dst []byte, recs []walSeriesRec) []byte {
	if !e.compress {
		return appendFramed(dst, walRecSeries, func(b []byte) []byte { return encodeSeriesPayload(b, recs) })
	}
	e.scratch = encodeSeriesPayload(e.scratch[:0], recs)
	return appendFramed(dst, walRecSeriesV2, func(b []byte) []byte { return appendCompressed(b, e.scratch) })
}

func (e *walRecEncoder) appendSamplesRecord(dst []byte, recs []walSampleRec) []byte {
	if !e.compress {
		return appendFramed(dst, walRecSamples, func(b []byte) []byte { return encodeSamplesPayload(b, recs) })
	}
	return appendFramed(dst, walRecSamplesV2, func(b []byte) []byte { return e.enc.appendSamples(b, recs) })
}

func (e *walRecEncoder) appendDeletesRecord(dst []byte, refs []uint64) []byte {
	if !e.compress {
		return appendFramed(dst, walRecDeletes, func(b []byte) []byte { return encodeDeletesPayload(b, refs) })
	}
	e.scratch = encodeDeletesPayload(e.scratch[:0], refs)
	return appendFramed(dst, walRecDeletesV2, func(b []byte) []byte { return appendCompressed(b, e.scratch) })
}

func walShardDir(walDir string, shard int) string {
	return filepath.Join(walDir, fmt.Sprintf("shard-%04d", shard))
}

func walSegName(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.wal", index))
}

// openShardWAL creates (or continues) the journal of one shard, opening a
// fresh segment with the given index. Replay always hands over a new
// segment index so a possibly-repaired tail file is never appended to.
func openShardWAL(dir string, segLimit int64, segIndex, firstSeg int, nextRef uint64, compress bool) (*shardWAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if segLimit <= 0 {
		segLimit = DefaultWALSegmentSize
	}
	w := &shardWAL{dir: dir, segLimit: segLimit, walRecEncoder: newWalRecEncoder(compress), segIndex: segIndex, firstSeg: firstSeg, nextRef: nextRef}
	if err := w.openSegmentLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *shardWAL) openSegmentLocked() error {
	f, err := os.OpenFile(walSegName(w.dir, w.segIndex), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 64*1024)
	w.segBytes = 0
	if w.compress {
		// The v2 header travels with the first flushed record; a crash
		// before then leaves an empty file or a magic prefix, both of which
		// replay as zero records. Gorilla state starts fresh with the file.
		w.bw.Write([]byte{walMagic[0], walMagic[1], walMagic[2], walMagic[3], walFormatV2})
		w.segBytes = walFileHeaderLen
		w.enc = newWalV2Enc()
	}
	return nil
}

// refForLocked returns the series' WAL ref, assigning one on first use.
// walRef is guarded by the shard WAL mutex: every writer holds it, and
// replay runs before any writer exists.
func (w *shardWAL) refForLocked(s *memSeries) (ref uint64, isNew bool) {
	if s.walRef != 0 {
		return s.walRef, false
	}
	w.nextRef++
	s.walRef = w.nextRef
	return s.walRef, true
}

// appendFramed frames one record onto dst: it reserves the header, lets enc
// append the payload in place, then backfills length and CRC — no payload
// staging buffer, no copy.
func appendFramed(dst []byte, typ byte, enc func([]byte) []byte) []byte {
	start := len(dst)
	dst = append(dst, typ, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = enc(dst)
	payload := dst[start+walHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start+1:start+5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+5:start+9], crc32.Checksum(payload, walCRC))
	return dst
}

func appendUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

func appendVarint(dst []byte, v int64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	return append(dst, buf[:n]...)
}

func encodeSeriesPayload(dst []byte, recs []walSeriesRec) []byte {
	dst = appendUvarint(dst, uint64(len(recs)))
	for _, r := range recs {
		dst = appendUvarint(dst, r.ref)
		dst = appendUvarint(dst, uint64(len(r.lset)))
		for _, l := range r.lset {
			dst = appendUvarint(dst, uint64(len(l.Name)))
			dst = append(dst, l.Name...)
			dst = appendUvarint(dst, uint64(len(l.Value)))
			dst = append(dst, l.Value...)
		}
	}
	return dst
}

func encodeSamplesPayload(dst []byte, recs []walSampleRec) []byte {
	dst = appendUvarint(dst, uint64(len(recs)))
	for _, r := range recs {
		dst = appendUvarint(dst, r.ref)
		dst = appendVarint(dst, r.t)
		var vb [8]byte
		binary.LittleEndian.PutUint64(vb[:], math.Float64bits(r.v))
		dst = append(dst, vb[:]...)
	}
	return dst
}

func encodeDeletesPayload(dst []byte, refs []uint64) []byte {
	dst = appendUvarint(dst, uint64(len(refs)))
	for _, r := range refs {
		dst = appendUvarint(dst, r)
	}
	return dst
}

// logLocked journals one commit's worth of records — new series first, then
// samples, then deletes — as one buffered write followed by one flush. The
// caller holds w.mu.
func (w *shardWAL) logLocked(series []walSeriesRec, samples []walSampleRec, deletes []uint64) error {
	if len(series) == 0 && len(samples) == 0 && len(deletes) == 0 {
		return nil
	}
	if w.f == nil {
		// A previous rotation closed the old segment but failed to open the
		// next one (e.g. transient ENOSPC); retry here instead of writing
		// through a nil writer.
		if err := w.openSegmentLocked(); err != nil {
			return err
		}
	}
	// Rotate BEFORE encoding: the v2 Gorilla encoder state is per segment,
	// so a record must be encoded against the state of the file it will
	// land in (rotation resets the state).
	if w.segBytes >= w.segLimit {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	w.buf = w.buf[:0]
	nrec := uint64(0)
	if len(series) > 0 {
		w.buf = w.appendSeriesRecord(w.buf, series)
		nrec++
	}
	if len(samples) > 0 {
		w.buf = w.appendSamplesRecord(w.buf, samples)
		nrec++
	}
	if len(deletes) > 0 {
		w.buf = w.appendDeletesRecord(w.buf, deletes)
		nrec++
	}
	var ioStart time.Time
	if w.metrics != nil {
		ioStart = time.Now()
	}
	if _, err := w.bw.Write(w.buf); err != nil {
		return fmt.Errorf("tsdb: wal append: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("tsdb: wal flush: %w", err)
	}
	if w.metrics != nil {
		w.metrics.walFlushSeconds.ObserveSince(ioStart)
		w.metrics.walFlushBytes.Add(uint64(len(w.buf)))
	}
	w.segBytes += int64(len(w.buf))
	w.records.Add(nrec)
	return nil
}

// rotateLocked closes the current segment (flushed and fsynced — a closed
// segment is durable) and opens the next one.
func (w *shardWAL) rotateLocked() error {
	if err := w.closeSegmentLocked(); err != nil {
		return err
	}
	w.segIndex++
	return w.openSegmentLocked()
}

func (w *shardWAL) closeSegmentLocked() error {
	if w.f == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	var syncStart time.Time
	if w.metrics != nil {
		syncStart = time.Now()
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if w.metrics != nil {
		w.metrics.walFsyncSeconds.ObserveSince(syncStart)
	}
	err := w.f.Close()
	w.f, w.bw = nil, nil
	return err
}

// Close flushes and fsyncs the open segment.
func (w *shardWAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closeSegmentLocked()
}

// checkpoint makes the shard's current retained state durable and bounded:
// it rotates the open segment, streams a full snapshot of the shard (series
// registrations plus every retained sample, in normal record format) to
// checkpoint.snap via tmp + fsync + rename + directory sync, and only then
// deletes all segments that predate the rotation. A crash at any point
// leaves either the old segments or the complete new snapshot on disk —
// never neither — so acknowledged writes survive any interleaving.
//
// The snapshot is written series-by-series through a buffered writer: the
// resident cost is the series pointer slice plus one series' samples, not
// the whole shard's encoded bytes.
//
// Commits to this shard block for the duration (they take w.mu); other
// shards are unaffected.
//
// tombs supplies the DB's tombstone log and is called AFTER w.mu is held:
// ApplyTombstone records a tombstone in the log before journalling it under
// w.mu, so any tombstone record living in a segment this checkpoint deletes
// is guaranteed to be in the snapshot.
func (w *shardWAL) checkpoint(sh *headShard, tombs func() []TombstoneRec) error {
	w.mu.Lock()
	defer w.mu.Unlock()

	// Rotate first: everything committed before this point lives in
	// segments [firstSeg, old], everything after goes to the new segment.
	// The snapshot below captures at least the pre-rotation state; samples
	// that race in after rotation appear in both the snapshot and the new
	// segment, and replay deduplicates them via the out-of-order skip.
	if err := w.rotateLocked(); err != nil {
		return err
	}
	oldLast := w.segIndex - 1

	final := filepath.Join(w.dir, walCheckpointFile)
	tmp := final + ".tmp"
	// w.mu excludes every writer to this shard, so the series/sample view
	// is coherent with the rotated-away segments.
	err := writeFileDurably(tmp, func(dst *bufio.Writer) error {
		return streamShardSnapshot(dst, sh, w.compress, tombs(), func(s *memSeries) uint64 {
			ref, _ := w.refForLocked(s)
			return ref
		})
	})
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	for i := w.firstSeg; i <= oldLast; i++ {
		if err := os.Remove(walSegName(w.dir, i)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	w.firstSeg = w.segIndex
	w.checkpoints.Add(1)
	return nil
}

// writeFileDurably creates path, hands a buffered writer to fill, then
// flushes and fsyncs before closing — the write-side half of the
// tmp+rename+dir-sync discipline. The file is removed on any error.
func writeFileDurably(path string, fill func(*bufio.Writer) error) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(path)
		return err
	}
	bw := bufio.NewWriterSize(f, 256*1024)
	if err := fill(bw); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	// The contents must be on stable storage before the caller's rename
	// publishes the file and before any data it replaces is unlinked.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// walSnapshotSeriesBatch is how many series registrations share one series
// record in a snapshot: large enough to amortize framing (and give the v2
// block compressor something to chew on), small enough to keep the encode
// buffer a rounding error next to the shard.
const walSnapshotSeriesBatch = 256

// streamShardSnapshot writes a full snapshot of the shard — the DB's
// tombstone log first, then every retained series registration, then one
// samples record per series — to dst in the chosen format; refFor supplies
// (or assigns) the WAL ref per series. Tombstones go first so replay
// restores the log (and deletes nothing — the snapshot's series were
// registered after every tombstone in it and must survive). Memory stays
// O(series + one series' samples): registrations are framed in batches of
// walSnapshotSeriesBatch and each series' samples are encoded into a reused
// buffer, never the whole shard at once. Callers must exclude concurrent
// WAL writers to the shard.
func streamShardSnapshot(dst io.Writer, sh *headShard, compress bool, tombs []TombstoneRec, refFor func(*memSeries) uint64) error {
	if compress {
		if _, err := dst.Write([]byte{walMagic[0], walMagic[1], walMagic[2], walMagic[3], walFormatV2}); err != nil {
			return err
		}
	}
	sh.mu.RLock()
	series := make([]*memSeries, 0, len(sh.byRef))
	for _, s := range sh.byRef {
		series = append(series, s)
	}
	sh.mu.RUnlock()

	enc := newWalRecEncoder(compress)
	var buf []byte
	for _, tr := range tombs {
		buf = enc.appendTombstoneRecord(buf[:0], tr.Seq, tr.Matchers)
		if _, err := dst.Write(buf); err != nil {
			return err
		}
	}
	srecs := make([]walSeriesRec, 0, walSnapshotSeriesBatch)
	flushSeries := func() error {
		if len(srecs) == 0 {
			return nil
		}
		buf = enc.appendSeriesRecord(buf[:0], srecs)
		srecs = srecs[:0]
		_, err := dst.Write(buf)
		return err
	}
	for _, s := range series {
		srecs = append(srecs, walSeriesRec{ref: refFor(s), lset: s.lset})
		if len(srecs) == walSnapshotSeriesBatch {
			if err := flushSeries(); err != nil {
				return err
			}
		}
	}
	if err := flushSeries(); err != nil {
		return err
	}
	// One samples record per series keeps record payloads (and the encode
	// buffer) proportional to a single series, not the whole shard.
	var recs []walSampleRec
	for _, s := range series {
		samples := s.samplesBetween(-(int64(1) << 62), int64(1)<<62)
		if len(samples) == 0 {
			continue
		}
		recs = recs[:0]
		for _, smp := range samples {
			recs = append(recs, walSampleRec{ref: s.walRef, t: smp.T, v: smp.V})
		}
		buf = enc.appendSamplesRecord(buf[:0], recs)
		if _, err := dst.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// syncDir fsyncs a directory so renames and unlinks inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WALStats is the live summary of the head's journals.
type WALStats struct {
	// Replay describes the recovery performed by Open; zero-valued when the
	// WAL directory was empty.
	Replay WALReplayStats
	// Records and Checkpoints count writer activity since Open.
	Records     uint64
	Checkpoints uint64
}

// WALStats reports WAL activity; ok is false when the head runs without a
// WAL.
func (db *DB) WALStats() (WALStats, bool) {
	if db.opts.WALDir == "" {
		return WALStats{}, false
	}
	st := WALStats{Replay: db.walReplay}
	for _, sh := range db.shards {
		if sh.wal != nil {
			st.Records += sh.wal.records.Load()
			st.Checkpoints += sh.wal.checkpoints.Load()
		}
	}
	return st, true
}

// WALErr returns the first WAL write or checkpoint error recorded on a path
// that cannot surface one directly (Truncate, DeleteSeries). A healthy head
// returns nil.
func (db *DB) WALErr() error {
	db.walErrMu.Lock()
	defer db.walErrMu.Unlock()
	return db.walErr
}

func (db *DB) noteWALErr(err error) {
	if err == nil {
		return
	}
	db.walErrMu.Lock()
	if db.walErr == nil {
		db.walErr = err
	}
	db.walErrMu.Unlock()
}

// Close flushes and fsyncs every shard WAL. Memory-only heads are a no-op.
func (db *DB) Close() error {
	var firstErr error
	for _, sh := range db.shards {
		if sh.wal == nil {
			continue
		}
		if err := sh.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
