package tsdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/labels"
)

// Per-shard write-ahead log.
//
// Each head shard journals its own appends to an independent segmented WAL
// under <WALDir>/shard-<i>/, mirroring how the shard owns its series map and
// postings: the hot path takes the shard's WAL mutex and nothing else, so
// durability adds no cross-shard locks. A batch Appender commit produces one
// buffered write + flush per shard per scrape.
//
// On-disk format (all integers little-endian unless varint):
//
//	record  := type(1) | payloadLen(uint32) | crc32c(payload)(uint32) | payload
//	series  := count uvarint, then per series:
//	           ref uvarint, nLabels uvarint, {len uvarint + name bytes,
//	           len uvarint + value bytes} per label
//	samples := count uvarint, then per sample:
//	           ref uvarint, t varint, value float64 bits (8 bytes)
//	deletes := count uvarint, then ref uvarint per deleted series
//
// Segments are numbered 00000001.wal, 00000002.wal, ... and rotate at
// Options.WALSegmentSize. A checkpoint (run per shard by Truncate) writes
// checkpoint.snap — a full snapshot of the shard's retained series and
// samples in the same record format — fsyncs it into place, and then drops
// every segment that predates it, so the WAL stays bounded by head size.
//
// Replay (walreplay.go) tolerates a torn final record per file: the file is
// truncated back to the last whole record and recovery continues, exactly
// like Prometheus's WAL repair.

const (
	walRecSeries  byte = 1
	walRecSamples byte = 2
	walRecDeletes byte = 3

	// walHeaderSize is type + payload length + payload CRC.
	walHeaderSize = 1 + 4 + 4

	// walMaxPayload is the decoder's sanity bound on a record payload; a
	// longer length is treated as corruption, not an allocation request.
	walMaxPayload = 1 << 30

	walMetaFile       = "wal-meta.json"
	walCheckpointFile = "checkpoint.snap"

	// DefaultWALSegmentSize rotates segments at 4 MiB, small enough that
	// checkpoints delete files promptly and large enough to amortize file
	// creation.
	DefaultWALSegmentSize = 4 << 20
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// walSeriesRec is one series registration: a shard-local WAL ref bound to a
// label set. Samples reference the ref, never the labels.
type walSeriesRec struct {
	ref  uint64
	lset labels.Labels
}

// walSampleRec is one journalled sample.
type walSampleRec struct {
	ref uint64
	t   int64
	v   float64
}

// shardWAL is the journal of one head shard. Its mutex serializes every
// append to the shard's memory AND the matching WAL write, so the log order
// per series always matches the in-memory apply order — replay cannot be
// tricked into out-of-order skips by concurrent writers.
type shardWAL struct {
	mu       sync.Mutex
	dir      string
	segLimit int64

	f        *os.File
	bw       *bufio.Writer
	segIndex int   // index of the open segment
	firstSeg int   // oldest segment still on disk
	segBytes int64 // bytes written to the open segment
	nextRef  uint64
	buf      []byte // scratch encode buffer, reused across commits

	records     atomic.Uint64 // records written since open
	checkpoints atomic.Uint64
}

func walShardDir(walDir string, shard int) string {
	return filepath.Join(walDir, fmt.Sprintf("shard-%04d", shard))
}

func walSegName(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.wal", index))
}

// openShardWAL creates (or continues) the journal of one shard, opening a
// fresh segment with the given index. Replay always hands over a new
// segment index so a possibly-repaired tail file is never appended to.
func openShardWAL(dir string, segLimit int64, segIndex, firstSeg int, nextRef uint64) (*shardWAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if segLimit <= 0 {
		segLimit = DefaultWALSegmentSize
	}
	w := &shardWAL{dir: dir, segLimit: segLimit, segIndex: segIndex, firstSeg: firstSeg, nextRef: nextRef}
	if err := w.openSegmentLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *shardWAL) openSegmentLocked() error {
	f, err := os.OpenFile(walSegName(w.dir, w.segIndex), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 64*1024)
	w.segBytes = 0
	return nil
}

// refForLocked returns the series' WAL ref, assigning one on first use.
// walRef is guarded by the shard WAL mutex: every writer holds it, and
// replay runs before any writer exists.
func (w *shardWAL) refForLocked(s *memSeries) (ref uint64, isNew bool) {
	if s.walRef != 0 {
		return s.walRef, false
	}
	w.nextRef++
	s.walRef = w.nextRef
	return s.walRef, true
}

// appendFramed frames one record onto dst: it reserves the header, lets enc
// append the payload in place, then backfills length and CRC — no payload
// staging buffer, no copy.
func appendFramed(dst []byte, typ byte, enc func([]byte) []byte) []byte {
	start := len(dst)
	dst = append(dst, typ, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = enc(dst)
	payload := dst[start+walHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start+1:start+5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+5:start+9], crc32.Checksum(payload, walCRC))
	return dst
}

func appendUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

func appendVarint(dst []byte, v int64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	return append(dst, buf[:n]...)
}

func encodeSeriesPayload(dst []byte, recs []walSeriesRec) []byte {
	dst = appendUvarint(dst, uint64(len(recs)))
	for _, r := range recs {
		dst = appendUvarint(dst, r.ref)
		dst = appendUvarint(dst, uint64(len(r.lset)))
		for _, l := range r.lset {
			dst = appendUvarint(dst, uint64(len(l.Name)))
			dst = append(dst, l.Name...)
			dst = appendUvarint(dst, uint64(len(l.Value)))
			dst = append(dst, l.Value...)
		}
	}
	return dst
}

func encodeSamplesPayload(dst []byte, recs []walSampleRec) []byte {
	dst = appendUvarint(dst, uint64(len(recs)))
	for _, r := range recs {
		dst = appendUvarint(dst, r.ref)
		dst = appendVarint(dst, r.t)
		var vb [8]byte
		binary.LittleEndian.PutUint64(vb[:], math.Float64bits(r.v))
		dst = append(dst, vb[:]...)
	}
	return dst
}

func encodeDeletesPayload(dst []byte, refs []uint64) []byte {
	dst = appendUvarint(dst, uint64(len(refs)))
	for _, r := range refs {
		dst = appendUvarint(dst, r)
	}
	return dst
}

// logLocked journals one commit's worth of records — new series first, then
// samples, then deletes — as one buffered write followed by one flush. The
// caller holds w.mu.
func (w *shardWAL) logLocked(series []walSeriesRec, samples []walSampleRec, deletes []uint64) error {
	w.buf = w.buf[:0]
	nrec := uint64(0)
	if len(series) > 0 {
		w.buf = appendFramed(w.buf, walRecSeries, func(b []byte) []byte { return encodeSeriesPayload(b, series) })
		nrec++
	}
	if len(samples) > 0 {
		w.buf = appendFramed(w.buf, walRecSamples, func(b []byte) []byte { return encodeSamplesPayload(b, samples) })
		nrec++
	}
	if len(deletes) > 0 {
		w.buf = appendFramed(w.buf, walRecDeletes, func(b []byte) []byte { return encodeDeletesPayload(b, deletes) })
		nrec++
	}
	if len(w.buf) == 0 {
		return nil
	}
	if w.f == nil {
		// A previous rotation closed the old segment but failed to open the
		// next one (e.g. transient ENOSPC); retry here instead of writing
		// through a nil writer.
		if err := w.openSegmentLocked(); err != nil {
			return err
		}
	}
	if w.segBytes >= w.segLimit {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := w.bw.Write(w.buf); err != nil {
		return fmt.Errorf("tsdb: wal append: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("tsdb: wal flush: %w", err)
	}
	w.segBytes += int64(len(w.buf))
	w.records.Add(nrec)
	return nil
}

// rotateLocked closes the current segment (flushed and fsynced — a closed
// segment is durable) and opens the next one.
func (w *shardWAL) rotateLocked() error {
	if err := w.closeSegmentLocked(); err != nil {
		return err
	}
	w.segIndex++
	return w.openSegmentLocked()
}

func (w *shardWAL) closeSegmentLocked() error {
	if w.f == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	err := w.f.Close()
	w.f, w.bw = nil, nil
	return err
}

// Close flushes and fsyncs the open segment.
func (w *shardWAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closeSegmentLocked()
}

// checkpoint makes the shard's current retained state durable and bounded:
// it rotates the open segment, writes a full snapshot of the shard (series
// registrations plus every retained sample, in normal record format) to
// checkpoint.snap via tmp + fsync + rename + directory sync, and only then
// deletes all segments that predate the rotation. A crash at any point
// leaves either the old segments or the complete new snapshot on disk —
// never neither — so acknowledged writes survive any interleaving.
//
// Commits to this shard block for the duration (they take w.mu); other
// shards are unaffected.
func (w *shardWAL) checkpoint(sh *headShard) error {
	w.mu.Lock()
	defer w.mu.Unlock()

	// Rotate first: everything committed before this point lives in
	// segments [firstSeg, old], everything after goes to the new segment.
	// The snapshot below captures at least the pre-rotation state; samples
	// that race in after rotation appear in both the snapshot and the new
	// segment, and replay deduplicates them via the out-of-order skip.
	if err := w.rotateLocked(); err != nil {
		return err
	}
	oldLast := w.segIndex - 1

	snap, err := w.encodeSnapshotLocked(sh)
	if err != nil {
		return err
	}
	final := filepath.Join(w.dir, walCheckpointFile)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// The snapshot must be on stable storage before the rename publishes it
	// and before any segment it replaces is unlinked.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	for i := w.firstSeg; i <= oldLast; i++ {
		if err := os.Remove(walSegName(w.dir, i)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	w.firstSeg = w.segIndex
	w.checkpoints.Add(1)
	return nil
}

// encodeSnapshotLocked serializes the shard's full retained state. The
// caller holds w.mu, which excludes every writer to this shard, so the
// series/sample view is coherent with the rotated-away segments.
func (w *shardWAL) encodeSnapshotLocked(sh *headShard) ([]byte, error) {
	return encodeShardSnapshot(sh, func(s *memSeries) uint64 {
		ref, _ := w.refForLocked(s)
		return ref
	}), nil
}

// encodeShardSnapshot serializes every series and retained sample of a
// shard in normal record format; refFor supplies (or assigns) the WAL ref
// per series. Callers must exclude concurrent WAL writers to the shard.
func encodeShardSnapshot(sh *headShard, refFor func(*memSeries) uint64) []byte {
	sh.mu.RLock()
	series := make([]*memSeries, 0, len(sh.byRef))
	for _, s := range sh.byRef {
		series = append(series, s)
	}
	sh.mu.RUnlock()

	var out []byte
	srecs := make([]walSeriesRec, 0, len(series))
	for _, s := range series {
		srecs = append(srecs, walSeriesRec{ref: refFor(s), lset: s.lset})
	}
	if len(srecs) > 0 {
		out = appendFramed(out, walRecSeries, func(b []byte) []byte { return encodeSeriesPayload(b, srecs) })
	}
	// One samples record per series keeps record payloads proportional to a
	// single series, not the whole shard.
	for _, s := range series {
		samples := s.samplesBetween(-(int64(1) << 62), int64(1)<<62)
		if len(samples) == 0 {
			continue
		}
		recs := make([]walSampleRec, len(samples))
		for i, smp := range samples {
			recs[i] = walSampleRec{ref: s.walRef, t: smp.T, v: smp.V}
		}
		out = appendFramed(out, walRecSamples, func(b []byte) []byte { return encodeSamplesPayload(b, recs) })
	}
	return out
}

// syncDir fsyncs a directory so renames and unlinks inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WALStats is the live summary of the head's journals.
type WALStats struct {
	// Replay describes the recovery performed by Open; zero-valued when the
	// WAL directory was empty.
	Replay WALReplayStats
	// Records and Checkpoints count writer activity since Open.
	Records     uint64
	Checkpoints uint64
}

// WALStats reports WAL activity; ok is false when the head runs without a
// WAL.
func (db *DB) WALStats() (WALStats, bool) {
	if db.opts.WALDir == "" {
		return WALStats{}, false
	}
	st := WALStats{Replay: db.walReplay}
	for _, sh := range db.shards {
		if sh.wal != nil {
			st.Records += sh.wal.records.Load()
			st.Checkpoints += sh.wal.checkpoints.Load()
		}
	}
	return st, true
}

// WALErr returns the first WAL write or checkpoint error recorded on a path
// that cannot surface one directly (Truncate, DeleteSeries). A healthy head
// returns nil.
func (db *DB) WALErr() error {
	db.walErrMu.Lock()
	defer db.walErrMu.Unlock()
	return db.walErr
}

func (db *DB) noteWALErr(err error) {
	if err == nil {
		return
	}
	db.walErrMu.Lock()
	if db.walErr == nil {
		db.walErr = err
	}
	db.walErrMu.Unlock()
}

// Close flushes and fsyncs every shard WAL. Memory-only heads are a no-op.
func (db *DB) Close() error {
	var firstErr error
	for _, sh := range db.shards {
		if sh.wal == nil {
			continue
		}
		if err := sh.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
