package tsdb

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/workpool"
)

// replaySeries builds a deterministic workload: nSeries series, nSamples
// samples each, appended through the batch Appender in scrape-shaped
// commits.
func replayFill(t *testing.T, db *DB, nSeries, nSamples int) {
	t.Helper()
	for i := 0; i < nSamples; i++ {
		app := db.Appender()
		for s := 0; s < nSeries; s++ {
			app.Add(labels.FromStrings(labels.MetricName, "wal_replay_metric",
				"node", fmt.Sprintf("n%03d", s)), int64(i)*15000, float64(i*s)+0.5)
		}
		if _, err := app.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALReplayShardCountEquivalence: a 1-shard WAL round-trip and a
// 16-shard WAL round-trip over identical input must produce identical
// Select results — and both must equal the pre-restart head. This is the
// WAL companion of the PR-1 shard-equivalence tests: durability, like
// querying, must be invisible to shard layout. The matrix runs with
// compression off AND on: the format, like the layout, must be invisible —
// all four recoveries are required to be byte-equivalent.
func TestWALReplayShardCountEquivalence(t *testing.T) {
	base := t.TempDir()
	type variant struct {
		shards   int
		compress bool
	}
	var variants []variant
	for _, shards := range []int{1, 16} {
		for _, compress := range []bool{false, true} {
			variants = append(variants, variant{shards: shards, compress: compress})
		}
	}
	var results [][]model.Series
	for _, vr := range variants {
		walDir := filepath.Join(base, fmt.Sprintf("wal-%d-%v", vr.shards, vr.compress))
		opts := Options{Shards: vr.shards, WALDir: walDir, WALSegmentSize: 4096, WALCompression: vr.compress}
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		replayFill(t, db, 40, 25)
		live := selectAll(t, db)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		recovered := selectAll(t, re)
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		assertSeriesEqual(t, recovered, live, fmt.Sprintf("%d-shard compress=%v WAL round-trip", vr.shards, vr.compress))
		results = append(results, recovered)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("WAL replay of variant %+v is not byte-equivalent to %+v", variants[i], variants[0])
		}
	}
}

// TestWALReplayParallelism: replay of a 16-shard WAL must fan out on the
// shared workpool — the same counting assertion style the range evaluator
// uses with its counting Queryable, applied to pool task dispatch.
func TestWALReplayParallelism(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	db, err := Open(Options{Shards: 16, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	replayFill(t, db, 64, 10) // 64 series spread over all 16 shards
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	before := workpool.Tasks()
	re, err := Open(Options{Shards: 16, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if delta := workpool.Tasks() - before; delta < 16 {
		t.Fatalf("replay dispatched %d pool tasks, want >= 16 (one per shard WAL)", delta)
	}
	ws, ok := re.WALStats()
	if !ok {
		t.Fatal("WAL-backed head reports no WAL stats")
	}
	r := ws.Replay
	if r.Shards != 16 || r.Samples != 64*10 || r.Series != 64 || r.TornRepairs != 0 {
		t.Fatalf("replay stats off: %+v", r)
	}
	if r.Duration <= 0 {
		t.Fatal("replay duration not measured")
	}
}

// TestWALShardCountChangeRebuild: reopening a WAL with a different shard
// count re-routes every series to the new layout and rewrites the journal
// so each shard's WAL is self-contained again.
func TestWALShardCountChangeRebuild(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	db, err := Open(Options{Shards: 8, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	replayFill(t, db, 30, 12)
	live := selectAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Shards: 2, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	assertSeriesEqual(t, selectAll(t, re), live, "8->2 shard reopen")
	ws, _ := re.WALStats()
	if !ws.Replay.Rebuilt {
		t.Fatal("shard-count change did not rebuild the WAL")
	}
	// The old layout must be gone: exactly 2 shard dirs remain.
	dirs, err := filepath.Glob(filepath.Join(walDir, "shard-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 {
		t.Fatalf("rebuild left %d shard dirs, want 2", len(dirs))
	}
	// Appends keep working in the new layout, durably.
	if err := re.Append(labels.FromStrings(labels.MetricName, "wal_after_reshard"), 1<<50, 7); err != nil {
		t.Fatal(err)
	}
	after := selectAll(t, re)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(Options{Shards: 2, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	assertSeriesEqual(t, selectAll(t, re2), after, "reopen after reshard+append")
}

// TestWALConcurrentCommitsReplayExact: many goroutines with their own batch
// Appenders race into the same WAL-backed head, including deliberate
// same-series contention (out-of-order losers are skipped). Whatever state
// the live head ends up with, a reopen must reproduce it exactly — the
// shard WAL mutex spans apply+journal precisely so log order can never
// diverge from apply order under concurrency.
func TestWALConcurrentCommitsReplayExact(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	db, err := Open(Options{Shards: 8, WALDir: walDir, WALSegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	var wg sync.WaitGroup
	for wkr := 0; wkr < writers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			app := db.Appender()
			for i := 0; i < 50; i++ {
				// Private series: always in-order.
				app.Add(labels.FromStrings(labels.MetricName, "wal_conc_private",
					"writer", fmt.Sprintf("w%d", wkr)), int64(i)*100, float64(i))
				// Contended series: all writers race on the same timestamps,
				// so most appends lose as out-of-order — by design.
				app.Add(labels.FromStrings(labels.MetricName, "wal_conc_shared"),
					int64(i)*100+int64(wkr), float64(wkr))
				if _, err := app.Commit(); err != nil {
					t.Errorf("writer %d: %v", wkr, err)
					return
				}
			}
		}(wkr)
	}
	wg.Wait()
	live := selectAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Shards: 8, WALDir: walDir, WALSegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertSeriesEqual(t, selectAll(t, re), live, "concurrent-writer round-trip")
}

// TestWALStatsInStats: the head's Stats() surfaces the WAL summary so the
// sims and dashboards can report durability health alongside series counts.
func TestWALStatsInStats(t *testing.T) {
	memOnly := MustOpen(Options{Shards: 2})
	if st := memOnly.Stats(); st.WAL != nil {
		t.Fatal("memory-only head reports WAL stats")
	}
	walDir := filepath.Join(t.TempDir(), "wal")
	db, err := Open(Options{Shards: 2, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Append(labels.FromStrings(labels.MetricName, "m"), 1, 1); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.WAL == nil || st.WAL.Records == 0 {
		t.Fatalf("WAL-backed head's Stats misses WAL activity: %+v", st.WAL)
	}
}
