package tsdb

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/labels"
	"repro/internal/model"
)

// staleNaN is the Prometheus staleness marker bit pattern: a NaN payload the
// scrape pipeline appends when a target disappears. The codec must round-trip
// it bit-exactly — value semantics (NaN != NaN) cannot be used for floats in
// a journal.
const staleNaN = 0x7ff0000000000002

// ---------------------------------------------------------------------------
// Codec property test
// ---------------------------------------------------------------------------

// TestWALGorillaCodecLosslessProperty drives the v2 samples codec with
// randomized streams shaped like everything the head can journal: steady
// scrape cadences, jittered and irregular timestamps, gauges (random walks),
// counters with resets, constants, NaN/staleness markers, infinities and
// denormals — interleaved across series in random order (per-series order
// preserved, as the WAL mutex guarantees) and split into random record
// boundaries. Decoding with a fresh walV2Dec must reproduce every (ref, t,
// value-bits) triple exactly.
func TestWALGorillaCodecLosslessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x60411A))
	rounds := 50
	if testing.Short() {
		rounds = 10
	}
	for round := 0; round < rounds; round++ {
		nSeries := 1 + rng.Intn(8)
		type seriesGen struct {
			ref     uint64
			t       int64
			tDelta  func() int64
			v       float64
			nextV   func(prev float64) float64
			pending int
		}
		gens := make([]*seriesGen, nSeries)
		usedRefs := map[uint64]bool{}
		for i := range gens {
			// Sparse, non-contiguous refs exercise the zigzag ref deltas.
			ref := uint64(1 + rng.Intn(1000))
			for usedRefs[ref] {
				ref++
			}
			usedRefs[ref] = true
			g := &seriesGen{
				ref:     ref,
				t:       int64(rng.Intn(1_000_000)) - 500_000,
				pending: 1 + rng.Intn(200),
			}
			switch rng.Intn(3) {
			case 0: // steady scrape cadence
				g.tDelta = func() int64 { return 15_000 }
			case 1: // jittered cadence
				g.tDelta = func() int64 { return 14_000 + rng.Int63n(2000) }
			default: // irregular, with occasional huge gaps
				g.tDelta = func() int64 {
					if rng.Intn(10) == 0 {
						return rng.Int63n(1 << 40)
					}
					return 1 + rng.Int63n(60_000)
				}
			}
			switch rng.Intn(4) {
			case 0: // gauge: random walk
				g.v = rng.Float64() * 100
				g.nextV = func(prev float64) float64 { return prev + rng.NormFloat64() }
			case 1: // counter with resets
				g.v = 0
				g.nextV = func(prev float64) float64 {
					if rng.Intn(20) == 0 {
						return 0 // counter reset
					}
					return prev + float64(rng.Intn(1000))
				}
			case 2: // constant (dod=0, XOR=0 fast paths)
				g.v = 42.5
				g.nextV = func(prev float64) float64 { return prev }
			default: // adversarial bit patterns
				g.v = math.Float64frombits(staleNaN)
				g.nextV = func(prev float64) float64 {
					switch rng.Intn(6) {
					case 0:
						return math.Float64frombits(staleNaN)
					case 1:
						return math.NaN()
					case 2:
						return math.Inf(1)
					case 3:
						return math.Inf(-1)
					case 4:
						return math.Float64frombits(uint64(rng.Int63())) // arbitrary bits
					default:
						return math.Float64frombits(1) // smallest denormal
					}
				}
			}
			gens[i] = g
		}

		// Interleave the series into a single stream of records with random
		// boundaries, preserving per-series timestamp order.
		var stream []walSampleRec
		for {
			live := gens[:0:0]
			for _, g := range gens {
				if g.pending > 0 {
					live = append(live, g)
				}
			}
			if len(live) == 0 {
				break
			}
			g := live[rng.Intn(len(live))]
			stream = append(stream, walSampleRec{ref: g.ref, t: g.t, v: g.v})
			g.t += g.tDelta()
			g.v = g.nextV(g.v)
			g.pending--
		}

		enc := newWalV2Enc()
		dec := newWalV2Dec()
		var decoded []walSampleRec
		for off := 0; off < len(stream); {
			n := 1 + rng.Intn(50)
			if off+n > len(stream) {
				n = len(stream) - off
			}
			payload := enc.appendSamples(nil, stream[off:off+n])
			var err error
			decoded, err = dec.decodeSamples(decoded, payload)
			if err != nil {
				t.Fatalf("round %d: decode failed at offset %d: %v", round, off, err)
			}
			off += n
		}
		if len(decoded) != len(stream) {
			t.Fatalf("round %d: decoded %d samples, want %d", round, len(decoded), len(stream))
		}
		for i := range stream {
			want, got := stream[i], decoded[i]
			if got.ref != want.ref || got.t != want.t || math.Float64bits(got.v) != math.Float64bits(want.v) {
				t.Fatalf("round %d: sample %d diverged: got (ref=%d t=%d v=%x) want (ref=%d t=%d v=%x)",
					round, i, got.ref, got.t, math.Float64bits(got.v),
					want.ref, want.t, math.Float64bits(want.v))
			}
		}
	}
}

// TestWALCompressedPayloadRoundTrip covers the block codec used for series
// and tombstone records, including the incompressible-payload raw fallback.
func TestWALCompressedPayloadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := [][]byte{
		{},
		[]byte("a"),
		bytes.Repeat([]byte("label_name=label_value;"), 200), // highly compressible
	}
	random := make([]byte, 1024) // incompressible: flate would grow it
	rng.Read(random)
	cases = append(cases, random)
	for i, raw := range cases {
		payload := appendCompressed(nil, raw)
		got, err := walDecompress(payload)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, raw) {
			t.Fatalf("case %d: round trip diverged: %d bytes vs %d", i, len(got), len(raw))
		}
	}
	if _, err := walDecompress(nil); err == nil {
		t.Fatal("empty compressed payload must error")
	}
	if _, err := walDecompress([]byte{9, 1, 2}); err == nil {
		t.Fatal("unknown compression flag must error")
	}
}

// TestWALSniffVersion pins the header detection contract: v1 files (no
// magic) and empty files sniff as v1, magic prefixes are torn, unknown
// versions are errors (never silent truncation).
func TestWALSniffVersion(t *testing.T) {
	cases := []struct {
		name    string
		data    []byte
		version int
		hdrLen  int
		torn    bool
		wantErr bool
	}{
		{name: "empty", data: nil, version: walFormatV1},
		{name: "v1-record-start", data: []byte{walRecSeries, 0, 0, 0, 0}, version: walFormatV1},
		{name: "magic-prefix-1", data: []byte{'C'}, version: walFormatV2, torn: true},
		{name: "magic-prefix-3", data: []byte("CWA"), version: walFormatV2, torn: true},
		{name: "magic-no-version", data: []byte("CWAL"), version: walFormatV2, torn: true},
		{name: "v2", data: []byte{'C', 'W', 'A', 'L', 2, 1, 2, 3}, version: walFormatV2, hdrLen: walFileHeaderLen},
		{name: "future-version", data: []byte{'C', 'W', 'A', 'L', 3}, wantErr: true},
		{name: "not-magic", data: []byte("CWAX"), version: walFormatV1},
	}
	for _, tc := range cases {
		version, hdrLen, torn, err := walSniffVersion(tc.data)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: want error, got version=%d", tc.name, version)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if version != tc.version || hdrLen != tc.hdrLen || torn != tc.torn {
			t.Errorf("%s: got (version=%d hdrLen=%d torn=%v), want (%d %d %v)",
				tc.name, version, hdrLen, torn, tc.version, tc.hdrLen, tc.torn)
		}
	}
}

// ---------------------------------------------------------------------------
// Mixed-version directories and migration
// ---------------------------------------------------------------------------

// walPhaseFill appends a deterministic scrape-shaped phase of batches to the
// head; phase offsets keep timestamps strictly increasing across phases.
func walPhaseFill(t *testing.T, db *DB, phase, nSeries, nBatches int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(phase)))
	for b := 0; b < nBatches; b++ {
		app := db.Appender()
		ts := int64(phase)*1_000_000 + int64(b)*15_000
		for s := 0; s < nSeries; s++ {
			app.Add(crashSeries(s), ts+int64(s), 100+rng.NormFloat64()*5)
		}
		if _, err := app.Commit(); err != nil {
			t.Fatalf("phase %d commit %d: %v", phase, b, err)
		}
	}
}

// TestWALMixedVersionReplay builds a directory holding all three durability
// artifacts the format transition can produce — a v1 checkpoint, v1
// segments, and v2 segments — and requires replay to reconstruct exactly
// the head an all-v1 (and an all-v2) run of the same appends produces.
func TestWALMixedVersionReplay(t *testing.T) {
	base := t.TempDir()
	const nSeries, nBatches = 24, 40

	// Mixed: phase 0 (v1) → checkpoint (v1) → phase 1 (v1) → reopen with
	// compression → phase 2 (v2 segments appended to the same directory).
	mixedDir := filepath.Join(base, "mixed")
	db, err := Open(Options{Shards: 4, WALDir: mixedDir, WALSegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	walPhaseFill(t, db, 0, nSeries, nBatches)
	if err := db.CheckpointWAL(); err != nil {
		t.Fatal(err)
	}
	walPhaseFill(t, db, 1, nSeries, nBatches)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(Options{Shards: 4, WALDir: mixedDir, WALSegmentSize: 4096, WALCompression: true})
	if err != nil {
		t.Fatalf("reopen with compression over v1 journal: %v", err)
	}
	walPhaseFill(t, db, 2, nSeries, nBatches)
	live := selectAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The directory must actually be mixed, or the test proves nothing.
	v1Files, v2Files := 0, 0
	files, err := filepath.Glob(filepath.Join(mixedDir, "shard-*", "*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			continue
		}
		if len(data) >= 4 && string(data[:4]) == "CWAL" {
			v2Files++
		} else {
			v1Files++
		}
	}
	if v1Files == 0 || v2Files == 0 {
		t.Fatalf("directory is not mixed: %d v1 files, %d v2 files", v1Files, v2Files)
	}

	// Oracles: the identical appends through all-v1 and all-v2 journals.
	for _, compress := range []bool{false, true} {
		dir := filepath.Join(base, fmt.Sprintf("pure-%v", compress))
		ref, err := Open(Options{Shards: 4, WALDir: dir, WALSegmentSize: 4096, WALCompression: compress})
		if err != nil {
			t.Fatal(err)
		}
		for phase := 0; phase < 3; phase++ {
			walPhaseFill(t, ref, phase, nSeries, nBatches)
		}
		if phase0 := selectAll(t, ref); !seriesEqual(phase0, live) {
			t.Fatalf("test harness: pure compress=%v live head diverges from mixed live head", compress)
		}
		if err := ref.Close(); err != nil {
			t.Fatal(err)
		}
		reRef, err := Open(Options{Shards: 4, WALDir: dir, WALSegmentSize: 4096, WALCompression: compress})
		if err != nil {
			t.Fatal(err)
		}
		pure := selectAll(t, reRef)
		if err := reRef.Close(); err != nil {
			t.Fatal(err)
		}
		assertSeriesEqual(t, pure, live, fmt.Sprintf("pure compress=%v replay", compress))
	}

	// Replay the mixed directory (with either compression setting).
	for _, compress := range []bool{false, true} {
		re, err := Open(Options{Shards: 4, WALDir: mixedDir, WALSegmentSize: 4096, WALCompression: compress})
		if err != nil {
			t.Fatalf("mixed replay (compress=%v): %v", compress, err)
		}
		assertSeriesEqual(t, selectAll(t, re), live, fmt.Sprintf("mixed v1/v2 replay compress=%v", compress))
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func seriesEqual(a, b []model.Series) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Labels.Equal(b[i].Labels) || len(a[i].Samples) != len(b[i].Samples) {
			return false
		}
		for j := range a[i].Samples {
			if a[i].Samples[j].T != b[i].Samples[j].T ||
				math.Float64bits(a[i].Samples[j].V) != math.Float64bits(b[i].Samples[j].V) {
				return false
			}
		}
	}
	return true
}

// TestWALCompressionMigratesAtRotation pins the migration story: enabling
// compression on an existing v1 journal rewrites nothing — old segments
// stay v1 — and every NEW file (segments from the reopen on, the next
// checkpoint) is v2. Disabling it migrates back the same way.
func TestWALCompressionMigratesAtRotation(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	db, err := Open(Options{Shards: 1, WALDir: walDir, WALSegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	walPhaseFill(t, db, 0, 16, 30)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(walDir, "shard-0000")
	v1Segs, err := filepath.Glob(filepath.Join(shardDir, "*.wal"))
	if err != nil || len(v1Segs) < 2 {
		t.Fatalf("want several v1 segments, got %d (%v)", len(v1Segs), err)
	}
	isV2 := func(path string) bool {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return len(data) >= 4 && string(data[:4]) == "CWAL"
	}

	db, err = Open(Options{Shards: 1, WALDir: walDir, WALSegmentSize: 2048, WALCompression: true})
	if err != nil {
		t.Fatal(err)
	}
	walPhaseFill(t, db, 1, 16, 30)
	// Old segments untouched (still v1), new ones v2.
	for _, seg := range v1Segs {
		if isV2(seg) {
			t.Fatalf("pre-existing segment %s was rewritten to v2", seg)
		}
	}
	allSegs, _ := filepath.Glob(filepath.Join(shardDir, "*.wal"))
	newV2 := 0
	for _, seg := range allSegs {
		if isV2(seg) {
			newV2++
		}
	}
	if newV2 == 0 {
		t.Fatal("no v2 segments after reopening with compression")
	}
	// A checkpoint converts the whole retained journal to v2.
	if err := db.CheckpointWAL(); err != nil {
		t.Fatal(err)
	}
	if !isV2(filepath.Join(shardDir, walCheckpointFile)) {
		t.Fatal("checkpoint written without the v2 header despite compression on")
	}
	live := selectAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// And back: disabling compression writes v1 files after a v2 history.
	db, err = Open(Options{Shards: 1, WALDir: walDir, WALSegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	assertSeriesEqual(t, selectAll(t, db), live, "replay after v2 checkpoint")
	walPhaseFill(t, db, 2, 16, 30)
	live = selectAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Shards: 1, WALDir: walDir, WALSegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertSeriesEqual(t, selectAll(t, re), live, "replay after toggling compression off")
}

// ---------------------------------------------------------------------------
// Compression ratio
// ---------------------------------------------------------------------------

// walDirJournalBytes sums the sizes of every WAL file under dir; shared by
// the compression-ratio gate and the append benchmark's bytes/sample
// metric so "journal footprint" can never mean two different things.
func walDirJournalBytes(tb testing.TB, dir string) int64 {
	tb.Helper()
	var total int64
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		tb.Fatal(err)
	}
	return total
}

// TestWALCompressionRatio holds the headline claim to account in-tree: on a
// scrape-shaped workload (steady cadence, CEEMS-like values: energy/CPU
// counters ticking by integer amounts, utilization gauges that mostly hold
// between 15s scrapes, small-integer occupancy gauges — the traffic the
// paper's stack journals all day) v2 must shrink journal bytes by at least
// 3x vs v1. Full-entropy mantissas (pure random walks) compress less; see
// the README's guidance on when to keep v1.
func TestWALCompressionRatio(t *testing.T) {
	base := t.TempDir()
	const nSeries, nBatches = 100, 200
	fill := func(db *DB) {
		rng := rand.New(rand.NewSource(0xBEEF))
		vals := make([]float64, nSeries)
		for i := range vals {
			vals[i] = float64(rng.Intn(1_000_000))
		}
		for b := 0; b < nBatches; b++ {
			app := db.Appender()
			ts := int64(b) * 15_000
			for s := 0; s < nSeries; s++ {
				switch s % 3 {
				case 0: // counter (energy joules, CPU seconds): integer ticks
					vals[s] += float64(10 + rng.Intn(500))
				case 1: // gauge that holds most scrapes (utilization plateaus)
					if rng.Intn(5) == 0 {
						vals[s] = float64(rng.Intn(100))
					}
				default: // small-integer gauge (jobs, pages, processes)
					vals[s] = float64(rng.Intn(64))
				}
				app.Add(crashSeries(s), ts, vals[s])
			}
			if _, err := app.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	sizes := map[bool]int64{}
	for _, compress := range []bool{false, true} {
		dir := filepath.Join(base, fmt.Sprintf("wal-%v", compress))
		db, err := Open(Options{Shards: 4, WALDir: dir, WALCompression: compress})
		if err != nil {
			t.Fatal(err)
		}
		fill(db)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		sizes[compress] = walDirJournalBytes(t, dir)
	}
	ratio := float64(sizes[false]) / float64(sizes[true])
	t.Logf("journal bytes: v1=%d v2=%d ratio=%.2fx (%.2f vs %.2f bytes/sample)",
		sizes[false], sizes[true], ratio,
		float64(sizes[false])/(nSeries*nBatches), float64(sizes[true])/(nSeries*nBatches))
	if ratio < 3 {
		t.Fatalf("v2 journal reduction %.2fx, want >= 3x (v1=%d bytes, v2=%d bytes)", ratio, sizes[false], sizes[true])
	}
}

// TestWALStreamingCheckpointLargeSeries sanity-checks the streamed
// checkpoint on a shard whose biggest series spans many chunks: the
// snapshot must hold every retained sample (in both formats), proving the
// series-by-series writer loses nothing at batch boundaries.
func TestWALStreamingCheckpointLargeSeries(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			walDir := filepath.Join(t.TempDir(), "wal")
			db, err := Open(Options{Shards: 2, WALDir: walDir, WALCompression: compress})
			if err != nil {
				t.Fatal(err)
			}
			// > walSnapshotSeriesBatch series so the registration batching
			// path runs more than once, plus one deep series.
			for s := 0; s < walSnapshotSeriesBatch+50; s++ {
				if err := db.Append(crashSeries(s), int64(s), float64(s)); err != nil {
					t.Fatal(err)
				}
			}
			deep := labels.FromStrings(labels.MetricName, "wal_deep_series")
			for i := int64(0); i < 5000; i++ {
				if err := db.Append(deep, 1_000_000+i*1000, float64(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.CheckpointWAL(); err != nil {
				t.Fatal(err)
			}
			live := selectAll(t, db)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			// Drop the (empty) post-checkpoint segments so replay reads the
			// snapshot alone — any loss in the streamed writer shows up.
			segs, _ := filepath.Glob(filepath.Join(walDir, "shard-*", "*.wal"))
			for _, seg := range segs {
				if st, err := os.Stat(seg); err == nil && st.Size() <= int64(walFileHeaderLen) {
					os.Remove(seg)
				}
			}
			re, err := Open(Options{Shards: 2, WALDir: walDir, WALCompression: compress})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			assertSeriesEqual(t, selectAll(t, re), live, "checkpoint-only replay")
		})
	}
}
