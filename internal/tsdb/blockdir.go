package tsdb

// On-disk block directories.
//
// A persistent block is a directory holding exactly three files:
//
//	<ulid>/meta.json   block metadata (JSON; the commit point)
//	<ulid>/index       series index: labels + per-chunk metadata
//	<ulid>/chunks      Gorilla chunk segment, mmap'd by readers
//
// # index format (magic "CEEMSIDX", version 1)
//
//	magic [8]byte | version byte
//	numSeries uvarint
//	per series, sorted by labels:
//	  numLabels uvarint, then per label: len uvarint + name, len uvarint + value
//	  numChunks uvarint, then per chunk:
//	    aggr byte | minT varint | maxT varint | offset uvarint |
//	    length uvarint | numSamples uvarint
//	crc32 uint32 LE   Castagnoli, over everything before it
//
// # chunks format (magic "CEEMSCHK", version 1)
//
//	magic [8]byte | version byte
//	per chunk: crc32 uint32 LE (of payload) | len uvarint | payload
//
// where payload is chunkenc.Chunk.Bytes() — the same Gorilla codec the WAL
// v2 samples records use. Index offsets point at the crc32 word; lengths
// cover crc+len+payload, so a reader can slice a chunk without parsing its
// neighbors.
//
// # crash-safety contract
//
// Blocks are written to `<ulid>.tmp/` first: chunks, then index, then
// meta.json, each fsynced through writeFileDurably; the tmp directory is
// fsynced, renamed to `<ulid>/`, and the parent directory fsynced. meta.json
// inside a non-tmp directory is therefore the commit point — a directory
// missing it, failing its CRCs, or still carrying the .tmp suffix is an
// aborted write and is deleted by openers. A crash at any byte of the write
// leaves either no block (the tmp dir is swept) or the complete block.

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/labels"
)

// AggrType identifies what a chunk stores: raw samples, or one downsampled
// aggregate of the samples in each resolution bucket.
type AggrType uint8

const (
	AggrRaw   AggrType = iota // raw samples (the only type in resolution-0 blocks)
	AggrSum                   // per-bucket sum of non-stale samples
	AggrCount                 // per-bucket count of non-stale samples
	AggrMin                   // per-bucket minimum
	AggrMax                   // per-bucket maximum
	AggrAvg                   // request-only: derived as sum/count, never stored
)

func (a AggrType) String() string {
	switch a {
	case AggrRaw:
		return "raw"
	case AggrSum:
		return "sum"
	case AggrCount:
		return "count"
	case AggrMin:
		return "min"
	case AggrMax:
		return "max"
	case AggrAvg:
		return "avg"
	}
	return fmt.Sprintf("aggr(%d)", uint8(a))
}

const (
	indexMagic      = "CEEMSIDX"
	chunksMagic     = "CEEMSCHK"
	blockDirVersion = 1

	// MetaFilename, IndexFilename and ChunksFilename are the three files of
	// a block directory. meta.json is written last and is the commit point.
	MetaFilename   = "meta.json"
	IndexFilename  = "index"
	ChunksFilename = "chunks"

	tmpDirSuffix = ".tmp"
)

// BlockStats summarizes a block's contents, recorded in meta.json.
type BlockStats struct {
	NumSeries  int `json:"numSeries"`
	NumChunks  int `json:"numChunks"`
	NumSamples int `json:"numSamples"`
}

// BlockMeta is the meta.json payload of a block directory.
type BlockMeta struct {
	// Version of the block-dir format (blockDirVersion).
	Version int `json:"version"`
	// ULID is the block's unique id — also its directory name.
	ULID string `json:"ulid"`
	// MinTime and MaxTime are the inclusive sample-time bounds, Unix ms.
	MinTime int64 `json:"minTime"`
	MaxTime int64 `json:"maxTime"`
	// Level counts compaction generations: 1 for a freshly cut block,
	// max(inputs)+1 after each compaction.
	Level int `json:"level"`
	// Resolution is the downsampling bucket width in ms; 0 means raw.
	Resolution int64 `json:"resolution"`
	// Sources names the ULIDs this block was compacted or downsampled from.
	Sources []string   `json:"sources,omitempty"`
	Stats   BlockStats `json:"stats"`
}

// diskChunk is one chunk's index entry. payload is set while writing;
// off/length locate the chunk in the chunks file when reading.
type diskChunk struct {
	aggr       AggrType
	minT, maxT int64
	numSamples int
	payload    []byte
	off        uint64
	length     uint64
}

// diskSeries is one series of a block: its labels plus chunk entries in
// time order (grouped by aggregate type for downsampled blocks).
type diskSeries struct {
	lset   labels.Labels
	chunks []diskChunk
}

var blockSeq atomic.Uint64

// newBlockULID returns a unique block id: wall-clock prefix for rough
// time-sortability, a process-local sequence and random bytes so concurrent
// writers (or a restarted process re-cutting the same range) never collide.
func newBlockULID() string {
	var rnd [4]byte
	rand.Read(rnd[:])
	return fmt.Sprintf("%016x-%04x-%08x", uint64(time.Now().UnixNano()), blockSeq.Add(1)&0xffff, binary.BigEndian.Uint32(rnd[:]))
}

// IsTmpBlockDir reports whether name is an aborted block write (sweep target).
func IsTmpBlockDir(name string) bool {
	return filepath.Ext(name) == tmpDirSuffix
}

// fillStats recomputes meta.Stats from the series set.
func fillStats(meta *BlockMeta, series []diskSeries) {
	st := BlockStats{NumSeries: len(series)}
	for i := range series {
		st.NumChunks += len(series[i].chunks)
		for _, c := range series[i].chunks {
			st.NumSamples += c.numSamples
		}
	}
	meta.Stats = st
}

// encodeChunksStream writes the chunks file body to w and fills in each
// chunk's off/length. The caller has already decided the series order;
// chunks are laid out series-major in index order.
func encodeChunksStream(series []diskSeries, w *bufio.Writer) error {
	if _, err := w.WriteString(chunksMagic); err != nil {
		return err
	}
	if err := w.WriteByte(blockDirVersion); err != nil {
		return err
	}
	off := uint64(len(chunksMagic) + 1)
	var hdr [4]byte
	var vb [binary.MaxVarintLen64]byte
	for si := range series {
		for ci := range series[si].chunks {
			c := &series[si].chunks[ci]
			c.off = off
			binary.LittleEndian.PutUint32(hdr[:], crc32.Checksum(c.payload, walCRC))
			if _, err := w.Write(hdr[:]); err != nil {
				return err
			}
			n := binary.PutUvarint(vb[:], uint64(len(c.payload)))
			if _, err := w.Write(vb[:n]); err != nil {
				return err
			}
			if _, err := w.Write(c.payload); err != nil {
				return err
			}
			c.length = uint64(4 + n + len(c.payload))
			off += c.length
		}
	}
	return nil
}

// encodeIndex renders the index file (including trailing CRC) into a buffer.
// Chunk offsets must already be filled in by encodeChunksStream.
func encodeIndex(series []diskSeries) []byte {
	var buf bytes.Buffer
	buf.WriteString(indexMagic)
	buf.WriteByte(blockDirVersion)
	var vb [binary.MaxVarintLen64]byte
	putU := func(u uint64) {
		n := binary.PutUvarint(vb[:], u)
		buf.Write(vb[:n])
	}
	putI := func(i int64) {
		n := binary.PutVarint(vb[:], i)
		buf.Write(vb[:n])
	}
	putStr := func(s string) {
		putU(uint64(len(s)))
		buf.WriteString(s)
	}
	putU(uint64(len(series)))
	for i := range series {
		s := &series[i]
		putU(uint64(len(s.lset)))
		for _, l := range s.lset {
			putStr(l.Name)
			putStr(l.Value)
		}
		putU(uint64(len(s.chunks)))
		for _, c := range s.chunks {
			buf.WriteByte(byte(c.aggr))
			putI(c.minT)
			putI(c.maxT)
			putU(c.off)
			putU(c.length)
			putU(uint64(c.numSamples))
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(buf.Bytes(), walCRC))
	buf.Write(crc[:])
	return buf.Bytes()
}

// decodeIndex parses an index file, verifying magic, version and CRC.
func decodeIndex(data []byte) ([]diskSeries, error) {
	hdr := len(indexMagic) + 1
	if len(data) < hdr+4 {
		return nil, fmt.Errorf("tsdb: index truncated (%d bytes)", len(data))
	}
	if string(data[:len(indexMagic)]) != indexMagic {
		return nil, fmt.Errorf("tsdb: bad index magic %q", data[:len(indexMagic)])
	}
	if data[len(indexMagic)] != blockDirVersion {
		return nil, fmt.Errorf("tsdb: unsupported index version %d", data[len(indexMagic)])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, walCRC), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("tsdb: index crc mismatch (got %08x want %08x)", got, want)
	}
	r := bytes.NewReader(body[hdr:])
	getU := func() (uint64, error) { return binary.ReadUvarint(r) }
	getI := func() (int64, error) { return binary.ReadVarint(r) }
	getStr := func() (string, error) {
		n, err := getU()
		if err != nil {
			return "", err
		}
		if n > uint64(r.Len()) {
			return "", fmt.Errorf("tsdb: index string length %d exceeds remainder", n)
		}
		b := make([]byte, n)
		if _, err := r.Read(b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	nSeries, err := getU()
	if err != nil {
		return nil, err
	}
	series := make([]diskSeries, 0, nSeries)
	for i := uint64(0); i < nSeries; i++ {
		var s diskSeries
		nLabels, err := getU()
		if err != nil {
			return nil, err
		}
		s.lset = make(labels.Labels, 0, nLabels)
		for j := uint64(0); j < nLabels; j++ {
			name, err := getStr()
			if err != nil {
				return nil, err
			}
			value, err := getStr()
			if err != nil {
				return nil, err
			}
			s.lset = append(s.lset, labels.Label{Name: name, Value: value})
		}
		nChunks, err := getU()
		if err != nil {
			return nil, err
		}
		s.chunks = make([]diskChunk, 0, nChunks)
		for j := uint64(0); j < nChunks; j++ {
			var c diskChunk
			ab, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			c.aggr = AggrType(ab)
			if c.minT, err = getI(); err != nil {
				return nil, err
			}
			if c.maxT, err = getI(); err != nil {
				return nil, err
			}
			if c.off, err = getU(); err != nil {
				return nil, err
			}
			if c.length, err = getU(); err != nil {
				return nil, err
			}
			ns, err := getU()
			if err != nil {
				return nil, err
			}
			c.numSamples = int(ns)
			s.chunks = append(s.chunks, c)
		}
		series = append(series, s)
	}
	return series, nil
}

// writeBlockDir persists a block directory under parent following the
// crash-safety contract in the package comment (tmp dir → per-file fsync →
// dir fsync → rename → parent fsync) and returns the final path. meta.ULID
// is assigned when empty; meta.Version and meta.Stats are always filled.
func writeBlockDir(parent string, meta *BlockMeta, series []diskSeries) (dir string, err error) {
	if meta.ULID == "" {
		meta.ULID = newBlockULID()
	}
	meta.Version = blockDirVersion
	fillStats(meta, series)
	final := filepath.Join(parent, meta.ULID)
	tmp := final + tmpDirSuffix
	if err := os.RemoveAll(tmp); err != nil {
		return "", err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}
	defer func() {
		if err != nil {
			os.RemoveAll(tmp)
		}
	}()
	if err := writeFileDurably(filepath.Join(tmp, ChunksFilename), func(w *bufio.Writer) error {
		return encodeChunksStream(series, w)
	}); err != nil {
		return "", err
	}
	if err := writeFileDurably(filepath.Join(tmp, IndexFilename), func(w *bufio.Writer) error {
		_, werr := w.Write(encodeIndex(series))
		return werr
	}); err != nil {
		return "", err
	}
	mj, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return "", err
	}
	if err := writeFileDurably(filepath.Join(tmp, MetaFilename), func(w *bufio.Writer) error {
		_, werr := w.Write(mj)
		return werr
	}); err != nil {
		return "", err
	}
	if err := syncDir(tmp); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	if err := syncDir(parent); err != nil {
		return "", err
	}
	return final, nil
}

// readBlockMeta loads and validates a block directory's meta.json.
func readBlockMeta(dir string) (BlockMeta, error) {
	var meta BlockMeta
	data, err := os.ReadFile(filepath.Join(dir, MetaFilename))
	if err != nil {
		return meta, err
	}
	if err := json.Unmarshal(data, &meta); err != nil {
		return meta, fmt.Errorf("tsdb: %s: %w", filepath.Join(dir, MetaFilename), err)
	}
	if meta.Version != blockDirVersion {
		return meta, fmt.Errorf("tsdb: %s: unsupported block version %d", dir, meta.Version)
	}
	return meta, nil
}
