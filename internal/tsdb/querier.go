package tsdb

import (
	"errors"
	"sync/atomic"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/workpool"
)

// forEachShard runs f(i, shard) for every shard on a bounded worker pool of
// min(shards, GOMAXPROCS) goroutines. The single-shard case runs inline.
func (db *DB) forEachShard(f func(i int, sh *headShard)) {
	workpool.Do(len(db.shards), 0, func(i int) { f(i, db.shards[i]) })
}

// Select returns all series matching the matchers, restricted to samples in
// [mint, maxt]. Series with no samples in range are omitted. Results are
// sorted by labels: each shard selects and sorts its slice in parallel and
// the slices are combined with a k-way merge, so output is identical for
// any shard count.
func (db *DB) Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error) {
	if len(ms) == 0 {
		return nil, errors.New("tsdb: Select requires at least one matcher")
	}
	parts := make([][]model.Series, len(db.shards))
	db.forEachShard(func(i int, sh *headShard) {
		parts[i] = sh.selectSorted(mint, maxt, ms, nil)
	})
	return mergeSortedSeries(parts), nil
}

// SelectWithHints is the hint-aware Select path: identical output to
// Select over [hints.Start, hints.End], but when hints.SampleLimit is set
// the shards charge every copied sample against a shared budget and abort
// the pass with model.ErrSampleLimit the moment it is exhausted — the
// promql range evaluator's prefetch uses this so runaway queries fail
// during the storage pass instead of after materializing everything.
func (db *DB) SelectWithHints(hints model.SelectHints, ms ...*labels.Matcher) ([]model.Series, error) {
	if len(ms) == 0 {
		return nil, errors.New("tsdb: Select requires at least one matcher")
	}
	if hints.SampleLimit <= 0 {
		return db.Select(hints.Start, hints.End, ms...)
	}
	budget := &sampleBudget{limit: hints.SampleLimit}
	parts := make([][]model.Series, len(db.shards))
	db.forEachShard(func(i int, sh *headShard) {
		parts[i] = sh.selectSorted(hints.Start, hints.End, ms, budget)
	})
	if budget.exceeded.Load() {
		return nil, model.ErrSampleLimit
	}
	return mergeSortedSeries(parts), nil
}

// sampleBudget is the shared per-query sample allowance charged by all
// shards of one hint-aware Select.
type sampleBudget struct {
	limit    int64
	used     atomic.Int64
	exceeded atomic.Bool
}

// charge records n copied samples and reports whether the budget still
// holds.
func (b *sampleBudget) charge(n int) bool {
	if b == nil {
		return true
	}
	if b.used.Add(int64(n)) > b.limit {
		b.exceeded.Store(true)
		return false
	}
	return true
}

// blown reports whether any shard already exhausted the budget.
func (b *sampleBudget) blown() bool { return b != nil && b.exceeded.Load() }

// mergeSortedSeries merges per-shard slices, each sorted by labels, into one
// sorted slice. Series are unique across shards (a label set hashes to one
// shard), so this is a pure merge with no combining.
func mergeSortedSeries(parts [][]model.Series) []model.Series {
	return mergeSortedBy(parts, func(a, b model.Series) int { return labels.Compare(a.Labels, b.Labels) })
}

// mergeSortedBy merges per-shard slices, each sorted under cmp, into one
// sorted slice. Pairwise tournament reduction keeps it O(total · log shards)
// even at high shard counts. Select and CutBlock share it.
func mergeSortedBy[T any](parts [][]T, cmp func(a, b T) int) []T {
	live := parts[:0]
	for _, p := range parts {
		if len(p) > 0 {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return []T{}
	case 1:
		return live[0]
	}
	for len(live) > 1 {
		merged := live[:0]
		for i := 0; i < len(live); i += 2 {
			if i+1 == len(live) {
				merged = append(merged, live[i])
				break
			}
			merged = append(merged, mergeTwoSortedBy(live[i], live[i+1], cmp))
		}
		live = merged
	}
	return live[0]
}

// mergeTwoSortedBy merges two cmp-sorted slices.
func mergeTwoSortedBy[T any](a, b []T, cmp func(x, y T) int) []T {
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if cmp(a[i], b[j]) < 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// LabelValues returns the sorted distinct values of a label name across all
// shards.
func (db *DB) LabelValues(name string) []string {
	parts := make([][]string, len(db.shards))
	db.forEachShard(func(i int, sh *headShard) {
		parts[i] = sh.labelValues(name)
	})
	return labels.UnionSorted(parts...)
}

// LabelNames returns all label names in use, sorted.
func (db *DB) LabelNames() []string {
	parts := make([][]string, len(db.shards))
	db.forEachShard(func(i int, sh *headShard) {
		parts[i] = sh.labelNames()
	})
	return labels.UnionSorted(parts...)
}

// Stats reports database statistics.
type Stats struct {
	NumSeries     int
	NumSamples    uint64 // total appended (monotonic)
	MinTime       int64
	MaxTime       int64
	NumLabelNames int
	BytesInChunks int
	NumShards     int
	// WAL summarizes the head's journals — replay outcome (segments,
	// records, torn-tail repairs, duration) and writer activity since Open.
	// Nil for memory-only heads.
	WAL *WALStats
}

// Stats returns a snapshot of database statistics, aggregated across shards
// in parallel.
func (db *DB) Stats() Stats {
	parts := make([]shardStats, len(db.shards))
	db.forEachShard(func(i int, sh *headShard) {
		parts[i] = sh.stats()
	})
	names := make(map[string]struct{})
	st := Stats{NumShards: len(db.shards)}
	for _, p := range parts {
		st.NumSeries += p.numSeries
		st.BytesInChunks += p.bytesInChunks
		for _, n := range p.labelNames {
			names[n] = struct{}{}
		}
	}
	st.NumLabelNames = len(names)
	for _, sh := range db.shards {
		st.NumSamples += sh.appended.Load()
	}
	st.MinTime, st.MaxTime = db.timeBounds()
	if ws, ok := db.WALStats(); ok {
		st.WAL = &ws
	}
	return st
}
