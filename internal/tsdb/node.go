package tsdb

import (
	"repro/internal/labels"
	"repro/internal/model"
)

// BatchSample is one routed sample of a replicated batch append: the shape
// a cluster ingest layer ships to a remote tsdb node in a single call.
type BatchSample struct {
	Lset labels.Labels
	T    int64
	V    float64
}

// Node is the remote-appendable, remote-queryable surface of one tsdb
// instance — what the cluster distribution layer drives on every member.
// The methods are deliberately one-shot (whole batch in, result out) so an
// implementation can sit behind an RPC boundary without chattiness; *DB
// implements it in-process. Errors are transport-shaped: a nil error is an
// acknowledgement that the batch is durable to the node's own WAL policy.
type Node interface {
	// BatchAppend applies a whole batch atomically with respect to locking
	// cost (one shard-lock round-trip per shard touched, one WAL flush per
	// shard) and returns how many samples landed. Out-of-order samples are
	// skipped, not errors — the replication fan-out relies on that to make
	// re-sends and anti-entropy repair idempotent.
	BatchAppend(batch []BatchSample) (int, error)
	// SelectWithHints is the hint-aware read path (see DB.SelectWithHints).
	SelectWithHints(hints model.SelectHints, ms ...*labels.Matcher) ([]model.Series, error)
	// LabelValues / LabelNames serve the metadata endpoints.
	LabelValues(name string) []string
	LabelNames() []string
}

// BatchAppend implements Node: the whole batch commits through the batch
// Appender, so the durability cost is O(shards touched), not O(samples),
// and out-of-order duplicates (a replica re-sending what this node already
// holds) are skipped silently.
func (db *DB) BatchAppend(batch []BatchSample) (int, error) {
	a := db.Appender()
	for _, s := range batch {
		a.Add(s.Lset, s.T, s.V)
	}
	return a.Commit()
}
