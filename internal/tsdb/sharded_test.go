package tsdb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/labels"
	"repro/internal/model"
)

func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ want, give int }{
		{1, 1}, {2, 2}, {4, 3}, {8, 5}, {16, 16}, {32, 17},
	} {
		db := MustOpen(Options{Shards: tc.give})
		if got := db.NumShards(); got != tc.want {
			t.Errorf("Shards=%d: got %d shards, want %d", tc.give, got, tc.want)
		}
	}
	if db := MustOpen(Options{}); db.NumShards()&(db.NumShards()-1) != 0 {
		t.Errorf("default shard count %d not a power of two", db.NumShards())
	}
}

// TestShardEquivalence: a 1-shard and a 16-shard DB fed the same input must
// return byte-identical sorted results for Select, LabelValues, LabelNames
// and the aggregate stats.
func TestShardEquivalence(t *testing.T) {
	opts1 := DefaultOptions()
	opts1.Shards = 1
	opts1.MaxSamplesPerChunk = 7 // force chunk rollovers
	opts16 := opts1
	opts16.Shards = 16
	db1 := MustOpen(opts1)
	db16 := MustOpen(opts16)

	rng := rand.New(rand.NewSource(42))
	for s := 0; s < 200; s++ {
		ls := labels.FromStrings(
			labels.MetricName, fmt.Sprintf("metric_%d", s%13),
			"instance", fmt.Sprintf("node%03d", s%29),
			"uuid", fmt.Sprintf("%d", s),
		)
		tcur := int64(0)
		for j := 0; j < 40; j++ {
			tcur += rng.Int63n(5000) + 1
			v := rng.NormFloat64()
			if err := db1.Append(ls, tcur, v); err != nil {
				t.Fatalf("db1 append: %v", err)
			}
			if err := db16.Append(ls, tcur, v); err != nil {
				t.Fatalf("db16 append: %v", err)
			}
		}
	}

	matcherSets := [][]*labels.Matcher{
		{labels.MustMatcher(labels.MatchRegexp, labels.MetricName, ".*")},
		{labels.MustMatcher(labels.MatchEqual, labels.MetricName, "metric_3")},
		{labels.MustMatcher(labels.MatchRegexp, "instance", "node00[0-9]")},
		{labels.MustMatcher(labels.MatchEqual, labels.MetricName, "metric_1"),
			labels.MustMatcher(labels.MatchNotEqual, "instance", "node001")},
		{labels.MustMatcher(labels.MatchNotRegexp, "uuid", "1.*")},
	}
	for i, ms := range matcherSets {
		r1, err1 := db1.Select(0, 1<<60, ms...)
		r16, err16 := db16.Select(0, 1<<60, ms...)
		if err1 != nil || err16 != nil {
			t.Fatalf("set %d: errs %v / %v", i, err1, err16)
		}
		if !reflect.DeepEqual(r1, r16) {
			t.Fatalf("set %d: 1-shard and 16-shard Select differ (%d vs %d series)", i, len(r1), len(r16))
		}
	}
	for _, name := range []string{labels.MetricName, "instance", "uuid", "absent"} {
		if v1, v16 := db1.LabelValues(name), db16.LabelValues(name); !reflect.DeepEqual(v1, v16) {
			t.Errorf("LabelValues(%q) differ: %v vs %v", name, v1, v16)
		}
	}
	if n1, n16 := db1.LabelNames(), db16.LabelNames(); !reflect.DeepEqual(n1, n16) {
		t.Errorf("LabelNames differ: %v vs %v", n1, n16)
	}
	s1, s16 := db1.Stats(), db16.Stats()
	if s1.NumSeries != s16.NumSeries || s1.NumSamples != s16.NumSamples ||
		s1.MinTime != s16.MinTime || s1.MaxTime != s16.MaxTime ||
		s1.NumLabelNames != s16.NumLabelNames {
		t.Errorf("stats differ: %+v vs %+v", s1, s16)
	}

	// Mutations stay equivalent too: delete a slice of series, truncate, and
	// compare the survivors.
	del := []*labels.Matcher{labels.MustMatcher(labels.MatchRegexp, "uuid", "[0-9]?[02468]")}
	if n1, n16 := db1.DeleteSeries(del...), db16.DeleteSeries(del...); n1 != n16 {
		t.Fatalf("DeleteSeries differ: %d vs %d", n1, n16)
	}
	if n1, n16 := db1.Truncate(60000), db16.Truncate(60000); n1 != n16 {
		t.Fatalf("Truncate differ: %d vs %d", n1, n16)
	}
	all := labels.MustMatcher(labels.MatchRegexp, labels.MetricName, ".*")
	r1, _ := db1.Select(0, 1<<60, all)
	r16, _ := db16.Select(0, 1<<60, all)
	if !reflect.DeepEqual(r1, r16) {
		t.Fatalf("post-mutation Select differ (%d vs %d series)", len(r1), len(r16))
	}
}

// TestShardedStress hammers the head from 8 appending goroutines while
// Select, Delete, Truncate and Stats run concurrently; meant for -race.
func TestShardedStress(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxSamplesPerChunk = 9
	opts.Shards = 8 // explicit: don't degrade to 1 shard on 1-core hosts
	db := MustOpen(opts)
	const (
		appenders   = 8
		seriesEach  = 25
		samplesEach = 300
	)
	var wg sync.WaitGroup
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			app := db.Appender()
			for i := int64(0); i < samplesEach; i++ {
				for s := 0; s < seriesEach; s++ {
					ls := labels.FromStrings(labels.MetricName, "stress",
						"g", fmt.Sprintf("%d", g), "s", fmt.Sprintf("%d", s))
					if i%2 == 0 {
						if err := db.Append(ls, i*1000, float64(i)); err != nil {
							t.Errorf("append: %v", err)
							return
						}
					} else {
						app.Add(ls, i*1000, float64(i))
					}
				}
				if app.Pending() > 0 {
					if _, err := app.Commit(); err != nil {
						t.Errorf("commit: %v", err)
						return
					}
				}
			}
		}(g)
	}
	// Concurrent readers and pruners.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(3)
	go func() {
		defer rwg.Done()
		m := labels.MustMatcher(labels.MatchEqual, labels.MetricName, "stress")
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Select(0, 1<<60, m); err != nil {
				t.Errorf("select: %v", err)
				return
			}
			db.LabelValues("g")
			db.Stats()
		}
	}()
	go func() {
		defer rwg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.DeleteSeries(
				labels.MustMatcher(labels.MatchEqual, "g", fmt.Sprintf("%d", i%appenders)),
				labels.MustMatcher(labels.MatchEqual, "s", "13"))
		}
	}()
	go func() {
		defer rwg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.Truncate(i * 100)
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()

	// The head must still be internally consistent: every surviving series
	// is selectable and the postings agree with the series maps.
	got, err := db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "stress"))
	if err != nil {
		t.Fatalf("final select: %v", err)
	}
	st := db.Stats()
	if len(got) > st.NumSeries {
		t.Errorf("selected %d series but stats report %d", len(got), st.NumSeries)
	}
	for _, sr := range got {
		for i := 1; i < len(sr.Samples); i++ {
			if sr.Samples[i].T <= sr.Samples[i-1].T {
				t.Fatalf("series %s has unordered samples", sr.Labels)
			}
		}
	}
}

func TestAppenderBatch(t *testing.T) {
	db := MustOpen(Options{Shards: 4})
	app := db.Appender()
	for s := 0; s < 10; s++ {
		ls := labels.FromStrings(labels.MetricName, "m", "s", fmt.Sprintf("%d", s))
		app.Add(ls, 1000, float64(s))
		app.Add(ls, 2000, float64(s))
	}
	if app.Pending() != 20 {
		t.Fatalf("pending = %d, want 20", app.Pending())
	}
	n, err := app.Commit()
	if err != nil || n != 20 {
		t.Fatalf("commit = %d, %v", n, err)
	}
	if app.Pending() != 0 {
		t.Errorf("pending after commit = %d", app.Pending())
	}
	// Out-of-order samples are skipped, not fatal.
	app.Add(labels.FromStrings(labels.MetricName, "m", "s", "0"), 1500, 9)
	app.Add(labels.FromStrings(labels.MetricName, "m", "s", "0"), 3000, 9)
	n, err = app.Commit()
	if err != nil || n != 1 {
		t.Fatalf("ooo commit = %d, %v (want 1, nil)", n, err)
	}
	got, _ := db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, "s", "0"))
	if len(got) != 1 || len(got[0].Samples) != 3 {
		t.Fatalf("series 0 = %+v", got)
	}
	if st := db.Stats(); st.NumSamples != 21 {
		t.Errorf("NumSamples = %d, want 21", st.NumSamples)
	}
}

// Appends through the batch Appender and direct Append must be
// indistinguishable to queries.
func TestAppenderEquivalence(t *testing.T) {
	direct := MustOpen(Options{Shards: 8})
	batched := MustOpen(Options{Shards: 8})
	app := batched.Appender()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		ls := labels.FromStrings(labels.MetricName, "m", "i", fmt.Sprintf("%d", i%11))
		tcur := int64(0)
		for j := 0; j < 30; j++ {
			tcur += rng.Int63n(900) + 1
			v := rng.Float64()
			// Both DBs see identical (lset, t, v) streams; collisions across
			// the i%11 aliasing exercise the out-of-order skip path.
			direct.Append(ls, tcur, v)
			app.Add(ls, tcur, v)
		}
	}
	if _, err := app.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	all := labels.MustMatcher(labels.MatchRegexp, labels.MetricName, ".*")
	a, _ := direct.Select(0, 1<<60, all)
	b, _ := batched.Select(0, 1<<60, all)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("direct vs batched results differ: %d vs %d series", len(a), len(b))
	}
}

func TestAppendSeriesBatching(t *testing.T) {
	db := MustOpen(Options{Shards: 4})
	ls := labels.FromStrings(labels.MetricName, "m")
	samples := make([]model.Sample, 500)
	for i := range samples {
		samples[i] = model.Sample{T: int64(i) * 100, V: float64(i)}
	}
	if err := db.AppendSeries(ls, samples); err != nil {
		t.Fatalf("AppendSeries: %v", err)
	}
	got, _ := db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m"))
	if len(got) != 1 || len(got[0].Samples) != 500 {
		t.Fatalf("round trip lost samples: %+v", len(got[0].Samples))
	}
	st := db.Stats()
	if st.NumSamples != 500 || st.MinTime != 0 || st.MaxTime != 499*100 {
		t.Errorf("stats = %+v", st)
	}
	// A partially out-of-order batch appends the good prefix and reports.
	err := db.AppendSeries(ls, []model.Sample{{T: 50000, V: 1}, {T: 49999, V: 2}, {T: 60000, V: 3}})
	if err == nil {
		t.Fatal("expected out-of-order error")
	}
	if st := db.Stats(); st.NumSamples != 501 {
		t.Errorf("NumSamples after partial batch = %d, want 501", st.NumSamples)
	}
}
