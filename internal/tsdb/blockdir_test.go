package tsdb

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/labels"
	"repro/internal/model"
)

func blockSeedDB(t *testing.T, shards, nSeries, nSamples int, startMs, stepMs int64) *DB {
	t.Helper()
	opts := DefaultOptions()
	opts.Shards = shards
	db := MustOpen(opts)
	for i := 0; i < nSeries; i++ {
		ls := labels.FromStrings(labels.MetricName, "blk", "s", fmt.Sprintf("%03d", i))
		for j := 0; j < nSamples; j++ {
			if err := db.Append(ls, startMs+int64(j)*stepMs, float64(i*10_000+j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// TestBlockDirRoundTrip: a block cut straight to a directory and reopened
// must serve exactly what the head serves, and the in-memory assembly
// (parent == "") must be indistinguishable from the mmap'd read path.
func TestBlockDirRoundTrip(t *testing.T) {
	db := blockSeedDB(t, 4, 20, 300, 0, 15_000)
	want, err := db.Select(-1<<60, 1<<60, matchAll())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	pb, err := db.CutPersistentBlock(dir, -1<<60, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Meta().Level != 1 || pb.Meta().Resolution != 0 {
		t.Fatalf("meta = %+v, want level 1 raw", pb.Meta())
	}
	if pb.Meta().Stats.NumSeries != 20 || pb.Meta().Stats.NumSamples != 20*300 {
		t.Fatalf("stats = %+v", pb.Meta().Stats)
	}
	got, err := pb.Select(-1<<60, 1<<60, matchAll())
	if err != nil {
		t.Fatal(err)
	}
	assertSeriesEqual(t, got, want, "disk block vs head")

	// Reopen from disk (fresh mmap) and compare again.
	re, err := OpenBlockDir(pb.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got2, err := re.Select(-1<<60, 1<<60, matchAll())
	if err != nil {
		t.Fatal(err)
	}
	assertSeriesEqual(t, got2, want, "reopened block vs head")

	// In-memory assembly must match too.
	mem, err := db.CutPersistentBlock("", -1<<60, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	got3, err := mem.Select(-1<<60, 1<<60, matchAll())
	if err != nil {
		t.Fatal(err)
	}
	assertSeriesEqual(t, got3, want, "mem block vs head")

	// Sub-range reads must clip chunk-internally.
	sub, err := pb.Select(1_000_000, 2_000_000, matchAll())
	if err != nil {
		t.Fatal(err)
	}
	wantSub, _ := db.Select(1_000_000, 2_000_000, matchAll())
	assertSeriesEqual(t, sub, wantSub, "sub-range")
	if err := pb.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBlockDirCorruptionDetected: any flipped byte in the index or chunk
// segment must surface as an error — never as silently wrong samples.
func TestBlockDirCorruptionDetected(t *testing.T) {
	db := blockSeedDB(t, 1, 4, 200, 0, 1000)
	dir := t.TempDir()
	pb, err := db.CutPersistentBlock(dir, -1<<60, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	blockDir := pb.Dir()
	pb.Close()

	corrupt := func(t *testing.T, file string, flip func(data []byte) []byte) string {
		t.Helper()
		scratch := t.TempDir()
		cp := filepath.Join(scratch, filepath.Base(blockDir))
		if err := os.MkdirAll(cp, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{MetaFilename, IndexFilename, ChunksFilename} {
			data, err := os.ReadFile(filepath.Join(blockDir, name))
			if err != nil {
				t.Fatal(err)
			}
			if name == file {
				data = flip(data)
			}
			if err := os.WriteFile(filepath.Join(cp, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return cp
	}

	t.Run("index bit flip", func(t *testing.T) {
		cp := corrupt(t, IndexFilename, func(d []byte) []byte {
			d[len(d)/2] ^= 0x10
			return d
		})
		if _, err := OpenBlockDir(cp); err == nil {
			t.Fatal("corrupt index opened cleanly")
		}
	})
	t.Run("index truncated", func(t *testing.T) {
		cp := corrupt(t, IndexFilename, func(d []byte) []byte { return d[:len(d)/2] })
		if _, err := OpenBlockDir(cp); err == nil {
			t.Fatal("truncated index opened cleanly")
		}
	})
	t.Run("chunk bit flip fails the read", func(t *testing.T) {
		cp := corrupt(t, ChunksFilename, func(d []byte) []byte {
			d[len(d)/2] ^= 0x10
			return d
		})
		b, err := OpenBlockDir(cp)
		if err != nil {
			return // header landed on the flip: also acceptable
		}
		defer b.Close()
		if _, err := b.Select(-1<<60, 1<<60, matchAll()); err == nil {
			t.Fatal("flipped chunk byte served samples")
		}
	})
	t.Run("chunks truncated", func(t *testing.T) {
		cp := corrupt(t, ChunksFilename, func(d []byte) []byte { return d[:len(d)*2/3] })
		b, err := OpenBlockDir(cp)
		if err != nil {
			return
		}
		defer b.Close()
		if _, err := b.Select(-1<<60, 1<<60, matchAll()); err == nil {
			t.Fatal("truncated chunks served samples")
		}
	})
	t.Run("meta garbage", func(t *testing.T) {
		cp := corrupt(t, MetaFilename, func(d []byte) []byte { return []byte("{") })
		if _, err := OpenBlockDir(cp); err == nil {
			t.Fatal("garbage meta opened cleanly")
		}
	})
}

// TestParallelCutMatchesSelect: the per-shard parallel CutBlock must be
// sample-identical to Select for any shard count, including with
// out-of-order data in flight and boundary chunks that need re-encoding.
func TestParallelCutMatchesSelect(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Shards = shards
			opts.OutOfOrderWindow = 60_000
			opts.MaxSamplesPerChunk = 50
			db := MustOpen(opts)
			rng := rand.New(rand.NewSource(0xB10C + int64(shards)))
			for i := 0; i < 30; i++ {
				ls := labels.FromStrings(labels.MetricName, "cutpar", "s", fmt.Sprintf("%02d", i))
				ts := int64(0)
				for j := 0; j < 400; j++ {
					ts += int64(rng.Intn(2000)) + 1
					at := ts
					if j > 10 && rng.Intn(4) == 0 {
						at -= int64(rng.Intn(50_000)) // in-window backfill
					}
					db.Append(ls, at, rng.NormFloat64())
				}
			}
			for _, bounds := range [][2]int64{{-1 << 60, 1 << 60}, {100_000, 300_000}, {0, 0}} {
				mint, maxt := bounds[0], bounds[1]
				want, err := db.Select(mint, maxt, matchAll())
				if err != nil {
					t.Fatal(err)
				}
				blk, err := db.CutBlock(mint, maxt)
				if err != nil {
					t.Fatal(err)
				}
				got := blk.Select(mint, maxt, matchAll())
				assertSeriesEqual(t, got, want, fmt.Sprintf("cut [%d,%d]", mint, maxt))
			}
		})
	}
}

// cutMem cuts the whole head into an in-memory persistent block.
func cutMem(t *testing.T, db *DB) *PersistentBlock {
	t.Helper()
	pb, err := db.CutPersistentBlock("", -1<<60, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

// TestCompactPersistentBlocks: merging overlapping blocks dedups on
// timestamp with the earliest block winning, raises the level, records the
// sources, and applies tombstones.
func TestCompactPersistentBlocks(t *testing.T) {
	mk := func(series string, vals map[int64]float64) *PersistentBlock {
		opts := DefaultOptions()
		opts.OutOfOrderWindow = 1 << 50
		db := MustOpen(opts)
		ls := labels.FromStrings(labels.MetricName, "cmp", "s", series)
		ts := make([]int64, 0, len(vals))
		for k := range vals {
			ts = append(ts, k)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		for _, k := range ts {
			if err := db.Append(ls, k, vals[k]); err != nil {
				t.Fatal(err)
			}
		}
		return cutMem(t, db)
	}

	b1 := mk("a", map[int64]float64{1000: 1, 2000: 2, 3000: 3})
	b2 := mk("a", map[int64]float64{3000: 99, 4000: 4}) // 3000 collides; b1 wins
	b3 := mk("b", map[int64]float64{1500: 7})

	nb, err := CompactPersistentBlocks("", []*PersistentBlock{b1, b2, b3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	meta := nb.Meta()
	if meta.Level != 2 {
		t.Errorf("level = %d, want 2", meta.Level)
	}
	if len(meta.Sources) != 3 {
		t.Errorf("sources = %v", meta.Sources)
	}
	if meta.MinTime != 1000 || meta.MaxTime != 4000 {
		t.Errorf("bounds = [%d,%d]", meta.MinTime, meta.MaxTime)
	}
	got, err := nb.Select(-1<<60, 1<<60, matchAll())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("series = %d, want 2", len(got))
	}
	wantA := []model.Sample{{T: 1000, V: 1}, {T: 2000, V: 2}, {T: 3000, V: 3}, {T: 4000, V: 4}}
	if !reflect.DeepEqual(got[0].Samples, wantA) {
		t.Errorf("merged a = %+v", got[0].Samples)
	}

	// Tombstones drop whole series during the merge.
	tombs := []TombstoneRec{{Seq: 1, Matchers: []*labels.Matcher{
		labels.MustMatcher(labels.MatchEqual, "s", "a"),
	}}}
	nb2, err := CompactPersistentBlocks("", []*PersistentBlock{b1, b2, b3}, tombs)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := nb2.Select(-1<<60, 1<<60, matchAll())
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 1 || got2[0].Labels.Get("s") != "b" {
		t.Fatalf("tombstoned compact kept %d series", len(got2))
	}

	// Mixed resolutions must refuse.
	ds, err := DownsamplePersistentBlock("", b1, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompactPersistentBlocks("", []*PersistentBlock{b1, ds}, nil); err == nil {
		t.Fatal("mixed-resolution compact accepted")
	}
}

// rawBuckets computes the expected aggregate streams from raw samples — an
// independent oracle for the downsampling property (stale markers dropped,
// buckets aligned to floor(t/res)).
func rawBuckets(raw []model.Sample, res int64) map[AggrType][]model.Sample {
	type agg struct {
		sum, min, max, count float64
	}
	buckets := map[int64]*agg{}
	var starts []int64
	for _, s := range raw {
		if model.IsStaleNaN(s.V) {
			continue
		}
		bs := floorDiv(s.T, res) * res
		a, ok := buckets[bs]
		if !ok {
			a = &agg{min: math.Inf(1), max: math.Inf(-1)}
			buckets[bs] = a
			starts = append(starts, bs)
		}
		a.sum += s.V
		a.count++
		a.min = math.Min(a.min, s.V)
		a.max = math.Max(a.max, s.V)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := map[AggrType][]model.Sample{}
	for _, bs := range starts {
		a := buckets[bs]
		et := bs + res - 1
		out[AggrSum] = append(out[AggrSum], model.Sample{T: et, V: a.sum})
		out[AggrCount] = append(out[AggrCount], model.Sample{T: et, V: a.count})
		out[AggrMin] = append(out[AggrMin], model.Sample{T: et, V: a.min})
		out[AggrMax] = append(out[AggrMax], model.Sample{T: et, V: a.max})
	}
	return out
}

// aggrBuckets rebuckets already-downsampled aggregate streams to a coarser
// resolution: sums of sums, sums of counts, min of mins, max of maxes, in
// timestamp order — the oracle for aggregates-of-aggregates.
func aggrBuckets(fine map[AggrType][]model.Sample, res int64) map[AggrType][]model.Sample {
	fold := map[AggrType]func(a, b float64) float64{
		AggrSum:   func(a, b float64) float64 { return a + b },
		AggrCount: func(a, b float64) float64 { return a + b },
		AggrMin:   math.Min,
		AggrMax:   math.Max,
	}
	out := map[AggrType][]model.Sample{}
	for aggr, pts := range fine {
		var cur []model.Sample
		for _, p := range pts {
			et := floorDiv(p.T, res)*res + res - 1
			if n := len(cur); n > 0 && cur[n-1].T == et {
				cur[n-1].V = fold[aggr](cur[n-1].V, p.V)
			} else {
				cur = append(cur, model.Sample{T: et, V: p.V})
			}
		}
		out[aggr] = cur
	}
	return out
}

// TestDownsamplePropertyRandom is the downsampling correctness property:
// across random series shapes — uneven scrape intervals, counter resets,
// staleness markers, negative values — the sum/count/min/max streams of a
// downsampled block must exactly equal an independent per-bucket
// computation over the raw samples, the derived avg stream must equal
// sum/count, and downsampling in two hops (raw → fine → coarse) must
// exactly equal rebucketing the fine aggregates (count/min/max therefore
// match one hop bit-exactly; sum and avg match up to float associativity).
func TestDownsamplePropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD0D5))
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			fine := int64(10_000 * (1 + rng.Intn(5))) // 10-50s buckets
			coarse := fine * int64(2+rng.Intn(5))     // 2-6x coarser
			opts := DefaultOptions()
			opts.MaxSamplesPerChunk = 1 + rng.Intn(40) // stress chunk splits
			db := MustOpen(opts)
			nSeries := 1 + rng.Intn(5)
			rawByKey := map[string][]model.Sample{}
			for i := 0; i < nSeries; i++ {
				ls := labels.FromStrings(labels.MetricName, "prop", "s", fmt.Sprintf("%d", i))
				ts := int64(rng.Intn(5000)) - 2500 // may start negative
				val := 0.0
				n := 50 + rng.Intn(400)
				for j := 0; j < n; j++ {
					ts += int64(rng.Intn(20_000)) + 1 // uneven intervals, gaps
					var v float64
					switch rng.Intn(10) {
					case 0:
						v = model.StaleNaN() // staleness marker
					case 1:
						val = 0 // counter reset
						v = val
					default:
						val += rng.Float64()*10 - 2 // may go negative
						v = val
					}
					if err := db.Append(ls, ts, v); err != nil {
						t.Fatal(err)
					}
					rawByKey[ls.String()] = append(rawByKey[ls.String()], model.Sample{T: ts, V: v})
				}
			}
			raw := cutMem(t, db)

			oneHop, err := DownsamplePersistentBlock("", raw, coarse)
			if err != nil {
				t.Fatal(err)
			}
			fineB, err := DownsamplePersistentBlock("", raw, fine)
			if err != nil {
				t.Fatal(err)
			}
			twoHop, err := DownsamplePersistentBlock("", fineB, coarse)
			if err != nil {
				t.Fatal(err)
			}

			check := func(b *PersistentBlock, what string, oracle func(key string) map[AggrType][]model.Sample) {
				for _, aggr := range []AggrType{AggrSum, AggrCount, AggrMin, AggrMax} {
					got, err := b.SelectAggr(-1<<60, 1<<60, 0, aggr, matchAll())
					if err != nil {
						t.Fatal(err)
					}
					for _, sr := range got {
						want := oracle(sr.Labels.String())[aggr]
						if !reflect.DeepEqual(sr.Samples, want) {
							t.Fatalf("%s %v %s: got %d pts, want %d (first diff around %+v vs %+v)",
								what, aggr, sr.Labels, len(sr.Samples), len(want), head(sr.Samples), head(want))
						}
					}
				}
				// Derived avg = sum/count, pointwise.
				avg, err := b.SelectAggr(-1<<60, 1<<60, 0, AggrAvg, matchAll())
				if err != nil {
					t.Fatal(err)
				}
				for _, sr := range avg {
					bk := oracle(sr.Labels.String())
					sum, cnt := bk[AggrSum], bk[AggrCount]
					if len(sr.Samples) != len(sum) {
						t.Fatalf("%s avg %s: %d pts, want %d", what, sr.Labels, len(sr.Samples), len(sum))
					}
					for i, smp := range sr.Samples {
						if want := sum[i].V / cnt[i].V; smp.V != want || smp.T != sum[i].T {
							t.Fatalf("%s avg %s[%d] = (%d,%g), want (%d,%g)",
								what, sr.Labels, i, smp.T, smp.V, sum[i].T, want)
						}
					}
				}
			}
			check(oneHop, "one-hop", func(k string) map[AggrType][]model.Sample {
				return rawBuckets(rawByKey[k], coarse)
			})
			check(fineB, "fine", func(k string) map[AggrType][]model.Sample {
				return rawBuckets(rawByKey[k], fine)
			})
			check(twoHop, "two-hop", func(k string) map[AggrType][]model.Sample {
				return aggrBuckets(rawBuckets(rawByKey[k], fine), coarse)
			})

			// Two-hop equals one-hop: bit-exact for count/min/max, up to
			// float associativity for sum (and thus avg).
			for _, aggr := range []AggrType{AggrSum, AggrCount, AggrMin, AggrMax, AggrAvg} {
				a, err := oneHop.SelectAggr(-1<<60, 1<<60, 0, aggr, matchAll())
				if err != nil {
					t.Fatal(err)
				}
				b, err := twoHop.SelectAggr(-1<<60, 1<<60, 0, aggr, matchAll())
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("aggr %v: series count %d vs %d", aggr, len(a), len(b))
				}
				approx := aggr == AggrSum || aggr == AggrAvg
				for i := range a {
					if !a[i].Labels.Equal(b[i].Labels) || len(a[i].Samples) != len(b[i].Samples) {
						t.Fatalf("aggr %v %s: shape mismatch", aggr, a[i].Labels)
					}
					for j := range a[i].Samples {
						x, y := a[i].Samples[j], b[i].Samples[j]
						if x.T != y.T {
							t.Fatalf("aggr %v %s[%d]: t %d vs %d", aggr, a[i].Labels, j, x.T, y.T)
						}
						if x.V == y.V {
							continue
						}
						if !approx || math.Abs(x.V-y.V) > 1e-9*math.Max(math.Abs(x.V), math.Abs(y.V)) {
							t.Fatalf("aggr %v %s[%d]: v %g vs %g", aggr, a[i].Labels, j, x.V, y.V)
						}
					}
				}
			}
		})
	}
}

func head(s []model.Sample) []model.Sample {
	if len(s) > 3 {
		return s[:3]
	}
	return s
}

// TestDownsampleStaleOnlySeries: a series holding nothing but staleness
// markers must vanish from the downsampled block entirely.
func TestDownsampleStaleOnlySeries(t *testing.T) {
	db := MustOpen(DefaultOptions())
	live := labels.FromStrings(labels.MetricName, "ds", "s", "live")
	stale := labels.FromStrings(labels.MetricName, "ds", "s", "stale")
	for i := int64(0); i < 10; i++ {
		if err := db.Append(live, i*1000, float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := db.Append(stale, i*1000, model.StaleNaN()); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := DownsamplePersistentBlock("", cutMem(t, db), 5000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.SelectAggr(-1<<60, 1<<60, 0, AggrCount, matchAll())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Labels.Get("s") != "live" {
		t.Fatalf("stale-only series survived downsampling: %d series", len(got))
	}
}
