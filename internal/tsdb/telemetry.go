package tsdb

import (
	"repro/internal/telemetry"
)

// tsdbMetrics is the head's hot-path instrumentation. The counters with a
// breakdown (out-of-order/duplicate/too-old) are maintained by the batch
// Appender — the path every scrape and remote-write commit takes; the
// appended-samples total is a CounterFunc over the same per-shard atomics
// AppendEpoch reads, so it covers the per-sample Append paths too and can
// never disagree with the querycache's watermark view of append progress.
type tsdbMetrics struct {
	oooAccepted     *telemetry.Counter
	duplicates      *telemetry.Counter
	tooOld          *telemetry.Counter
	commitSeconds   *telemetry.Histogram
	walFlushBytes   *telemetry.Counter
	walFlushSeconds *telemetry.Histogram
	walFsyncSeconds *telemetry.Histogram
}

// instrument registers the head's instruments on reg and attaches the
// hot-path metrics struct to the DB and its shard WALs. Called by Open when
// Options.Telemetry is set; the appenders and WAL writers nil-check
// db.metrics, so an uninstrumented head pays one branch per commit.
func (db *DB) instrument(reg *telemetry.Registry) {
	m := &tsdbMetrics{
		oooAccepted: reg.Counter("telemetry_tsdb_ooo_accepted_total",
			"Batch-committed samples accepted into the out-of-order window."),
		duplicates: reg.Counter("telemetry_tsdb_duplicates_total",
			"Batch-committed exact (series, timestamp) repeats silently skipped."),
		tooOld: reg.Counter("telemetry_tsdb_too_old_total",
			"Batch-committed samples rejected for falling outside the out-of-order window."),
		commitSeconds: reg.Histogram("telemetry_tsdb_commit_seconds",
			"Batch Appender commit latency (memory apply plus WAL flush across touched shards).",
			telemetry.IOBuckets),
		walFlushBytes: reg.Counter("telemetry_tsdb_wal_flush_bytes_total",
			"Journal bytes written (one buffered write + flush per shard per commit)."),
		walFlushSeconds: reg.Histogram("telemetry_tsdb_wal_flush_seconds",
			"Latency of one commit's journal write + flush on one shard.",
			telemetry.IOBuckets),
		walFsyncSeconds: reg.Histogram("telemetry_tsdb_wal_fsync_seconds",
			"Segment fsync latency (rotation, checkpoint and close).",
			telemetry.IOBuckets),
	}
	reg.CounterFunc("telemetry_tsdb_appended_samples_total",
		"Samples appended to the head (all paths; the counter behind AppendEpoch).",
		func() float64 { return float64(db.AppendEpoch()) })
	reg.GaugeFunc("telemetry_tsdb_head_series",
		"Live series across all head shards.",
		func() float64 { return float64(db.seriesCount()) })
	if db.opts.WALDir != "" {
		reg.CounterFunc("telemetry_tsdb_wal_records_total",
			"WAL records written since open, summed over shards.",
			func() float64 {
				ws, _ := db.WALStats()
				return float64(ws.Records)
			})
		reg.CounterFunc("telemetry_tsdb_wal_checkpoints_total",
			"Shard checkpoints completed since open.",
			func() float64 {
				ws, _ := db.WALStats()
				return float64(ws.Checkpoints)
			})
	}
	db.metrics = m
	for _, sh := range db.shards {
		if sh.wal != nil {
			sh.wal.metrics = m
		}
	}
}

// seriesCount sums live series over shards — a cheap map-length read per
// shard, unlike Stats() which walks every chunk.
func (db *DB) seriesCount() int {
	n := 0
	for _, sh := range db.shards {
		sh.mu.RLock()
		n += len(sh.byRef)
		sh.mu.RUnlock()
	}
	return n
}
