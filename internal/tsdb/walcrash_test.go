package tsdb

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/labels"
	"repro/internal/model"
)

// ---------------------------------------------------------------------------
// Test-local WAL decoder: an independent oracle for what a damaged WAL is
// supposed to recover to. It re-implements the record format — v1 AND v2 —
// from the specs in wal.go/walv2.go (it shares only the constants with the
// production decoder), applies the same semantics the head uses
// (out-of-order samples are skipped), and stops at the first incomplete or
// corrupt record of each file — everything before the damage is the
// durable prefix.
// ---------------------------------------------------------------------------

type oracleState struct {
	series  map[uint64]string // walRef -> labels key
	lastT   map[string]int64
	samples map[string][]model.Sample
	labels  map[string]labels.Labels
	// ooo switches the oracle to the out-of-order-window head semantics:
	// backwards samples are accepted, the first write at a (series,
	// timestamp) wins, and expected() emits each series sorted by time.
	// The write path never journals two samples at one (series, timestamp)
	// — the duplicate checks run before the WAL record is built — so the
	// dedup map only fires on checkpoint/segment overlap after a crash.
	ooo  bool
	seen map[string]map[int64]bool
}

func newOracle() *oracleState {
	return &oracleState{
		series:  map[uint64]string{},
		lastT:   map[string]int64{},
		samples: map[string][]model.Sample{},
		labels:  map[string]labels.Labels{},
		seen:    map[string]map[int64]bool{},
	}
}

func newOOOOracle() *oracleState {
	o := newOracle()
	o.ooo = true
	return o
}

// oracleGorilla is the oracle's own per-series Gorilla decode state for one
// v2 file; it works on raw value bits rather than floats.
type oracleGorilla struct {
	t        int64
	tDelta   int64
	vbits    uint64
	leading  int
	trailing int
	n        int
}

// oracleBits is an independently-written bit reader: one absolute bit
// cursor over the payload, no byte/offset split like the production reader.
type oracleBits struct {
	data []byte
	pos  int // absolute bit position
}

func (r *oracleBits) bit() (uint64, bool) {
	if r.pos >= 8*len(r.data) {
		return 0, false
	}
	b := (r.data[r.pos/8] >> (7 - r.pos%8)) & 1
	r.pos++
	return uint64(b), true
}

func (r *oracleBits) bits(n int) (uint64, bool) {
	var u uint64
	for i := 0; i < n; i++ {
		b, ok := r.bit()
		if !ok {
			return 0, false
		}
		u = u<<1 | b
	}
	return u, true
}

func (r *oracleBits) uvarint() (uint64, bool) {
	var x uint64
	var s uint
	for {
		b, ok := r.bits(8)
		if !ok || s > 63 {
			return 0, false
		}
		if b < 0x80 {
			return x | b<<s, true
		}
		x |= (b & 0x7f) << s
		s += 7
	}
}

func (r *oracleBits) varint() (int64, bool) {
	u, ok := r.uvarint()
	if !ok {
		return 0, false
	}
	v := int64(u >> 1)
	if u&1 == 1 {
		v = ^v
	}
	return v, true
}

// decodeFile applies one WAL file to the oracle, stopping (and reporting
// torn=true) at the first incomplete or CRC-corrupt record. The file's
// format is sniffed from the v2 magic, like the production replayer.
func (o *oracleState) decodeFile(t *testing.T, path string) (torn bool) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("oracle read %s: %v", path, err)
	}
	off, maxType := 0, walRecDeletes
	var gorilla map[uint64]*oracleGorilla
	if len(data) > 0 && data[0] == 'C' {
		// Possible v2 header.
		if len(data) < 5 || string(data[:4]) != "CWAL" {
			return true // strict prefix of the magic: torn at byte 0
		}
		if data[4] != 2 {
			t.Fatalf("oracle: unknown wal format version %d", data[4])
		}
		off, maxType = 5, walRecDeletesV2
		gorilla = map[uint64]*oracleGorilla{}
	}
	for off < len(data) {
		if len(data)-off < walHeaderSize {
			return true
		}
		typ := data[off]
		plen := int(binary.LittleEndian.Uint32(data[off+1 : off+5]))
		crc := binary.LittleEndian.Uint32(data[off+5 : off+9])
		if typ == 0 || typ > maxType || plen > walMaxPayload || len(data)-off-walHeaderSize < plen {
			return true
		}
		payload := data[off+walHeaderSize : off+walHeaderSize+plen]
		if crc32.Checksum(payload, walCRC) != crc {
			return true
		}
		switch typ {
		case walRecSeries, walRecSamples, walRecDeletes:
			o.apply(t, typ, payload)
		case walRecSeriesV2, walRecDeletesV2:
			raw, ok := oracleInflate(t, payload)
			if !ok {
				return true
			}
			if typ == walRecSeriesV2 {
				o.apply(t, walRecSeries, raw)
			} else {
				o.apply(t, walRecDeletes, raw)
			}
		case walRecSamplesV2:
			if !o.applySamplesV2(payload, gorilla) {
				return true
			}
		}
		off += walHeaderSize + plen
	}
	return false
}

// oracleInflate undoes the v2 block compression (1-byte flag, then raw or
// DEFLATE bytes).
func oracleInflate(t *testing.T, payload []byte) ([]byte, bool) {
	t.Helper()
	if len(payload) == 0 {
		return nil, false
	}
	switch payload[0] {
	case 0:
		return payload[1:], true
	case 1:
		out, err := io.ReadAll(flate.NewReader(bytes.NewReader(payload[1:])))
		if err != nil {
			return nil, false
		}
		return out, true
	default:
		return nil, false
	}
}

// applySamplesV2 decodes one Gorilla samples record with the oracle's own
// reader and applies each sample. Returns false on any decode failure
// (treated as a torn record by the caller).
func (o *oracleState) applySamplesV2(payload []byte, gorilla map[uint64]*oracleGorilla) bool {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return false
	}
	r := &oracleBits{data: payload[n:]}
	lastRef := uint64(0)
	for i := uint64(0); i < count; i++ {
		// Ref delta buckets: 0 -> +1, 10 -> 0, 11 -> zigzag varint.
		b1, ok := r.bit()
		if !ok {
			return false
		}
		ref := lastRef
		if b1 == 0 {
			ref = lastRef + 1
		} else {
			b2, ok := r.bit()
			if !ok {
				return false
			}
			if b2 == 1 {
				zz, ok := r.uvarint()
				if !ok {
					return false
				}
				d := int64(zz >> 1)
				if zz&1 == 1 {
					d = ^d
				}
				ref = uint64(int64(lastRef) + d)
			}
		}
		lastRef = ref
		g := gorilla[ref]
		if g == nil {
			g = &oracleGorilla{leading: -1}
			gorilla[ref] = g
		}
		var tv int64
		var vbits uint64
		switch g.n {
		case 0:
			tv, ok = r.varint()
			if !ok {
				return false
			}
			vbits, ok = r.bits(64)
			if !ok {
				return false
			}
		case 1:
			td, ok2 := r.uvarint()
			if !ok2 {
				return false
			}
			g.tDelta = int64(td)
			tv = g.t + g.tDelta
			vbits, ok = o.readOracleXOR(r, g)
			if !ok {
				return false
			}
		default:
			dod, ok2 := readOracleDOD(r)
			if !ok2 {
				return false
			}
			g.tDelta += dod
			tv = g.t + g.tDelta
			vbits, ok = o.readOracleXOR(r, g)
			if !ok {
				return false
			}
		}
		g.t, g.vbits = tv, vbits
		g.n++
		o.applySample(ref, tv, math.Float64frombits(vbits))
	}
	return true
}

func readOracleDOD(r *oracleBits) (int64, bool) {
	// Read the unary-ish prefix: up to four 1-bits.
	ones := 0
	for ones < 4 {
		b, ok := r.bit()
		if !ok {
			return 0, false
		}
		if b == 0 {
			break
		}
		ones++
	}
	var sz int
	switch ones {
	case 0:
		return 0, true
	case 1:
		sz = 14
	case 2:
		sz = 17
	case 3:
		sz = 20
	case 4:
		u, ok := r.bits(64)
		if !ok {
			return 0, false
		}
		return int64(u), true
	}
	u, ok := r.bits(sz)
	if !ok {
		return 0, false
	}
	if u > 1<<(sz-1) {
		u -= 1 << sz
	}
	return int64(u), true
}

func (o *oracleState) readOracleXOR(r *oracleBits, g *oracleGorilla) (uint64, bool) {
	ctrl, ok := r.bit()
	if !ok {
		return 0, false
	}
	if ctrl == 0 {
		return g.vbits, true
	}
	newWin, ok := r.bit()
	if !ok {
		return 0, false
	}
	if newWin == 1 {
		l, ok := r.bits(5)
		if !ok {
			return 0, false
		}
		sig, ok := r.bits(6)
		if !ok {
			return 0, false
		}
		if sig == 0 {
			sig = 64
		}
		g.leading = int(l)
		g.trailing = 64 - int(l) - int(sig)
	}
	if g.leading < 0 {
		return 0, false // window bits before any window was established
	}
	sigbits := 64 - g.leading - g.trailing
	u, ok := r.bits(sigbits)
	if !ok {
		return 0, false
	}
	return g.vbits ^ (u << g.trailing), true
}

// applySample applies one decoded sample with the head's semantics
// (unknown refs dropped, out-of-order skipped).
func (o *oracleState) applySample(ref uint64, tv int64, v float64) {
	key, ok := o.series[ref]
	if !ok {
		return
	}
	if o.ooo {
		m := o.seen[key]
		if m == nil {
			m = map[int64]bool{}
			o.seen[key] = m
		}
		if m[tv] {
			return // duplicate (checkpoint overlap): first write wins
		}
		m[tv] = true
		o.samples[key] = append(o.samples[key], model.Sample{T: tv, V: v})
		return
	}
	if last, seen := o.lastT[key]; seen && tv <= last {
		return // out-of-order: the head skips these too
	}
	o.lastT[key] = tv
	o.samples[key] = append(o.samples[key], model.Sample{T: tv, V: v})
}

func (o *oracleState) apply(t *testing.T, typ byte, p []byte) {
	t.Helper()
	u := func() uint64 {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			t.Fatal("oracle: bad uvarint in whole record")
		}
		p = p[n:]
		return v
	}
	switch typ {
	case walRecSeries:
		count := u()
		for i := uint64(0); i < count; i++ {
			ref := u()
			nl := u()
			lset := make(labels.Labels, 0, nl)
			for j := uint64(0); j < nl; j++ {
				ln := u()
				name := string(p[:ln])
				p = p[ln:]
				lv := u()
				value := string(p[:lv])
				p = p[lv:]
				lset = append(lset, labels.Label{Name: name, Value: value})
			}
			key := lset.String()
			o.series[ref] = key
			if _, ok := o.labels[key]; !ok {
				o.labels[key] = lset
			}
		}
	case walRecSamples:
		count := u()
		for i := uint64(0); i < count; i++ {
			ref := u()
			tv, n := binary.Varint(p)
			if n <= 0 {
				t.Fatal("oracle: bad varint in whole record")
			}
			p = p[n:]
			v := math.Float64frombits(binary.LittleEndian.Uint64(p[:8]))
			p = p[8:]
			o.applySample(ref, tv, v)
		}
	case walRecDeletes:
		count := u()
		for i := uint64(0); i < count; i++ {
			ref := u()
			if key, ok := o.series[ref]; ok {
				delete(o.samples, key)
				delete(o.lastT, key)
				delete(o.labels, key)
				delete(o.series, ref)
			}
		}
	}
}

// expected returns the oracle's series sorted by labels, like Select. In
// out-of-order mode each series' samples are additionally sorted by time —
// the head's read path merges its ooo buffer the same way.
func (o *oracleState) expected() []model.Series {
	out := make([]model.Series, 0, len(o.samples))
	for key, smps := range o.samples {
		if o.ooo {
			sort.Slice(smps, func(i, j int) bool { return smps[i].T < smps[j].T })
		}
		out = append(out, model.Series{Labels: o.labels[key], Samples: smps})
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out
}

// ---------------------------------------------------------------------------
// Harness helpers
// ---------------------------------------------------------------------------

func matchAll() *labels.Matcher {
	return labels.MustMatcher(labels.MatchRegexp, labels.MetricName, ".*")
}

func selectAll(t *testing.T, db *DB) []model.Series {
	t.Helper()
	out, err := db.Select(-(int64(1) << 62), int64(1)<<62, matchAll())
	if err != nil {
		t.Fatalf("select all: %v", err)
	}
	return out
}

// crashSeries builds the label set of worker series i.
func crashSeries(i int) labels.Labels {
	return labels.FromStrings(labels.MetricName, "wal_crash_metric",
		"job", "harness", "series", fmt.Sprintf("s%03d", i))
}

// fillWAL appends nBatches scrape-shaped batches of nSeries samples each
// through the batch Appender (the scrape commit path) plus a few direct
// Appends, then closes the head. Returns the final in-memory contents.
func fillWAL(t *testing.T, dir string, shards, nSeries, nBatches int, segSize int64, compress bool) []model.Series {
	t.Helper()
	db, err := Open(Options{Shards: shards, WALDir: dir, WALSegmentSize: segSize, WALCompression: compress})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	rng := rand.New(rand.NewSource(0xCEE5))
	for b := 0; b < nBatches; b++ {
		app := db.Appender()
		for s := 0; s < nSeries; s++ {
			app.Add(crashSeries(s), int64(b)*1000+int64(s), rng.Float64()*100)
		}
		if _, err := app.Commit(); err != nil {
			t.Fatalf("commit batch %d: %v", b, err)
		}
	}
	// A couple of direct Appends: the non-batch write path must journal too.
	direct := labels.FromStrings(labels.MetricName, "wal_crash_direct", "job", "harness")
	for i := 0; i < 10; i++ {
		if err := db.Append(direct, int64(nBatches)*1000+int64(i), float64(i)); err != nil {
			t.Fatalf("direct append: %v", err)
		}
	}
	full := selectAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return full
}

// walFiles lists every WAL file of every shard in replay order:
// per shard directory (sorted), checkpoint first, then segments ascending.
func walFiles(t *testing.T, dir string) []string {
	t.Helper()
	shardDirs, err := filepath.Glob(filepath.Join(dir, "shard-*"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(shardDirs)
	var out []string
	for _, sd := range shardDirs {
		if cp := filepath.Join(sd, walCheckpointFile); fileExistsT(cp) {
			out = append(out, cp)
		}
		segs, _ := filepath.Glob(filepath.Join(sd, "*.wal"))
		sort.Strings(segs)
		out = append(out, segs...)
	}
	return out
}

func fileExistsT(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy %s -> %s: %v", src, dst, err)
	}
}

func assertSeriesEqual(t *testing.T, got, want []model.Series, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d series, want %d", what, len(got), len(want))
	}
	for i := range want {
		if !got[i].Labels.Equal(want[i].Labels) {
			t.Fatalf("%s: series %d labels %s != %s", what, i, got[i].Labels, want[i].Labels)
		}
		if !reflect.DeepEqual(got[i].Samples, want[i].Samples) {
			t.Fatalf("%s: series %s: %d samples vs %d, or values diverge",
				what, got[i].Labels, len(got[i].Samples), len(want[i].Samples))
		}
	}
}

// assertPrefix checks every recovered series' samples are a prefix of the
// full series — recovery may lose an un-synced tail, never reorder or
// invent.
func assertPrefix(t *testing.T, got, full []model.Series, what string) {
	t.Helper()
	byKey := map[string][]model.Sample{}
	for _, s := range full {
		byKey[s.Labels.String()] = s.Samples
	}
	for _, s := range got {
		fullSamples, ok := byKey[s.Labels.String()]
		if !ok {
			t.Fatalf("%s: recovered unknown series %s", what, s.Labels)
		}
		if len(s.Samples) > len(fullSamples) {
			t.Fatalf("%s: series %s recovered %d samples, more than the %d ever written",
				what, s.Labels, len(s.Samples), len(fullSamples))
		}
		if !reflect.DeepEqual(s.Samples, fullSamples[:len(s.Samples)]) {
			t.Fatalf("%s: series %s: recovered samples are not a prefix of the written ones", what, s.Labels)
		}
	}
}

// ---------------------------------------------------------------------------
// Kill-at-any-byte crash recovery
// ---------------------------------------------------------------------------

// TestWALCrashRecoveryAtRandomOffsets is the property test at the core of
// this suite: write a WAL, hard-stop it at an arbitrary byte offset
// (truncate the file mid-record, drop everything after — exactly what a
// crash before the tail reached disk looks like), reopen, and require the
// recovered head to be sample-identical to an independent decoder replaying
// the same durable prefix. The head must also keep working: appends after
// recovery, and a second clean reopen, must see consistent data. The whole
// property runs in both formats: a cut mid-way through a v2 compressed
// block must truncate to the last whole record exactly like v1.
func TestWALCrashRecoveryAtRandomOffsets(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			baseDir := t.TempDir()
			full := fillWAL(t, filepath.Join(baseDir, "wal"), 1, 8, 60, 2048, compress)

			files := walFiles(t, filepath.Join(baseDir, "wal"))
			if len(files) < 3 {
				t.Fatalf("expected multiple segments (rotation), got %d files", len(files))
			}
			var total int64
			sizes := make([]int64, len(files))
			for i, f := range files {
				st, err := os.Stat(f)
				if err != nil {
					t.Fatal(err)
				}
				sizes[i] = st.Size()
				total += st.Size()
			}

			rng := rand.New(rand.NewSource(0xBADC0FFE))
			trials := 25
			if testing.Short() {
				trials = 6
			}
			for trial := 0; trial < trials; trial++ {
				offset := rng.Int63n(total + 1) // total itself = clean shutdown
				t.Run(fmt.Sprintf("offset=%d", offset), func(t *testing.T) {
					scratch := t.TempDir()
					crashed := filepath.Join(scratch, "wal")
					copyDir(t, filepath.Join(baseDir, "wal"), crashed)

					// Hard-stop: truncate the file holding the offset, delete every
					// later file (those bytes were never written).
					cut := offset
					crashedFiles := walFiles(t, crashed)
					for i, f := range crashedFiles {
						if cut > sizes[i] {
							cut -= sizes[i]
							continue
						}
						if err := os.Truncate(f, cut); err != nil {
							t.Fatal(err)
						}
						for _, later := range crashedFiles[i+1:] {
							if err := os.Remove(later); err != nil {
								t.Fatal(err)
							}
						}
						break
					}

					// Oracle: decode the damaged prefix independently.
					oracle := newOracle()
					for _, f := range walFiles(t, crashed) {
						if oracle.decodeFile(t, f) {
							break // torn: nothing after this file survives
						}
					}
					want := oracle.expected()

					db, err := Open(Options{Shards: 1, WALDir: crashed, WALSegmentSize: 2048, WALCompression: compress})
					if err != nil {
						t.Fatalf("reopen after crash at %d: %v", offset, err)
					}
					assertSeriesEqual(t, selectAll(t, db), want, "recovered head vs oracle")
					assertPrefix(t, selectAll(t, db), full, "recovered head vs full history")

					// The repaired head must accept new writes and survive a second
					// reopen without losing them.
					post := labels.FromStrings(labels.MetricName, "wal_post_crash", "trial", fmt.Sprint(trial))
					if err := db.Append(post, 1<<50, 42); err != nil {
						t.Fatalf("append after recovery: %v", err)
					}
					afterAppend := selectAll(t, db)
					if err := db.Close(); err != nil {
						t.Fatal(err)
					}
					db2, err := Open(Options{Shards: 1, WALDir: crashed, WALSegmentSize: 2048, WALCompression: compress})
					if err != nil {
						t.Fatalf("second reopen: %v", err)
					}
					assertSeriesEqual(t, selectAll(t, db2), afterAppend, "second reopen")
					if err := db2.Close(); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}

// TestWALCrashRecoveryShardedPrefix runs the crash on a 16-shard head:
// damage to one shard's journal must cost at most that shard's un-synced
// tail — every recovered series is a prefix of what was written, and series
// of undamaged shards are complete.
func TestWALCrashRecoveryShardedPrefix(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			testWALCrashRecoveryShardedPrefix(t, compress)
		})
	}
}

func testWALCrashRecoveryShardedPrefix(t *testing.T, compress bool) {
	baseDir := t.TempDir()
	walDir := filepath.Join(baseDir, "wal")
	full := fillWAL(t, walDir, 16, 64, 30, 1024, compress)

	rng := rand.New(rand.NewSource(42))
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			scratch := t.TempDir()
			crashed := filepath.Join(scratch, "wal")
			copyDir(t, walDir, crashed)

			// Damage one random shard: truncate one of its files mid-record
			// and drop that shard's later segments.
			shardDirs, _ := filepath.Glob(filepath.Join(crashed, "shard-*"))
			sort.Strings(shardDirs)
			victim := shardDirs[rng.Intn(len(shardDirs))]
			segs, _ := filepath.Glob(filepath.Join(victim, "*.wal"))
			sort.Strings(segs)
			if len(segs) == 0 {
				t.Skip("victim shard has no segments")
			}
			vi := rng.Intn(len(segs))
			st, err := os.Stat(segs[vi])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(segs[vi], rng.Int63n(st.Size()+1)); err != nil {
				t.Fatal(err)
			}
			for _, later := range segs[vi+1:] {
				if err := os.Remove(later); err != nil {
					t.Fatal(err)
				}
			}

			db, err := Open(Options{Shards: 16, WALDir: crashed, WALSegmentSize: 1024, WALCompression: compress})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer db.Close()
			got := selectAll(t, db)
			assertPrefix(t, got, full, "sharded crash")

			// All series outside the damaged shard must be complete.
			fullByKey := map[string][]model.Sample{}
			for _, s := range full {
				fullByKey[s.Labels.String()] = s.Samples
			}
			victimIdx := shardDirIndex(victim)
			complete := 0
			for _, s := range got {
				if int(s.Labels.Hash()&db.mask) == victimIdx {
					continue
				}
				if len(s.Samples) != len(fullByKey[s.Labels.String()]) {
					t.Fatalf("series %s outside damaged shard %d lost samples: %d vs %d",
						s.Labels, victimIdx, len(s.Samples), len(fullByKey[s.Labels.String()]))
				}
				complete++
			}
			if complete == 0 {
				t.Fatal("no undamaged-shard series found; test setup is wrong")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Bit-flip corruption
// ---------------------------------------------------------------------------

// TestWALCorruptRecordCRC flips one payload byte of a record in the middle
// of the journal. Recovery must keep every record before the corrupt one,
// drop the rest, and repair the file so the next open replays cleanly. In
// v2 mode the flipped byte lands inside a compressed payload — the CRC
// must catch it before any decompression or Gorilla decode runs.
func TestWALCorruptRecordCRC(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			testWALCorruptRecordCRC(t, compress)
		})
	}
}

func testWALCorruptRecordCRC(t *testing.T, compress bool) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	// One big segment so the corrupt record has whole records after it.
	fillWAL(t, walDir, 1, 4, 40, 1<<20, compress)

	files := walFiles(t, walDir)
	if len(files) != 1 {
		t.Fatalf("want a single segment, got %d files", len(files))
	}
	seg := files[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	// Walk the record stream to find each record's payload bounds.
	hdr := 0
	if compress {
		hdr = walFileHeaderLen
	}
	type recBounds struct{ payloadStart, payloadLen int }
	var recs []recBounds
	for off := hdr; off+walHeaderSize <= len(data); {
		plen := int(binary.LittleEndian.Uint32(data[off+1 : off+5]))
		recs = append(recs, recBounds{off + walHeaderSize, plen})
		off += walHeaderSize + plen
	}
	if len(recs) < 10 {
		t.Fatalf("want a deep record stream, got %d records", len(recs))
	}
	victim := recs[len(recs)/2]
	data[victim.payloadStart+victim.payloadLen/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	oracle := newOracle()
	if !oracle.decodeFile(t, seg) {
		t.Fatal("oracle did not detect the flipped CRC")
	}
	want := oracle.expected()
	if len(want) == 0 {
		t.Fatal("oracle recovered nothing; corruption landed too early for a meaningful test")
	}

	db, err := Open(Options{Shards: 1, WALDir: walDir, WALSegmentSize: 1 << 20, WALCompression: compress})
	if err != nil {
		t.Fatalf("reopen over corrupt record: %v", err)
	}
	assertSeriesEqual(t, selectAll(t, db), want, "corrupt-CRC recovery")
	ws, ok := db.WALStats()
	if !ok || ws.Replay.TornRepairs != 1 {
		t.Fatalf("want exactly 1 torn-tail repair reported, got %+v ok=%v", ws.Replay, ok)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The repair must be idempotent: a second open finds a clean journal.
	db2, err := Open(Options{Shards: 1, WALDir: walDir, WALSegmentSize: 1 << 20, WALCompression: compress})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	assertSeriesEqual(t, selectAll(t, db2), want, "reopen after repair")
	ws2, _ := db2.WALStats()
	if ws2.Replay.TornRepairs != 0 {
		t.Fatalf("second open still repairing: %+v", ws2.Replay)
	}
}

// TestWALCorruptSegmentDropsLaterSegments: a CRC failure mid-chain ends the
// shard's recovery there — later segments are causally past the damage and
// must be removed, so a second open cannot resurrect records the first
// recovery declared dead.
func TestWALCorruptSegmentDropsLaterSegments(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			testWALCorruptSegmentDropsLaterSegments(t, compress)
		})
	}
}

func testWALCorruptSegmentDropsLaterSegments(t *testing.T, compress bool) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	fillWAL(t, walDir, 1, 8, 60, 2048, compress) // small segments: several files

	segs, _ := filepath.Glob(filepath.Join(walDir, "shard-0000", "*.wal"))
	sort.Strings(segs)
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	// Flip a byte early in the middle segment's first record payload.
	mid := segs[len(segs)/2]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	hdr := 0
	if compress {
		hdr = walFileHeaderLen
	}
	data[hdr+walHeaderSize+2] ^= 0x01
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	oracle := newOracle()
	for _, f := range walFiles(t, walDir) {
		if oracle.decodeFile(t, f) {
			break
		}
	}
	db, err := Open(Options{Shards: 1, WALDir: walDir, WALSegmentSize: 2048, WALCompression: compress})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	assertSeriesEqual(t, selectAll(t, db), oracle.expected(), "mid-chain corruption")
	for _, later := range segs[len(segs)/2+1:] {
		if fileExistsT(later) {
			t.Fatalf("segment %s past the corruption survived recovery", later)
		}
	}
}

// TestWALCorruptCheckpointKeepsSegments: a damaged checkpoint costs only the
// checkpoint's lost tail — the intact segments journalled after it must
// still replay, not be deleted alongside it.
func TestWALCorruptCheckpointKeepsSegments(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			testWALCorruptCheckpointKeepsSegments(t, compress)
		})
	}
}

func testWALCorruptCheckpointKeepsSegments(t *testing.T, compress bool) {
	walDir := filepath.Join(t.TempDir(), "wal")
	db, err := Open(Options{Shards: 1, WALDir: walDir, WALSegmentSize: 1 << 20, WALCompression: compress})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 -> checkpoint, phase 2 -> segments after the checkpoint.
	ls := labels.FromStrings(labels.MetricName, "wal_ckpt_corrupt", "inst", "a")
	for i := int64(0); i < 50; i++ {
		if err := db.Append(ls, i*1000, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CheckpointWAL(); err != nil {
		t.Fatal(err)
	}
	for i := int64(50); i < 100; i++ {
		if err := db.Append(ls, i*1000, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the checkpoint's final bytes (its "tail").
	cp := filepath.Join(walDir, "shard-0000", walCheckpointFile)
	data, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-4] ^= 0xFF
	if err := os.WriteFile(cp, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Shards: 1, WALDir: walDir, WALSegmentSize: 1 << 20, WALCompression: compress})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ws, _ := re.WALStats()
	if ws.Replay.TornRepairs != 1 {
		t.Fatalf("want 1 torn repair (the checkpoint), got %+v", ws.Replay)
	}
	got := selectAll(t, re)
	// The checkpoint's samples record was damaged, but the series
	// registration and the post-checkpoint segments survive: samples
	// 50..99 must all be present.
	if len(got) != 1 {
		t.Fatalf("got %d series, want 1", len(got))
	}
	samples := got[0].Samples
	if len(samples) < 50 {
		t.Fatalf("post-checkpoint segments were lost with the checkpoint: %d samples recovered", len(samples))
	}
	if last := samples[len(samples)-1]; last.T != 99_000 {
		t.Fatalf("latest acknowledged sample missing: last t=%d, want 99000", last.T)
	}
}

// TestWALRebuildCrashLeftovers: a crash during a shard-count rebuild leaves
// either an unpublished staging dir (garbage, discarded) or a published
// rebuild dir (complete new layout, swapped in) — in both cases the next
// open recovers every sample.
func TestWALRebuildCrashLeftovers(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	db, err := Open(Options{Shards: 4, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	replayFill(t, db, 20, 10)
	live := selectAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Unpublished staging dir: must be ignored and removed.
	tmpRoot := filepath.Join(walDir, walRebuildTmp)
	if err := os.MkdirAll(filepath.Join(tmpRoot, "shard-0000"), 0o755); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Shards: 4, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	assertSeriesEqual(t, selectAll(t, re), live, "open over stale rebuild.tmp")
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if fileExistsT(tmpRoot) {
		t.Fatal("stale rebuild.tmp survived open")
	}

	// Published rebuild dir: simulate the crash window right after the
	// publish rename of a 4->2 rebuild by building one from a real rebuild
	// run, then interrupting the swap at its very start.
	re2, err := Open(Options{Shards: 2, WALDir: walDir}) // performs a real rebuild
	if err != nil {
		t.Fatal(err)
	}
	assertSeriesEqual(t, selectAll(t, re2), live, "4->2 rebuild")
	if err := re2.Close(); err != nil {
		t.Fatal(err)
	}
	// Move the new layout back into a published rebuild dir, as if the
	// crash hit before any shard dir had been swapped in.
	rebuilt := filepath.Join(walDir, walRebuildDir)
	if err := os.MkdirAll(rebuilt, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"shard-0000", "shard-0001", walMetaFile} {
		if err := os.Rename(filepath.Join(walDir, name), filepath.Join(rebuilt, name)); err != nil {
			t.Fatal(err)
		}
	}
	re3, err := Open(Options{Shards: 2, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer re3.Close()
	assertSeriesEqual(t, selectAll(t, re3), live, "open completes interrupted swap")
	if fileExistsT(rebuilt) {
		t.Fatal("published rebuild dir survived the swap")
	}
}

// ---------------------------------------------------------------------------
// Checkpoint durability
// ---------------------------------------------------------------------------

// TestWALCheckpointNeverLosesAcknowledgedWrites exercises the
// Truncate-triggered checkpoint: after a checkpoint (fsynced snapshot, old
// segments dropped) and more appends, a reopen must reconstruct exactly the
// live head — nothing acknowledged before the close may be missing.
func TestWALCheckpointNeverLosesAcknowledgedWrites(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			testWALCheckpointNeverLosesAcknowledgedWrites(t, compress)
		})
	}
}

func testWALCheckpointNeverLosesAcknowledgedWrites(t *testing.T, compress bool) {
	walDir := filepath.Join(t.TempDir(), "wal")
	// v2 journals the same commits in ~4x fewer bytes; shrink the segment
	// limit so the test still rotates several times before the checkpoint.
	segSize := int64(1024)
	if compress {
		segSize = 256
	}
	db, err := Open(Options{Shards: 4, WALDir: walDir, WALSegmentSize: segSize, WALCompression: compress})
	if err != nil {
		t.Fatal(err)
	}
	appendBatch := func(b int) {
		app := db.Appender()
		for s := 0; s < 16; s++ {
			app.Add(crashSeries(s), int64(b)*1000+int64(s), float64(b*s))
		}
		if _, err := app.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for b := 0; b < 30; b++ {
		appendBatch(b)
	}
	countSegs := func() int {
		segs, err := filepath.Glob(filepath.Join(walDir, "shard-*", "*.wal"))
		if err != nil {
			t.Fatal(err)
		}
		return len(segs)
	}
	before := countSegs()
	if before <= 4 {
		t.Fatalf("test setup: want rotation before checkpoint, got %d segments", before)
	}
	db.Truncate(15_000) // prunes old chunks AND checkpoints every shard
	if err := db.WALErr(); err != nil {
		t.Fatalf("checkpoint failed: %v", err)
	}
	// Every shard drops its history into the snapshot and keeps exactly one
	// fresh segment.
	if after := countSegs(); after != 4 {
		t.Fatalf("checkpoint did not bound the WAL: %d segments before, %d after (want 4)", before, after)
	}
	ws, _ := db.WALStats()
	if ws.Checkpoints != 4 {
		t.Fatalf("want 4 shard checkpoints, got %d", ws.Checkpoints)
	}
	for b := 30; b < 40; b++ {
		appendBatch(b)
	}
	live := selectAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Shards: 4, WALDir: walDir, WALSegmentSize: segSize, WALCompression: compress})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertSeriesEqual(t, selectAll(t, re), live, "reopen after checkpoint")
}

// TestWALDeleteSeriesDurable: DeleteSeries journals tombstones (block-
// compressed in v2), so a reopened head must not resurrect deleted series.
func TestWALDeleteSeriesDurable(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			testWALDeleteSeriesDurable(t, compress)
		})
	}
}

func testWALDeleteSeriesDurable(t *testing.T, compress bool) {
	walDir := filepath.Join(t.TempDir(), "wal")
	db, err := Open(Options{Shards: 2, WALDir: walDir, WALCompression: compress})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		for i := int64(0); i < 20; i++ {
			if err := db.Append(crashSeries(s), i*500, float64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	n := db.DeleteSeries(labels.MustMatcher(labels.MatchRegexp, "series", "s00[0-3]"))
	if n != 4 {
		t.Fatalf("deleted %d series, want 4", n)
	}
	if err := db.WALErr(); err != nil {
		t.Fatalf("tombstone write failed: %v", err)
	}
	live := selectAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Shards: 2, WALDir: walDir, WALCompression: compress})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := selectAll(t, re)
	assertSeriesEqual(t, got, live, "reopen after delete")
	for _, s := range got {
		if v := s.Labels.Get("series"); v == "s000" || v == "s001" || v == "s002" || v == "s003" {
			t.Fatalf("deleted series %s resurrected by replay", s.Labels)
		}
	}
}

// ---------------------------------------------------------------------------
// Out-of-order window crash harness
// ---------------------------------------------------------------------------

// fillWALOOO drives a head with OutOfOrderWindow set through a
// remote-write-shaped workload: batch commits where roughly a third of the
// samples land backwards (inside the window), plus resends of earlier
// timestamps that must dedup. Returns the final in-memory contents.
func fillWALOOO(t *testing.T, dir string, window int64, nSeries, nBatches int, segSize int64, compress bool) []model.Series {
	t.Helper()
	db, err := Open(Options{
		Shards: 1, WALDir: dir, WALSegmentSize: segSize,
		WALCompression: compress, OutOfOrderWindow: window,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	rng := rand.New(rand.NewSource(0x00CAFE))
	base := int64(1_000_000)
	for b := 0; b < nBatches; b++ {
		app := db.Appender()
		for s := 0; s < nSeries; s++ {
			ts := base + int64(b)*1000 + int64(s)
			if b > 2 {
				switch rng.Intn(3) {
				case 0:
					// Backwards inside the window.
					ts -= int64(rng.Intn(int(window / 2)))
				case 1:
					// Resend of an earlier batch's exact timestamp
					// (duplicate; must not journal a second copy).
					ts = base + int64(b-1-rng.Intn(2))*1000 + int64(s)
				}
			}
			app.Add(crashSeries(s), ts, rng.Float64()*100)
		}
		if _, err := app.Commit(); err != nil {
			t.Fatalf("commit batch %d: %v", b, err)
		}
	}
	full := selectAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return full
}

// TestWALOOOCrashRecoveryAtRandomOffsets is the kill-at-any-byte property
// for the out-of-order window: journals holding accepted backwards samples
// must replay byte-exact against the independent oracle in both formats —
// v1 (varint timestamps) and v2 (Gorilla, whose delta encoding must
// round-trip negative deltas losslessly).
func TestWALOOOCrashRecoveryAtRandomOffsets(t *testing.T) {
	const window = int64(30_000)
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			baseDir := t.TempDir()
			full := fillWALOOO(t, filepath.Join(baseDir, "wal"), window, 6, 200, 2048, compress)

			files := walFiles(t, filepath.Join(baseDir, "wal"))
			if len(files) < 3 {
				t.Fatalf("expected multiple segments (rotation), got %d files", len(files))
			}
			var total int64
			sizes := make([]int64, len(files))
			for i, f := range files {
				st, err := os.Stat(f)
				if err != nil {
					t.Fatal(err)
				}
				sizes[i] = st.Size()
				total += st.Size()
			}

			rng := rand.New(rand.NewSource(0xFADEBEE))
			trials := 25
			if testing.Short() {
				trials = 6
			}
			for trial := 0; trial < trials; trial++ {
				offset := rng.Int63n(total + 1) // total itself = clean shutdown
				t.Run(fmt.Sprintf("offset=%d", offset), func(t *testing.T) {
					scratch := t.TempDir()
					crashed := filepath.Join(scratch, "wal")
					copyDir(t, filepath.Join(baseDir, "wal"), crashed)

					cut := offset
					crashedFiles := walFiles(t, crashed)
					for i, f := range crashedFiles {
						if cut > sizes[i] {
							cut -= sizes[i]
							continue
						}
						if err := os.Truncate(f, cut); err != nil {
							t.Fatal(err)
						}
						for _, later := range crashedFiles[i+1:] {
							if err := os.Remove(later); err != nil {
								t.Fatal(err)
							}
						}
						break
					}

					oracle := newOOOOracle()
					for _, f := range walFiles(t, crashed) {
						if oracle.decodeFile(t, f) {
							break // torn: nothing after this file survives
						}
					}
					want := oracle.expected()

					db, err := Open(Options{
						Shards: 1, WALDir: crashed, WALSegmentSize: 2048,
						WALCompression: compress, OutOfOrderWindow: window,
					})
					if err != nil {
						t.Fatalf("reopen after crash at %d: %v", offset, err)
					}
					got := selectAll(t, db)
					assertSeriesEqual(t, got, want, "recovered ooo head vs oracle")
					// Every recovered sample must exist in the full history
					// with the same value (crash loses suffixes, never
					// invents or reorders data).
					fullByKey := map[string]map[int64]float64{}
					for _, s := range full {
						m := map[int64]float64{}
						for _, smp := range s.Samples {
							m[smp.T] = smp.V
						}
						fullByKey[s.Labels.String()] = m
					}
					for _, s := range got {
						m := fullByKey[s.Labels.String()]
						if m == nil {
							t.Fatalf("recovered unknown series %s", s.Labels)
						}
						for _, smp := range s.Samples {
							if v, ok := m[smp.T]; !ok || v != smp.V {
								t.Fatalf("recovered sample %s t=%d v=%g not in full history",
									s.Labels, smp.T, smp.V)
							}
						}
					}

					// The repaired head must keep accepting writes — in
					// order and backwards — and survive a second reopen.
					post := crashSeries(0)
					if err := db.Append(post, 1<<50, 42); err != nil {
						t.Fatalf("append after recovery: %v", err)
					}
					if err := db.Append(post, 1<<50-5, 43); err != nil {
						t.Fatalf("ooo append after recovery: %v", err)
					}
					afterAppend := selectAll(t, db)
					if err := db.Close(); err != nil {
						t.Fatal(err)
					}
					db2, err := Open(Options{
						Shards: 1, WALDir: crashed, WALSegmentSize: 2048,
						WALCompression: compress, OutOfOrderWindow: window,
					})
					if err != nil {
						t.Fatalf("second reopen: %v", err)
					}
					assertSeriesEqual(t, selectAll(t, db2), afterAppend, "second reopen")
					if err := db2.Close(); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}
