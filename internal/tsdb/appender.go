package tsdb

import (
	"errors"
	"time"

	"repro/internal/labels"
)

// Appender accumulates samples for many series and routes them to their
// shards on Commit. Grouping by shard lets a whole batch resolve its series
// with one read-lock pass per shard (plus one write-lock pass for series
// seen for the first time) instead of a lock round-trip per sample, which
// is the shape of a scrape: hundreds of samples, a handful of shards.
//
// An Appender is not safe for concurrent use; create one per goroutine.
type Appender struct {
	db        *DB
	byShard   [][]pendingSample
	count     int
	lastStats CommitStats
}

// CommitStats breaks down what happened to the samples of the last Commit.
// Appended counts samples applied in order; OOOAccepted counts samples that
// landed in the out-of-order buffer (always 0 with the window off);
// Duplicates counts exact (series, timestamp) repeats silently skipped under
// the window; TooOld counts samples rejected for falling outside it.
type CommitStats struct {
	Appended    int
	OOOAccepted int
	Duplicates  int
	TooOld      int
}

type pendingSample struct {
	hash uint64
	lset labels.Labels
	t    int64
	v    float64
}

// Appender returns an empty batch appender for the DB.
func (db *DB) Appender() *Appender {
	return &Appender{db: db, byShard: make([][]pendingSample, len(db.shards))}
}

// Add buffers one sample; nothing is visible to queries until Commit.
// The lset slice is retained (its hash decides the shard here, series
// resolution happens at Commit) — the caller must not mutate it until
// Commit returns, or a series could be created in the wrong shard and
// break the one-shard-per-series invariant the query merge relies on.
func (a *Appender) Add(lset labels.Labels, t int64, v float64) {
	h := lset.Hash()
	i := h & a.db.mask
	a.byShard[i] = append(a.byShard[i], pendingSample{hash: h, lset: lset, t: t, v: v})
	a.count++
}

// Pending returns the number of buffered samples.
func (a *Appender) Pending() int { return a.count }

// Commit appends all buffered samples and resets the appender. Out-of-order
// samples are skipped (the scrape loop's tolerance for overlapping
// retries); any other error aborts the commit. Returns the number of
// samples actually appended.
//
// With a WAL-backed head, each shard's accepted samples (plus registrations
// for series seen for the first time) are journalled as one buffered write
// and one flush per shard per commit — the durability cost of a scrape is
// O(shards touched), not O(samples). The shard's WAL mutex is held across
// the memory apply and the journal write so the per-series log order always
// matches the apply order.
func (a *Appender) Commit() (int, error) {
	appended := 0
	var stats CommitStats
	var firstErr error
	m := a.db.metrics
	var commitStart time.Time
	if m != nil {
		commitStart = time.Now()
	}
	var walSamples []walSampleRec
	var walSeries []walSeriesRec
	// One acceptance bound for the whole commit: every sample in the batch
	// is judged against the head's max time as of commit start.
	ooo := a.db.oooCtx()
	for i, batch := range a.byShard {
		if len(batch) == 0 {
			continue
		}
		sh := a.db.shards[i]
		series := sh.resolveBatch(batch)
		w := sh.wal
		if w != nil {
			w.mu.Lock()
			walSamples = walSamples[:0]
			walSeries = walSeries[:0]
		}
		mint := int64(1) << 62
		maxt := -(int64(1) << 62)
		n := uint64(0)
		for j, p := range batch {
			s := series[j]
			s.mu.Lock()
			outcome, err := s.appendLocked(p.t, p.v, a.db.opts.MaxSamplesPerChunk, ooo)
			s.mu.Unlock()
			if err != nil {
				if errors.Is(err, ErrOutOfOrder) {
					if errors.Is(err, ErrTooOld) {
						stats.TooOld++
					}
					continue
				}
				if firstErr == nil {
					firstErr = err
				}
				break
			}
			if outcome == appendDuplicate {
				stats.Duplicates++
				continue
			}
			if outcome == appendOOO {
				stats.OOOAccepted++
			} else {
				stats.Appended++
			}
			if w != nil && !s.dropped {
				// A series detached by DeleteSeries/Truncate between our
				// resolveBatch and this commit must not be journalled, or
				// replay would resurrect it.
				ref, isNew := w.refForLocked(s)
				if isNew {
					walSeries = append(walSeries, walSeriesRec{ref: ref, lset: s.lset})
				}
				walSamples = append(walSamples, walSampleRec{ref: ref, t: p.t, v: p.v})
			}
			if p.t < mint {
				mint = p.t
			}
			if p.t > maxt {
				maxt = p.t
			}
			n++
		}
		if w != nil {
			if err := w.logLocked(walSeries, walSamples, nil); err != nil && firstErr == nil {
				firstErr = err
			}
			w.mu.Unlock()
		}
		if n > 0 {
			sh.noteAppend(mint, maxt, n)
			appended += int(n)
		}
		if firstErr != nil {
			break
		}
	}
	a.count = 0
	for i := range a.byShard {
		a.byShard[i] = a.byShard[i][:0]
	}
	a.lastStats = stats
	if m != nil {
		if stats.OOOAccepted > 0 {
			m.oooAccepted.Add(uint64(stats.OOOAccepted))
		}
		if stats.Duplicates > 0 {
			m.duplicates.Add(uint64(stats.Duplicates))
		}
		if stats.TooOld > 0 {
			m.tooOld.Add(uint64(stats.TooOld))
		}
		m.commitSeconds.ObserveSince(commitStart)
	}
	return appended, firstErr
}

// LastCommitStats returns the outcome breakdown of the most recent Commit.
// The remote-write receiver reads it to report out-of-order/duplicate
// counts per request.
func (a *Appender) LastCommitStats() CommitStats { return a.lastStats }

// resolveBatch maps each pending sample to its memSeries, looking up the
// whole batch under one read lock and creating any misses under one write
// lock.
func (sh *headShard) resolveBatch(batch []pendingSample) []*memSeries {
	out := make([]*memSeries, len(batch))
	missing := false
	sh.mu.RLock()
	for i, p := range batch {
		if s := sh.lookupLocked(p.hash, p.lset); s != nil {
			out[i] = s
		} else {
			missing = true
		}
	}
	sh.mu.RUnlock()
	if !missing {
		return out
	}
	sh.mu.Lock()
	for i, p := range batch {
		if out[i] == nil {
			out[i] = sh.getOrCreateLocked(p.hash, p.lset)
		}
	}
	sh.mu.Unlock()
	return out
}
