package tsdb

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/labels"
	"repro/internal/model"
)

func oooLabels(name string) labels.Labels {
	return labels.FromMap(map[string]string{labels.MetricName: name})
}

// TestOOOWindowDisabledKeepsStrictOrdering proves the default behavior is
// byte-for-byte the old one: any non-increasing timestamp errors.
func TestOOOWindowDisabledKeepsStrictOrdering(t *testing.T) {
	db := MustOpen(Options{})
	ls := oooLabels("strict")
	if err := db.Append(ls, 1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(ls, 1000, 1); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("duplicate under strict mode: got %v, want ErrOutOfOrder", err)
	}
	if err := db.Append(ls, 500, 1); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("backwards under strict mode: got %v, want ErrOutOfOrder", err)
	}
}

func TestOOOWindowAcceptAndMerge(t *testing.T) {
	db := MustOpen(Options{OutOfOrderWindow: 60_000})
	ls := oooLabels("ooo")
	for _, ts := range []int64{10_000, 20_000, 30_000, 40_000} {
		if err := db.Append(ls, ts, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	// Late samples inside the window (bound = 40000-60000 < 0).
	for _, ts := range []int64{15_000, 35_000, 5_000} {
		if err := db.Append(ls, ts, float64(ts)); err != nil {
			t.Fatalf("in-window late sample t=%d: %v", ts, err)
		}
	}
	got := selectAllSamples(t, db, "ooo")
	want := []int64{5_000, 10_000, 15_000, 20_000, 30_000, 35_000, 40_000}
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d: %v", len(got), len(want), got)
	}
	for i, s := range got {
		if s.T != want[i] {
			t.Fatalf("sample %d: t=%d want %d", i, s.T, want[i])
		}
	}
}

func TestOOOWindowTooOldAndDuplicates(t *testing.T) {
	db := MustOpen(Options{OutOfOrderWindow: 10_000})
	ls := oooLabels("bounds")
	if err := db.Append(ls, 100_000, 1); err != nil {
		t.Fatal(err)
	}
	// Past the window: 100000-10000 = 90000 bound; t <= bound is too old.
	err := db.Append(ls, 90_000, 1)
	if !errors.Is(err, ErrTooOld) {
		t.Fatalf("too-old sample: got %v, want ErrTooOld", err)
	}
	if !errors.Is(err, ErrOutOfOrder) {
		t.Fatal("ErrTooOld must wrap ErrOutOfOrder so skip sites keep working")
	}
	// Inside the window.
	if err := db.Append(ls, 95_000, 2); err != nil {
		t.Fatal(err)
	}
	// Exact duplicates are silently skipped — both in-order head dup and
	// ooo-buffer dup.
	if err := db.Append(ls, 100_000, 99); err != nil {
		t.Fatalf("duplicate of lastT: %v", err)
	}
	if err := db.Append(ls, 95_000, 99); err != nil {
		t.Fatalf("duplicate in ooo buffer: %v", err)
	}
	got := selectAllSamples(t, db, "bounds")
	if len(got) != 2 || got[0].T != 95_000 || got[1].T != 100_000 {
		t.Fatalf("unexpected samples: %v", got)
	}
	// First write wins: the duplicate values (99) must not have replaced
	// the originals.
	if got[0].V != 2 || got[1].V != 1 {
		t.Fatalf("duplicate overwrote a value: %v", got)
	}
}

// TestOOOWindowBatchRetryIdempotent is the remote-write retry scenario: a
// batch commits, the agent times out and resends the identical batch, and
// the head must end up with exactly one copy and report the resend as
// duplicates.
func TestOOOWindowBatchRetryIdempotent(t *testing.T) {
	db := MustOpen(Options{OutOfOrderWindow: 300_000})
	send := func() (int, CommitStats) {
		a := db.Appender()
		for i := 0; i < 10; i++ {
			a.Add(oooLabels(fmt.Sprintf("retry_%d", i%3)), int64(1000*(i+1)), float64(i))
		}
		n, err := a.Commit()
		if err != nil {
			t.Fatal(err)
		}
		return n, a.LastCommitStats()
	}
	n1, st1 := send()
	if n1 != 10 || st1.Duplicates != 0 {
		t.Fatalf("first send: appended %d (stats %+v)", n1, st1)
	}
	n2, st2 := send()
	if n2 != 0 {
		t.Fatalf("resend appended %d samples, want 0", n2)
	}
	if st2.Duplicates != 10 || st2.TooOld != 0 {
		t.Fatalf("resend stats %+v, want 10 duplicates", st2)
	}
	epoch := db.AppendEpoch()
	if epoch != 10 {
		t.Fatalf("append epoch %d after retry, want 10", epoch)
	}
}

func TestOOOCommitStatsBreakdown(t *testing.T) {
	db := MustOpen(Options{OutOfOrderWindow: 10_000})
	ls := oooLabels("stats")
	if err := db.Append(ls, 100_000, 1); err != nil {
		t.Fatal(err)
	}
	a := db.Appender()
	a.Add(ls, 101_000, 1) // in order
	a.Add(ls, 99_000, 1)  // ooo, in window
	a.Add(ls, 100_000, 1) // duplicate
	a.Add(ls, 50_000, 1)  // too old
	n, err := a.Commit()
	if err != nil {
		t.Fatal(err)
	}
	st := a.LastCommitStats()
	if n != 2 || st.Appended != 1 || st.OOOAccepted != 1 || st.Duplicates != 1 || st.TooOld != 1 {
		t.Fatalf("n=%d stats=%+v", n, st)
	}
}

// TestOOOAppendSeriesSkipsDuplicates exercises the non-contiguous WAL
// collection path: duplicates inside one AppendSeries batch are skipped
// without aborting the rest.
func TestOOOAppendSeriesSkipsDuplicates(t *testing.T) {
	db := MustOpen(Options{OutOfOrderWindow: 60_000})
	ls := oooLabels("batch")
	err := db.AppendSeries(ls, []model.Sample{
		{T: 1000, V: 1}, {T: 2000, V: 2}, {T: 1000, V: 9}, {T: 1500, V: 3}, {T: 3000, V: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := selectAllSamples(t, db, "batch")
	want := []model.Sample{{T: 1000, V: 1}, {T: 1500, V: 3}, {T: 2000, V: 2}, {T: 3000, V: 4}}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestOOOTruncatePrunesBuffer(t *testing.T) {
	db := MustOpen(Options{OutOfOrderWindow: 1 << 40})
	ls := oooLabels("trunc")
	for _, ts := range []int64{10_000, 20_000, 30_000} {
		if err := db.Append(ls, ts, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, ts := range []int64{12_000, 25_000} {
		if err := db.Append(ls, ts, 2); err != nil {
			t.Fatal(err)
		}
	}
	db.Truncate(15_000)
	got := selectAllSamples(t, db, "trunc")
	for _, s := range got {
		if s.T < 15_000 && s.V == 2 {
			t.Fatalf("truncate left pruned ooo sample %v", s)
		}
	}
	found := false
	for _, s := range got {
		if s.T == 25_000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("truncate dropped in-retention ooo sample: %v", got)
	}
}

// TestOOOWALReplayRoundTrip proves accepted out-of-order samples are
// journalled and replayed byte-exact in both WAL formats, including ones
// that would fail a replay-time window re-check (the bound is deliberately
// not re-applied on replay).
func TestOOOWALReplayRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{
				WALDir: dir, WALCompression: compress, Shards: 4,
				OutOfOrderWindow: 30_000,
			}
			db, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			type sk struct {
				series int
				t      int64
			}
			written := map[sk]float64{}
			base := int64(1_000_000)
			for batch := 0; batch < 50; batch++ {
				a := db.Appender()
				for s := 0; s < 8; s++ {
					ts := base + int64(batch)*1000 + int64(rng.Intn(500))
					// A third of appends go backwards inside the window.
					if batch > 3 && rng.Intn(3) == 0 {
						ts -= int64(rng.Intn(25_000))
					}
					a.Add(oooLabels(fmt.Sprintf("wal_%d", s)), ts, float64(batch*100+s))
				}
				if _, err := a.Commit(); err != nil {
					t.Fatal(err)
				}
				st := a.LastCommitStats()
				_ = st
			}
			before := map[string][]model.Sample{}
			for s := 0; s < 8; s++ {
				name := fmt.Sprintf("wal_%d", s)
				before[name] = selectAllSamples(t, db, name)
				for _, smp := range before[name] {
					written[sk{s, smp.T}] = smp.V
				}
			}
			// Reopen and compare.
			db2, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < 8; s++ {
				name := fmt.Sprintf("wal_%d", s)
				after := selectAllSamples(t, db2, name)
				if len(after) != len(before[name]) {
					t.Fatalf("series %s: %d samples after replay, want %d",
						name, len(after), len(before[name]))
				}
				if !sort.SliceIsSorted(after, func(i, j int) bool { return after[i].T < after[j].T }) {
					t.Fatalf("series %s not sorted after replay", name)
				}
				for i := range after {
					if after[i] != before[name][i] {
						t.Fatalf("series %s sample %d: %v after replay, want %v",
							name, i, after[i], before[name][i])
					}
				}
			}
		})
	}
}

func selectAllSamples(t *testing.T, db *DB, name string) []model.Sample {
	t.Helper()
	m, err := labels.NewMatcher(labels.MatchEqual, labels.MetricName, name)
	if err != nil {
		t.Fatal(err)
	}
	series, err := db.Select(-(int64(1) << 62), int64(1)<<62, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		return nil
	}
	if len(series) != 1 {
		t.Fatalf("expected one series for %s, got %d", name, len(series))
	}
	return series[0].Samples
}
