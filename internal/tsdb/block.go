package tsdb

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb/chunkenc"
)

// Block is an immutable, time-bounded snapshot of series data, the unit of
// replication from the hot TSDB to long-term storage (the Thanos sidecar
// path in the paper's architecture).
type Block struct {
	MinTime int64
	MaxTime int64
	Series  []BlockSeries
}

// BlockSeries is one series inside a block.
type BlockSeries struct {
	Labels labels.Labels
	Chunks []*chunkenc.Chunk
}

// CutBlock snapshots all samples in [mint, maxt] into a new immutable
// block. The head is not modified; callers typically Truncate afterwards.
//
// The cut fans out per shard on the shared worker pool: each shard walks
// its own series, reusing closed immutable chunks that fall entirely inside
// the range (zero re-encoding — the chunk pointer is shared, closed chunks
// are never appended to) and re-encoding only boundary chunks, the open
// head chunk and series holding out-of-order samples. The per-shard slices
// arrive label-sorted and are combined with the same k-way merge Select
// uses, so output is identical for any shard count.
func (db *DB) CutBlock(mint, maxt int64) (*Block, error) {
	parts := make([][]BlockSeries, len(db.shards))
	mins := make([]int64, len(db.shards))
	maxs := make([]int64, len(db.shards))
	errs := make([]error, len(db.shards))
	db.forEachShard(func(i int, sh *headShard) {
		parts[i], mins[i], maxs[i], errs[i] = sh.cutSorted(mint, maxt, db.opts.MaxSamplesPerChunk)
	})
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("tsdb: cut block: %w", err)
		}
	}
	b := &Block{MinTime: int64(1) << 62, MaxTime: -(int64(1) << 62)}
	b.Series = mergeSortedBy(parts, func(a, c BlockSeries) int { return labels.Compare(a.Labels, c.Labels) })
	for i := range db.shards {
		if len(parts[i]) == 0 {
			continue
		}
		if mins[i] < b.MinTime {
			b.MinTime = mins[i]
		}
		if maxs[i] > b.MaxTime {
			b.MaxTime = maxs[i]
		}
	}
	if len(b.Series) == 0 {
		b.MinTime, b.MaxTime = mint, maxt
	}
	return b, nil
}

// CutPersistentBlock is CutBlock straight to durable storage: the cut block
// is written as a block directory under parent (crash-safe, see
// blockdir.go) and returned as an open read handle. With parent == "" the
// block is assembled in memory instead.
func (db *DB) CutPersistentBlock(parent string, mint, maxt int64) (*PersistentBlock, error) {
	b, err := db.CutBlock(mint, maxt)
	if err != nil {
		return nil, err
	}
	return PersistBlock(parent, b)
}

// PersistBlock converts an in-memory Block into a level-1 raw persistent
// block under parent ("" assembles it in memory). The sidecar upload path
// and the legacy-format migration both funnel through here.
func PersistBlock(parent string, b *Block) (*PersistentBlock, error) {
	series := make([]diskSeries, 0, len(b.Series))
	for _, bs := range b.Series {
		ds := diskSeries{lset: bs.Labels, chunks: make([]diskChunk, 0, len(bs.Chunks))}
		for _, c := range bs.Chunks {
			minT, maxT, err := chunkBounds(c)
			if err != nil {
				return nil, err
			}
			ds.chunks = append(ds.chunks, diskChunk{
				aggr:       AggrRaw,
				minT:       minT,
				maxT:       maxT,
				numSamples: c.NumSamples(),
				payload:    c.Bytes(),
			})
		}
		series = append(series, ds)
	}
	meta := &BlockMeta{MinTime: b.MinTime, MaxTime: b.MaxTime, Level: 1, Resolution: 0}
	if parent == "" {
		return newMemPersistentBlock(meta, series)
	}
	dir, err := writeBlockDir(parent, meta, series)
	if err != nil {
		return nil, err
	}
	return OpenBlockDir(dir)
}

// chunkBounds returns the first and last timestamps of a chunk.
func chunkBounds(c *chunkenc.Chunk) (int64, int64, error) {
	it := c.Iterator()
	if !it.Next() {
		return 0, 0, fmt.Errorf("tsdb: empty chunk in block")
	}
	minT, _ := it.At()
	maxT := minT
	for it.Next() {
		maxT, _ = it.At()
	}
	return minT, maxT, it.Err()
}

// seriesCutter accumulates one series' chunks during a block cut: add
// re-encodes individual samples, reuse adopts a closed chunk wholesale
// (flushing any pending re-encoded samples first so time order holds).
type seriesCutter struct {
	maxPerChunk int
	chunks      []*chunkenc.Chunk
	cur         *chunkenc.Chunk
	mint, maxt  int64
	n           int
}

func newSeriesCutter(maxPerChunk int) *seriesCutter {
	return &seriesCutter{maxPerChunk: maxPerChunk, mint: int64(1) << 62, maxt: -(int64(1) << 62)}
}

func (sc *seriesCutter) note(t int64) {
	if t < sc.mint {
		sc.mint = t
	}
	if t > sc.maxt {
		sc.maxt = t
	}
}

func (sc *seriesCutter) add(t int64, v float64) error {
	if sc.cur == nil {
		sc.cur = chunkenc.NewChunk()
	}
	if err := sc.cur.Append(t, v); err != nil {
		return err
	}
	sc.note(t)
	sc.n++
	if sc.cur.NumSamples() >= sc.maxPerChunk {
		sc.chunks = append(sc.chunks, sc.cur)
		sc.cur = nil
	}
	return nil
}

func (sc *seriesCutter) flush() {
	if sc.cur != nil && sc.cur.NumSamples() > 0 {
		sc.chunks = append(sc.chunks, sc.cur)
	}
	sc.cur = nil
}

func (sc *seriesCutter) reuse(cr *chunkRange) {
	sc.flush()
	sc.chunks = append(sc.chunks, cr.chunk)
	sc.note(cr.min)
	sc.note(cr.max)
	sc.n += cr.chunk.NumSamples()
}

// cutSorted builds the shard's contribution to a block cut: every series
// with samples in [mint, maxt], label-sorted, plus the shard's actual
// sample-time bounds within the range.
func (sh *headShard) cutSorted(mint, maxt int64, maxPerChunk int) ([]BlockSeries, int64, int64, error) {
	sh.mu.RLock()
	series := make([]*memSeries, 0, len(sh.byRef))
	for _, s := range sh.byRef {
		series = append(series, s)
	}
	sh.mu.RUnlock()
	out := make([]BlockSeries, 0, len(series))
	shMin, shMax := int64(1)<<62, -(int64(1) << 62)
	for _, s := range series {
		sc, err := s.cut(mint, maxt, maxPerChunk)
		if err != nil {
			return nil, 0, 0, err
		}
		if sc.n == 0 {
			continue
		}
		out = append(out, BlockSeries{Labels: s.lset, Chunks: sc.chunks})
		if sc.mint < shMin {
			shMin = sc.mint
		}
		if sc.maxt > shMax {
			shMax = sc.maxt
		}
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out, shMin, shMax, nil
}

// cut snapshots the series' samples in [mint, maxt] into block chunks.
// Series without out-of-order samples reuse closed chunks that lie fully in
// range; everything else re-encodes.
func (s *memSeries) cut(mint, maxt int64, maxPerChunk int) (*seriesCutter, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc := newSeriesCutter(maxPerChunk)
	if len(s.ooo) == 0 {
		decode := func(c *chunkenc.Chunk) error {
			it := c.Iterator()
			for it.Next() {
				t, v := it.At()
				if t < mint {
					continue
				}
				if t > maxt {
					break
				}
				if err := sc.add(t, v); err != nil {
					return err
				}
			}
			return it.Err()
		}
		for _, cr := range s.chunks {
			if cr.min > maxt {
				break
			}
			if cr.max < mint {
				continue
			}
			if cr.min >= mint && cr.max <= maxt {
				sc.reuse(cr)
				continue
			}
			if err := decode(cr.chunk); err != nil {
				return nil, err
			}
		}
		if s.head != nil && !(s.lastT < mint || s.headMin > maxt) {
			if err := decode(s.head); err != nil {
				return nil, err
			}
		}
		sc.flush()
		return sc, nil
	}
	// Out-of-order samples present: the merged view is not chunk-aligned,
	// re-encode it sample by sample.
	for _, smp := range s.samplesBetweenLocked(mint, maxt) {
		if err := sc.add(smp.T, smp.V); err != nil {
			return nil, err
		}
	}
	sc.flush()
	return sc, nil
}

// Select returns the block's series overlapping [mint, maxt] that satisfy
// the matchers, mirroring DB.Select.
func (b *Block) Select(mint, maxt int64, ms ...*labels.Matcher) []model.Series {
	out, _ := b.SelectLimited(mint, maxt, 0, ms...)
	return out
}

// SelectLimited is Select with a sample budget: when limit > 0 the decode
// stops as soon as more than limit samples have been copied and reports
// model.ErrSampleLimit, so an oversized query aborts mid-copy instead of
// materializing the whole block.
func (b *Block) SelectLimited(mint, maxt, limit int64, ms ...*labels.Matcher) ([]model.Series, error) {
	var out []model.Series
	var copied int64
	for _, bs := range b.Series {
		if !labels.MatchLabels(bs.Labels, ms...) {
			continue
		}
		var samples []model.Sample
		for _, c := range bs.Chunks {
			it := c.Iterator()
			for it.Next() {
				t, v := it.At()
				if t < mint {
					continue
				}
				if t > maxt {
					break
				}
				samples = append(samples, model.Sample{T: t, V: v})
				copied++
				if limit > 0 && copied > limit {
					return nil, model.ErrSampleLimit
				}
			}
		}
		if len(samples) > 0 {
			out = append(out, model.Series{Labels: bs.Labels, Samples: samples})
		}
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out, nil
}

// NumSamples counts all samples in the block.
func (b *Block) NumSamples() int {
	n := 0
	for _, s := range b.Series {
		for _, c := range s.Chunks {
			n += c.NumSamples()
		}
	}
	return n
}

const (
	blockMagic   = "CEEMSBLK"
	blockVersion = 1
)

// WriteFile persists the block to path atomically (write to temp + rename).
func (b *Block) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := b.encode(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func (b *Block) encode(w io.Writer) error {
	if _, err := w.Write([]byte(blockMagic)); err != nil {
		return err
	}
	hdr := []any{uint32(blockVersion), b.MinTime, b.MaxTime, uint32(len(b.Series))}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, s := range b.Series {
		lj, err := json.Marshal(s.Labels.Map())
		if err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(lj))); err != nil {
			return err
		}
		if _, err := w.Write(lj); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(s.Chunks))); err != nil {
			return err
		}
		for _, c := range s.Chunks {
			cb := c.Bytes()
			if err := binary.Write(w, binary.LittleEndian, uint32(len(cb))); err != nil {
				return err
			}
			if _, err := w.Write(cb); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadBlockFile loads a block previously written with WriteFile.
func ReadBlockFile(path string) (*Block, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decodeBlock(bufio.NewReader(f))
}

func decodeBlock(r io.Reader) (*Block, error) {
	magic := make([]byte, len(blockMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("tsdb: block header: %w", err)
	}
	if string(magic) != blockMagic {
		return nil, fmt.Errorf("tsdb: bad block magic %q", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != blockVersion {
		return nil, fmt.Errorf("tsdb: unsupported block version %d", version)
	}
	b := &Block{}
	var nSeries uint32
	if err := binary.Read(r, binary.LittleEndian, &b.MinTime); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &b.MaxTime); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &nSeries); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nSeries; i++ {
		var lj uint32
		if err := binary.Read(r, binary.LittleEndian, &lj); err != nil {
			return nil, err
		}
		buf := make([]byte, lj)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		var lm map[string]string
		if err := json.Unmarshal(buf, &lm); err != nil {
			return nil, fmt.Errorf("tsdb: block series %d labels: %w", i, err)
		}
		bs := BlockSeries{Labels: labels.FromMap(lm)}
		var nChunks uint32
		if err := binary.Read(r, binary.LittleEndian, &nChunks); err != nil {
			return nil, err
		}
		for j := uint32(0); j < nChunks; j++ {
			var cl uint32
			if err := binary.Read(r, binary.LittleEndian, &cl); err != nil {
				return nil, err
			}
			cb := make([]byte, cl)
			if _, err := io.ReadFull(r, cb); err != nil {
				return nil, err
			}
			c, err := chunkenc.FromBytes(cb)
			if err != nil {
				return nil, err
			}
			bs.Chunks = append(bs.Chunks, c)
		}
		b.Series = append(b.Series, bs)
	}
	return b, nil
}

// BlockFileName returns the canonical file name for a block covering
// [mint, maxt].
func BlockFileName(dir string, mint, maxt int64) string {
	return filepath.Join(dir, fmt.Sprintf("block-%020d-%020d.blk", mint, maxt))
}
