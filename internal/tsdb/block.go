package tsdb

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb/chunkenc"
)

// Block is an immutable, time-bounded snapshot of series data, the unit of
// replication from the hot TSDB to long-term storage (the Thanos sidecar
// path in the paper's architecture).
type Block struct {
	MinTime int64
	MaxTime int64
	Series  []BlockSeries
}

// BlockSeries is one series inside a block.
type BlockSeries struct {
	Labels labels.Labels
	Chunks []*chunkenc.Chunk
}

// CutBlock snapshots all samples in [mint, maxt] into a new immutable
// block. The head is not modified; callers typically Truncate afterwards.
func (db *DB) CutBlock(mint, maxt int64) (*Block, error) {
	matchAll := labels.MustMatcher(labels.MatchRegexp, labels.MetricName, ".*")
	series, err := db.Select(mint, maxt, matchAll)
	if err != nil {
		return nil, err
	}
	b := &Block{MinTime: maxt + 1, MaxTime: mint - 1}
	for _, s := range series {
		bs := BlockSeries{Labels: s.Labels}
		c := chunkenc.NewChunk()
		for _, smp := range s.Samples {
			if c.NumSamples() >= db.opts.MaxSamplesPerChunk {
				bs.Chunks = append(bs.Chunks, c)
				c = chunkenc.NewChunk()
			}
			if err := c.Append(smp.T, smp.V); err != nil {
				return nil, fmt.Errorf("tsdb: cut block: %w", err)
			}
		}
		if c.NumSamples() > 0 {
			bs.Chunks = append(bs.Chunks, c)
		}
		if len(bs.Chunks) == 0 {
			continue
		}
		if s.Samples[0].T < b.MinTime {
			b.MinTime = s.Samples[0].T
		}
		if s.Samples[len(s.Samples)-1].T > b.MaxTime {
			b.MaxTime = s.Samples[len(s.Samples)-1].T
		}
		b.Series = append(b.Series, bs)
	}
	if len(b.Series) == 0 {
		b.MinTime, b.MaxTime = mint, maxt
	}
	return b, nil
}

// Select returns the block's series overlapping [mint, maxt] that satisfy
// the matchers, mirroring DB.Select.
func (b *Block) Select(mint, maxt int64, ms ...*labels.Matcher) []model.Series {
	out, _ := b.SelectLimited(mint, maxt, 0, ms...)
	return out
}

// SelectLimited is Select with a sample budget: when limit > 0 the decode
// stops as soon as more than limit samples have been copied and reports
// model.ErrSampleLimit, so an oversized query aborts mid-copy instead of
// materializing the whole block.
func (b *Block) SelectLimited(mint, maxt, limit int64, ms ...*labels.Matcher) ([]model.Series, error) {
	var out []model.Series
	var copied int64
	for _, bs := range b.Series {
		if !labels.MatchLabels(bs.Labels, ms...) {
			continue
		}
		var samples []model.Sample
		for _, c := range bs.Chunks {
			it := c.Iterator()
			for it.Next() {
				t, v := it.At()
				if t < mint {
					continue
				}
				if t > maxt {
					break
				}
				samples = append(samples, model.Sample{T: t, V: v})
				copied++
				if limit > 0 && copied > limit {
					return nil, model.ErrSampleLimit
				}
			}
		}
		if len(samples) > 0 {
			out = append(out, model.Series{Labels: bs.Labels, Samples: samples})
		}
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out, nil
}

// NumSamples counts all samples in the block.
func (b *Block) NumSamples() int {
	n := 0
	for _, s := range b.Series {
		for _, c := range s.Chunks {
			n += c.NumSamples()
		}
	}
	return n
}

const (
	blockMagic   = "CEEMSBLK"
	blockVersion = 1
)

// WriteFile persists the block to path atomically (write to temp + rename).
func (b *Block) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := b.encode(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func (b *Block) encode(w io.Writer) error {
	if _, err := w.Write([]byte(blockMagic)); err != nil {
		return err
	}
	hdr := []any{uint32(blockVersion), b.MinTime, b.MaxTime, uint32(len(b.Series))}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, s := range b.Series {
		lj, err := json.Marshal(s.Labels.Map())
		if err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(lj))); err != nil {
			return err
		}
		if _, err := w.Write(lj); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(s.Chunks))); err != nil {
			return err
		}
		for _, c := range s.Chunks {
			cb := c.Bytes()
			if err := binary.Write(w, binary.LittleEndian, uint32(len(cb))); err != nil {
				return err
			}
			if _, err := w.Write(cb); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadBlockFile loads a block previously written with WriteFile.
func ReadBlockFile(path string) (*Block, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decodeBlock(bufio.NewReader(f))
}

func decodeBlock(r io.Reader) (*Block, error) {
	magic := make([]byte, len(blockMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("tsdb: block header: %w", err)
	}
	if string(magic) != blockMagic {
		return nil, fmt.Errorf("tsdb: bad block magic %q", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != blockVersion {
		return nil, fmt.Errorf("tsdb: unsupported block version %d", version)
	}
	b := &Block{}
	var nSeries uint32
	if err := binary.Read(r, binary.LittleEndian, &b.MinTime); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &b.MaxTime); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &nSeries); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nSeries; i++ {
		var lj uint32
		if err := binary.Read(r, binary.LittleEndian, &lj); err != nil {
			return nil, err
		}
		buf := make([]byte, lj)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		var lm map[string]string
		if err := json.Unmarshal(buf, &lm); err != nil {
			return nil, fmt.Errorf("tsdb: block series %d labels: %w", i, err)
		}
		bs := BlockSeries{Labels: labels.FromMap(lm)}
		var nChunks uint32
		if err := binary.Read(r, binary.LittleEndian, &nChunks); err != nil {
			return nil, err
		}
		for j := uint32(0); j < nChunks; j++ {
			var cl uint32
			if err := binary.Read(r, binary.LittleEndian, &cl); err != nil {
				return nil, err
			}
			cb := make([]byte, cl)
			if _, err := io.ReadFull(r, cb); err != nil {
				return nil, err
			}
			c, err := chunkenc.FromBytes(cb)
			if err != nil {
				return nil, err
			}
			bs.Chunks = append(bs.Chunks, c)
		}
		b.Series = append(b.Series, bs)
	}
	return b, nil
}

// BlockFileName returns the canonical file name for a block covering
// [mint, maxt].
func BlockFileName(dir string, mint, maxt int64) string {
	return filepath.Join(dir, fmt.Sprintf("block-%020d-%020d.blk", mint, maxt))
}
