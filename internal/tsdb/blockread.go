package tsdb

// Read path for on-disk block directories (format: blockdir.go).
//
// OpenBlockDir validates meta.json and the index CRC eagerly, mmaps the
// chunk segment, and returns a PersistentBlock whose chunks decode lazily
// per query — a Select touches only the chunks whose time bounds intersect
// the window, and a CRC failure there surfaces as an error, never as
// silently wrong samples. PersistentBlock handles are reference-counted
// (Retain/Release): Close marks the block dead but the munmap is deferred
// until the last in-flight reader releases, which is what lets the store's
// compactor retire source blocks while queries still hold them.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb/chunkenc"
)

// PersistentBlock is a read handle on one block directory: the parsed index
// resident in memory, the chunk segment mmap'd (or heap-resident for
// store-less in-memory blocks). Chunks are decoded lazily per query via
// chunkenc.FromBytesNoCopy, so a Select touches only the pages of the
// chunks it actually reads.
//
// All methods are safe for concurrent use. A reader that may race Close
// (the compactor retires source blocks while queries are in flight) brackets
// its reads with Retain/Release; Close defers the munmap until the last
// retainer releases, so a mapped chunk slice can never be yanked mid-decode.
type PersistentBlock struct {
	dir    string // "" for in-memory blocks
	meta   BlockMeta
	series []diskSeries // sorted by labels; payloads nil, off/length set
	chunks []byte       // mmap'd (or in-memory) chunks file

	lifeMu sync.Mutex
	refs   int
	closed bool
	munmap func() error
}

// OpenBlockDir opens a block directory written by writeBlockDir, validating
// meta.json, the index magic/version/CRC and the chunks file header.
// Per-chunk CRCs are verified lazily on decode.
func OpenBlockDir(dir string) (*PersistentBlock, error) {
	meta, err := readBlockMeta(dir)
	if err != nil {
		return nil, err
	}
	idx, err := os.ReadFile(filepath.Join(dir, IndexFilename))
	if err != nil {
		return nil, err
	}
	series, err := decodeIndex(idx)
	if err != nil {
		return nil, fmt.Errorf("tsdb: %s: %w", dir, err)
	}
	data, munmap, err := mmapFile(filepath.Join(dir, ChunksFilename))
	if err != nil {
		return nil, err
	}
	hdr := len(chunksMagic) + 1
	if len(data) < hdr || string(data[:len(chunksMagic)]) != chunksMagic || data[len(chunksMagic)] != blockDirVersion {
		munmap()
		return nil, fmt.Errorf("tsdb: %s: bad chunks header", dir)
	}
	return &PersistentBlock{dir: dir, meta: meta, series: series, chunks: data, munmap: munmap}, nil
}

// newMemPersistentBlock assembles a PersistentBlock entirely in memory —
// the store-less (dir == "") path used by tests and the in-process cluster
// sim. The chunk payloads are laid out in one buffer exactly as the chunks
// file would be, so read paths are identical to the mmap case.
func newMemPersistentBlock(meta *BlockMeta, series []diskSeries) (*PersistentBlock, error) {
	if meta.ULID == "" {
		meta.ULID = newBlockULID()
	}
	meta.Version = blockDirVersion
	fillStats(meta, series)
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := encodeChunksStream(series, w); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	for i := range series {
		for j := range series[i].chunks {
			series[i].chunks[j].payload = nil
		}
	}
	return &PersistentBlock{meta: *meta, series: series, chunks: buf.Bytes(), munmap: func() error { return nil }}, nil
}

// Meta returns the block's metadata.
func (pb *PersistentBlock) Meta() BlockMeta { return pb.meta }

// Dir returns the block's directory path ("" for in-memory blocks).
func (pb *PersistentBlock) Dir() string { return pb.dir }

// MinTime returns the block's inclusive minimum sample time.
func (pb *PersistentBlock) MinTime() int64 { return pb.meta.MinTime }

// MaxTime returns the block's inclusive maximum sample time.
func (pb *PersistentBlock) MaxTime() int64 { return pb.meta.MaxTime }

// NumSamples returns the total raw-equivalent sample count (for raw blocks,
// the stored samples; for downsampled blocks, the stored aggregate points).
func (pb *PersistentBlock) NumSamples() int { return pb.meta.Stats.NumSamples }

// Retain marks a reader active, blocking the munmap until Release. It
// reports false when the block is already closed (the caller must skip it).
func (pb *PersistentBlock) Retain() bool {
	pb.lifeMu.Lock()
	defer pb.lifeMu.Unlock()
	if pb.closed {
		return false
	}
	pb.refs++
	return true
}

// Release ends a Retain; the last release after Close performs the munmap.
func (pb *PersistentBlock) Release() {
	pb.lifeMu.Lock()
	pb.refs--
	var m func() error
	if pb.closed && pb.refs == 0 {
		m, pb.munmap = pb.munmap, nil
	}
	pb.lifeMu.Unlock()
	if m != nil {
		m()
	}
}

// Close marks the block dead and releases the chunk mapping — immediately
// when no reader holds a Retain, otherwise on the last Release.
func (pb *PersistentBlock) Close() error {
	pb.lifeMu.Lock()
	pb.closed = true
	var m func() error
	if pb.refs == 0 {
		m, pb.munmap = pb.munmap, nil
	}
	pb.lifeMu.Unlock()
	if m != nil {
		return m()
	}
	return nil
}

// decodeChunk extracts and validates one chunk from the segment.
func (pb *PersistentBlock) decodeChunk(c diskChunk) (*chunkenc.Chunk, error) {
	end := c.off + c.length
	if c.off < uint64(len(chunksMagic)+1) || end > uint64(len(pb.chunks)) || c.length < 5 {
		return nil, fmt.Errorf("tsdb: block %s: chunk ref out of bounds (off=%d len=%d segment=%d)", pb.meta.ULID, c.off, c.length, len(pb.chunks))
	}
	rec := pb.chunks[c.off:end]
	want := binary.LittleEndian.Uint32(rec[:4])
	plen, n := binary.Uvarint(rec[4:])
	if n <= 0 || uint64(4+n)+plen != c.length {
		return nil, fmt.Errorf("tsdb: block %s: chunk length mismatch at off=%d", pb.meta.ULID, c.off)
	}
	payload := rec[4+n:]
	if got := crc32.Checksum(payload, walCRC); got != want {
		return nil, fmt.Errorf("tsdb: block %s: chunk crc mismatch at off=%d (got %08x want %08x)", pb.meta.ULID, c.off, got, want)
	}
	return chunkenc.FromBytesNoCopy(payload)
}

// appendChunkRange decodes the samples of c in [mint, maxt] onto dst.
func (pb *PersistentBlock) appendChunkRange(dst []model.Sample, c diskChunk, mint, maxt int64) ([]model.Sample, error) {
	ch, err := pb.decodeChunk(c)
	if err != nil {
		return dst, err
	}
	it := ch.Iterator()
	for it.Next() {
		t, v := it.At()
		if t < mint {
			continue
		}
		if t > maxt {
			break
		}
		dst = append(dst, model.Sample{T: t, V: v})
	}
	return dst, it.Err()
}

// seriesSamples decodes one series' samples in [mint, maxt] for the
// requested aggregate. Raw blocks serve raw samples whatever was asked
// (raw is exact for every aggregate). On downsampled blocks AggrAvg — and
// AggrRaw, for callers that don't know the block is downsampled — derives
// sum/count; other aggregates decode their stored stream.
func (pb *PersistentBlock) seriesSamples(s *diskSeries, mint, maxt int64, aggr AggrType) ([]model.Sample, error) {
	pick := func(want AggrType) ([]model.Sample, error) {
		var out []model.Sample
		var err error
		for _, c := range s.chunks {
			if c.aggr != want || c.maxT < mint || c.minT > maxt {
				continue
			}
			if out, err = pb.appendChunkRange(out, c, mint, maxt); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if pb.meta.Resolution == 0 {
		return pick(AggrRaw)
	}
	switch aggr {
	case AggrSum, AggrCount, AggrMin, AggrMax:
		return pick(aggr)
	default: // AggrAvg and AggrRaw: derived average, the documented representative value
		sums, err := pick(AggrSum)
		if err != nil {
			return nil, err
		}
		counts, err := pick(AggrCount)
		if err != nil {
			return nil, err
		}
		if len(sums) != len(counts) {
			return nil, fmt.Errorf("tsdb: block %s: sum/count streams disagree (%d vs %d points)", pb.meta.ULID, len(sums), len(counts))
		}
		out := sums[:0]
		for i := range sums {
			if sums[i].T != counts[i].T || counts[i].V == 0 {
				return nil, fmt.Errorf("tsdb: block %s: sum/count streams misaligned at %d", pb.meta.ULID, sums[i].T)
			}
			out = append(out, model.Sample{T: sums[i].T, V: sums[i].V / counts[i].V})
		}
		return out, nil
	}
}

// SelectAggr returns the block's series overlapping [mint, maxt] that
// satisfy the matchers, decoded for the requested aggregate (see
// seriesSamples for the raw/downsampled semantics). When limit > 0 the
// decode aborts with model.ErrSampleLimit as soon as more than limit
// samples have been copied.
func (pb *PersistentBlock) SelectAggr(mint, maxt, limit int64, aggr AggrType, ms ...*labels.Matcher) ([]model.Series, error) {
	var out []model.Series
	var copied int64
	for i := range pb.series {
		s := &pb.series[i]
		if !labels.MatchLabels(s.lset, ms...) {
			continue
		}
		samples, err := pb.seriesSamples(s, mint, maxt, aggr)
		if err != nil {
			return nil, err
		}
		if len(samples) == 0 {
			continue
		}
		copied += int64(len(samples))
		if limit > 0 && copied > limit {
			return nil, model.ErrSampleLimit
		}
		out = append(out, model.Series{Labels: s.lset, Samples: samples})
	}
	return out, nil
}

// Select is SelectAggr for raw consumers (promql.Queryable shape).
func (pb *PersistentBlock) Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error) {
	return pb.SelectAggr(mint, maxt, 0, AggrRaw, ms...)
}

// LabelSets iterates the block's series label sets in index (sorted) order.
func (pb *PersistentBlock) LabelSets(f func(labels.Labels)) {
	for i := range pb.series {
		f(pb.series[i].lset)
	}
}

// aggrSeries is one series' per-aggregate sample streams, the working
// representation of compaction and downsampling. Raw data lives under
// AggrRaw; downsampled data under AggrSum..AggrMax.
type aggrSeries struct {
	lset    labels.Labels
	streams map[AggrType][]model.Sample
}

// storedAggrs lists the aggregate streams a block of the given resolution
// stores.
func storedAggrs(resolution int64) []AggrType {
	if resolution == 0 {
		return []AggrType{AggrRaw}
	}
	return []AggrType{AggrSum, AggrCount, AggrMin, AggrMax}
}

// allAggrSeries decodes the whole block into per-aggregate streams, in
// index (label-sorted) order — the input shape for compaction and
// downsampling.
func (pb *PersistentBlock) allAggrSeries() ([]aggrSeries, error) {
	aggrs := storedAggrs(pb.meta.Resolution)
	out := make([]aggrSeries, 0, len(pb.series))
	for i := range pb.series {
		s := &pb.series[i]
		as := aggrSeries{lset: s.lset, streams: make(map[AggrType][]model.Sample, len(aggrs))}
		for _, a := range aggrs {
			var stream []model.Sample
			var err error
			for _, c := range s.chunks {
				if c.aggr != a {
					continue
				}
				if stream, err = pb.appendChunkRange(stream, c, c.minT, c.maxT); err != nil {
					return nil, err
				}
			}
			as.streams[a] = stream
		}
		out = append(out, as)
	}
	return out, nil
}

// diskSeriesFromAggr re-encodes per-aggregate streams into index entries,
// splitting chunks at maxPerChunk samples. Streams must be sorted by
// timestamp with strictly increasing timestamps per stream.
func diskSeriesFromAggr(in []aggrSeries, maxPerChunk int) ([]diskSeries, int64, int64, error) {
	mint, maxt := int64(1)<<62, -(int64(1) << 62)
	out := make([]diskSeries, 0, len(in))
	for _, as := range in {
		var ds diskSeries
		ds.lset = as.lset
		for _, a := range []AggrType{AggrRaw, AggrSum, AggrCount, AggrMin, AggrMax} {
			stream := as.streams[a]
			if len(stream) == 0 {
				continue
			}
			chunks, err := chunksFromSamples(stream, a, maxPerChunk)
			if err != nil {
				return nil, 0, 0, err
			}
			ds.chunks = append(ds.chunks, chunks...)
			if stream[0].T < mint {
				mint = stream[0].T
			}
			if t := stream[len(stream)-1].T; t > maxt {
				maxt = t
			}
		}
		if len(ds.chunks) == 0 {
			continue
		}
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].lset, out[j].lset) < 0 })
	return out, mint, maxt, nil
}

// chunksFromSamples encodes one sample stream into diskChunk entries.
func chunksFromSamples(samples []model.Sample, aggr AggrType, maxPerChunk int) ([]diskChunk, error) {
	if maxPerChunk <= 0 {
		maxPerChunk = 120
	}
	var out []diskChunk
	for len(samples) > 0 {
		n := len(samples)
		if n > maxPerChunk {
			n = maxPerChunk
		}
		c := chunkenc.NewChunk()
		for _, smp := range samples[:n] {
			if err := c.Append(smp.T, smp.V); err != nil {
				return nil, err
			}
		}
		out = append(out, diskChunk{
			aggr:       aggr,
			minT:       samples[0].T,
			maxT:       samples[n-1].T,
			numSamples: n,
			payload:    c.Bytes(),
		})
		samples = samples[n:]
	}
	return out, nil
}
