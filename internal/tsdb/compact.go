package tsdb

// Compaction and downsampling over persistent blocks.
//
// CompactPersistentBlocks merges same-resolution blocks into one
// next-level block: series are k-way merged by labels, overlapping samples
// deduplicated per timestamp (the earliest block in the caller's order
// wins, matching the store's read-path dedup), and matcher-level tombstones
// drop whole series so a delete eventually propagates into cold storage.
// The new block is published durably BEFORE any source is deleted — a crash
// between the two leaves overlapping duplicates, which the read path dedups
// and a later compaction folds away, never data loss.
//
// DownsamplePersistentBlock derives a lower-resolution sibling: for every
// resolution bucket [bs, bs+res) it stores the sum, count, min and max of
// the bucket's non-stale samples, each as its own Gorilla chunk stream,
// emitted at timestamp bs+res-1. Aggregating an already-downsampled block
// to a coarser multiple combines aggregates-of-aggregates (sum of sums,
// sum of counts, min of mins, max of maxes), which preserves exactness.
// Staleness markers never enter aggregates; a bucket holding only markers
// emits nothing.

import (
	"fmt"

	"repro/internal/labels"
	"repro/internal/model"
)

// CompactPersistentBlocks merges blocks (all of one resolution) into a new
// persistent block under parent (in memory when parent == ""), applying the
// tombstones. Sources are NOT deleted — the caller deletes them after the
// returned block is durably published. On a timestamp collision within a
// series the earliest block in blocks order wins.
func CompactPersistentBlocks(parent string, blocks []*PersistentBlock, tombs []TombstoneRec) (*PersistentBlock, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("tsdb: compact: no input blocks")
	}
	res := blocks[0].meta.Resolution
	level := blocks[0].meta.Level
	inMin, inMax := blocks[0].meta.MinTime, blocks[0].meta.MaxTime
	sources := make([]string, 0, len(blocks))
	for _, b := range blocks {
		if b.meta.Resolution != res {
			return nil, fmt.Errorf("tsdb: compact: mixed resolutions (%d vs %d)", res, b.meta.Resolution)
		}
		if b.meta.Level > level {
			level = b.meta.Level
		}
		if b.meta.MinTime < inMin {
			inMin = b.meta.MinTime
		}
		if b.meta.MaxTime > inMax {
			inMax = b.meta.MaxTime
		}
		sources = append(sources, b.meta.ULID)
	}
	lists := make([][]aggrSeries, len(blocks))
	for i, b := range blocks {
		var err error
		if lists[i], err = b.allAggrSeries(); err != nil {
			return nil, err
		}
	}
	merged := mergeAggrSeriesLists(lists)
	if len(tombs) > 0 {
		kept := merged[:0]
		for _, as := range merged {
			if !tombstoned(as.lset, tombs) {
				kept = append(kept, as)
			}
		}
		merged = kept
	}
	series, mint, maxt, err := diskSeriesFromAggr(merged, 0)
	if err != nil {
		return nil, err
	}
	if mint > maxt { // everything tombstoned or empty inputs
		mint, maxt = inMin, inMax
	}
	meta := &BlockMeta{
		MinTime:    mint,
		MaxTime:    maxt,
		Level:      level + 1,
		Resolution: res,
		Sources:    sources,
	}
	if parent == "" {
		return newMemPersistentBlock(meta, series)
	}
	dir, err := writeBlockDir(parent, meta, series)
	if err != nil {
		return nil, err
	}
	return OpenBlockDir(dir)
}

// tombstoned reports whether lset matches any tombstone's matcher set.
func tombstoned(lset labels.Labels, tombs []TombstoneRec) bool {
	for _, t := range tombs {
		if len(t.Matchers) > 0 && labels.MatchLabels(lset, t.Matchers...) {
			return true
		}
	}
	return false
}

// mergeAggrSeriesLists merges per-block series lists (each label-sorted)
// into one label-sorted list, combining streams of equal label sets with
// per-timestamp dedup where the earliest list wins.
func mergeAggrSeriesLists(lists [][]aggrSeries) []aggrSeries {
	type cursor struct {
		list int
		s    []aggrSeries
	}
	live := make([]cursor, 0, len(lists))
	for i, l := range lists {
		if len(l) > 0 {
			live = append(live, cursor{list: i, s: l})
		}
	}
	var out []aggrSeries
	for len(live) > 0 {
		// Find the smallest label set among the heads, preferring the
		// earliest list on ties so its samples win the dedup.
		best := -1
		for i := range live {
			if best < 0 {
				best = i
				continue
			}
			if c := labels.Compare(live[i].s[0].lset, live[best].s[0].lset); c < 0 ||
				(c == 0 && live[i].list < live[best].list) {
				best = i
			}
		}
		head := live[best].s[0]
		acc := aggrSeries{lset: head.lset, streams: map[AggrType][]model.Sample{}}
		for a, st := range head.streams {
			acc.streams[a] = st
		}
		live[best].s = live[best].s[1:]
		// Fold every other head with the same labels, in list order.
		for {
			next := -1
			for i := range live {
				if len(live[i].s) > 0 && labels.Compare(live[i].s[0].lset, acc.lset) == 0 {
					if next < 0 || live[i].list < live[next].list {
						next = i
					}
				}
			}
			if next < 0 {
				break
			}
			for a, st := range live[next].s[0].streams {
				acc.streams[a] = mergeStreamsFirstWins(acc.streams[a], st)
			}
			live[next].s = live[next].s[1:]
		}
		kept := live[:0]
		for _, c := range live {
			if len(c.s) > 0 {
				kept = append(kept, c)
			}
		}
		live = kept
		out = append(out, acc)
	}
	return out
}

// mergeStreamsFirstWins merges two timestamp-sorted streams; a wins ties.
func mergeStreamsFirstWins(a, b []model.Sample) []model.Sample {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]model.Sample, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].T < b[j].T:
			out = append(out, a[i])
			i++
		case a[i].T > b[j].T:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// floorDiv is integer division rounding toward negative infinity, so bucket
// assignment is correct for negative timestamps too.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// bucketAggr accumulates one resolution bucket.
type bucketAggr struct {
	start         int64
	sum, min, max float64
	count         float64
	some          bool
}

// DownsamplePersistentBlock derives a block at the given resolution (ms)
// from b, under parent (in memory when parent == ""). b may be raw or a
// finer downsampled block whose resolution divides the target. The source
// block is left in place — multi-resolution stores keep raw and downsampled
// siblings side by side and pick per query.
func DownsamplePersistentBlock(parent string, b *PersistentBlock, resolution int64) (*PersistentBlock, error) {
	if resolution <= 0 {
		return nil, fmt.Errorf("tsdb: downsample: resolution must be positive")
	}
	srcRes := b.meta.Resolution
	if srcRes >= resolution {
		return nil, fmt.Errorf("tsdb: downsample: target %dms not coarser than source %dms", resolution, srcRes)
	}
	if srcRes > 0 && resolution%srcRes != 0 {
		return nil, fmt.Errorf("tsdb: downsample: target %dms not a multiple of source %dms", resolution, srcRes)
	}
	in, err := b.allAggrSeries()
	if err != nil {
		return nil, err
	}
	out := make([]aggrSeries, 0, len(in))
	for _, as := range in {
		var streams map[AggrType][]model.Sample
		if srcRes == 0 {
			streams = downsampleRaw(as.streams[AggrRaw], resolution)
		} else {
			streams = downsampleAggr(as.streams, srcRes, resolution)
		}
		if len(streams[AggrCount]) == 0 {
			continue
		}
		out = append(out, aggrSeries{lset: as.lset, streams: streams})
	}
	series, mint, maxt, err := diskSeriesFromAggr(out, 0)
	if err != nil {
		return nil, err
	}
	if mint > maxt {
		mint, maxt = b.meta.MinTime, b.meta.MaxTime
	}
	meta := &BlockMeta{
		MinTime:    mint,
		MaxTime:    maxt,
		Level:      b.meta.Level,
		Resolution: resolution,
		Sources:    []string{b.meta.ULID},
	}
	if parent == "" {
		return newMemPersistentBlock(meta, series)
	}
	dir, err := writeBlockDir(parent, meta, series)
	if err != nil {
		return nil, err
	}
	return OpenBlockDir(dir)
}

// downsampleRaw buckets a raw sample stream. Staleness markers are dropped
// before aggregation; a bucket of only markers emits nothing.
func downsampleRaw(raw []model.Sample, res int64) map[AggrType][]model.Sample {
	streams := map[AggrType][]model.Sample{}
	var cur bucketAggr
	flush := func() {
		if !cur.some {
			return
		}
		t := cur.start + res - 1
		streams[AggrSum] = append(streams[AggrSum], model.Sample{T: t, V: cur.sum})
		streams[AggrCount] = append(streams[AggrCount], model.Sample{T: t, V: cur.count})
		streams[AggrMin] = append(streams[AggrMin], model.Sample{T: t, V: cur.min})
		streams[AggrMax] = append(streams[AggrMax], model.Sample{T: t, V: cur.max})
		cur = bucketAggr{}
	}
	for _, smp := range raw {
		if model.IsStaleNaN(smp.V) {
			continue
		}
		bs := floorDiv(smp.T, res) * res
		if !cur.some || bs != cur.start {
			flush()
			cur = bucketAggr{start: bs, sum: smp.V, count: 1, min: smp.V, max: smp.V, some: true}
			continue
		}
		cur.sum += smp.V
		cur.count++
		if smp.V < cur.min {
			cur.min = smp.V
		}
		if smp.V > cur.max {
			cur.max = smp.V
		}
	}
	flush()
	return streams
}

// downsampleAggr re-buckets already-downsampled streams to a coarser
// multiple, combining aggregates of aggregates (exactness-preserving).
// The four streams share timestamps by construction.
func downsampleAggr(src map[AggrType][]model.Sample, srcRes, res int64) map[AggrType][]model.Sample {
	sums, counts := src[AggrSum], src[AggrCount]
	mins, maxs := src[AggrMin], src[AggrMax]
	streams := map[AggrType][]model.Sample{}
	var cur bucketAggr
	flush := func() {
		if !cur.some {
			return
		}
		t := cur.start + res - 1
		streams[AggrSum] = append(streams[AggrSum], model.Sample{T: t, V: cur.sum})
		streams[AggrCount] = append(streams[AggrCount], model.Sample{T: t, V: cur.count})
		streams[AggrMin] = append(streams[AggrMin], model.Sample{T: t, V: cur.min})
		streams[AggrMax] = append(streams[AggrMax], model.Sample{T: t, V: cur.max})
		cur = bucketAggr{}
	}
	n := len(sums)
	if len(counts) < n {
		n = len(counts)
	}
	if len(mins) < n {
		n = len(mins)
	}
	if len(maxs) < n {
		n = len(maxs)
	}
	for i := 0; i < n; i++ {
		// The source point was emitted at its bucket's end; recover the
		// bucket start to assign the output bucket.
		srcStart := sums[i].T - srcRes + 1
		bs := floorDiv(srcStart, res) * res
		if !cur.some || bs != cur.start {
			flush()
			cur = bucketAggr{start: bs, sum: sums[i].V, count: counts[i].V, min: mins[i].V, max: maxs[i].V, some: true}
			continue
		}
		cur.sum += sums[i].V
		cur.count += counts[i].V
		if mins[i].V < cur.min {
			cur.min = mins[i].V
		}
		if maxs[i].V > cur.max {
			cur.max = maxs[i].V
		}
	}
	flush()
	return streams
}
