package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/labels"
)

// benchLabels pre-builds the scrape-shaped label sets so the benchmarks
// measure the WAL, not FromStrings.
func benchLabels(n int) []labels.Labels {
	out := make([]labels.Labels, n)
	for i := range out {
		out[i] = labels.FromStrings(labels.MetricName, "wal_bench_metric",
			"node", fmt.Sprintf("n%04d", i), "cluster", "bench")
	}
	return out
}

// BenchmarkWALAppend measures the scrape commit path against a WAL-backed
// head: batches of 100 samples through the batch Appender, one journal
// flush per shard per commit. wal-v1 journals raw records, wal-v2 the
// Gorilla-compressed format (the walbytes/sample metric is the journal
// footprint per appended sample — the compression headline). The memonly
// variant is the same workload without a WAL; the ns/op delta against it is
// the durability cost per sample.
func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []string{"wal-v1", "wal-v2", "memonly"} {
		b.Run(mode, func(b *testing.B) {
			opts := Options{Shards: 8}
			var walDir string
			if mode != "memonly" {
				walDir = filepath.Join(b.TempDir(), "wal")
				opts.WALDir = walDir
				opts.WALCompression = mode == "wal-v2"
			}
			db, err := Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			lsets := benchLabels(100)
			b.ReportAllocs()
			b.ResetTimer()
			i := 0
			for i < b.N {
				app := db.Appender()
				t := int64(i) * 1000
				for s := 0; s < len(lsets) && i < b.N; s++ {
					app.Add(lsets[s], t, float64(i))
					i++
				}
				if _, err := app.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if walDir != "" {
				// Every commit flushed its buffered write, so the on-disk
				// footprint is exact without closing the head.
				b.ReportMetric(float64(walDirJournalBytes(b, walDir))/float64(b.N), "walbytes/sample")
			}
		})
	}
}

// BenchmarkWALReplay measures parallel crash recovery per format: a fixed
// 16-shard WAL (200 series x 250 scrapes = 50k samples) is replayed into a
// fresh head per iteration.
func BenchmarkWALReplay(b *testing.B) {
	for _, mode := range []string{"v1", "v2"} {
		b.Run(mode, func(b *testing.B) {
			walDir := filepath.Join(b.TempDir(), "wal")
			const nSeries, nScrapes = 200, 250
			opts := Options{Shards: 16, WALDir: walDir, WALCompression: mode == "v2"}
			db, err := Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			lsets := benchLabels(nSeries)
			for i := 0; i < nScrapes; i++ {
				app := db.Appender()
				for s := 0; s < nSeries; s++ {
					app.Add(lsets[s], int64(i)*15000, float64(i))
				}
				if _, err := app.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Close(); err != nil {
				b.Fatal(err)
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				re, err := Open(opts)
				if err != nil {
					b.Fatal(err)
				}
				ws, _ := re.WALStats()
				if ws.Replay.Samples != nSeries*nScrapes {
					b.Fatalf("replay recovered %d samples, want %d", ws.Replay.Samples, nSeries*nScrapes)
				}
				b.StopTimer()
				if err := re.Close(); err != nil {
					b.Fatal(err)
				}
				// Closing opened a fresh segment per shard holding no records
				// (empty in v1, header-only in v2); drop those so the next
				// iteration replays the identical byte stream.
				segs, _ := filepath.Glob(filepath.Join(walDir, "shard-*", "*.wal"))
				for _, s := range segs {
					if st, err := os.Stat(s); err == nil && st.Size() <= int64(walFileHeaderLen) {
						os.Remove(s)
					}
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(nSeries*nScrapes)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}
