package tsdb

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync"
)

// WAL format v2: compressed record payloads.
//
// The outer framing (type | payloadLen | crc32c | payload, see wal.go) is
// unchanged — torn-tail repair and CRC validation work byte-for-byte like v1
// — but v2 payloads are compressed:
//
//   - samplesV2 records are Gorilla-encoded: per series, timestamps are
//     delta-of-delta and values are XOR compressed, exactly the scheme the
//     in-memory chunks (chunkenc) and Prometheus's TSDB use. The encoder
//     keeps per-series state (previous t, t-delta, value, XOR window) for
//     the lifetime of one segment file, so a 15s-cadence scrape stream
//     costs ~2 bits per timestamp and a handful of bits per value instead
//     of varint t + 8 value bytes. State resets at every rotation, which
//     keeps each segment self-contained: replay decodes a file from its
//     first byte and never needs another file's state.
//   - seriesV2 / deletesV2 records carry a block-compressed (DEFLATE,
//     fastest level) copy of the v1 payload, with a one-byte flag so
//     payloads that would grow under compression are stored raw.
//
// A v2 file starts with a 5-byte header: the magic "CWAL" followed by the
// format version byte. v1 files have no header — their first byte is a
// record type in 1..3 — and the magic's first byte (0x43) can never be a
// valid v1 record type, so sniffing is unambiguous. Versioning is per file:
// a shard directory may freely mix v1 and v2 checkpoints and segments
// (toggling Options.WALCompression migrates the journal at the next
// rotation or checkpoint), and replay dispatches per file on the header.
const (
	walRecSamplesV2 byte = 4
	walRecSeriesV2  byte = 5
	walRecDeletesV2 byte = 6

	walFormatV1 = 1
	walFormatV2 = 2

	// walFileHeaderLen is the v2 file header: 4 magic bytes + version.
	walFileHeaderLen = 5
)

// walMagic opens every v2 WAL file. Its first byte is far outside the v1
// record-type range, so a v1 decoder can never mistake a header for a
// record (and vice versa).
var walMagic = [4]byte{'C', 'W', 'A', 'L'}

// walSniffVersion classifies a WAL file's bytes. A file that is a strict
// prefix of the header (crash during the very first write) reports
// torn=true and must be truncated to zero. An unknown version is an error:
// silently treating it as corruption would delete a newer format's data.
func walSniffVersion(data []byte) (version, hdrLen int, torn bool, err error) {
	if len(data) == 0 {
		return walFormatV1, 0, false, nil
	}
	n := len(data)
	if n > len(walMagic) {
		n = len(walMagic)
	}
	if !bytes.Equal(data[:n], walMagic[:n]) {
		return walFormatV1, 0, false, nil
	}
	if len(data) < walFileHeaderLen {
		return walFormatV2, 0, true, nil
	}
	if v := data[len(walMagic)]; v != walFormatV2 {
		return 0, 0, false, fmt.Errorf("tsdb: unsupported wal format version %d", v)
	}
	return walFormatV2, walFileHeaderLen, false, nil
}

// walRecTypeValid reports whether a record type may appear in a file of the
// given format version. v1 files accept the raw-payload types only
// (preserving v1's torn semantics exactly); v2 files accept the compressed
// types too. The raw tombstone record (type 7, tombstones.go) is
// format-agnostic and valid in both.
func walRecTypeValid(version int, typ byte) bool {
	switch typ {
	case walRecSeries, walRecSamples, walRecDeletes, walRecTombstone:
		return true
	case walRecSamplesV2, walRecSeriesV2, walRecDeletesV2, walRecTombstoneV2:
		return version >= walFormatV2
	}
	return false
}

// ---------------------------------------------------------------------------
// Bit stream
// ---------------------------------------------------------------------------

// walBitWriter appends bits onto a byte slice (the record payload under
// construction). Unlike chunkenc's bstream it builds directly onto the
// caller's buffer so appendFramed's in-place encoding keeps working.
type walBitWriter struct {
	b    []byte
	free uint8 // bits still unset in the final byte of b
}

func (w *walBitWriter) writeBit(bit bool) {
	if w.free == 0 {
		w.b = append(w.b, 0)
		w.free = 8
	}
	if bit {
		w.b[len(w.b)-1] |= 1 << (w.free - 1)
	}
	w.free--
}

func (w *walBitWriter) writeByte(byt byte) {
	if w.free == 0 {
		w.b = append(w.b, byt)
		return
	}
	i := len(w.b) - 1
	w.b[i] |= byt >> (8 - w.free)
	w.b = append(w.b, byt<<w.free)
}

func (w *walBitWriter) writeBits(u uint64, nbits int) {
	u <<= 64 - uint(nbits)
	for nbits >= 8 {
		w.writeByte(byte(u >> 56))
		u <<= 8
		nbits -= 8
	}
	for nbits > 0 {
		w.writeBit((u >> 63) == 1)
		u <<= 1
		nbits--
	}
}

func (w *walBitWriter) writeUvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	for _, b := range buf[:n] {
		w.writeByte(b)
	}
}

func (w *walBitWriter) writeVarint(v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	for _, b := range buf[:n] {
		w.writeByte(b)
	}
}

// walBitReader reads a bit stream produced by walBitWriter. It keeps up to
// 64 pending bits MSB-aligned in buf so the replay hot path reads whole
// fields with shifts instead of per-bit byte indexing.
type walBitReader struct {
	stream []byte
	off    int    // next byte of stream to load into buf
	buf    uint64 // pending bits, MSB first
	nbits  uint   // valid bits in buf
}

func (r *walBitReader) fill() {
	for r.nbits <= 56 && r.off < len(r.stream) {
		r.buf |= uint64(r.stream[r.off]) << (56 - r.nbits)
		r.off++
		r.nbits += 8
	}
}

func (r *walBitReader) readBit() (bool, error) {
	if r.nbits == 0 {
		r.fill()
		if r.nbits == 0 {
			return false, io.ErrUnexpectedEOF
		}
	}
	bit := r.buf>>63 == 1
	r.buf <<= 1
	r.nbits--
	return bit, nil
}

func (r *walBitReader) readByte() (byte, error) {
	u, err := r.readBits(8)
	return byte(u), err
}

func (r *walBitReader) readBits(nbits int) (uint64, error) {
	if nbits > 57 {
		// The cache tops out at 57 guaranteed bits; split wide reads.
		hi, err := r.readBits(nbits - 32)
		if err != nil {
			return 0, err
		}
		lo, err := r.readBits(32)
		if err != nil {
			return 0, err
		}
		return hi<<32 | lo, nil
	}
	if r.nbits < uint(nbits) {
		r.fill()
		if r.nbits < uint(nbits) {
			return 0, io.ErrUnexpectedEOF
		}
	}
	u := r.buf >> (64 - uint(nbits))
	r.buf <<= uint(nbits)
	r.nbits -= uint(nbits)
	return u, nil
}

func (r *walBitReader) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := r.readByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, fmt.Errorf("tsdb: wal v2 uvarint overflow")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

func (r *walBitReader) readVarint() (int64, error) {
	ux, err := r.readUvarint()
	if err != nil {
		return 0, err
	}
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, nil
}

// ---------------------------------------------------------------------------
// Gorilla samples codec
// ---------------------------------------------------------------------------

// walSeriesV2State is the per-series Gorilla state shared (structurally) by
// the encoder and decoder: previous timestamp, previous t-delta, previous
// value bits and the current XOR leading/trailing-zero window. It is valid
// for exactly one segment file.
type walSeriesV2State struct {
	t        int64
	tDelta   uint64
	v        float64
	leading  uint8
	trailing uint8
	n        uint64 // samples of this series seen in this file
}

// walV2Enc encodes samplesV2 records. One encoder belongs to one open
// segment (or one checkpoint file being written); its state map is keyed by
// WAL series ref.
type walV2Enc struct {
	series map[uint64]*walSeriesV2State
}

func newWalV2Enc() *walV2Enc {
	return &walV2Enc{series: make(map[uint64]*walSeriesV2State)}
}

func (e *walV2Enc) state(ref uint64) *walSeriesV2State {
	s := e.series[ref]
	if s == nil {
		s = &walSeriesV2State{leading: 0xff}
		e.series[ref] = s
	}
	return s
}

// appendSamples encodes recs as a samplesV2 payload onto dst: a plain
// uvarint count, then a bit stream of (ref delta, timestamp, value) tuples.
// Per-series timestamps must be strictly increasing across the whole file —
// the WAL write path guarantees this (appends are accepted in memory before
// they are journalled, and the shard WAL mutex serializes them).
//
// Refs are delta-encoded with a tiny bucket scheme tuned to the two batch
// shapes the appender produces: a scrape commit walks the shard's series in
// a stable order (delta +1 dominates — one bit), a per-series batch repeats
// one ref (delta 0 — two bits); anything else pays 2 bits + a zigzag
// varint.
func (e *walV2Enc) appendSamples(dst []byte, recs []walSampleRec) []byte {
	dst = appendUvarint(dst, uint64(len(recs)))
	w := walBitWriter{b: dst}
	lastRef := uint64(0)
	for _, r := range recs {
		switch d := int64(r.ref) - int64(lastRef); {
		case d == 1:
			w.writeBit(false)
		case d == 0:
			w.writeBits(0b10, 2)
		default:
			w.writeBits(0b11, 2)
			w.writeUvarint(zigzag(d))
		}
		lastRef = r.ref
		s := e.state(r.ref)
		switch s.n {
		case 0:
			w.writeVarint(r.t)
			w.writeBits(math.Float64bits(r.v), 64)
		case 1:
			s.tDelta = uint64(r.t - s.t)
			w.writeUvarint(s.tDelta)
			s.writeXOR(&w, r.v)
		default:
			tDelta := uint64(r.t - s.t)
			dod := int64(tDelta - s.tDelta)
			// Delta-of-delta buckets as in the Gorilla paper (and chunkenc).
			switch {
			case dod == 0:
				w.writeBit(false)
			case walBitRange(dod, 14):
				w.writeBits(0b10, 2)
				w.writeBits(uint64(dod), 14)
			case walBitRange(dod, 17):
				w.writeBits(0b110, 3)
				w.writeBits(uint64(dod), 17)
			case walBitRange(dod, 20):
				w.writeBits(0b1110, 4)
				w.writeBits(uint64(dod), 20)
			default:
				w.writeBits(0b1111, 4)
				w.writeBits(uint64(dod), 64)
			}
			s.tDelta = tDelta
			s.writeXOR(&w, r.v)
		}
		s.t, s.v = r.t, r.v
		s.n++
	}
	return w.b
}

// writeXOR emits v XOR-compressed against the series' previous value,
// reusing the previous leading/trailing window when it still fits.
func (s *walSeriesV2State) writeXOR(w *walBitWriter, v float64) {
	delta := math.Float64bits(v) ^ math.Float64bits(s.v)
	if delta == 0 {
		w.writeBit(false)
		return
	}
	w.writeBit(true)
	leading := uint8(bits.LeadingZeros64(delta))
	trailing := uint8(bits.TrailingZeros64(delta))
	if leading >= 32 {
		leading = 31 // clamp into the 5-bit field
	}
	if s.leading != 0xff && leading >= s.leading && trailing >= s.trailing {
		w.writeBit(false)
		w.writeBits(delta>>s.trailing, 64-int(s.leading)-int(s.trailing))
		return
	}
	s.leading, s.trailing = leading, trailing
	w.writeBit(true)
	w.writeBits(uint64(leading), 5)
	sigbits := 64 - int(leading) - int(trailing)
	w.writeBits(uint64(sigbits), 6)
	w.writeBits(delta>>trailing, sigbits)
}

func walBitRange(x int64, nbits uint8) bool {
	return -((1<<(nbits-1))-1) <= x && x <= 1<<(nbits-1)-1
}

func zigzag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// walV2Dec decodes samplesV2 records. One decoder belongs to one file being
// replayed; like the encoder, its state spans records but never files.
//
// Refs are assigned sequentially per shard, so the decode state lives in a
// ref-indexed slice — one bounds check per sample on the replay hot path
// instead of a map probe. Refs beyond the dense window (possible only in a
// pathological or corrupt stream) fall back to a map rather than letting a
// decoded integer size an allocation.
type walV2Dec struct {
	dense  []walSeriesV2State
	sparse map[uint64]*walSeriesV2State
}

// walV2DenseRefs caps the ref-indexed fast path (~40 MB of state at the
// cap, far above any real shard's series count).
const walV2DenseRefs = 1 << 20

func newWalV2Dec() *walV2Dec {
	return &walV2Dec{}
}

// state returns the series state for ref. The zero value is a valid fresh
// state: the encoder always writes a full XOR window before reusing one, so
// the decoder needs no 0xff sentinel.
func (d *walV2Dec) state(ref uint64) *walSeriesV2State {
	if ref < walV2DenseRefs {
		if need := int(ref) + 1; need > len(d.dense) {
			if need <= cap(d.dense) {
				d.dense = d.dense[:need]
			} else {
				grown := make([]walSeriesV2State, need, 2*need)
				copy(grown, d.dense)
				d.dense = grown
			}
		}
		return &d.dense[ref]
	}
	if d.sparse == nil {
		d.sparse = make(map[uint64]*walSeriesV2State)
	}
	s := d.sparse[ref]
	if s == nil {
		s = &walSeriesV2State{}
		d.sparse[ref] = s
	}
	return s
}

// decodeSamples decodes one samplesV2 payload, appending onto dst. A
// payload whose CRC passed can only fail to decode through an encoder bug
// or a CRC collision; the caller treats an error as fatal corruption.
func (d *walV2Dec) decodeSamples(dst []walSampleRec, payload []byte) ([]walSampleRec, error) {
	count, rest, err := readUvarint(payload)
	if err != nil {
		return dst, err
	}
	if count > uint64(len(rest))*8/3 {
		// A sample costs >= 3 bits (sequential ref, dod 0, value unchanged);
		// anything bigger is garbage masquerading as a count, not an
		// allocation request.
		return dst, fmt.Errorf("tsdb: wal v2 sample count %d exceeds payload", count)
	}
	r := walBitReader{stream: rest}
	lastRef := uint64(0)
	for i := uint64(0); i < count; i++ {
		ref := lastRef
		// Fast path for the dominant '0' (ref+1) bucket, straight off the
		// bit cache; the bucket decode below is the uncommon tail.
		r.fill()
		if r.nbits >= 1 && r.buf>>63 == 0 {
			r.buf <<= 1
			r.nbits--
			ref = lastRef + 1
		} else {
			bit, err := r.readBit()
			if err != nil {
				return dst, err
			}
			if !bit {
				ref = lastRef + 1
			} else {
				if bit, err = r.readBit(); err != nil {
					return dst, err
				}
				if bit {
					zz, err := r.readUvarint()
					if err != nil {
						return dst, err
					}
					ref = uint64(int64(lastRef) + unzigzag(zz))
				}
			}
		}
		lastRef = ref
		s := d.state(ref)
		var t int64
		var v float64
		switch s.n {
		case 0:
			if t, err = r.readVarint(); err != nil {
				return dst, err
			}
			vb, err := r.readBits(64)
			if err != nil {
				return dst, err
			}
			v = math.Float64frombits(vb)
		case 1:
			td, err := r.readUvarint()
			if err != nil {
				return dst, err
			}
			s.tDelta = td
			t = s.t + int64(td)
			if v, err = s.readXOR(&r); err != nil {
				return dst, err
			}
		default:
			dod, err := readDOD(&r)
			if err != nil {
				return dst, err
			}
			s.tDelta = uint64(int64(s.tDelta) + dod)
			t = s.t + int64(s.tDelta)
			if v, err = s.readXOR(&r); err != nil {
				return dst, err
			}
		}
		s.t, s.v = t, v
		s.n++
		dst = append(dst, walSampleRec{ref: ref, t: t, v: v})
	}
	return dst, nil
}

// readDOD decodes one delta-of-delta bucket.
func readDOD(r *walBitReader) (int64, error) {
	// Fast path: dod == 0 (a single '0' bit) is the steady-cadence common
	// case; peek it off the cache without the prefix loop.
	r.fill()
	if r.nbits >= 1 && r.buf>>63 == 0 {
		r.buf <<= 1
		r.nbits--
		return 0, nil
	}
	var d byte
	for i := 0; i < 4; i++ {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if !bit {
			break
		}
		d |= 1 << (3 - i)
		if i == 3 {
			break
		}
	}
	var sz uint8
	var dod int64
	switch d {
	case 0b0000:
		// dod = 0
	case 0b1000:
		sz = 14
	case 0b1100:
		sz = 17
	case 0b1110:
		sz = 20
	case 0b1111:
		b, err := r.readBits(64)
		if err != nil {
			return 0, err
		}
		dod = int64(b)
	default:
		return 0, fmt.Errorf("tsdb: wal v2 invalid dod prefix %04b", d)
	}
	if sz != 0 {
		b, err := r.readBits(int(sz))
		if err != nil {
			return 0, err
		}
		if b > (1 << (sz - 1)) {
			b -= 1 << sz // sign-extend
		}
		dod = int64(b)
	}
	return dod, nil
}

// readXOR decodes one XOR-compressed value against the series state.
func (s *walSeriesV2State) readXOR(r *walBitReader) (float64, error) {
	// Fast paths off the bit cache: '0' (value unchanged) and '10' +
	// sigbits (window reuse, when the whole field is already buffered).
	// Neither consumes anything on fall-through.
	r.fill()
	if r.nbits >= 2 {
		if r.buf>>63 == 0 {
			r.buf <<= 1
			r.nbits--
			return s.v, nil
		}
		if r.buf>>62 == 0b10 {
			sigbits := 64 - int(s.leading) - int(s.trailing)
			if need := uint(sigbits) + 2; need <= r.nbits {
				u := (r.buf << 2) >> (64 - uint(sigbits))
				r.buf <<= need
				r.nbits -= need
				return math.Float64frombits(math.Float64bits(s.v) ^ (u << s.trailing)), nil
			}
		}
	}
	bit, err := r.readBit()
	if err != nil {
		return 0, err
	}
	if !bit {
		return s.v, nil // unchanged
	}
	bit, err = r.readBit()
	if err != nil {
		return 0, err
	}
	if bit {
		l, err := r.readBits(5)
		if err != nil {
			return 0, err
		}
		sig, err := r.readBits(6)
		if err != nil {
			return 0, err
		}
		if sig == 0 {
			sig = 64 // 64 significant bits encode as 0 in the 6-bit field
		}
		trailing := 64 - int(l) - int(sig)
		if trailing < 0 {
			// Impossible from our encoder; a CRC-colliding corruption.
			return 0, fmt.Errorf("tsdb: wal v2 xor window overflows (leading=%d sig=%d)", l, sig)
		}
		s.leading, s.trailing = uint8(l), uint8(trailing)
	}
	sigbits := 64 - int(s.leading) - int(s.trailing)
	b, err := r.readBits(sigbits)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(math.Float64bits(s.v) ^ (b << s.trailing)), nil
}

// ---------------------------------------------------------------------------
// Block compression for series / tombstone payloads
// ---------------------------------------------------------------------------

// flateEnc bundles a DEFLATE encoder with its output buffer so both are
// pooled together: encoder state is large and the buffer would otherwise
// be a fresh allocation per record, and series records are written
// whenever a commit registers new series.
type flateEnc struct {
	bb bytes.Buffer
	fw *flate.Writer
}

var flateEncs = sync.Pool{
	New: func() any {
		fw, err := flate.NewWriter(io.Discard, flate.BestSpeed)
		if err != nil {
			panic(err) // BestSpeed is a valid level; cannot happen
		}
		return &flateEnc{fw: fw}
	},
}

// appendCompressed appends raw to dst behind a one-byte flag: 1 = DEFLATE
// (fastest level), 0 = stored as-is because compression would have grown
// it. Small registrations stay raw; checkpoint-sized batches compress.
func appendCompressed(dst, raw []byte) []byte {
	e := flateEncs.Get().(*flateEnc)
	e.bb.Reset()
	e.fw.Reset(&e.bb)
	_, werr := e.fw.Write(raw)
	cerr := e.fw.Close()
	if werr == nil && cerr == nil && e.bb.Len() < len(raw) {
		dst = append(dst, 1)
		dst = append(dst, e.bb.Bytes()...)
	} else {
		dst = append(dst, 0)
		dst = append(dst, raw...)
	}
	flateEncs.Put(e)
	return dst
}

// flateDecs pools DEFLATE readers (each carries a ~32-64KB window): replay
// inflates one series record per registration batch, so a multi-million-
// series recovery would otherwise churn a reader per record on the
// latency-critical restart path.
var flateDecs = sync.Pool{
	New: func() any {
		return flate.NewReader(bytes.NewReader(nil))
	},
}

// walDecompress reverses appendCompressed. The output is bounded by
// walMaxPayload, like every decoded payload.
func walDecompress(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("tsdb: wal v2 compressed payload empty")
	}
	flag, data := payload[0], payload[1:]
	switch flag {
	case 0:
		return data, nil
	case 1:
		fr := flateDecs.Get().(io.ReadCloser)
		if err := fr.(flate.Resetter).Reset(bytes.NewReader(data), nil); err != nil {
			flateDecs.Put(fr)
			return nil, fmt.Errorf("tsdb: wal v2 inflate reset: %w", err)
		}
		out, err := io.ReadAll(io.LimitReader(fr, walMaxPayload+1))
		cerr := fr.Close()
		flateDecs.Put(fr)
		if err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("tsdb: wal v2 inflate: %w", err)
		}
		if len(out) > walMaxPayload {
			return nil, fmt.Errorf("tsdb: wal v2 inflated payload exceeds %d bytes", walMaxPayload)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("tsdb: wal v2 unknown compression flag %d", flag)
	}
}
