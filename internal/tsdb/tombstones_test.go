package tsdb

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/labels"
)

func tombMatcher(t *testing.T) *labels.Matcher {
	t.Helper()
	return labels.MustMatcher(labels.MatchRegexp, "node", "n00[0-9]")
}

// TestWALTombstoneReplay: a tombstone is journalled to the WAL like any
// append — after a restart the deleted window stays deleted, series
// re-created after the delete keep their post-delete samples, and the
// tombstone log itself survives with its sequence number. The matrix runs
// the v1 and v2 (compressed) formats and both shard layouts: delete
// durability must be invisible to both.
func TestWALTombstoneReplay(t *testing.T) {
	for _, shards := range []int{1, 16} {
		for _, compress := range []bool{false, true} {
			t.Run(fmt.Sprintf("shards=%d,compress=%v", shards, compress), func(t *testing.T) {
				opts := Options{Shards: shards, WALDir: filepath.Join(t.TempDir(), "wal"),
					WALSegmentSize: 4096, WALCompression: compress}
				db, err := Open(opts)
				if err != nil {
					t.Fatal(err)
				}
				replayFill(t, db, 40, 10)
				if n, err := db.ApplyTombstone(1, tombMatcher(t)); err != nil || n != 10 {
					t.Fatalf("ApplyTombstone = (%d, %v), want 10 deleted series", n, err)
				}
				// Re-create part of the deleted range after the tombstone:
				// within one WAL stream, ordering makes this safe.
				replayFill(t, db, 40, 15)
				live := selectAll(t, db)
				if err := db.Close(); err != nil {
					t.Fatal(err)
				}

				re, err := Open(opts)
				if err != nil {
					t.Fatal(err)
				}
				defer re.Close()
				assertSeriesEqual(t, selectAll(t, re), live, "tombstone WAL round-trip")
				tombs := re.Tombstones()
				if len(tombs) != 1 || tombs[0].Seq != 1 {
					t.Fatalf("replayed tombstone log %+v, want one record with seq 1", tombs)
				}
				if got := re.TombstoneSeq(); got != 1 {
					t.Fatalf("TombstoneSeq = %d, want 1", got)
				}
			})
		}
	}
}

// TestWALTombstoneCheckpoint: checkpointing rewrites the WAL as a
// snapshot; the tombstone records must be carried into it (first, before
// any series) or a restart after checkpoint would resurrect the deleted
// window from nothing.
func TestWALTombstoneCheckpoint(t *testing.T) {
	opts := Options{Shards: 4, WALDir: filepath.Join(t.TempDir(), "wal"), WALSegmentSize: 4096}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	replayFill(t, db, 40, 10)
	if _, err := db.ApplyTombstone(1, tombMatcher(t)); err != nil {
		t.Fatal(err)
	}
	replayFill(t, db, 40, 15)
	if err := db.CheckpointWAL(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	live := selectAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertSeriesEqual(t, selectAll(t, re), live, "tombstone checkpoint round-trip")
	if tombs := re.Tombstones(); len(tombs) != 1 || tombs[0].Seq != 1 {
		t.Fatalf("post-checkpoint tombstone log %+v, want one record with seq 1", tombs)
	}
}

// TestWALTombstoneDedup: applying the same sequence number twice is a
// no-op — the anti-entropy paths re-apply tombstone unions freely, so
// idempotence is what keeps the log (and the WAL) from growing on every
// sync.
func TestWALTombstoneDedup(t *testing.T) {
	opts := Options{Shards: 4, WALDir: filepath.Join(t.TempDir(), "wal")}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	replayFill(t, db, 40, 10)
	if n, err := db.ApplyTombstone(7, tombMatcher(t)); err != nil || n != 10 {
		t.Fatalf("first apply = (%d, %v), want 10", n, err)
	}
	replayFill(t, db, 40, 15) // re-create
	if n, err := db.ApplyTombstone(7, tombMatcher(t)); err != nil || n != 0 {
		t.Fatalf("duplicate apply = (%d, %v), want a 0-count no-op", n, err)
	}
	if tombs := db.Tombstones(); len(tombs) != 1 {
		t.Fatalf("tombstone log has %d records, want 1", len(tombs))
	}
	// A distinct sequence with the same matchers IS applied (a second,
	// later delete of the same selector).
	if n, err := db.ApplyTombstone(9, tombMatcher(t)); err != nil || n != 10 {
		t.Fatalf("second delete = (%d, %v), want 10", n, err)
	}
	if got := db.TombstoneSeq(); got != 9 {
		t.Fatalf("TombstoneSeq = %d, want 9", got)
	}
}

// TestWALTombstoneNoWAL: tombstones on a WAL-less head still delete (the
// in-memory log dedups), they just aren't durable — the cluster oracle
// runs this way.
func TestWALTombstoneNoWAL(t *testing.T) {
	db := MustOpen(DefaultOptions())
	defer db.Close()
	replayFill(t, db, 40, 10)
	if n, err := db.ApplyTombstone(1, tombMatcher(t)); err != nil || n != 10 {
		t.Fatalf("ApplyTombstone = (%d, %v), want 10", n, err)
	}
	if got := len(selectAll(t, db)); got != 30 {
		t.Fatalf("%d series survive, want 30", got)
	}
}
