package tsdb

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/labels"
	"repro/internal/model"
)

func hintsTestDB(t *testing.T) *DB {
	t.Helper()
	opts := DefaultOptions()
	opts.Shards = 8
	db := MustOpen(opts)
	for s := 0; s < 20; s++ {
		ls := labels.FromStrings(labels.MetricName, "hint_metric",
			"instance", fmt.Sprintf("n%02d", s))
		for i := int64(0); i < 50; i++ {
			if err := db.Append(ls, i*1000, float64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// TestSelectWithHintsMatchesSelect: without a budget the hint path must be
// byte-identical to plain Select.
func TestSelectWithHintsMatchesSelect(t *testing.T) {
	db := hintsTestDB(t)
	m := labels.MustMatcher(labels.MatchEqual, labels.MetricName, "hint_metric")
	want, err := db.Select(5000, 20000, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int64{0, 1 << 40} {
		got, err := db.SelectWithHints(model.SelectHints{Start: 5000, End: 20000, SampleLimit: limit}, m)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("limit %d: hinted select diverged from Select", limit)
		}
	}
}

// TestSelectWithHintsEnforcesBudget: a budget smaller than the matching
// sample count aborts the pass with ErrSampleLimit.
func TestSelectWithHintsEnforcesBudget(t *testing.T) {
	db := hintsTestDB(t)
	m := labels.MustMatcher(labels.MatchEqual, labels.MetricName, "hint_metric")
	// 20 series × 50 samples = 1000 matching samples.
	_, err := db.SelectWithHints(model.SelectHints{Start: 0, End: 1 << 60, SampleLimit: 100}, m)
	if !errors.Is(err, model.ErrSampleLimit) {
		t.Fatalf("expected ErrSampleLimit, got %v", err)
	}
	// A budget that fits must succeed.
	got, err := db.SelectWithHints(model.SelectHints{Start: 0, End: 1 << 60, SampleLimit: 1000}, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Errorf("got %d series, want 20", len(got))
	}
}
