// Package chunkenc implements Gorilla-style time-series chunk compression:
// delta-of-delta encoded timestamps and XOR-encoded float64 values, the same
// scheme Prometheus uses for its TSDB chunks. A chunk holds samples of one
// series in timestamp order.
package chunkenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Chunk is a compressed sequence of (timestamp, value) samples.
type Chunk struct {
	b   bstream
	num uint16
	// appender state
	t        int64
	v        float64
	tDelta   uint64
	leading  uint8
	trailing uint8
}

// NewChunk returns an empty chunk.
func NewChunk() *Chunk {
	return &Chunk{leading: 0xff}
}

// FromBytes reconstructs a chunk from Bytes() output. The chunk is
// read-only; appending to it is not supported.
func FromBytes(data []byte) (*Chunk, error) {
	if len(data) < 2 {
		return nil, errors.New("chunkenc: truncated chunk header")
	}
	c := &Chunk{leading: 0xff}
	c.num = binary.BigEndian.Uint16(data[:2])
	c.b.stream = append([]byte(nil), data[2:]...)
	c.b.count = 0 // full bytes, no partial bit state for reading
	return c, nil
}

// FromBytesNoCopy is FromBytes without the defensive copy: the returned
// chunk aliases data, so the caller must guarantee data stays immutable and
// mapped for the chunk's lifetime. The block store uses it to iterate
// chunks straight out of an mmap'd segment with zero per-chunk heap cost.
func FromBytesNoCopy(data []byte) (*Chunk, error) {
	if len(data) < 2 {
		return nil, errors.New("chunkenc: truncated chunk header")
	}
	c := &Chunk{leading: 0xff}
	c.num = binary.BigEndian.Uint16(data[:2])
	c.b.stream = data[2:]
	return c, nil
}

// NumSamples returns the number of samples in the chunk.
func (c *Chunk) NumSamples() int { return int(c.num) }

// Bytes serializes the chunk: 2-byte big-endian count, then the bit stream.
func (c *Chunk) Bytes() []byte {
	out := make([]byte, 2+len(c.b.stream))
	binary.BigEndian.PutUint16(out[:2], c.num)
	copy(out[2:], c.b.stream)
	return out
}

// Append adds a sample. Timestamps must be strictly increasing.
func (c *Chunk) Append(t int64, v float64) error {
	switch c.num {
	case 0:
		// First sample: varint timestamp + raw value.
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], t)
		for _, b := range buf[:n] {
			c.b.writeByte(b)
		}
		c.b.writeBits(math.Float64bits(v), 64)
	case 1:
		if t <= c.t {
			return fmt.Errorf("chunkenc: out-of-order timestamp %d <= %d", t, c.t)
		}
		tDelta := uint64(t - c.t)
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], tDelta)
		for _, b := range buf[:n] {
			c.b.writeByte(b)
		}
		c.tDelta = tDelta
		c.writeVDelta(v)
	default:
		if t <= c.t {
			return fmt.Errorf("chunkenc: out-of-order timestamp %d <= %d", t, c.t)
		}
		tDelta := uint64(t - c.t)
		dod := int64(tDelta - c.tDelta)
		// Delta-of-delta buckets as in the Gorilla paper.
		switch {
		case dod == 0:
			c.b.writeBit(false)
		case bitRange(dod, 14):
			c.b.writeBits(0b10, 2)
			c.b.writeBits(uint64(dod), 14)
		case bitRange(dod, 17):
			c.b.writeBits(0b110, 3)
			c.b.writeBits(uint64(dod), 17)
		case bitRange(dod, 20):
			c.b.writeBits(0b1110, 4)
			c.b.writeBits(uint64(dod), 20)
		default:
			c.b.writeBits(0b1111, 4)
			c.b.writeBits(uint64(dod), 64)
		}
		c.tDelta = tDelta
		c.writeVDelta(v)
	}
	c.t = t
	c.v = v
	c.num++
	return nil
}

func (c *Chunk) writeVDelta(v float64) {
	vDelta := math.Float64bits(v) ^ math.Float64bits(c.v)
	if vDelta == 0 {
		c.b.writeBit(false)
		return
	}
	c.b.writeBit(true)
	leading := uint8(bits.LeadingZeros64(vDelta))
	trailing := uint8(bits.TrailingZeros64(vDelta))
	// Clamp to 31 so it fits the 5-bit field.
	if leading >= 32 {
		leading = 31
	}
	if c.leading != 0xff && leading >= c.leading && trailing >= c.trailing {
		// Fits the previous window: reuse it.
		c.b.writeBit(false)
		c.b.writeBits(vDelta>>c.trailing, 64-int(c.leading)-int(c.trailing))
		return
	}
	c.leading, c.trailing = leading, trailing
	c.b.writeBit(true)
	c.b.writeBits(uint64(leading), 5)
	sigbits := 64 - int(leading) - int(trailing)
	c.b.writeBits(uint64(sigbits), 6)
	c.b.writeBits(vDelta>>trailing, sigbits)
}

func bitRange(x int64, nbits uint8) bool {
	return -((1<<(nbits-1))-1) <= x && x <= 1<<(nbits-1)-1
}

// Iterator iterates the samples of a chunk.
type Iterator struct {
	br       breader
	numTotal uint16
	numRead  uint16
	t        int64
	v        float64
	tDelta   uint64
	leading  uint8
	trailing uint8
	err      error
}

// Iterator returns a fresh iterator positioned before the first sample.
func (c *Chunk) Iterator() *Iterator {
	return &Iterator{
		br:       breader{stream: c.b.stream},
		numTotal: c.num,
	}
}

// Next advances to the next sample, returning false at the end or on error.
func (it *Iterator) Next() bool {
	if it.err != nil || it.numRead == it.numTotal {
		return false
	}
	if it.numRead == 0 {
		t, err := it.br.readVarint()
		if err != nil {
			it.err = err
			return false
		}
		v, err := it.br.readBits(64)
		if err != nil {
			it.err = err
			return false
		}
		it.t = t
		it.v = math.Float64frombits(v)
		it.numRead++
		return true
	}
	if it.numRead == 1 {
		tDelta, err := it.br.readUvarint()
		if err != nil {
			it.err = err
			return false
		}
		it.tDelta = tDelta
		it.t += int64(tDelta)
		if !it.readValue() {
			return false
		}
		it.numRead++
		return true
	}
	// Delta-of-delta.
	var d byte
	for i := 0; i < 4; i++ {
		bit, err := it.br.readBit()
		if err != nil {
			it.err = err
			return false
		}
		if !bit {
			break
		}
		d |= 1 << (3 - i)
		if i == 3 {
			break
		}
	}
	var sz uint8
	var dod int64
	switch d {
	case 0b0000:
		// dod = 0
	case 0b1000:
		sz = 14
	case 0b1100:
		sz = 17
	case 0b1110:
		sz = 20
	case 0b1111:
		b, err := it.br.readBits(64)
		if err != nil {
			it.err = err
			return false
		}
		dod = int64(b)
	default:
		it.err = fmt.Errorf("chunkenc: invalid dod prefix %04b", d)
		return false
	}
	if sz != 0 {
		b, err := it.br.readBits(int(sz))
		if err != nil {
			it.err = err
			return false
		}
		// Sign-extend.
		if b > (1 << (sz - 1)) {
			b -= 1 << sz
		}
		dod = int64(b)
	}
	it.tDelta = uint64(int64(it.tDelta) + dod)
	it.t += int64(it.tDelta)
	if !it.readValue() {
		return false
	}
	it.numRead++
	return true
}

func (it *Iterator) readValue() bool {
	bit, err := it.br.readBit()
	if err != nil {
		it.err = err
		return false
	}
	if !bit {
		return true // value unchanged
	}
	bit, err = it.br.readBit()
	if err != nil {
		it.err = err
		return false
	}
	if bit {
		l, err := it.br.readBits(5)
		if err != nil {
			it.err = err
			return false
		}
		s, err := it.br.readBits(6)
		if err != nil {
			it.err = err
			return false
		}
		it.leading = uint8(l)
		if s == 0 {
			s = 64
		}
		it.trailing = 64 - uint8(l) - uint8(s)
	}
	sigbits := 64 - int(it.leading) - int(it.trailing)
	b, err := it.br.readBits(sigbits)
	if err != nil {
		it.err = err
		return false
	}
	vbits := math.Float64bits(it.v) ^ (b << it.trailing)
	it.v = math.Float64frombits(vbits)
	return true
}

// At returns the current sample.
func (it *Iterator) At() (int64, float64) { return it.t, it.v }

// Err returns the first error encountered.
func (it *Iterator) Err() error { return it.err }

// bstream is an append-only bit stream.
type bstream struct {
	stream []byte
	count  uint8 // bits free in the last byte
}

func (b *bstream) writeBit(bit bool) {
	if b.count == 0 {
		b.stream = append(b.stream, 0)
		b.count = 8
	}
	i := len(b.stream) - 1
	if bit {
		b.stream[i] |= 1 << (b.count - 1)
	}
	b.count--
}

func (b *bstream) writeByte(byt byte) {
	if b.count == 0 {
		b.stream = append(b.stream, 0)
		b.count = 8
	}
	i := len(b.stream) - 1
	// Fill what's left of the current byte, spill into the next.
	b.stream[i] |= byt >> (8 - b.count)
	b.stream = append(b.stream, 0)
	i++
	b.stream[i] = byt << b.count
}

func (b *bstream) writeBits(u uint64, nbits int) {
	u <<= 64 - uint(nbits)
	for nbits >= 8 {
		b.writeByte(byte(u >> 56))
		u <<= 8
		nbits -= 8
	}
	for nbits > 0 {
		b.writeBit((u >> 63) == 1)
		u <<= 1
		nbits--
	}
}

// breader reads a bit stream.
type breader struct {
	stream []byte
	off    int   // byte offset
	count  uint8 // bits already consumed in stream[off]
}

var errEOS = errors.New("chunkenc: end of stream")

func (r *breader) readBit() (bool, error) {
	if r.off >= len(r.stream) {
		return false, errEOS
	}
	bit := (r.stream[r.off]>>(7-r.count))&1 == 1
	r.count++
	if r.count == 8 {
		r.count = 0
		r.off++
	}
	return bit, nil
}

func (r *breader) readByte() (byte, error) {
	if r.off >= len(r.stream) {
		return 0, errEOS
	}
	if r.count == 0 {
		b := r.stream[r.off]
		r.off++
		return b, nil
	}
	if r.off+1 >= len(r.stream) {
		return 0, errEOS
	}
	b := r.stream[r.off] << r.count
	r.off++
	b |= r.stream[r.off] >> (8 - r.count)
	return b, nil
}

func (r *breader) readBits(nbits int) (uint64, error) {
	var u uint64
	for nbits >= 8 {
		b, err := r.readByte()
		if err != nil {
			return 0, err
		}
		u = u<<8 | uint64(b)
		nbits -= 8
	}
	for nbits > 0 {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		u <<= 1
		if bit {
			u |= 1
		}
		nbits--
	}
	return u, nil
}

func (r *breader) readVarint() (int64, error) {
	ux, err := r.readUvarint()
	if err != nil {
		return 0, err
	}
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, nil
}

func (r *breader) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := r.readByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, errors.New("chunkenc: uvarint overflow")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}
