package chunkenc

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

type sample struct {
	t int64
	v float64
}

func roundTrip(t *testing.T, in []sample) {
	t.Helper()
	c := NewChunk()
	for _, s := range in {
		if err := c.Append(s.t, s.v); err != nil {
			t.Fatalf("Append(%d, %v): %v", s.t, s.v, err)
		}
	}
	if c.NumSamples() != len(in) {
		t.Fatalf("NumSamples = %d, want %d", c.NumSamples(), len(in))
	}
	it := c.Iterator()
	for i, want := range in {
		if !it.Next() {
			t.Fatalf("Next() false at %d: %v", i, it.Err())
		}
		gt, gv := it.At()
		if gt != want.t {
			t.Fatalf("sample %d: t = %d, want %d", i, gt, want.t)
		}
		if gv != want.v && !(math.IsNaN(gv) && math.IsNaN(want.v)) {
			t.Fatalf("sample %d: v = %v, want %v", i, gv, want.v)
		}
	}
	if it.Next() {
		t.Fatal("iterator did not stop")
	}
	if it.Err() != nil {
		t.Fatalf("iterator error: %v", it.Err())
	}
}

func TestEmptyChunk(t *testing.T) {
	c := NewChunk()
	if c.NumSamples() != 0 {
		t.Error("empty chunk has samples")
	}
	if c.Iterator().Next() {
		t.Error("empty iterator advanced")
	}
}

func TestSingleSample(t *testing.T) {
	roundTrip(t, []sample{{1700000000000, 42.5}})
}

func TestTwoSamples(t *testing.T) {
	roundTrip(t, []sample{{1000, 1}, {2000, 2}})
}

func TestConstantValues(t *testing.T) {
	var in []sample
	for i := int64(0); i < 100; i++ {
		in = append(in, sample{1000 + i*15000, 3.14})
	}
	roundTrip(t, in)
	// Constant values with regular spacing should compress extremely well:
	// roughly 2 bits per sample after the header.
	c := NewChunk()
	for _, s := range in {
		c.Append(s.t, s.v)
	}
	if n := len(c.Bytes()); n > 64 {
		t.Errorf("constant chunk too large: %d bytes for 100 samples", n)
	}
}

func TestCounterLikeSeries(t *testing.T) {
	var in []sample
	v := 0.0
	for i := int64(0); i < 500; i++ {
		v += 123.456
		in = append(in, sample{i * 15000, v})
	}
	roundTrip(t, in)
}

func TestIrregularTimestamps(t *testing.T) {
	in := []sample{
		{-5000, 1}, {-200, 2}, {0, 3}, {1, 4}, {1000000, 5}, {1000001, math.Inf(1)},
	}
	roundTrip(t, in)
}

func TestSpecialValues(t *testing.T) {
	roundTrip(t, []sample{
		{1, math.NaN()}, {2, 0.0}, {3, math.Copysign(0, -1)},
		{4, math.Inf(-1)}, {5, math.MaxFloat64}, {6, math.SmallestNonzeroFloat64},
	})
}

func TestOutOfOrderRejected(t *testing.T) {
	c := NewChunk()
	if err := c.Append(1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(1000, 2); err == nil {
		t.Error("equal timestamp accepted")
	}
	if err := c.Append(999, 2); err == nil {
		t.Error("earlier timestamp accepted")
	}
	// Third sample path (dod) also rejects.
	c.Append(2000, 2)
	if err := c.Append(1500, 3); err == nil {
		t.Error("out-of-order dod accepted")
	}
}

func TestSerializeDeserialize(t *testing.T) {
	c := NewChunk()
	for i := int64(0); i < 50; i++ {
		c.Append(i*1000, float64(i)*1.5)
	}
	data := c.Bytes()
	c2, err := FromBytes(data)
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if c2.NumSamples() != 50 {
		t.Fatalf("NumSamples after decode = %d", c2.NumSamples())
	}
	it := c2.Iterator()
	for i := int64(0); i < 50; i++ {
		if !it.Next() {
			t.Fatalf("Next false at %d: %v", i, it.Err())
		}
		gt, gv := it.At()
		if gt != i*1000 || gv != float64(i)*1.5 {
			t.Fatalf("decoded sample %d = (%d, %v)", i, gt, gv)
		}
	}
}

func TestFromBytesTruncated(t *testing.T) {
	if _, err := FromBytes([]byte{0}); err == nil {
		t.Error("expected error for truncated header")
	}
}

func TestCompressionRatio(t *testing.T) {
	// RAPL-like counter scraped every 15s for 4h: 960 samples.
	c := NewChunk()
	rng := rand.New(rand.NewSource(1))
	v := 1e9
	for i := int64(0); i < 960; i++ {
		v += 50_000_000 * (0.9 + 0.2*rng.Float64()) // ~50 J/s at µJ resolution
		c.Append(i*15000, v)
	}
	raw := 960 * 16 // 8 bytes t + 8 bytes v
	got := len(c.Bytes())
	if got >= raw {
		t.Errorf("no compression achieved: %d >= %d", got, raw)
	}
	t.Logf("compression: %d -> %d bytes (%.1fx)", raw, got, float64(raw)/float64(got))
}

// Property: any strictly-increasing timestamp sequence with arbitrary values
// round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(deltas []uint16, vals []float64, start int64) bool {
		n := len(deltas)
		if len(vals) < n {
			n = len(vals)
		}
		if n > 200 {
			n = 200
		}
		start %= 1 << 40
		in := make([]sample, 0, n)
		tcur := start
		for i := 0; i < n; i++ {
			tcur += int64(deltas[i]) + 1 // strictly increasing
			in = append(in, sample{tcur, vals[i]})
		}
		c := NewChunk()
		for _, s := range in {
			if err := c.Append(s.t, s.v); err != nil {
				return false
			}
		}
		it := c.Iterator()
		for _, want := range in {
			if !it.Next() {
				return false
			}
			gt, gv := it.At()
			if gt != want.t {
				return false
			}
			if gv != want.v && !(math.IsNaN(gv) && math.IsNaN(want.v)) {
				return false
			}
		}
		return !it.Next() && it.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: serialization round-trips through FromBytes.
func TestBytesRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewChunk()
		var ts []int64
		tcur := int64(0)
		for i := 0; i < int(n); i++ {
			tcur += rng.Int63n(60000) + 1
			ts = append(ts, tcur)
			c.Append(tcur, rng.NormFloat64()*1e6)
		}
		c2, err := FromBytes(c.Bytes())
		if err != nil {
			return false
		}
		it1, it2 := c.Iterator(), c2.Iterator()
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		for range ts {
			if !it1.Next() || !it2.Next() {
				return false
			}
			t1, v1 := it1.At()
			t2, v2 := it2.At()
			if t1 != t2 || v1 != v2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	b.ReportAllocs()
	c := NewChunk()
	for i := 0; i < b.N; i++ {
		if c.NumSamples() >= 120 {
			c = NewChunk()
		}
		c.Append(int64(i)*15000, float64(i)*1.5)
	}
}

func BenchmarkIterate(b *testing.B) {
	c := NewChunk()
	for i := int64(0); i < 120; i++ {
		c.Append(i*15000, float64(i)*1.5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := c.Iterator()
		for it.Next() {
		}
	}
}
