//go:build linux || darwin

package tsdb

import (
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns the data plus an unmap closer.
// Empty files map to a nil slice with a no-op closer (mmap of length 0 is
// an error on Linux).
func mmapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if st.Size() == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
