// Package tsdb implements the time-series database substrate of the CEEMS
// stack: an in-memory head with Gorilla-compressed chunks, an inverted label
// index, matcher-based series selection, retention, series deletion (used by
// the CEEMS API server to reduce cardinality) and block cutting for
// replication to long-term storage (the Thanos role in the paper's Fig. 1).
package tsdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb/chunkenc"
)

// ErrOutOfOrder is returned when appending a sample at or before the last
// timestamp of its series.
var ErrOutOfOrder = errors.New("tsdb: out of order sample")

// Options configure a DB.
type Options struct {
	// MaxSamplesPerChunk bounds chunk size; 120 is the Prometheus default.
	MaxSamplesPerChunk int
	// RetentionMillis is the head retention window; 0 disables pruning.
	RetentionMillis int64
}

// DefaultOptions returns production-like defaults (15 days retention).
func DefaultOptions() Options {
	return Options{MaxSamplesPerChunk: 120, RetentionMillis: 15 * 24 * 3600 * 1000}
}

// DB is the in-memory time-series database. All methods are safe for
// concurrent use.
type DB struct {
	opts Options

	mu      sync.RWMutex
	series  map[uint64][]*memSeries // labels hash -> collision chain
	byRef   map[uint64]*memSeries
	nextRef uint64
	// postings: label name -> value -> sorted-ish set of series refs
	postings map[string]map[string]map[uint64]struct{}
	minTime  int64 // smallest timestamp currently retained (approx)
	maxTime  int64 // largest appended timestamp
	appended uint64
}

type memSeries struct {
	ref  uint64
	lset labels.Labels

	mu      sync.Mutex
	chunks  []*chunkRange
	head    *chunkenc.Chunk
	headMin int64
	lastT   int64
	hasAny  bool
}

// chunkRange is a closed chunk plus its time bounds.
type chunkRange struct {
	min, max int64
	chunk    *chunkenc.Chunk
}

// Open creates a DB with the given options.
func Open(opts Options) *DB {
	if opts.MaxSamplesPerChunk <= 0 {
		opts.MaxSamplesPerChunk = 120
	}
	return &DB{
		opts:     opts,
		series:   make(map[uint64][]*memSeries),
		byRef:    make(map[uint64]*memSeries),
		postings: make(map[string]map[string]map[uint64]struct{}),
		minTime:  int64(1) << 62,
		maxTime:  -(int64(1) << 62),
	}
}

// Append adds one sample for the series identified by lset. The series is
// created on first append. Returns ErrOutOfOrder for non-increasing
// timestamps within a series.
func (db *DB) Append(lset labels.Labels, t int64, v float64) error {
	s := db.getOrCreate(lset)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hasAny && t <= s.lastT {
		return fmt.Errorf("%w: t=%d last=%d series=%s", ErrOutOfOrder, t, s.lastT, lset)
	}
	if s.head == nil {
		s.head = chunkenc.NewChunk()
		s.headMin = t
	}
	if err := s.head.Append(t, v); err != nil {
		return err
	}
	s.lastT = t
	s.hasAny = true
	if s.head.NumSamples() >= db.opts.MaxSamplesPerChunk {
		s.chunks = append(s.chunks, &chunkRange{min: s.headMin, max: s.lastT, chunk: s.head})
		s.head = nil
	}
	db.mu.Lock()
	if t < db.minTime {
		db.minTime = t
	}
	if t > db.maxTime {
		db.maxTime = t
	}
	db.appended++
	db.mu.Unlock()
	return nil
}

// AppendSeries appends a batch of samples of one series.
func (db *DB) AppendSeries(lset labels.Labels, samples []model.Sample) error {
	for _, s := range samples {
		if err := db.Append(lset, s.T, s.V); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) getOrCreate(lset labels.Labels) *memSeries {
	h := lset.Hash()
	db.mu.RLock()
	for _, s := range db.series[h] {
		if s.lset.Equal(lset) {
			db.mu.RUnlock()
			return s
		}
	}
	db.mu.RUnlock()

	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range db.series[h] { // re-check under write lock
		if s.lset.Equal(lset) {
			return s
		}
	}
	db.nextRef++
	s := &memSeries{ref: db.nextRef, lset: lset.Copy()}
	db.series[h] = append(db.series[h], s)
	db.byRef[s.ref] = s
	for _, l := range s.lset {
		vm, ok := db.postings[l.Name]
		if !ok {
			vm = make(map[string]map[uint64]struct{})
			db.postings[l.Name] = vm
		}
		refs, ok := vm[l.Value]
		if !ok {
			refs = make(map[uint64]struct{})
			vm[l.Value] = refs
		}
		refs[s.ref] = struct{}{}
	}
	return s
}

// Select returns all series matching the matchers, restricted to samples in
// [mint, maxt]. Series with no samples in range are omitted. Results are
// sorted by labels.
func (db *DB) Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error) {
	if len(ms) == 0 {
		return nil, errors.New("tsdb: Select requires at least one matcher")
	}
	refs := db.selectRefs(ms)
	out := make([]model.Series, 0, len(refs))
	db.mu.RLock()
	series := make([]*memSeries, 0, len(refs))
	for ref := range refs {
		if s, ok := db.byRef[ref]; ok {
			series = append(series, s)
		}
	}
	db.mu.RUnlock()
	for _, s := range series {
		samples := s.samplesBetween(mint, maxt)
		if len(samples) == 0 {
			continue
		}
		out = append(out, model.Series{Labels: s.lset, Samples: samples})
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out, nil
}

// selectRefs computes the set of series refs satisfying all matchers.
func (db *DB) selectRefs(ms []*labels.Matcher) map[uint64]struct{} {
	db.mu.RLock()
	defer db.mu.RUnlock()

	var result map[uint64]struct{}
	intersect := func(set map[uint64]struct{}) {
		if result == nil {
			result = set
			return
		}
		for ref := range result {
			if _, ok := set[ref]; !ok {
				delete(result, ref)
			}
		}
	}

	// Equality and regex matchers shrink via postings; negative matchers
	// are applied as a filter pass afterwards.
	var filters []*labels.Matcher
	positive := 0
	for _, m := range ms {
		switch m.Type {
		case labels.MatchEqual:
			if m.Value == "" {
				// {name=""} matches series missing the label entirely, so
				// postings cannot serve it; filter instead.
				filters = append(filters, m)
				continue
			}
			positive++
			set := make(map[uint64]struct{})
			if vm, ok := db.postings[m.Name]; ok {
				for ref := range vm[m.Value] {
					set[ref] = struct{}{}
				}
			}
			intersect(set)
		case labels.MatchRegexp:
			positive++
			set := make(map[uint64]struct{})
			if vm, ok := db.postings[m.Name]; ok {
				for v, refs := range vm {
					if m.Matches(v) {
						for ref := range refs {
							set[ref] = struct{}{}
						}
					}
				}
			}
			// A regexp matching "" also matches series missing the label.
			if m.Matches("") {
				filters = append(filters, m)
				positive--
				continue
			}
			intersect(set)
		default:
			filters = append(filters, m)
		}
	}

	if positive == 0 {
		// Only negative/empty-matching matchers: scan everything.
		result = make(map[uint64]struct{}, len(db.byRef))
		for ref := range db.byRef {
			result[ref] = struct{}{}
		}
	} else if result == nil {
		result = map[uint64]struct{}{}
	}
	if len(filters) > 0 {
		for ref := range result {
			s := db.byRef[ref]
			if !labels.MatchLabels(s.lset, filters...) {
				delete(result, ref)
			}
		}
	}
	return result
}

func (s *memSeries) samplesBetween(mint, maxt int64) []model.Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []model.Sample
	appendFrom := func(c *chunkenc.Chunk) {
		it := c.Iterator()
		for it.Next() {
			t, v := it.At()
			if t < mint {
				continue
			}
			if t > maxt {
				return
			}
			out = append(out, model.Sample{T: t, V: v})
		}
	}
	for _, cr := range s.chunks {
		if cr.max < mint || cr.min > maxt {
			continue
		}
		appendFrom(cr.chunk)
	}
	if s.head != nil && !(s.lastT < mint || s.headMin > maxt) {
		appendFrom(s.head)
	}
	return out
}

// LabelValues returns the sorted distinct values of a label name.
func (db *DB) LabelValues(name string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	vm := db.postings[name]
	out := make([]string, 0, len(vm))
	for v, refs := range vm {
		if len(refs) > 0 {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// LabelNames returns all label names in use, sorted.
func (db *DB) LabelNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.postings))
	for n, vm := range db.postings {
		nonEmpty := false
		for _, refs := range vm {
			if len(refs) > 0 {
				nonEmpty = true
				break
			}
		}
		if nonEmpty {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Stats reports database statistics.
type Stats struct {
	NumSeries     int
	NumSamples    uint64 // total appended (monotonic)
	MinTime       int64
	MaxTime       int64
	NumLabelNames int
	BytesInChunks int
}

// Stats returns a snapshot of database statistics.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	series := make([]*memSeries, 0, len(db.byRef))
	for _, s := range db.byRef {
		series = append(series, s)
	}
	st := Stats{
		NumSeries:     len(db.byRef),
		NumSamples:    db.appended,
		MinTime:       db.minTime,
		MaxTime:       db.maxTime,
		NumLabelNames: len(db.postings),
	}
	db.mu.RUnlock()
	for _, s := range series {
		s.mu.Lock()
		for _, cr := range s.chunks {
			st.BytesInChunks += len(cr.chunk.Bytes())
		}
		if s.head != nil {
			st.BytesInChunks += len(s.head.Bytes())
		}
		s.mu.Unlock()
	}
	return st
}

// Truncate drops all full chunks whose data lies entirely before mint and
// removes series that have no chunks and have been silent since before mint.
// It returns the number of series removed.
func (db *DB) Truncate(mint int64) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	removed := 0
	for h, chain := range db.series {
		keep := chain[:0]
		for _, s := range chain {
			s.mu.Lock()
			kept := s.chunks[:0]
			for _, cr := range s.chunks {
				if cr.max >= mint {
					kept = append(kept, cr)
				}
			}
			for i := len(kept); i < len(s.chunks); i++ {
				s.chunks[i] = nil
			}
			s.chunks = kept
			empty := len(s.chunks) == 0 && s.head == nil && s.lastT < mint
			s.mu.Unlock()
			if empty {
				db.dropSeriesLocked(s)
				removed++
				continue
			}
			keep = append(keep, s)
		}
		if len(keep) == 0 {
			delete(db.series, h)
		} else {
			db.series[h] = keep
		}
	}
	if mint > db.minTime {
		db.minTime = mint
	}
	return removed
}

// DeleteSeries removes every series matching the matchers entirely,
// returning the number deleted. The CEEMS API server uses this to clean up
// metrics of short-lived jobs ("Clean TSDB" in Fig. 1).
func (db *DB) DeleteSeries(ms ...*labels.Matcher) int {
	refs := db.selectRefs(ms)
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for ref := range refs {
		s, ok := db.byRef[ref]
		if !ok {
			continue
		}
		h := s.lset.Hash()
		chain := db.series[h]
		keep := chain[:0]
		for _, cs := range chain {
			if cs.ref != ref {
				keep = append(keep, cs)
			}
		}
		if len(keep) == 0 {
			delete(db.series, h)
		} else {
			db.series[h] = keep
		}
		db.dropSeriesLocked(s)
		n++
	}
	return n
}

// dropSeriesLocked removes s from byRef and postings. Caller holds db.mu.
func (db *DB) dropSeriesLocked(s *memSeries) {
	delete(db.byRef, s.ref)
	for _, l := range s.lset {
		if vm, ok := db.postings[l.Name]; ok {
			if refs, ok := vm[l.Value]; ok {
				delete(refs, s.ref)
				if len(refs) == 0 {
					delete(vm, l.Value)
				}
			}
			if len(vm) == 0 {
				delete(db.postings, l.Name)
			}
		}
	}
}

// MinTime returns the earliest retained timestamp (approximate after
// truncation), or false when the DB is empty.
func (db *DB) MinTime() (int64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.maxTime < db.minTime {
		return 0, false
	}
	return db.minTime, true
}

// MaxTime returns the latest appended timestamp, or false when empty.
func (db *DB) MaxTime() (int64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.maxTime < db.minTime {
		return 0, false
	}
	return db.maxTime, true
}
