// Package tsdb implements the time-series database substrate of the CEEMS
// stack: an in-memory head with Gorilla-compressed chunks, an inverted label
// index, matcher-based series selection, retention, series deletion (used by
// the CEEMS API server to reduce cardinality) and block cutting for
// replication to long-term storage (the Thanos role in the paper's Fig. 1).
//
// # Sharded head
//
// The head is lock-striped into N shards (Options.Shards rounded up to a
// power of two; the default is GOMAXPROCS rounded up). A series lives in
// exactly one shard, chosen by its labels hash (shard = hash & (N-1)); each
// shard owns an independent RWMutex, series map, inverted postings index and
// retention state. Appends route by hash and touch only their stripe — two
// goroutines writing different series contend only when the hashes collide
// in one shard — and the per-shard sample counters and time bounds are
// maintained with atomics, off the lock path entirely.
//
// Reads (Select, LabelValues, LabelNames, Stats) fan out across shards on a
// bounded worker pool of min(N, GOMAXPROCS) workers. Each shard returns its
// matching series already sorted by labels and the partial results are
// combined with a k-way sorted merge, so Select output is byte-identical
// regardless of shard count. DeleteSeries and retention pruning (Truncate)
// run per shard on the same pool with no cross-shard locking.
//
// # Persistent blocks
//
// Beyond the head, the package owns the on-disk block layer the cold tier
// (internal/thanos) is built from: CutBlock / CutPersistentBlock extract a
// time window in parallel per shard (block.go), blockdir.go defines the
// crash-safe directory format (meta.json commit point, CRC'd index +
// mmap'd Gorilla chunk segment), blockread.go the lazy reference-counted
// read path, and compact.go merging, tombstone application and 5m/1h
// sum/count/min/max downsampling. The lifecycle end to end is documented
// in docs/ARCHITECTURE.md.
package tsdb

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/tsdb/chunkenc"
)

// ErrOutOfOrder is returned when appending a sample at or before the last
// timestamp of its series.
var ErrOutOfOrder = errors.New("tsdb: out of order sample")

// ErrTooOld is returned when the head accepts bounded out-of-order samples
// (Options.OutOfOrderWindow > 0) but the sample is older than the window.
// It wraps ErrOutOfOrder so existing skip-on-out-of-order call sites treat
// both the same way.
var ErrTooOld = fmt.Errorf("%w: older than the out-of-order window", ErrOutOfOrder)

// Options configure a DB.
type Options struct {
	// MaxSamplesPerChunk bounds chunk size; 120 is the Prometheus default.
	MaxSamplesPerChunk int
	// RetentionMillis is the head retention window; 0 disables pruning.
	RetentionMillis int64
	// Shards is the number of lock stripes in the head, rounded up to a
	// power of two; 0 picks GOMAXPROCS rounded up. 1 yields the old
	// single-lock behavior (useful for equivalence testing).
	Shards int
	// WALDir, when non-empty, makes the head durable: every shard journals
	// its appends to a segmented write-ahead log under this directory and
	// Open replays existing journals in parallel before returning (see
	// wal.go / walreplay.go). Empty keeps the head memory-only.
	WALDir string
	// WALSegmentSize rotates WAL segments at this many bytes; 0 picks
	// DefaultWALSegmentSize.
	WALSegmentSize int64
	// WALCompression writes new WAL files in format v2: Gorilla-encoded
	// samples records and block-compressed series/tombstone records, ~3-4x
	// fewer journal bytes (see walv2.go). Existing v1 files always replay;
	// the format is chosen per file, so toggling this migrates the journal
	// naturally at the next rotation or checkpoint. False keeps writing v1
	// (raw payloads, inspectable with a hex dump).
	WALCompression bool
	// OutOfOrderWindow, in milliseconds, bounds how far behind the head's
	// newest sample an append may land and still be accepted (the
	// remote-write retry case: an agent resends a batch that partially
	// committed before a timeout). 0 — the default — keeps the strict
	// behavior: any non-increasing timestamp within a series fails with
	// ErrOutOfOrder. When > 0, a sample older than its series' last
	// timestamp is accepted iff it is newer than (head max time − window);
	// samples past the window fail with ErrTooOld and exact duplicates
	// (same series, same timestamp) are silently skipped, which is what
	// makes retries idempotent. Accepted out-of-order samples journal as
	// ordinary WAL sample records (v1 and v2 both round-trip backwards
	// timestamps) and queries merge them in timestamp order.
	OutOfOrderWindow int64
	// Telemetry, when set, registers the head's instruments (append
	// outcome counters, batch commit latency, WAL flush/fsync bytes and
	// latency, live-series gauge) on the registry; see telemetry.go. Nil
	// leaves the head uninstrumented at one branch per commit.
	Telemetry *telemetry.Registry
}

// DefaultOptions returns production-like defaults (15 days retention,
// compressed WAL when one is configured).
func DefaultOptions() Options {
	return Options{MaxSamplesPerChunk: 120, RetentionMillis: 15 * 24 * 3600 * 1000, WALCompression: true}
}

// DB is the in-memory time-series database, optionally backed by a
// per-shard write-ahead log. All methods are safe for concurrent use.
type DB struct {
	opts   Options
	shards []*headShard
	mask   uint64

	// mutations counts destructive cross-series operations (DeleteSeries);
	// the query-result cache invalidates on any change (see MutationGen).
	mutations atomic.Uint64
	// pruned is the highest retention cutoff ever applied (Truncate's mint),
	// or minInt64 when the head was never pruned; see PrunedThrough.
	pruned atomic.Int64

	// Tombstone log (tombstones.go): every matcher-level delete ever
	// applied, deduped by coordinator-assigned seq. Guarded by tombMu.
	tombMu   sync.Mutex
	tombSeen map[uint64]struct{}
	tombs    []TombstoneRec
	tombMax  uint64

	walReplay WALReplayStats
	walErrMu  sync.Mutex
	walErr    error

	// metrics is the hot-path instrumentation, nil when Options.Telemetry
	// was unset; commit paths branch on it once per commit.
	metrics *tsdbMetrics
}

type memSeries struct {
	ref  uint64
	lset labels.Labels
	// walRef is the series' ref in its shard's WAL (0 = not yet journalled).
	// Guarded by the shard WAL's mutex, not s.mu: every WAL writer holds it,
	// and replay finishes before writers exist.
	walRef uint64
	// dropped marks a series detached from its shard (DeleteSeries or
	// retention pruning). Journal paths check it so a writer that resolved
	// the series before a racing removal cannot journal records that would
	// resurrect it on replay. Set under the shard lock — with the shard WAL
	// mutex also held whenever a WAL exists — and read under the WAL mutex.
	dropped bool

	mu      sync.Mutex
	chunks  []*chunkRange
	head    *chunkenc.Chunk
	headMin int64
	lastT   int64
	hasAny  bool
	// ooo holds accepted out-of-order samples, sorted by timestamp and
	// deduplicated; queries merge it with the in-order chunks (in-order
	// wins on a timestamp tie). Always empty when Options.OutOfOrderWindow
	// is 0.
	ooo []model.Sample
}

// chunkRange is a closed chunk plus its time bounds.
type chunkRange struct {
	min, max int64
	chunk    *chunkenc.Chunk
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Open creates a DB with the given options. With Options.WALDir set it
// replays any existing shard journals in parallel (rebuilding series,
// postings and samples, repairing torn tails) and attaches a writer to
// every shard before returning; WALReplayStats on Stats/WALStats describe
// what was recovered.
func Open(opts Options) (*DB, error) {
	if opts.MaxSamplesPerChunk <= 0 {
		opts.MaxSamplesPerChunk = 120
	}
	n := opts.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	n = nextPow2(n)
	if n > 1024 {
		n = 1024
	}
	opts.Shards = n
	db := &DB{
		opts:   opts,
		shards: make([]*headShard, n),
		mask:   uint64(n - 1),
	}
	db.pruned.Store(-(int64(1) << 62))
	for i := range db.shards {
		db.shards[i] = newHeadShard()
	}
	if opts.WALDir != "" {
		if err := db.openWAL(); err != nil {
			return nil, fmt.Errorf("tsdb: open wal: %w", err)
		}
	}
	if opts.Telemetry != nil {
		db.instrument(opts.Telemetry)
	}
	return db, nil
}

// MustOpen is Open for callers that cannot fail — memory-only heads in
// tests and examples. It panics on error, which a WALDir-less Open never
// returns.
func MustOpen(opts Options) *DB {
	db, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return db
}

// NumShards returns the number of head shards (a power of two).
func (db *DB) NumShards() int { return len(db.shards) }

func (db *DB) shardFor(hash uint64) *headShard {
	return db.shards[hash&db.mask]
}

// Append adds one sample for the series identified by lset. The series is
// created on first append. Returns ErrOutOfOrder for non-increasing
// timestamps within a series.
func (db *DB) Append(lset labels.Labels, t int64, v float64) error {
	h := lset.Hash()
	sh := db.shardFor(h)
	s := sh.getOrCreate(h, lset)
	ooo := db.oooCtx()
	w := sh.wal
	if w != nil {
		// The WAL mutex spans the memory apply and the journal write so the
		// log order per series matches the apply order under concurrency.
		w.mu.Lock()
	}
	s.mu.Lock()
	outcome, err := s.appendLocked(t, v, db.opts.MaxSamplesPerChunk, ooo)
	s.mu.Unlock()
	if err != nil || outcome == appendDuplicate {
		if w != nil {
			w.mu.Unlock()
		}
		return err
	}
	var lerr error
	if w != nil {
		if !s.dropped {
			var newSeries []walSeriesRec
			ref, isNew := w.refForLocked(s)
			if isNew {
				newSeries = []walSeriesRec{{ref: ref, lset: s.lset}}
			}
			lerr = w.logLocked(newSeries, []walSampleRec{{ref: ref, t: t, v: v}}, nil)
		}
		w.mu.Unlock()
	}
	// The sample is in the head either way, so the time bounds must reflect
	// it; a WAL write error only means it may not survive a restart.
	sh.noteAppend(t, t, 1)
	return lerr
}

// AppendSeries appends a batch of samples of one series, resolving the
// series and taking its lock once for the whole batch.
func (db *DB) AppendSeries(lset labels.Labels, samples []model.Sample) error {
	if len(samples) == 0 {
		return nil
	}
	h := lset.Hash()
	sh := db.shardFor(h)
	s := sh.getOrCreate(h, lset)
	ooo := db.oooCtx()
	w := sh.wal
	if w != nil {
		w.mu.Lock()
	}
	s.mu.Lock()
	// Accepted samples are no longer a contiguous prefix once the window can
	// skip duplicates mid-batch, so collect them as we go.
	accepted := make([]model.Sample, 0, len(samples))
	var err error
	for _, smp := range samples {
		outcome, aerr := s.appendLocked(smp.T, smp.V, db.opts.MaxSamplesPerChunk, ooo)
		if aerr != nil {
			err = aerr
			break
		}
		if outcome == appendDuplicate {
			continue
		}
		accepted = append(accepted, smp)
	}
	s.mu.Unlock()
	if w != nil {
		var lerr error
		if len(accepted) > 0 && !s.dropped {
			var newSeries []walSeriesRec
			ref, isNew := w.refForLocked(s)
			if isNew {
				newSeries = []walSeriesRec{{ref: ref, lset: s.lset}}
			}
			recs := make([]walSampleRec, len(accepted))
			for i, smp := range accepted {
				recs[i] = walSampleRec{ref: ref, t: smp.T, v: smp.V}
			}
			lerr = w.logLocked(newSeries, recs, nil)
		}
		w.mu.Unlock()
		if lerr != nil && err == nil {
			err = lerr
		}
	}
	if len(accepted) > 0 {
		mint, maxt := accepted[0].T, accepted[0].T
		for _, smp := range accepted[1:] {
			if smp.T < mint {
				mint = smp.T
			}
			if smp.T > maxt {
				maxt = smp.T
			}
		}
		sh.noteAppend(mint, maxt, uint64(len(accepted)))
	}
	return err
}

// appendOutcome says where appendLocked put a sample (or why it didn't).
type appendOutcome uint8

const (
	appendInOrder appendOutcome = iota
	appendOOO
	appendDuplicate
	appendFailed
)

// oooAppendCtx carries the out-of-order acceptance bound for one append or
// batch commit. A nil ctx means the window is off (strict ordering). The
// bound is snapshotted once per commit from the head's max time, matching
// Prometheus' global out-of-order window: acceptance depends on how far the
// whole head has advanced, not on the individual series.
type oooAppendCtx struct {
	bound int64
}

// oooCtx returns the acceptance context for one append/commit, or nil when
// the window is disabled. Samples at or below the returned bound are too old.
func (db *DB) oooCtx() *oooAppendCtx {
	w := db.opts.OutOfOrderWindow
	if w <= 0 {
		return nil
	}
	_, maxt := db.timeBounds()
	if maxt == -(int64(1) << 62) {
		// Empty head: nothing to be out of order against.
		return &oooAppendCtx{bound: -(int64(1) << 62)}
	}
	return &oooAppendCtx{bound: maxt - w}
}

// OutOfOrderWindow returns Options.OutOfOrderWindow in milliseconds (0 when
// the head is strictly ordered). The query-result cache probes it to widen
// its mutable-tail watermark.
func (db *DB) OutOfOrderWindow() int64 { return db.opts.OutOfOrderWindow }

// appendLocked adds one sample; the caller holds s.mu. ooo carries the
// out-of-order acceptance bound, or nil for strict ordering. The outcome
// tells the caller whether the sample landed in order, landed in the
// out-of-order buffer, or was skipped as an exact duplicate (nil error —
// duplicates must not be journalled or counted).
func (s *memSeries) appendLocked(t int64, v float64, maxPerChunk int, ooo *oooAppendCtx) (appendOutcome, error) {
	if s.hasAny && t <= s.lastT {
		if ooo == nil {
			return appendFailed, fmt.Errorf("%w: t=%d last=%d series=%s", ErrOutOfOrder, t, s.lastT, s.lset)
		}
		if t == s.lastT {
			return appendDuplicate, nil
		}
		if t <= ooo.bound {
			return appendFailed, fmt.Errorf("%w: t=%d bound=%d series=%s", ErrTooOld, t, ooo.bound, s.lset)
		}
		// Insert into the sorted out-of-order buffer, skipping duplicates.
		i := sort.Search(len(s.ooo), func(i int) bool { return s.ooo[i].T >= t })
		if i < len(s.ooo) && s.ooo[i].T == t {
			return appendDuplicate, nil
		}
		if s.hasInOrderSampleLocked(t) {
			// The retry case: the timestamp already landed in order before
			// the agent resent it. Skipping keeps the invariant that the
			// head (and therefore the WAL) never stores two samples at one
			// (series, timestamp) — retries are idempotent, not additive.
			return appendDuplicate, nil
		}
		s.ooo = append(s.ooo, model.Sample{})
		copy(s.ooo[i+1:], s.ooo[i:])
		s.ooo[i] = model.Sample{T: t, V: v}
		return appendOOO, nil
	}
	if s.head == nil {
		s.head = chunkenc.NewChunk()
		s.headMin = t
	}
	if err := s.head.Append(t, v); err != nil {
		return appendFailed, err
	}
	s.lastT = t
	s.hasAny = true
	if s.head.NumSamples() >= maxPerChunk {
		s.chunks = append(s.chunks, &chunkRange{min: s.headMin, max: s.lastT, chunk: s.head})
		s.head = nil
	}
	return appendInOrder, nil
}

// hasInOrderSampleLocked reports whether timestamp t is already present in
// the series' in-order data (closed chunks or the open head chunk). The
// caller holds s.mu. Cost is one chunk decode (≤ MaxSamplesPerChunk
// samples) — paid only on the out-of-order path, where a hit means a
// resent batch.
func (s *memSeries) hasInOrderSampleLocked(t int64) bool {
	scan := func(c *chunkenc.Chunk) bool {
		it := c.Iterator()
		for it.Next() {
			ct, _ := it.At()
			if ct == t {
				return true
			}
			if ct > t {
				return false
			}
		}
		return false
	}
	// Chunks are in time order; find the first one that could hold t.
	i := sort.Search(len(s.chunks), func(i int) bool { return s.chunks[i].max >= t })
	if i < len(s.chunks) && s.chunks[i].min <= t {
		return scan(s.chunks[i].chunk)
	}
	if s.head != nil && t >= s.headMin && t <= s.lastT {
		return scan(s.head)
	}
	return false
}

func (s *memSeries) samplesBetween(mint, maxt int64) []model.Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samplesBetweenLocked(mint, maxt)
}

// samplesBetweenLocked is samplesBetween with s.mu already held (the block
// cut path holds it across chunk reuse decisions and the sample copy).
func (s *memSeries) samplesBetweenLocked(mint, maxt int64) []model.Sample {
	var out []model.Sample
	appendFrom := func(c *chunkenc.Chunk) {
		it := c.Iterator()
		for it.Next() {
			t, v := it.At()
			if t < mint {
				continue
			}
			if t > maxt {
				return
			}
			out = append(out, model.Sample{T: t, V: v})
		}
	}
	for _, cr := range s.chunks {
		if cr.min > maxt {
			// Chunks are in time order; nothing later can overlap.
			break
		}
		if cr.max < mint {
			continue
		}
		appendFrom(cr.chunk)
	}
	if s.head != nil && !(s.lastT < mint || s.headMin > maxt) {
		appendFrom(s.head)
	}
	if len(s.ooo) == 0 {
		return out
	}
	// Merge the out-of-order buffer (sorted, deduped) with the in-order
	// samples. On a timestamp tie the in-order sample wins: replay can park
	// a checkpoint-duplicated sample in the buffer, and first-write-wins
	// keeps query output identical to the pre-crash head.
	lo := sort.Search(len(s.ooo), func(i int) bool { return s.ooo[i].T >= mint })
	hi := sort.Search(len(s.ooo), func(i int) bool { return s.ooo[i].T > maxt })
	if lo == hi {
		return out
	}
	oooPart := s.ooo[lo:hi]
	merged := make([]model.Sample, 0, len(out)+len(oooPart))
	i, j := 0, 0
	for i < len(out) && j < len(oooPart) {
		switch {
		case out[i].T < oooPart[j].T:
			merged = append(merged, out[i])
			i++
		case out[i].T > oooPart[j].T:
			merged = append(merged, oooPart[j])
			j++
		default:
			merged = append(merged, out[i])
			i++
			j++
		}
	}
	merged = append(merged, out[i:]...)
	merged = append(merged, oooPart[j:]...)
	return merged
}

// Truncate drops all full chunks whose data lies entirely before mint and
// removes series that have no chunks and have been silent since before mint.
// Each shard prunes independently. When the head is WAL-backed, each shard
// is checkpointed after pruning — the post-truncate state is snapshotted and
// the pre-checkpoint segments dropped — so the journal stays bounded by head
// size. Checkpoint errors are recorded and surfaced via WALErr. It returns
// the number of series removed.
func (db *DB) Truncate(mint int64) int {
	// Raise the pruned watermark first: a cache fill racing the pruning
	// sees the new floor and refuses to reuse steps whose read windows
	// reach below it.
	for {
		cur := db.pruned.Load()
		if mint <= cur || db.pruned.CompareAndSwap(cur, mint) {
			break
		}
	}
	removed := make([]int, len(db.shards))
	db.forEachShard(func(i int, sh *headShard) {
		if sh.wal != nil {
			// Pruning detaches series; hold the WAL mutex across it so no
			// in-flight commit can journal a just-detached series (it sees
			// s.dropped instead) — replay must never resurrect one.
			sh.wal.mu.Lock()
			removed[i] = sh.truncate(mint)
			sh.wal.mu.Unlock()
			db.noteWALErr(sh.wal.checkpoint(sh, db.Tombstones))
		} else {
			removed[i] = sh.truncate(mint)
		}
	})
	total := 0
	for _, n := range removed {
		total += n
	}
	return total
}

// CheckpointWAL forces a checkpoint of every shard journal immediately:
// each shard's retained state is snapshotted (fsynced before any segment is
// unlinked) and its older segments dropped. It is what Truncate runs
// implicitly; exposed for callers that want durability compaction without
// pruning, e.g. after CutBlock has persisted a block. No-op without a WAL.
func (db *DB) CheckpointWAL() error {
	if db.opts.WALDir == "" {
		return nil
	}
	errs := make([]error, len(db.shards))
	db.forEachShard(func(i int, sh *headShard) {
		if sh.wal != nil {
			errs[i] = sh.wal.checkpoint(sh, db.Tombstones)
		}
	})
	for _, err := range errs {
		if err != nil {
			db.noteWALErr(err)
			return err
		}
	}
	return nil
}

// DeleteSeries removes every series matching the matchers entirely,
// returning the number deleted. The CEEMS API server uses this to clean up
// metrics of short-lived jobs ("Clean TSDB" in Fig. 1). Deletion fans out
// per shard with no cross-shard locking.
func (db *DB) DeleteSeries(ms ...*labels.Matcher) int {
	// Bump the mutation generation before AND after the per-shard fan-out.
	// A cache fill that snapshots between the two bumps may evaluate a
	// half-deleted head, but its recorded generation is already stale by
	// the time the delete finishes, so the entry can never be served; a
	// fill snapshotting after the second bump evaluates a fully-deleted
	// head. One bump alone would let the in-between fill stamp itself with
	// the final generation and serve deleted series forever.
	db.mutations.Add(1)
	defer db.mutations.Add(1)
	deleted := make([]int, len(db.shards))
	db.forEachShard(func(i int, sh *headShard) {
		w := sh.wal
		if w == nil {
			deleted[i], _ = sh.deleteSeries(ms)
			return
		}
		// Delete and tombstone under one WAL mutex hold: a concurrent commit
		// is either fully journalled before (tombstone logged after its
		// records wins on replay) or runs after and sees s.dropped — either
		// way replay converges to the live head.
		w.mu.Lock()
		var gone []*memSeries
		deleted[i], gone = sh.deleteSeries(ms)
		refs := make([]uint64, 0, len(gone))
		for _, s := range gone {
			if s.walRef != 0 {
				refs = append(refs, s.walRef)
			}
		}
		var err error
		if len(refs) > 0 {
			err = w.logLocked(nil, nil, refs)
		}
		w.mu.Unlock()
		db.noteWALErr(err)
	})
	total := 0
	for _, n := range deleted {
		total += n
	}
	return total
}

// MinTime returns the earliest retained timestamp (approximate after
// truncation), or false when the DB is empty.
func (db *DB) MinTime() (int64, bool) {
	mint, maxt := db.timeBounds()
	if maxt < mint {
		return 0, false
	}
	return mint, true
}

// MaxTime returns the latest appended timestamp, or false when empty.
func (db *DB) MaxTime() (int64, bool) {
	mint, maxt := db.timeBounds()
	if maxt < mint {
		return 0, false
	}
	return maxt, true
}

// AppendEpoch returns the total number of samples ever appended across all
// shards. It is monotonically non-decreasing; two equal readings bracket a
// window in which no append completed. The query-result cache uses it to
// prove that cached results — including ones whose read windows were still
// open — are identical to what a fresh evaluation would produce.
func (db *DB) AppendEpoch() uint64 {
	var n uint64
	for _, sh := range db.shards {
		n += sh.appended.Load()
	}
	return n
}

// MutationGen returns a counter that advances on destructive cross-series
// operations (DeleteSeries). Retention pruning (Truncate) deliberately does
// not advance it: truncation only removes samples strictly below the
// pruned watermark, and the cache refuses to serve any step whose padded
// read window reaches below PrunedThrough.
func (db *DB) MutationGen() uint64 { return db.mutations.Load() }

// PrunedThrough returns the highest retention cutoff ever applied: every
// sample below it may have been removed, everything at or above it is
// untouched by pruning (Truncate only drops chunks ending strictly below
// the cutoff). ok is false when the head was never pruned.
func (db *DB) PrunedThrough() (int64, bool) {
	p := db.pruned.Load()
	return p, p != -(int64(1) << 62)
}

func (db *DB) timeBounds() (int64, int64) {
	mint := int64(1) << 62
	maxt := -(int64(1) << 62)
	for _, sh := range db.shards {
		if m := sh.minTime.Load(); m < mint {
			mint = m
		}
		if m := sh.maxTime.Load(); m > maxt {
			maxt = m
		}
	}
	return mint, maxt
}
