package tsdb

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/labels"
	"repro/internal/model"
)

// headShard is one lock stripe of the head: an independent series map,
// inverted postings index and retention state guarded by its own RWMutex.
// A series is owned by exactly one shard (labels hash & mask), so appends
// and deletes never take more than one shard lock.
type headShard struct {
	mu      sync.RWMutex
	series  map[uint64][]*memSeries // labels hash -> collision chain
	byRef   map[uint64]*memSeries
	nextRef uint64
	// postings: label name -> value -> set of series refs (shard-local)
	postings map[string]map[string]map[uint64]struct{}

	// Time bounds and sample counter, updated off the lock path.
	minTime  atomic.Int64 // smallest timestamp currently retained (approx)
	maxTime  atomic.Int64 // largest appended timestamp
	appended atomic.Uint64

	// wal is the shard's journal; nil for memory-only heads. Set once by
	// Open before the DB is shared, never mutated afterwards.
	wal *shardWAL
}

func newHeadShard() *headShard {
	sh := &headShard{
		series:   make(map[uint64][]*memSeries),
		byRef:    make(map[uint64]*memSeries),
		postings: make(map[string]map[string]map[uint64]struct{}),
	}
	sh.minTime.Store(int64(1) << 62)
	sh.maxTime.Store(-(int64(1) << 62))
	return sh
}

// noteAppend widens the shard time bounds to [mint, maxt] and counts n
// appended samples, using CAS loops so the hot append path takes no shard
// lock.
func (sh *headShard) noteAppend(mint, maxt int64, n uint64) {
	for {
		cur := sh.minTime.Load()
		if mint >= cur || sh.minTime.CompareAndSwap(cur, mint) {
			break
		}
	}
	for {
		cur := sh.maxTime.Load()
		if maxt <= cur || sh.maxTime.CompareAndSwap(cur, maxt) {
			break
		}
	}
	sh.appended.Add(n)
}

// lookupLocked finds an existing series; the caller holds sh.mu (either mode).
func (sh *headShard) lookupLocked(hash uint64, lset labels.Labels) *memSeries {
	for _, s := range sh.series[hash] {
		if s.lset.Equal(lset) {
			return s
		}
	}
	return nil
}

// getOrCreate returns the series for lset, creating it on first use.
func (sh *headShard) getOrCreate(hash uint64, lset labels.Labels) *memSeries {
	sh.mu.RLock()
	s := sh.lookupLocked(hash, lset)
	sh.mu.RUnlock()
	if s != nil {
		return s
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.getOrCreateLocked(hash, lset)
}

// getOrCreateLocked is getOrCreate under an already-held write lock.
func (sh *headShard) getOrCreateLocked(hash uint64, lset labels.Labels) *memSeries {
	if s := sh.lookupLocked(hash, lset); s != nil { // re-check under write lock
		return s
	}
	sh.nextRef++
	s := &memSeries{ref: sh.nextRef, lset: lset.Copy()}
	sh.series[hash] = append(sh.series[hash], s)
	sh.byRef[s.ref] = s
	for _, l := range s.lset {
		vm, ok := sh.postings[l.Name]
		if !ok {
			vm = make(map[string]map[uint64]struct{})
			sh.postings[l.Name] = vm
		}
		refs, ok := vm[l.Value]
		if !ok {
			refs = make(map[uint64]struct{})
			vm[l.Value] = refs
		}
		refs[s.ref] = struct{}{}
	}
	return s
}

// selectRefs computes the set of shard-local series refs satisfying all
// matchers.
func (sh *headShard) selectRefs(ms []*labels.Matcher) map[uint64]struct{} {
	sh.mu.RLock()
	defer sh.mu.RUnlock()

	var result map[uint64]struct{}
	intersect := func(set map[uint64]struct{}) {
		if result == nil {
			result = set
			return
		}
		for ref := range result {
			if _, ok := set[ref]; !ok {
				delete(result, ref)
			}
		}
	}

	// Equality and regex matchers shrink via postings; negative matchers
	// are applied as a filter pass afterwards.
	var filters []*labels.Matcher
	positive := 0
	for _, m := range ms {
		switch m.Type {
		case labels.MatchEqual:
			if m.Value == "" {
				// {name=""} matches series missing the label entirely, so
				// postings cannot serve it; filter instead.
				filters = append(filters, m)
				continue
			}
			positive++
			set := make(map[uint64]struct{})
			if vm, ok := sh.postings[m.Name]; ok {
				for ref := range vm[m.Value] {
					set[ref] = struct{}{}
				}
			}
			intersect(set)
		case labels.MatchRegexp:
			// A regexp matching "" also matches series missing the label,
			// so postings cannot serve it (e.g. the match-all CutBlock
			// uses); filter instead of building a set we would discard.
			if m.Matches("") {
				filters = append(filters, m)
				continue
			}
			positive++
			set := make(map[uint64]struct{})
			if vm, ok := sh.postings[m.Name]; ok {
				for v, refs := range vm {
					if m.Matches(v) {
						for ref := range refs {
							set[ref] = struct{}{}
						}
					}
				}
			}
			intersect(set)
		default:
			filters = append(filters, m)
		}
	}

	if positive == 0 {
		// Only negative/empty-matching matchers: scan everything.
		result = make(map[uint64]struct{}, len(sh.byRef))
		for ref := range sh.byRef {
			result[ref] = struct{}{}
		}
	} else if result == nil {
		result = map[uint64]struct{}{}
	}
	if len(filters) > 0 {
		for ref := range result {
			s := sh.byRef[ref]
			if !labels.MatchLabels(s.lset, filters...) {
				delete(result, ref)
			}
		}
	}
	return result
}

// selectSorted returns the shard's series matching ms with samples in
// [mint, maxt], sorted by labels, ready for the cross-shard merge. A
// non-nil budget is charged per series copy; once exhausted the pass stops
// copying and the partial result is discarded by the caller.
func (sh *headShard) selectSorted(mint, maxt int64, ms []*labels.Matcher, budget *sampleBudget) []model.Series {
	if budget.blown() {
		return nil
	}
	refs := sh.selectRefs(ms)
	sh.mu.RLock()
	series := make([]*memSeries, 0, len(refs))
	for ref := range refs {
		if s, ok := sh.byRef[ref]; ok {
			series = append(series, s)
		}
	}
	sh.mu.RUnlock()
	out := make([]model.Series, 0, len(series))
	for _, s := range series {
		if budget.blown() {
			return nil
		}
		samples := s.samplesBetween(mint, maxt)
		if len(samples) == 0 {
			continue
		}
		if !budget.charge(len(samples)) {
			return nil
		}
		out = append(out, model.Series{Labels: s.lset, Samples: samples})
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out
}

// truncate drops full chunks entirely before mint and removes series left
// empty and silent since before mint, returning the number removed.
func (sh *headShard) truncate(mint int64) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	removed := 0
	for h, chain := range sh.series {
		keep := chain[:0]
		for _, s := range chain {
			s.mu.Lock()
			kept := s.chunks[:0]
			for _, cr := range s.chunks {
				if cr.max >= mint {
					kept = append(kept, cr)
				}
			}
			for i := len(kept); i < len(s.chunks); i++ {
				s.chunks[i] = nil
			}
			s.chunks = kept
			if len(s.ooo) > 0 {
				lo := sort.Search(len(s.ooo), func(i int) bool { return s.ooo[i].T >= mint })
				if lo > 0 {
					s.ooo = append(s.ooo[:0], s.ooo[lo:]...)
				}
				if len(s.ooo) == 0 {
					s.ooo = nil
				}
			}
			empty := len(s.chunks) == 0 && s.head == nil && s.lastT < mint && len(s.ooo) == 0
			s.mu.Unlock()
			if empty {
				sh.dropSeriesLocked(s)
				removed++
				continue
			}
			keep = append(keep, s)
		}
		if len(keep) == 0 {
			delete(sh.series, h)
		} else {
			sh.series[h] = keep
		}
	}
	for {
		cur := sh.minTime.Load()
		if mint <= cur || sh.minTime.CompareAndSwap(cur, mint) {
			break
		}
	}
	return removed
}

// deleteSeries removes the shard's series matching ms, returning the count
// and the removed series (so the caller can journal tombstones).
func (sh *headShard) deleteSeries(ms []*labels.Matcher) (int, []*memSeries) {
	refs := sh.selectRefs(ms)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := 0
	var gone []*memSeries
	for ref := range refs {
		s, ok := sh.byRef[ref]
		if !ok {
			continue
		}
		h := s.lset.Hash()
		chain := sh.series[h]
		keep := chain[:0]
		for _, cs := range chain {
			if cs.ref != ref {
				keep = append(keep, cs)
			}
		}
		if len(keep) == 0 {
			delete(sh.series, h)
		} else {
			sh.series[h] = keep
		}
		sh.dropSeriesLocked(s)
		gone = append(gone, s)
		n++
	}
	return n, gone
}

// dropSeriesLocked removes s from byRef and postings. Caller holds sh.mu
// (and the shard WAL mutex, when one exists).
func (sh *headShard) dropSeriesLocked(s *memSeries) {
	s.dropped = true
	delete(sh.byRef, s.ref)
	for _, l := range s.lset {
		if vm, ok := sh.postings[l.Name]; ok {
			if refs, ok := vm[l.Value]; ok {
				delete(refs, s.ref)
				if len(refs) == 0 {
					delete(vm, l.Value)
				}
			}
			if len(vm) == 0 {
				delete(sh.postings, l.Name)
			}
		}
	}
}

// labelValues returns the shard's distinct values of a label name.
func (sh *headShard) labelValues(name string) []string {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	vm := sh.postings[name]
	out := make([]string, 0, len(vm))
	for v, refs := range vm {
		if len(refs) > 0 {
			out = append(out, v)
		}
	}
	return out
}

// labelNames returns the shard's label names in use.
func (sh *headShard) labelNames() []string {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	out := make([]string, 0, len(sh.postings))
	for n, vm := range sh.postings {
		nonEmpty := false
		for _, refs := range vm {
			if len(refs) > 0 {
				nonEmpty = true
				break
			}
		}
		if nonEmpty {
			out = append(out, n)
		}
	}
	return out
}

// shardStats is the per-shard contribution to Stats.
type shardStats struct {
	numSeries     int
	bytesInChunks int
	labelNames    []string
}

func (sh *headShard) stats() shardStats {
	sh.mu.RLock()
	series := make([]*memSeries, 0, len(sh.byRef))
	for _, s := range sh.byRef {
		series = append(series, s)
	}
	st := shardStats{numSeries: len(sh.byRef)}
	sh.mu.RUnlock()
	st.labelNames = sh.labelNames()
	for _, s := range series {
		s.mu.Lock()
		for _, cr := range s.chunks {
			st.bytesInChunks += len(cr.chunk.Bytes())
		}
		if s.head != nil {
			st.bytesInChunks += len(s.head.Bytes())
		}
		s.mu.Unlock()
	}
	return st
}
