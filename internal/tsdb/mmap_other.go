//go:build !linux && !darwin

package tsdb

import "os"

// mmapFile reads the whole file on platforms without the syscall mmap path.
// Readers treat the slice as immutable either way, so the fallback is
// behaviorally identical, just resident.
func mmapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
