package ceemsrules

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/rules"
)

// Property: for ANY random workload mix on an Intel node, the Eq. 1
// recording rules conserve node power — Σ uuid:host_watts ≈ IPMI — and
// attribution is ordered by activity (a strictly busier job never gets
// less power). This is the randomized generalization of the deterministic
// reference test.
func TestEq1RulesConservationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed pipeline property test")
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			spec := hw.DefaultIntelSpec("prop")
			spec.NoiseFrac = 0
			env := newSimEnv(t, spec, "intel",
				[]*rules.Group{IntelGroup(DefaultOptions())}, nil)

			nJobs := 1 + rng.Intn(6)
			cpusLeft := spec.TotalCPUs()
			type jobInfo struct {
				id   string
				util float64
				cpus int
			}
			var jobs []jobInfo
			for j := 0; j < nJobs; j++ {
				maxCPU := cpusLeft - (nJobs - j - 1) // leave ≥1 cpu per later job
				if maxCPU < 1 {
					break
				}
				cpus := 1 + rng.Intn(maxCPU)
				cpusLeft -= cpus
				util := 0.05 + 0.9*rng.Float64()
				// Drawn once here, NOT inside the closure: hw.Node.Advance
				// iterates its workload map in randomized order, so a
				// closure pulling from the shared rng per call hands each
				// job different values on every run — the subtest must be a
				// pure function of the seed.
				memUtil := 0.1 + 0.8*rng.Float64()
				id := string(rune('1' + j))
				err := env.node.AddWorkload(&hw.Workload{
					ID: "job_" + id, CPUs: cpus,
					MemLimit: spec.MemBytes / int64(nJobs),
					CPUUtil:  func(time.Duration) float64 { return util },
					MemUtil:  func(time.Duration) float64 { return memUtil },
				})
				if err != nil {
					t.Fatal(err)
				}
				jobs = append(jobs, jobInfo{id: id, util: util * float64(cpus)})
			}
			env.run(t, 12)

			hostW := env.lastValue(t, "uuid:host_watts:intel")
			if len(hostW) != len(jobs) {
				t.Fatalf("series = %d, want %d", len(hostW), len(jobs))
			}
			ipmi, _ := env.node.PowerReading()
			var sum float64
			for _, w := range hostW {
				if w < 0 {
					t.Fatalf("negative attribution: %v", hostW)
				}
				sum += w
			}
			if rel(sum, ipmi) > 0.03 {
				t.Errorf("seed %d: conservation broken: sum=%.1f ipmi=%.1f", seed, sum, ipmi)
			}
			// Activity ordering: job with 2x+ the active-cpu rate of
			// another must not receive less power.
			for _, a := range jobs {
				for _, b := range jobs {
					if a.util > 2*b.util && hostW[a.id] < hostW[b.id]*0.95 {
						t.Errorf("seed %d: ordering violated: job %s (%.1f active cpus, %.1f W) vs job %s (%.1f, %.1f W)",
							seed, a.id, a.util, hostW[a.id], b.id, b.util, hostW[b.id])
					}
				}
			}
		})
	}
}
