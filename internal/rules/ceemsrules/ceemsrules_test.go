package ceemsrules

import (
	"context"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exporter"
	"repro/internal/gpusim"
	"repro/internal/hw"
	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/rules"
	"repro/internal/scrape"
	"repro/internal/tsdb"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// exporterFetcher scrapes in-process exporters by target name.
type exporterFetcher map[string]*exporter.Exporter

func (f exporterFetcher) Fetch(_ context.Context, target string) (io.ReadCloser, error) {
	return io.NopCloser(strings.NewReader(f[target].Render())), nil
}

type stubBindings map[string][]exporter.GPUBinding

func (s stubBindings) GPUOrdinalsByUnit() map[string][]exporter.GPUBinding { return s }

// simEnv wires node→exporter→scrape→tsdb→rules with a virtual clock.
type simEnv struct {
	node  *hw.Node
	db    *tsdb.DB
	sm    *scrape.Manager
	rm    *rules.Manager
	clock time.Time
}

func newSimEnv(t *testing.T, spec hw.NodeSpec, class string, groups []*rules.Group, gpuProv exporter.GPUOrdinalProvider) *simEnv {
	t.Helper()
	spec.NoiseFrac = 0
	node, err := hw.NewNode(spec, t0)
	if err != nil {
		t.Fatal(err)
	}
	collectors := []exporter.Collector{
		&exporter.CgroupCollector{FS: node.FS, Layout: exporter.SlurmLayout()},
		&exporter.RAPLCollector{FS: node.FS},
		&exporter.IPMICollector{Reader: node},
		&exporter.NodeCollector{FS: node.FS},
	}
	if len(spec.GPUs) > 0 {
		collectors = append(collectors, &gpusim.DCGMCollector{Hostname: spec.Name, Devices: node})
		if gpuProv != nil {
			collectors = append(collectors, &exporter.GPUMapCollector{Provider: gpuProv, Manager: model.ManagerSLURM})
		}
	}
	exp := exporter.New(collectors...)
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	env := &simEnv{node: node, db: db, clock: t0}
	env.sm = &scrape.Manager{
		Dest:    db,
		Fetcher: exporterFetcher{spec.Name: exp},
		Groups: []*scrape.TargetGroup{{
			JobName: "ceems", Targets: []string{spec.Name},
			Labels: map[string]string{"nodeclass": class},
		}},
		Now: func() time.Time { return env.clock },
	}
	env.rm = &rules.Manager{Engine: rules.NewEngine(nil), Query: db, Dest: db, Groups: groups}
	return env
}

// run advances the sim n steps of 15s, scraping each step, then evaluates
// the rules at the final clock.
func (e *simEnv) run(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		e.node.Advance(15 * time.Second)
		e.clock = e.clock.Add(15 * time.Second)
		e.sm.ScrapeAll(context.Background())
	}
	if err := e.rm.EvalAll(e.clock); err != nil {
		t.Fatalf("rules eval: %v", err)
	}
}

// lastValue reads the newest sample of each series of a metric, keyed by
// the uuid label ("" for instance-level records).
func (e *simEnv) lastValue(t *testing.T, metric string) map[string]float64 {
	t.Helper()
	series, err := e.db.Select(0, 1<<62, labels.MustMatcher(labels.MatchEqual, labels.MetricName, metric))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, s := range series {
		out[s.Labels.Get("uuid")] = s.Samples[len(s.Samples)-1].V
	}
	return out
}

func TestAllGroupsValidate(t *testing.T) {
	for _, g := range AllGroups(DefaultOptions()) {
		if err := g.Validate(); err != nil {
			t.Errorf("group %s: %v", g.Name, err)
		}
	}
}

func TestIntelEq1AgainstReference(t *testing.T) {
	env := newSimEnv(t, hw.DefaultIntelSpec("n1"), "intel",
		[]*rules.Group{IntelGroup(DefaultOptions())}, nil)
	env.node.AddWorkload(&hw.Workload{
		ID: "job_1", CPUs: 32, MemLimit: 128 << 30,
		CPUUtil: func(time.Duration) float64 { return 0.9 },
		MemUtil: func(time.Duration) float64 { return 0.6 },
	})
	env.node.AddWorkload(&hw.Workload{
		ID: "job_2", CPUs: 16, MemLimit: 64 << 30,
		CPUUtil: func(time.Duration) float64 { return 0.4 },
		MemUtil: func(time.Duration) float64 { return 0.3 },
	})
	env.run(t, 12) // 3 minutes: rate windows fully populated

	hostW := env.lastValue(t, "uuid:host_watts:intel")
	if len(hostW) != 2 {
		t.Fatalf("host watts series = %v", hostW)
	}

	// Reference: compute the same quantities with core.Estimator from the
	// simulator's raw state.
	ipmi, _ := env.node.PowerReading()
	cpuW, dramW, _ := env.node.ComponentPowers()
	node := core.NodeSample{
		IPMIWatts: ipmi, RAPLCPUWatts: cpuW, RAPLDRAMWatts: dramW,
		CPURate:  0.9*32 + 0.4*16 + 0.004*64, // workloads + OS baseline
		MemBytes: 0.6*128*float64(1<<30) + 0.3*64*float64(1<<30),
		NumUnits: 2,
	}
	est := core.IntelVariant()
	ref1, _ := est.HostPower(node, core.UnitSample{CPURate: 0.9 * 32, MemBytes: 0.6 * 128 * float64(1<<30)})
	ref2, _ := est.HostPower(node, core.UnitSample{CPURate: 0.4 * 16, MemBytes: 0.3 * 64 * float64(1<<30)})

	if rel(hostW["1"], ref1) > 0.03 {
		t.Errorf("job_1: rules=%v reference=%v", hostW["1"], ref1)
	}
	if rel(hostW["2"], ref2) > 0.03 {
		t.Errorf("job_2: rules=%v reference=%v", hostW["2"], ref2)
	}

	// Conservation: Σ per-unit power ≈ IPMI power (OS baseline steals a
	// sliver of the CPU share).
	sum := hostW["1"] + hostW["2"]
	if rel(sum, ipmi) > 0.03 {
		t.Errorf("conservation: sum=%v ipmi=%v", sum, ipmi)
	}

	// Against simulator ground truth: Eq. 1 should land within 15%.
	te1, _ := env.node.Truth("job_1")
	tr1 := te1.HostJoules / env.clock.Sub(t0).Seconds()
	if rel(hostW["1"], tr1) > 0.15 {
		t.Errorf("truth check: rules=%v truth=%v", hostW["1"], tr1)
	}
}

func TestAMDVariantAgainstReference(t *testing.T) {
	env := newSimEnv(t, hw.DefaultAMDSpec("a1"), "amd",
		[]*rules.Group{AMDGroup(DefaultOptions())}, nil)
	env.node.AddWorkload(&hw.Workload{
		ID: "job_9", CPUs: 64, MemLimit: 128 << 30,
		CPUUtil: func(time.Duration) float64 { return 0.7 },
	})
	env.run(t, 12)

	hostW := env.lastValue(t, "uuid:host_watts:amd")
	if len(hostW) != 1 {
		t.Fatalf("amd host watts = %v", hostW)
	}
	ipmi, _ := env.node.PowerReading()
	node := core.NodeSample{
		IPMIWatts: ipmi,
		CPURate:   0.7*64 + 0.004*128,
		NumUnits:  1,
	}
	ref, _ := core.AMDVariant().HostPower(node, core.UnitSample{CPURate: 0.7 * 64})
	if rel(hostW["9"], ref) > 0.03 {
		t.Errorf("amd: rules=%v reference=%v", hostW["9"], ref)
	}
}

func TestGPUVariants(t *testing.T) {
	for _, tc := range []struct {
		name     string
		included bool
		class    string
		group    func(Options) *rules.Group
	}{
		{"ipmi-includes-gpu", true, "gpuinc", GPUIncludedGroup},
		{"ipmi-excludes-gpu", false, "gpuexc", GPUExcludedGroup},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := hw.DefaultGPUSpec("g1", tc.included, model.GPUA100, model.GPUA100)
			bindings := stubBindings{
				"5": {{Ordinal: 0, UUID: "GPU-a"}},
			}
			env := newSimEnv(t, spec, tc.class,
				[]*rules.Group{tc.group(DefaultOptions())}, bindings)
			env.node.AddWorkload(&hw.Workload{
				ID: "job_5", CPUs: 8, MemLimit: 32 << 30, GPUOrdinals: []int{0},
				CPUUtil: func(time.Duration) float64 { return 0.5 },
				GPUUtil: func(time.Duration) float64 { return 1.0 },
			})
			env.node.AddWorkload(&hw.Workload{
				ID: "job_6", CPUs: 8, MemLimit: 32 << 30,
				CPUUtil: func(time.Duration) float64 { return 0.5 },
			})
			env.run(t, 12)

			gpuW := env.lastValue(t, "uuid:gpu_watts:"+tc.class)
			if rel(gpuW["5"], model.GPUA100.MaxPowerWatts()) > 0.01 {
				t.Errorf("gpu attribution = %v, want %v", gpuW["5"], model.GPUA100.MaxPowerWatts())
			}
			if _, ok := gpuW["6"]; ok {
				t.Error("CPU-only job received GPU power")
			}
			totalW := env.lastValue(t, "uuid:total_watts:"+tc.class)
			if len(totalW) != 2 {
				t.Fatalf("total series = %v", totalW)
			}
			// GPU job total must include its device power; CPU job not.
			if totalW["5"] < model.GPUA100.MaxPowerWatts() {
				t.Errorf("gpu job total %v missing device power", totalW["5"])
			}
			if totalW["6"] > totalW["5"] {
				t.Error("cpu-only job attributed more than gpu job")
			}
			// Conservation: totals ≈ ipmi plus the power of the bound GPU
			// (when the BMC excludes GPUs), minus the idle power of the
			// unbound GPU (when it includes them) — idle accelerators
			// belong to no compute unit, so their draw is unattributable.
			ipmi, _ := env.node.PowerReading()
			gpus := env.node.GPUs()
			boundW, idleUnboundW := gpus[0].PowerWatts(), gpus[1].PowerWatts()
			wantTotal := ipmi - idleUnboundW
			if !tc.included {
				wantTotal = ipmi + boundW
			}
			sum := totalW["5"] + totalW["6"]
			if rel(sum, wantTotal) > 0.03 {
				t.Errorf("conservation: sum=%v want=%v (ipmi=%v bound=%v idle=%v)",
					sum, wantTotal, ipmi, boundW, idleUnboundW)
			}
		})
	}
}

func TestEmissionsGroup(t *testing.T) {
	env := newSimEnv(t, hw.DefaultIntelSpec("n1"), "intel",
		[]*rules.Group{IntelGroup(DefaultOptions()), EmissionsGroup(DefaultOptions(), "intel")}, nil)
	env.node.AddWorkload(&hw.Workload{
		ID: "job_1", CPUs: 64, MemLimit: 128 << 30,
		CPUUtil: func(time.Duration) float64 { return 1.0 },
	})
	// Ingest the grid factor series (56 g/kWh, France).
	factor := labels.FromStrings(labels.MetricName, "ceems_emission_factor_gco2_kwh", "zone", "FR")
	for i := 0; i <= 13; i++ {
		env.db.Append(factor, t0.Add(time.Duration(i)*15*time.Second).UnixMilli(), 56)
	}
	env.run(t, 12)
	em := env.lastValue(t, "uuid:emissions_grams_per_hour:intel")
	total := env.lastValue(t, "uuid:total_watts:intel")
	want := total["1"] / 1000 * 56
	if rel(em["1"], want) > 0.01 {
		t.Errorf("emissions = %v, want %v", em["1"], want)
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}
