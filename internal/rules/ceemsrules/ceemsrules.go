// Package ceemsrules ships the CEEMS energy-estimation recording rules:
// the paper's Eq. 1 and its per-hardware-class variants (§III.A), written
// against the metric names of the CEEMS exporter and the vendor GPU
// exporters. Each node class gets its own rule group, mirroring the
// paper's "different Prometheus recording rules for different compute node
// groups"; the groups are validated against the core.Estimator reference
// implementation in the tests.
package ceemsrules

import (
	"fmt"
	"time"

	"repro/internal/rules"
)

// Options parameterize the generated rules.
type Options struct {
	// RateWindow is the range window for counter rates, e.g. "2m".
	RateWindow string
	// Interval is the evaluation interval of the groups.
	Interval time.Duration
	// NetworkFraction is Eq. 1's equally-split share (0.1 in the paper).
	NetworkFraction float64
}

// DefaultOptions matches the paper's deployment.
func DefaultOptions() Options {
	return Options{RateWindow: "2m", Interval: time.Minute, NetworkFraction: 0.1}
}

// common returns the shared intermediate rules (node rates and unit
// shares) for a node group selected by the cluster group label
// nodeclass=<class>.
func common(o Options, class string) []rules.Rule {
	sel := func(metric string) string {
		return fmt.Sprintf(`%s{nodeclass="%s"}`, metric, class)
	}
	w := o.RateWindow
	return []rules.Rule{
		{
			Record: "instance:rapl_cpu_watts:" + class,
			Expr:   fmt.Sprintf(`sum by (instance) (rate(%s[%s]))`, sel("ceems_rapl_package_joules_total"), w),
		},
		{
			Record: "instance:rapl_dram_watts:" + class,
			Expr:   fmt.Sprintf(`sum by (instance) (rate(%s[%s]))`, sel("ceems_rapl_dram_joules_total"), w),
		},
		{
			Record: "instance:node_cpu_rate:" + class,
			Expr: fmt.Sprintf(`sum by (instance) (rate(%s[%s]))`,
				fmt.Sprintf(`ceems_cpu_seconds_total{nodeclass="%s",mode=~"user|system"}`, class), w),
		},
		{
			Record: "instance:node_mem_used_bytes:" + class,
			Expr: fmt.Sprintf(
				`sum by (instance) (ceems_meminfo_bytes{nodeclass="%s",field="MemTotal"}) - sum by (instance) (ceems_meminfo_bytes{nodeclass="%s",field="MemAvailable"})`,
				class, class),
		},
		{
			Record: "uuid:cpu_share:" + class,
			Expr: fmt.Sprintf(
				`rate(%s[%s]) / on (instance) group_left instance:node_cpu_rate:%s`,
				sel("ceems_compute_unit_cpu_usage_seconds_total"), w, class),
		},
		{
			Record: "uuid:mem_share:" + class,
			Expr: fmt.Sprintf(
				`%s / on (instance) group_left instance:node_mem_used_bytes:%s`,
				sel("ceems_compute_unit_memory_used_bytes"), class),
		},
	}
}

// hostPowerRules builds the Eq. 1 split on top of the common rules.
// ipmiExpr is the node power expression — raw IPMI, or IPMI minus GPU for
// classes whose BMC includes accelerators. dramSplit selects the Intel
// (true) or AMD (false) variant.
func hostPowerRules(o Options, class, ipmiExpr string, dramSplit bool) []rules.Rule {
	resid := 1 - o.NetworkFraction
	out := []rules.Rule{
		{
			Record: "instance:node_watts:" + class,
			Expr:   ipmiExpr,
		},
		{
			Record: "instance:net_watts_per_unit:" + class,
			Expr: fmt.Sprintf(
				`%g * instance:node_watts:%s / on (instance) group_left sum by (instance) (ceems_compute_units{nodeclass="%s"})`,
				o.NetworkFraction, class, class),
		},
		{
			// Fans the per-unit network share out to unit label sets by
			// piggybacking on cpu_share's labels.
			Record: "uuid:net_share_helper:" + class,
			Expr: fmt.Sprintf(
				`uuid:cpu_share:%s * 0 + on (instance) group_left instance:net_watts_per_unit:%s`,
				class, class),
		},
	}
	if dramSplit {
		out = append(out,
			rules.Rule{
				Record: "instance:cpu_watts:" + class,
				Expr: fmt.Sprintf(
					`%g * instance:node_watts:%s * on (instance) (instance:rapl_cpu_watts:%s / (instance:rapl_cpu_watts:%s + instance:rapl_dram_watts:%s))`,
					resid, class, class, class, class),
			},
			rules.Rule{
				Record: "instance:dram_watts:" + class,
				Expr: fmt.Sprintf(
					`%g * instance:node_watts:%s * on (instance) (instance:rapl_dram_watts:%s / (instance:rapl_cpu_watts:%s + instance:rapl_dram_watts:%s))`,
					resid, class, class, class, class),
			},
			rules.Rule{
				Record: "uuid:host_watts:" + class,
				Expr: fmt.Sprintf(
					`uuid:cpu_share:%s * on (instance) group_left instance:cpu_watts:%s + on (uuid, instance) group_left uuid:mem_share:%s * on (instance) group_left instance:dram_watts:%s + on (uuid, instance) group_left uuid:net_share_helper:%s`,
					class, class, class, class, class),
			},
		)
	} else {
		out = append(out, rules.Rule{
			Record: "uuid:host_watts:" + class,
			Expr: fmt.Sprintf(
				`%g * uuid:cpu_share:%s * on (instance) group_left instance:node_watts:%s + on (uuid, instance) group_left uuid:net_share_helper:%s`,
				resid, class, class, class),
		})
	}
	return out
}

// IntelGroup is the full Eq. 1 for Intel CPU nodes (RAPL package + dram,
// IPMI covers the node).
func IntelGroup(o Options) *rules.Group {
	const class = "intel"
	rs := common(o, class)
	rs = append(rs, hostPowerRules(o, class,
		fmt.Sprintf(`sum by (instance) (ceems_ipmi_dcmi_current_watts{nodeclass="%s"})`, class), true)...)
	rs = append(rs, rules.Rule{
		Record: "uuid:total_watts:" + class,
		Expr:   "uuid:host_watts:" + class,
	})
	return &rules.Group{Name: "ceems-" + class, Interval: o.Interval, Rules: rs}
}

// AMDGroup is the CPU-share-only variant for AMD nodes lacking the DRAM
// RAPL domain.
func AMDGroup(o Options) *rules.Group {
	const class = "amd"
	rs := common(o, class)
	rs = append(rs, hostPowerRules(o, class,
		fmt.Sprintf(`sum by (instance) (ceems_ipmi_dcmi_current_watts{nodeclass="%s"})`, class), false)...)
	rs = append(rs, rules.Rule{
		Record: "uuid:total_watts:" + class,
		Expr:   "uuid:host_watts:" + class,
	})
	return &rules.Group{Name: "ceems-" + class, Interval: o.Interval, Rules: rs}
}

// gpuRules attributes device power to units through the unit→GPU index map
// the exporter publishes (paper §II.A.d).
func gpuRules(class string) []rules.Rule {
	return []rules.Rule{
		{
			Record: "instance:gpu_watts:" + class,
			Expr: fmt.Sprintf(
				`sum by (instance) (DCGM_FI_DEV_POWER_USAGE{nodeclass="%s"})`, class),
		},
		{
			Record: "uuid:gpu_watts:" + class,
			Expr: fmt.Sprintf(
				`sum by (uuid, instance, cluster) (ceems_compute_unit_gpu_index_flag{nodeclass="%s"} * on (instance, index) group_left label_replace(DCGM_FI_DEV_POWER_USAGE{nodeclass="%s"}, "index", "$1", "gpu", "(.+)"))`,
				class, class),
		},
		{
			// Summed device utilization per unit (percent); the API server
			// divides by the unit's GPU count for the mean.
			Record: "uuid:gpu_util_percent:" + class,
			Expr: fmt.Sprintf(
				`sum by (uuid, instance, cluster) (ceems_compute_unit_gpu_index_flag{nodeclass="%s"} * on (instance, index) group_left label_replace(DCGM_FI_DEV_GPU_UTIL{nodeclass="%s"}, "index", "$1", "gpu", "(.+)"))`,
				class, class),
		},
	}
}

// GPUExcludedGroup handles GPU nodes whose IPMI reading does NOT include
// GPU power: Eq. 1 splits the host power, device power adds on top.
func GPUExcludedGroup(o Options) *rules.Group {
	const class = "gpuexc"
	rs := common(o, class)
	rs = append(rs, gpuRules(class)...)
	rs = append(rs, hostPowerRules(o, class,
		fmt.Sprintf(`sum by (instance) (ceems_ipmi_dcmi_current_watts{nodeclass="%s"})`, class), true)...)
	rs = append(rs, rules.Rule{
		Record: "uuid:total_watts:" + class,
		Expr: fmt.Sprintf(
			`(uuid:host_watts:%s + on (uuid, instance) group_left uuid:gpu_watts:%s) or uuid:host_watts:%s`,
			class, class, class),
	})
	return &rules.Group{Name: "ceems-" + class, Interval: o.Interval, Rules: rs}
}

// GPUIncludedGroup handles GPU nodes whose IPMI reading includes GPU
// power: device power is subtracted before the Eq. 1 split, then
// re-attributed per unit from the device metrics.
func GPUIncludedGroup(o Options) *rules.Group {
	const class = "gpuinc"
	rs := common(o, class)
	rs = append(rs, gpuRules(class)...)
	ipmi := fmt.Sprintf(
		`clamp_min(sum by (instance) (ceems_ipmi_dcmi_current_watts{nodeclass="%s"}) - instance:gpu_watts:%s, 0)`,
		class, class)
	rs = append(rs, hostPowerRules(o, class, ipmi, true)...)
	rs = append(rs, rules.Rule{
		Record: "uuid:total_watts:" + class,
		Expr: fmt.Sprintf(
			`(uuid:host_watts:%s + on (uuid, instance) group_left uuid:gpu_watts:%s) or uuid:host_watts:%s`,
			class, class, class),
	})
	return &rules.Group{Name: "ceems-" + class, Interval: o.Interval, Rules: rs}
}

// EmissionsGroup converts per-unit power into emission rates using the
// ingested grid factor series ceems_emission_factor_gco2_kwh{zone=...}.
func EmissionsGroup(o Options, classes ...string) *rules.Group {
	var rs []rules.Rule
	for _, class := range classes {
		rs = append(rs, rules.Rule{
			// g/h = W/1000 (kW) * factor (g/kWh).
			Record: "uuid:emissions_grams_per_hour:" + class,
			Expr: fmt.Sprintf(
				`uuid:total_watts:%s * on () group_left ceems_emission_factor_gco2_kwh / 1000`, class),
		})
	}
	return &rules.Group{Name: "ceems-emissions", Interval: o.Interval, Rules: rs}
}

// AllGroups returns every rule group for a cluster with all four node
// classes plus emissions.
func AllGroups(o Options) []*rules.Group {
	return []*rules.Group{
		IntelGroup(o),
		AMDGroup(o),
		GPUExcludedGroup(o),
		GPUIncludedGroup(o),
		EmissionsGroup(o, "intel", "amd", "gpuexc", "gpuinc"),
	}
}
