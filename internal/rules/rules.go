// Package rules implements Prometheus-style recording rules: named
// expressions evaluated on an interval whose results are written back to
// storage as new series. CEEMS expresses its per-hardware-group energy
// estimation formulas (paper Eq. 1 and variants) as recording rules; the
// concrete rule sets live in the ceemsrules subpackage.
package rules

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
)

// Appender is the storage destination for rule results; *tsdb.DB satisfies
// it.
type Appender interface {
	Append(lset labels.Labels, t int64, v float64) error
}

// Rule is one recording rule.
type Rule struct {
	// Record is the output metric name.
	Record string `yaml:"record"`
	// Expr is the PromQL expression to evaluate.
	Expr string `yaml:"expr"`
	// Labels are added to every output series (overriding collisions).
	Labels map[string]string `yaml:"labels"`
}

// Group is a set of rules evaluated together at one interval. Rules within
// a group are evaluated in order, so later rules can reference the output
// of earlier ones (from the previous write, as in Prometheus).
type Group struct {
	Name     string        `yaml:"name"`
	Interval time.Duration `yaml:"interval"`
	Rules    []Rule        `yaml:"rules"`
}

// Validate parses every rule expression, returning the first error.
func (g *Group) Validate() error {
	if g.Name == "" {
		return errors.New("rules: group name required")
	}
	for i, r := range g.Rules {
		if r.Record == "" {
			return fmt.Errorf("rules: group %s rule %d: record name required", g.Name, i)
		}
		if _, err := promql.ParseExpr(r.Expr); err != nil {
			return fmt.Errorf("rules: group %s rule %q: %w", g.Name, r.Record, err)
		}
	}
	return nil
}

// Engine evaluates rule groups.
type Engine struct {
	promql *promql.Engine

	mu    sync.Mutex
	stats map[string]*GroupStats
	// seen tracks each rule's output series from the previous evaluation
	// so vanished series receive staleness markers, exactly as Prometheus
	// rule evaluation does.
	seen map[string]map[uint64]labels.Labels
}

// GroupStats tracks evaluation health of one group.
type GroupStats struct {
	LastEval        time.Time
	LastDuration    time.Duration
	EvalCount       int64
	FailureCount    int64
	LastError       string
	SeriesLastWrite int
}

// NewEngine returns a rules engine using the given PromQL engine (nil for
// defaults).
func NewEngine(pe *promql.Engine) *Engine {
	if pe == nil {
		pe = promql.NewEngine()
	}
	return &Engine{promql: pe, stats: map[string]*GroupStats{}}
}

// EvalGroup evaluates all rules of the group at ts, reading from q and
// writing results to dst. Evaluation continues past individual rule errors;
// the first error is returned after all rules ran.
func (e *Engine) EvalGroup(g *Group, q promql.Queryable, dst Appender, ts time.Time) error {
	start := time.Now()
	var firstErr error
	written := 0
	for _, r := range g.Rules {
		n, err := e.evalRule(&r, q, dst, ts)
		written += n
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("rules: group %s rule %s: %w", g.Name, r.Record, err)
		}
	}
	e.mu.Lock()
	st, ok := e.stats[g.Name]
	if !ok {
		st = &GroupStats{}
		e.stats[g.Name] = st
	}
	st.LastEval = ts
	st.LastDuration = time.Since(start)
	st.EvalCount++
	st.SeriesLastWrite = written
	if firstErr != nil {
		st.FailureCount++
		st.LastError = firstErr.Error()
	}
	e.mu.Unlock()
	return firstErr
}

func (e *Engine) evalRule(r *Rule, q promql.Queryable, dst Appender, ts time.Time) (int, error) {
	val, err := e.promql.Instant(q, r.Expr, ts)
	if err != nil {
		return 0, err
	}
	var vec promql.Vector
	switch v := val.(type) {
	case promql.Vector:
		vec = v
	case promql.Scalar:
		vec = promql.Vector{{Labels: labels.Labels{}, T: v.T, V: v.V}}
	default:
		return 0, fmt.Errorf("rule result must be vector or scalar, got %s", val.Type())
	}
	n := 0
	cur := make(map[uint64]labels.Labels, len(vec))
	evalTS := ts.UnixMilli()
	for _, s := range vec {
		b := labels.NewBuilder(s.Labels)
		b.Set(labels.MetricName, r.Record)
		for k, v := range r.Labels {
			b.Set(k, v)
		}
		ls := b.Labels()
		if err := dst.Append(ls, s.T, s.V); err != nil {
			return n, err
		}
		cur[ls.Hash()] = ls
		n++
	}
	// Staleness markers for series this rule produced last time but not
	// now (e.g. a completed job's uuid:host_watts).
	e.mu.Lock()
	prev := e.seen[r.Record]
	if e.seen == nil {
		e.seen = map[string]map[uint64]labels.Labels{}
	}
	e.seen[r.Record] = cur
	e.mu.Unlock()
	for h, ls := range prev {
		if _, still := cur[h]; !still {
			dst.Append(ls, evalTS, model.StaleNaN())
		}
	}
	return n, nil
}

// Stats returns a copy of the per-group evaluation statistics.
func (e *Engine) Stats() map[string]GroupStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]GroupStats, len(e.stats))
	for k, v := range e.stats {
		out[k] = *v
	}
	return out
}

// Manager periodically evaluates a set of groups against one storage.
type Manager struct {
	Engine *Engine
	Query  promql.Queryable
	Dest   Appender
	Groups []*Group
	// Now returns the evaluation timestamp; defaults to time.Now. The
	// cluster simulator overrides it to drive simulated time.
	Now func() time.Time
	// OnError receives evaluation errors; nil drops them.
	OnError func(error)
}

// Run evaluates each group on its interval until ctx is cancelled. Groups
// with no interval default to one minute.
func (m *Manager) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for _, g := range m.Groups {
		interval := g.Interval
		if interval <= 0 {
			interval = time.Minute
		}
		wg.Add(1)
		go func(g *Group) {
			defer wg.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					m.evalOnce(g)
				}
			}
		}(g)
	}
	wg.Wait()
}

// EvalAll evaluates every group once at the given time; used by simulations
// that drive a virtual clock instead of Run.
func (m *Manager) EvalAll(ts time.Time) error {
	var firstErr error
	for _, g := range m.Groups {
		if err := m.Engine.EvalGroup(g, m.Query, m.Dest, ts); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (m *Manager) evalOnce(g *Group) {
	now := time.Now
	if m.Now != nil {
		now = m.Now
	}
	if err := m.Engine.EvalGroup(g, m.Query, m.Dest, now()); err != nil && m.OnError != nil {
		m.OnError(err)
	}
}

// SortedGroupNames returns the group names in sorted order (for stable
// status output).
func (m *Manager) SortedGroupNames() []string {
	names := make([]string, 0, len(m.Groups))
	for _, g := range m.Groups {
		names = append(names, g.Name)
	}
	sort.Strings(names)
	return names
}
