package rules

import (
	"strings"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
	"repro/internal/tsdb"
)

func seedDB(t *testing.T) *tsdb.DB {
	t.Helper()
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	for i := int64(0); i <= 20; i++ {
		ts := i * 15000
		if err := db.Append(labels.FromStrings(labels.MetricName, "energy_joules_total", "node", "n1"), ts, float64(i)*1500); err != nil {
			t.Fatal(err)
		}
		if err := db.Append(labels.FromStrings(labels.MetricName, "energy_joules_total", "node", "n2"), ts, float64(i)*3000); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestEvalGroupWritesRecords(t *testing.T) {
	db := seedDB(t)
	g := &Group{
		Name: "energy",
		Rules: []Rule{
			{Record: "node:power_watts", Expr: `rate(energy_joules_total[2m])`},
			{Record: "cluster:power_watts", Expr: `sum(rate(energy_joules_total[2m]))`,
				Labels: map[string]string{"cluster": "jz"}},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	eng := NewEngine(nil)
	ts := model.MillisToTime(300 * 1000)
	if err := eng.EvalGroup(g, db, db, ts); err != nil {
		t.Fatalf("EvalGroup: %v", err)
	}
	// Per-node records.
	got, _ := db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "node:power_watts"))
	if len(got) != 2 {
		t.Fatalf("node records = %d", len(got))
	}
	if v := got[0].Samples[0].V; v != 100 { // 1500 J per 15 s
		t.Errorf("n1 power = %v, want 100", v)
	}
	// Aggregate record with static label.
	got, _ = db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "cluster:power_watts"))
	if len(got) != 1 {
		t.Fatalf("cluster records = %d", len(got))
	}
	if got[0].Labels.Get("cluster") != "jz" {
		t.Errorf("static label missing: %v", got[0].Labels)
	}
	if v := got[0].Samples[0].V; v != 300 {
		t.Errorf("cluster power = %v, want 300", v)
	}
	// Stats recorded.
	st := eng.Stats()["energy"]
	if st.EvalCount != 1 || st.SeriesLastWrite != 3 || st.FailureCount != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []Group{
		{Name: "", Rules: []Rule{{Record: "r", Expr: "1"}}},
		{Name: "g", Rules: []Rule{{Record: "", Expr: "1"}}},
		{Name: "g", Rules: []Rule{{Record: "r", Expr: "sum("}}},
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestEvalGroupContinuesOnError(t *testing.T) {
	db := seedDB(t)
	g := &Group{
		Name: "mixed",
		Rules: []Rule{
			// label_replace with bad regex fails at eval time.
			{Record: "bad", Expr: `label_replace(energy_joules_total, "a", "$1", "b", "(")`},
			{Record: "good", Expr: `energy_joules_total`},
		},
	}
	eng := NewEngine(nil)
	err := eng.EvalGroup(g, db, db, model.MillisToTime(300*1000))
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("expected error mentioning rule, got %v", err)
	}
	// Second rule still ran.
	got, _ := db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "good"))
	if len(got) != 2 {
		t.Errorf("good rule did not run: %d series", len(got))
	}
	if eng.Stats()["mixed"].FailureCount != 1 {
		t.Errorf("failure not recorded")
	}
}

func TestScalarRule(t *testing.T) {
	db := seedDB(t)
	g := &Group{Name: "s", Rules: []Rule{{Record: "answer", Expr: "6 * 7"}}}
	eng := NewEngine(nil)
	if err := eng.EvalGroup(g, db, db, model.MillisToTime(1000)); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "answer"))
	if len(got) != 1 || got[0].Samples[0].V != 42 {
		t.Errorf("scalar rule = %+v", got)
	}
}

func TestManagerEvalAll(t *testing.T) {
	db := seedDB(t)
	m := &Manager{
		Engine: NewEngine(nil),
		Query:  db,
		Dest:   db,
		Groups: []*Group{
			{Name: "b", Rules: []Rule{{Record: "r1", Expr: "1"}}},
			{Name: "a", Rules: []Rule{{Record: "r2", Expr: "2"}}},
		},
	}
	if err := m.EvalAll(model.MillisToTime(1000)); err != nil {
		t.Fatalf("EvalAll: %v", err)
	}
	for _, rec := range []string{"r1", "r2"} {
		got, _ := db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, rec))
		if len(got) != 1 {
			t.Errorf("%s not written", rec)
		}
	}
	names := m.SortedGroupNames()
	if names[0] != "a" || names[1] != "b" {
		t.Errorf("sorted names = %v", names)
	}
}

// Rules chained across evaluations: rule 2 reads rule 1's output from the
// previous EvalAll.
func TestChainedRulesAcrossIntervals(t *testing.T) {
	db := seedDB(t)
	m := &Manager{
		Engine: NewEngine(nil),
		Query:  db,
		Dest:   db,
		Groups: []*Group{{
			Name: "chain",
			Rules: []Rule{
				{Record: "lvl1", Expr: `sum(energy_joules_total)`},
				{Record: "lvl2", Expr: `lvl1 * 2`},
			},
		}},
	}
	// First eval: lvl1 written; lvl2 sees nothing yet (same timestamp
	// lookback does include lvl1 written in the same pass at an earlier
	// wall moment? No: lvl1's sample carries ts, and lvl2's selector reads
	// storage at the same ts — the appended sample is visible).
	if err := m.EvalAll(model.MillisToTime(300 * 1000)); err != nil {
		t.Fatalf("EvalAll: %v", err)
	}
	got, _ := db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "lvl2"))
	if len(got) != 1 {
		t.Fatalf("lvl2 missing")
	}
	want := (20*1500.0 + 20*3000.0) * 2
	if got[0].Samples[0].V != want {
		t.Errorf("lvl2 = %v, want %v", got[0].Samples[0].V, want)
	}
}

func BenchmarkEvalGroup(b *testing.B) {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	for n := 0; n < 100; n++ {
		ls := labels.FromStrings(labels.MetricName, "energy_joules_total", "node", string(rune('a'+n%26))+string(rune('0'+n/26)))
		for i := int64(0); i <= 20; i++ {
			db.Append(ls, i*15000, float64(i)*1500)
		}
	}
	g := &Group{Name: "g", Rules: []Rule{
		{Record: "node:power", Expr: `rate(energy_joules_total[2m])`},
		{Record: "total:power", Expr: `sum(rate(energy_joules_total[2m]))`},
	}}
	eng := NewEngine(nil)
	ts := model.MillisToTime(300 * 1000)
	sink := tsdb.MustOpen(tsdb.DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.EvalGroup(g, db, &tsShift{sink, int64(i)}, ts); err != nil {
			b.Fatal(err)
		}
	}
}

// tsShift offsets appends so repeated benchmark iterations do not collide
// on out-of-order timestamps.
type tsShift struct {
	db  *tsdb.DB
	off int64
}

func (s *tsShift) Append(l labels.Labels, t int64, v float64) error {
	return s.db.Append(l, t+s.off, v)
}

var _ promql.Queryable = (*tsdb.DB)(nil)
var _ Appender = (*tsdb.DB)(nil)
var _ = time.Second
