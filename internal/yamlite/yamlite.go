// Package yamlite implements the YAML subset the CEEMS stack uses for its
// single-file configuration (paper §II.D: "All the CEEMS components can be
// configured in a single YAML file"). It supports block mappings, block
// sequences, nested indentation, quoted and plain scalars, flow sequences
// ([a, b]) and flow mappings ({k: v}), comments, and decoding into Go
// structs via `yaml` field tags.
//
// It deliberately omits anchors, aliases, multi-document streams and block
// scalars — the configuration files in this repository do not need them.
package yamlite

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"time"
)

// Parse decodes YAML text into a generic tree: map[string]any, []any,
// string, int64, float64, bool or nil.
func Parse(data []byte) (any, error) {
	p := &parser{}
	p.split(string(data))
	if len(p.lines) == 0 {
		return nil, nil
	}
	v, next, err := p.parseBlock(0, p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next < len(p.lines) {
		return nil, fmt.Errorf("yamlite: line %d: unexpected content %q", p.lines[next].no, p.lines[next].text)
	}
	return v, nil
}

// Unmarshal parses the YAML and decodes it into out, which must be a
// non-nil pointer. Struct fields are matched by `yaml:"name"` tag, or the
// lower-cased field name when untagged. Fields tagged `yaml:"-"` are
// skipped. time.Duration fields accept Go duration strings ("15s").
func Unmarshal(data []byte, out any) error {
	tree, err := Parse(data)
	if err != nil {
		return err
	}
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("yamlite: Unmarshal target must be a non-nil pointer")
	}
	if tree == nil {
		return nil
	}
	return decode(tree, rv.Elem(), "")
}

type line struct {
	no     int // 1-based source line
	indent int
	text   string // content without indentation or comments
}

type parser struct {
	lines []line
}

// split pre-processes the source into significant lines.
func (p *parser) split(src string) {
	for i, raw := range strings.Split(src, "\n") {
		// Strip comments outside quotes.
		text := stripComment(raw)
		trimmed := strings.TrimRight(text, " \t")
		content := strings.TrimLeft(trimmed, " ")
		if content == "" || content == "---" {
			continue
		}
		indent := len(trimmed) - len(content)
		p.lines = append(p.lines, line{no: i + 1, indent: indent, text: content})
	}
}

func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses the block starting at line index i with the given
// indentation, returning the value and the index of the first unconsumed
// line.
func (p *parser) parseBlock(i, indent int) (any, int, error) {
	if i >= len(p.lines) {
		return nil, i, nil
	}
	if strings.HasPrefix(p.lines[i].text, "- ") || p.lines[i].text == "-" {
		return p.parseSequence(i, indent)
	}
	return p.parseMapping(i, indent)
}

func (p *parser) parseSequence(i, indent int) (any, int, error) {
	var seq []any
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, i, fmt.Errorf("yamlite: line %d: unexpected indentation", ln.no)
		}
		if !strings.HasPrefix(ln.text, "-") {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if rest == "" {
			// Nested block on following lines.
			if i+1 < len(p.lines) && p.lines[i+1].indent > indent {
				v, next, err := p.parseBlock(i+1, p.lines[i+1].indent)
				if err != nil {
					return nil, i, err
				}
				seq = append(seq, v)
				i = next
				continue
			}
			seq = append(seq, nil)
			i++
			continue
		}
		// "- key: value" inline mapping start: rewrite as a mapping whose
		// first line is the rest, nested lines follow deeper-indented.
		if k, v, isMap := splitKV(rest); isMap {
			m := map[string]any{}
			itemIndent := ln.indent + 2 // canonical continuation indent
			if v == "" {
				// value is a nested block
				if i+1 < len(p.lines) && p.lines[i+1].indent > ln.indent {
					child, next, err := p.parseBlock(i+1, p.lines[i+1].indent)
					if err != nil {
						return nil, i, err
					}
					m[k] = child
					i = next
				} else {
					m[k] = nil
					i++
				}
			} else {
				sv, err := scalar(v, ln.no)
				if err != nil {
					return nil, i, err
				}
				m[k] = sv
				i++
			}
			// Continuation keys of this item are indented deeper than '-'.
			for i < len(p.lines) && p.lines[i].indent >= itemIndent && !strings.HasPrefix(p.lines[i].text, "- ") {
				mv, next, err := p.parseMapping(i, p.lines[i].indent)
				if err != nil {
					return nil, i, err
				}
				for kk, vv := range mv.(map[string]any) {
					m[kk] = vv
				}
				i = next
			}
			seq = append(seq, m)
			continue
		}
		sv, err := scalar(rest, ln.no)
		if err != nil {
			return nil, i, err
		}
		seq = append(seq, sv)
		i++
	}
	return seq, i, nil
}

func (p *parser) parseMapping(i, indent int) (any, int, error) {
	m := map[string]any{}
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.indent != indent {
			if ln.indent < indent {
				break
			}
			return nil, i, fmt.Errorf("yamlite: line %d: unexpected indentation", ln.no)
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			break
		}
		k, v, ok := splitKV(ln.text)
		if !ok {
			return nil, i, fmt.Errorf("yamlite: line %d: expected 'key: value', got %q", ln.no, ln.text)
		}
		if _, dup := m[k]; dup {
			return nil, i, fmt.Errorf("yamlite: line %d: duplicate key %q", ln.no, k)
		}
		if v == "" {
			// Nested block or empty value.
			if i+1 < len(p.lines) && p.lines[i+1].indent > indent {
				child, next, err := p.parseBlock(i+1, p.lines[i+1].indent)
				if err != nil {
					return nil, i, err
				}
				m[k] = child
				i = next
				continue
			}
			m[k] = nil
			i++
			continue
		}
		sv, err := scalar(v, ln.no)
		if err != nil {
			return nil, i, err
		}
		m[k] = sv
		i++
	}
	return m, i, nil
}

// splitKV splits "key: value" respecting quotes; returns ok=false when the
// line is not a mapping entry.
func splitKV(s string) (key, value string, ok bool) {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case ':':
			if inS || inD {
				continue
			}
			if i+1 == len(s) {
				return strings.TrimSpace(unquoteKey(s[:i])), "", true
			}
			if s[i+1] == ' ' || s[i+1] == '\t' {
				return strings.TrimSpace(unquoteKey(s[:i])), strings.TrimSpace(s[i+1:]), true
			}
		}
	}
	return "", "", false
}

func unquoteKey(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && (s[0] == '"' && s[len(s)-1] == '"' || s[0] == '\'' && s[len(s)-1] == '\'') {
		return s[1 : len(s)-1]
	}
	return s
}

// scalar parses a scalar or flow collection.
func scalar(s string, lineNo int) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, nil
	case s[0] == '[':
		return flowSeq(s, lineNo)
	case s[0] == '{':
		return flowMap(s, lineNo)
	case s[0] == '"':
		uq, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("yamlite: line %d: bad quoted string %s", lineNo, s)
		}
		return uq, nil
	case s[0] == '\'':
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, fmt.Errorf("yamlite: line %d: unterminated string %s", lineNo, s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	switch s {
	case "null", "~", "Null", "NULL":
		return nil, nil
	case "true", "True", "TRUE":
		return true, nil
	case "false", "False", "FALSE":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 0, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

func flowSeq(s string, lineNo int) (any, error) {
	if s[len(s)-1] != ']' {
		return nil, fmt.Errorf("yamlite: line %d: unterminated flow sequence %q", lineNo, s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return []any{}, nil
	}
	parts, err := splitFlow(inner, lineNo)
	if err != nil {
		return nil, err
	}
	out := make([]any, 0, len(parts))
	for _, p := range parts {
		v, err := scalar(p, lineNo)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func flowMap(s string, lineNo int) (any, error) {
	if s[len(s)-1] != '}' {
		return nil, fmt.Errorf("yamlite: line %d: unterminated flow mapping %q", lineNo, s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	m := map[string]any{}
	if inner == "" {
		return m, nil
	}
	parts, err := splitFlow(inner, lineNo)
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		k, v, ok := splitKV(p)
		if !ok {
			// allow "k:v" without space inside flow maps
			if idx := strings.IndexByte(p, ':'); idx > 0 {
				k, v, ok = strings.TrimSpace(p[:idx]), strings.TrimSpace(p[idx+1:]), true
			}
		}
		if !ok {
			return nil, fmt.Errorf("yamlite: line %d: bad flow mapping entry %q", lineNo, p)
		}
		sv, err := scalar(v, lineNo)
		if err != nil {
			return nil, err
		}
		m[k] = sv
	}
	return m, nil
}

// splitFlow splits a flow body on commas, respecting nesting and quotes.
func splitFlow(s string, lineNo int) ([]string, error) {
	var parts []string
	depth := 0
	inS, inD := false, false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '[', '{':
			if !inS && !inD {
				depth++
			}
		case ']', '}':
			if !inS && !inD {
				depth--
				if depth < 0 {
					return nil, fmt.Errorf("yamlite: line %d: unbalanced brackets in %q", lineNo, s)
				}
			}
		case ',':
			if !inS && !inD && depth == 0 {
				parts = append(parts, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 || inS || inD {
		return nil, fmt.Errorf("yamlite: line %d: unbalanced flow syntax in %q", lineNo, s)
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	return parts, nil
}

var durationType = reflect.TypeOf(time.Duration(0))

// decode assigns the generic tree value into rv.
func decode(tree any, rv reflect.Value, path string) error {
	if tree == nil {
		return nil
	}
	// time.Duration special case.
	if rv.Type() == durationType {
		switch v := tree.(type) {
		case string:
			d, err := time.ParseDuration(v)
			if err != nil {
				return fmt.Errorf("yamlite: %s: bad duration %q: %w", path, v, err)
			}
			rv.SetInt(int64(d))
			return nil
		case int64:
			rv.SetInt(v * int64(time.Second)) // bare numbers are seconds
			return nil
		}
		return fmt.Errorf("yamlite: %s: cannot decode %T into time.Duration", path, tree)
	}
	switch rv.Kind() {
	case reflect.Pointer:
		if rv.IsNil() {
			rv.Set(reflect.New(rv.Type().Elem()))
		}
		return decode(tree, rv.Elem(), path)
	case reflect.Interface:
		rv.Set(reflect.ValueOf(tree))
		return nil
	case reflect.Struct:
		m, ok := tree.(map[string]any)
		if !ok {
			return fmt.Errorf("yamlite: %s: expected mapping for struct, got %T", path, tree)
		}
		fields := structFields(rv.Type())
		for k, v := range m {
			idx, ok := fields[k]
			if !ok {
				continue // unknown keys are ignored, as in most YAML configs
			}
			if err := decode(v, rv.Field(idx), path+"."+k); err != nil {
				return err
			}
		}
		return nil
	case reflect.Map:
		m, ok := tree.(map[string]any)
		if !ok {
			return fmt.Errorf("yamlite: %s: expected mapping, got %T", path, tree)
		}
		if rv.Type().Key().Kind() != reflect.String {
			return fmt.Errorf("yamlite: %s: only string-keyed maps supported", path)
		}
		out := reflect.MakeMapWithSize(rv.Type(), len(m))
		for k, v := range m {
			ev := reflect.New(rv.Type().Elem()).Elem()
			if err := decode(v, ev, path+"."+k); err != nil {
				return err
			}
			out.SetMapIndex(reflect.ValueOf(k).Convert(rv.Type().Key()), ev)
		}
		rv.Set(out)
		return nil
	case reflect.Slice:
		s, ok := tree.([]any)
		if !ok {
			return fmt.Errorf("yamlite: %s: expected sequence, got %T", path, tree)
		}
		out := reflect.MakeSlice(rv.Type(), len(s), len(s))
		for i, v := range s {
			if err := decode(v, out.Index(i), fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
		rv.Set(out)
		return nil
	case reflect.String:
		switch v := tree.(type) {
		case string:
			rv.SetString(v)
		case int64:
			rv.SetString(strconv.FormatInt(v, 10))
		case float64:
			rv.SetString(strconv.FormatFloat(v, 'g', -1, 64))
		case bool:
			rv.SetString(strconv.FormatBool(v))
		default:
			return fmt.Errorf("yamlite: %s: cannot decode %T into string", path, tree)
		}
		return nil
	case reflect.Bool:
		b, ok := tree.(bool)
		if !ok {
			return fmt.Errorf("yamlite: %s: cannot decode %T into bool", path, tree)
		}
		rv.SetBool(b)
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		switch v := tree.(type) {
		case int64:
			rv.SetInt(v)
		case float64:
			rv.SetInt(int64(v))
		default:
			return fmt.Errorf("yamlite: %s: cannot decode %T into int", path, tree)
		}
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		switch v := tree.(type) {
		case int64:
			if v < 0 {
				return fmt.Errorf("yamlite: %s: negative value for unsigned field", path)
			}
			rv.SetUint(uint64(v))
		default:
			return fmt.Errorf("yamlite: %s: cannot decode %T into uint", path, tree)
		}
		return nil
	case reflect.Float32, reflect.Float64:
		switch v := tree.(type) {
		case float64:
			rv.SetFloat(v)
		case int64:
			rv.SetFloat(float64(v))
		default:
			return fmt.Errorf("yamlite: %s: cannot decode %T into float", path, tree)
		}
		return nil
	}
	return fmt.Errorf("yamlite: %s: unsupported kind %s", path, rv.Kind())
}

// structFields maps yaml key -> field index for a struct type.
func structFields(t reflect.Type) map[string]int {
	m := make(map[string]int, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := f.Tag.Get("yaml")
		name := strings.Split(tag, ",")[0]
		if name == "-" {
			continue
		}
		if name == "" {
			name = strings.ToLower(f.Name)
		}
		m[name] = i
	}
	return m
}
