package yamlite

import (
	"reflect"
	"testing"
)

func TestSequenceOfNestedBlocks(t *testing.T) {
	in := `
groups:
  -
    name: inline-dash-block
  - name: with-map
    labels: {a: b}
`
	v, err := Parse([]byte(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	groups := v.(map[string]any)["groups"].([]any)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].(map[string]any)["name"] != "inline-dash-block" {
		t.Errorf("group0 = %#v", groups[0])
	}
	if groups[1].(map[string]any)["labels"].(map[string]any)["a"] != "b" {
		t.Errorf("group1 = %#v", groups[1])
	}
}

func TestBareDashNilItem(t *testing.T) {
	v, err := Parse([]byte("items:\n  -\n  - x\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	items := v.(map[string]any)["items"].([]any)
	if len(items) != 2 || items[0] != nil || items[1] != "x" {
		t.Errorf("items = %#v", items)
	}
}

func TestTopLevelSequence(t *testing.T) {
	v, err := Parse([]byte("- a\n- b\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(v, []any{"a", "b"}) {
		t.Errorf("v = %#v", v)
	}
}

func TestQuotedKeys(t *testing.T) {
	v, err := Parse([]byte(`"weird key": 1` + "\n'other': 2\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := v.(map[string]any)
	if m["weird key"] != int64(1) || m["other"] != int64(2) {
		t.Errorf("m = %#v", m)
	}
}

func TestDocumentSeparatorSkipped(t *testing.T) {
	v, err := Parse([]byte("---\na: 1\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v.(map[string]any)["a"] != int64(1) {
		t.Errorf("v = %#v", v)
	}
}

func TestNegativeAndFloatScalars(t *testing.T) {
	v, err := Parse([]byte("neg: -5\nnegf: -2.5\nexp: 1e3\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := v.(map[string]any)
	if m["neg"] != int64(-5) || m["negf"] != -2.5 || m["exp"] != 1000.0 {
		t.Errorf("m = %#v", m)
	}
}

func TestUnmarshalIntoMapOfStructs(t *testing.T) {
	type entry struct {
		Port int `yaml:"port"`
	}
	var out struct {
		Services map[string]entry `yaml:"services"`
	}
	in := `
services:
  web:
    port: 80
  db:
    port: 5432
`
	if err := Unmarshal([]byte(in), &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if out.Services["web"].Port != 80 || out.Services["db"].Port != 5432 {
		t.Errorf("services = %#v", out.Services)
	}
}

func TestUnmarshalInterfaceField(t *testing.T) {
	var out struct {
		Anything any `yaml:"anything"`
	}
	if err := Unmarshal([]byte("anything: [1, two]"), &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	got := out.Anything.([]any)
	if got[0] != int64(1) || got[1] != "two" {
		t.Errorf("anything = %#v", out.Anything)
	}
}

func TestUnmarshalUintAndErrors(t *testing.T) {
	var out struct {
		Count uint `yaml:"count"`
	}
	if err := Unmarshal([]byte("count: 7"), &out); err != nil || out.Count != 7 {
		t.Errorf("uint = %d, %v", out.Count, err)
	}
	if err := Unmarshal([]byte("count: -7"), &out); err == nil {
		t.Error("negative into uint accepted")
	}
	var bad struct {
		S []string `yaml:"s"`
	}
	if err := Unmarshal([]byte("s: notalist"), &bad); err == nil {
		t.Error("scalar into slice accepted")
	}
	var badMap struct {
		M map[string]int `yaml:"m"`
	}
	if err := Unmarshal([]byte("m: [1]"), &badMap); err == nil {
		t.Error("list into map accepted")
	}
}

func TestStringCoercions(t *testing.T) {
	var out struct {
		A string `yaml:"a"`
		B string `yaml:"b"`
		C string `yaml:"c"`
	}
	if err := Unmarshal([]byte("a: 5\nb: 1.5\nc: true"), &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if out.A != "5" || out.B != "1.5" || out.C != "true" {
		t.Errorf("coercions = %+v", out)
	}
}
