package yamlite

import (
	"reflect"
	"testing"
	"time"
)

func TestParseScalars(t *testing.T) {
	in := `
str: hello
quoted: "a: b # not comment"
single: 'it''s'
int: 42
hex: 0x10
float: 3.14
boolean: true
nothing: null
tilde: ~
`
	v, err := Parse([]byte(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := v.(map[string]any)
	checks := map[string]any{
		"str": "hello", "quoted": "a: b # not comment", "single": "it's",
		"int": int64(42), "hex": int64(16), "float": 3.14,
		"boolean": true, "nothing": nil, "tilde": nil,
	}
	for k, want := range checks {
		if got := m[k]; !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %#v, want %#v", k, got, want)
		}
	}
}

func TestParseNested(t *testing.T) {
	in := `
server:
  addr: ":8080"
  tls:
    cert: /etc/cert.pem
list:
  - one
  - two
`
	v, err := Parse([]byte(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := v.(map[string]any)
	srv := m["server"].(map[string]any)
	if srv["addr"] != ":8080" {
		t.Errorf("addr = %v", srv["addr"])
	}
	if srv["tls"].(map[string]any)["cert"] != "/etc/cert.pem" {
		t.Error("nested tls.cert wrong")
	}
	if !reflect.DeepEqual(m["list"], []any{"one", "two"}) {
		t.Errorf("list = %#v", m["list"])
	}
}

func TestParseSequenceOfMappings(t *testing.T) {
	in := `
rules:
  - name: rule1
    expr: up == 1
    interval: 15s
  - name: rule2
    expr: rate(x[5m])
`
	v, err := Parse([]byte(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rules := v.(map[string]any)["rules"].([]any)
	if len(rules) != 2 {
		t.Fatalf("want 2 rules, got %d", len(rules))
	}
	r0 := rules[0].(map[string]any)
	if r0["name"] != "rule1" || r0["expr"] != "up == 1" || r0["interval"] != "15s" {
		t.Errorf("rule0 = %#v", r0)
	}
	if rules[1].(map[string]any)["expr"] != "rate(x[5m])" {
		t.Error("rule1 expr wrong")
	}
}

func TestParseFlow(t *testing.T) {
	in := `
targets: [node1:9100, node2:9100]
labels: {cluster: jz, env: prod}
nested: [[1, 2], [3]]
empty: []
`
	v, err := Parse([]byte(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := v.(map[string]any)
	if !reflect.DeepEqual(m["targets"], []any{"node1:9100", "node2:9100"}) {
		t.Errorf("targets = %#v", m["targets"])
	}
	lm := m["labels"].(map[string]any)
	if lm["cluster"] != "jz" || lm["env"] != "prod" {
		t.Errorf("labels = %#v", lm)
	}
	if !reflect.DeepEqual(m["nested"], []any{[]any{int64(1), int64(2)}, []any{int64(3)}}) {
		t.Errorf("nested = %#v", m["nested"])
	}
	if len(m["empty"].([]any)) != 0 {
		t.Error("empty flow seq")
	}
}

func TestParseComments(t *testing.T) {
	in := `
# full line comment
key: value  # trailing comment
url: "http://x#y"  # fragment kept inside quotes
`
	v, err := Parse([]byte(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := v.(map[string]any)
	if m["key"] != "value" {
		t.Errorf("key = %v", m["key"])
	}
	if m["url"] != "http://x#y" {
		t.Errorf("url = %v", m["url"])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"a: [1, 2",         // unterminated flow
		"a: {k: v",         // unterminated flow map
		"a: 'oops",         // unterminated string
		"key: 1\nkey: 2",   // duplicate key
		"a: 1\n  b: weird", // bad indent under scalar value... actually this errors via mapping
	}
	for _, in := range bad {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	v, err := Parse([]byte("\n# nothing\n"))
	if err != nil || v != nil {
		t.Errorf("empty parse = %v, %v", v, err)
	}
}

type testConfig struct {
	Addr     string        `yaml:"addr"`
	Workers  int           `yaml:"workers"`
	Ratio    float64       `yaml:"ratio"`
	Debug    bool          `yaml:"debug"`
	Interval time.Duration `yaml:"interval"`
	Tags     []string      `yaml:"tags"`
	Limits   map[string]int
	Sub      subConfig  `yaml:"sub"`
	SubPtr   *subConfig `yaml:"subptr"`
	Skipped  string     `yaml:"-"`
}

type subConfig struct {
	Name string `yaml:"name"`
}

func TestUnmarshalStruct(t *testing.T) {
	in := `
addr: ":9090"
workers: 8
ratio: 0.9
debug: true
interval: 30s
tags: [a, b]
limits:
  cpu: 4
  mem: 16
sub:
  name: inner
subptr:
  name: viaptr
unknown_key: ignored
`
	var c testConfig
	if err := Unmarshal([]byte(in), &c); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if c.Addr != ":9090" || c.Workers != 8 || c.Ratio != 0.9 || !c.Debug {
		t.Errorf("config = %+v", c)
	}
	if c.Interval != 30*time.Second {
		t.Errorf("interval = %v", c.Interval)
	}
	if !reflect.DeepEqual(c.Tags, []string{"a", "b"}) {
		t.Errorf("tags = %v", c.Tags)
	}
	if c.Limits["cpu"] != 4 || c.Limits["mem"] != 16 {
		t.Errorf("limits = %v", c.Limits)
	}
	if c.Sub.Name != "inner" || c.SubPtr == nil || c.SubPtr.Name != "viaptr" {
		t.Errorf("sub = %+v, subptr = %+v", c.Sub, c.SubPtr)
	}
}

func TestUnmarshalDurationBareSeconds(t *testing.T) {
	var c testConfig
	if err := Unmarshal([]byte("interval: 15"), &c); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if c.Interval != 15*time.Second {
		t.Errorf("bare duration = %v, want 15s", c.Interval)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var c testConfig
	if err := Unmarshal([]byte("workers: notanint"), &c); err == nil {
		t.Error("expected type error for workers")
	}
	if err := Unmarshal([]byte("debug: 1"), &c); err == nil {
		t.Error("expected type error for debug")
	}
	if err := Unmarshal([]byte("interval: 5x"), &c); err == nil {
		t.Error("expected duration parse error")
	}
	if err := Unmarshal([]byte("a: 1"), c); err == nil {
		t.Error("expected pointer-target error")
	}
	var nilPtr *testConfig
	if err := Unmarshal([]byte("a: 1"), nilPtr); err == nil {
		t.Error("expected nil-pointer error")
	}
}

func TestUnmarshalDefaultFieldName(t *testing.T) {
	var c testConfig
	if err := Unmarshal([]byte("limits:\n  gpu: 2"), &c); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if c.Limits["gpu"] != 2 {
		t.Error("untagged field should match lowercase name")
	}
}

func TestDeeplyNestedSequences(t *testing.T) {
	in := `
clusters:
  - name: a
    nodes:
      - n1
      - n2
  - name: b
    nodes:
      - n3
`
	type cluster struct {
		Name  string   `yaml:"name"`
		Nodes []string `yaml:"nodes"`
	}
	var out struct {
		Clusters []cluster `yaml:"clusters"`
	}
	if err := Unmarshal([]byte(in), &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(out.Clusters) != 2 || out.Clusters[0].Nodes[1] != "n2" || out.Clusters[1].Nodes[0] != "n3" {
		t.Errorf("clusters = %+v", out.Clusters)
	}
}
