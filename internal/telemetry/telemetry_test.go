package telemetry

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/expofmt"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("telemetry_test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("telemetry_test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *QueryTrace
	var l *QueryLog
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	tr.ObserveStage("parse", time.Millisecond)
	rq := l.Begin("instant", "up")
	rq.End(nil)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if rq.Trace() != nil || tr.HeaderValue() != "" {
		t.Fatal("nil trace accessors must be empty")
	}
	st := l.Status()
	if len(st.Active) != 0 || len(st.Slow) != 0 {
		t.Fatal("nil QueryLog status must be empty")
	}
}

func TestRegistryDedupes(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("telemetry_dedupe_total", "help", "cache", "x")
	b := r.Counter("telemetry_dedupe_total", "other help", "cache", "x")
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	other := r.Counter("telemetry_dedupe_total", "help", "cache", "y")
	if a == other {
		t.Fatal("different label values must return distinct counters")
	}
	a.Add(2)
	other.Add(7)
	var x, y bool
	for _, f := range r.Gather() {
		if f.Name != "telemetry_dedupe_total" {
			continue
		}
		for _, m := range f.Metrics {
			switch m.Labels.Get("cache") {
			case "x":
				x = m.Value == 2
			case "y":
				y = m.Value == 7
			}
		}
	}
	if !x || !y {
		t.Fatal("both label variants must render with their own values")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("telemetry_kind_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("telemetry_kind_total", "help")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q must panic", bad)
				}
			}()
			r.Counter(bad, "help")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("odd label pairs must panic")
			}
		}()
		r.Counter("telemetry_odd_total", "help", "only_key")
	}()
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("telemetry_hist_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// le buckets are cumulative: 0.1→1, 1→3, 10→4, +Inf→5.
	want := map[string]float64{"0.1": 1, "1": 3, "10": 4, "+Inf": 5}
	var sawBuckets, sawSum, sawCount bool
	for _, f := range r.Gather() {
		switch f.Name {
		case "telemetry_hist_seconds_bucket":
			sawBuckets = true
			if f.Type != expofmt.TypeCounter {
				t.Errorf("bucket family type = %s, want counter", f.Type)
			}
			for _, m := range f.Metrics {
				le := m.Labels.Get("le")
				if m.Value != want[le] {
					t.Errorf("bucket le=%s = %v, want %v", le, m.Value, want[le])
				}
			}
			if len(f.Metrics) != len(want) {
				t.Errorf("bucket count = %d, want %d", len(f.Metrics), len(want))
			}
		case "telemetry_hist_seconds_sum":
			sawSum = true
		case "telemetry_hist_seconds_count":
			sawCount = true
			if f.Metrics[0].Value != 5 {
				t.Errorf("_count = %v, want 5", f.Metrics[0].Value)
			}
		}
	}
	if !sawBuckets || !sawSum || !sawCount {
		t.Fatalf("missing histogram families: bucket=%v sum=%v count=%v", sawBuckets, sawSum, sawCount)
	}
}

func TestFuncInstrumentsAndReplacement(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.CounterFunc("telemetry_fn_total", "help", func() float64 { return v })
	r.GaugeFunc("telemetry_fn_gauge", "help", func() float64 { return -v })
	find := func(name string) float64 {
		for _, f := range r.Gather() {
			if f.Name == name {
				return f.Metrics[0].Value
			}
		}
		t.Fatalf("family %s not rendered", name)
		return 0
	}
	if find("telemetry_fn_total") != 7 || find("telemetry_fn_gauge") != -7 {
		t.Fatal("func instruments must read through at gather time")
	}
	// Re-registration replaces the closure (rebuilt component, fresh state).
	r.CounterFunc("telemetry_fn_total", "help", func() float64 { return 100 })
	if find("telemetry_fn_total") != 100 {
		t.Fatal("re-registered CounterFunc must replace the previous fn")
	}
}

func TestRenderRoundTripsThroughExpofmt(t *testing.T) {
	r := NewRegistry()
	RegisterProcess(r)
	r.Counter("telemetry_roundtrip_total", "Counts things.", "cache", "default").Add(42)
	r.Histogram("telemetry_roundtrip_seconds", "Times things.", LatencyBuckets).Observe(0.003)
	text := r.Render()
	fams, err := expofmt.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own exposition output must parse: %v\n%s", err, text)
	}
	byName := map[string]*expofmt.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	c, ok := byName["telemetry_roundtrip_total"]
	if !ok || c.Type != expofmt.TypeCounter {
		t.Fatalf("parsed counter family missing or mistyped: %+v", c)
	}
	if c.Metrics[0].Value != 42 || c.Metrics[0].Labels.Get("cache") != "default" {
		t.Fatalf("parsed counter = %+v", c.Metrics[0])
	}
	b, ok := byName["telemetry_roundtrip_seconds_bucket"]
	if !ok || len(b.Metrics) != len(LatencyBuckets)+1 {
		t.Fatalf("parsed bucket family wrong: %+v", b)
	}
	if _, ok := byName["telemetry_process_goroutines"]; !ok {
		t.Fatal("process gauges must round-trip")
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("telemetry_race_total", "help")
	h := r.Histogram("telemetry_race_seconds", "help", LatencyBuckets)
	g := r.Gauge("telemetry_race_gauge", "help")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
				g.Add(1)
				// Concurrent registration of an existing key must be safe too.
				r.Counter("telemetry_race_total", "help")
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Gather()
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 || h.Count() != 8000 || g.Value() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d gauge=%v", c.Value(), h.Count(), g.Value())
	}
}

func TestQueryTraceAccumulatesStages(t *testing.T) {
	tr := &QueryTrace{}
	tr.ObserveStage("parse", 10*time.Millisecond)
	tr.ObserveStage("eval", 20*time.Millisecond)
	tr.ObserveStage("eval", 30*time.Millisecond) // spliced query: same stage twice
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v, want 2 entries", spans)
	}
	if spans[0].Stage != "parse" || spans[1].Stage != "eval" {
		t.Fatalf("span order = %+v, want first-occurrence order", spans)
	}
	if got := spans[1].Seconds; got < 0.049 || got > 0.051 {
		t.Fatalf("eval span = %v, want ~0.05 accumulated", got)
	}
	hv := tr.HeaderValue()
	if hv != "parse=0.010000 eval=0.050000" {
		t.Fatalf("header = %q", hv)
	}
}

func TestTraceContextPlumbing(t *testing.T) {
	tr := &QueryTrace{}
	ctx := ContextWithTrace(t.Context(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom must return the attached trace")
	}
	if TraceFrom(t.Context()) != nil {
		t.Fatal("TraceFrom on a bare context must be nil")
	}
	if got := ContextWithTrace(t.Context(), nil); TraceFrom(got) != nil {
		t.Fatal("attaching a nil trace must be a no-op")
	}
}

func TestQueryLogActiveAndSlowRing(t *testing.T) {
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	l := &QueryLog{
		SlowThreshold: 100 * time.Millisecond,
		SlowCapacity:  2,
		Now:           func() time.Time { return clock },
	}
	// An in-flight query shows up as active.
	rq := l.Begin("range", "rate(x[5m])")
	clock = clock.Add(50 * time.Millisecond)
	st := l.Status()
	if len(st.Active) != 1 || st.Active[0].Query != "rate(x[5m])" || st.Active[0].Kind != "range" {
		t.Fatalf("active = %+v", st.Active)
	}
	if got := st.Active[0].AgeSeconds; got < 0.049 || got > 0.051 {
		t.Fatalf("age = %v, want ~0.05", got)
	}
	// Fast query: leaves active, skips the slow ring.
	rq.End(nil)
	if st = l.Status(); len(st.Active) != 0 || len(st.Slow) != 0 {
		t.Fatalf("fast query leaked into status: %+v", st)
	}
	// Three slow queries overflow the 2-slot ring; newest first, oldest gone.
	for i, q := range []string{"slow0", "slow1", "slow2"} {
		rq = l.Begin("instant", q)
		clock = clock.Add(200 * time.Millisecond)
		var err error
		if i == 2 {
			err = errors.New("deadline exceeded")
		}
		rq.End(err)
	}
	st = l.Status()
	if st.SlowTotal != 3 {
		t.Fatalf("slow_total = %d, want 3", st.SlowTotal)
	}
	if len(st.Slow) != 2 || st.Slow[0].Query != "slow2" || st.Slow[1].Query != "slow1" {
		t.Fatalf("slow ring = %+v, want [slow2 slow1]", st.Slow)
	}
	if st.Slow[0].Error != "deadline exceeded" {
		t.Fatalf("slow error = %q", st.Slow[0].Error)
	}
	if st.SlowThresholdSeconds != 0.1 {
		t.Fatalf("threshold = %v, want 0.1", st.SlowThresholdSeconds)
	}
}

func TestQueryLogThresholdDisabled(t *testing.T) {
	clock := time.Unix(0, 0)
	l := &QueryLog{Now: func() time.Time { return clock }}
	rq := l.Begin("instant", "up")
	clock = clock.Add(time.Hour)
	rq.End(nil)
	if st := l.Status(); len(st.Slow) != 0 || st.SlowTotal != 0 {
		t.Fatalf("zero threshold must disable the slow log: %+v", st)
	}
}
