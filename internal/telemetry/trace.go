// Per-query tracing: a QueryTrace accumulates per-stage span durations as
// an evaluation runs (the engine reports parse/prefetch/eval/merge through
// the request context), and a QueryLog tracks every in-flight query plus a
// ring buffer of completed queries that crossed the slow threshold. promapi
// exposes both via /api/v1/status/queries and the opt-in X-Query-Trace
// response header.

package telemetry

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one named stage of a query's evaluation.
type Span struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
}

// QueryTrace collects stage durations for one query. Stages repeating
// within a query (a spliced range query evaluates twice) accumulate into
// one span. All methods are nil-safe: an untraced evaluation pays one
// branch.
type QueryTrace struct {
	mu    sync.Mutex
	spans []Span
}

// ObserveStage adds d to the named stage's span.
func (t *QueryTrace) ObserveStage(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.spans {
		if t.spans[i].Stage == stage {
			t.spans[i].Seconds += d.Seconds()
			t.mu.Unlock()
			return
		}
	}
	t.spans = append(t.spans, Span{Stage: stage, Seconds: d.Seconds()})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in first-occurrence order.
func (t *QueryTrace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// HeaderValue renders the spans for the X-Query-Trace response header:
// "parse=0.000012 prefetch=0.000345 ..." (seconds, ASCII only).
func (t *QueryTrace) HeaderValue() string {
	var b strings.Builder
	for i, s := range t.Spans() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.6f", s.Stage, s.Seconds)
	}
	return b.String()
}

type traceCtxKey struct{}

// ContextWithTrace attaches t to the context; the engine's stage
// observations find it with TraceFrom. A nil trace returns ctx unchanged.
func ContextWithTrace(ctx context.Context, t *QueryTrace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *QueryTrace {
	t, _ := ctx.Value(traceCtxKey{}).(*QueryTrace)
	return t
}

// DefaultSlowCapacity is the slow-query ring size when SlowCapacity is 0.
const DefaultSlowCapacity = 128

// QueryLog tracks in-flight queries and retains the slowest completed ones
// in a bounded ring. Begin/End are cheap (one mutex round-trip each, off
// the evaluation path); a nil *QueryLog disables everything.
type QueryLog struct {
	// SlowThreshold is the duration at or above which a completed query
	// lands in the slow ring; <= 0 disables the slow log (active-query
	// tracking still works).
	SlowThreshold time.Duration
	// SlowCapacity bounds the ring; 0 picks DefaultSlowCapacity.
	SlowCapacity int
	// Now supplies the clock; nil means time.Now.
	Now func() time.Time

	mu       sync.Mutex
	nextID   uint64
	active   map[uint64]*RunningQuery
	slow     []SlowQuery
	slowNext int
	slowSeen uint64
}

// RunningQuery is one in-flight query returned by Begin; call End exactly
// once when evaluation finishes.
type RunningQuery struct {
	l     *QueryLog
	id    uint64
	kind  string
	query string
	start time.Time
	trace *QueryTrace
}

// Trace returns the query's trace (attach it to the evaluation context).
// Nil-safe.
func (q *RunningQuery) Trace() *QueryTrace {
	if q == nil {
		return nil
	}
	return q.trace
}

func (l *QueryLog) now() time.Time {
	if l.Now != nil {
		return l.Now()
	}
	return time.Now()
}

// Begin registers an in-flight query. Nil-safe: a nil log returns a nil
// RunningQuery whose methods no-op.
func (l *QueryLog) Begin(kind, query string) *RunningQuery {
	if l == nil {
		return nil
	}
	q := &RunningQuery{l: l, kind: kind, query: query, start: l.now(), trace: &QueryTrace{}}
	l.mu.Lock()
	l.nextID++
	q.id = l.nextID
	if l.active == nil {
		l.active = map[uint64]*RunningQuery{}
	}
	l.active[q.id] = q
	l.mu.Unlock()
	return q
}

// End completes the query, recording it in the slow ring when its total
// duration crossed the threshold. Nil-safe.
func (q *RunningQuery) End(err error) {
	if q == nil {
		return
	}
	l := q.l
	dur := l.now().Sub(q.start)
	l.mu.Lock()
	delete(l.active, q.id)
	if l.SlowThreshold > 0 && dur >= l.SlowThreshold {
		ringCap := l.SlowCapacity
		if ringCap <= 0 {
			ringCap = DefaultSlowCapacity
		}
		sq := SlowQuery{
			Kind:    q.kind,
			Query:   q.query,
			StartMs: q.start.UnixMilli(),
			Seconds: dur.Seconds(),
			Spans:   q.trace.Spans(),
		}
		if err != nil {
			sq.Error = err.Error()
		}
		if len(l.slow) < ringCap {
			l.slow = append(l.slow, sq)
			l.slowNext = len(l.slow) % ringCap
		} else {
			l.slow[l.slowNext] = sq
			l.slowNext = (l.slowNext + 1) % ringCap
		}
		l.slowSeen++
	}
	l.mu.Unlock()
}

// ActiveQuery is the JSON shape of one in-flight query.
type ActiveQuery struct {
	ID         uint64  `json:"id"`
	Kind       string  `json:"kind"`
	Query      string  `json:"query"`
	StartMs    int64   `json:"start_ms"`
	AgeSeconds float64 `json:"age_seconds"`
}

// SlowQuery is the JSON shape of one slow-ring entry.
type SlowQuery struct {
	Kind    string  `json:"kind"`
	Query   string  `json:"query"`
	StartMs int64   `json:"start_ms"`
	Seconds float64 `json:"seconds"`
	Error   string  `json:"error,omitempty"`
	Spans   []Span  `json:"spans,omitempty"`
}

// QueryLogStatus is the payload of /api/v1/status/queries.
type QueryLogStatus struct {
	Active []ActiveQuery `json:"active"`
	// Slow holds the retained slow queries, newest first.
	Slow                 []SlowQuery `json:"slow"`
	SlowThresholdSeconds float64     `json:"slow_threshold_s"`
	// SlowTotal counts every query that ever crossed the threshold,
	// including ones the ring has since evicted.
	SlowTotal uint64 `json:"slow_total"`
}

// Status snapshots the log. Nil-safe (returns an empty status).
func (l *QueryLog) Status() QueryLogStatus {
	st := QueryLogStatus{Active: []ActiveQuery{}, Slow: []SlowQuery{}}
	if l == nil {
		return st
	}
	now := l.now()
	l.mu.Lock()
	st.SlowThresholdSeconds = l.SlowThreshold.Seconds()
	st.SlowTotal = l.slowSeen
	for _, q := range l.active {
		st.Active = append(st.Active, ActiveQuery{
			ID:         q.id,
			Kind:       q.kind,
			Query:      q.query,
			StartMs:    q.start.UnixMilli(),
			AgeSeconds: now.Sub(q.start).Seconds(),
		})
	}
	// Newest first: walk the ring backwards from the last insert.
	n := len(l.slow)
	for i := 0; i < n; i++ {
		st.Slow = append(st.Slow, l.slow[((l.slowNext-1-i)%n+n)%n])
	}
	l.mu.Unlock()
	sort.Slice(st.Active, func(i, j int) bool { return st.Active[i].ID < st.Active[j].ID })
	return st
}
