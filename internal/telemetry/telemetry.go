// Package telemetry is the stack's self-instrumentation layer: a
// low-overhead metrics registry whose instruments (atomic counters, gauges
// and fixed-bucket histograms) render in our own expofmt exposition format,
// so every serving binary exposes a /metrics endpoint that its own scrape
// loop — or a peer's — can ingest. Self-scrape closes the loop: the head's
// append counters, the querycache hit rates and the PromQL stage latencies
// become ordinary PromQL series with full TSDB/WAL/querycache treatment.
//
// Instruments are built for hot paths: a Counter.Add is one atomic add, a
// Histogram.Observe is one atomic add plus a CAS float accumulate, and all
// read methods are lock-free snapshots. Registration takes a lock but
// happens once at wiring time; callers hold the returned instrument and
// never touch the registry again. Every method is nil-receiver safe so
// uninstrumented components pay a single predictable branch.
//
// Histograms expose Prometheus-style: cumulative `name_bucket{le="..."}`
// series plus `name_sum` and `name_count`. Convention: every metric name
// carries the `telemetry_` prefix so self-series are recognizable next to
// scraped workload metrics.
package telemetry

import (
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expofmt"
	"repro/internal/labels"
)

// Counter is a monotonically increasing uint64. The zero value is unusable;
// obtain one from Registry.Counter (or NewCounter for an unregistered one).
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a standalone counter not attached to any registry.
func NewCounter() *Counter { return &Counter{} }

// Add increments by n. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe (returns 0).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add accumulates d with a CAS loop. Nil-safe.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value. Nil-safe (returns 0).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Observations pick their bucket
// with a linear scan (bucket counts are small: latency histograms have
// ~10), bump one atomic bucket counter and CAS-accumulate the sum — no
// locks on the observe path.
type Histogram struct {
	bounds []float64       // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64 // len(bounds)+1
	sum    Gauge
}

// NewHistogram returns a standalone histogram over the given ascending
// upper bounds (an implicit +Inf bucket is appended).
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the seconds elapsed since start. Nil-safe.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Count returns the total number of observations. Nil-safe (returns 0).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values. Nil-safe (returns 0).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// snapshot returns the per-bucket counts (cumulative=false) in bound order
// plus the overflow bucket.
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// LatencyBuckets is the default latency bucket layout: 50µs to 10s, the
// span of a query evaluation or a scrape commit.
var LatencyBuckets = []float64{5e-5, 2e-4, 1e-3, 5e-3, 2.5e-2, 0.1, 0.5, 2.5, 10}

// IOBuckets is the finer layout for the WAL flush/fsync path: 1µs to 1s.
var IOBuckets = []float64{1e-6, 5e-6, 2.5e-5, 1e-4, 5e-4, 2.5e-3, 1e-2, 0.1, 1}

// ExpBuckets returns n ascending bounds starting at start, each factor
// apart — the generic layout for size-ish distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

type instKind int

const (
	kindCounter instKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

type instrument struct {
	kind instKind
	name string
	help string
	lset labels.Labels

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// Registry holds named instruments and renders them as expofmt families.
// Registration methods dedupe on (name, labels): asking for an existing
// counter returns the same counter, so independent components can share an
// instrument without coordination. Func instruments (CounterFunc/GaugeFunc)
// replace any previous func under the same key — a rebuilt component
// re-registers its closures over fresh state.
type Registry struct {
	mu    sync.Mutex
	order []*instrument
	byKey map[string]*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*instrument{}}
}

func instKey(name string, lset labels.Labels) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range lset {
		b.WriteByte('\xff')
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func pairsToLabels(name string, labelPairs []string) labels.Labels {
	if len(labelPairs)%2 != 0 {
		panic("telemetry: odd label pair count for " + name)
	}
	if len(labelPairs) == 0 {
		return nil
	}
	ls := labels.FromStrings(labelPairs...)
	for _, l := range ls {
		if !validLabelName(l.Name) {
			panic("telemetry: invalid label name " + l.Name + " on " + name)
		}
	}
	return ls
}

// lookup finds or creates the instrument for (name, labels); make builds a
// fresh one on miss. Kind mismatches on the same key are programmer errors.
func (r *Registry) lookup(kind instKind, name, help string, labelPairs []string, make func(*instrument)) *instrument {
	if !validMetricName(name) {
		panic("telemetry: invalid metric name " + name)
	}
	lset := pairsToLabels(name, labelPairs)
	key := instKey(name, lset)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byKey[key]; ok {
		if in.kind != kind {
			panic("telemetry: " + name + " re-registered with a different kind")
		}
		return in
	}
	in := &instrument{kind: kind, name: name, help: help, lset: lset}
	make(in)
	r.byKey[key] = in
	r.order = append(r.order, in)
	return in
}

// Counter returns the counter registered under name and the given label
// pairs, creating it on first use.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	return r.lookup(kindCounter, name, help, labelPairs, func(in *instrument) {
		in.counter = &Counter{}
	}).counter
}

// Gauge returns the gauge registered under name and the given label pairs,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	return r.lookup(kindGauge, name, help, labelPairs, func(in *instrument) {
		in.gauge = &Gauge{}
	}).gauge
}

// Histogram returns the histogram registered under name and the given label
// pairs, creating it with the supplied bucket bounds on first use (bounds
// are ignored when the histogram already exists).
func (r *Registry) Histogram(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	return r.lookup(kindHistogram, name, help, labelPairs, func(in *instrument) {
		in.hist = NewHistogram(bounds)
	}).hist
}

// CounterFunc registers a counter whose value is read from fn at gather
// time — the bridge for components that already maintain their own atomic
// counters (one source of truth, two views that cannot disagree).
// Re-registering under the same key replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	in := r.lookup(kindCounterFunc, name, help, labelPairs, func(in *instrument) {})
	r.mu.Lock()
	in.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge whose value is read from fn at gather time.
// Re-registering under the same key replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	in := r.lookup(kindGaugeFunc, name, help, labelPairs, func(in *instrument) {})
	r.mu.Lock()
	in.fn = fn
	r.mu.Unlock()
}

// Gather snapshots every instrument as expofmt families in first-
// registration order. Histograms expand to three families: name_bucket
// (cumulative, with le labels), name_sum and name_count.
func (r *Registry) Gather() []*expofmt.Family {
	r.mu.Lock()
	insts := make([]*instrument, len(r.order))
	copy(insts, r.order)
	fns := make([]func() float64, len(insts))
	for i, in := range insts {
		fns[i] = in.fn
	}
	r.mu.Unlock()

	fams := map[string]*expofmt.Family{}
	var names []string
	fam := func(name, help string, typ expofmt.MetricType) *expofmt.Family {
		f, ok := fams[name]
		if !ok {
			f = &expofmt.Family{Name: name, Help: help, Type: typ}
			fams[name] = f
			names = append(names, name)
		}
		return f
	}
	for i, in := range insts {
		switch in.kind {
		case kindCounter:
			f := fam(in.name, in.help, expofmt.TypeCounter)
			f.Metrics = append(f.Metrics, expofmt.Metric{Labels: in.lset, Value: float64(in.counter.Value())})
		case kindGauge:
			f := fam(in.name, in.help, expofmt.TypeGauge)
			f.Metrics = append(f.Metrics, expofmt.Metric{Labels: in.lset, Value: in.gauge.Value()})
		case kindCounterFunc:
			f := fam(in.name, in.help, expofmt.TypeCounter)
			f.Metrics = append(f.Metrics, expofmt.Metric{Labels: in.lset, Value: callFn(fns[i])})
		case kindGaugeFunc:
			f := fam(in.name, in.help, expofmt.TypeGauge)
			f.Metrics = append(f.Metrics, expofmt.Metric{Labels: in.lset, Value: callFn(fns[i])})
		case kindHistogram:
			counts := in.hist.snapshot()
			bf := fam(in.name+"_bucket", in.help, expofmt.TypeCounter)
			cum := uint64(0)
			for bi, c := range counts {
				cum += c
				le := "+Inf"
				if bi < len(in.hist.bounds) {
					le = strconv.FormatFloat(in.hist.bounds[bi], 'g', -1, 64)
				}
				bf.Metrics = append(bf.Metrics, expofmt.Metric{
					Labels: withLabel(in.lset, "le", le),
					Value:  float64(cum),
				})
			}
			sf := fam(in.name+"_sum", in.help, expofmt.TypeCounter)
			sf.Metrics = append(sf.Metrics, expofmt.Metric{Labels: in.lset, Value: in.hist.Sum()})
			cf := fam(in.name+"_count", in.help, expofmt.TypeCounter)
			cf.Metrics = append(cf.Metrics, expofmt.Metric{Labels: in.lset, Value: float64(cum)})
		}
	}
	out := make([]*expofmt.Family, 0, len(names))
	for _, n := range names {
		out = append(out, fams[n])
	}
	return out
}

func callFn(fn func() float64) float64 {
	if fn == nil {
		return 0
	}
	return fn()
}

func withLabel(lset labels.Labels, name, value string) labels.Labels {
	out := make(labels.Labels, 0, len(lset)+1)
	out = append(out, lset...)
	out = append(out, labels.Label{Name: name, Value: value})
	return out
}

// WriteText renders the registry in exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	enc := expofmt.NewWriter(w)
	for _, f := range r.Gather() {
		if err := enc.WriteFamily(f); err != nil {
			return err
		}
	}
	return enc.Flush()
}

// Render returns the exposition payload as a string, for in-process
// scraping.
func (r *Registry) Render() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// ServeHTTP serves the registry at /metrics (exposition format 0.0.4). The
// caller's mux decides the path; the handler answers whatever it is given.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	r.WriteText(w)
}

// RegisterProcess adds Go runtime gauges (goroutines, heap, GC cycles) to
// the registry — the baseline every serving binary wants on /metrics.
func RegisterProcess(r *Registry) {
	r.GaugeFunc("telemetry_process_goroutines",
		"Live goroutine count.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("telemetry_process_heap_inuse_bytes",
		"Heap bytes in use (runtime.MemStats.HeapInuse).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
	r.CounterFunc("telemetry_process_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
}

func validMetricName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func validLabelName(s string) bool {
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}
