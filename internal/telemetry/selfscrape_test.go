// The self-scrape loop, end to end: a prometheus_sim-shaped harness (TSDB +
// scrape manager + PromQL engine + promapi handler, all instrumented into
// one registry) scrapes its own /metrics endpoint, so the telemetry_ series
// become ordinary TSDB series — then PromQL range queries over the scraped
// data prove the loop closed: the append counter is monotone and the
// querycache hit counter lands after a cache hit.
package telemetry_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/promapi"
	"repro/internal/promql"
	"repro/internal/querycache"
	"repro/internal/scrape"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// selfHarness wires the binary-shaped stack around one registry.
type selfHarness struct {
	reg *telemetry.Registry
	db  *tsdb.DB
	sm  *scrape.Manager
	srv *httptest.Server
	// clock is the simulated scrape time, stepped between passes.
	clock time.Time
}

func newSelfHarness(t *testing.T) *selfHarness {
	t.Helper()
	reg := telemetry.NewRegistry()
	telemetry.RegisterProcess(reg)

	opts := tsdb.DefaultOptions()
	opts.Shards = 2
	opts.Telemetry = reg
	db, err := tsdb.Open(opts)
	if err != nil {
		t.Fatalf("tsdb: %v", err)
	}

	eng := promql.NewEngine()
	eng.InstrumentTelemetry(reg)
	h := &promapi.Handler{
		Engine:  eng,
		Query:   db,
		Metrics: reg,
		Queries: &telemetry.QueryLog{SlowThreshold: time.Nanosecond},
		Cache: querycache.New(querycache.Options{
			MaxBytes:  1 << 20,
			Head:      db,
			Lookback:  eng.LookbackDelta,
			MaxSteps:  eng.MaxSteps,
			Telemetry: reg,
			Name:      "promapi",
		}),
	}
	srv := httptest.NewServer(h.Mux())
	t.Cleanup(srv.Close)

	// Scrape windows must be settled history so cached range responses
	// don't fall under the freshness TTL.
	hs := &selfHarness{
		reg: reg, db: db, srv: srv,
		clock: time.Now().Add(-time.Hour).Truncate(time.Second),
	}
	hs.sm = &scrape.Manager{
		Dest:     db,
		Fetcher:  &scrape.HTTPFetcher{Client: srv.Client()},
		NewBatch: func() scrape.Batch { return db.Appender() },
		Now:      func() time.Time { return hs.clock },
		Groups: []*scrape.TargetGroup{{
			JobName:  "self",
			Targets:  []string{srv.URL + "/metrics"},
			Labels:   map[string]string{"cluster": "selftest"},
			Interval: 15 * time.Second,
		}},
		OnError: func(target string, err error) { t.Errorf("scrape %s: %v", target, err) },
	}
	hs.sm.InstrumentTelemetry(reg)
	return hs
}

// scrapePass scrapes our own /metrics once at the current simulated time,
// then advances the clock one interval.
func (hs *selfHarness) scrapePass(t *testing.T) {
	t.Helper()
	g := hs.sm.Groups[0]
	hs.sm.ScrapeTarget(t.Context(), g, g.Targets[0])
	hs.clock = hs.clock.Add(g.Interval)
}

// rangeQuery runs a PromQL range query through the real HTTP API and
// returns the decoded matrix plus the response headers.
func (hs *selfHarness) rangeQuery(t *testing.T, query string, start, end time.Time, step time.Duration, hdr map[string]string) ([]matrixSeries, http.Header) {
	t.Helper()
	q := url.Values{}
	q.Set("query", query)
	q.Set("start", strconv.FormatInt(start.Unix(), 10))
	q.Set("end", strconv.FormatInt(end.Unix(), 10))
	q.Set("step", fmt.Sprintf("%g", step.Seconds()))
	u := hs.srv.URL + "/api/v1/query_range?" + q.Encode()
	req, err := http.NewRequestWithContext(t.Context(), http.MethodGet, u, nil)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := hs.srv.Client().Do(req)
	if err != nil {
		t.Fatalf("query_range: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query_range %q: status %d", query, resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
		Data   struct {
			Result []matrixSeries `json:"result"`
		} `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.Status != "success" {
		t.Fatalf("query_range %q: status %q", query, body.Status)
	}
	return body.Data.Result, resp.Header
}

type matrixSeries struct {
	Metric map[string]string `json:"metric"`
	Values [][2]any          `json:"values"`
}

func (s matrixSeries) floatValues(t *testing.T) []float64 {
	t.Helper()
	out := make([]float64, len(s.Values))
	for i, v := range s.Values {
		str, ok := v[1].(string)
		if !ok {
			t.Fatalf("sample value %v is not a string", v[1])
		}
		f, err := strconv.ParseFloat(str, 64)
		if err != nil {
			t.Fatalf("sample value %q: %v", str, err)
		}
		out[i] = f
	}
	return out
}

func TestSelfScrapeRoundTrip(t *testing.T) {
	hs := newSelfHarness(t)
	windowStart := hs.clock

	// Three passes: each scrape ingests the previous pass's commit effects,
	// so the appended-samples counter the TSDB reports grows between them.
	for i := 0; i < 3; i++ {
		hs.scrapePass(t)
	}

	// The scraped self-series answer PromQL like any workload metric.
	end := hs.clock.Add(-15 * time.Second) // last scrape timestamp
	res, hdr := hs.rangeQuery(t, "telemetry_tsdb_appended_samples_total",
		windowStart, end, 15*time.Second,
		map[string]string{promapi.TraceHeader: "1"})
	if len(res) != 1 {
		t.Fatalf("appended_samples series = %d, want 1 (result %+v)", len(res), res)
	}
	if got := res[0].Metric["job"]; got != "self" {
		t.Fatalf("job label = %q, want self", got)
	}
	vals := res[0].floatValues(t)
	if len(vals) < 3 {
		t.Fatalf("got %d points across 3 scrapes, want 3", len(vals))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Fatalf("append counter not monotone: %v", vals)
		}
	}
	if vals[len(vals)-1] <= vals[0] {
		t.Fatalf("append counter did not grow across scrapes: %v", vals)
	}

	// The uncached evaluation reported per-stage timings on the opt-in
	// trace header.
	trace := hdr.Get(promapi.TraceHeader)
	if !strings.Contains(trace, "parse=") || !strings.Contains(trace, "eval=") {
		t.Fatalf("trace header = %q, want parse= and eval= stages", trace)
	}
	if hdr.Get("X-Querycache") != "miss" {
		t.Fatalf("first query outcome = %q, want miss", hdr.Get("X-Querycache"))
	}

	// An exact repeat hits the cache; the hit lands in the telemetry
	// registry, and the next self-scrape turns it into a TSDB series.
	_, hdr = hs.rangeQuery(t, "telemetry_tsdb_appended_samples_total",
		windowStart, end, 15*time.Second, nil)
	if hdr.Get("X-Querycache") != "hit" {
		t.Fatalf("repeat query outcome = %q, want hit", hdr.Get("X-Querycache"))
	}
	hs.scrapePass(t)
	res, _ = hs.rangeQuery(t, `telemetry_querycache_hits_total{cache="promapi"}`,
		windowStart, hs.clock.Add(-15*time.Second), 15*time.Second, nil)
	if len(res) != 1 {
		t.Fatalf("querycache hits series = %d, want 1", len(res))
	}
	hitVals := res[0].floatValues(t)
	if last := hitVals[len(hitVals)-1]; last < 1 {
		t.Fatalf("scraped querycache hit counter = %v, want >= 1", last)
	}

	// Hit-rate expression over the scraped series evaluates too.
	res, _ = hs.rangeQuery(t,
		`telemetry_querycache_hits_total{cache="promapi"} / (telemetry_querycache_hits_total{cache="promapi"} + telemetry_querycache_misses_total{cache="promapi"})`,
		windowStart, hs.clock.Add(-15*time.Second), 15*time.Second, nil)
	if len(res) != 1 {
		t.Fatalf("hit-rate series = %d, want 1", len(res))
	}
	rates := res[0].floatValues(t)
	if last := rates[len(rates)-1]; last <= 0 || last > 1 {
		t.Fatalf("hit rate = %v, want in (0, 1]", last)
	}

	// Every query above crossed the 1ns slow threshold: the slow-query log
	// retains them with their per-stage spans.
	resp, err := hs.srv.Client().Get(hs.srv.URL + "/api/v1/status/queries")
	if err != nil {
		t.Fatalf("status/queries: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		Data struct {
			Result struct {
				Enabled bool                      `json:"enabled"`
				Log     *telemetry.QueryLogStatus `json:"log"`
			} `json:"result"`
		} `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status/queries: %v", err)
	}
	out := st.Data.Result
	if !out.Enabled || out.Log == nil {
		t.Fatalf("query log disabled in status: %+v", out)
	}
	if out.Log.SlowTotal < 4 {
		t.Fatalf("slow_total = %d, want >= 4", out.Log.SlowTotal)
	}
	var spanned bool
	for _, sq := range out.Log.Slow {
		if len(sq.Spans) > 0 {
			spanned = true
		}
	}
	if !spanned {
		t.Fatal("no slow-query entry carries per-stage spans")
	}

	// And the /metrics payload itself stays parseable by our own scrape
	// machinery — the property the whole loop rests on.
	mresp, err := hs.srv.Client().Get(hs.srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
}
