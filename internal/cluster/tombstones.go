// Quorum delete tombstones: the delete path's equivalent of the W-quorum
// write. DeleteSeries used to fan out to whichever members happened to be
// reachable and hope — a member that was down or partitioned during the
// delete would resurrect the series into the ring through handoff. Now
// every delete allocates a monotonic sequence number and applies a durable
// matcher-level tombstone (tsdb.ApplyTombstone — journalled to every shard
// WAL of every member) on as many members as it can reach:
//
//   - >= W members acked --> the delete is acked, exactly like a write.
//   - a member that missed the tombstone is marked tombstone-stale: it
//     refuses reads (ErrNodeStale) until the tombstone reaches it, because
//     a read served from it could resurrect the deleted series into a
//     merged answer. The tombstone travels via the hint queue (hints.go),
//     the handoff tombstone union (handoff.go), or the startup
//     anti-entropy below — whichever runs first.
//
// The resurrection invariant the chaos harness enforces: once a delete is
// acked at W, no single-member kill / partition / rejoin sequence can bring
// the deleted series back into a quorum read.
package cluster

import (
	"sort"

	"repro/internal/labels"
	"repro/internal/tsdb"
	"repro/internal/workpool"
)

// ApplyTombstone applies one matcher-level delete to the member, honoring
// fault injection. A nil error means the tombstone is journalled on the
// member's WAL (same durability contract as BatchAppend).
func (m *Member) ApplyTombstone(seq uint64, ms ...*labels.Matcher) (int, error) {
	db, err := m.reachable()
	if err != nil {
		return 0, err
	}
	if m.diskFull.Load() {
		return 0, ErrDiskFull
	}
	return db.ApplyTombstone(seq, ms...)
}

// MemberOutcome reports how one member fared in a cluster-wide maintenance
// fan-out (delete, truncate). Err is nil when the operation applied; a
// non-nil Err names why the member was skipped (ErrNodeDown,
// ErrNodePartitioned, ErrDiskFull, ...).
type MemberOutcome struct {
	Member string
	Count  int
	Err    error
}

// DeleteOutcome is the full result of one quorum delete.
type DeleteOutcome struct {
	// Seq is the tombstone sequence number the delete was assigned.
	Seq uint64
	// Deleted is the largest per-member deletion count among the ackers
	// (replicas overlap, so a sum would overcount).
	Deleted int
	// Acks is how many members durably applied the tombstone.
	Acks int
	// Members holds the per-member outcome, sorted by member name.
	Members []MemberOutcome
}

// DeleteSeriesQuorum deletes every series matching ms cluster-wide with
// write-style quorum semantics: a tombstone with a fresh sequence number
// fans out to EVERY member, and the delete is acked once W members applied
// it durably. Members that missed it get the tombstone queued as a hint and
// are excluded from reads (ErrNodeStale) until it reaches them, so an acked
// delete can never be resurrected into a merged answer. Returns the
// per-member outcome; the error is a *QuorumWriteError when fewer than W
// members acked (the tombstone stays applied wherever it landed — a
// partial delete, like a partial write, is visible until retried).
func (r *RingDB) DeleteSeriesQuorum(ms ...*labels.Matcher) (DeleteOutcome, error) {
	// Serialize deletes: seq allocation and hint queueing stay ordered, and
	// deletes are rare enough that coordinator-side serialization is free.
	r.deleteMu.Lock()
	defer r.deleteMu.Unlock()
	r.deleteSeq++
	seq := r.deleteSeq

	_, members := r.snapshot()
	names := sortedNames(members)
	out := DeleteOutcome{Seq: seq, Members: make([]MemberOutcome, len(names))}
	workpool.Do(len(names), 0, func(i int) {
		m := members[names[i]]
		n, err := m.ApplyTombstone(seq, ms...)
		out.Members[i] = MemberOutcome{Member: names[i], Count: n, Err: err}
	})

	for _, mo := range out.Members {
		if mo.Err == nil {
			out.Acks++
			if mo.Count > out.Deleted {
				out.Deleted = mo.Count
			}
			continue
		}
		// The member missed the delete: queue the tombstone as a hint and
		// gate its reads until it catches up.
		m := members[mo.Member]
		m.tombStale.Store(true)
		r.queueTombstoneHint(mo.Member, seq, ms)
	}
	r.topoGen.Add(1)
	if out.Acks < r.W {
		return out, &QuorumWriteError{Group: names, Need: r.W, Got: out.Acks}
	}
	return out, nil
}

// DeleteSeries implements api.SeriesDeleter over the quorum delete path,
// returning the acked deletion count. Callers that need the per-member
// outcome or the quorum verdict use DeleteSeriesQuorum directly.
func (r *RingDB) DeleteSeries(ms ...*labels.Matcher) int {
	out, _ := r.DeleteSeriesQuorum(ms...)
	return out.Deleted
}

// syncTombstones is the startup/handoff anti-entropy pass: union the
// tombstone logs of the source DBs and apply every entry the target is
// missing, in sequence order. tsdb.ApplyTombstone dedups by seq, so
// re-applying is free; applying a tombstone the coordinator never acked is
// benign (a partial delete is the documented partial-write caveat, and
// convergence beats resurrection). Returns how many tombstones were newly
// applied to the target.
func syncTombstones(target *tsdb.DB, sources ...*tsdb.DB) (int, error) {
	union := make(map[uint64][]*labels.Matcher)
	for _, src := range sources {
		if src == nil {
			continue
		}
		for _, tr := range src.Tombstones() {
			union[tr.Seq] = tr.Matchers
		}
	}
	seqs := make([]uint64, 0, len(union))
	for seq := range union {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	applied := 0
	have := make(map[uint64]struct{})
	for _, tr := range target.Tombstones() {
		have[tr.Seq] = struct{}{}
	}
	for _, seq := range seqs {
		if _, ok := have[seq]; ok {
			continue
		}
		if _, err := target.ApplyTombstone(seq, union[seq]...); err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}
