package cluster

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
)

// TestHandoffPartitionedSourceSkipped: a partitioned peer silently drops
// out of the source set — the sync still completes from the remaining
// complete replica and the target rejoins reads.
func TestHandoffPartitionedSourceSkipped(t *testing.T) {
	e := newChaosEnv(t, 3, 3, 2, 40)
	e.ring.SetHintLimit(0) // recovery must come from the peer pull
	e.run(0, 10)
	if err := e.ring.Kill("node-1"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	e.run(10, 15)
	if _, err := e.ring.Revive("node-1"); err != nil {
		t.Fatalf("revive: %v", err)
	}
	e.ring.Partition("node-2")

	sync, err := e.ring.SyncNode("node-1")
	if err != nil {
		t.Fatalf("sync with one partitioned source: %v", err)
	}
	if sync.Peers != 1 {
		t.Fatalf("sync used %d peers, want 1 (node-2 is partitioned)", sync.Peers)
	}
	if want := 40 * 5; sync.SamplesApplied != want {
		t.Fatalf("sync applied %d samples, want %d", sync.SamplesApplied, want)
	}
	if _, err := e.ring.Member("node-1").SelectWithHints(model.SelectHints{}, matchAll()); err != nil {
		t.Fatalf("synced member read err = %v, want nil", err)
	}
}

// TestHandoffAllSourcesUnavailable: when every potential source is down or
// partitioned, SyncNode must FAIL rather than silently clear the warming
// gate on a member whose holes nothing could have filled.
func TestHandoffAllSourcesUnavailable(t *testing.T) {
	e := newChaosEnv(t, 3, 3, 2, 40)
	e.ring.SetHintLimit(0)
	e.run(0, 10)
	if err := e.ring.Kill("node-1"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	e.run(10, 15)
	if _, err := e.ring.Revive("node-1"); err != nil {
		t.Fatalf("revive: %v", err)
	}
	if err := e.ring.Kill("node-0"); err != nil {
		t.Fatalf("kill node-0: %v", err)
	}
	e.ring.Partition("node-2")

	_, err := e.ring.SyncNode("node-1")
	if err == nil || !strings.Contains(err.Error(), "no usable sources") {
		t.Fatalf("sync with no sources err = %v, want 'no usable sources'", err)
	}
	// The gate held: the unproven member still refuses reads.
	if _, err := e.ring.Member("node-1").SelectWithHints(model.SelectHints{}); !errors.Is(err, ErrNodeWarming) {
		t.Fatalf("unsynced member read err = %v, want ErrNodeWarming", err)
	}

	// Heal the partition and the same sync succeeds.
	e.ring.Heal()
	if _, err := e.ring.SyncNode("node-1"); err != nil {
		t.Fatalf("sync after heal: %v", err)
	}
	e.assertCoversOracle()
}

// TestHandoffWarmingExcluded: a warming member neither serves reads nor
// acts as a handoff source for another member's sync — its history may
// still have holes, and holes must not propagate.
func TestHandoffWarmingExcluded(t *testing.T) {
	e := newChaosEnv(t, 3, 3, 2, 40)
	e.ring.SetHintLimit(0)
	e.run(0, 10)
	if err := e.ring.Kill("node-1"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	e.run(10, 15)
	if _, err := e.ring.Revive("node-1"); err != nil {
		t.Fatalf("revive: %v", err)
	}

	// Excluded from reads: the member errors, the quorum read still answers
	// byte-exactly over the two complete replicas.
	if _, err := e.ring.Member("node-1").SelectWithHints(model.SelectHints{}); !errors.Is(err, ErrNodeWarming) {
		t.Fatalf("warming member read err = %v, want ErrNodeWarming", err)
	}
	e.assertByteExact()

	// Excluded as a source: a second member syncing now must lean on the
	// one complete replica only.
	if err := e.ring.Kill("node-2"); err != nil {
		t.Fatalf("kill node-2: %v", err)
	}
	if _, err := e.ring.Revive("node-2"); err != nil {
		t.Fatalf("revive node-2: %v", err)
	}
	sync, err := e.ring.SyncNode("node-2")
	if err != nil {
		t.Fatalf("sync node-2: %v", err)
	}
	if sync.Peers != 1 {
		t.Fatalf("sync used %d peers, want 1 (node-1 is warming)", sync.Peers)
	}
}
