package cluster

import (
	"repro/internal/telemetry"
)

// ringMetrics is the coordinator's hot-path instrumentation; nil disables
// it (the quorum commit pays one branch).
type ringMetrics struct {
	quorumCommitSeconds *telemetry.Histogram
}

// InstrumentTelemetry registers the ring's instruments on reg. The hint and
// read-repair series are gather-time bridges over the same atomics
// HintStats and RepairStatsSnapshot read — one source of truth for JSON and
// /metrics — while the quorum commit latency is a histogram observed on
// every RingAppender.Commit. Call once at wiring time.
func (r *RingDB) InstrumentTelemetry(reg *telemetry.Registry) {
	r.metrics = &ringMetrics{
		quorumCommitSeconds: reg.Histogram("telemetry_cluster_quorum_commit_seconds",
			"Quorum write fan-out latency for one batch commit (all owner groups).",
			telemetry.LatencyBuckets),
	}
	reg.CounterFunc("telemetry_cluster_hint_samples_queued_total",
		"Sample hints ever buffered for unreachable owners.",
		func() float64 { return float64(r.hintSamplesQueued.Load()) })
	reg.CounterFunc("telemetry_cluster_hint_tombstones_queued_total",
		"Tombstone hints ever buffered for unreachable owners.",
		func() float64 { return float64(r.hintTombsQueued.Load()) })
	reg.CounterFunc("telemetry_cluster_hint_samples_dropped_total",
		"Sample hints evicted by the per-target queue bound.",
		func() float64 { return float64(r.hintSamplesDropped.Load()) })
	reg.CounterFunc("telemetry_cluster_hint_samples_drained_total",
		"Sample hints handed back to revived or healed members.",
		func() float64 { return float64(r.hintSamplesDrained.Load()) })
	reg.CounterFunc("telemetry_cluster_hint_tombstones_drained_total",
		"Tombstone hints handed back to revived or healed members.",
		func() float64 { return float64(r.hintTombsDrained.Load()) })
	reg.GaugeFunc("telemetry_cluster_hint_pending",
		"Sample hints currently buffered across all targets.",
		func() float64 { return float64(r.HintStats().Pending) })
	reg.CounterFunc("telemetry_cluster_repair_series_total",
		"Series back-filled into stale replicas by read repair.",
		func() float64 { return float64(r.scatter.RepairStatsSnapshot().SeriesRepaired) })
	reg.CounterFunc("telemetry_cluster_repair_samples_total",
		"Samples back-filled by read repair.",
		func() float64 { return float64(r.scatter.RepairStatsSnapshot().SamplesRepaired) })
	reg.CounterFunc("telemetry_cluster_repair_dropped_total",
		"Read repairs discarded by the bounded queue.",
		func() float64 { return float64(r.scatter.RepairStatsSnapshot().Dropped) })
	reg.CounterFunc("telemetry_cluster_repair_errors_total",
		"Read-repair back-fills the target replica rejected.",
		func() float64 { return float64(r.scatter.RepairStatsSnapshot().Errors) })
	reg.GaugeFunc("telemetry_cluster_members",
		"Members in the ring (regardless of health).",
		func() float64 { return float64(len(r.MemberNames())) })
}
