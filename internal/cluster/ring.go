package cluster

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the vnode count per member: high enough that one
// membership change moves close to the theoretical 1/(N+1) share of the
// keyspace, low enough that Owners stays a handful of binary searches.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring with virtual nodes, keyed by the same
// FNV-1a hash the TSDB head stripes series with: a series' labels hash is
// looked up on the ring and the first R distinct members clockwise own its
// replicas. Rings are immutable — WithNode/WithoutNode return a new ring —
// so readers never lock, and construction is fully deterministic: tokens
// derive only from member names and vnode indexes (no map iteration, no
// process-local state), so every process that knows the member set places
// every series identically.
type Ring struct {
	vnodes int
	nodes  []string // sorted member names
	tokens []ringToken
}

// ringToken is one vnode position: a point on the uint64 ring owned by a
// member.
type ringToken struct {
	token uint64
	node  string
}

// NewRing builds a ring over the given members. vnodes <= 0 picks
// DefaultVirtualNodes. Duplicate names collapse; order does not matter.
func NewRing(vnodes int, members ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	var nodes []string
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			nodes = append(nodes, m)
		}
	}
	sort.Strings(nodes)
	r := &Ring{vnodes: vnodes, nodes: nodes}
	r.tokens = make([]ringToken, 0, len(nodes)*vnodes)
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			r.tokens = append(r.tokens, ringToken{token: vnodeToken(n, i), node: n})
		}
	}
	// Sort by (token, node): the node tiebreak keeps placement deterministic
	// even in the astronomically unlikely event of a token collision.
	sort.Slice(r.tokens, func(i, j int) bool {
		a, b := r.tokens[i], r.tokens[j]
		if a.token != b.token {
			return a.token < b.token
		}
		return a.node < b.node
	})
	return r
}

// vnodeToken hashes "name\x00index" with FNV-1a — the same function the
// TSDB head and querycache stripe by.
func vnodeToken(node string, idx int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= 1099511628211
	}
	h ^= 0
	h *= 1099511628211
	for shift := 0; shift < 32; shift += 8 {
		h ^= uint64(idx>>shift) & 0xff
		h *= 1099511628211
	}
	return h
}

// WithNode returns a new ring with the member added (no-op copy if already
// present).
func (r *Ring) WithNode(name string) *Ring {
	return NewRing(r.vnodes, append(append([]string{}, r.nodes...), name)...)
}

// WithoutNode returns a new ring with the member removed.
func (r *Ring) WithoutNode(name string) *Ring {
	var keep []string
	for _, n := range r.nodes {
		if n != name {
			keep = append(keep, n)
		}
	}
	return NewRing(r.vnodes, keep...)
}

// Nodes returns the sorted member names.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owners returns the rf distinct members owning the key hash: the owners
// of the first rf distinct vnodes at or clockwise after the hash. rf is
// clamped to the member count. The returned slice is freshly allocated, in
// ring-walk order (the first element is the primary).
func (r *Ring) Owners(hash uint64, rf int) []string {
	if len(r.tokens) == 0 || rf <= 0 {
		return nil
	}
	if rf > len(r.nodes) {
		rf = len(r.nodes)
	}
	i := sort.Search(len(r.tokens), func(j int) bool { return r.tokens[j].token >= hash })
	owners := make([]string, 0, rf)
	for n := 0; n < len(r.tokens) && len(owners) < rf; n++ {
		cand := r.tokens[(i+n)%len(r.tokens)].node
		dup := false
		for _, o := range owners {
			if o == cand {
				dup = true
				break
			}
		}
		if !dup {
			owners = append(owners, cand)
		}
	}
	return owners
}

// OwnerGroups returns every distinct owner set the ring produces at
// replication factor rf, each sorted internally, the list sorted by its
// joined key. A quorum reader uses this to verify that every keyspace
// region has enough live replicas before trusting a merged answer.
func (r *Ring) OwnerGroups(rf int) [][]string {
	if len(r.tokens) == 0 {
		return nil
	}
	seen := map[string][]string{}
	var keys []string
	for i := range r.tokens {
		owners := r.Owners(r.tokens[i].token, rf)
		sorted := append([]string(nil), owners...)
		sort.Strings(sorted)
		key := fmt.Sprint(sorted)
		if _, ok := seen[key]; !ok {
			seen[key] = sorted
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}
