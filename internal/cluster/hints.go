// Hinted handoff: when a write (or delete) replica is dead, partitioned or
// out of disk at commit time, the coordinator buffers that replica's share
// of the batch in a bounded per-target hint queue instead of relying on a
// full peer-window sync at rejoin. The queue is drained back into the
// member — through its normal BatchAppend / ApplyTombstone seam, so drained
// hints land in the member's own WAL with full durability — on Revive, on
// Heal, and at the start of SyncNode.
//
// The bound: each target queue holds at most hintLimit samples. Overflow
// drops the OLDEST hints and counts them. A queue that dropped anything is
// "lossy": its surviving samples are discarded at drain time — applying
// only the newest would raise the append-only head's watermark past the
// dropped window and block the back-fill — and it cannot clear the
// member's warming or tombstone-stale gates; only a full SyncNode can,
// because only it re-pulls the window in order and proves the holes are
// filled. Tombstone hints share the bound; losing one is why
// the tombstone-stale gate exists at all, so a lossy queue keeps the member
// out of read coverage until SyncNode runs its tombstone union.
//
// Sample-hint loss is read-safe by the quorum argument (W ackers hold the
// data; the lossy member simply stays stale until synced). Tombstone-hint
// loss is read-UNSAFE if ignored — a stale member could resurrect deleted
// series into a merge — which is why ErrNodeStale gates reads instead.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/labels"
	"repro/internal/tsdb"
)

// DefaultHintLimit is the per-target sample bound of the hint queue. At the
// chaos harness's scrape shape (tens of series, 15s cadence) it covers well
// over an hour of downtime before the queue turns lossy.
const DefaultHintLimit = 4096

// tombHint is one buffered tombstone apply.
type tombHint struct {
	seq uint64
	ms  []*labels.Matcher
}

// hintQueue buffers one target's missed writes and deletes.
type hintQueue struct {
	mu      sync.Mutex
	samples []tsdb.BatchSample
	tombs   []tombHint
	// lossy is set when anything was dropped to the bound and cleared only
	// by a completed SyncNode — a lossy drain proves nothing about holes.
	lossy bool
}

// HintStats summarizes the coordinator's hint activity.
type HintStats struct {
	// SamplesQueued / TombstonesQueued count hints ever buffered.
	SamplesQueued    uint64
	TombstonesQueued uint64
	// SamplesDropped counts hints evicted by the per-target bound.
	SamplesDropped uint64
	// SamplesDrained / TombstonesDrained count hints handed back to revived
	// or healed members (before out-of-order dedup on the member).
	SamplesDrained    uint64
	TombstonesDrained uint64
	// Pending is the sample total currently buffered across targets.
	Pending int
}

// HintDrainStats describes one queue drain.
type HintDrainStats struct {
	// SamplesOffered / SamplesApplied: hints handed to the member and how
	// many actually landed (the rest were already present — out-of-order
	// duplicates, exactly like handoff).
	SamplesOffered int
	SamplesApplied int
	// Tombstones is how many buffered tombstones were applied.
	Tombstones int
	// Lossless is true when the queue never overflowed since the last full
	// sync: the drain provably covered everything the coordinator failed to
	// deliver, so the member's warming/stale gates were cleared.
	Lossless bool
}

// SetHintLimit bounds every per-target hint queue to n samples; n <= 0
// disables hinting entirely (every missed write is dropped and counted,
// recovery falls back to full SyncNode). Affects future queueing only.
func (r *RingDB) SetHintLimit(n int) { r.hintLimit.Store(int64(n)) }

// HintStats reports coordinator-side hint counters.
func (r *RingDB) HintStats() HintStats {
	st := HintStats{
		SamplesQueued:     r.hintSamplesQueued.Load(),
		TombstonesQueued:  r.hintTombsQueued.Load(),
		SamplesDropped:    r.hintSamplesDropped.Load(),
		SamplesDrained:    r.hintSamplesDrained.Load(),
		TombstonesDrained: r.hintTombsDrained.Load(),
	}
	r.hintMu.Lock()
	for _, q := range r.hints {
		q.mu.Lock()
		st.Pending += len(q.samples)
		q.mu.Unlock()
	}
	r.hintMu.Unlock()
	return st
}

// hintQueueFor returns (creating if needed) the named member's hint queue.
func (r *RingDB) hintQueueFor(name string) *hintQueue {
	r.hintMu.Lock()
	defer r.hintMu.Unlock()
	if r.hints == nil {
		r.hints = make(map[string]*hintQueue)
	}
	q := r.hints[name]
	if q == nil {
		q = &hintQueue{}
		r.hints[name] = q
	}
	return q
}

// queueSampleHints buffers one failed replica call's samples, evicting the
// oldest hints past the bound.
func (r *RingDB) queueSampleHints(name string, samples []tsdb.BatchSample) {
	limit := int(r.hintLimit.Load())
	q := r.hintQueueFor(name)
	q.mu.Lock()
	if limit <= 0 {
		q.lossy = true
		q.mu.Unlock()
		r.hintSamplesDropped.Add(uint64(len(samples)))
		return
	}
	q.samples = append(q.samples, samples...)
	dropped := 0
	if over := len(q.samples) - limit; over > 0 {
		q.samples = append(q.samples[:0], q.samples[over:]...)
		q.lossy = true
		dropped = over
	}
	q.mu.Unlock()
	r.hintSamplesQueued.Add(uint64(len(samples)))
	if dropped > 0 {
		r.hintSamplesDropped.Add(uint64(dropped))
	}
}

// queueTombstoneHint buffers one failed tombstone apply. Tombstones share
// the sample bound; overflow marks the queue lossy (the member stays
// read-gated until SyncNode).
func (r *RingDB) queueTombstoneHint(name string, seq uint64, ms []*labels.Matcher) {
	limit := int(r.hintLimit.Load())
	q := r.hintQueueFor(name)
	q.mu.Lock()
	if limit <= 0 || len(q.tombs) >= limit {
		q.lossy = true
		q.mu.Unlock()
		return
	}
	q.tombs = append(q.tombs, tombHint{seq: seq, ms: ms})
	q.mu.Unlock()
	r.hintTombsQueued.Add(1)
}

// drainHints hands a member's buffered hints back to it: tombstones first
// (they gate reads), then samples in handoff-sized batches. A lossless
// complete drain proves the member missed nothing the coordinator saw, so
// its warming and tombstone-stale gates clear and it rejoins read coverage
// without a full peer sync. A failed drain re-queues what was not applied
// and returns the error; a lossy drain applies what survived but leaves the
// gates to SyncNode.
func (r *RingDB) drainHints(name string) (HintDrainStats, error) {
	_, members := r.snapshot()
	m := members[name]
	if m == nil {
		return HintDrainStats{}, fmt.Errorf("cluster: drain hints: no member %q", name)
	}
	q := r.hintQueueFor(name)
	q.mu.Lock()
	samples, tombs, lossy := q.samples, q.tombs, q.lossy
	q.samples, q.tombs = nil, nil
	q.mu.Unlock()

	st := HintDrainStats{Lossless: !lossy}
	if lossy && len(samples) > 0 {
		// A lossy queue's surviving samples are the NEWEST of the outage.
		// Applying them would raise each series' append watermark past the
		// dropped window, and the append-only head would then reject the
		// full sync's older back-fill — a permanent hole. Discard them
		// (counted) and let SyncNode deliver the whole window in order;
		// tombstones below still apply, they carry no ordering.
		r.hintSamplesDropped.Add(uint64(len(samples)))
		samples = nil
	}
	requeue := func(ts []tombHint, ss []tsdb.BatchSample) {
		q.mu.Lock()
		// Concurrent commits may have queued fresh hints after the swap;
		// the re-queued remainder is older and goes first.
		q.tombs = append(ts, q.tombs...)
		q.samples = append(ss, q.samples...)
		q.mu.Unlock()
	}
	for i, th := range tombs {
		if _, err := m.ApplyTombstone(th.seq, th.ms...); err != nil {
			requeue(tombs[i:], samples)
			return st, fmt.Errorf("cluster: drain hints %s: %w", name, err)
		}
		st.Tombstones++
		r.hintTombsDrained.Add(1)
	}
	for len(samples) > 0 {
		n := len(samples)
		if n > handoffBatchSize {
			n = handoffBatchSize
		}
		applied, err := m.BatchAppend(samples[:n])
		if err != nil {
			requeue(nil, samples)
			return st, fmt.Errorf("cluster: drain hints %s: %w", name, err)
		}
		st.SamplesOffered += n
		st.SamplesApplied += applied
		r.hintSamplesDrained.Add(uint64(n))
		samples = samples[n:]
	}
	if !lossy {
		// Everything the coordinator failed to deliver since the last sync
		// has now landed: the member's history is whole again.
		m.tombStale.Store(false)
		if m.warming.Load() {
			m.warming.Store(false)
			r.topoGen.Add(1)
		}
	}
	return st, nil
}

// clearHintLossy resets a member's lossy marker; called by SyncNode once
// the full anti-entropy pull has provably filled every hole.
func (r *RingDB) clearHintLossy(name string) {
	q := r.hintQueueFor(name)
	q.mu.Lock()
	q.lossy = false
	q.mu.Unlock()
}

// hint-related coordinator state, embedded in RingDB (ringdb.go).
type hintState struct {
	hintMu    sync.Mutex
	hints     map[string]*hintQueue
	hintLimit atomic.Int64

	hintSamplesQueued  atomic.Uint64
	hintSamplesDropped atomic.Uint64
	hintSamplesDrained atomic.Uint64
	hintTombsQueued    atomic.Uint64
	hintTombsDrained   atomic.Uint64
}
