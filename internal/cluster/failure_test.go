package cluster

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
	"repro/internal/resourcemanager"
	"repro/internal/scrape"
)

// failingFetcher wraps the sim's fetcher and fails a chosen target.
type failingFetcher struct {
	inner  scrape.Fetcher
	broken map[string]bool
}

func (f *failingFetcher) Fetch(ctx context.Context, target string) (io.ReadCloser, error) {
	if f.broken[target] {
		return nil, errors.New("injected: exporter unreachable")
	}
	return f.inner.Fetch(ctx, target)
}

// A node whose exporter dies mid-run must show up=0, its series must go
// stale, and the rest of the fleet must keep attributing power.
func TestExporterFailureIsolated(t *testing.T) {
	topo := Topology{Name: "failtest", IntelNodes: 3, Seed: 9}
	sim, err := New(topo, DefaultOptions(), 3, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sim.RunFor(ctx, 15*time.Minute)

	// Kill one exporter.
	victim := "failtest-intel-0000"
	sim.scrapeMgr.Fetcher = &failingFetcher{
		inner:  &exporterFetcher{sim: sim},
		broken: map[string]bool{victim: true},
	}
	sim.RunFor(ctx, 15*time.Minute)

	eng, q := sim.Engine()
	v, err := eng.Instant(q, `up{instance="`+victim+`"}`, sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	vec := v.(promql.Vector)
	if len(vec) != 1 || vec[0].V != 0 {
		t.Errorf("victim up = %+v, want 0", vec)
	}
	// Healthy nodes still report.
	v, _ = eng.Instant(q, `count(up == 1)`, sim.Now())
	if vec := v.(promql.Vector); len(vec) != 1 || vec[0].V != 2 {
		t.Errorf("healthy nodes = %+v, want 2", vec)
	}
	// Power attribution continues on the survivors.
	v, _ = eng.Instant(q, `count(uuid:host_watts:intel)`, sim.Now())
	if vec := v.(promql.Vector); len(vec) == 0 || vec[0].V == 0 {
		t.Error("no attribution on surviving nodes")
	}
	// The victim's node-level series are absent from fresh evaluations
	// once staleness kicks in (no sample within lookback newer than the
	// failure).
	v, _ = eng.Instant(q, `ceems_ipmi_dcmi_current_watts{instance="`+victim+`"}`, sim.Now())
	if vec := v.(promql.Vector); len(vec) != 0 {
		t.Errorf("dead exporter still reporting ipmi: %+v", vec)
	}
}

// brokenManager fails FetchUnits.
type brokenManager struct{}

func (brokenManager) ClusterID() string              { return "broken" }
func (brokenManager) Manager() model.ResourceManager { return model.ManagerSLURM }
func (brokenManager) FetchUnits(context.Context, time.Time) ([]model.Unit, error) {
	return nil, errors.New("injected: slurmdbd down")
}

// A failing resource manager must not poison the updater: the error is
// reported, other fetchers still update.
func TestResourceManagerFailureIsolated(t *testing.T) {
	topo := Topology{Name: "rmfail", IntelNodes: 2, Seed: 4}
	sim, err := New(topo, DefaultOptions(), 2, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sim.RunFor(ctx, 20*time.Minute)

	sim.Updater.Fetchers = append([]resourcemanager.Fetcher{brokenManager{}}, sim.Updater.Fetchers...)
	err = sim.Updater.Update(ctx, sim.Now())
	if err == nil {
		t.Fatal("broken fetcher error swallowed")
	}
	// The healthy SLURM fetcher still populated units.
	n, err2 := sim.Store.Count("units")
	if err2 != nil || n == 0 {
		t.Errorf("healthy fetcher blocked: %d units, %v", n, err2)
	}
}

// Stale markers must not break counter functions when a job restarts on
// the same node with the same uuid-like labels.
func TestCounterAcrossStaleGap(t *testing.T) {
	topo := Topology{Name: "gap", IntelNodes: 1, Seed: 2}
	sim, err := New(topo, DefaultOptions(), 1, 1, 0) // no workload gen
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sim.RunFor(ctx, 10*time.Minute)
	eng, q := sim.Engine()
	// Node-level counters never go stale while the node lives.
	v, err := eng.Instant(q, `rate(ceems_rapl_package_joules_total[5m])`, sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	vec := v.(promql.Vector)
	if len(vec) != 2 { // 2 sockets
		t.Fatalf("rapl rates = %d series", len(vec))
	}
	for _, s := range vec {
		if s.V <= 0 {
			t.Errorf("non-positive package power: %+v", s)
		}
	}
	_ = labels.MetricName
}
