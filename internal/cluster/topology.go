// Package cluster assembles the full CEEMS deployment over a simulated
// HPC platform: a Jean-Zay-like topology of Intel/AMD/GPU nodes under a
// SLURM scheduler, per-node CEEMS + DCGM exporters, the hot TSDB with its
// scrape loops and recording rules, Thanos long-term storage, the CEEMS
// API server with its relational store and Litestream-style replica, the
// load balancer, and a synthetic workload generator calibrated to the
// paper's ~20k jobs/day churn. It is the engine behind the E1/E3/E4/E7
// experiments and the cluster_sim binary.
package cluster

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/model"
)

// NodeClass identifies the four hardware groups of §III.A.
type NodeClass string

const (
	ClassIntel       NodeClass = "intel"  // RAPL pkg+dram, IPMI covers node
	ClassAMD         NodeClass = "amd"    // RAPL pkg only
	ClassGPUIncluded NodeClass = "gpuinc" // BMC reading includes GPUs
	ClassGPUExcluded NodeClass = "gpuexc" // BMC reading excludes GPUs
)

// Classes lists all node classes.
func Classes() []NodeClass {
	return []NodeClass{ClassIntel, ClassAMD, ClassGPUIncluded, ClassGPUExcluded}
}

// Topology describes how many nodes of each class to build.
type Topology struct {
	Name             string
	IntelNodes       int
	AMDNodes         int
	GPUIncludedNodes int
	GPUExcludedNodes int
	// GPUsPerNode on the GPU classes (Jean-Zay: 4 or 8).
	GPUsPerNode int
	// Kinds cycled across GPU nodes (V100/A100/H100 partitions).
	GPUKinds []model.GPUKind
	Seed     int64
}

// JeanZay returns the paper's deployment scaled by the given factor:
// at scale=1 approximately 1400 nodes with >3500 GPUs across V100, A100
// and H100 partitions.
func JeanZay(scale float64) Topology {
	n := func(full int) int {
		v := int(float64(full) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	return Topology{
		Name:             "jean-zay",
		IntelNodes:       n(720),
		AMDNodes:         n(240),
		GPUIncludedNodes: n(260),
		GPUExcludedNodes: n(180),
		GPUsPerNode:      8,
		GPUKinds:         []model.GPUKind{model.GPUV100, model.GPUA100, model.GPUH100},
		Seed:             42,
	}
}

// TotalNodes returns the node count.
func (t Topology) TotalNodes() int {
	return t.IntelNodes + t.AMDNodes + t.GPUIncludedNodes + t.GPUExcludedNodes
}

// TotalGPUs returns the GPU count.
func (t Topology) TotalGPUs() int {
	return (t.GPUIncludedNodes + t.GPUExcludedNodes) * t.gpusPerNode()
}

func (t Topology) gpusPerNode() int {
	if t.GPUsPerNode <= 0 {
		return 4
	}
	return t.GPUsPerNode
}

// Validate checks the topology.
func (t Topology) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("cluster: topology name required")
	}
	if t.TotalNodes() == 0 {
		return fmt.Errorf("cluster: topology has no nodes")
	}
	if (t.GPUIncludedNodes > 0 || t.GPUExcludedNodes > 0) && len(t.GPUKinds) == 0 {
		return fmt.Errorf("cluster: GPU nodes need at least one GPU kind")
	}
	return nil
}

// buildNodes materializes the hardware, returning nodes grouped by class.
func (t Topology) buildNodes(start simTime) (map[NodeClass][]*hw.Node, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	out := map[NodeClass][]*hw.Node{}
	mk := func(class NodeClass, i int) (hw.NodeSpec, error) {
		name := fmt.Sprintf("%s-%s-%04d", t.Name, class, i)
		var spec hw.NodeSpec
		switch class {
		case ClassIntel:
			spec = hw.DefaultIntelSpec(name)
		case ClassAMD:
			spec = hw.DefaultAMDSpec(name)
		case ClassGPUIncluded, ClassGPUExcluded:
			kind := t.GPUKinds[i%len(t.GPUKinds)]
			kinds := make([]model.GPUKind, t.gpusPerNode())
			for k := range kinds {
				kinds[k] = kind
			}
			spec = hw.DefaultGPUSpec(name, class == ClassGPUIncluded, kinds...)
		default:
			return spec, fmt.Errorf("cluster: unknown class %s", class)
		}
		spec.Seed = t.Seed + int64(i)*7919
		return spec, nil
	}
	counts := map[NodeClass]int{
		ClassIntel: t.IntelNodes, ClassAMD: t.AMDNodes,
		ClassGPUIncluded: t.GPUIncludedNodes, ClassGPUExcluded: t.GPUExcludedNodes,
	}
	for _, class := range Classes() {
		for i := 0; i < counts[class]; i++ {
			spec, err := mk(class, i)
			if err != nil {
				return nil, err
			}
			n, err := hw.NewNode(spec, start.t)
			if err != nil {
				return nil, err
			}
			out[class] = append(out[class], n)
		}
	}
	return out, nil
}
