package cluster

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/grafana"
	"repro/internal/lb"
	"repro/internal/model"
	"repro/internal/promapi"
	"repro/internal/promql"
	"repro/internal/relstore"
)

func smallTopo() Topology {
	return Topology{
		Name: "itest", IntelNodes: 3, AMDNodes: 2,
		GPUIncludedNodes: 1, GPUExcludedNodes: 1,
		GPUsPerNode: 4, GPUKinds: []model.GPUKind{model.GPUA100},
		Seed: 7,
	}
}

// TestFullStack is the E1 (Fig. 1) experiment: every component wired
// together over a mixed cluster, driven for an hour of simulated time.
func TestFullStack(t *testing.T) {
	sim, err := New(smallTopo(), DefaultOptions(), 6, 3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sim.RunFor(ctx, time.Hour)
	if err := sim.FinalizeUpdate(ctx); err != nil {
		t.Fatalf("final update: %v", err)
	}
	for _, e := range sim.Errors {
		t.Errorf("subsystem error: %s", e)
	}

	// Jobs flowed through the scheduler.
	st := sim.Sched.Stats()
	if sim.Gen.Submitted < 30 {
		t.Fatalf("only %d jobs submitted", sim.Gen.Submitted)
	}
	if st.Finished == 0 {
		t.Error("no jobs finished in an hour")
	}

	// TSDB holds node series for every class.
	eng, q := sim.Engine()
	counts := map[NodeClass]int{
		ClassIntel: 3, ClassAMD: 2, ClassGPUIncluded: 1, ClassGPUExcluded: 1,
	}
	for _, class := range Classes() {
		v, err := eng.Instant(q, `count(ceems_ipmi_dcmi_current_watts{nodeclass="`+string(class)+`"})`, sim.Now())
		if err != nil {
			t.Fatalf("query %s: %v", class, err)
		}
		vec := v.(promql.Vector)
		if len(vec) != 1 || int(vec[0].V) != counts[class] {
			t.Errorf("class %s: ipmi series = %+v, want %d", class, vec, counts[class])
		}
	}
	v, err := eng.Instant(q, `sum(instance:node_watts:intel)`, sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	if vec := v.(promql.Vector); len(vec) != 1 || vec[0].V < 300 || vec[0].V > 2000 {
		t.Errorf("intel fleet power = %+v, want 3 nodes x 150-450 W", vec)
	}

	// Units table populated with energy.
	rows, err := sim.Store.Select("units", relstore.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no units in API store")
	}
	withEnergy := 0
	for _, r := range rows {
		if e, _ := r["total_energy_j"].(float64); e > 0 {
			withEnergy++
		}
	}
	if withEnergy == 0 {
		t.Error("no unit accumulated energy")
	}

	// Sidecar shipped blocks to long-term storage.
	if sim.Cold.NumBlocks() == 0 {
		t.Error("no blocks shipped to cold storage")
	}

	// Cardinality cleanup ran (1-minute jobs exist at this churn).
	if sim.Updater.SeriesDeleted == 0 {
		t.Log("note: no short-unit series deleted (acceptable at low churn)")
	}
}

// TestFullHTTPPath exercises the complete Grafana→LB→Prometheus-API and
// Grafana→CEEMS-API paths over real HTTP, including access control.
func TestFullHTTPPath(t *testing.T) {
	topo := smallTopo()
	topo.GPUIncludedNodes = 0
	topo.GPUExcludedNodes = 0
	sim, err := New(topo, DefaultOptions(), 4, 2, 1500)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sim.RunFor(ctx, 30*time.Minute)
	if err := sim.FinalizeUpdate(ctx); err != nil {
		t.Fatal(err)
	}

	// Serve the TSDB over the Prometheus API, front it with the LB.
	promHandler := (&promapi.Handler{Query: sim.Querier, Now: sim.Now}).Mux()
	promSrv := httptest.NewServer(promHandler)
	defer promSrv.Close()
	backend, err := lb.NewBackend(promSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	sim.LB.Backends = []*lb.Backend{backend}
	lbSrv := httptest.NewServer(sim.LB)
	defer lbSrv.Close()

	apiSrv := httptest.NewServer(sim.APIServer.Handler())
	defer apiSrv.Close()

	promDS := &grafana.PromDS{BaseURL: lbSrv.URL}
	ceemsDS := &grafana.CEEMSDS{BaseURL: apiSrv.URL}

	// Find a unit and its owner.
	rows, err := sim.Store.Select("units", relstore.Query{Limit: 200})
	if err != nil || len(rows) == 0 {
		t.Fatalf("units: %d, %v", len(rows), err)
	}
	var owner, uid string
	for _, r := range rows {
		if e, _ := r["total_energy_j"].(float64); e > 0 {
			owner = r["user"].(string)
			uid = r["id"].(string)
			break
		}
	}
	if owner == "" {
		t.Fatal("no unit with energy found")
	}
	other := "user00"
	if owner == "user00" {
		other = "user01"
	}

	// Owner can query their unit's power series through the LB.
	res, err := promDS.Instant(owner, `{__name__=~"uuid:total_watts:.+",uuid="`+uid+`"}`, sim.Now())
	if err != nil {
		t.Fatalf("owner query: %v", err)
	}
	_ = res
	// Foreign user is denied by the LB.
	if _, err := promDS.Instant(other, `{__name__=~"uuid:total_watts:.+",uuid="`+uid+`"}`, sim.Now()); err == nil {
		t.Error("cross-user query was not denied")
	} else if !strings.Contains(err.Error(), "403") && !strings.Contains(err.Error(), "does not own") {
		t.Errorf("unexpected denial error: %v", err)
	}
	if sim.LB.Denied() == 0 {
		t.Error("LB denial not counted")
	}

	// Fig 2a/2b dashboards render for the owner.
	var sb strings.Builder
	if err := grafana.RenderUserOverview(&sb, ceemsDS, owner); err != nil {
		t.Fatalf("user overview: %v", err)
	}
	if !strings.Contains(sb.String(), "ENERGY") {
		t.Errorf("overview missing columns: %s", sb.String())
	}
	sb.Reset()
	if err := grafana.RenderJobList(&sb, ceemsDS, owner); err != nil {
		t.Fatalf("job list: %v", err)
	}
	if !strings.Contains(sb.String(), owner) && !strings.Contains(sb.String(), "job-") {
		t.Errorf("job list empty: %s", sb.String())
	}
	// Fig 2c time series through the LB.
	sb.Reset()
	err = grafana.RenderTimeSeries(&sb, promDS, owner, "CPU usage",
		`{__name__=~"uuid:cpu_share:.+",uuid="`+uid+`"}`,
		sim.Now().Add(-20*time.Minute), sim.Now(), time.Minute)
	if err != nil {
		t.Fatalf("timeseries: %v", err)
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{}).Validate(); err == nil {
		t.Error("empty topology accepted")
	}
	topo := Topology{Name: "x", GPUIncludedNodes: 1}
	if err := topo.Validate(); err == nil {
		t.Error("GPU nodes without kinds accepted")
	}
	jz := JeanZay(1.0)
	if jz.TotalNodes() < 1300 || jz.TotalNodes() > 1500 {
		t.Errorf("Jean-Zay nodes = %d, want ~1400", jz.TotalNodes())
	}
	if jz.TotalGPUs() < 3500 {
		t.Errorf("Jean-Zay GPUs = %d, want > 3500", jz.TotalGPUs())
	}
	small := JeanZay(0.001)
	if small.TotalNodes() < 4 {
		t.Errorf("scaled topology collapsed: %d", small.TotalNodes())
	}
}

func TestWorkloadGenDistribution(t *testing.T) {
	g := NewWorkloadGen(1, 8, 3, 20000, []string{"cpu"}, []string{"gpu"})
	nGPU, nCPU := 0, 0
	var totalDur time.Duration
	for i := 0; i < 2000; i++ {
		spec := g.jobSpec()
		if spec.GPUsPerNode > 0 {
			nGPU++
		} else {
			nCPU++
		}
		totalDur += spec.Duration
		if spec.CPUsPerNode <= 0 || spec.Duration < 30*time.Second {
			t.Fatalf("bad spec: %+v", spec)
		}
		if spec.User == "" || spec.Account == "" {
			t.Fatal("missing identity")
		}
	}
	gpuFrac := float64(nGPU) / 2000
	if gpuFrac < 0.25 || gpuFrac > 0.45 {
		t.Errorf("gpu fraction = %v, want ~0.35", gpuFrac)
	}
	meanDur := totalDur / 2000
	if meanDur < 10*time.Minute || meanDur > 2*time.Hour {
		t.Errorf("mean duration = %v", meanDur)
	}
}

func TestPoissonRate(t *testing.T) {
	g := NewWorkloadGen(99, 1, 1, 0, []string{"c"}, nil)
	total := 0
	for i := 0; i < 1000; i++ {
		total += g.poisson(3.0)
	}
	mean := float64(total) / 1000
	if mean < 2.7 || mean > 3.3 {
		t.Errorf("poisson mean = %v, want ~3", mean)
	}
	if g.poisson(0) != 0 {
		t.Error("poisson(0) != 0")
	}
}

// 20k jobs/day on the full topology: verify the generator hits the rate.
func TestChurnRate(t *testing.T) {
	g := NewWorkloadGen(5, 100, 20, 20000, []string{"c"}, nil)
	// A simulated hour of ticks.
	rate := 0
	for i := 0; i < 240; i++ {
		rate += g.poisson(20000.0 / (24 * 3600) * 15)
	}
	// Expect ~833 jobs/hour ± 20%.
	if rate < 650 || rate > 1050 {
		t.Errorf("hourly churn = %d, want ~833", rate)
	}
}
