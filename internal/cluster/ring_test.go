package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// ringKeys returns a deterministic stream of pseudo-random key hashes.
func ringKeys(n int) []uint64 {
	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	return keys
}

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%d", i)
	}
	return out
}

// TestRingStabilityAdd: adding one node to N remaps close to the
// theoretical 1/(N+1) of primary ownership — and never more than twice
// that — and every remapped key lands on the new node (consistent hashing
// moves keys only toward the joiner, never between survivors).
func TestRingStabilityAdd(t *testing.T) {
	const n = 8
	keys := ringKeys(20000)
	before := NewRing(0, names(n)...)
	after := before.WithNode("node-new")

	moved := 0
	for _, k := range keys {
		a := before.Owners(k, 1)[0]
		b := after.Owners(k, 1)[0]
		if a != b {
			moved++
			if b != "node-new" {
				t.Fatalf("key %x moved %s -> %s, not to the joining node", k, a, b)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	if limit := 2.0 / float64(n+1); frac > limit {
		t.Fatalf("add remapped %.3f of keys, want <= %.3f", frac, limit)
	}
	if frac == 0 {
		t.Fatal("adding a node remapped nothing; ring is not spreading load")
	}

	// Same bound for full R=3 owner sets: a join may enter up to R owner
	// slots, so the set-change fraction is bounded by 2R/(N+1).
	const rf = 3
	changed := 0
	for _, k := range keys {
		if fmt.Sprint(before.Owners(k, rf)) != fmt.Sprint(after.Owners(k, rf)) {
			changed++
		}
	}
	frac = float64(changed) / float64(len(keys))
	if limit := 2.0 * rf / float64(n+1); frac > limit {
		t.Fatalf("add changed %.3f of R=%d owner sets, want <= %.3f", frac, rf, limit)
	}
}

// TestRingStabilityRemove mirrors the add bound: removing one of N nodes
// remaps at most 2/N of primary ownership, and only keys the removed node
// owned move.
func TestRingStabilityRemove(t *testing.T) {
	const n = 8
	keys := ringKeys(20000)
	before := NewRing(0, names(n)...)
	after := before.WithoutNode("node-3")

	moved := 0
	for _, k := range keys {
		a := before.Owners(k, 1)[0]
		b := after.Owners(k, 1)[0]
		if a != b {
			moved++
			if a != "node-3" {
				t.Fatalf("key %x moved %s -> %s though its owner stayed in the ring", k, a, b)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	if limit := 2.0 / float64(n); frac > limit {
		t.Fatalf("remove remapped %.3f of keys, want <= %.3f", frac, limit)
	}
}

// TestRingDeterministicPlacement: placement depends only on the member
// set — not insertion order, duplicates, or map iteration — and matches a
// pinned golden, so two processes (or two releases) route identically.
func TestRingDeterministicPlacement(t *testing.T) {
	base := NewRing(16, "alpha", "beta", "gamma", "delta")
	perms := [][]string{
		{"delta", "gamma", "beta", "alpha"},
		{"beta", "alpha", "delta", "gamma", "beta", "alpha"}, // dups collapse
		{"gamma", "delta", "alpha", "beta"},
	}
	keys := ringKeys(1000)
	for _, p := range perms {
		r := NewRing(16, p...)
		for _, k := range keys {
			if got, want := fmt.Sprint(r.Owners(k, 3)), fmt.Sprint(base.Owners(k, 3)); got != want {
				t.Fatalf("permuted ring %v places %x at %s, base places at %s", p, k, got, want)
			}
		}
	}

	// Golden checksum over the token stream: FNV-1a of every (token, node)
	// pair in ring order. Any change to the hash function, vnode key
	// derivation, or sort order breaks cross-process placement and must
	// show up here as a deliberate diff.
	sum := uint64(14695981039346656037)
	mix := func(b byte) { sum ^= uint64(b); sum *= 1099511628211 }
	for _, tok := range base.tokens {
		for shift := 0; shift < 64; shift += 8 {
			mix(byte(tok.token >> shift))
		}
		for i := 0; i < len(tok.node); i++ {
			mix(tok.node[i])
		}
	}
	const golden = uint64(0xa91869c939d4203a)
	if sum != golden {
		t.Fatalf("token stream checksum %#x, want pinned golden %#x", sum, golden)
	}
}

// TestRingOwnersQuorumShape: owner lists are distinct, clamped, and the
// OwnerGroups enumeration covers every group at the right size.
func TestRingOwnersQuorumShape(t *testing.T) {
	r := NewRing(0, names(5)...)
	for _, k := range ringKeys(500) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners returned %d nodes, want 3", len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner %s for key %x", o, k)
			}
			seen[o] = true
		}
	}
	if got := r.Owners(ringKeys(1)[0], 9); len(got) != 5 {
		t.Fatalf("rf beyond member count returned %d owners, want clamp to 5", len(got))
	}
	if got := r.Owners(ringKeys(1)[0], 0); got != nil {
		t.Fatalf("rf=0 returned %v, want nil", got)
	}
	for _, g := range r.OwnerGroups(3) {
		if len(g) != 3 {
			t.Fatalf("owner group %v has size %d, want 3", g, len(g))
		}
	}
	if groups := NewRing(0).OwnerGroups(3); groups != nil {
		t.Fatalf("empty ring produced owner groups %v", groups)
	}
}
