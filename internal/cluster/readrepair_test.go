package cluster

import (
	"fmt"
	"testing"
)

// TestReadRepairConvergence: with hinting disabled, a healed partition
// leaves one replica quietly stale — quorum reads mask the gap, but
// nothing else would ever fill it. The scatter merge must notice the
// replica returning less than the merged answer and asynchronously
// back-fill it until the replica is byte-exact on its own.
func TestReadRepairConvergence(t *testing.T) {
	e := newChaosEnv(t, 3, 3, 2, 40)
	e.ring.SetHintLimit(0) // force genuine staleness: no hint recovery
	e.run(0, 10)
	e.ring.Partition("node-2")
	e.run(10, 20)
	e.ring.Heal()

	// node-2 is back in read coverage but missing ticks 10-19 on every
	// series. A quorum read both answers correctly AND flags the gap.
	e.assertByteExact()
	e.ring.Scatter().WaitRepairs()

	st := e.ring.Scatter().RepairStatsSnapshot()
	e.writeChaosLog("repair-stats.log", fmt.Sprintf("repairs: %+v\nhints: %+v\n", st, e.ring.HintStats()))
	if st.SeriesRepaired == 0 {
		t.Fatal("read repair repaired nothing; node-2 is missing 10 ticks on 40 series")
	}
	if want := uint64(40 * 10); st.SamplesRepaired != want {
		t.Fatalf("read repair back-filled %d samples, want %d", st.SamplesRepaired, want)
	}
	if st.Errors != 0 {
		t.Fatalf("read repair hit %d errors: %+v", st.Errors, st)
	}

	// The sharp check: the repaired replica alone is now byte-exact — not
	// just masked by the merge.
	got := dumpAll(t, e.ring.Member("node-2").DB().SelectWithHints)
	want := dumpAll(t, e.oracle.SelectWithHints)
	compareDumps(t, "node-2 after repair", got, want)

	// And a second read schedules nothing new: repair converges, it does
	// not loop.
	e.assertByteExact()
	e.ring.Scatter().WaitRepairs()
	if again := e.ring.Scatter().RepairStatsSnapshot(); again.SeriesRepaired != st.SeriesRepaired {
		t.Fatalf("repair did not converge: %+v then %+v", st, again)
	}
}
