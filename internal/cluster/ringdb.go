// Ring-routed replicated storage: the write path of the cluster
// distribution layer. A RingDB looks like one tsdb to the rest of the
// stack — scrape batches, rule outputs, retention, deletes, the query
// cache's Head watermark — but underneath it places every series on R
// members of a consistent-hash ring and acknowledges a write only after W
// of them applied it durably (each member keeps its own WAL, so an ack
// means "journaled on W disks", the same durability contract a single
// node gives for one disk).
//
// Members carry fault injection (kill, partition, refuse writes) so the
// chaos harness can break any one of them mid-scrape and prove the quorum
// math holds: acked data stays readable and a revived member recovers
// byte-exactly through WAL replay plus anti-entropy handoff (handoff.go).
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/labels"
	"repro/internal/lb"
	"repro/internal/model"
	"repro/internal/tsdb"
	"repro/internal/workpool"
)

var (
	// ErrNodeDown marks a member whose process is gone (killed, not yet
	// revived). Its db pointer is nil; nothing is servable.
	ErrNodeDown = errors.New("cluster: node down")
	// ErrNodePartitioned marks a member that is alive but unreachable from
	// the coordinator — writes don't arrive, reads don't answer.
	ErrNodePartitioned = errors.New("cluster: node partitioned")
	// ErrNodeWarming marks a member mid-handoff: it accepts writes (so it
	// converges) but is excluded from read coverage until SyncNode finishes,
	// because its history may still have holes.
	ErrNodeWarming = errors.New("cluster: node warming up")
	// ErrDiskFull marks a member whose WAL volume stopped accepting writes.
	// The member still answers reads from what it holds.
	ErrDiskFull = errors.New("cluster: node disk full, write rejected")
	// ErrNodeStale marks a member that missed an acked delete tombstone: it
	// refuses reads until the tombstone reaches it (hint drain or SyncNode),
	// because a merge including its answer could resurrect deleted series.
	ErrNodeStale = errors.New("cluster: node missing delete tombstones")
)

// QuorumWriteError reports a batch commit that could not reach W acks for
// some owner group. Samples routed to that group are NOT acked; samples in
// groups that met quorum landed normally.
type QuorumWriteError struct {
	Group     []string
	Need, Got int
}

func (e *QuorumWriteError) Error() string {
	return fmt.Sprintf("cluster: write quorum failed: owner group %v acked %d/%d (need %d)",
		e.Group, e.Got, len(e.Group), e.Need)
}

// Member is one ring node: a *tsdb.DB behind an injectable fault surface.
// It implements lb.SeriesBackend (reads) and the replication target for
// batch appends (writes). The db pointer is atomic so Kill/Revive swap it
// without stalling in-flight operations on other members.
type Member struct {
	name string

	db          atomic.Pointer[tsdb.DB]
	partitioned atomic.Bool
	warming     atomic.Bool
	diskFull    atomic.Bool
	// tombStale gates reads on a member that missed a delete tombstone
	// (tombstones.go); serving reads from it could resurrect the series.
	tombStale atomic.Bool
}

// Name returns the member's ring name.
func (m *Member) Name() string { return m.name }

// DB returns the live tsdb, or nil when the node is down.
func (m *Member) DB() *tsdb.DB { return m.db.Load() }

// reachable is the transport check both paths share.
func (m *Member) reachable() (*tsdb.DB, error) {
	if m.partitioned.Load() {
		return nil, ErrNodePartitioned
	}
	db := m.db.Load()
	if db == nil {
		return nil, ErrNodeDown
	}
	return db, nil
}

// BatchAppend applies a replicated batch, honoring fault injection. A nil
// error is a durability ack under the member's own WAL policy.
func (m *Member) BatchAppend(batch []tsdb.BatchSample) (int, error) {
	db, err := m.reachable()
	if err != nil {
		return 0, err
	}
	if m.diskFull.Load() {
		return 0, ErrDiskFull
	}
	return db.BatchAppend(batch)
}

// readable is the read-path gate shared by the lb.SeriesBackend methods:
// on top of reachability, warming members refuse reads (their history may
// miss acked samples until handoff completes) and tombstone-stale members
// refuse reads (their history may contain acked-deleted series) — counting
// either toward read coverage would break the quorum merge.
func (m *Member) readable() (*tsdb.DB, error) {
	db, err := m.reachable()
	if err != nil {
		return nil, err
	}
	if m.warming.Load() {
		return nil, ErrNodeWarming
	}
	if m.tombStale.Load() {
		return nil, ErrNodeStale
	}
	return db, nil
}

// SelectWithHints implements lb.SeriesBackend.
func (m *Member) SelectWithHints(hints model.SelectHints, ms ...*labels.Matcher) ([]model.Series, error) {
	db, err := m.readable()
	if err != nil {
		return nil, err
	}
	return db.SelectWithHints(hints, ms...)
}

// LabelValues implements lb.SeriesBackend.
func (m *Member) LabelValues(name string) ([]string, error) {
	db, err := m.readable()
	if err != nil {
		return nil, err
	}
	return db.LabelValues(name), nil
}

// LabelNames implements lb.SeriesBackend.
func (m *Member) LabelNames() ([]string, error) {
	db, err := m.readable()
	if err != nil {
		return nil, err
	}
	return db.LabelNames(), nil
}

// RepairSamples implements lb.Repairer: the scatter-gather merge back-fills
// a replica it caught returning stale or missing series. Repairs land
// through the normal batch append seam (WAL-durable); out-of-order
// duplicates skip silently, so repairing is always safe to retry.
func (m *Member) RepairSamples(ls labels.Labels, samples []model.Sample) error {
	batch := make([]tsdb.BatchSample, len(samples))
	for i, s := range samples {
		batch[i] = tsdb.BatchSample{Lset: ls, T: s.T, V: s.V}
	}
	_, err := m.BatchAppend(batch)
	return err
}

// RingDB coordinates N members behind one tsdb-shaped facade. All methods
// are safe for concurrent use; topology changes (Kill/Revive/Join/Leave)
// serialize on the mutex while the data paths read a consistent snapshot.
type RingDB struct {
	// R is the replication factor, W the write quorum: 1 <= W <= R <= N.
	R, W int

	mu      sync.RWMutex
	ring    *Ring
	members map[string]*Member
	scatter *lb.ScatterGather
	// open recreates a member's tsdb from its (per-name) WAL dir; Revive and
	// Join depend on it.
	open func(name string) (*tsdb.DB, error)
	// topoGen advances on every topology change and folds into MutationGen,
	// so the query cache drops every entry rather than trusting watermarks
	// computed over a different member set.
	topoGen atomic.Uint64

	// deleteMu serializes quorum deletes; deleteSeq is the monotonic
	// tombstone sequence allocator, seeded from the members' persisted logs
	// (tombstones.go).
	deleteMu  sync.Mutex
	deleteSeq uint64

	// hintState buffers missed writes/deletes per target (hints.go).
	hintState

	// metrics holds the ring's instruments; nil until InstrumentTelemetry.
	metrics *ringMetrics
}

// NewRingDB opens one tsdb per name through open and assembles the ring.
// vnodes <= 0 picks DefaultVirtualNodes.
func NewRingDB(rf, w, vnodes int, open func(name string) (*tsdb.DB, error), names ...string) (*RingDB, error) {
	if len(names) == 0 {
		return nil, errors.New("cluster: ring needs at least one member")
	}
	if w < 1 || rf < w || rf > len(names) {
		return nil, fmt.Errorf("cluster: need 1 <= W(%d) <= R(%d) <= nodes(%d)", w, rf, len(names))
	}
	r := &RingDB{
		R:       rf,
		W:       w,
		ring:    NewRing(vnodes, names...),
		members: make(map[string]*Member, len(names)),
		open:    open,
	}
	r.scatter = lb.NewScatterGather(r, rf-w+1)
	r.hintLimit.Store(DefaultHintLimit)
	for _, n := range r.ring.Nodes() {
		db, err := open(n)
		if err != nil {
			for _, m := range r.members {
				if d := m.db.Load(); d != nil {
					d.Close()
				}
			}
			return nil, fmt.Errorf("cluster: open member %s: %w", n, err)
		}
		m := &Member{name: n}
		m.db.Store(db)
		r.members[n] = m
		r.scatter.SetReplica(n, m)
	}
	// Startup tombstone anti-entropy: a member that was down during a
	// delete and a coordinator restart missed both the tombstone fan-out
	// AND the (in-memory) hint queue. The WALs remember: union every
	// member's persisted tombstone log and apply the missing entries to
	// each, so the whole cluster agrees on the delete history before
	// anything is read. The sequence allocator resumes past the max.
	dbs := make([]*tsdb.DB, 0, len(r.members))
	for _, n := range r.ring.Nodes() {
		dbs = append(dbs, r.members[n].db.Load())
	}
	for i, db := range dbs {
		if _, err := syncTombstones(db, dbs...); err != nil {
			r.Close()
			return nil, fmt.Errorf("cluster: tombstone sync %s: %w", r.ring.Nodes()[i], err)
		}
		if seq := db.TombstoneSeq(); seq > r.deleteSeq {
			r.deleteSeq = seq
		}
	}
	return r, nil
}

// Scatter returns the quorum read path over the current members; hand it
// to the PromQL engine, the query cache, and the LB.
func (r *RingDB) Scatter() *lb.ScatterGather { return r.scatter }

// Groups implements lb.Placement over the live ring.
func (r *RingDB) Groups() [][]string {
	r.mu.RLock()
	ring := r.ring
	r.mu.RUnlock()
	return ring.OwnerGroups(r.R)
}

// OwnersFor reports which replica names own a series — the placement
// detail the scatter-gather layer needs to know whether a replica that
// failed to return the series was supposed to hold it (read repair,
// lb/scatter.go).
func (r *RingDB) OwnersFor(ls labels.Labels) []string {
	r.mu.RLock()
	ring := r.ring
	r.mu.RUnlock()
	return ring.Owners(ls.Hash(), r.R)
}

// Member returns a member by name, or nil.
func (r *RingDB) Member(name string) *Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[name]
}

// MemberNames returns the sorted ring membership.
func (r *RingDB) MemberNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.Nodes()
}

// snapshot returns the current ring and member map (the map is shared, not
// copied: members are only added/removed under mu, and the data paths
// tolerate a member going down mid-flight via its own atomics).
func (r *RingDB) snapshot() (*Ring, map[string]*Member) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring, r.members
}

// ---- write path ----

// RingAppender buffers samples and commits them through the quorum
// fan-out. It satisfies scrape.Batch structurally, so the scrape manager's
// two-commit discipline (metrics, then staleness+synthetics) routes through
// the ring unchanged.
type RingAppender struct {
	r   *RingDB
	buf []tsdb.BatchSample
}

// NewBatch returns a reusable quorum batch.
func (r *RingDB) NewBatch() *RingAppender { return &RingAppender{r: r} }

// Add buffers one sample.
func (a *RingAppender) Add(lset labels.Labels, t int64, v float64) {
	a.buf = append(a.buf, tsdb.BatchSample{Lset: lset, T: t, V: v})
}

// ownerGroup is the per-owner-set slice of one commit.
type ownerGroup struct {
	owners  []string
	samples []tsdb.BatchSample
}

// Commit routes the buffered samples to their owner replicas and returns
// once every owner group either reached W acks or provably cannot. The
// returned count is the acked sample total (out-of-order skips excluded,
// like a single-node commit); a non-nil error means at least one group
// missed quorum and its samples are NOT acked. The batch is reusable
// either way.
func (a *RingAppender) Commit() (int, error) {
	buf := a.buf
	a.buf = a.buf[:0]
	if len(buf) == 0 {
		return 0, nil
	}
	if m := a.r.metrics; m != nil {
		defer m.quorumCommitSeconds.ObserveSince(time.Now())
	}
	ring, members := a.r.snapshot()

	// Group samples by owner set: quorum is per owner group, and grouping
	// keeps the fan-out at one BatchAppend per (group, owner) pair.
	groups := map[string]*ownerGroup{}
	var order []string
	for _, s := range buf {
		owners := ring.Owners(s.Lset.Hash(), a.r.R)
		key := fmt.Sprint(owners)
		g, ok := groups[key]
		if !ok {
			g = &ownerGroup{owners: owners}
			groups[key] = g
			order = append(order, key)
		}
		g.samples = append(g.samples, s)
	}
	sort.Strings(order)

	type call struct {
		g     *ownerGroup
		owner string
	}
	var calls []call
	for _, k := range order {
		for _, o := range groups[k].owners {
			calls = append(calls, call{g: groups[k], owner: o})
		}
	}
	applied := make([]int, len(calls))
	errs := make([]error, len(calls))
	workpool.Do(len(calls), 0, func(i int) {
		m := members[calls[i].owner]
		if m == nil {
			errs[i] = ErrNodeDown
			return
		}
		applied[i], errs[i] = m.BatchAppend(calls[i].g.samples)
	})

	// Every failed replica call becomes a hint: the dead / partitioned /
	// disk-full owner's share of the batch is buffered per target and
	// redelivered on Revive, Heal or SyncNode (hints.go), so a bounded
	// outage recovers without a full peer-window sync.
	for i := range calls {
		if errs[i] != nil && members[calls[i].owner] != nil {
			a.r.queueSampleHints(calls[i].owner, calls[i].g.samples)
		}
	}

	total := 0
	var firstErr error
	for _, k := range order {
		g := groups[k]
		acks, landed := 0, 0
		for i := range calls {
			if calls[i].g != g {
				continue
			}
			if errs[i] == nil {
				acks++
				if applied[i] > landed {
					landed = applied[i]
				}
			}
		}
		if acks >= a.r.W {
			// Replicas agree on content, so the max applied count across
			// ackers is the new-sample count (lower counts are replicas that
			// already held a prefix and skipped it as out-of-order).
			total += landed
			continue
		}
		if firstErr == nil {
			firstErr = &QuorumWriteError{Group: g.owners, Need: a.r.W, Got: acks}
		}
	}
	return total, firstErr
}

// Append routes one sample through the quorum path — the single-sample
// Appender shape the rules manager and sim bookkeeping write through.
func (r *RingDB) Append(lset labels.Labels, t int64, v float64) error {
	b := r.NewBatch()
	b.Add(lset, t, v)
	_, err := b.Commit()
	return err
}

// ---- tsdb-shaped maintenance and watermark facade ----

// forEachLive runs f over every member with a live db (down members skip;
// partitioned members are deliberately included — partition models a
// coordinator-to-node link cut for the data path, while maintenance here
// stands in for each node's own local janitor, which keeps running).
func (r *RingDB) forEachLive(f func(m *Member, db *tsdb.DB)) {
	_, members := r.snapshot()
	for _, n := range sortedNames(members) {
		if db := members[n].db.Load(); db != nil {
			f(members[n], db)
		}
	}
}

// Truncate prunes every member to mint. It returns the largest per-member
// drop count — replicas overlap, so a cluster-wide sum would overcount —
// plus the per-member outcome, sorted by name. Down members are skipped
// with ErrNodeDown; partitioned and warming members still truncate, for
// the same local-janitor reason forEachLive documents.
func (r *RingDB) Truncate(mint int64) (int, []MemberOutcome) {
	_, members := r.snapshot()
	names := sortedNames(members)
	max := 0
	out := make([]MemberOutcome, len(names))
	for i, n := range names {
		db := members[n].db.Load()
		if db == nil {
			out[i] = MemberOutcome{Member: n, Err: ErrNodeDown}
			continue
		}
		cnt := db.Truncate(mint)
		out[i] = MemberOutcome{Member: n, Count: cnt}
		if cnt > max {
			max = cnt
		}
	}
	return max, out
}

// MaxTime implements querycache.Head: the freshest watermark any member
// holds.
func (r *RingDB) MaxTime() (int64, bool) {
	var maxT int64
	ok := false
	r.forEachLive(func(_ *Member, db *tsdb.DB) {
		if t, has := db.MaxTime(); has && (!ok || t > maxT) {
			maxT, ok = t, true
		}
	})
	return maxT, ok
}

// PrunedThrough implements querycache.Head: the most aggressive retention
// cutoff across members (a cached range below it may be partially gone on
// some replica, so the cache must re-derive it).
func (r *RingDB) PrunedThrough() (int64, bool) {
	var maxT int64
	ok := false
	r.forEachLive(func(_ *Member, db *tsdb.DB) {
		if t, has := db.PrunedThrough(); has && (!ok || t > maxT) {
			maxT, ok = t, true
		}
	})
	return maxT, ok
}

// AppendEpoch implements querycache.Head as the member sum. Not monotonic
// across a kill — MutationGen's topology counter covers that by dropping
// all cache entries whenever the member set changes.
func (r *RingDB) AppendEpoch() uint64 {
	var sum uint64
	r.forEachLive(func(_ *Member, db *tsdb.DB) { sum += db.AppendEpoch() })
	return sum
}

// MutationGen implements querycache.Head: member mutation sum plus the
// topology generation, so kills, revivals, joins and leaves invalidate
// every cached query.
func (r *RingDB) MutationGen() uint64 {
	sum := r.topoGen.Load()
	r.forEachLive(func(_ *Member, db *tsdb.DB) { sum += db.MutationGen() })
	return sum
}

// OutOfOrderWindow reports the widest out-of-order acceptance window of
// any live member, in milliseconds (members are normally configured
// identically; the max is the safe answer if they are not). The
// query-result cache probes it to widen its mutable-tail watermark.
func (r *RingDB) OutOfOrderWindow() int64 {
	var w int64
	r.forEachLive(func(_ *Member, db *tsdb.DB) {
		if ow := db.OutOfOrderWindow(); ow > w {
			w = ow
		}
	})
	return w
}

// Close shuts every member down and stops the read-repair worker.
func (r *RingDB) Close() error {
	r.scatter.StopRepairs()
	var first error
	r.forEachLive(func(m *Member, db *tsdb.DB) {
		m.db.Store(nil)
		if err := db.Close(); err != nil && first == nil {
			first = err
		}
	})
	return first
}

// ---- chaos injection and membership ----

// Kill stops a member: its db closes (flushing its WAL like a SIGTERM) and
// every subsequent read or write fails with ErrNodeDown until Revive.
func (r *RingDB) Kill(name string) error {
	r.mu.Lock()
	m := r.members[name]
	r.mu.Unlock()
	if m == nil {
		return fmt.Errorf("cluster: kill: no member %q", name)
	}
	db := m.db.Swap(nil)
	if db == nil {
		return nil // already down
	}
	r.topoGen.Add(1)
	return db.Close()
}

// Revive reopens a killed member from its WAL and marks it warming: it
// takes writes again immediately but stays out of read coverage until
// SyncNode (or Rejoin) completes the anti-entropy pass. Returns the WAL
// replay stats so callers can assert recovery actually happened.
func (r *RingDB) Revive(name string) (tsdb.WALReplayStats, error) {
	r.mu.Lock()
	m := r.members[name]
	r.mu.Unlock()
	if m == nil {
		return tsdb.WALReplayStats{}, fmt.Errorf("cluster: revive: no member %q", name)
	}
	if m.db.Load() != nil {
		return tsdb.WALReplayStats{}, fmt.Errorf("cluster: revive: member %q is not down", name)
	}
	db, err := r.open(name)
	if err != nil {
		return tsdb.WALReplayStats{}, fmt.Errorf("cluster: revive %s: %w", name, err)
	}
	m.warming.Store(true)
	m.diskFull.Store(false)
	m.db.Store(db)
	r.topoGen.Add(1)
	// Redeliver buffered hints at once: a lossless drain hands the member
	// everything the coordinator failed to deliver while it was down, which
	// clears its warming gate without a full SyncNode. Best effort — a
	// failed or lossy drain leaves the gates to SyncNode.
	_, _ = r.drainHints(name)
	st, _ := db.WALStats()
	return st.Replay, nil
}

// Rejoin is Revive followed by the handoff sync: the member comes back,
// replays its own WAL, pulls the tail it missed from its peers, and
// rejoins read coverage.
func (r *RingDB) Rejoin(name string) (tsdb.WALReplayStats, HandoffStats, error) {
	replay, err := r.Revive(name)
	if err != nil {
		return replay, HandoffStats{}, err
	}
	sync, err := r.SyncNode(name)
	return replay, sync, err
}

// Partition cuts the coordinator's link to the named members: their reads
// and writes fail with ErrNodePartitioned until Heal.
func (r *RingDB) Partition(names ...string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, n := range names {
		if m := r.members[n]; m != nil {
			m.partitioned.Store(true)
		}
	}
}

// Heal restores every partitioned link, then redelivers each member's
// buffered hints — the writes and tombstones the partition swallowed — so
// the cluster converges without waiting for a SyncNode. Quorum reads mask
// any residual staleness in the meantime (any R−W+1 responders include a
// complete replica).
func (r *RingDB) Heal() {
	r.mu.RLock()
	names := make([]string, 0, len(r.members))
	for n, m := range r.members {
		m.partitioned.Store(false)
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, n := range names {
		_, _ = r.drainHints(n) // best effort; SyncNode is the backstop
	}
}

// SetDiskFull toggles write rejection on a member — the observable shape
// of a full WAL volume: appends fail, reads keep serving what landed.
func (r *RingDB) SetDiskFull(name string, full bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if m := r.members[name]; m != nil {
		m.diskFull.Store(full)
	}
}

// Join adds a new member: it enters the ring warming (so routed writes
// start landing on it at once), pulls its owned history from the existing
// members, then joins read coverage.
func (r *RingDB) Join(name string) (HandoffStats, error) {
	r.mu.Lock()
	if _, dup := r.members[name]; dup {
		r.mu.Unlock()
		return HandoffStats{}, fmt.Errorf("cluster: join: member %q already present", name)
	}
	db, err := r.open(name)
	if err != nil {
		r.mu.Unlock()
		return HandoffStats{}, fmt.Errorf("cluster: join %s: %w", name, err)
	}
	m := &Member{name: name}
	m.warming.Store(true)
	m.db.Store(db)
	r.members[name] = m
	r.ring = r.ring.WithNode(name)
	r.scatter.SetReplica(name, m)
	r.topoGen.Add(1)
	r.mu.Unlock()
	return r.SyncNode(name)
}

// Leave removes a member gracefully: ownership moves to the surviving
// ring first, the successors pull what only the leaver held (it still
// answers as a data source during the sync), and only then does it close.
func (r *RingDB) Leave(name string) (HandoffStats, error) {
	r.mu.Lock()
	m := r.members[name]
	if m == nil {
		r.mu.Unlock()
		return HandoffStats{}, fmt.Errorf("cluster: leave: no member %q", name)
	}
	if r.ring.Len() <= r.R {
		r.mu.Unlock()
		return HandoffStats{}, fmt.Errorf("cluster: leave would shrink below replication factor %d", r.R)
	}
	r.ring = r.ring.WithoutNode(name)
	r.scatter.RemoveReplica(name)
	r.topoGen.Add(1)
	successors := r.ring.Nodes()
	r.mu.Unlock()

	// New owners of the departed ranges pull their history while the leaver
	// is still queryable.
	var total HandoffStats
	for _, succ := range successors {
		st, err := r.SyncNode(succ)
		if err != nil {
			return total, fmt.Errorf("cluster: leave %s: sync %s: %w", name, succ, err)
		}
		total.add(st)
	}

	r.mu.Lock()
	delete(r.members, name)
	r.mu.Unlock()
	db := m.db.Swap(nil)
	if db != nil {
		return total, db.Close()
	}
	return total, nil
}
