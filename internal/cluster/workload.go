package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/slurmsim"
)

// WorkloadGen submits synthetic jobs with realistic structure: Poisson
// arrivals calibrated to a jobs/day rate (the paper reports ~20k/day on
// Jean-Zay), log-normal durations (many short jobs, a long tail), a user
// and project population, and phase-shaped utilization profiles.
type WorkloadGen struct {
	Users      int
	Projects   int
	JobsPerDay float64
	// GPUJobFraction of submissions targets GPU partitions.
	GPUJobFraction float64
	// MedianDuration of jobs; the log-normal tail stretches well past it.
	MedianDuration time.Duration

	rng       *rand.Rand
	partCPU   []string
	partGPU   []string
	Submitted int
	Rejected  int
}

// NewWorkloadGen builds a generator over the scheduler's partitions.
func NewWorkloadGen(seed int64, users, projects int, jobsPerDay float64, cpuPartitions, gpuPartitions []string) *WorkloadGen {
	return &WorkloadGen{
		Users: users, Projects: projects, JobsPerDay: jobsPerDay,
		GPUJobFraction: 0.35, MedianDuration: 20 * time.Minute,
		rng: rand.New(rand.NewSource(seed)), partCPU: cpuPartitions, partGPU: gpuPartitions,
	}
}

// Tick submits the Poisson draw of jobs for a dt-long interval.
func (g *WorkloadGen) Tick(sched *slurmsim.Scheduler, dt time.Duration) int {
	rate := g.JobsPerDay / (24 * 3600) * dt.Seconds()
	n := g.poisson(rate)
	for i := 0; i < n; i++ {
		if _, err := sched.Submit(g.jobSpec()); err != nil {
			g.Rejected++
			continue
		}
		g.Submitted++
	}
	return n
}

// poisson draws from Poisson(lambda) by inversion (lambda is small per
// tick, so this stays cheap).
func (g *WorkloadGen) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= g.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 { // guard against pathological lambda
			return k
		}
	}
}

// jobSpec draws one synthetic job.
func (g *WorkloadGen) jobSpec() slurmsim.JobSpec {
	user := fmt.Sprintf("user%02d", g.rng.Intn(max(g.Users, 1)))
	project := fmt.Sprintf("proj%02d", g.rng.Intn(max(g.Projects, 1)))
	// Log-normal duration around the median, clamped to [30s, 24h].
	d := time.Duration(float64(g.MedianDuration) * math.Exp(g.rng.NormFloat64()*0.9))
	if d < 30*time.Second {
		d = 30 * time.Second
	}
	if d > 24*time.Hour {
		d = 24 * time.Hour
	}
	gpu := len(g.partGPU) > 0 && g.rng.Float64() < g.GPUJobFraction
	spec := slurmsim.JobSpec{
		Name:     fmt.Sprintf("job-%s", user),
		User:     user,
		Account:  project,
		Duration: d,
	}
	baseCPU := 0.35 + 0.6*g.rng.Float64()
	baseMem := 0.2 + 0.6*g.rng.Float64()
	// Phase profile: ramp-up for the first 2 minutes, then steady with a
	// small sinusoidal wobble (iterative solvers breathe).
	phase := g.rng.Float64() * 2 * math.Pi
	spec.CPUUtil = func(elapsed time.Duration) float64 {
		ramp := math.Min(1, elapsed.Seconds()/120)
		return clamp01(baseCPU * ramp * (1 + 0.1*math.Sin(elapsed.Seconds()/300+phase)))
	}
	spec.MemUtil = func(elapsed time.Duration) float64 {
		ramp := math.Min(1, elapsed.Seconds()/300)
		return clamp01(baseMem * ramp)
	}
	if gpu {
		spec.Partition = g.partGPU[g.rng.Intn(len(g.partGPU))]
		spec.CPUsPerNode = 4 + 4*g.rng.Intn(3)
		spec.MemPerNode = int64(32+32*g.rng.Intn(4)) << 30
		spec.GPUsPerNode = 1 << g.rng.Intn(3) // 1, 2 or 4
		gutil := 0.5 + 0.5*g.rng.Float64()
		spec.GPUUtil = func(elapsed time.Duration) float64 {
			ramp := math.Min(1, elapsed.Seconds()/60)
			return clamp01(gutil * ramp)
		}
	} else {
		spec.Partition = g.partCPU[g.rng.Intn(len(g.partCPU))]
		spec.CPUsPerNode = 4 << g.rng.Intn(4) // 4..32
		spec.MemPerNode = int64(8<<g.rng.Intn(4)) << 30
	}
	return spec
}

func clamp01(v float64) float64 { return math.Max(0, math.Min(1, v)) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
