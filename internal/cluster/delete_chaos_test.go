package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb"
)

// deleteIdx matches the chaos series with idx 000..009 — the slice every
// delete scenario tombstones.
func deleteIdx() *labels.Matcher {
	return labels.MustMatcher(labels.MatchRegexp, "idx", "00[0-9]")
}

// writeChaosLog drops a stats file into the chaos artifact dir so a red CI
// run uploads the tombstone/hint state alongside the WAL dirs.
func (e *chaosEnv) writeChaosLog(name, content string) {
	os.WriteFile(filepath.Join(e.dir, name), []byte(content), 0o644)
}

// TestTombstoneDeleteDuringPartition: an acked delete issued while one
// replica is partitioned must never resurrect. The partitioned member is
// read-gated (ErrNodeStale) until the tombstone reaches it through the
// hint drain at Heal, and the quorum read stays byte-exact to the oracle
// before, during and after — including once reads depend on the formerly
// partitioned member.
func TestTombstoneDeleteDuringPartition(t *testing.T) {
	e := newChaosEnv(t, 3, 3, 2, 40)
	e.run(0, 20)
	e.ring.Partition("node-2")

	out, err := e.ring.DeleteSeriesQuorum(deleteIdx())
	if err != nil {
		t.Fatalf("delete during partition should still reach quorum: %v", err)
	}
	e.oracle.DeleteSeries(deleteIdx())
	e.writeChaosLog("tombstone-stats.log", fmt.Sprintf("delete: %+v\nhints: %+v\n", out, e.ring.HintStats()))

	// Satellite check: the per-member outcome names exactly who applied and
	// who was skipped, and why.
	if out.Acks != 2 || out.Deleted != 10 {
		t.Fatalf("delete outcome %+v, want 2 acks deleting 10 series", out)
	}
	for _, mo := range out.Members {
		switch mo.Member {
		case "node-2":
			if !errors.Is(mo.Err, ErrNodePartitioned) {
				t.Fatalf("node-2 outcome %+v, want ErrNodePartitioned", mo)
			}
		default:
			if mo.Err != nil || mo.Count != 10 {
				t.Fatalf("%s outcome %+v, want 10 deleted", mo.Member, mo)
			}
		}
	}

	// The survivors answer byte-exactly, with the deleted series gone (the
	// partitioned member is unreachable and out of coverage anyway).
	e.assertByteExact()

	// Keep scraping through the partition (re-creating the deleted series
	// at later ticks), then heal: the drain applies the tombstone FIRST and
	// the missed samples second, replaying exactly the order the oracle saw.
	e.run(20, 30)
	e.ring.Heal()
	if st := e.ring.HintStats(); st.TombstonesDrained != 1 {
		t.Fatalf("hint stats %+v, want 1 tombstone drained at heal", st)
	}
	e.assertByteExact()

	// Round two with hinting disabled: now the tombstone CANNOT travel at
	// heal time, and the stale member must visibly gate itself — reachable,
	// but refusing reads — until the SyncNode tombstone union reaches it.
	e.ring.SetHintLimit(0)
	e.ring.Partition("node-2")
	if out, err := e.ring.DeleteSeriesQuorum(labels.MustMatcher(labels.MatchRegexp, "idx", "01[0-9]")); err != nil || out.Acks != 2 {
		t.Fatalf("second delete: %+v, %v", out, err)
	}
	e.oracle.DeleteSeries(labels.MustMatcher(labels.MatchRegexp, "idx", "01[0-9]"))
	e.ring.Heal()
	if _, err := e.ring.Member("node-2").SelectWithHints(model.SelectHints{}, matchAll()); !errors.Is(err, ErrNodeStale) {
		t.Fatalf("stale member read err = %v, want ErrNodeStale", err)
	}
	e.assertByteExact()

	sync, err := e.ring.SyncNode("node-2")
	if err != nil {
		t.Fatalf("sync stale member: %v", err)
	}
	if sync.TombstonesApplied != 1 {
		t.Fatalf("sync applied %d tombstones, want 1 (the missed delete)", sync.TombstonesApplied)
	}

	// Force reads to depend on the synced member: any resurrected series or
	// missed sample on node-2 becomes visible now.
	if err := e.ring.Kill("node-0"); err != nil {
		t.Fatalf("kill node-0: %v", err)
	}
	e.assertByteExact()
}

// TestTombstoneDeleteKillRejoin: the delete lands while a member is DEAD;
// its own WAL replay at rejoin resurrects the deleted series locally, and
// the buffered tombstone hint must kill them again before the member
// serves a single read. "An acked delete is never resurrected."
func TestTombstoneDeleteKillRejoin(t *testing.T) {
	e := newChaosEnv(t, 3, 3, 2, 40)
	e.run(0, 20)
	if err := e.ring.Kill("node-1"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if out, err := e.ring.DeleteSeriesQuorum(deleteIdx()); err != nil || out.Acks != 2 {
		t.Fatalf("delete with one node down: %+v, %v", out, err)
	}
	e.oracle.DeleteSeries(deleteIdx())
	e.run(20, 30)

	replay, sync, err := e.ring.Rejoin("node-1")
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	e.writeChaosLog("tombstone-stats.log",
		fmt.Sprintf("replay: %+v\nhandoff: %+v\nhints: %+v\n", replay, sync, e.ring.HintStats()))

	// The WAL really did resurrect the deleted window locally...
	if replay.Samples < 40*20 {
		t.Fatalf("WAL replay recovered %d samples, want >= %d", replay.Samples, 40*20)
	}
	// ...and the hint drain delivered the tombstone plus the missed ticks,
	// leaving nothing for the peer pull.
	if st := e.ring.HintStats(); st.TombstonesDrained != 1 {
		t.Fatalf("hint stats %+v, want 1 tombstone drained at rejoin", st)
	}
	if sync.SamplesApplied != 0 {
		t.Fatalf("peer pull applied %d samples, want 0 (hints covered the outage)", sync.SamplesApplied)
	}

	// Reads that depend on the rejoined member must not see the deleted
	// series come back.
	if err := e.ring.Kill("node-2"); err != nil {
		t.Fatalf("kill node-2: %v", err)
	}
	e.assertByteExact()
}

// TestTombstoneCoordinatorRestart: hints are coordinator memory and die
// with it — the durable tombstone logs in the members' WALs are what must
// carry the delete across a full restart. A member that slept through the
// delete rejoins a NEW coordinator, whose startup anti-entropy unions its
// peers' logs onto it before anything is read.
func TestTombstoneCoordinatorRestart(t *testing.T) {
	e := newChaosEnv(t, 3, 3, 2, 40)
	e.run(0, 20)
	if err := e.ring.Kill("node-1"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if out, err := e.ring.DeleteSeriesQuorum(deleteIdx()); err != nil || out.Acks != 2 {
		t.Fatalf("delete with one node down: %+v, %v", out, err)
	}
	e.oracle.DeleteSeries(deleteIdx())
	e.run(20, 25)

	// Coordinator crash: every in-memory hint is gone. Only the WALs and
	// their tombstone records survive.
	if err := e.ring.Close(); err != nil {
		t.Fatalf("close ring: %v", err)
	}
	open := func(name string) (*tsdb.DB, error) {
		opts := tsdb.DefaultOptions()
		opts.WALDir = filepath.Join(e.dir, "wal", name)
		return tsdb.Open(opts)
	}
	ring2, err := NewRingDB(3, 2, 0, open, names(3)...)
	if err != nil {
		t.Fatalf("reopen ring: %v", err)
	}
	defer ring2.Close()
	e.ring = ring2

	// node-1's own WAL replay resurrected the deleted window; the startup
	// tombstone union must have re-killed it from its peers' durable logs.
	db := ring2.Member("node-1").DB()
	if got := len(db.Tombstones()); got != 1 {
		t.Fatalf("node-1 holds %d tombstones after restart sync, want 1", got)
	}
	if got, err := db.SelectWithHints(model.SelectHints{}, deleteIdx()); err != nil || len(got) != 0 {
		t.Fatalf("deleted series resurrected on node-1 after restart: %d series, err %v", len(got), err)
	}
	// ...and the allocator resumed past the persisted max, so the next
	// delete gets a fresh sequence number.
	if out, err := ring2.DeleteSeriesQuorum(labels.MustMatcher(labels.MatchEqual, "idx", "010")); err != nil || out.Seq != 2 {
		t.Fatalf("post-restart delete outcome %+v (err %v), want seq 2", out, err)
	}
	e.oracle.DeleteSeries(labels.MustMatcher(labels.MatchEqual, "idx", "010"))
	e.assertByteExact()
}

// TestQuorumTruncateOutcomes: cluster-wide maintenance reports per-member
// outcomes instead of silently skipping the members it missed.
func TestQuorumTruncateOutcomes(t *testing.T) {
	e := newChaosEnv(t, 3, 3, 2, 40)
	e.run(0, 20)
	if err := e.ring.Kill("node-1"); err != nil {
		t.Fatalf("kill: %v", err)
	}

	dropped, outs := e.ring.Truncate(10 * 15000)
	if len(outs) != 3 {
		t.Fatalf("got %d member outcomes, want 3", len(outs))
	}
	for _, mo := range outs {
		if mo.Member == "node-1" {
			if !errors.Is(mo.Err, ErrNodeDown) {
				t.Fatalf("dead member outcome %+v, want ErrNodeDown", mo)
			}
			continue
		}
		// The two live replicas hold identical content, so each per-member
		// count equals the reported cluster-wide max.
		if mo.Err != nil || mo.Count != dropped {
			t.Fatalf("%s outcome %+v, want count %d", mo.Member, mo, dropped)
		}
	}
	e.oracle.Truncate(10 * 15000)
	e.assertByteExact()
}
