// WAL-backed handoff: the anti-entropy pass that brings a warming member
// up to date. A member that was down, newly joined, or partitioned has two
// recovery layers: its own WAL replay restores everything it ever acked
// (tsdb.Open does that before the member is visible), and this sync pulls
// the tail it missed from its peers. The pull is a plain scatter read —
// every reachable peer streams its copy of the member's owned series, the
// copies merge-dedup, and the member batch-appends the result. The tsdb
// batch appender skips out-of-order samples, so everything the member
// already holds is a silent no-op and only the missing suffix lands — and
// it lands through the member's own WAL, so handoff output is exactly as
// durable as scraped input. Running the sync twice is therefore free, and
// running it concurrently with live writes converges (late routed writes
// and the sync race benignly: both sides append the same values).
package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/labels"
	"repro/internal/lb"
	"repro/internal/model"
	"repro/internal/tsdb"
	"repro/internal/workpool"
)

// handoffBatchSize bounds one BatchAppend during sync, keeping the
// member's per-commit WAL records near scrape-sized.
const handoffBatchSize = 4096

// HandoffStats describes one anti-entropy pass.
type HandoffStats struct {
	// Peers is how many members served as sources.
	Peers int
	// SeriesScanned is the distinct series seen across sources.
	SeriesScanned int
	// SeriesOwned is how many of those the target owns on the current ring.
	SeriesOwned int
	// SamplesOffered is the sample total shipped to the target.
	SamplesOffered int
	// SamplesApplied is how many actually landed — the rest were already
	// present and skipped as out-of-order duplicates.
	SamplesApplied int
}

func (h *HandoffStats) add(o HandoffStats) {
	h.Peers += o.Peers
	h.SeriesScanned += o.SeriesScanned
	h.SeriesOwned += o.SeriesOwned
	h.SamplesOffered += o.SamplesOffered
	h.SamplesApplied += o.SamplesApplied
}

// matchAll matches every series (every label set matches __name__ =~ ".*",
// including a missing name).
func matchAll() *labels.Matcher {
	return labels.MustMatcher(labels.MatchRegexp, labels.MetricName, ".*")
}

// SyncNode runs the handoff for one member: pull each peer's full series
// dump, keep the series the member owns under the current ring, and
// batch-append them. On success the member leaves warming state and counts
// toward read coverage again. The target must be up; peers that are down,
// partitioned or themselves warming are skipped as sources (quorum
// placement guarantees the reachable peers jointly hold every acked
// sample whenever reads are answerable at all).
func (r *RingDB) SyncNode(name string) (HandoffStats, error) {
	ring, members := r.snapshot()
	target := members[name]
	if target == nil {
		return HandoffStats{}, fmt.Errorf("cluster: sync: no member %q", name)
	}
	if target.db.Load() == nil {
		return HandoffStats{}, fmt.Errorf("cluster: sync: member %q is down", name)
	}

	var peers []*Member
	for _, n := range sortedNames(members) {
		m := members[n]
		if n == name || m.warming.Load() {
			continue
		}
		if _, err := m.reachable(); err != nil {
			continue
		}
		peers = append(peers, m)
	}

	stats := HandoffStats{Peers: len(peers)}
	hints := model.SelectHints{Start: math.MinInt64, End: math.MaxInt64}
	dumps := make([][]model.Series, len(peers))
	workpool.Do(len(peers), 0, func(i int) {
		// A peer dropping out mid-sync just contributes nothing; the merged
		// remainder still converges and the next sync finishes the job.
		db := peers[i].DB()
		if db == nil {
			return
		}
		if series, err := db.SelectWithHints(hints, matchAll()); err == nil {
			dumps[i] = series
		}
	})

	merged := lb.MergeReplicaSeries(dumps)
	stats.SeriesScanned = len(merged)

	var batch []tsdb.BatchSample
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		n, err := target.BatchAppend(batch)
		if err != nil {
			return fmt.Errorf("cluster: sync %s: %w", name, err)
		}
		stats.SamplesOffered += len(batch)
		stats.SamplesApplied += n
		batch = batch[:0]
		return nil
	}
	for _, s := range merged {
		owned := false
		for _, o := range ring.Owners(s.Labels.Hash(), r.R) {
			if o == name {
				owned = true
				break
			}
		}
		if !owned {
			continue
		}
		stats.SeriesOwned++
		for _, smp := range s.Samples {
			batch = append(batch, tsdb.BatchSample{Lset: s.Labels, T: smp.T, V: smp.V})
			if len(batch) >= handoffBatchSize {
				if err := flush(); err != nil {
					return stats, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return stats, err
	}

	target.warming.Store(false)
	r.topoGen.Add(1)
	return stats, nil
}

func sortedNames(members map[string]*Member) []string {
	names := make([]string, 0, len(members))
	for n := range members {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
