// WAL-backed handoff: the anti-entropy pass that brings a warming member
// up to date. A member that was down, newly joined, or partitioned has two
// recovery layers: its own WAL replay restores everything it ever acked
// (tsdb.Open does that before the member is visible), and this sync pulls
// the tail it missed from its peers. The pull is a plain scatter read —
// every reachable peer streams its copy of the member's owned series, the
// copies merge-dedup, and the member batch-appends the result. The tsdb
// batch appender skips out-of-order samples, so everything the member
// already holds is a silent no-op and only the missing suffix lands — and
// it lands through the member's own WAL, so handoff output is exactly as
// durable as scraped input. Running the sync twice is therefore free, and
// running it concurrently with live writes converges (late routed writes
// and the sync race benignly: both sides append the same values).
package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/labels"
	"repro/internal/lb"
	"repro/internal/model"
	"repro/internal/tsdb"
	"repro/internal/workpool"
)

// handoffBatchSize bounds one BatchAppend during sync, keeping the
// member's per-commit WAL records near scrape-sized.
const handoffBatchSize = 4096

// HandoffStats describes one anti-entropy pass.
type HandoffStats struct {
	// Peers is how many members served as sources.
	Peers int
	// SeriesScanned is the distinct series seen across sources.
	SeriesScanned int
	// SeriesOwned is how many of those the target owns on the current ring.
	SeriesOwned int
	// SamplesOffered is the sample total shipped to the target.
	SamplesOffered int
	// SamplesApplied is how many actually landed — the rest were already
	// present and skipped as out-of-order duplicates.
	SamplesApplied int
	// HintSamples / HintTombstones count buffered hints drained into the
	// target by this sync's opening hint drain (hints.go). When the hint
	// queue covered the whole outage, HintSamples carries the recovery and
	// SamplesApplied is zero — the peer pull found nothing left to fill.
	HintSamples    int
	HintTombstones int
	// TombstonesApplied counts delete tombstones the tombstone union copied
	// onto the target from its peers' durable logs.
	TombstonesApplied int
}

func (h *HandoffStats) add(o HandoffStats) {
	h.Peers += o.Peers
	h.SeriesScanned += o.SeriesScanned
	h.SeriesOwned += o.SeriesOwned
	h.SamplesOffered += o.SamplesOffered
	h.SamplesApplied += o.SamplesApplied
	h.HintSamples += o.HintSamples
	h.HintTombstones += o.HintTombstones
	h.TombstonesApplied += o.TombstonesApplied
}

// matchAll matches every series (every label set matches __name__ =~ ".*",
// including a missing name).
func matchAll() *labels.Matcher {
	return labels.MustMatcher(labels.MatchRegexp, labels.MetricName, ".*")
}

// SyncNode runs the handoff for one member in three passes. First it
// drains the member's buffered hints (hints.go) — when the hint queue
// covered the whole outage that alone restores the member. Second it
// unions every reachable peer's durable tombstone log onto the target, so
// acked deletes the member slept through can never resurrect from it (the
// logs of tombstone-stale peers are themselves trustworthy — it is their
// series data, not their delete history, that may be behind). Third it
// pulls each usable peer's full series dump, keeps the series the member
// owns under the current ring, and batch-appends them; peers that are
// down, partitioned, warming or tombstone-stale are excluded as data
// sources (a stale peer's dump could carry deleted series back in). On
// success the member's warming, tombstone-stale and lossy-hint gates all
// clear and it counts toward read coverage again.
//
// The target must be up. When other members exist but none is usable as a
// data source, SyncNode fails instead of silently clearing the gates on an
// unproven member.
func (r *RingDB) SyncNode(name string) (HandoffStats, error) {
	ring, members := r.snapshot()
	target := members[name]
	if target == nil {
		return HandoffStats{}, fmt.Errorf("cluster: sync: no member %q", name)
	}
	if target.db.Load() == nil {
		return HandoffStats{}, fmt.Errorf("cluster: sync: member %q is down", name)
	}

	stats := HandoffStats{}
	// Pass 1: redeliver buffered hints. Best effort — a failed drain
	// re-queues the remainder and the peer pull below fills the gap.
	ds, _ := r.drainHints(name)
	stats.HintSamples = ds.SamplesApplied
	stats.HintTombstones = ds.Tombstones

	// Pass 2: tombstone union from every reachable peer's durable log. The
	// union writes through the target's own WAL (tsdb.ApplyTombstone), so a
	// synced delete is as durable as an acked one.
	var tombSources []*tsdb.DB
	var peers []*Member
	candidates := 0
	for _, n := range sortedNames(members) {
		m := members[n]
		if n == name {
			continue
		}
		candidates++
		db, err := m.reachable()
		if err != nil {
			continue
		}
		tombSources = append(tombSources, db)
		if m.warming.Load() || m.tombStale.Load() {
			continue
		}
		peers = append(peers, m)
	}
	applied, err := syncTombstones(target.db.Load(), tombSources...)
	stats.TombstonesApplied = applied
	if err != nil {
		return stats, fmt.Errorf("cluster: sync %s: tombstone union: %w", name, err)
	}

	if candidates > 0 && len(peers) == 0 {
		return stats, fmt.Errorf("cluster: sync %s: no usable sources (%d candidates all down, partitioned, warming or tombstone-stale)", name, candidates)
	}

	stats.Peers = len(peers)
	hints := model.SelectHints{Start: math.MinInt64, End: math.MaxInt64}
	dumps := make([][]model.Series, len(peers))
	workpool.Do(len(peers), 0, func(i int) {
		// A peer dropping out mid-sync just contributes nothing; the merged
		// remainder still converges and the next sync finishes the job.
		db := peers[i].DB()
		if db == nil {
			return
		}
		if series, err := db.SelectWithHints(hints, matchAll()); err == nil {
			dumps[i] = series
		}
	})

	merged := lb.MergeReplicaSeries(dumps)
	stats.SeriesScanned = len(merged)

	var batch []tsdb.BatchSample
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		n, err := target.BatchAppend(batch)
		if err != nil {
			return fmt.Errorf("cluster: sync %s: %w", name, err)
		}
		stats.SamplesOffered += len(batch)
		stats.SamplesApplied += n
		batch = batch[:0]
		return nil
	}
	for _, s := range merged {
		owned := false
		for _, o := range ring.Owners(s.Labels.Hash(), r.R) {
			if o == name {
				owned = true
				break
			}
		}
		if !owned {
			continue
		}
		stats.SeriesOwned++
		for _, smp := range s.Samples {
			batch = append(batch, tsdb.BatchSample{Lset: s.Labels, T: smp.T, V: smp.V})
			if len(batch) >= handoffBatchSize {
				if err := flush(); err != nil {
					return stats, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return stats, err
	}

	// The full pull proved every hole filled: clear all three read gates,
	// including the lossy-hint marker a bounded queue may have left behind.
	r.clearHintLossy(name)
	target.tombStale.Store(false)
	target.warming.Store(false)
	r.topoGen.Add(1)
	return stats, nil
}

func sortedNames(members map[string]*Member) []string {
	names := make([]string, 0, len(members))
	for n := range members {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
