package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/lb"
	"repro/internal/model"
	"repro/internal/promql"
	"repro/internal/tsdb"
)

// chaosDir returns the directory holding a test's per-node WAL dirs and
// logs. Under CHAOS_ARTIFACT_DIR (set by the CI cluster-chaos job) the
// directory survives the test so a red run uploads it as an artifact;
// otherwise it is a normal temp dir. Unique per invocation so -count=2
// reruns don't collide.
func chaosDir(t *testing.T) string {
	base := os.Getenv("CHAOS_ARTIFACT_DIR")
	if base == "" {
		return t.TempDir()
	}
	if err := os.MkdirAll(base, 0o755); err != nil {
		t.Fatalf("chaos artifact dir: %v", err)
	}
	dir, err := os.MkdirTemp(base, strings.ReplaceAll(t.Name(), "/", "_")+"-")
	if err != nil {
		t.Fatalf("chaos artifact dir: %v", err)
	}
	return dir
}

// chaosEnv drives a replicated ring and a single-node oracle through the
// same deterministic workload. Every batch the ring ACKS is also applied
// to the oracle, so at any quiet point the quorum read over the cluster
// must be byte-identical to the oracle — the cluster-level version of the
// PR 3/5 crash-oracle discipline.
type chaosEnv struct {
	t      *testing.T
	dir    string
	ring   *RingDB
	oracle *tsdb.DB
	series []labels.Labels
}

func newChaosEnv(t *testing.T, nodes, rf, w, nseries int) *chaosEnv {
	t.Helper()
	dir := chaosDir(t)
	open := func(name string) (*tsdb.DB, error) {
		opts := tsdb.DefaultOptions()
		opts.WALDir = filepath.Join(dir, "wal", name)
		return tsdb.Open(opts)
	}
	ring, err := NewRingDB(rf, w, 0, open, names(nodes)...)
	if err != nil {
		t.Fatalf("NewRingDB: %v", err)
	}
	e := &chaosEnv{t: t, dir: dir, ring: ring, oracle: tsdb.MustOpen(tsdb.DefaultOptions())}
	t.Cleanup(func() {
		ring.Close()
		e.oracle.Close()
	})
	for i := 0; i < nseries; i++ {
		e.series = append(e.series, labels.FromStrings(
			labels.MetricName, "chaos_metric",
			"idx", fmt.Sprintf("%03d", i),
			"cluster", "chaos"))
	}
	return e
}

// batch builds the deterministic scrape payload of one tick: every series
// gets one sample at t=tick*15000 with a value derived from (series, tick).
func (e *chaosEnv) batch(tick int) []tsdb.BatchSample {
	out := make([]tsdb.BatchSample, 0, len(e.series))
	for i, ls := range e.series {
		out = append(out, tsdb.BatchSample{
			Lset: ls,
			T:    int64(tick) * 15000,
			V:    float64(i)*1000 + float64(tick),
		})
	}
	return out
}

// commit routes one tick through the quorum path; on ack the oracle gets
// the identical batch.
func (e *chaosEnv) commit(tick int) error {
	b := e.ring.NewBatch()
	batch := e.batch(tick)
	for _, s := range batch {
		b.Add(s.Lset, s.T, s.V)
	}
	if _, err := b.Commit(); err != nil {
		return err
	}
	if _, err := e.oracle.BatchAppend(batch); err != nil {
		e.t.Fatalf("oracle append tick %d: %v", tick, err)
	}
	return nil
}

// run commits ticks [from, to) and requires every one to reach quorum.
func (e *chaosEnv) run(from, to int) {
	e.t.Helper()
	for tick := from; tick < to; tick++ {
		if err := e.commit(tick); err != nil {
			e.t.Fatalf("tick %d failed quorum: %v", tick, err)
		}
	}
}

// mustFail commits ticks [from, to) and requires every one to MISS quorum
// (the oracle sees nothing — nothing was acked).
func (e *chaosEnv) mustFail(from, to int) {
	e.t.Helper()
	for tick := from; tick < to; tick++ {
		err := e.commit(tick)
		var qerr *QuorumWriteError
		if !errors.As(err, &qerr) {
			e.t.Fatalf("tick %d should have missed quorum, got %v", tick, err)
		}
	}
}

func dumpAll(t *testing.T, sel func(model.SelectHints, ...*labels.Matcher) ([]model.Series, error)) []model.Series {
	t.Helper()
	out, err := sel(model.SelectHints{Start: math.MinInt64, End: math.MaxInt64}, matchAll())
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	return out
}

// assertByteExact compares the quorum read over the cluster against the
// oracle, series by series and sample by sample.
func (e *chaosEnv) assertByteExact() {
	e.t.Helper()
	got := dumpAll(e.t, e.ring.Scatter().SelectWithHints)
	want := dumpAll(e.t, e.oracle.SelectWithHints)
	compareDumps(e.t, "cluster", got, want)
}

// assertCoversOracle checks the weaker invariant that holds even while a
// write quorum is down: every acked sample (everything the oracle holds)
// is present in the quorum read, though unacked partial writes may appear
// alongside.
func (e *chaosEnv) assertCoversOracle() {
	e.t.Helper()
	got := dumpAll(e.t, e.ring.Scatter().SelectWithHints)
	byLabels := map[string][]model.Sample{}
	for _, s := range got {
		byLabels[s.Labels.String()] = s.Samples
	}
	for _, w := range dumpAll(e.t, e.oracle.SelectWithHints) {
		have := byLabels[w.Labels.String()]
		idx := map[int64]float64{}
		for _, smp := range have {
			idx[smp.T] = smp.V
		}
		for _, smp := range w.Samples {
			if v, ok := idx[smp.T]; !ok || v != smp.V {
				e.t.Fatalf("acked sample lost: %v t=%d v=%v (cluster has %v)",
					w.Labels, smp.T, smp.V, have)
			}
		}
	}
}

func compareDumps(t *testing.T, what string, got, want []model.Series) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d series, oracle has %d", what, len(got), len(want))
	}
	for i := range want {
		if !got[i].Labels.Equal(want[i].Labels) {
			t.Fatalf("%s: series %d is %v, oracle has %v", what, i, got[i].Labels, want[i].Labels)
		}
		if len(got[i].Samples) != len(want[i].Samples) {
			t.Fatalf("%s: %v has %d samples, oracle has %d",
				what, got[i].Labels, len(got[i].Samples), len(want[i].Samples))
		}
		for j := range want[i].Samples {
			if got[i].Samples[j] != want[i].Samples[j] {
				t.Fatalf("%s: %v sample %d is %+v, oracle has %+v",
					what, got[i].Labels, j, got[i].Samples[j], want[i].Samples[j])
			}
		}
	}
}

// TestChaosKillNodeMidScrape: R=3/W=2 on three nodes — killing ANY one
// node mid-scrape loses zero acked samples: every subsequent commit still
// reaches quorum and the quorum read stays byte-identical to the oracle.
func TestChaosKillNodeMidScrape(t *testing.T) {
	for _, victim := range names(3) {
		t.Run(victim, func(t *testing.T) {
			e := newChaosEnv(t, 3, 3, 2, 40)
			e.run(0, 20)
			if err := e.ring.Kill(victim); err != nil {
				t.Fatalf("kill %s: %v", victim, err)
			}
			e.run(20, 50)
			e.assertByteExact()
		})
	}
}

// TestHandoffRejoinRecovery: a killed node revives from its own WAL
// (replay stats prove it), pulls the scrapes it missed through the
// anti-entropy sync, and afterwards holds a byte-exact copy of everything
// it owns — proven the hard way by killing a DIFFERENT node and requiring
// the quorum read (which now depends on the revived node) to still match
// the oracle.
func TestHandoffRejoinRecovery(t *testing.T) {
	e := newChaosEnv(t, 3, 3, 2, 40)
	e.run(0, 20)
	if err := e.ring.Kill("node-1"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	e.run(20, 35)

	replay, sync, err := e.ring.Rejoin("node-1")
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	logPath := filepath.Join(e.dir, "replay-stats.log")
	os.WriteFile(logPath, []byte(fmt.Sprintf("replay: %+v\nhandoff: %+v\n", replay, sync)), 0o644)

	// The WAL brought back everything node-1 acked before the kill...
	if replay.Samples < 40*20 {
		t.Fatalf("WAL replay recovered %d samples, want >= %d (ticks 0-19)", replay.Samples, 40*20)
	}
	if replay.Series < 40 {
		t.Fatalf("WAL replay registered %d series, want >= 40", replay.Series)
	}
	// ...and hinted handoff delivered exactly the missed window (ticks
	// 20-34): the coordinator buffered the dead node's share of every
	// commit and drained it at Revive, so the full peer-window pull inside
	// SyncNode had nothing left to fill.
	hs := e.ring.HintStats()
	if want := uint64(40 * 15); hs.SamplesDrained != want {
		t.Fatalf("hint drain delivered %d samples, want %d (the missed ticks)", hs.SamplesDrained, want)
	}
	if sync.SamplesApplied != 0 {
		t.Fatalf("peer pull applied %d samples, want 0 (hints covered the whole outage)", sync.SamplesApplied)
	}
	if sync.SeriesOwned != 40 {
		t.Fatalf("handoff owned %d series, want 40 (R=N means every node owns all)", sync.SeriesOwned)
	}

	e.run(35, 50)
	// Force reads to depend on the revived node: without node-2, coverage
	// is node-0 + node-1, so any hole in node-1's recovery becomes visible.
	if err := e.ring.Kill("node-2"); err != nil {
		t.Fatalf("kill node-2: %v", err)
	}
	e.assertByteExact()

	// And node-1's own copy is byte-exact on its own.
	node1 := dumpAll(t, e.ring.Member("node-1").DB().SelectWithHints)
	compareDumps(t, "revived node-1", node1, dumpAll(t, e.oracle.SelectWithHints))
}

// TestQuorumPartitionHealRetry: one partitioned node is invisible — writes
// keep acking, reads stay exact. Partitioning a second node breaks both
// quorums: commits fail with QuorumWriteError, reads fail with coverage
// errors instead of silently dropping acked data. After the partition
// heals, the ingest layer re-sends the unacked window (retry is safe:
// replicas skip what they already hold) and the cluster is byte-exact
// again.
func TestQuorumPartitionHealRetry(t *testing.T) {
	e := newChaosEnv(t, 3, 3, 2, 40)
	e.run(0, 20)

	e.ring.Partition("node-2")
	e.run(20, 30)
	e.assertByteExact()

	e.ring.Partition("node-1")
	e.mustFail(30, 35)
	var qerr *lb.ErrQuorumUnavailable
	if _, err := e.ring.Scatter().Select(0, math.MaxInt64, matchAll()); !errors.As(err, &qerr) {
		t.Fatalf("read with one reachable replica should lose coverage, got %v", err)
	}

	e.ring.Heal()
	// Re-send the unacked window, then continue; the oracle gets the
	// batches only now, on ack.
	e.run(30, 50)
	e.assertByteExact()
}

// TestChaosDiskFullQuorum: a node whose WAL volume fills stops acking
// writes but keeps serving reads. One full disk costs nothing (W=2 of the
// other two); a full disk plus a dead node breaks the write quorum while
// reads still answer — the full-disk node counts toward read coverage.
func TestChaosDiskFullQuorum(t *testing.T) {
	e := newChaosEnv(t, 3, 3, 2, 40)
	e.run(0, 20)

	e.ring.SetDiskFull("node-0", true)
	e.run(20, 30)
	e.assertByteExact()

	if err := e.ring.Kill("node-1"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	e.mustFail(30, 35)
	// Reads still answer: node-0 (disk full, readable) + node-2 cover.
	// They may surface the unacked samples node-2 applied before its group
	// missed quorum — quorum reads promise no ACKED loss, not invisibility
	// of partial writes — so here the check is containment, and byte
	// exactness is re-established once the window is retried below.
	e.assertCoversOracle()

	// Space reclaimed + node revived: retry the unacked window, converge.
	e.ring.SetDiskFull("node-0", false)
	if _, _, err := e.ring.Rejoin("node-1"); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	e.run(30, 50)
	e.assertByteExact()
}

// TestQuorumCommitIdempotent: re-sending an already-acked batch applies
// zero samples and no error — the property every retry and handoff path
// leans on.
func TestQuorumCommitIdempotent(t *testing.T) {
	e := newChaosEnv(t, 3, 3, 2, 10)
	e.run(0, 5)
	b := e.ring.NewBatch()
	for _, s := range e.batch(4) {
		b.Add(s.Lset, s.T, s.V)
	}
	n, err := b.Commit()
	if err != nil {
		t.Fatalf("re-commit: %v", err)
	}
	if n != 0 {
		t.Fatalf("re-commit applied %d samples, want 0 (all duplicates)", n)
	}
	e.assertByteExact()
}

// TestHandoffJoinLeave: a joining node enters the ring warming, pulls its
// owned history, and serves; a leaving node hands its ranges to the
// survivors before closing. Reads stay byte-exact across both topology
// changes.
func TestHandoffJoinLeave(t *testing.T) {
	e := newChaosEnv(t, 3, 2, 2, 40)
	e.run(0, 20)

	sync, err := e.ring.Join("node-3")
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if sync.SeriesOwned == 0 || sync.SamplesApplied == 0 {
		t.Fatalf("join handoff moved nothing: %+v (the ring should remap ~1/4 of series)", sync)
	}
	if got := e.ring.MemberNames(); len(got) != 4 {
		t.Fatalf("membership after join: %v", got)
	}
	e.run(20, 35)
	e.assertByteExact()

	if _, err := e.ring.Leave("node-0"); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if got := e.ring.MemberNames(); len(got) != 3 || got[0] != "node-1" {
		t.Fatalf("membership after leave: %v", got)
	}
	e.run(35, 50)
	e.assertByteExact()
}

// TestChaosClusterSim runs the whole simulated platform (scrape, rules,
// updater, query cache) on a 3-node ring with R=3/W=2, kills a storage
// node mid-run, and checks the stack keeps operating: scrapes ack, PromQL
// answers from the surviving quorum, and the node rejoins through WAL
// replay plus handoff without any subsystem error.
func TestChaosClusterSim(t *testing.T) {
	opts := DefaultOptions()
	opts.ClusterNodes = 3
	opts.ReplicationFactor = 3
	opts.WriteQuorum = 2
	opts.WALDir = filepath.Join(chaosDir(t), "simwal")
	sim, err := New(smallTopo(), opts, 4, 2, 1500)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sim.Ring.Close() })
	ctx := context.Background()

	sim.RunFor(ctx, 20*time.Minute)
	if err := sim.Ring.Kill("tsdb-1"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	sim.RunFor(ctx, 20*time.Minute)

	// Quorum reads keep answering with one replica down.
	eng, q := sim.Engine()
	v, err := eng.Instant(q, `count(ceems_ipmi_dcmi_current_watts)`, sim.Now())
	if err != nil {
		t.Fatalf("query with one node down: %v", err)
	}
	if vec := v.(promql.Vector); len(vec) != 1 || int(vec[0].V) != 7 {
		t.Fatalf("ipmi series with one node down = %+v, want all 7 nodes", vec)
	}

	replay, sync, err := sim.Ring.Rejoin("tsdb-1")
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if replay.Samples == 0 {
		t.Fatal("rejoin replayed no WAL samples; node was scraped for 20 minutes before the kill")
	}
	if sync.SamplesApplied+sync.HintSamples == 0 && sim.Ring.HintStats().SamplesDrained == 0 {
		t.Fatal("neither handoff nor hint drain recovered anything; node missed 20 minutes of scrapes")
	}
	sim.RunFor(ctx, 10*time.Minute)
	if err := sim.FinalizeUpdate(ctx); err != nil {
		t.Fatalf("final update: %v", err)
	}
	for _, e := range sim.Errors {
		t.Errorf("subsystem error: %s", e)
	}
}
