package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/expofmt"
	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/remotewrite"
	"repro/internal/scrape"
	"repro/internal/tsdb"
)

// TestRemoteWriteRingIngest pushes a framed remote-write stream through the
// HTTP receiver into the replicated ring: every frame commits with W-quorum
// acks, the samples are quorum-readable, and a full resend of the stream is
// idempotent thanks to the members' out-of-order windows.
func TestRemoteWriteRingIngest(t *testing.T) {
	const window = int64(300_000)
	dir := t.TempDir()
	open := func(name string) (*tsdb.DB, error) {
		opts := tsdb.DefaultOptions()
		opts.WALDir = filepath.Join(dir, "wal", name)
		opts.OutOfOrderWindow = window
		return tsdb.Open(opts)
	}
	ring, err := NewRingDB(3, 2, 0, open, names(5)...)
	if err != nil {
		t.Fatalf("NewRingDB: %v", err)
	}
	defer ring.Close()
	if got := ring.OutOfOrderWindow(); got != window {
		t.Fatalf("ring window = %d, want %d", got, window)
	}

	rcv := &remotewrite.Receiver{NewBatch: func() scrape.Batch { return ring.NewBatch() }}

	fam := &expofmt.Family{Name: "ring_pushed", Type: expofmt.TypeGauge}
	const nSeries, nTicks = 12, 8
	for s := 0; s < nSeries; s++ {
		for tick := 0; tick < nTicks; tick++ {
			fam.Metrics = append(fam.Metrics, expofmt.Metric{
				Labels: labels.FromStrings(
					labels.MetricName, "ring_pushed",
					"idx", fmt.Sprintf("%03d", s)),
				Value: float64(tick), TS: int64(1000 * (tick + 1)),
			})
		}
	}
	var buf bytes.Buffer
	if err := remotewrite.NewEncoder(&buf, true).WriteBatch([]*expofmt.Family{fam}); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()

	push := func() *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		rcv.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/api/v1/write", bytes.NewReader(body)))
		return w
	}
	if w := push(); w.Code != http.StatusOK {
		t.Fatalf("ring push: %d %s", w.Code, w.Body)
	}

	readAll := func() []model.Series {
		series, err := ring.Scatter().SelectWithHints(
			model.SelectHints{Start: 0, End: 1 << 60},
			labels.MustMatcher(labels.MatchEqual, labels.MetricName, "ring_pushed"))
		if err != nil {
			t.Fatalf("quorum read: %v", err)
		}
		return series
	}
	first := readAll()
	if len(first) != nSeries {
		t.Fatalf("quorum read found %d series, want %d", len(first), nSeries)
	}
	for _, s := range first {
		if len(s.Samples) != nTicks {
			t.Fatalf("series %s has %d samples, want %d", s.Labels, len(s.Samples), nTicks)
		}
	}

	// The agent times out and resends the whole stream: the ring must ACK
	// it (it IS durable) without duplicating anything.
	if w := push(); w.Code != http.StatusOK {
		t.Fatalf("ring resend: %d %s", w.Code, w.Body)
	}
	second := readAll()
	if len(second) != nSeries {
		t.Fatalf("post-resend read found %d series, want %d", len(second), nSeries)
	}
	for i, s := range second {
		if len(s.Samples) != len(first[i].Samples) {
			t.Fatalf("resend changed series %s: %d -> %d samples",
				s.Labels, len(first[i].Samples), len(s.Samples))
		}
		for j := range s.Samples {
			if s.Samples[j] != first[i].Samples[j] {
				t.Fatalf("resend altered sample %d of %s", j, s.Labels)
			}
		}
	}

	// A push with one replica down still reaches W-quorum and lands.
	if err := ring.Kill(ring.MemberNames()[0]); err != nil {
		t.Fatal(err)
	}
	fam2 := &expofmt.Family{Name: "ring_pushed", Type: expofmt.TypeGauge,
		Metrics: []expofmt.Metric{{
			Labels: labels.FromStrings(labels.MetricName, "ring_pushed", "idx", "000"),
			Value:  42, TS: int64(1000 * (nTicks + 1)),
		}}}
	buf.Reset()
	if err := remotewrite.NewEncoder(&buf, false).WriteBatch([]*expofmt.Family{fam2}); err != nil {
		t.Fatal(err)
	}
	body = buf.Bytes()
	if w := push(); w.Code != http.StatusOK {
		t.Fatalf("degraded push: %d %s", w.Code, w.Body)
	}
	for _, s := range readAll() {
		if s.Labels.Get("idx") == "000" && len(s.Samples) != nTicks+1 {
			t.Fatalf("degraded push did not land: %d samples", len(s.Samples))
		}
	}
}
