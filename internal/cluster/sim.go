package cluster

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/emissions"
	"repro/internal/exporter"
	"repro/internal/gpusim"
	"repro/internal/hw"
	"repro/internal/labels"
	"repro/internal/lb"
	"repro/internal/model"
	"repro/internal/promql"
	"repro/internal/querycache"
	"repro/internal/relstore"
	"repro/internal/resourcemanager"
	"repro/internal/rules"
	"repro/internal/rules/ceemsrules"
	"repro/internal/scrape"
	"repro/internal/slurmsim"
	"repro/internal/telemetry"
	"repro/internal/thanos"
	"repro/internal/tsdb"
)

// simTime wraps the simulated wall clock.
type simTime struct{ t time.Time }

// Options configure the simulation cadence.
type Options struct {
	Start time.Time
	// ScrapeInterval is the base tick; every subsystem cadence is a
	// multiple of it.
	ScrapeInterval time.Duration
	RuleInterval   time.Duration
	UpdateInterval time.Duration
	ShipInterval   time.Duration
	// ShortUnitCutoff for TSDB cardinality cleanup.
	ShortUnitCutoff time.Duration
	// Zone for emission factors; Factor may be nil for OWID static.
	Zone   string
	Factor emissions.Provider
	// HeadRetention of the hot TSDB after block shipping.
	HeadRetention time.Duration
	// StoreDir persists the API store and Thanos blocks; "" keeps all in
	// memory.
	StoreDir string
	// WALDir makes the hot TSDB head durable: shards journal appends to
	// per-shard write-ahead logs under this directory and a restarted sim
	// replays them in parallel. "" keeps the head memory-only.
	WALDir string
	// WALCompression writes new WAL files in format v2 (Gorilla-encoded
	// samples, block-compressed series records); false keeps raw v1
	// records. Existing files of either format always replay.
	WALCompression bool
	// ClusterNodes > 1 replaces the single hot TSDB with a consistent-hash
	// ring of that many tsdb nodes: scrapes route through quorum batch
	// appends, queries scatter-gather across replicas, and the thanos
	// sidecar/cold tier is disabled (retention prunes each node instead).
	// Each node journals to WALDir/<node> when WALDir is set.
	ClusterNodes int
	// ReplicationFactor is the ring's R (copies per series); 0 picks
	// min(3, ClusterNodes). Only used when ClusterNodes > 1.
	ReplicationFactor int
	// WriteQuorum is the ring's W (acks before a commit returns); 0 picks
	// the majority R/2+1. Reads need R−W+1 replicas per owner group.
	WriteQuorum int
	// VirtualNodes per member on the ring; 0 picks the default.
	VirtualNodes int
	// HintLimit bounds the hinted-handoff queue per dead/partitioned
	// member (oldest hints are dropped past it); 0 keeps DefaultHintLimit,
	// negative disables hinting entirely. Only used when ClusterNodes > 1.
	HintLimit int
	// OutOfOrderWindow lets the TSDB heads accept samples up to this far
	// behind their max time (tsdb.Options.OutOfOrderWindow) so retrying
	// remote-write agents don't hard-fail; 0 keeps strict ordering. Applies
	// to the single node and to every ring member alike.
	OutOfOrderWindow time.Duration
	// Telemetry, when set, registers the stack's self-instrumentation into
	// this registry: the single-node TSDB internals, the scrape manager, and
	// (in cluster mode) the ring's quorum/hint/repair metrics. Ring member
	// TSDBs are not individually instrumented — their series would collide
	// on one registry; the ring-level metrics cover the replicated path.
	Telemetry *telemetry.Registry
}

// DefaultOptions returns the deployment cadence used in the experiments.
func DefaultOptions() Options {
	return Options{
		Start:           time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		ScrapeInterval:  15 * time.Second,
		RuleInterval:    time.Minute,
		UpdateInterval:  5 * time.Minute,
		ShipInterval:    30 * time.Minute,
		ShortUnitCutoff: time.Minute,
		Zone:            "FR",
		Factor:          emissions.OWID{},
		HeadRetention:   2 * time.Hour,
		WALCompression:  true,
	}
}

// Sim is the assembled platform.
type Sim struct {
	Topo Topology
	Opts Options

	Sched *slurmsim.Scheduler
	// DB is the hot TSDB in single-node mode; nil when clustered.
	DB *tsdb.DB
	// Ring is the replicated storage layer when Opts.ClusterNodes > 1;
	// nil in single-node mode.
	Ring      *RingDB
	Cold      *thanos.Store
	Sidecar   *thanos.Sidecar
	Querier   *thanos.Querier
	Store     *relstore.DB
	Updater   *api.Updater
	APIServer *api.Server
	LB        *lb.LB
	Gen       *WorkloadGen

	scrapeMgr *scrape.Manager
	rulesMgr  *rules.Manager
	exporters map[string]*exporter.Exporter
	clock     time.Time
	tick      int64
	// Errors collects subsystem errors during stepping.
	Errors []string
}

// exporterFetcher scrapes the in-process exporters directly, avoiding
// thousands of real sockets while exercising the same render/parse path.
type exporterFetcher struct{ sim *Sim }

func (f *exporterFetcher) Fetch(_ context.Context, target string) (io.ReadCloser, error) {
	exp, ok := f.sim.exporters[target]
	if !ok {
		return nil, fmt.Errorf("cluster: no exporter for target %q", target)
	}
	return io.NopCloser(strings.NewReader(exp.Render())), nil
}

// gpuMapProvider feeds the exporter's GPU-map collector from the
// scheduler's binding table.
type gpuMapProvider struct {
	sched *slurmsim.Scheduler
	node  *hw.Node
}

func (p *gpuMapProvider) GPUOrdinalsByUnit() map[string][]exporter.GPUBinding {
	gpus := p.node.GPUs()
	out := map[string][]exporter.GPUBinding{}
	for id, ords := range p.sched.GPUBindingsOnNode(p.node.Spec.Name) {
		for _, ord := range ords {
			uuid := ""
			if ord < len(gpus) {
				uuid = gpus[ord].UUID
			}
			out[id] = append(out[id], exporter.GPUBinding{Ordinal: ord, UUID: uuid})
		}
	}
	return out
}

// New assembles a simulation of the topology.
func New(topo Topology, opts Options, users, projects int, jobsPerDay float64) (*Sim, error) {
	nodesByClass, err := topo.buildNodes(simTime{opts.Start})
	if err != nil {
		return nil, err
	}
	sim := &Sim{
		Topo: topo, Opts: opts, clock: opts.Start,
		exporters: map[string]*exporter.Exporter{},
	}

	// Partitions: one per node class present.
	var parts []*slurmsim.Partition
	var cpuParts, gpuParts []string
	for _, class := range Classes() {
		nodes := nodesByClass[class]
		if len(nodes) == 0 {
			continue
		}
		pname := "part-" + string(class)
		parts = append(parts, &slurmsim.Partition{Name: pname, Nodes: nodes})
		if class == ClassIntel || class == ClassAMD {
			cpuParts = append(cpuParts, pname)
		} else {
			gpuParts = append(gpuParts, pname)
		}
	}
	sim.Sched, err = slurmsim.NewScheduler(topo.Name, opts.Start, parts...)
	if err != nil {
		return nil, err
	}

	// Storage: one hot TSDB, or a replicated ring of them.
	if opts.ClusterNodes > 1 {
		rf := opts.ReplicationFactor
		if rf <= 0 {
			rf = 3
			if rf > opts.ClusterNodes {
				rf = opts.ClusterNodes
			}
		}
		w := opts.WriteQuorum
		if w <= 0 {
			w = rf/2 + 1
		}
		open := func(name string) (*tsdb.DB, error) {
			o := tsdb.DefaultOptions()
			o.WALCompression = opts.WALCompression
			o.OutOfOrderWindow = opts.OutOfOrderWindow.Milliseconds()
			if opts.WALDir != "" {
				o.WALDir = opts.WALDir + "/" + name
			}
			return tsdb.Open(o)
		}
		nodeNames := make([]string, opts.ClusterNodes)
		for i := range nodeNames {
			nodeNames[i] = fmt.Sprintf("tsdb-%d", i)
		}
		sim.Ring, err = NewRingDB(rf, w, opts.VirtualNodes, open, nodeNames...)
		if err != nil {
			return nil, fmt.Errorf("cluster: open ring: %w", err)
		}
		if opts.HintLimit != 0 {
			limit := opts.HintLimit
			if limit < 0 {
				limit = 0
			}
			sim.Ring.SetHintLimit(limit)
		}
		if opts.Telemetry != nil {
			sim.Ring.InstrumentTelemetry(opts.Telemetry)
		}
	} else {
		tsdbOpts := tsdb.DefaultOptions()
		tsdbOpts.WALDir = opts.WALDir
		tsdbOpts.WALCompression = opts.WALCompression
		tsdbOpts.OutOfOrderWindow = opts.OutOfOrderWindow.Milliseconds()
		tsdbOpts.Telemetry = opts.Telemetry
		sim.DB, err = tsdb.Open(tsdbOpts)
		if err != nil {
			return nil, fmt.Errorf("cluster: open tsdb: %w", err)
		}
	}
	var groups []*scrape.TargetGroup
	for _, class := range Classes() {
		nodes := nodesByClass[class]
		if len(nodes) == 0 {
			continue
		}
		var targets []string
		for _, n := range nodes {
			cols := []exporter.Collector{
				&exporter.CgroupCollector{FS: n.FS, Layout: exporter.SlurmLayout()},
				&exporter.RAPLCollector{FS: n.FS},
				&exporter.IPMICollector{Reader: n},
				&exporter.NodeCollector{FS: n.FS},
			}
			if len(n.Spec.GPUs) > 0 {
				cols = append(cols,
					&gpusim.DCGMCollector{Hostname: n.Spec.Name, Devices: n},
					&exporter.GPUMapCollector{
						Provider: &gpuMapProvider{sched: sim.Sched, node: n},
						Manager:  model.ManagerSLURM,
					})
			}
			sim.exporters[n.Spec.Name] = exporter.New(cols...)
			targets = append(targets, n.Spec.Name)
		}
		groups = append(groups, &scrape.TargetGroup{
			JobName: "ceems",
			Targets: targets,
			Labels: map[string]string{
				"nodeclass": string(class),
				"cluster":   topo.Name,
			},
			Interval: opts.ScrapeInterval,
		})
	}
	// The write destination, query source and series cleaner are the ring
	// in cluster mode, the single DB otherwise; everything downstream wires
	// against these.
	var (
		scrapeDest scrape.Appender
		newBatch   func() scrape.Batch
		hotQuery   promql.Queryable
		ruleDest   rules.Appender
		cleaner    api.SeriesDeleter
	)
	if sim.Ring != nil {
		scrapeDest = sim.Ring
		newBatch = func() scrape.Batch { return sim.Ring.NewBatch() }
		hotQuery = sim.Ring.Scatter()
		ruleDest = sim.Ring
		cleaner = sim.Ring
	} else {
		scrapeDest = sim.DB
		newBatch = func() scrape.Batch { return sim.DB.Appender() }
		hotQuery = sim.DB
		ruleDest = sim.DB
		cleaner = sim.DB
	}
	sim.scrapeMgr = &scrape.Manager{
		Dest: scrapeDest, Fetcher: &exporterFetcher{sim: sim}, Groups: groups,
		NewBatch: newBatch,
		Now:      func() time.Time { return sim.clock },
	}
	if opts.Telemetry != nil {
		sim.scrapeMgr.InstrumentTelemetry(opts.Telemetry)
	}

	// Recording rules: all four hardware-class groups + emissions.
	ropts := ceemsrules.DefaultOptions()
	ropts.Interval = opts.RuleInterval
	sim.rulesMgr = &rules.Manager{
		Engine: rules.NewEngine(nil), Query: hotQuery, Dest: ruleDest,
		Groups: ceemsrules.AllGroups(ropts),
	}

	// Long-term storage. The thanos sidecar ships blocks from one concrete
	// hot DB; in cluster mode every replica retains its own head instead
	// (Step prunes on the ship cadence) and queries stay on the ring.
	updaterQuery := hotQuery
	if sim.Ring == nil {
		coldDir := ""
		if opts.StoreDir != "" {
			coldDir = opts.StoreDir + "/thanos"
		}
		sim.Cold, err = thanos.NewStore(coldDir)
		if err != nil {
			return nil, err
		}
		sim.Sidecar = &thanos.Sidecar{DB: sim.DB, Store: sim.Cold, HeadRetention: opts.HeadRetention}
		sim.Querier = &thanos.Querier{Hot: sim.DB, Cold: sim.Cold}
		updaterQuery = sim.Querier
	}

	// API server.
	storeDir := ""
	if opts.StoreDir != "" {
		storeDir = opts.StoreDir + "/apidb"
	}
	sim.Store, err = relstore.Open(storeDir)
	if err != nil {
		return nil, err
	}
	for _, s := range api.Schemas() {
		if err := sim.Store.CreateTable(s); err != nil {
			return nil, err
		}
	}
	factor := opts.Factor
	if factor == nil {
		factor = emissions.OWID{}
	}
	sim.Updater = &api.Updater{
		Store: sim.Store,
		Fetchers: []resourcemanager.Fetcher{
			&resourcemanager.Local{Cluster: topo.Name, Kind: model.ManagerSLURM, Source: sim.Sched},
		},
		Query:           updaterQuery,
		Factor:          factor,
		Zone:            opts.Zone,
		ShortUnitCutoff: opts.ShortUnitCutoff,
		Cleaner:         cleaner,
	}
	sim.APIServer = &api.Server{Store: sim.Store, Updater: sim.Updater}

	// Load balancer over the (single, in this sim) query backend; the
	// backend handler is installed by callers that serve HTTP. Ownership
	// checks go straight to the API server. The response cache runs on the
	// simulated clock so TTL expiry tracks simulated, not wall, time.
	cacheOpts := querycache.Options{
		MaxBytes: 16 << 20,
		Clock:    func() time.Time { return sim.clock },
	}
	if sim.Ring != nil {
		// The ring implements the cache's Head watermark (freshest member
		// MaxTime, mutation gen folding in topology changes), so PromQL
		// result caching stays correct across kills and rejoins.
		cacheOpts.Head = sim.Ring
	}
	sim.LB = &lb.LB{
		Strategy: lb.RoundRobin,
		Checker:  &lb.APIServerChecker{Server: sim.APIServer},
		Cache:    querycache.New(cacheOpts),
		CacheTTL: opts.ScrapeInterval,
		CacheNow: func() time.Time { return sim.clock },
	}

	sim.Gen = NewWorkloadGen(topo.Seed, users, projects, jobsPerDay, cpuParts, gpuParts)
	return sim, nil
}

// Now returns the simulated time.
func (s *Sim) Now() time.Time { return s.clock }

// Step advances one scrape interval: submit workload, advance hardware and
// scheduler, scrape all nodes, ingest the emission factor, and run the
// slower loops (rules, updater, sidecar) when their cadence divides the
// tick.
func (s *Sim) Step(ctx context.Context) {
	s.tick++
	dt := s.Opts.ScrapeInterval
	s.clock = s.clock.Add(dt)

	s.Gen.Tick(s.Sched, dt)
	s.Sched.Advance(dt)
	s.scrapeMgr.ScrapeAll(ctx)

	// Emission factor as a series (so rules can join against it).
	if f, err := s.Opts.Factor.Factor(ctx, s.Opts.Zone); err == nil {
		ls := labels.FromStrings(labels.MetricName, "ceems_emission_factor_gco2_kwh", "zone", s.Opts.Zone)
		if s.Ring != nil {
			if err := s.Ring.Append(ls, s.clock.UnixMilli(), f.GramsPerKWh); err != nil {
				s.recordError("emissions", err)
			}
		} else {
			s.DB.Append(ls, s.clock.UnixMilli(), f.GramsPerKWh)
		}
	}

	if s.every(s.Opts.RuleInterval) {
		if err := s.rulesMgr.EvalAll(s.clock); err != nil {
			s.recordError("rules", err)
		}
	}
	if s.every(s.Opts.UpdateInterval) {
		if err := s.Updater.Update(ctx, s.clock); err != nil {
			s.recordError("updater", err)
		}
	}
	if s.every(s.Opts.ShipInterval) {
		if s.Sidecar != nil {
			if err := s.Sidecar.Ship(s.clock); err != nil {
				s.recordError("sidecar", err)
			}
		} else if s.Ring != nil && s.Opts.HeadRetention > 0 {
			// No cold tier in cluster mode: every replica prunes its own
			// head on the same cadence the sidecar would have shipped.
			s.Ring.Truncate(s.clock.Add(-s.Opts.HeadRetention).UnixMilli())
		}
	}
}

// every reports whether the cadence fires on this tick.
func (s *Sim) every(interval time.Duration) bool {
	if interval <= 0 {
		return false
	}
	ticks := int64(interval / s.Opts.ScrapeInterval)
	if ticks <= 0 {
		ticks = 1
	}
	return s.tick%ticks == 0
}

func (s *Sim) recordError(sub string, err error) {
	if len(s.Errors) < 100 {
		s.Errors = append(s.Errors, fmt.Sprintf("%s: %v", sub, err))
	}
}

// RunFor advances the simulation by the given simulated duration.
func (s *Sim) RunFor(ctx context.Context, d time.Duration) {
	steps := int(d / s.Opts.ScrapeInterval)
	for i := 0; i < steps; i++ {
		s.Step(ctx)
	}
}

// FinalizeUpdate forces a final aggregate pass (e.g. before reading
// results at the end of an experiment).
func (s *Sim) FinalizeUpdate(ctx context.Context) error {
	return s.Updater.Update(ctx, s.clock)
}

// Engine returns a PromQL engine bound to the fan-in querier (or, in
// cluster mode, the quorum scatter-gather) for ad-hoc queries against the
// simulation.
func (s *Sim) Engine() (*promql.Engine, promql.Queryable) {
	if s.Ring != nil {
		return promql.NewEngine(), s.Ring.Scatter()
	}
	return promql.NewEngine(), s.Querier
}
