package cluster

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/model"
)

// TestHintOverflowDropOldest: the hint queue is bounded. An outage longer
// than the bound drops the OLDEST hints (counted), the drain still applies
// what survived, and the lossy queue refuses to clear the member's warming
// gate — only the full SyncNode proves the dropped window was re-pulled.
func TestHintOverflowDropOldest(t *testing.T) {
	e := newChaosEnv(t, 3, 3, 2, 40)
	e.ring.SetHintLimit(100)
	e.run(0, 5)
	if err := e.ring.Kill("node-1"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// 20 missed ticks x 40 series = 800 hints against a 100-sample bound.
	e.run(5, 25)

	st := e.ring.HintStats()
	e.writeChaosLog("hint-stats.log", fmt.Sprintf("hints: %+v\n", st))
	if st.SamplesQueued != 800 || st.SamplesDropped != 700 || st.Pending != 100 {
		t.Fatalf("hint stats %+v, want 800 queued / 700 dropped / 100 pending", st)
	}

	// Revive discards the lossy remainder instead of draining it: applying
	// only the newest survivors would wedge the append-only head past the
	// dropped window. The member must stay out of read coverage.
	if _, err := e.ring.Revive("node-1"); err != nil {
		t.Fatalf("revive: %v", err)
	}
	st = e.ring.HintStats()
	if st.SamplesDrained != 0 || st.SamplesDropped != 800 || st.Pending != 0 {
		t.Fatalf("hint stats after lossy drain %+v, want 0 drained / 800 dropped / 0 pending", st)
	}
	m := e.ring.Member("node-1")
	if _, err := m.SelectWithHints(model.SelectHints{}); !errors.Is(err, ErrNodeWarming) {
		t.Fatalf("lossy-drained member read err = %v, want ErrNodeWarming", err)
	}

	// The full sync fills the whole missed window and clears the gate.
	sync, err := e.ring.SyncNode("node-1")
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	if want := 40 * 20; sync.SamplesApplied != want {
		t.Fatalf("peer pull applied %d, want %d (the whole outage, in order)", sync.SamplesApplied, want)
	}
	if _, err := m.SelectWithHints(model.SelectHints{}, matchAll()); err != nil {
		t.Fatalf("synced member read err = %v, want nil", err)
	}

	// Prove convergence the hard way: reads now depend on node-1.
	if err := e.ring.Kill("node-0"); err != nil {
		t.Fatalf("kill node-0: %v", err)
	}
	e.assertByteExact()
}

// TestHintDisabled: a zero limit turns hinting off — every missed write is
// dropped and counted, nothing is buffered, and recovery is entirely the
// SyncNode pull (the pre-hint behavior, still available for memory-tight
// coordinators).
func TestHintDisabled(t *testing.T) {
	e := newChaosEnv(t, 3, 3, 2, 40)
	e.ring.SetHintLimit(0)
	e.run(0, 5)
	if err := e.ring.Kill("node-1"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	e.run(5, 15)

	st := e.ring.HintStats()
	if st.SamplesQueued != 0 || st.SamplesDropped != 400 || st.Pending != 0 {
		t.Fatalf("hint stats %+v, want 0 queued / 400 dropped / 0 pending", st)
	}
	replay, sync, err := e.ring.Rejoin("node-1")
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if replay.Samples < 40*5 {
		t.Fatalf("WAL replay recovered %d samples, want >= %d", replay.Samples, 40*5)
	}
	if want := 40 * 10; sync.SamplesApplied != want {
		t.Fatalf("peer pull applied %d, want %d (hints disabled, sync carries it all)", sync.SamplesApplied, want)
	}
	if err := e.ring.Kill("node-0"); err != nil {
		t.Fatalf("kill node-0: %v", err)
	}
	e.assertByteExact()
}
