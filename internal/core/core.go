// Package core implements the paper's primary contribution in library form:
// the configurable compute-unit energy estimation model (Eq. 1) that splits
// node-level power measurements (IPMI-DCMI, RAPL) among the workloads
// running on the node, and its variants for the hardware classes found on
// Jean-Zay (§III.A). The same formulas are also shipped as Prometheus
// recording rules in the ceemsrules subpackage; this package is the
// reference implementation the rules are validated against.
package core

import (
	"errors"
	"fmt"
)

// NodeSample is the node-level view at one instant, derived from exporter
// metrics: IPMI power, RAPL domain powers (rates of the energy counters),
// total node activity.
type NodeSample struct {
	// IPMIWatts is the whole-node wall power from IPMI-DCMI.
	IPMIWatts float64
	// RAPLCPUWatts is the summed package-domain power (rate of the RAPL
	// counters).
	RAPLCPUWatts float64
	// RAPLDRAMWatts is the summed dram-domain power; 0 on AMD nodes that
	// expose no dram domain.
	RAPLDRAMWatts float64
	// CPURate is the node's busy CPU-seconds per second (i.e. busy CPUs).
	CPURate float64
	// MemBytes is the node's used memory in bytes.
	MemBytes float64
	// GPUWatts is the summed GPU board power of the node (from DCGM/SMI).
	GPUWatts float64
	// NumUnits is the number of compute units running on the node.
	NumUnits int
}

// UnitSample is one compute unit's activity at the same instant.
type UnitSample struct {
	// CPURate is the unit's busy CPU-seconds per second.
	CPURate float64
	// MemBytes is the unit's resident memory.
	MemBytes float64
	// GPUWatts is the summed board power of GPUs bound to the unit.
	GPUWatts float64
}

// Estimator is the configurable Eq. 1 power attribution model. The zero
// value is not valid; use NewEstimator or the presets.
type Estimator struct {
	// NetworkFraction is the share of node power attributed to network
	// devices and split equally among units (0.1 in the paper, citing
	// Dayarathna et al.).
	NetworkFraction float64
	// UseDRAMSplit splits the residual power between CPU and DRAM by RAPL
	// ratio (Eq. 1); false attributes it all via CPU time (the AMD
	// variant, where no DRAM counter exists).
	UseDRAMSplit bool
	// SubtractGPU removes measured GPU power from the IPMI reading before
	// the split, for node types whose BMC includes GPU power (§III.A).
	SubtractGPU bool
}

// NewEstimator returns the paper's Eq. 1 configuration: 10% network share,
// CPU/DRAM split by RAPL ratio.
func NewEstimator() Estimator {
	return Estimator{NetworkFraction: 0.1, UseDRAMSplit: true}
}

// IntelVariant is Eq. 1 exactly as printed (RAPL CPU+DRAM available).
func IntelVariant() Estimator { return NewEstimator() }

// AMDVariant handles nodes whose RAPL exposes only the package domain: the
// whole 90% residual follows CPU-time shares.
func AMDVariant() Estimator {
	return Estimator{NetworkFraction: 0.1, UseDRAMSplit: false}
}

// GPUInIPMIVariant first subtracts measured GPU power from the IPMI
// reading, then applies Eq. 1 to the remainder; GPU energy is attributed
// directly from the device metrics.
func GPUInIPMIVariant() Estimator {
	return Estimator{NetworkFraction: 0.1, UseDRAMSplit: true, SubtractGPU: true}
}

// ErrInvalidSample indicates non-physical inputs.
var ErrInvalidSample = errors.New("core: invalid sample")

// HostPower returns the host-side (CPU+DRAM+network share) power of one
// unit per Eq. 1:
//
//	P_unit = 0.9·P_ipmi·(P_rapl_cpu/(P_rapl_cpu+P_rapl_dram))·(T_unit/T_node)
//	       + 0.9·P_ipmi·(P_rapl_dram/(P_rapl_cpu+P_rapl_dram))·(M_unit/M_node)
//	       + 0.1·P_ipmi·(1/N_units)
//
// (coefficients 0.9/0.1 generalize to 1-NetworkFraction/NetworkFraction).
func (e Estimator) HostPower(node NodeSample, unit UnitSample) (float64, error) {
	if node.IPMIWatts < 0 || node.CPURate < 0 || unit.CPURate < 0 {
		return 0, fmt.Errorf("%w: negative power or rate", ErrInvalidSample)
	}
	if node.NumUnits <= 0 {
		return 0, fmt.Errorf("%w: node reports no units", ErrInvalidSample)
	}
	ipmi := node.IPMIWatts
	if e.SubtractGPU {
		ipmi -= node.GPUWatts
		if ipmi < 0 {
			ipmi = 0
		}
	}
	residual := (1 - e.NetworkFraction) * ipmi

	cpuShare := 0.0
	if node.CPURate > 0 {
		cpuShare = unit.CPURate / node.CPURate
		if cpuShare > 1 {
			cpuShare = 1
		}
	}
	memShare := 0.0
	if node.MemBytes > 0 {
		memShare = unit.MemBytes / node.MemBytes
		if memShare > 1 {
			memShare = 1
		}
	}

	var hostW float64
	if e.UseDRAMSplit && node.RAPLCPUWatts+node.RAPLDRAMWatts > 0 {
		cpuFrac := node.RAPLCPUWatts / (node.RAPLCPUWatts + node.RAPLDRAMWatts)
		hostW = residual*cpuFrac*cpuShare + residual*(1-cpuFrac)*memShare
	} else {
		hostW = residual * cpuShare
	}
	hostW += e.NetworkFraction * ipmi / float64(node.NumUnits)
	return hostW, nil
}

// TotalPower returns host power plus the unit's directly-measured GPU
// power. On nodes where IPMI excludes GPUs (SubtractGPU=false with
// separate GPU measurement) this is simply additive; with SubtractGPU the
// GPU power was removed from the host side first, so adding the device
// measurement never double-counts.
func (e Estimator) TotalPower(node NodeSample, unit UnitSample) (float64, error) {
	host, err := e.HostPower(node, unit)
	if err != nil {
		return 0, err
	}
	return host + unit.GPUWatts, nil
}

// AttributeAll applies the estimator to every unit of a node and returns
// the per-unit host powers. When the units are the node's only activity,
// the results sum to the (GPU-adjusted) IPMI power — the conservation
// property the tests assert.
func (e Estimator) AttributeAll(node NodeSample, units []UnitSample) ([]float64, error) {
	out := make([]float64, len(units))
	for i, u := range units {
		p, err := e.HostPower(node, u)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// EqualSplit is the naive baseline for ablation A1: node power divided
// equally among units, ignoring activity.
func EqualSplit(node NodeSample, n int) float64 {
	if n <= 0 {
		return 0
	}
	return node.IPMIWatts / float64(n)
}

// MemoryOnlySplit is the second ablation baseline: attribution purely by
// memory occupancy.
func MemoryOnlySplit(node NodeSample, unit UnitSample) float64 {
	if node.MemBytes <= 0 {
		return 0
	}
	share := unit.MemBytes / node.MemBytes
	if share > 1 {
		share = 1
	}
	return node.IPMIWatts * share
}

// RAPLOnlyPower estimates unit power from RAPL domains alone (no IPMI) —
// ablation A2. It misses PSU losses, fans and other components, which is
// the coverage gap the paper's IPMI+RAPL mix closes.
func RAPLOnlyPower(node NodeSample, unit UnitSample) float64 {
	cpuShare := 0.0
	if node.CPURate > 0 {
		cpuShare = unit.CPURate / node.CPURate
		if cpuShare > 1 {
			cpuShare = 1
		}
	}
	memShare := 0.0
	if node.MemBytes > 0 {
		memShare = unit.MemBytes / node.MemBytes
		if memShare > 1 {
			memShare = 1
		}
	}
	return node.RAPLCPUWatts*cpuShare + node.RAPLDRAMWatts*memShare
}
