package core

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// paperNode is the worked example: 850 W at the wall, RAPL sees 400 W CPU
// and 100 W DRAM, 48 of 64 CPUs busy, half the memory used, 3 jobs.
func paperNode() NodeSample {
	return NodeSample{
		IPMIWatts: 850, RAPLCPUWatts: 400, RAPLDRAMWatts: 100,
		CPURate: 48, MemBytes: 128e9, NumUnits: 3,
	}
}

func TestEq1HandComputed(t *testing.T) {
	e := NewEstimator()
	node := paperNode()
	unit := UnitSample{CPURate: 24, MemBytes: 64e9} // half of node activity
	got, err := e.HostPower(node, unit)
	if err != nil {
		t.Fatal(err)
	}
	// By hand: residual = 0.9*850 = 765. cpuFrac = 400/500 = 0.8.
	// cpu term = 765*0.8*(24/48) = 306. dram term = 765*0.2*(0.5) = 76.5.
	// net term = 0.1*850/3 = 28.333...
	want := 306 + 76.5 + 85.0/3
	if !approx(got, want, 1e-9) {
		t.Errorf("HostPower = %v, want %v", got, want)
	}
}

func TestConservation(t *testing.T) {
	// Units covering ALL node activity: attribution sums to IPMI power.
	e := NewEstimator()
	node := paperNode()
	units := []UnitSample{
		{CPURate: 24, MemBytes: 64e9},
		{CPURate: 16, MemBytes: 32e9},
		{CPURate: 8, MemBytes: 32e9},
	}
	powers, err := e.AttributeAll(node, units)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range powers {
		sum += p
	}
	if !approx(sum, node.IPMIWatts, 1e-9) {
		t.Errorf("sum of attributions = %v, want %v", sum, node.IPMIWatts)
	}
}

func TestAMDVariantIgnoresDRAM(t *testing.T) {
	e := AMDVariant()
	node := paperNode()
	node.RAPLDRAMWatts = 0 // AMD: no dram domain
	unit := UnitSample{CPURate: 24, MemBytes: 64e9}
	got, err := e.HostPower(node, unit)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9*850*0.5 + 0.1*850/3
	if !approx(got, want, 1e-9) {
		t.Errorf("AMD HostPower = %v, want %v", got, want)
	}
	// Memory changes do not affect the AMD variant.
	unit.MemBytes = 0
	got2, _ := e.HostPower(node, unit)
	if got2 != got {
		t.Error("AMD variant should ignore memory share")
	}
}

func TestGPUInIPMIVariant(t *testing.T) {
	e := GPUInIPMIVariant()
	node := paperNode()
	node.IPMIWatts = 850 + 400 // BMC sees one busy A100
	node.GPUWatts = 400
	unit := UnitSample{CPURate: 24, MemBytes: 64e9, GPUWatts: 400}
	host, err := e.HostPower(node, unit)
	if err != nil {
		t.Fatal(err)
	}
	// After subtracting GPU power the host side equals the plain case.
	plain, _ := NewEstimator().HostPower(paperNode(), UnitSample{CPURate: 24, MemBytes: 64e9})
	if !approx(host, plain, 1e-9) {
		t.Errorf("GPU-adjusted host = %v, want %v", host, plain)
	}
	total, _ := e.TotalPower(node, unit)
	if !approx(total, host+400, 1e-9) {
		t.Errorf("total = %v", total)
	}
	// GPU power exceeding IPMI clamps to zero rather than negative.
	node.GPUWatts = 5000
	host2, _ := e.HostPower(node, unit)
	if host2 < 0 {
		t.Errorf("negative host power: %v", host2)
	}
}

func TestZeroActivityNode(t *testing.T) {
	e := NewEstimator()
	node := NodeSample{IPMIWatts: 300, NumUnits: 1}
	unit := UnitSample{}
	got, err := e.HostPower(node, unit)
	if err != nil {
		t.Fatal(err)
	}
	// Only the equally-split network share remains defined.
	if !approx(got, 30, 1e-9) {
		t.Errorf("idle node power = %v, want 30", got)
	}
}

func TestErrors(t *testing.T) {
	e := NewEstimator()
	if _, err := e.HostPower(NodeSample{IPMIWatts: -1, NumUnits: 1}, UnitSample{}); err == nil {
		t.Error("negative IPMI accepted")
	}
	if _, err := e.HostPower(NodeSample{IPMIWatts: 100}, UnitSample{}); err == nil {
		t.Error("zero units accepted")
	}
	if _, err := e.HostPower(paperNode(), UnitSample{CPURate: -5}); err == nil {
		t.Error("negative unit rate accepted")
	}
}

func TestSharesClamped(t *testing.T) {
	e := NewEstimator()
	node := paperNode()
	// Unit claims more activity than the node reports (measurement skew).
	unit := UnitSample{CPURate: 100, MemBytes: 1e12}
	got, err := e.HostPower(node, unit)
	if err != nil {
		t.Fatal(err)
	}
	maxPossible := 0.9*850 + 0.1*850/3
	if got > maxPossible+1e-9 {
		t.Errorf("unclamped attribution: %v > %v", got, maxPossible)
	}
}

func TestBaselines(t *testing.T) {
	node := paperNode()
	if got := EqualSplit(node, 3); !approx(got, 850.0/3, 1e-12) {
		t.Errorf("EqualSplit = %v", got)
	}
	if got := EqualSplit(node, 0); got != 0 {
		t.Errorf("EqualSplit(0) = %v", got)
	}
	unit := UnitSample{CPURate: 24, MemBytes: 64e9}
	if got := MemoryOnlySplit(node, unit); !approx(got, 425, 1e-9) {
		t.Errorf("MemoryOnlySplit = %v", got)
	}
	rapl := RAPLOnlyPower(node, unit)
	// 400*0.5 + 100*0.5 = 250.
	if !approx(rapl, 250, 1e-9) {
		t.Errorf("RAPLOnlyPower = %v", rapl)
	}
	// RAPL-only always under-reports vs the IPMI-based estimate: the
	// coverage gap of ablation A2.
	eq1, _ := NewEstimator().HostPower(node, unit)
	if rapl >= eq1 {
		t.Errorf("RAPL-only (%v) should be below Eq.1 (%v)", rapl, eq1)
	}
}

// Property: conservation holds for any unit decomposition that covers the
// node's activity exactly.
func TestConservationProperty(t *testing.T) {
	f := func(splits []uint8, ipmi uint16, raplCPU uint16, raplDRAM uint16) bool {
		if len(splits) == 0 {
			splits = []uint8{1}
		}
		if len(splits) > 16 {
			splits = splits[:16]
		}
		node := NodeSample{
			IPMIWatts:     float64(ipmi%2000) + 50,
			RAPLCPUWatts:  float64(raplCPU%500) + 1,
			RAPLDRAMWatts: float64(raplDRAM % 200),
			CPURate:       64,
			MemBytes:      256e9,
			NumUnits:      len(splits),
		}
		// Build unit shares that sum exactly to the node totals.
		total := 0.0
		weights := make([]float64, len(splits))
		for i, s := range splits {
			weights[i] = float64(s) + 1
			total += weights[i]
		}
		units := make([]UnitSample, len(splits))
		for i, w := range weights {
			units[i] = UnitSample{
				CPURate:  node.CPURate * w / total,
				MemBytes: node.MemBytes * w / total,
			}
		}
		e := NewEstimator()
		powers, err := e.AttributeAll(node, units)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range powers {
			sum += p
		}
		return approx(sum, node.IPMIWatts, 1e-6*node.IPMIWatts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: attribution is monotone in unit activity.
func TestMonotonicityProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		node := paperNode()
		lo := UnitSample{CPURate: float64(a%48) / 2, MemBytes: 10e9}
		hi := UnitSample{CPURate: lo.CPURate + float64(b%10) + 1, MemBytes: 10e9}
		e := NewEstimator()
		pl, err1 := e.HostPower(node, lo)
		ph, err2 := e.HostPower(node, hi)
		if err1 != nil || err2 != nil {
			return false
		}
		return ph >= pl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEq1Attribution(b *testing.B) {
	e := NewEstimator()
	node := paperNode()
	units := []UnitSample{
		{CPURate: 24, MemBytes: 64e9},
		{CPURate: 16, MemBytes: 32e9},
		{CPURate: 8, MemBytes: 32e9},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.AttributeAll(node, units); err != nil {
			b.Fatal(err)
		}
	}
}
