package experiments

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/emissions"
	"repro/internal/hw"
	"repro/internal/lb"
	"repro/internal/model"
	"repro/internal/promapi"
	"repro/internal/promql"
	"repro/internal/relstore"
)

// RunRuleVariants is E8: per-hardware-group recording rules — the four
// node classes get different estimation rules yet per-unit totals remain
// conserved on every class.
func RunRuleVariants(ctx context.Context) (*Result, error) {
	topo := cluster.Topology{
		Name: "variants", IntelNodes: 1, AMDNodes: 1,
		GPUIncludedNodes: 1, GPUExcludedNodes: 1,
		GPUsPerNode: 2, GPUKinds: []model.GPUKind{model.GPUA100},
		Seed: 3,
	}
	sim, err := cluster.New(topo, cluster.DefaultOptions(), 4, 2, 4000)
	if err != nil {
		return nil, err
	}
	sim.RunFor(ctx, 30*time.Minute)
	eng, q := sim.Engine()

	var buf strings.Builder
	fmt.Fprintf(&buf, "E8 — Per-hardware-group recording rules (paper §III.A)\n\n")
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE CLASS\tRULE VARIANT\tNODE W (IPMI)\tΣ UNIT W\tUNITS")
	head := map[string]float64{}
	variant := map[cluster.NodeClass]string{
		cluster.ClassIntel:       "Eq.1 full (RAPL cpu+dram split)",
		cluster.ClassAMD:         "cpu-share only (no dram domain)",
		cluster.ClassGPUIncluded: "IPMI-GPU subtracted, Eq.1 + device",
		cluster.ClassGPUExcluded: "Eq.1 + device power added",
	}
	for _, class := range cluster.Classes() {
		ipmiV, err := eng.Instant(q, fmt.Sprintf(`sum(ceems_ipmi_dcmi_current_watts{nodeclass=%q})`, class), sim.Now())
		if err != nil {
			return nil, err
		}
		sumV, err := eng.Instant(q, fmt.Sprintf(`sum(uuid:total_watts:%s)`, class), sim.Now())
		if err != nil {
			return nil, err
		}
		cntV, err := eng.Instant(q, fmt.Sprintf(`count(uuid:total_watts:%s)`, class), sim.Now())
		if err != nil {
			return nil, err
		}
		ipmi := vecVal(ipmiV)
		sum := vecVal(sumV)
		cnt := vecVal(cntV)
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.0f\t%.0f\n", class, variant[class], ipmi, sum, cnt)
		if ipmi > 0 {
			head["coverage_"+string(class)] = sum / ipmi
		}
	}
	tw.Flush()
	buf.WriteString("\nΣ unit watts tracks node IPMI power on CPU classes; on GPU classes the\n" +
		"total includes (gpuexc) or re-attributes (gpuinc) device power, so it can\n" +
		"exceed or trail IPMI by the idle draw of unbound accelerators.\n")
	return &Result{ID: "rules", Title: "Rule variants", Text: buf.String(), Headline: head}, nil
}

func vecVal(v promql.Value) float64 {
	vec, ok := v.(promql.Vector)
	if !ok || len(vec) == 0 {
		return 0
	}
	return vec[0].V
}

// RunEmissions is E9: the same 1 MWh workload reported under static OWID
// factors vs real-time RTE vs Electricity Maps, across zones and times of
// day.
func RunEmissions(ctx context.Context) (*Result, error) {
	const joules = 3.6e9 // 1 MWh
	owid := emissions.OWID{}

	noon := time.Date(2026, 6, 1, 13, 0, 0, 0, time.UTC)
	evening := time.Date(2026, 6, 1, 19, 0, 0, 0, time.UTC)
	clock := noon
	rteSrv := httptest.NewServer(emissions.MockRTEHandler(func() time.Time { return clock }))
	defer rteSrv.Close()
	emapsSrv := httptest.NewServer(emissions.MockEMapsHandler("tok", func() time.Time { return clock }))
	defer emapsSrv.Close()
	rte := &emissions.RTE{URL: rteSrv.URL}
	emaps := &emissions.EMaps{BaseURL: emapsSrv.URL, Token: "tok"}

	var buf strings.Builder
	fmt.Fprintf(&buf, "E9 — Emission factors: static vs real-time for a 1 MWh workload\n\n")
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ZONE\tOWID STATIC g\tRTE 13:00 g\tRTE 19:00 g\tEMAPS 13:00 g")
	head := map[string]float64{}
	for _, zone := range []string{"FR", "DE", "PL"} {
		fo, _ := owid.Factor(ctx, zone)
		var rteNoon, rteEve, emNoon string
		if zone == "FR" {
			clock = noon
			fr1, err := rte.Factor(ctx, zone)
			if err != nil {
				return nil, err
			}
			clock = evening
			fr2, err := rte.Factor(ctx, zone)
			if err != nil {
				return nil, err
			}
			rteNoon = fmt.Sprintf("%.1f", fr1.Grams(joules))
			rteEve = fmt.Sprintf("%.1f", fr2.Grams(joules))
			head["rte_noon_g"] = fr1.Grams(joules)
			head["rte_evening_g"] = fr2.Grams(joules)
		} else {
			rteNoon, rteEve = "n/a", "n/a"
		}
		clock = noon
		fe, err := emaps.Factor(ctx, zone)
		if err != nil {
			return nil, err
		}
		emNoon = fmt.Sprintf("%.1f", fe.Grams(joules))
		fmt.Fprintf(tw, "%s\t%.1f\t%s\t%s\t%s\n", zone, fo.Grams(joules), rteNoon, rteEve, emNoon)
		head["owid_"+zone+"_g"] = fo.Grams(joules)
	}
	tw.Flush()
	buf.WriteString("\nShape checks: PL ≫ DE ≫ FR under any provider (grid mix dominates);\n" +
		"real-time France swings tens of percent within a day, so static factors\n" +
		"misreport workloads that run at specific hours.\n")
	return &Result{ID: "emissions", Title: "Emission factors", Text: buf.String(), Headline: head}, nil
}

// RunLB is E10: access control enforcement and the two balancing
// strategies under skewed backend latency.
func RunLB(ctx context.Context) (*Result, error) {
	sim, err := smallSim(ctx, 20*time.Minute)
	if err != nil {
		return nil, err
	}
	prom := httptest.NewServer((&promapi.Handler{Query: sim.Querier, Now: sim.Now}).Mux())
	defer prom.Close()

	var buf strings.Builder
	fmt.Fprintf(&buf, "E10 — Load balancer: access control + strategies\n\n")

	// Access control matrix over real units.
	units, err := sim.Store.Select("units", relstore.Query{Limit: 50})
	if err != nil || len(units) == 0 {
		return nil, fmt.Errorf("no units (%v)", err)
	}
	uid := units[0]["id"].(string)
	owner := units[0]["user"].(string)
	other := "user00"
	if owner == other {
		other = "user01"
	}
	sim.APIServer.AddAdmin("root")
	backend, _ := lb.NewBackend(prom.URL)
	balancer := &lb.LB{
		Backends: []*lb.Backend{backend},
		Checker:  &lb.APIServerChecker{Server: sim.APIServer},
	}
	lbSrv := httptest.NewServer(balancer)
	defer lbSrv.Close()

	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "REQUESTER\tQUERY TARGET\tRESULT")
	for _, c := range []struct{ user, want string }{
		{owner, "200 allowed"}, {other, "403 denied"}, {"root", "200 admin bypass"},
	} {
		req, _ := newLBRequest(lbSrv.URL, c.user, uid)
		resp, err := lbSrv.Client().Do(req)
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		fmt.Fprintf(tw, "%s\tjob %s of %s\t%d (expected %s)\n", c.user, uid, owner, resp.StatusCode, c.want)
	}
	tw.Flush()

	// Strategy comparison: 200 requests over equal backends.
	fmt.Fprintf(&buf, "\nStrategy distribution over 3 backends, 300 requests:\n")
	tw = tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "STRATEGY\tB0\tB1\tB2")
	head := map[string]float64{"denied": float64(balancer.Denied())}
	for _, strat := range []lb.Strategy{lb.RoundRobin, lb.LeastConnection} {
		var backends []*lb.Backend
		for i := 0; i < 3; i++ {
			b, _ := lb.NewBackend(prom.URL)
			backends = append(backends, b)
		}
		bal := &lb.LB{Backends: backends, Strategy: strat}
		srv := httptest.NewServer(bal)
		for i := 0; i < 300; i++ {
			req, _ := newLBRequest(srv.URL, "root", "")
			resp, err := srv.Client().Do(req)
			if err != nil {
				srv.Close()
				return nil, err
			}
			resp.Body.Close()
		}
		srv.Close()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", strat,
			backends[0].Served(), backends[1].Served(), backends[2].Served())
	}
	tw.Flush()
	buf.WriteString("\n(Sequential requests make least-connection degenerate to the first idle\n" +
		"backend; under concurrent load it routes around busy backends — see\n" +
		"TestLeastConnection in internal/lb.)\n")
	return &Result{ID: "lb", Title: "LB access control", Text: buf.String(), Headline: head}, nil
}

func newLBRequest(base, user, uid string) (*http.Request, error) {
	query := "up"
	if uid != "" {
		query = fmt.Sprintf(`{__name__=~"uuid:total_watts:.+",uuid=%q}`, uid)
	}
	req, err := http.NewRequest(http.MethodGet, base+"/api/v1/query?query="+url.QueryEscape(query), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Grafana-User", user)
	return req, nil
}

// RunAblateAttribution is A1: Eq. 1 vs equal-split vs memory-only
// attribution, scored against the simulator's ground truth.
func RunAblateAttribution(_ context.Context) (*Result, error) {
	spec := hw.DefaultIntelSpec("a1")
	spec.NoiseFrac = 0
	node, err := hw.NewNode(spec, simStart)
	if err != nil {
		return nil, err
	}
	// Three deliberately skewed jobs: cpu-heavy, mem-heavy, idle-ish.
	profiles := []struct {
		id       string
		cpu, mem float64
	}{
		{"job_cpu", 0.95, 0.1},
		{"job_mem", 0.15, 0.9},
		{"job_idle", 0.05, 0.05},
	}
	for _, p := range profiles {
		cpu, mem := p.cpu, p.mem
		err := node.AddWorkload(&hw.Workload{
			ID: p.id, CPUs: 20, MemLimit: spec.MemBytes / 3,
			CPUUtil: func(time.Duration) float64 { return cpu },
			MemUtil: func(time.Duration) float64 { return mem },
		})
		if err != nil {
			return nil, err
		}
	}
	var elapsed float64
	for i := 0; i < 40; i++ {
		node.Advance(15 * time.Second)
		elapsed += 15
	}
	ipmi, _ := node.PowerReading()
	cpuW, dramW, _ := node.ComponentPowers()
	nodeSample := core.NodeSample{
		IPMIWatts: ipmi, RAPLCPUWatts: cpuW, RAPLDRAMWatts: dramW, NumUnits: 3,
	}
	var units []core.UnitSample
	var truth []float64
	for _, p := range profiles {
		te, _ := node.Truth(p.id)
		u := core.UnitSample{CPURate: te.CPUSeconds / elapsed, MemBytes: p.mem * float64(spec.MemBytes) / 3}
		nodeSample.CPURate += u.CPURate
		nodeSample.MemBytes += u.MemBytes
		units = append(units, u)
		truth = append(truth, te.HostJoules/elapsed)
	}
	nodeSample.CPURate += 0.004 * float64(spec.TotalCPUs())
	est := core.IntelVariant()
	eq1, err := est.AttributeAll(nodeSample, units)
	if err != nil {
		return nil, err
	}

	var buf strings.Builder
	fmt.Fprintf(&buf, "A1 — Attribution policy vs ground truth (W per job)\n\n")
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "JOB\tTRUTH\tEQ.1\tEQUAL SPLIT\tMEMORY ONLY")
	var errEq1, errEqual, errMem float64
	for i, p := range profiles {
		equal := core.EqualSplit(nodeSample, 3)
		memOnly := core.MemoryOnlySplit(nodeSample, units[i])
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\n", p.id, truth[i], eq1[i], equal, memOnly)
		errEq1 += math.Abs(eq1[i] - truth[i])
		errEqual += math.Abs(equal - truth[i])
		errMem += math.Abs(memOnly - truth[i])
	}
	tw.Flush()
	fmt.Fprintf(&buf, "\nTotal |error|: Eq.1 %.1f W, equal-split %.1f W, memory-only %.1f W.\n", errEq1, errEqual, errMem)
	buf.WriteString("Eq.1's activity-based split beats both baselines on skewed workloads —\n" +
		"the design choice the paper adopts over Kepler-style learned models.\n")
	return &Result{ID: "ablate-attr", Title: "Attribution ablation", Text: buf.String(),
		Headline: map[string]float64{"err_eq1_w": errEq1, "err_equal_w": errEqual, "err_mem_w": errMem}}, nil
}

// RunAblateSources is A2: RAPL-only vs IPMI+RAPL estimation coverage.
func RunAblateSources(_ context.Context) (*Result, error) {
	spec := hw.DefaultIntelSpec("a2")
	spec.NoiseFrac = 0
	node, err := hw.NewNode(spec, simStart)
	if err != nil {
		return nil, err
	}
	node.AddWorkload(&hw.Workload{
		ID: "job", CPUs: 64, MemLimit: spec.MemBytes,
		CPUUtil: func(time.Duration) float64 { return 0.8 },
		MemUtil: func(time.Duration) float64 { return 0.5 },
	})
	var elapsed float64
	for i := 0; i < 40; i++ {
		node.Advance(15 * time.Second)
		elapsed += 15
	}
	ipmi, _ := node.PowerReading()
	cpuW, dramW, _ := node.ComponentPowers()
	te, _ := node.Truth("job")
	nodeSample := core.NodeSample{
		IPMIWatts: ipmi, RAPLCPUWatts: cpuW, RAPLDRAMWatts: dramW,
		CPURate:  te.CPUSeconds/elapsed + 0.004*float64(spec.TotalCPUs()),
		MemBytes: 0.5 * float64(spec.MemBytes), NumUnits: 1,
	}
	unit := core.UnitSample{CPURate: te.CPUSeconds / elapsed, MemBytes: 0.5 * float64(spec.MemBytes)}
	eq1, err := core.IntelVariant().HostPower(nodeSample, unit)
	if err != nil {
		return nil, err
	}
	raplOnly := core.RAPLOnlyPower(nodeSample, unit)
	truthW := te.HostJoules / elapsed

	var buf strings.Builder
	fmt.Fprintf(&buf, "A2 — Measurement sources: RAPL-only vs IPMI+RAPL mix (Eq. 1)\n\n")
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SOURCE\tJOB W\tvs TRUTH")
	fmt.Fprintf(tw, "ground truth (wall)\t%.1f\t—\n", truthW)
	fmt.Fprintf(tw, "Eq.1 (IPMI+RAPL)\t%.1f\t%+.1f%%\n", eq1, (eq1-truthW)/truthW*100)
	fmt.Fprintf(tw, "RAPL only\t%.1f\t%+.1f%%\n", raplOnly, (raplOnly-truthW)/truthW*100)
	tw.Flush()
	gap := (1 - raplOnly/truthW) * 100
	fmt.Fprintf(&buf, "\nRAPL alone misses PSU losses, fans and board power: a %.0f%% coverage\n"+
		"gap on this node — the reason CEEMS mixes IPMI with RAPL (paper §II.A.b).\n", gap)
	return &Result{ID: "ablate-sources", Title: "Source ablation", Text: buf.String(),
		Headline: map[string]float64{"rapl_gap_pct": gap}}, nil
}

// RunAblateAggregation is A3: aggregate-from-DB vs long-range TSDB query
// latency — the reason the CEEMS API server exists.
func RunAblateAggregation(ctx context.Context) (*Result, error) {
	sim, err := smallSim(ctx, 2*time.Hour)
	if err != nil {
		return nil, err
	}
	eng, q := sim.Engine()

	// Long-range query path: sum energy over the whole window per uuid.
	start := time.Now()
	_, err = eng.Range(q, `sum by (uuid) ({__name__=~"uuid:total_watts:.+"})`,
		sim.Now().Add(-2*time.Hour), sim.Now(), time.Minute)
	if err != nil {
		return nil, err
	}
	tsdbLatency := time.Since(start)

	// DB path: the pre-aggregated units table.
	start = time.Now()
	rows, err := sim.Store.Select("units", relstore.Query{OrderBy: "total_energy_j", Desc: true})
	if err != nil {
		return nil, err
	}
	dbLatency := time.Since(start)

	var buf strings.Builder
	fmt.Fprintf(&buf, "A3 — Aggregates: API-server DB vs raw long-range TSDB query\n\n")
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PATH\tLATENCY\tRESULT")
	fmt.Fprintf(tw, "TSDB range query (2 h, 1 m steps)\t%v\tper-uuid power matrix\n", tsdbLatency.Round(time.Microsecond))
	fmt.Fprintf(tw, "API-server units table\t%v\t%d pre-aggregated rows\n", dbLatency.Round(time.Microsecond), len(rows))
	tw.Flush()
	speedup := float64(tsdbLatency) / float64(dbLatency)
	fmt.Fprintf(&buf, "\nSpeedup %.0fx on a 2 h window; the gap widens linearly with the window\n"+
		"(\"total energy of a project during the last year\" is intractable against\n"+
		"raw TSDB — the paper's stated motivation for the API server, §II.B.b).\n", speedup)
	return &Result{ID: "ablate-agg", Title: "Aggregation ablation", Text: buf.String(),
		Headline: map[string]float64{"speedup_x": speedup}}, nil
}

// RunAblateCleanup is A4: TSDB cardinality with and without short-unit
// series cleanup.
func RunAblateCleanup(ctx context.Context) (*Result, error) {
	run := func(cleanup bool) (int, int64, error) {
		topo := cluster.Topology{Name: "a4", IntelNodes: 4, Seed: 13}
		opts := cluster.DefaultOptions()
		if !cleanup {
			opts.ShortUnitCutoff = 0
		} else {
			opts.ShortUnitCutoff = 10 * time.Minute
		}
		sim, err := cluster.New(topo, opts, 10, 4, 15000) // churn-heavy
		if err != nil {
			return 0, 0, err
		}
		sim.Gen.MedianDuration = 3 * time.Minute // short jobs dominate
		sim.RunFor(ctx, time.Hour)
		if err := sim.FinalizeUpdate(ctx); err != nil {
			return 0, 0, err
		}
		return sim.DB.Stats().NumSeries, sim.Updater.SeriesDeleted, nil
	}
	without, _, err := run(false)
	if err != nil {
		return nil, err
	}
	with, deleted, err := run(true)
	if err != nil {
		return nil, err
	}
	var buf strings.Builder
	fmt.Fprintf(&buf, "A4 — TSDB cleanup of short units (cardinality reduction, Fig. 1 \"Clean TSDB\")\n\n")
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CONFIG\tACTIVE SERIES AFTER 1 H\tSERIES DELETED")
	fmt.Fprintf(tw, "no cleanup\t%d\t0\n", without)
	fmt.Fprintf(tw, "cleanup <10 min units\t%d\t%d\n", with, deleted)
	tw.Flush()
	red := 0.0
	if without > 0 {
		red = float64(without-with) / float64(without) * 100
	}
	fmt.Fprintf(&buf, "\nCardinality reduced %.0f%% under churn-heavy load; aggregates survive in\n"+
		"the relational DB, so no accounting information is lost.\n", red)
	return &Result{ID: "ablate-cleanup", Title: "Cleanup ablation", Text: buf.String(),
		Headline: map[string]float64{"series_without": float64(without), "series_with": float64(with), "reduction_pct": red}}, nil
}
