// Package experiments regenerates every evaluation artifact of the paper
// (DESIGN.md experiment index E1-E10 plus ablations A1-A4): each experiment
// runs the real stack over the simulated platform and renders the table or
// panel the paper shows. The ceems_bench binary and the repository-level
// benchmarks are thin wrappers over this package.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exporter"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/relstore"
)

// Result is one experiment's rendered output plus headline numbers.
type Result struct {
	ID       string
	Title    string
	Text     string
	Headline map[string]float64
}

// Registry maps experiment IDs to runners.
var Registry = map[string]func(ctx context.Context) (*Result, error){
	"eq1":            RunEq1,
	"fig2a":          RunFig2a,
	"fig2b":          RunFig2b,
	"fig2c":          RunFig2c,
	"overhead":       RunOverhead,
	"scale":          RunScale,
	"rules":          RunRuleVariants,
	"emissions":      RunEmissions,
	"lb":             RunLB,
	"ablate-attr":    RunAblateAttribution,
	"ablate-sources": RunAblateSources,
	"ablate-agg":     RunAblateAggregation,
	"ablate-cleanup": RunAblateCleanup,
}

// IDs returns the experiment identifiers, sorted.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

var simStart = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// RunEq1 is E2: validate the Eq. 1 attribution on a node with controlled
// workloads — conservation, per-job estimates vs ground truth, and the
// sweep over job counts.
func RunEq1(_ context.Context) (*Result, error) {
	var buf strings.Builder
	fmt.Fprintf(&buf, "E2 — Eq. 1 job power estimation (paper §III.A)\n")
	fmt.Fprintf(&buf, "One Intel node (64 cpus), N jobs with controlled CPU/mem profiles.\n\n")
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "N JOBS\tIPMI W\tSUM Eq1 W\tCONSERVATION ERR\tMAX |Eq1-TRUTH|/TRUTH")
	head := map[string]float64{}
	for _, nJobs := range []int{1, 2, 4, 8} {
		spec := hw.DefaultIntelSpec("eq1")
		spec.NoiseFrac = 0
		node, err := hw.NewNode(spec, simStart)
		if err != nil {
			return nil, err
		}
		cpusEach := spec.TotalCPUs() / nJobs
		for j := 0; j < nJobs; j++ {
			util := 0.3 + 0.6*float64(j)/float64(nJobs)
			err := node.AddWorkload(&hw.Workload{
				ID: fmt.Sprintf("job_%d", j), CPUs: cpusEach,
				MemLimit: spec.MemBytes / int64(nJobs),
				CPUUtil:  func(time.Duration) float64 { return util },
				MemUtil:  func(time.Duration) float64 { return util },
			})
			if err != nil {
				return nil, err
			}
		}
		var elapsed float64
		for i := 0; i < 40; i++ {
			node.Advance(15 * time.Second)
			elapsed += 15
		}
		ipmi, _ := node.PowerReading()
		cpuW, dramW, _ := node.ComponentPowers()
		// Build samples from the simulator's own accounting.
		nodeSample := core.NodeSample{
			IPMIWatts: ipmi, RAPLCPUWatts: cpuW, RAPLDRAMWatts: dramW,
			NumUnits: nJobs,
		}
		var units []core.UnitSample
		var truths []float64
		for j := 0; j < nJobs; j++ {
			te, _ := node.Truth(fmt.Sprintf("job_%d", j))
			util := 0.3 + 0.6*float64(j)/float64(nJobs)
			u := core.UnitSample{
				CPURate:  te.CPUSeconds / elapsed,
				MemBytes: util * float64(spec.MemBytes) / float64(nJobs),
			}
			nodeSample.CPURate += u.CPURate
			nodeSample.MemBytes += u.MemBytes
			units = append(units, u)
			truths = append(truths, te.HostJoules/elapsed)
		}
		nodeSample.CPURate += 0.004 * float64(spec.TotalCPUs()) // OS baseline
		est := core.IntelVariant()
		powers, err := est.AttributeAll(nodeSample, units)
		if err != nil {
			return nil, err
		}
		var sum, maxErr float64
		for j, p := range powers {
			sum += p
			if truths[j] > 0 {
				maxErr = math.Max(maxErr, math.Abs(p-truths[j])/truths[j])
			}
		}
		consErr := math.Abs(sum-ipmi) / ipmi
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.2f%%\t%.1f%%\n", nJobs, ipmi, sum, consErr*100, maxErr*100)
		head[fmt.Sprintf("conservation_err_n%d", nJobs)] = consErr
		head[fmt.Sprintf("max_truth_err_n%d", nJobs)] = maxErr
	}
	tw.Flush()
	buf.WriteString("\nConservation: Σ per-job Eq. 1 power equals the IPMI reading (the formula\n" +
		"splits 0.9+0.1 of P_ipmi exactly). Truth error reflects idle-power smearing:\n" +
		"Eq. 1 attributes by activity shares while true idle draw is uniform.\n")
	return &Result{ID: "eq1", Title: "Eq. 1 validation", Text: buf.String(), Headline: head}, nil
}

// smallSim builds and runs a compact mixed cluster for the dashboard
// experiments.
func smallSim(ctx context.Context, d time.Duration) (*cluster.Sim, error) {
	topo := cluster.Topology{
		Name: "jz-mini", IntelNodes: 4, AMDNodes: 2,
		GPUIncludedNodes: 1, GPUExcludedNodes: 1,
		GPUsPerNode: 4, GPUKinds: []model.GPUKind{model.GPUA100},
		Seed: 11,
	}
	sim, err := cluster.New(topo, cluster.DefaultOptions(), 8, 4, 3000)
	if err != nil {
		return nil, err
	}
	sim.RunFor(ctx, d)
	if err := sim.FinalizeUpdate(ctx); err != nil {
		return nil, err
	}
	return sim, nil
}

// RunFig2a is E3: the per-user aggregate usage panel.
func RunFig2a(ctx context.Context) (*Result, error) {
	sim, err := smallSim(ctx, 2*time.Hour)
	if err != nil {
		return nil, err
	}
	rows, err := sim.Store.Select("users", relstore.Query{OrderBy: "total_energy_j", Desc: true})
	if err != nil {
		return nil, err
	}
	var buf strings.Builder
	fmt.Fprintf(&buf, "E3 — Fig. 2a: aggregate usage metrics per user (2 h window)\n\n")
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "USER\tUNITS\tCPU-HOURS\tAVG CPU%\tAVG GPU%\tENERGY kWh\tEMISSIONS g")
	head := map[string]float64{}
	for _, r := range rows {
		fmt.Fprintf(tw, "%v\t%v\t%.1f\t%.1f\t%.1f\t%.4f\t%.2f\n",
			r["user"], r["num_units"],
			f(r["cpu_time_sec"])/3600, f(r["avg_cpu_usage"])*100,
			f(r["avg_gpu_usage"])*100, f(r["total_energy_j"])/3.6e6,
			f(r["emissions_g"]))
		head["energy_kwh_total"] += f(r["total_energy_j"]) / 3.6e6
		head["emissions_g_total"] += f(r["emissions_g"])
	}
	tw.Flush()
	head["num_users"] = float64(len(rows))
	return &Result{ID: "fig2a", Title: "Fig 2a user aggregates", Text: buf.String(), Headline: head}, nil
}

// RunFig2b is E4: the per-job listing of one user.
func RunFig2b(ctx context.Context) (*Result, error) {
	sim, err := smallSim(ctx, 90*time.Minute)
	if err != nil {
		return nil, err
	}
	// Pick the user with the most units.
	users, err := sim.Store.Select("users", relstore.Query{OrderBy: "num_units", Desc: true, Limit: 1})
	if err != nil || len(users) == 0 {
		return nil, fmt.Errorf("experiments: no users (%v)", err)
	}
	user := users[0]["user"].(string)
	units, err := sim.Store.Select("units", relstore.Query{
		Where:   []relstore.Cond{{Col: "user", Op: relstore.OpEq, Val: user}},
		OrderBy: "created_at",
	})
	if err != nil {
		return nil, err
	}
	var buf strings.Builder
	fmt.Fprintf(&buf, "E4 — Fig. 2b: SLURM jobs of user %s with aggregate metrics\n\n", user)
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "JOBID\tPARTITION\tSTATE\tELAPSED\tCPUS\tGPUS\tAVG CPU%\tENERGY kWh\tCO2 g")
	for _, r := range units {
		fmt.Fprintf(tw, "%v\t%v\t%v\t%vs\t%v\t%v\t%.1f\t%.5f\t%.3f\n",
			r["id"], r["partition"], r["state"], r["elapsed_sec"], r["cpus"], r["gpus"],
			f(r["avg_cpu_usage"])*100, f(r["total_energy_j"])/3.6e6, f(r["emissions_g"]))
	}
	tw.Flush()
	return &Result{
		ID: "fig2b", Title: "Fig 2b job list", Text: buf.String(),
		Headline: map[string]float64{"jobs_listed": float64(len(units))},
	}, nil
}

// RunFig2c is E5: the time-series CPU metrics of one job.
func RunFig2c(ctx context.Context) (*Result, error) {
	sim, err := smallSim(ctx, time.Hour)
	if err != nil {
		return nil, err
	}
	// Find a long-running unit.
	units, err := sim.Store.Select("units", relstore.Query{
		Where:   []relstore.Cond{{Col: "elapsed_sec", Op: relstore.OpGe, Val: int64(1800)}},
		OrderBy: "elapsed_sec", Desc: true, Limit: 1,
	})
	if err != nil || len(units) == 0 {
		return nil, fmt.Errorf("experiments: no long job found (%v)", err)
	}
	uid := units[0]["id"].(string)
	eng, q := sim.Engine()
	var buf strings.Builder
	fmt.Fprintf(&buf, "E5 — Fig. 2c: time-series CPU metrics of job %s (1 h, 1 min steps)\n\n", uid)
	for _, panel := range []struct{ title, query string }{
		{"CPU usage (share of node)", fmt.Sprintf(`{__name__=~"uuid:cpu_share:.+",uuid=%q}`, uid)},
		{"Attributed power (W)", fmt.Sprintf(`{__name__=~"uuid:total_watts:.+",uuid=%q}`, uid)},
		{"Memory used (GiB)", fmt.Sprintf(`ceems_compute_unit_memory_used_bytes{uuid=%q} / 1073741824`, uid)},
	} {
		m, err := eng.Range(q, panel.query, sim.Now().Add(-time.Hour), sim.Now(), time.Minute)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&buf, "%s\n", panel.title)
		for _, sr := range m {
			points := make([]grafanaPoint, len(sr.Samples))
			var mn, mx = math.Inf(1), math.Inf(-1)
			for i, s := range sr.Samples {
				points[i] = grafanaPoint{V: s.V}
				mn, mx = math.Min(mn, s.V), math.Max(mx, s.V)
			}
			fmt.Fprintf(&buf, "  %s  [min %.3f max %.3f, %d pts]\n", sparkline(points, 60), mn, mx, len(points))
		}
	}
	return &Result{ID: "fig2c", Title: "Fig 2c time series", Text: buf.String(),
		Headline: map[string]float64{}}, nil
}

// RunOverhead is E6: exporter footprint vs the paper's 15-20 MB / "scrape
// under a microsecond of CPU" claims.
func RunOverhead(_ context.Context) (*Result, error) {
	spec := hw.DefaultIntelSpec("overhead")
	node, err := hw.NewNode(spec, simStart)
	if err != nil {
		return nil, err
	}
	for j := 0; j < 16; j++ {
		node.AddWorkload(&hw.Workload{
			ID: fmt.Sprintf("job_%d", j), CPUs: 4, MemLimit: 8 << 30,
		})
	}
	node.Advance(15 * time.Second)
	exp := exporter.New(
		&exporter.CgroupCollector{FS: node.FS, Layout: exporter.SlurmLayout()},
		&exporter.RAPLCollector{FS: node.FS},
		&exporter.IPMICollector{Reader: node},
		&exporter.NodeCollector{FS: node.FS},
	)
	// Warm up, then measure.
	for i := 0; i < 100; i++ {
		exp.Render()
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapMB := float64(ms.HeapInuse) / (1 << 20)
	const iters = 2000
	start := time.Now()
	var bytes int
	for i := 0; i < iters; i++ {
		bytes = len(exp.Render())
	}
	perScrape := time.Since(start) / iters

	var buf strings.Builder
	fmt.Fprintf(&buf, "E6 — Exporter overhead (paper §II.B.a: 15-20 MB memory)\n\n")
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "METRIC\tPAPER\tMEASURED")
	fmt.Fprintf(tw, "resident memory\t15-20 MB\t%.1f MB heap in use (process total adds Go runtime)\n", heapMB)
	fmt.Fprintf(tw, "scrape CPU time\t\"<1 µs\"\t%v per full scrape (16 jobs, %d B payload)\n", perScrape, bytes)
	tw.Flush()
	buf.WriteString("\nThe paper's \"<1 microsecond of CPU time\" reads as per-request overhead\n" +
		"beyond collection; a full collect+render pass measures in the tens of\n" +
		"microseconds here, which is consistent in magnitude with a lightweight\n" +
		"exporter scraped every 15 s.\n")
	return &Result{ID: "overhead", Title: "Exporter overhead", Text: buf.String(),
		Headline: map[string]float64{"heap_mb": heapMB, "scrape_us": float64(perScrape.Microseconds())}}, nil
}

// RunScale is E7: the 1400-node / 20k-jobs-per-day claim, scaled by wall
// time budget: the full topology is built and driven for a few simulated
// minutes, measuring ingest throughput.
func RunScale(ctx context.Context) (*Result, error) {
	topo := cluster.JeanZay(1.0)
	start := time.Now()
	sim, err := cluster.New(topo, cluster.DefaultOptions(), 100, 25, 20000)
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(start)

	start = time.Now()
	const steps = 20 // 5 simulated minutes
	for i := 0; i < steps; i++ {
		sim.Step(ctx)
	}
	stepTime := time.Since(start)
	if err := sim.FinalizeUpdate(ctx); err != nil {
		return nil, err
	}
	st := sim.DB.Stats()
	sched := sim.Sched.Stats()

	simulated := time.Duration(steps) * sim.Opts.ScrapeInterval
	rtf := simulated.Seconds() / stepTime.Seconds()
	var buf strings.Builder
	fmt.Fprintf(&buf, "E7 — Jean-Zay scale (paper §III: ~1400 nodes, ~20k jobs/day)\n\n")
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "METRIC\tVALUE")
	fmt.Fprintf(tw, "nodes built\t%d (%d GPUs)\n", topo.TotalNodes(), topo.TotalGPUs())
	fmt.Fprintf(tw, "build time\t%v\n", buildTime.Round(time.Millisecond))
	fmt.Fprintf(tw, "simulated time\t%v in %v wall (%.1fx real time)\n", simulated, stepTime.Round(time.Millisecond), rtf)
	fmt.Fprintf(tw, "samples ingested\t%d (%.0f samples/s wall)\n", st.NumSamples, float64(st.NumSamples)/stepTime.Seconds())
	fmt.Fprintf(tw, "active series\t%d\n", st.NumSeries)
	fmt.Fprintf(tw, "chunk bytes\t%.1f MB\n", float64(st.BytesInChunks)/(1<<20))
	fmt.Fprintf(tw, "jobs submitted\t%d (target %.0f for the window)\n", sim.Gen.Submitted, 20000.0/(24*3600)*simulated.Seconds())
	fmt.Fprintf(tw, "jobs running\t%d\n", sched.Running)
	tw.Flush()
	if len(sim.Errors) > 0 {
		fmt.Fprintf(&buf, "\nsubsystem errors: %d (first: %s)\n", len(sim.Errors), sim.Errors[0])
	}
	return &Result{ID: "scale", Title: "1400-node scale", Text: buf.String(),
		Headline: map[string]float64{
			"nodes":          float64(topo.TotalNodes()),
			"realtime_x":     rtf,
			"samples_per_s":  float64(st.NumSamples) / stepTime.Seconds(),
			"active_series":  float64(st.NumSeries),
			"jobs_submitted": float64(sim.Gen.Submitted),
		}}, nil
}

// f coerces relstore values to float64.
func f(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	}
	return 0
}

type grafanaPoint struct{ V float64 }

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

func sparkline(points []grafanaPoint, width int) string {
	if len(points) == 0 {
		return "(no data)"
	}
	vals := make([]float64, width)
	counts := make([]int, width)
	for i, p := range points {
		b := i * width / len(points)
		vals[b] += p.V
		counts[b]++
	}
	mn, mx := math.Inf(1), math.Inf(-1)
	for i := range vals {
		if counts[i] > 0 {
			vals[i] /= float64(counts[i])
			mn, mx = math.Min(mn, vals[i]), math.Max(mx, vals[i])
		}
	}
	var b strings.Builder
	for i := range vals {
		if counts[i] == 0 {
			b.WriteByte(' ')
			continue
		}
		idx := 0
		if mx > mn {
			idx = int((vals[i] - mn) / (mx - mn) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// WriteAll runs every experiment and writes the combined report.
func WriteAll(ctx context.Context, w io.Writer) error {
	for _, id := range IDs() {
		res, err := Registry[id](ctx)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Fprintf(w, "%s\n%s\n", strings.Repeat("=", 72), res.Text)
	}
	return nil
}
