package experiments

import (
	"context"
	"strings"
	"testing"
)

// Each experiment must run clean and produce a non-trivial report. The
// scale experiment (E7) is exercised separately in -short-excluded mode
// because it builds 1400 nodes.
func TestExperimentsRun(t *testing.T) {
	ctx := context.Background()
	for _, id := range IDs() {
		if id == "scale" {
			continue // covered by TestScaleExperiment
		}
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Registry[id](ctx)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.ID != id {
				t.Errorf("result ID = %q", res.ID)
			}
			if len(res.Text) < 100 {
				t.Errorf("report too short:\n%s", res.Text)
			}
			if !strings.Contains(res.Text, "\t") && !strings.Contains(res.Text, "  ") {
				t.Errorf("report has no table content")
			}
		})
	}
}

func TestEq1Invariants(t *testing.T) {
	res, err := RunEq1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The OS baseline (0.4% of CPUs) takes a sliver of the CPU share, so
	// conservation holds to ~1%, not exactly.
	for _, n := range []int{1, 2, 4, 8} {
		k := "conservation_err_n" + string(rune('0'+n))
		if res.Headline[k] > 0.02 {
			t.Errorf("%s = %v, want < 2%%", k, res.Headline[k])
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	res, err := RunAblateAttribution(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Headline["err_eq1_w"] >= res.Headline["err_equal_w"] {
		t.Errorf("Eq.1 error %v should beat equal split %v",
			res.Headline["err_eq1_w"], res.Headline["err_equal_w"])
	}
	if res.Headline["err_eq1_w"] >= res.Headline["err_mem_w"] {
		t.Errorf("Eq.1 error %v should beat memory-only %v",
			res.Headline["err_eq1_w"], res.Headline["err_mem_w"])
	}

	src, err := RunAblateSources(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if src.Headline["rapl_gap_pct"] < 5 {
		t.Errorf("RAPL coverage gap = %v%%, expected a visible gap", src.Headline["rapl_gap_pct"])
	}
}

func TestCleanupReducesCardinality(t *testing.T) {
	if testing.Short() {
		t.Skip("hour-long churn sim")
	}
	res, err := RunAblateCleanup(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Headline["series_with"] >= res.Headline["series_without"] {
		t.Errorf("cleanup did not reduce series: %v vs %v",
			res.Headline["series_with"], res.Headline["series_without"])
	}
}

func TestScaleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full 1400-node topology")
	}
	res, err := RunScale(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Headline["nodes"] < 1300 {
		t.Errorf("nodes = %v", res.Headline["nodes"])
	}
	if res.Headline["realtime_x"] < 1 {
		t.Errorf("simulation slower than real time: %vx", res.Headline["realtime_x"])
	}
	t.Logf("\n%s", res.Text)
}
