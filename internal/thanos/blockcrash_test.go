package thanos

// Crash harness for the block-store lifecycle, extending the WAL
// kill-at-any-byte methodology (internal/tsdb/walcrash_test.go) to block
// publication, compaction and downsampling. The contract under test:
// meta.json inside a non-.tmp directory is the commit point, so any crash
// leaves the store either without the new block (tmp swept, sources
// intact — the write was never acked) or with the complete block — and in
// every case a reopened store serves exactly the samples of the
// uncompacted oracle.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb"
)

func crashMatchAll() *labels.Matcher {
	return labels.MustMatcher(labels.MatchNotEqual, labels.MetricName, "")
}

func storeSelectAll(t *testing.T, s *Store) []model.Series {
	t.Helper()
	got, err := s.Select(-1<<60, 1<<60, crashMatchAll())
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func assertStoreEqual(t *testing.T, got, want []model.Series, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d series, want %d", what, len(got), len(want))
	}
	for i := range want {
		if !got[i].Labels.Equal(want[i].Labels) {
			t.Fatalf("%s: series %d labels %s, want %s", what, i, got[i].Labels, want[i].Labels)
		}
		if !reflect.DeepEqual(got[i].Samples, want[i].Samples) {
			t.Fatalf("%s: series %s: %d samples, want %d", what, got[i].Labels,
				len(got[i].Samples), len(want[i].Samples))
		}
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(p)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// preserveOnFail copies the crash-state store directory into
// $BLOCKS_ARTIFACT_DIR when the test fails, so CI can upload the exact
// on-disk state that broke recovery. Best-effort: never fails the test.
func preserveOnFail(t *testing.T, state string) {
	dst := os.Getenv("BLOCKS_ARTIFACT_DIR")
	if dst == "" {
		return
	}
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		target := filepath.Join(dst, t.Name(), filepath.Base(state))
		_ = filepath.Walk(state, func(p string, info os.FileInfo, err error) error {
			if err != nil {
				return nil
			}
			rel, _ := filepath.Rel(state, p)
			out := filepath.Join(target, rel)
			if info.IsDir() {
				_ = os.MkdirAll(out, 0o755)
				return nil
			}
			data, err := os.ReadFile(p)
			if err == nil {
				_ = os.WriteFile(out, data, 0o644)
			}
			return nil
		})
		t.Logf("crash state preserved at %s", target)
	})
}

// seedStore builds a store directory holding nBlocks committed raw blocks
// over disjoint time ranges and returns its path plus the oracle: the full
// contents as served before any crash or compaction.
func seedStore(t *testing.T, nBlocks int) (string, []model.Series) {
	t.Helper()
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < nBlocks; b++ {
		db := seedDB(t, 4, 120, int64(b)*120*15000)
		blk, err := db.CutBlock(-1<<60, 1<<60)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Upload(blk); err != nil {
			t.Fatal(err)
		}
	}
	oracle := storeSelectAll(t, store)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, oracle
}

// writeTruncatedTmp assembles `<ulid>.tmp` in dir from the donor block's
// files truncated at a global byte offset, in the exact order writeBlockDir
// produces them (chunks, then index, then meta.json): every crash point of
// the publication sequence before the rename.
func writeTruncatedTmp(t *testing.T, dir, donor string, offset int64) string {
	t.Helper()
	tmp := filepath.Join(dir, filepath.Base(donor)+".tmp")
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	remaining := offset
	for _, name := range []string{tsdb.ChunksFilename, tsdb.IndexFilename, tsdb.MetaFilename} {
		if remaining <= 0 {
			break
		}
		data, err := os.ReadFile(filepath.Join(donor, name))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(data)) > remaining {
			data = data[:remaining]
		}
		remaining -= int64(len(data))
		if err := os.WriteFile(filepath.Join(tmp, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return tmp
}

func donorSize(t *testing.T, donor string) int64 {
	t.Helper()
	var total int64
	for _, name := range []string{tsdb.ChunksFilename, tsdb.IndexFilename, tsdb.MetaFilename} {
		fi, err := os.Stat(filepath.Join(donor, name))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestBlockPublishCrashAtAnyByte kills a block upload at every phase of the
// durable-write sequence: a .tmp directory truncated at a random byte (any
// prefix of chunks/index/meta.json), a byte-complete .tmp that never got
// renamed, and a fully renamed directory. Recovery must never serve partial
// data: tmp states are swept (the write was never acked — the shipper
// re-cuts it) and only the rename commits the block.
func TestBlockPublishCrashAtAnyByte(t *testing.T) {
	pristine, oracle := seedStore(t, 2)

	// Donor: an unrelated third block, fully written elsewhere.
	db := seedDB(t, 4, 120, 3*120*15000)
	scratch := t.TempDir()
	donorBlk, err := db.CutPersistentBlock(scratch, -1<<60, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	donor := donorBlk.Dir()
	donorBlk.Close()
	total := donorSize(t, donor)

	trials := 25
	if testing.Short() {
		trials = 6
	}
	rng := rand.New(rand.NewSource(0xC4A5))
	for trial := 0; trial < trials; trial++ {
		state := t.TempDir()
		copyTree(t, pristine, state)
		preserveOnFail(t, state)
		offset := rng.Int63n(total) // crash strictly inside the write
		tmp := writeTruncatedTmp(t, state, donor, offset)

		store, err := NewStore(state)
		if err != nil {
			t.Fatalf("trial %d (offset %d): reopen: %v", trial, offset, err)
		}
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Fatalf("trial %d: tmp dir survived recovery", trial)
		}
		if store.NumBlocks() != 2 {
			t.Fatalf("trial %d: %d blocks, want 2", trial, store.NumBlocks())
		}
		assertStoreEqual(t, storeSelectAll(t, store), oracle,
			fmt.Sprintf("trial %d offset %d", trial, offset))
		store.Close()
	}

	// Crash between the tmp-dir fsync and the rename: all bytes on disk,
	// commit never happened — still swept.
	t.Run("complete tmp never renamed", func(t *testing.T) {
		state := t.TempDir()
		copyTree(t, pristine, state)
		preserveOnFail(t, state)
		writeTruncatedTmp(t, state, donor, total)
		store, err := NewStore(state)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		if store.NumBlocks() != 2 {
			t.Fatalf("%d blocks, want 2", store.NumBlocks())
		}
		assertStoreEqual(t, storeSelectAll(t, store), oracle, "complete tmp")
	})

	// Crash after the rename: the block is committed and must be served.
	t.Run("renamed dir is committed", func(t *testing.T) {
		state := t.TempDir()
		copyTree(t, pristine, state)
		preserveOnFail(t, state)
		dst := filepath.Join(state, filepath.Base(donor))
		copyTree(t, donor, dst)
		store, err := NewStore(state)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		if store.NumBlocks() != 3 {
			t.Fatalf("%d blocks, want 3", store.NumBlocks())
		}
		got := storeSelectAll(t, store)
		var n int
		for _, sr := range got {
			n += len(sr.Samples)
		}
		var want int
		for _, sr := range oracle {
			want += len(sr.Samples)
		}
		if n != want+4*120 {
			t.Fatalf("%d samples, want %d", n, want+4*120)
		}
	})
}

// compactChild runs a real compaction in a scratch copy of the store and
// returns the path of the produced merged block directory.
func compactChild(t *testing.T, pristine string) string {
	t.Helper()
	work := t.TempDir()
	copyTree(t, pristine, work)
	store, err := NewStore(work)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.Compact(nil); err != nil {
		t.Fatal(err)
	}
	for _, m := range store.BlockMetas() {
		if m.Level > 1 {
			return filepath.Join(work, m.ULID)
		}
	}
	t.Fatal("compaction produced no merged block")
	return ""
}

// TestCompactCrashWindowRecovery walks the compaction publication windows:
// crash with a partial merged .tmp (sources intact), crash after the merged
// block committed but before any source was deleted, and crash mid-way
// through source deletion. Every window must reopen to the exact oracle —
// the merged block's Sources list lets recovery GC the leftovers.
func TestCompactCrashWindowRecovery(t *testing.T) {
	pristine, oracle := seedStore(t, 3)
	child := compactChild(t, pristine)

	sources := func(state string) []string {
		entries, err := os.ReadDir(state)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, e := range entries {
			if e.IsDir() && e.Name() != filepath.Base(child) && !tsdb.IsTmpBlockDir(e.Name()) {
				out = append(out, e.Name())
			}
		}
		return out
	}

	t.Run("partial merged tmp", func(t *testing.T) {
		total := donorSize(t, child)
		rng := rand.New(rand.NewSource(0xC0FA))
		trials := 10
		if testing.Short() {
			trials = 3
		}
		for trial := 0; trial < trials; trial++ {
			state := t.TempDir()
			copyTree(t, pristine, state)
			preserveOnFail(t, state)
			writeTruncatedTmp(t, state, child, rng.Int63n(total))
			store, err := NewStore(state)
			if err != nil {
				t.Fatal(err)
			}
			if store.NumBlocks() != 3 {
				t.Fatalf("trial %d: %d blocks, want the 3 sources", trial, store.NumBlocks())
			}
			assertStoreEqual(t, storeSelectAll(t, store), oracle, fmt.Sprintf("trial %d", trial))
			store.Close()
		}
	})

	t.Run("merged committed, sources not yet deleted", func(t *testing.T) {
		state := t.TempDir()
		copyTree(t, pristine, state)
		preserveOnFail(t, state)
		copyTree(t, child, filepath.Join(state, filepath.Base(child)))
		store, err := NewStore(state)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		if store.NumBlocks() != 1 {
			t.Fatalf("%d blocks, want 1 (sources GC'd via Sources list)", store.NumBlocks())
		}
		if got := sources(state); len(got) != 0 {
			t.Fatalf("source dirs survived recovery: %v", got)
		}
		assertStoreEqual(t, storeSelectAll(t, store), oracle, "post-GC")
	})

	t.Run("crash mid source deletion", func(t *testing.T) {
		state := t.TempDir()
		copyTree(t, pristine, state)
		preserveOnFail(t, state)
		copyTree(t, child, filepath.Join(state, filepath.Base(child)))
		srcs := sources(state)
		if len(srcs) != 3 {
			t.Fatalf("want 3 source dirs, have %v", srcs)
		}
		if err := os.RemoveAll(filepath.Join(state, srcs[0])); err != nil {
			t.Fatal(err)
		}
		store, err := NewStore(state)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		if store.NumBlocks() != 1 {
			t.Fatalf("%d blocks, want 1", store.NumBlocks())
		}
		assertStoreEqual(t, storeSelectAll(t, store), oracle, "partial delete")
	})
}

// TestDownsampleCrashWindow: a crash while publishing a downsampled child
// leaves a .tmp that recovery sweeps, after which Downsample reproduces the
// child; a committed child makes Downsample a no-op while the raw parent —
// a different resolution — is never GC'd.
func TestDownsampleCrashWindow(t *testing.T) {
	pristine, oracle := seedStore(t, 1)

	// Produce the downsampled child in a scratch copy.
	work := t.TempDir()
	copyTree(t, pristine, work)
	ws, err := NewStore(work)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ws.Downsample(1<<60, 5*time.Minute); err != nil || n != 1 {
		t.Fatalf("downsample = %d, %v", n, err)
	}
	var child string
	for _, m := range ws.BlockMetas() {
		if m.Resolution != 0 {
			child = filepath.Join(work, m.ULID)
		}
	}
	ws.Close()
	if child == "" {
		t.Fatal("no downsampled block")
	}

	t.Run("partial child tmp swept, retry succeeds", func(t *testing.T) {
		state := t.TempDir()
		copyTree(t, pristine, state)
		preserveOnFail(t, state)
		writeTruncatedTmp(t, state, child, donorSize(t, child)/2)
		store, err := NewStore(state)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		if store.NumBlocks() != 1 {
			t.Fatalf("%d blocks, want 1", store.NumBlocks())
		}
		if n, err := store.Downsample(1<<60, 5*time.Minute); err != nil || n != 1 {
			t.Fatalf("retry downsample = %d, %v", n, err)
		}
		assertStoreEqual(t, storeSelectAll(t, store), oracle, "raw after retry")
	})

	t.Run("committed child is idempotent, parent kept", func(t *testing.T) {
		state := t.TempDir()
		copyTree(t, pristine, state)
		preserveOnFail(t, state)
		copyTree(t, child, filepath.Join(state, filepath.Base(child)))
		store, err := NewStore(state)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		if store.NumBlocks() != 2 {
			t.Fatalf("%d blocks, want raw parent + child", store.NumBlocks())
		}
		if n, err := store.Downsample(1<<60, 5*time.Minute); err != nil || n != 0 {
			t.Fatalf("re-downsample = %d, %v (want idempotent no-op)", n, err)
		}
		assertStoreEqual(t, storeSelectAll(t, store), oracle, "raw via committed child")
	})
}
