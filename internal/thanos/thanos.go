// Package thanos implements the long-term-storage substrate of the stack
// (the Thanos role in the paper's Fig. 1): a sidecar ships immutable
// blocks from the hot TSDB to an object-store-like directory, the store
// serves them back with optional downsampling, and a fan-in querier merges
// hot and cold data so long-range queries (the API server's aggregate
// pass) transparently span both.
package thanos

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb"
)

// Store holds uploaded blocks, persisted one file per block.
type Store struct {
	dir string

	mu     sync.RWMutex
	blocks []*tsdb.Block
	// labelIndex: name -> value set across all blocks, maintained on
	// upload/load so the LabelStore endpoints don't scan every series.
	// Blocks are never removed and downsampling preserves label sets, so
	// the index only grows.
	labelIndex map[string]map[string]struct{}
}

// NewStore opens a store directory, loading any existing blocks.
func NewStore(dir string) (*Store, error) {
	s := &Store{dir: dir}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".blk") {
			continue
		}
		b, err := tsdb.ReadBlockFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("thanos: loading %s: %w", e.Name(), err)
		}
		s.blocks = append(s.blocks, b)
		s.indexBlockLocked(b)
	}
	s.sortLocked()
	return s, nil
}

// indexBlockLocked merges a block's label sets into the index. Caller holds
// s.mu (or has exclusive access during construction).
func (s *Store) indexBlockLocked(b *tsdb.Block) {
	if s.labelIndex == nil {
		s.labelIndex = map[string]map[string]struct{}{}
	}
	for _, bs := range b.Series {
		for _, l := range bs.Labels {
			vs, ok := s.labelIndex[l.Name]
			if !ok {
				vs = map[string]struct{}{}
				s.labelIndex[l.Name] = vs
			}
			vs[l.Value] = struct{}{}
		}
	}
}

func (s *Store) sortLocked() {
	sort.Slice(s.blocks, func(i, j int) bool { return s.blocks[i].MinTime < s.blocks[j].MinTime })
}

// Upload persists and registers a block. Empty blocks are dropped.
func (s *Store) Upload(b *tsdb.Block) error {
	if b.NumSamples() == 0 {
		return nil
	}
	if s.dir != "" {
		path := tsdb.BlockFileName(s.dir, b.MinTime, b.MaxTime)
		if err := b.WriteFile(path); err != nil {
			return fmt.Errorf("thanos: upload: %w", err)
		}
	}
	s.mu.Lock()
	s.blocks = append(s.blocks, b)
	s.indexBlockLocked(b)
	s.sortLocked()
	s.mu.Unlock()
	return nil
}

// NumBlocks returns the number of registered blocks.
func (s *Store) NumBlocks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// Select implements promql.Queryable over all blocks, merging samples of
// the same series across block boundaries (overlaps are deduplicated by
// timestamp).
func (s *Store) Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error) {
	return s.selectLimited(mint, maxt, 0, ms)
}

// SelectWithHints is the hint-aware Select: identical output, but when
// hints.SampleLimit is set the budget is threaded into each block's decode
// (Block.SelectLimited), so an oversized query aborts mid-copy with
// model.ErrSampleLimit instead of materializing every sample. The budget
// is charged per copied sample BEFORE cross-block dedup — it bounds the
// memory the scan materializes, so samples duplicated across overlapping
// uploads are deliberately charged once per block.
func (s *Store) SelectWithHints(hints model.SelectHints, ms ...*labels.Matcher) ([]model.Series, error) {
	return s.selectLimited(hints.Start, hints.End, hints.SampleLimit, ms)
}

func (s *Store) selectLimited(mint, maxt, limit int64, ms []*labels.Matcher) ([]model.Series, error) {
	s.mu.RLock()
	blocks := append([]*tsdb.Block(nil), s.blocks...)
	s.mu.RUnlock()

	var copied int64
	merged := map[uint64]*model.Series{}
	var order []uint64
	for _, b := range blocks {
		if b.MaxTime < mint || b.MinTime > maxt {
			continue
		}
		rem := int64(0)
		if limit > 0 {
			rem = limit - copied
			if rem <= 0 {
				// Exactly-at-budget so far: a later block may legitimately
				// match nothing. Pass 1 so any further sample aborts
				// mid-copy; the post-loop check below catches the ==1 case.
				rem = 1
			}
		}
		bs, err := b.SelectLimited(mint, maxt, rem, ms...)
		if err != nil {
			return nil, err
		}
		for _, series := range bs {
			copied += int64(len(series.Samples))
			h := series.Labels.Hash()
			acc, ok := merged[h]
			if !ok {
				cp := series
				cp.Samples = append([]model.Sample(nil), series.Samples...)
				merged[h] = &cp
				order = append(order, h)
				continue
			}
			acc.Samples = append(acc.Samples, series.Samples...)
		}
	}
	if limit > 0 && copied > limit {
		return nil, model.ErrSampleLimit
	}
	out := make([]model.Series, 0, len(order))
	for _, h := range order {
		sr := merged[h]
		sort.Slice(sr.Samples, func(i, j int) bool { return sr.Samples[i].T < sr.Samples[j].T })
		// Deduplicate equal timestamps (overlapping uploads).
		dedup := sr.Samples[:0]
		var lastT int64 = -1 << 62
		for _, smp := range sr.Samples {
			if smp.T == lastT {
				continue
			}
			dedup = append(dedup, smp)
			lastT = smp.T
		}
		sr.Samples = dedup
		out = append(out, *sr)
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out, nil
}

// LabelNames returns the sorted distinct label names across all blocks
// (with LabelValues, this makes the store — and the fan-in Querier —
// satisfy promapi.LabelStore). Served from the maintained index, not a
// block scan.
func (s *Store) LabelNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.labelIndex))
	for n := range s.labelIndex {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LabelValues returns the sorted distinct values of a label name across all
// blocks.
func (s *Store) LabelValues(name string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return labels.SortedKeys(s.labelIndex[name])
}

// Downsample rewrites every block older than `before` to the given
// resolution (bucket means), reclaiming space for long-horizon queries, as
// Thanos's compactor does.
func (s *Store) Downsample(before int64, resolution time.Duration) (int, error) {
	res := resolution.Milliseconds()
	if res <= 0 {
		return 0, fmt.Errorf("thanos: resolution must be positive")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for i, b := range s.blocks {
		if b.MaxTime >= before {
			continue
		}
		db, err := downsampleBlock(b, res)
		if err != nil {
			return n, err
		}
		if s.dir != "" {
			old := tsdb.BlockFileName(s.dir, b.MinTime, b.MaxTime)
			if err := db.WriteFile(old); err != nil {
				return n, err
			}
		}
		s.blocks[i] = db
		n++
	}
	return n, nil
}

func downsampleBlock(b *tsdb.Block, resMs int64) (*tsdb.Block, error) {
	matchAll := labels.MustMatcher(labels.MatchRegexp, labels.MetricName, ".*")
	series := b.Select(b.MinTime, b.MaxTime, matchAll)
	agg := tsdb.MustOpen(tsdb.DefaultOptions())
	for _, sr := range series {
		var bucketStart int64 = -1 << 62
		var sum float64
		var cnt int
		flush := func() error {
			if cnt == 0 {
				return nil
			}
			return agg.Append(sr.Labels, bucketStart+resMs-1, sum/float64(cnt))
		}
		for _, smp := range sr.Samples {
			bs := smp.T / resMs * resMs
			if bs != bucketStart {
				if err := flush(); err != nil {
					return nil, err
				}
				bucketStart = bs
				sum, cnt = 0, 0
			}
			sum += smp.V
			cnt++
		}
		if err := flush(); err != nil {
			return nil, err
		}
	}
	return agg.CutBlock(b.MinTime, b.MaxTime+resMs)
}

// Sidecar ships blocks from the hot TSDB to the store on a cadence,
// optionally truncating the head afterwards (the hot/short-term split of
// Fig. 1).
type Sidecar struct {
	DB    *tsdb.DB
	Store *Store
	// HeadRetention bounds what stays in the hot TSDB after a ship;
	// 0 keeps everything.
	HeadRetention time.Duration

	mu       sync.Mutex
	lastShip int64 // ms; exclusive lower bound of the next block
	Shipped  int
}

// Ship cuts a block of everything since the previous ship (up to now) and
// uploads it.
func (sc *Sidecar) Ship(now time.Time) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	maxt := now.UnixMilli()
	mint := sc.lastShip + 1
	if sc.lastShip == 0 {
		if dbMin, ok := sc.DB.MinTime(); ok {
			mint = dbMin
		}
	}
	if mint > maxt {
		return nil
	}
	blk, err := sc.DB.CutBlock(mint, maxt)
	if err != nil {
		return err
	}
	if err := sc.Store.Upload(blk); err != nil {
		return err
	}
	if blk.NumSamples() > 0 {
		sc.Shipped++
	}
	sc.lastShip = maxt
	if sc.HeadRetention > 0 {
		sc.DB.Truncate(maxt - sc.HeadRetention.Milliseconds())
	}
	return nil
}

// Querier fans a Select over the hot TSDB and the cold store, merging
// results; it satisfies promql.Queryable so the engine (and therefore the
// API server and Grafana) can query long ranges transparently. The two
// backends are queried concurrently: the hot side is itself a parallel
// fan-out over head shards, the cold side an iteration over blocks.
type Querier struct {
	Hot  *tsdb.DB
	Cold *Store
}

// LabelNames unions hot and cold label names, sorted; with LabelValues it
// makes the fan-in Querier satisfy promapi.LabelStore, so Grafana's
// variable dropdowns work against the merged view.
func (q *Querier) LabelNames() []string {
	return labels.UnionSorted(q.Hot.LabelNames(), q.Cold.LabelNames())
}

// LabelValues unions hot and cold values of a label name, sorted.
func (q *Querier) LabelValues(name string) []string {
	return labels.UnionSorted(q.Hot.LabelValues(name), q.Cold.LabelValues(name))
}

// Select implements promql.Queryable.
func (q *Querier) Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error) {
	return q.SelectWithHints(model.SelectHints{Start: mint, End: maxt}, ms...)
}

// SelectWithHints fans the hint-aware Select over both backends. Each side
// enforces the full budget independently, so the merged result may reach
// 2× the limit in the worst case — a deliberate trade that keeps the two
// concurrent passes free of shared accounting; a side that alone exceeds
// the limit still fails the query.
func (q *Querier) SelectWithHints(hints model.SelectHints, ms ...*labels.Matcher) ([]model.Series, error) {
	var (
		wg              sync.WaitGroup
		cold, hot       []model.Series
		coldErr, hotErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cold, coldErr = q.Cold.SelectWithHints(hints, ms...)
	}()
	hot, hotErr = q.Hot.SelectWithHints(hints, ms...)
	wg.Wait()
	if coldErr != nil {
		return nil, coldErr
	}
	if hotErr != nil {
		return nil, hotErr
	}
	merged := map[uint64]*model.Series{}
	var order []uint64
	add := func(list []model.Series) {
		for _, sr := range list {
			h := sr.Labels.Hash()
			acc, ok := merged[h]
			if !ok {
				cp := sr
				cp.Samples = append([]model.Sample(nil), sr.Samples...)
				merged[h] = &cp
				order = append(order, h)
				continue
			}
			acc.Samples = append(acc.Samples, sr.Samples...)
		}
	}
	add(cold)
	add(hot)
	out := make([]model.Series, 0, len(order))
	for _, h := range order {
		sr := merged[h]
		sort.Slice(sr.Samples, func(i, j int) bool { return sr.Samples[i].T < sr.Samples[j].T })
		dedup := sr.Samples[:0]
		var lastT int64 = -1 << 62
		for _, smp := range sr.Samples {
			if smp.T == lastT {
				continue
			}
			dedup = append(dedup, smp)
			lastT = smp.T
		}
		sr.Samples = dedup
		out = append(out, *sr)
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out, nil
}
