// Package thanos implements the long-term-storage substrate of the stack
// (the Thanos role in the paper's Fig. 1): a sidecar ships immutable
// blocks from the hot TSDB into a persistent block store, background
// maintenance compacts and downsamples them, and a fan-in querier merges
// hot and cold data so long-range queries (the API server's aggregate
// pass) transparently span both.
//
// The store half lives in store.go: blocks are ULID-named directories in
// the on-disk format of tsdb/blockdir.go, compaction folds same-resolution
// blocks into higher levels (applying delete tombstones), and
// downsampling adds 5m/1h-style aggregate siblings next to the raw blocks
// — SelectWithHints picks the coarsest resolution a query's step and
// function admit. See docs/ARCHITECTURE.md for the full storage
// lifecycle.
package thanos

import (
	"sort"
	"sync"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb"
)

// Sidecar ships blocks from the hot TSDB to the store on a cadence,
// optionally truncating the head afterwards (the hot/short-term split of
// Fig. 1).
type Sidecar struct {
	DB    *tsdb.DB
	Store *Store
	// HeadRetention bounds what stays in the hot TSDB after a ship;
	// 0 keeps everything.
	HeadRetention time.Duration

	mu       sync.Mutex
	lastShip int64 // ms; exclusive lower bound of the next block
	Shipped  int
}

// Ship cuts a block of everything since the previous ship (up to now) and
// uploads it.
func (sc *Sidecar) Ship(now time.Time) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	maxt := now.UnixMilli()
	mint := sc.lastShip + 1
	if sc.lastShip == 0 {
		if dbMin, ok := sc.DB.MinTime(); ok {
			mint = dbMin
		}
	}
	if mint > maxt {
		return nil
	}
	blk, err := sc.DB.CutBlock(mint, maxt)
	if err != nil {
		return err
	}
	if err := sc.Store.Upload(blk); err != nil {
		return err
	}
	if blk.NumSamples() > 0 {
		sc.Shipped++
	}
	sc.lastShip = maxt
	if sc.HeadRetention > 0 {
		sc.DB.Truncate(maxt - sc.HeadRetention.Milliseconds())
	}
	return nil
}

// Querier fans a Select over the hot TSDB and the cold store, merging
// results; it satisfies promql.Queryable so the engine (and therefore the
// API server and Grafana) can query long ranges transparently. The two
// backends are queried concurrently: the hot side is itself a parallel
// fan-out over head shards, the cold side a resolution-aware iteration
// over blocks.
type Querier struct {
	Hot  *tsdb.DB
	Cold *Store
}

// LabelNames unions hot and cold label names, sorted; with LabelValues it
// makes the fan-in Querier satisfy promapi.LabelStore, so Grafana's
// variable dropdowns work against the merged view.
func (q *Querier) LabelNames() []string {
	return labels.UnionSorted(q.Hot.LabelNames(), q.Cold.LabelNames())
}

// LabelValues unions hot and cold values of a label name, sorted.
func (q *Querier) LabelValues(name string) []string {
	return labels.UnionSorted(q.Hot.LabelValues(name), q.Cold.LabelValues(name))
}

// Select implements promql.Queryable.
func (q *Querier) Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error) {
	return q.SelectWithHints(model.SelectHints{Start: mint, End: maxt}, ms...)
}

// SelectWithHints fans the hint-aware Select over both backends. Each side
// enforces the full budget independently, so the merged result may reach
// 2× the limit in the worst case — a deliberate trade that keeps the two
// concurrent passes free of shared accounting; a side that alone exceeds
// the limit still fails the query.
//
// The cold side's hints get RawAfter pinned to the hot head's minimum
// time: inside the hot/cold overlap the store must serve raw samples (or
// nothing), never downsampled points, so a timestamp is represented once
// in the merge no matter how the tiers overlap.
func (q *Querier) SelectWithHints(hints model.SelectHints, ms ...*labels.Matcher) ([]model.Series, error) {
	coldHints := hints
	if hmin, ok := q.Hot.MinTime(); ok && (coldHints.RawAfter == 0 || hmin < coldHints.RawAfter) {
		coldHints.RawAfter = hmin
	}
	var (
		wg              sync.WaitGroup
		cold, hot       []model.Series
		coldErr, hotErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cold, coldErr = q.Cold.SelectWithHints(coldHints, ms...)
	}()
	hot, hotErr = q.Hot.SelectWithHints(hints, ms...)
	wg.Wait()
	if coldErr != nil {
		return nil, coldErr
	}
	if hotErr != nil {
		return nil, hotErr
	}
	merged := map[uint64]*model.Series{}
	var order []uint64
	add := func(list []model.Series) {
		for _, sr := range list {
			h := sr.Labels.Hash()
			acc, ok := merged[h]
			if !ok {
				cp := sr
				cp.Samples = append([]model.Sample(nil), sr.Samples...)
				merged[h] = &cp
				order = append(order, h)
				continue
			}
			acc.Samples = append(acc.Samples, sr.Samples...)
		}
	}
	add(cold)
	add(hot)
	out := make([]model.Series, 0, len(order))
	for _, h := range order {
		sr := merged[h]
		sort.Slice(sr.Samples, func(i, j int) bool { return sr.Samples[i].T < sr.Samples[j].T })
		dedup := sr.Samples[:0]
		var lastT int64 = -1 << 62
		for _, smp := range sr.Samples {
			if smp.T == lastT {
				continue
			}
			dedup = append(dedup, smp)
			lastT = smp.T
		}
		sr.Samples = dedup
		out = append(out, *sr)
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out, nil
}
