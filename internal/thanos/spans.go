package thanos

// Interval arithmetic for resolution selection: each resolution group
// claims the sub-intervals of the query window that no preferred (coarser)
// group already covers, so raw and downsampled siblings never serve the
// same timestamp twice.

// span is a closed timestamp interval [lo, hi], Unix ms.
type span struct{ lo, hi int64 }

// floorDiv is integer division rounding toward negative infinity, so
// bucket alignment is correct for negative timestamps too.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// addSpan inserts sp into a sorted, disjoint span set, merging overlaps
// and adjacency (hi+1 == lo) so the set stays minimal.
func addSpan(set []span, sp span) []span {
	out := make([]span, 0, len(set)+1)
	placed := false
	for _, s := range set {
		switch {
		case s.hi < sp.lo-1: // strictly before sp, not adjacent
			out = append(out, s)
		case sp.hi < s.lo-1: // strictly after sp
			if !placed {
				out = append(out, sp)
				placed = true
			}
			out = append(out, s)
		default: // overlap or adjacency: fold into sp
			if s.lo < sp.lo {
				sp.lo = s.lo
			}
			if s.hi > sp.hi {
				sp.hi = s.hi
			}
		}
	}
	if !placed {
		out = append(out, sp)
	}
	return out
}

// subtractSpans returns the parts of sp not covered by the sorted,
// disjoint set, in ascending order.
func subtractSpans(sp span, set []span) []span {
	var out []span
	lo := sp.lo
	for _, s := range set {
		if s.hi < lo {
			continue
		}
		if s.lo > sp.hi {
			break
		}
		if s.lo > lo {
			out = append(out, span{lo, s.lo - 1})
		}
		if s.hi >= lo {
			lo = s.hi + 1
		}
		if lo > sp.hi {
			return out
		}
	}
	if lo <= sp.hi {
		out = append(out, span{lo, sp.hi})
	}
	return out
}
