package thanos

import (
	"errors"
	"testing"

	"repro/internal/labels"
	"repro/internal/model"
)

// TestStoreSelectWithHintsBudget verifies the cold-store sample budget:
// the block decode itself must abort with ErrSampleLimit when one block
// alone exceeds the budget, and an adequate budget must return the same
// result as plain Select.
func TestStoreSelectWithHintsBudget(t *testing.T) {
	db := seedDB(t, 4, 200, 0) // 800 samples in one block
	blk, err := db.CutBlock(0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	store, _ := NewStore("")
	if err := store.Upload(blk); err != nil {
		t.Fatal(err)
	}
	m := labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m")

	_, err = store.SelectWithHints(model.SelectHints{Start: 0, End: 1 << 60, SampleLimit: 100}, m)
	if !errors.Is(err, model.ErrSampleLimit) {
		t.Fatalf("expected ErrSampleLimit from single-block overrun, got %v", err)
	}

	got, err := store.SelectWithHints(model.SelectHints{Start: 0, End: 1 << 60, SampleLimit: 800}, m)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := store.Select(0, 1<<60, m)
	if len(got) != len(want) {
		t.Fatalf("hinted select returned %d series, plain %d", len(got), len(want))
	}

	// The fan-in querier threads hints through both sides.
	q := &Querier{Hot: db, Cold: store}
	_, err = q.SelectWithHints(model.SelectHints{Start: 0, End: 1 << 60, SampleLimit: 100}, m)
	if !errors.Is(err, model.ErrSampleLimit) {
		t.Fatalf("querier: expected ErrSampleLimit, got %v", err)
	}
}
