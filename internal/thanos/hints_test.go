package thanos

import (
	"time"

	"errors"
	"testing"

	"repro/internal/labels"
	"repro/internal/model"
)

// TestStoreSelectWithHintsBudget verifies the cold-store sample budget:
// the block decode itself must abort with ErrSampleLimit when one block
// alone exceeds the budget, and an adequate budget must return the same
// result as plain Select.
func TestStoreSelectWithHintsBudget(t *testing.T) {
	db := seedDB(t, 4, 200, 0) // 800 samples in one block
	blk, err := db.CutBlock(0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	store, _ := NewStore("")
	if err := store.Upload(blk); err != nil {
		t.Fatal(err)
	}
	m := labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m")

	_, err = store.SelectWithHints(model.SelectHints{Start: 0, End: 1 << 60, SampleLimit: 100}, m)
	if !errors.Is(err, model.ErrSampleLimit) {
		t.Fatalf("expected ErrSampleLimit from single-block overrun, got %v", err)
	}

	got, err := store.SelectWithHints(model.SelectHints{Start: 0, End: 1 << 60, SampleLimit: 800}, m)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := store.Select(0, 1<<60, m)
	if len(got) != len(want) {
		t.Fatalf("hinted select returned %d series, plain %d", len(got), len(want))
	}

	// The fan-in querier threads hints through both sides.
	q := &Querier{Hot: db, Cold: store}
	_, err = q.SelectWithHints(model.SelectHints{Start: 0, End: 1 << 60, SampleLimit: 100}, m)
	if !errors.Is(err, model.ErrSampleLimit) {
		t.Fatalf("querier: expected ErrSampleLimit, got %v", err)
	}
}

// TestStoreRawAfterCapsDownsampled: with RawAfter set (the hot head's min
// time), downsampled groups must stop strictly before it — the tail of the
// window is served raw so the head overlap is never double-represented.
func TestStoreRawAfterCapsDownsampled(t *testing.T) {
	db := seedDB(t, 1, 400, 0) // one series, 15s scrape, 100 minutes
	blk, err := db.CutBlock(0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	store, _ := NewStore(t.TempDir())
	if err := store.Upload(blk); err != nil {
		t.Fatal(err)
	}
	if n, err := store.Downsample(1<<60, 5*time.Minute); err != nil || n != 1 {
		t.Fatalf("downsample = %d, %v", n, err)
	}
	m := labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m")

	const rawAfter = 3_000_000 // 50 min in: bucket boundary
	got, err := store.SelectWithHints(model.SelectHints{
		Start: 0, End: 1 << 60,
		Step:     25 * 60 * 1000, // maxRes = 5m: downsampled eligible
		Func:     "max_over_time",
		RawAfter: rawAfter,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("%d series, want 1", len(got))
	}
	var aggr, raw int
	for _, s := range got[0].Samples {
		if s.T < rawAfter {
			// Aggregate points: one per 5m bucket, at the bucket end,
			// carrying the bucket max (values are 0..399 ascending).
			if (s.T+1)%300000 != 0 {
				t.Fatalf("pre-RawAfter point at %d is not a bucket end", s.T)
			}
			k := s.T / 300000
			if want := float64(20*k + 19); s.V != want {
				t.Fatalf("bucket %d max = %g, want %g", k, s.V, want)
			}
			aggr++
		} else {
			if s.T%15000 != 0 {
				t.Fatalf("post-RawAfter point at %d is not a raw scrape", s.T)
			}
			raw++
		}
	}
	if aggr != 10 || raw != 200 {
		t.Fatalf("aggr=%d raw=%d, want 10 aggregate buckets and 200 raw samples", aggr, raw)
	}
}
