package thanos

// The downsampling payoff benchmark: a 30-day range query answered from
// raw chunk decode vs from 1h sum/count aggregates. Baselines live in
// BENCH_blocks.json and are gated by tools/benchdiff.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb"
)

const (
	benchSeries  = 4
	benchDays    = 30
	benchScrapeS = 60 // 1-minute cadence: 43200 samples per series
)

// benchStore builds a store holding 30 days of raw data in 2-day blocks,
// downsampled to 5m and 1h (the production lifecycle: raw → 5m → 1h).
func benchStore(b *testing.B) *Store {
	b.Helper()
	store, err := NewStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	const blockDays = 2
	for blk := 0; blk < benchDays/blockDays; blk++ {
		db := tsdb.MustOpen(tsdb.DefaultOptions())
		base := int64(blk) * blockDays * 86400_000
		for s := 0; s < benchSeries; s++ {
			ls := labels.FromStrings(labels.MetricName, "bench", "s", fmt.Sprintf("%d", s))
			for ts := int64(0); ts < blockDays*86400_000; ts += benchScrapeS * 1000 {
				if err := db.Append(ls, base+ts, float64(s)+float64(ts%3600_000)); err != nil {
					b.Fatal(err)
				}
			}
		}
		cut, err := db.CutBlock(-1<<60, 1<<60)
		if err != nil {
			b.Fatal(err)
		}
		if err := store.Upload(cut); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := store.Downsample(1<<60, 5*time.Minute); err != nil {
		b.Fatal(err)
	}
	if _, err := store.Downsample(1<<60, time.Hour); err != nil {
		b.Fatal(err)
	}
	return store
}

func benchHints(aggr bool) model.SelectHints {
	h := model.SelectHints{Start: 0, End: benchDays * 86400_000}
	if aggr {
		// A Grafana-scale 30d dashboard: ~6h steps make the 1h resolution
		// eligible (maxRes = step/5).
		h.Step = 6 * 3600_000
		h.Func = "avg_over_time"
	}
	return h
}

// BenchmarkBlockQuery30dRaw decodes every raw chunk of the window.
func BenchmarkBlockQuery30dRaw(b *testing.B) {
	store := benchStore(b)
	defer store.Close()
	m := labels.MustMatcher(labels.MatchEqual, labels.MetricName, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := store.SelectWithHints(benchHints(false), m)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != benchSeries || len(got[0].Samples) != benchDays*86400/benchScrapeS {
			b.Fatalf("raw: %d series x %d samples", len(got), len(got[0].Samples))
		}
	}
}

// BenchmarkBlockQuery30dDownsampled serves the same window from the 1h
// aggregates: 720 points per series instead of 43200 raw samples.
func BenchmarkBlockQuery30dDownsampled(b *testing.B) {
	store := benchStore(b)
	defer store.Close()
	m := labels.MustMatcher(labels.MatchEqual, labels.MetricName, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := store.SelectWithHints(benchHints(true), m)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != benchSeries || len(got[0].Samples) != benchDays*24 {
			b.Fatalf("downsampled: %d series x %d samples", len(got), len(got[0].Samples))
		}
	}
}
