package thanos

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb"
)

func seedDB(t *testing.T, nSeries, nSamples int, startMs int64) *tsdb.DB {
	t.Helper()
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	for i := 0; i < nSeries; i++ {
		ls := labels.FromStrings(labels.MetricName, "m", "s", fmt.Sprintf("%d", i))
		for j := 0; j < nSamples; j++ {
			if err := db.Append(ls, startMs+int64(j)*15000, float64(i*1000+j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestUploadAndSelect(t *testing.T) {
	db := seedDB(t, 3, 100, 0)
	blk, err := db.CutBlock(0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Upload(blk); err != nil {
		t.Fatal(err)
	}
	got, err := store.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || len(got[0].Samples) != 100 {
		t.Fatalf("select = %d series / %d samples", len(got), len(got[0].Samples))
	}
}

func TestStorePersistence(t *testing.T) {
	dir := t.TempDir()
	db := seedDB(t, 2, 50, 0)
	blk, _ := db.CutBlock(0, 1<<60)
	store, _ := NewStore(dir)
	store.Upload(blk)

	// Reopen from disk.
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store2.NumBlocks() != 1 {
		t.Fatalf("blocks after reopen = %d", store2.NumBlocks())
	}
	got, _ := store2.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m"))
	if len(got) != 2 {
		t.Errorf("series after reopen = %d", len(got))
	}
}

func TestOverlappingBlocksDeduplicated(t *testing.T) {
	db := seedDB(t, 1, 100, 0)
	b1, _ := db.CutBlock(0, 800000)
	b2, _ := db.CutBlock(600000, 1<<60) // overlaps b1
	store, _ := NewStore("")
	store.Upload(b1)
	store.Upload(b2)
	got, _ := store.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m"))
	if len(got) != 1 {
		t.Fatalf("series = %d", len(got))
	}
	if len(got[0].Samples) != 100 {
		t.Errorf("dedup failed: %d samples", len(got[0].Samples))
	}
	for i := 1; i < len(got[0].Samples); i++ {
		if got[0].Samples[i].T <= got[0].Samples[i-1].T {
			t.Fatal("samples not strictly increasing")
		}
	}
}

func TestEmptyBlockDropped(t *testing.T) {
	store, _ := NewStore("")
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	blk, _ := db.CutBlock(0, 1000)
	if err := store.Upload(blk); err != nil {
		t.Fatal(err)
	}
	if store.NumBlocks() != 0 {
		t.Error("empty block registered")
	}
}

func TestSidecarShipAndTruncate(t *testing.T) {
	db := seedDB(t, 2, 200, 0) // samples at 0..2985000 ms
	store, _ := NewStore("")
	sc := &Sidecar{DB: db, Store: store, HeadRetention: 10 * time.Minute}

	// Ship at t=1500s.
	if err := sc.Ship(time.UnixMilli(1_500_000)); err != nil {
		t.Fatal(err)
	}
	if store.NumBlocks() != 1 || sc.Shipped != 1 {
		t.Fatalf("blocks = %d shipped = %d", store.NumBlocks(), sc.Shipped)
	}
	// Head was truncated to the retention window.
	if mint, ok := db.MinTime(); !ok || mint < 1_500_000-600_000 {
		t.Errorf("head not truncated: mint = %d", mint)
	}
	// Second ship picks up where the first ended, no overlap.
	if err := sc.Ship(time.UnixMilli(3_000_000)); err != nil {
		t.Fatal(err)
	}
	got, _ := store.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m"))
	if len(got) != 2 {
		t.Fatalf("series = %d", len(got))
	}
	if len(got[0].Samples) != 200 {
		t.Errorf("cold samples = %d, want all 200", len(got[0].Samples))
	}
	// Ship with nothing new is a no-op.
	before := store.NumBlocks()
	sc.Ship(time.UnixMilli(3_000_000))
	if store.NumBlocks() != before {
		t.Error("empty ship created a block")
	}
}

func TestQuerierMergesHotAndCold(t *testing.T) {
	db := seedDB(t, 1, 100, 0)
	store, _ := NewStore("")
	sc := &Sidecar{DB: db, Store: store, HeadRetention: 5 * time.Minute}
	sc.Ship(time.UnixMilli(1_000_000))

	q := &Querier{Hot: db, Cold: store}
	got, err := q.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("series = %d", len(got))
	}
	// All 100 samples visible across the hot/cold split.
	if len(got[0].Samples) != 100 {
		t.Errorf("merged samples = %d, want 100", len(got[0].Samples))
	}
}

func TestDownsample(t *testing.T) {
	db := seedDB(t, 1, 400, 0) // 100 minutes at 15s
	blk, _ := db.CutBlock(0, 1<<60)
	store, _ := NewStore(t.TempDir())
	store.Upload(blk)

	n, err := store.Downsample(1<<60, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("downsampled %d blocks", n)
	}
	// Downsampling is additive: the raw block stays next to its sibling,
	// and a plain (raw-only) Select is unchanged.
	if store.NumBlocks() != 2 {
		t.Fatalf("blocks = %d, want raw + downsampled", store.NumBlocks())
	}
	m := labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m")
	got, _ := store.Select(0, 1<<60, m)
	if len(got) != 1 || len(got[0].Samples) != 400 {
		t.Fatalf("raw select = %d series / %d samples, want 1/400", len(got), len(got[0].Samples))
	}
	// A wide-step query whose function admits aggregates reads the
	// 5m stream instead: 400 samples over 100 min → 20 buckets.
	hints := model.SelectHints{
		Start: 0, End: 1 << 60,
		Step: 10 * 5 * 60 * 1000, // step spans 10 downsampled points
		Func: "avg_over_time",
	}
	got, err = store.SelectWithHints(hints, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatal("series lost")
	}
	if len(got[0].Samples) != 20 {
		t.Errorf("downsampled samples = %d, want 20", len(got[0].Samples))
	}
	// Bucket means preserve the overall mean of a linear ramp.
	var sum float64
	for _, s := range got[0].Samples {
		sum += s.V
	}
	mean := sum / float64(len(got[0].Samples))
	if mean < 199 || mean > 200 {
		t.Errorf("downsampled mean = %v, want ~199.5", mean)
	}
	// A counter function must never see aggregate points.
	hints.Func = "rate"
	got, err = store.SelectWithHints(hints, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0].Samples) != 400 {
		t.Errorf("rate served %d samples, want 400 raw", len(got[0].Samples))
	}
	// Idempotent: a second pass finds the existing sibling and does nothing.
	if n, err := store.Downsample(1<<60, 5*time.Minute); err != nil || n != 0 {
		t.Errorf("second downsample: n=%d err=%v", n, err)
	}
	// Invalid resolution.
	if _, err := store.Downsample(0, 0); err == nil {
		t.Error("zero resolution accepted")
	}
}

func BenchmarkStoreSelect(b *testing.B) {
	src := tsdb.MustOpen(tsdb.DefaultOptions())
	for i := 0; i < 100; i++ {
		ls := labels.FromStrings(labels.MetricName, "m", "s", fmt.Sprintf("%d", i))
		for j := 0; j < 500; j++ {
			src.Append(ls, int64(j)*15000, float64(j))
		}
	}
	store, _ := NewStore("")
	for c := 0; c < 4; c++ {
		blk, _ := src.CutBlock(int64(c)*1_875_000, int64(c+1)*1_875_000-1)
		store.Upload(blk)
	}
	m := labels.MustMatcher(labels.MatchEqual, "s", "50")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Select(0, 1<<60, m)
	}
}

// The fan-in Querier must expose label metadata from both tiers so the
// promapi label endpoints work in front of it.
func TestQuerierLabelStore(t *testing.T) {
	cold := seedDB(t, 2, 10, 0) // series s=0,1 shipped to the store
	blk, err := cold.CutBlock(0, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Upload(blk); err != nil {
		t.Fatal(err)
	}
	hot := tsdb.MustOpen(tsdb.DefaultOptions())
	if err := hot.Append(labels.FromStrings(labels.MetricName, "m", "s", "9", "zone", "hot"), 5000, 1); err != nil {
		t.Fatal(err)
	}
	q := &Querier{Hot: hot, Cold: store}

	wantNames := []string{labels.MetricName, "s", "zone"}
	if got := q.LabelNames(); !equalStrings(got, wantNames) {
		t.Errorf("LabelNames = %v, want %v", got, wantNames)
	}
	wantS := []string{"0", "1", "9"}
	if got := q.LabelValues("s"); !equalStrings(got, wantS) {
		t.Errorf(`LabelValues("s") = %v, want %v`, got, wantS)
	}
	if got := q.LabelValues("zone"); !equalStrings(got, []string{"hot"}) {
		t.Errorf(`LabelValues("zone") = %v`, got)
	}
	if got := q.LabelValues("absent"); len(got) != 0 {
		t.Errorf(`LabelValues("absent") = %v`, got)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
