package thanos

import (
	"repro/internal/telemetry"
)

// storeMetrics holds the cold store's self-telemetry. Nil on stores that
// were never instrumented; every update site nil-checks.
type storeMetrics struct {
	uploads           *telemetry.Counter
	compactions       *telemetry.Counter
	compactionSeconds *telemetry.Histogram
	downsamples       *telemetry.Counter
	downsampleSeconds *telemetry.Histogram
}

// Instrument registers the store's instruments on reg under the
// telemetry_blocks_* namespace (block lifecycle: uploads, compactions,
// downsampling, live block counts by kind).
func (s *Store) Instrument(reg *telemetry.Registry) {
	s.metrics = &storeMetrics{
		uploads: reg.Counter("telemetry_blocks_uploads_total",
			"Blocks shipped into the cold store."),
		compactions: reg.Counter("telemetry_blocks_compactions_total",
			"Block compactions executed (merge + dedup + tombstones)."),
		compactionSeconds: reg.Histogram("telemetry_blocks_compaction_seconds",
			"Wall time of one block compaction.", telemetry.LatencyBuckets),
		downsamples: reg.Counter("telemetry_blocks_downsamples_total",
			"Downsampled sibling blocks created."),
		downsampleSeconds: reg.Histogram("telemetry_blocks_downsample_seconds",
			"Wall time of one block downsample pass.", telemetry.LatencyBuckets),
	}
	reg.GaugeFunc("telemetry_blocks_count",
		"Registered cold-store blocks, raw and downsampled.",
		func() float64 { return float64(s.NumBlocks()) })
	reg.GaugeFunc("telemetry_blocks_downsampled_count",
		"Registered downsampled (non-raw) cold-store blocks.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			n := 0
			for _, b := range s.blocks {
				if b.Meta().Resolution != 0 {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("telemetry_blocks_samples",
		"Samples stored across all cold-store blocks (all resolutions).",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			n := 0
			for _, b := range s.blocks {
				n += b.NumSamples()
			}
			return float64(n)
		})
}
