package thanos

// The cold tier: a directory of immutable persistent blocks
// (internal/tsdb/blockdir.go) with background compaction and
// multi-resolution downsampling, and a hint-aware read path that picks the
// coarsest resolution a query step can afford. Crash recovery at open
// sweeps aborted writes (.tmp dirs, meta-less dirs), migrates legacy .blk
// files, and garbage-collects blocks superseded by a committed compaction
// (same-resolution survivor listing them in Sources). See
// docs/ARCHITECTURE.md for the full lifecycle.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb"
)

// DownsampleFactor is how many downsampled points a query step must span
// before the store substitutes an aggregate stream for raw samples: a block
// of resolution R is eligible only when hints.Step >= R*DownsampleFactor,
// mirroring Thanos's rule of thumb of ~5 points per step.
const DownsampleFactor = 5

// defaultCompactionFactor is how many same-level blocks trigger a merge
// when the store has no explicit CompactionFactor.
const defaultCompactionFactor = 3

// Store holds uploaded blocks as persistent block directories (see
// tsdb/blockdir.go for the on-disk format), one ULID-named directory per
// block plus raw/downsampled siblings. With dir == "" blocks are assembled
// in memory instead — same byte layout, no files — which the cluster
// simulator and tests use.
//
// The store is the cold half of the hot/cold seam: the sidecar uploads
// immutable blocks cut from the hot head, Compact folds them into larger
// higher-level blocks (applying delete tombstones), and Downsample derives
// 5m/1h-style aggregate siblings that long-range queries read instead of
// raw chunks.
type Store struct {
	dir string

	// CompactionFactor is how many same-level blocks of one resolution are
	// merged per compaction; 0 means defaultCompactionFactor. Overlapping
	// blocks are always compacted first, regardless of the factor.
	CompactionFactor int

	mu     sync.RWMutex
	blocks []*tsdb.PersistentBlock // sorted by MinTime
	// labelIndex: name -> value set across all blocks, maintained on
	// upload/load so the LabelStore endpoints don't scan every series.
	// Compaction can delete tombstoned series, so the index may
	// over-approximate after deletes — acceptable for label discovery.
	labelIndex map[string]map[string]struct{}

	metrics *storeMetrics
}

// NewStore opens a store directory, recovering crash leftovers and loading
// every block:
//
//   - *.tmp directories (a block write that never reached its rename) and
//     directories missing meta.json (a rename that never committed) are
//     removed — their data is still in the sources that produced them.
//   - legacy single-file .blk blocks are migrated in place to block
//     directories, preserving their samples.
//   - blocks fully superseded by a same-resolution block that lists them in
//     its Sources (a compaction that crashed after publishing but before
//     deleting) are garbage-collected. Downsampled children have a
//     different resolution, so raw sources always survive this sweep.
func NewStore(dir string) (*Store, error) {
	s := &Store{dir: dir}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		name := e.Name()
		full := filepath.Join(dir, name)
		if e.IsDir() {
			if tsdb.IsTmpBlockDir(name) {
				if err := os.RemoveAll(full); err != nil {
					return nil, err
				}
				continue
			}
			if _, err := os.Stat(filepath.Join(full, tsdb.MetaFilename)); os.IsNotExist(err) {
				if err := os.RemoveAll(full); err != nil {
					return nil, err
				}
				continue
			}
			pb, err := tsdb.OpenBlockDir(full)
			if err != nil {
				return nil, fmt.Errorf("thanos: opening block %s: %w", name, err)
			}
			s.blocks = append(s.blocks, pb)
			continue
		}
		if strings.HasSuffix(name, ".blk") {
			b, err := tsdb.ReadBlockFile(full)
			if err != nil {
				return nil, fmt.Errorf("thanos: migrating %s: %w", name, err)
			}
			pb, err := tsdb.PersistBlock(dir, b)
			if err != nil {
				return nil, fmt.Errorf("thanos: migrating %s: %w", name, err)
			}
			if err := os.Remove(full); err != nil {
				return nil, err
			}
			s.blocks = append(s.blocks, pb)
		}
	}
	s.gcSupersededLocked()
	for _, b := range s.blocks {
		s.indexBlockLocked(b)
	}
	s.sortLocked()
	s.syncDirBestEffort()
	return s, nil
}

// gcSupersededLocked removes blocks that a surviving same-resolution block
// lists among its compaction Sources. Exclusive access assumed (NewStore).
func (s *Store) gcSupersededLocked() {
	byULID := make(map[string]*tsdb.PersistentBlock, len(s.blocks))
	for _, b := range s.blocks {
		byULID[b.Meta().ULID] = b
	}
	dead := map[*tsdb.PersistentBlock]bool{}
	for _, c := range s.blocks {
		for _, src := range c.Meta().Sources {
			if b, ok := byULID[src]; ok && b.Meta().Resolution == c.Meta().Resolution {
				dead[b] = true
			}
		}
	}
	if len(dead) == 0 {
		return
	}
	kept := s.blocks[:0]
	for _, b := range s.blocks {
		if !dead[b] {
			kept = append(kept, b)
			continue
		}
		dir := b.Dir()
		b.Close()
		if dir != "" {
			os.RemoveAll(dir)
		}
	}
	s.blocks = kept
}

// indexBlockLocked merges a block's label sets into the index. Caller holds
// s.mu (or has exclusive access during construction).
func (s *Store) indexBlockLocked(b *tsdb.PersistentBlock) {
	if s.labelIndex == nil {
		s.labelIndex = map[string]map[string]struct{}{}
	}
	b.LabelSets(func(lset labels.Labels) {
		for _, l := range lset {
			vs, ok := s.labelIndex[l.Name]
			if !ok {
				vs = map[string]struct{}{}
				s.labelIndex[l.Name] = vs
			}
			vs[l.Value] = struct{}{}
		}
	})
}

func (s *Store) sortLocked() {
	sort.Slice(s.blocks, func(i, j int) bool {
		a, b := s.blocks[i].Meta(), s.blocks[j].Meta()
		if a.MinTime != b.MinTime {
			return a.MinTime < b.MinTime
		}
		return a.ULID < b.ULID
	})
}

// register publishes an open block to queries.
func (s *Store) register(pb *tsdb.PersistentBlock) {
	s.mu.Lock()
	s.blocks = append(s.blocks, pb)
	s.indexBlockLocked(pb)
	s.sortLocked()
	s.mu.Unlock()
}

// syncDirBestEffort fsyncs the store directory so deletions and renames
// made by maintenance are durable; errors are ignored (the worst case is
// re-doing the maintenance after a crash, which recovery handles).
func (s *Store) syncDirBestEffort() {
	if s.dir == "" {
		return
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Upload persists a block cut from the hot head as a level-1 raw block
// directory and registers it. Empty blocks are dropped.
func (s *Store) Upload(b *tsdb.Block) error {
	if b.NumSamples() == 0 {
		return nil
	}
	pb, err := tsdb.PersistBlock(s.dir, b)
	if err != nil {
		return fmt.Errorf("thanos: upload: %w", err)
	}
	s.register(pb)
	if m := s.metrics; m != nil {
		m.uploads.Inc()
	}
	return nil
}

// NumBlocks returns the number of registered blocks (raw + downsampled).
func (s *Store) NumBlocks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// BlockMetas returns a snapshot of every registered block's metadata,
// sorted by MinTime — the store's equivalent of an object-store listing.
func (s *Store) BlockMetas() []tsdb.BlockMeta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]tsdb.BlockMeta, len(s.blocks))
	for i, b := range s.blocks {
		out[i] = b.Meta()
	}
	return out
}

// aggrForFunc maps the PromQL function consuming a selector to the
// downsampled stream that can substitute for raw samples. Only functions
// whose plain evaluation over the aggregate stream matches the documented
// semantics qualify:
//
//	avg_over_time   -> avg (mean of bucket means, not exact for uneven buckets)
//	sum_over_time   -> sum (exact for bucket-aligned windows)
//	min_over_time   -> min (exact for bucket-aligned windows)
//	max_over_time   -> max (exact for bucket-aligned windows)
//
// Everything else is served raw only: rate/irate/increase and friends need
// raw inter-sample deltas, count_over_time would count buckets instead of
// samples, and bare selectors ("") would flicker whenever the resolution
// is sparser than the engine's lookback window.
func aggrForFunc(fn string) (tsdb.AggrType, bool) {
	switch fn {
	case "avg_over_time":
		return tsdb.AggrAvg, true
	case "sum_over_time":
		return tsdb.AggrSum, true
	case "min_over_time":
		return tsdb.AggrMin, true
	case "max_over_time":
		return tsdb.AggrMax, true
	}
	return tsdb.AggrRaw, false
}

// Select implements promql.Queryable over all blocks from raw data only,
// merging samples of the same series across block boundaries (overlaps are
// deduplicated by timestamp).
func (s *Store) Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error) {
	return s.selectLimited(selParams{mint: mint, maxt: maxt, aggr: tsdb.AggrRaw}, ms)
}

// SelectWithHints is the hint-aware Select. Beyond the sample budget
// (identical to the hot head's: charged per copied sample, aborting with
// model.ErrSampleLimit), the hints drive resolution selection: when
// hints.Func admits an aggregate substitute (see aggrForFunc) and
// hints.Step spans at least DownsampleFactor points of a downsampled
// resolution, that resolution becomes eligible and the store serves the
// matching aggregate stream instead of decoding raw chunks. hints.RawAfter
// fences downsampled reads out of the hot-overlap region.
func (s *Store) SelectWithHints(hints model.SelectHints, ms ...*labels.Matcher) ([]model.Series, error) {
	p := selParams{
		mint:     hints.Start,
		maxt:     hints.End,
		limit:    hints.SampleLimit,
		aggr:     tsdb.AggrRaw,
		rawAfter: hints.RawAfter,
	}
	if a, ok := aggrForFunc(hints.Func); ok && hints.Step > 0 {
		maxRes := hints.Step / DownsampleFactor
		// Never serve data sparser than the selector's window, or steps
		// between points would see an empty window and drop the series.
		if hints.Range > 0 && hints.Range < maxRes {
			maxRes = hints.Range
		}
		if maxRes > 0 {
			p.aggr, p.maxRes = a, maxRes
		}
	}
	return s.selectLimited(p, ms)
}

// selParams is one resolved cold-read request.
type selParams struct {
	mint, maxt int64
	limit      int64         // sample budget; <= 0 unlimited
	maxRes     int64         // coarsest eligible resolution; 0 = raw only
	aggr       tsdb.AggrType // stream to read from downsampled blocks
	rawAfter   int64         // no downsampled data at/after this ts; 0 = off
}

// selectLimited runs the resolution-aware merge across blocks.
//
// Candidate blocks are grouped by resolution and the groups are visited
// coarsest-first, raw last. Each group claims only the query sub-intervals
// no coarser group has covered, so a timestamp is served by exactly one
// resolution and raw + downsampled siblings of the same data never double
// count. Within a group, overlapping blocks carry identical values for
// shared timestamps (uploads overlap only on re-ship; compaction output
// equals merged sources), so the per-timestamp first-wins dedup below is
// sufficient.
func (s *Store) selectLimited(p selParams, ms []*labels.Matcher) ([]model.Series, error) {
	if p.maxt < p.mint {
		return nil, nil
	}
	// Snapshot and pin the candidate blocks so a concurrent compaction
	// can't unmap chunks mid-read; Retain fails only for blocks already
	// retired, which a compaction replaces before closing.
	s.mu.RLock()
	var blocks []*tsdb.PersistentBlock
	for _, b := range s.blocks {
		if b.MaxTime() < p.mint || b.MinTime() > p.maxt {
			continue
		}
		if res := b.Meta().Resolution; res != 0 && res > p.maxRes {
			continue
		}
		if b.Retain() {
			blocks = append(blocks, b)
		}
	}
	s.mu.RUnlock()
	defer func() {
		for _, b := range blocks {
			b.Release()
		}
	}()

	groups := map[int64][]*tsdb.PersistentBlock{}
	for _, b := range blocks {
		res := b.Meta().Resolution
		groups[res] = append(groups[res], b)
	}
	resOrder := make([]int64, 0, len(groups))
	for res := range groups {
		resOrder = append(resOrder, res)
	}
	// Coarsest (fewest samples) first; raw (0) naturally sorts last.
	sort.Slice(resOrder, func(i, j int) bool { return resOrder[i] > resOrder[j] })

	var (
		covered []span
		copied  int64
		merged  = map[uint64]*model.Series{}
		order   []uint64
	)
	add := func(list []model.Series) {
		for _, sr := range list {
			copied += int64(len(sr.Samples))
			h := sr.Labels.Hash()
			acc, ok := merged[h]
			if !ok {
				cp := sr
				cp.Samples = append([]model.Sample(nil), sr.Samples...)
				merged[h] = &cp
				order = append(order, h)
				continue
			}
			acc.Samples = append(acc.Samples, sr.Samples...)
		}
	}
	for _, res := range resOrder {
		gmax := p.maxt
		aggr := p.aggr
		if res == 0 {
			aggr = tsdb.AggrRaw
		} else if p.rawAfter != 0 && p.rawAfter <= gmax {
			gmax = p.rawAfter - 1
		}
		if gmax < p.mint {
			continue
		}
		// A downsampled point sits at its bucket's END and represents the
		// whole bucket [end-res+1, end], so a block's coverage starts one
		// bucket-width before its first point. Claimed spans are then
		// clamped to whole buckets inside the window: a partial bucket at
		// either edge would smuggle in samples from outside the window (or
		// drop the window's edge samples), so those edges stay raw.
		var gspans []span
		for _, b := range groups[res] {
			coverLo, coverHi := b.MinTime(), b.MaxTime()
			if res != 0 {
				coverLo -= res - 1
			}
			lo, hi := maxInt64(coverLo, p.mint), minInt64(coverHi, gmax)
			if res != 0 {
				lo = floorDiv(lo+res-1, res) * res // round up to a bucket start
				hi = floorDiv(hi+1, res)*res - 1   // round down to a bucket end
			}
			if lo <= hi {
				gspans = addSpan(gspans, span{lo, hi})
			}
		}
		for _, gs := range gspans {
			for _, u := range subtractSpans(gs, covered) {
				for _, b := range groups[res] {
					coverLo := b.MinTime()
					if res != 0 {
						coverLo -= res - 1
					}
					if b.MaxTime() < u.lo || coverLo > u.hi {
						continue
					}
					rem := int64(0)
					if p.limit > 0 {
						rem = p.limit - copied
						if rem <= 0 {
							// Exactly-at-budget so far: a later block may
							// legitimately match nothing. Pass 1 so any
							// further sample aborts mid-copy; the post-loop
							// check catches the ==1 case.
							rem = 1
						}
					}
					bs, err := b.SelectAggr(u.lo, u.hi, rem, aggr, ms...)
					if err != nil {
						return nil, err
					}
					add(bs)
				}
			}
		}
		for _, gs := range gspans {
			covered = addSpan(covered, gs)
		}
	}
	if p.limit > 0 && copied > p.limit {
		return nil, model.ErrSampleLimit
	}
	out := make([]model.Series, 0, len(order))
	for _, h := range order {
		sr := merged[h]
		sort.Slice(sr.Samples, func(i, j int) bool { return sr.Samples[i].T < sr.Samples[j].T })
		dedup := sr.Samples[:0]
		var lastT int64 = -1 << 62
		for _, smp := range sr.Samples {
			if smp.T == lastT {
				continue
			}
			dedup = append(dedup, smp)
			lastT = smp.T
		}
		sr.Samples = dedup
		out = append(out, *sr)
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out, nil
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// LabelNames returns the sorted distinct label names across all blocks
// (with LabelValues, this makes the store — and the fan-in Querier —
// satisfy promapi.LabelStore). Served from the maintained index, not a
// block scan.
func (s *Store) LabelNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.labelIndex))
	for n := range s.labelIndex {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LabelValues returns the sorted distinct values of a label name across all
// blocks.
func (s *Store) LabelValues(name string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return labels.SortedKeys(s.labelIndex[name])
}

func (s *Store) factor() int {
	if s.CompactionFactor > 0 {
		return s.CompactionFactor
	}
	return defaultCompactionFactor
}

// Compact runs the leveled compaction loop to a fixpoint: overlapping
// same-resolution blocks are merged first (they cost every query a dedup
// pass), then runs of CompactionFactor same-level blocks are folded into
// one block of the next level. Matcher tombstones — typically
// DB.Tombstones() from the hot head — drop deleted series from the merged
// output, propagating deletes into cold storage.
//
// Each merge publishes the new block durably before deleting its sources;
// a crash in between leaves duplicates the read path dedups and NewStore's
// GC removes. Returns the number of compactions executed.
func (s *Store) Compact(tombs []tsdb.TombstoneRec) (int, error) {
	n := 0
	for {
		plan := s.planCompaction()
		if len(plan) < 2 {
			return n, nil
		}
		if err := s.compactSet(plan, tombs); err != nil {
			return n, err
		}
		n++
	}
}

// planCompaction picks the next set of blocks to merge, or nil.
func (s *Store) planCompaction() []*tsdb.PersistentBlock {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byRes := map[int64][]*tsdb.PersistentBlock{}
	resKeys := []int64{}
	for _, b := range s.blocks {
		res := b.Meta().Resolution
		if _, ok := byRes[res]; !ok {
			resKeys = append(resKeys, res)
		}
		byRes[res] = append(byRes[res], b) // keeps MinTime order
	}
	sort.Slice(resKeys, func(i, j int) bool { return resKeys[i] < resKeys[j] })
	for _, res := range resKeys {
		grp := byRes[res]
		// 1) Overlapping chain: merge eagerly, whatever the levels.
		var chain []*tsdb.PersistentBlock
		var chainMax int64
		for _, b := range grp {
			if len(chain) > 0 && b.MinTime() <= chainMax {
				chain = append(chain, b)
				if b.MaxTime() > chainMax {
					chainMax = b.MaxTime()
				}
				continue
			}
			if len(chain) >= 2 {
				return chain
			}
			chain = []*tsdb.PersistentBlock{b}
			chainMax = b.MaxTime()
		}
		if len(chain) >= 2 {
			return chain
		}
		// 2) A run of CompactionFactor consecutive same-level blocks.
		f := s.factor()
		runStart := 0
		for i := 1; i <= len(grp); i++ {
			if i < len(grp) && grp[i].Meta().Level == grp[runStart].Meta().Level {
				continue
			}
			if i-runStart >= f {
				return grp[runStart : runStart+f]
			}
			runStart = i
		}
	}
	return nil
}

// compactSet merges plan into one block, publishes it, then retires the
// sources (publish-before-delete).
func (s *Store) compactSet(plan []*tsdb.PersistentBlock, tombs []tsdb.TombstoneRec) error {
	start := time.Now()
	nb, err := tsdb.CompactPersistentBlocks(s.dir, plan, tombs)
	if err != nil {
		return fmt.Errorf("thanos: compact: %w", err)
	}
	inPlan := map[*tsdb.PersistentBlock]bool{}
	for _, b := range plan {
		inPlan[b] = true
	}
	s.mu.Lock()
	kept := s.blocks[:0]
	for _, b := range s.blocks {
		if !inPlan[b] {
			kept = append(kept, b)
		}
	}
	s.blocks = append(kept, nb)
	s.indexBlockLocked(nb)
	s.sortLocked()
	s.mu.Unlock()
	for _, b := range plan {
		dir := b.Dir()
		b.Close() // munmap deferred past in-flight reads via Retain
		if dir != "" {
			os.RemoveAll(dir)
		}
	}
	s.syncDirBestEffort()
	if m := s.metrics; m != nil {
		m.compactions.Inc()
		m.compactionSeconds.Observe(time.Since(start).Seconds())
	}
	return nil
}

// Downsample derives, for every block whose data ends before `before`, a
// sibling block at the given resolution holding per-bucket sum/count/min/
// max aggregate streams (see tsdb.DownsamplePersistentBlock). Unlike
// Thanos-the-paper's lossy rewrite, sources are KEPT: raw and downsampled
// siblings coexist and SelectWithHints picks per query, so full-fidelity
// reads stay possible. Blocks already downsampled to the target resolution
// — or with a finer downsampled child that divides it, which then serves
// as the cheaper source — are skipped, making the call idempotent.
// Returns the number of blocks created.
func (s *Store) Downsample(before int64, resolution time.Duration) (int, error) {
	res := resolution.Milliseconds()
	if res <= 0 {
		return 0, fmt.Errorf("thanos: resolution must be positive")
	}
	s.mu.RLock()
	blocks := append([]*tsdb.PersistentBlock(nil), s.blocks...)
	s.mu.RUnlock()
	// children[src ULID] = set of resolutions already derived from it.
	children := map[string]map[int64]bool{}
	for _, b := range blocks {
		for _, src := range b.Meta().Sources {
			m := children[src]
			if m == nil {
				m = map[int64]bool{}
				children[src] = m
			}
			m[b.Meta().Resolution] = true
		}
	}
	n := 0
	for _, b := range blocks {
		meta := b.Meta()
		if meta.MaxTime >= before || meta.Resolution >= res {
			continue
		}
		if meta.Resolution > 0 && res%meta.Resolution != 0 {
			continue
		}
		ch := children[meta.ULID]
		if ch[res] {
			continue
		}
		finerChild := false
		for cres := range ch {
			if cres > meta.Resolution && cres < res && res%cres == 0 {
				finerChild = true
				break
			}
		}
		if finerChild {
			continue
		}
		if !b.Retain() { // concurrently retired by a compaction
			continue
		}
		start := time.Now()
		nb, err := tsdb.DownsamplePersistentBlock(s.dir, b, res)
		b.Release()
		if err != nil {
			return n, fmt.Errorf("thanos: downsample: %w", err)
		}
		if nb.NumSamples() == 0 { // e.g. only staleness markers
			dir := nb.Dir()
			nb.Close()
			if dir != "" {
				os.RemoveAll(dir)
			}
			continue
		}
		s.register(nb)
		n++
		if m := s.metrics; m != nil {
			m.downsamples.Inc()
			m.downsampleSeconds.Observe(time.Since(start).Seconds())
		}
	}
	if n > 0 {
		s.syncDirBestEffort()
	}
	return n, nil
}

// Close releases every block mapping. The store must not be queried after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, b := range s.blocks {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.blocks = nil
	return first
}
