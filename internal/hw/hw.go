// Package hw simulates compute-node hardware for the CEEMS stack: CPU
// packages with RAPL energy counters, DRAM, a BMC reporting IPMI-DCMI power
// readings, GPUs, and the kernel accounting files (cgroups v2, /proc/stat,
// /proc/meminfo) that the CEEMS exporter collectors read.
//
// The simulation substitutes for the paper's physical Jean-Zay nodes: a
// power model converts workload activity into RAPL counter increments and
// IPMI readings with realistic structure — RAPL covers only CPU and DRAM
// domains, IPMI covers the whole node (PSU losses, fans, optionally GPUs),
// AMD nodes lack the DRAM RAPL domain, and readings carry measurement
// noise. The node also tracks exact per-workload ground-truth energy so
// experiments can quantify the error of the paper's Eq. 1 attribution.
package hw

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/sysfs"
)

// RAPL counters wrap at this value (µJ), as on real Intel hardware.
const RAPLMaxEnergyUJ = 262143328850

// Jiffies per second used for /proc/stat (USER_HZ).
const UserHZ = 100

// Vendor identifies the CPU vendor, which controls RAPL domain layout.
type Vendor string

const (
	VendorIntel Vendor = "intel" // package + dram RAPL domains
	VendorAMD   Vendor = "amd"   // package domain only
)

// NodeSpec describes the hardware of one simulated compute node.
type NodeSpec struct {
	Name           string
	Vendor         Vendor
	Sockets        int
	CoresPerSocket int
	MemBytes       int64
	// Power model parameters (all watts).
	CPUIdleWattsPerSocket float64 // package power at 0% utilization
	CPUMaxWattsPerSocket  float64 // package power at 100% utilization
	DRAMIdleWatts         float64 // whole-node DRAM floor
	DRAMMaxWatts          float64 // whole-node DRAM at full occupancy
	OtherWatts            float64 // fans, board, NICs — seen only by IPMI
	PSUEfficiency         float64 // wall power = component power / efficiency
	// GPUs installed in the node, by kind; empty for CPU-only nodes.
	GPUs []model.GPUKind
	// IPMIIncludesGPU mirrors the two Jean-Zay GPU server types: on some,
	// the BMC reading includes GPU power; on others it does not (§III.A).
	IPMIIncludesGPU bool
	// NoiseFrac adds multiplicative measurement noise to IPMI readings
	// (e.g. 0.02 for ±2%); RAPL counters are exact, as in hardware.
	NoiseFrac float64
	// Seed makes the node's noise stream deterministic.
	Seed int64
}

// TotalCPUs returns the number of logical CPUs.
func (s NodeSpec) TotalCPUs() int { return s.Sockets * s.CoresPerSocket }

// Validate checks the spec for physical plausibility.
func (s NodeSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("hw: node name required")
	case s.Sockets <= 0 || s.CoresPerSocket <= 0:
		return fmt.Errorf("hw: node %s: sockets and cores must be positive", s.Name)
	case s.MemBytes <= 0:
		return fmt.Errorf("hw: node %s: memory must be positive", s.Name)
	case s.CPUMaxWattsPerSocket < s.CPUIdleWattsPerSocket:
		return fmt.Errorf("hw: node %s: max CPU power below idle", s.Name)
	case s.PSUEfficiency <= 0 || s.PSUEfficiency > 1:
		return fmt.Errorf("hw: node %s: PSU efficiency must be in (0,1]", s.Name)
	}
	return nil
}

// DefaultIntelSpec returns a typical dual-socket Intel node (64 cores,
// 256 GiB), modelled on Jean-Zay CPU nodes.
func DefaultIntelSpec(name string) NodeSpec {
	return NodeSpec{
		Name: name, Vendor: VendorIntel,
		Sockets: 2, CoresPerSocket: 32, MemBytes: 256 << 30,
		CPUIdleWattsPerSocket: 45, CPUMaxWattsPerSocket: 205,
		DRAMIdleWatts: 12, DRAMMaxWatts: 48,
		OtherWatts: 60, PSUEfficiency: 0.92, NoiseFrac: 0.02,
	}
}

// DefaultAMDSpec returns a typical dual-socket AMD node (128 cores), which
// exposes no DRAM RAPL domain.
func DefaultAMDSpec(name string) NodeSpec {
	return NodeSpec{
		Name: name, Vendor: VendorAMD,
		Sockets: 2, CoresPerSocket: 64, MemBytes: 512 << 30,
		CPUIdleWattsPerSocket: 65, CPUMaxWattsPerSocket: 280,
		DRAMIdleWatts: 18, DRAMMaxWatts: 70,
		OtherWatts: 70, PSUEfficiency: 0.93, NoiseFrac: 0.02,
	}
}

// DefaultGPUSpec returns a GPU node with the given accelerators.
func DefaultGPUSpec(name string, ipmiIncludesGPU bool, kinds ...model.GPUKind) NodeSpec {
	s := DefaultIntelSpec(name)
	s.Sockets = 2
	s.CoresPerSocket = 24
	s.GPUs = kinds
	s.IPMIIncludesGPU = ipmiIncludesGPU
	s.OtherWatts = 90
	return s
}

// Workload is a running compute unit placed on the node: the hardware-level
// view of a SLURM job step, a VM or a pod. Utilization profiles are
// functions of elapsed runtime so job generators can shape phases
// (ramp-up, steady, I/O waits).
type Workload struct {
	// ID is the cgroup leaf name, e.g. "job_1234".
	ID string
	// CgroupPath is the absolute cgroup directory; the resource-manager
	// simulator sets it according to its own layout.
	CgroupPath  string
	CPUs        int
	MemLimit    int64
	GPUOrdinals []int
	// CPUUtil returns utilization of the allocation in [0,1] at elapsed
	// runtime; nil means 100%.
	CPUUtil func(elapsed time.Duration) float64
	// MemUtil returns the fraction of MemLimit resident; nil means 50%.
	MemUtil func(elapsed time.Duration) float64
	// GPUUtil returns GPU utilization in [0,1]; nil means CPUUtil.
	GPUUtil func(elapsed time.Duration) float64

	started     time.Time
	cpuUsageSec float64
	memCurrent  int64
}

// WorkloadEnergy is the simulator's exact ground-truth energy attribution
// for one workload, used to evaluate estimation error (ablation A1).
type WorkloadEnergy struct {
	HostJoules float64 // CPU+DRAM+share of other, at the wall
	GPUJoules  float64
	CPUSeconds float64
}

// GPU is one simulated accelerator device.
type GPU struct {
	Index int
	Kind  model.GPUKind
	UUID  string

	util     float64
	memUsed  int64
	powerW   float64
	energyMJ float64 // DCGM-style total energy counter in millijoules
}

// Util returns current utilization [0,1].
func (g *GPU) Util() float64 { return g.util }

// PowerWatts returns the current board power draw.
func (g *GPU) PowerWatts() float64 { return g.powerW }

// EnergyMilliJoules returns the cumulative energy counter.
func (g *GPU) EnergyMilliJoules() float64 { return g.energyMJ }

// MemUsedBytes returns current device memory usage.
func (g *GPU) MemUsedBytes() int64 { return g.memUsed }

// Node is a simulated compute node. Advance drives it forward in time;
// all other methods are safe to call concurrently with Advance.
type Node struct {
	Spec NodeSpec
	FS   *sysfs.MemFS

	mu        sync.Mutex
	now       time.Time
	workloads map[string]*Workload
	gpus      []*GPU
	// Energy counters.
	raplCPUuj  []float64 // per socket, wraps at RAPLMaxEnergyUJ
	raplDRAMuj []float64
	ipmiWatts  float64
	// Node-wide accounting.
	cpuTotalSec float64 // node active cpu-seconds (all workloads + OS)
	idleSec     float64
	memUsed     int64
	// Ground truth.
	truth map[string]*WorkloadEnergy
	rng   *rand.Rand
	// Last instantaneous component powers (diagnostics + truth split).
	lastCPUPowerW, lastDRAMPowerW, lastGPUPowerW float64
}

// NewNode builds a node at the given start time and writes the initial
// pseudo-file tree.
func NewNode(spec NodeSpec, start time.Time) (*Node, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := &Node{
		Spec:       spec,
		FS:         sysfs.NewMemFS(),
		now:        start,
		workloads:  map[string]*Workload{},
		raplCPUuj:  make([]float64, spec.Sockets),
		raplDRAMuj: make([]float64, spec.Sockets),
		truth:      map[string]*WorkloadEnergy{},
		rng:        rand.New(rand.NewSource(spec.Seed ^ int64(len(spec.Name)))),
	}
	for i, kind := range spec.GPUs {
		n.gpus = append(n.gpus, &GPU{
			Index: i, Kind: kind,
			UUID: fmt.Sprintf("GPU-%s-%s-%d", strings.ToLower(string(kind)), spec.Name, i),
		})
	}
	// Start counters at random offsets so wrap handling is exercised.
	for s := 0; s < spec.Sockets; s++ {
		n.raplCPUuj[s] = float64(n.rng.Int63n(RAPLMaxEnergyUJ))
		n.raplDRAMuj[s] = float64(n.rng.Int63n(RAPLMaxEnergyUJ))
	}
	n.writeStatic()
	n.writeDynamic(0)
	return n, nil
}

// Now returns the node's current simulated time.
func (n *Node) Now() time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// GPUs returns the node's GPU devices.
func (n *Node) GPUs() []*GPU {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]*GPU(nil), n.gpus...)
}

// AddWorkload places a workload on the node. The cgroup files appear on the
// next Advance.
func (n *Node) AddWorkload(w *Workload) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.workloads[w.ID]; dup {
		return fmt.Errorf("hw: node %s: duplicate workload %s", n.Spec.Name, w.ID)
	}
	needCPU := w.CPUs
	for _, ex := range n.workloads {
		needCPU += ex.CPUs
	}
	if needCPU > n.Spec.TotalCPUs() {
		return fmt.Errorf("hw: node %s: CPU oversubscription (%d > %d)", n.Spec.Name, needCPU, n.Spec.TotalCPUs())
	}
	for _, ord := range w.GPUOrdinals {
		if ord < 0 || ord >= len(n.gpus) {
			return fmt.Errorf("hw: node %s: no GPU ordinal %d", n.Spec.Name, ord)
		}
	}
	if w.CgroupPath == "" {
		w.CgroupPath = "/sys/fs/cgroup/system.slice/slurmstepd.scope/" + w.ID
	}
	w.started = n.now
	n.workloads[w.ID] = w
	n.truth[w.ID] = &WorkloadEnergy{}
	return nil
}

// RemoveWorkload removes a workload and deletes its cgroup tree, returning
// its ground-truth energy. Unknown IDs return a zero value.
func (n *Node) RemoveWorkload(id string) WorkloadEnergy {
	n.mu.Lock()
	defer n.mu.Unlock()
	w, ok := n.workloads[id]
	if !ok {
		return WorkloadEnergy{}
	}
	n.FS.RemoveAll(w.CgroupPath)
	delete(n.workloads, id)
	te := n.truth[id]
	delete(n.truth, id)
	if te == nil {
		return WorkloadEnergy{}
	}
	return *te
}

// Truth returns a copy of the ground-truth energy for a running workload.
func (n *Node) Truth(id string) (WorkloadEnergy, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	te, ok := n.truth[id]
	if !ok {
		return WorkloadEnergy{}, false
	}
	return *te, true
}

// NumWorkloads returns the count of running workloads.
func (n *Node) NumWorkloads() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.workloads)
}

// PowerReading implements the IPMI-DCMI power reading "command". Like the
// real interface it is cheap to call but only refreshed by the BMC once per
// simulation step.
func (n *Node) PowerReading() (float64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ipmiWatts, nil
}

// Advance steps the simulation by dt: workloads accumulate CPU time and
// memory, energy counters integrate the power model, and the pseudo-files
// are rewritten.
func (n *Node) Advance(dt time.Duration) {
	if dt <= 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.now = n.now.Add(dt)
	dtSec := dt.Seconds()
	totalCPUs := float64(n.Spec.TotalCPUs())

	// Per-workload activity this step.
	type activity struct {
		w       *Workload
		cpuSec  float64
		mem     int64
		gpuUtil float64
	}
	acts := make([]activity, 0, len(n.workloads))
	var activeSec float64
	var memUsed int64
	for _, w := range n.workloads {
		elapsed := n.now.Sub(w.started)
		cu := 1.0
		if w.CPUUtil != nil {
			cu = clamp01(w.CPUUtil(elapsed))
		}
		mu := 0.5
		if w.MemUtil != nil {
			mu = clamp01(w.MemUtil(elapsed))
		}
		gu := cu
		if w.GPUUtil != nil {
			gu = clamp01(w.GPUUtil(elapsed))
		}
		cpuSec := cu * float64(w.CPUs) * dtSec
		mem := int64(mu * float64(w.MemLimit))
		w.cpuUsageSec += cpuSec
		w.memCurrent = mem
		activeSec += cpuSec
		memUsed += mem
		acts = append(acts, activity{w: w, cpuSec: cpuSec, mem: mem, gpuUtil: gu})
	}
	// OS baseline: 0.4% of the node's CPUs are always busy.
	osSec := 0.004 * totalCPUs * dtSec
	activeSec += osSec
	if activeSec > totalCPUs*dtSec {
		activeSec = totalCPUs * dtSec
	}
	n.cpuTotalSec += activeSec
	n.idleSec += totalCPUs*dtSec - activeSec
	n.memUsed = memUsed

	// Power model.
	util := activeSec / (totalCPUs * dtSec)
	cpuPowerW := 0.0
	for s := 0; s < n.Spec.Sockets; s++ {
		p := n.Spec.CPUIdleWattsPerSocket +
			(n.Spec.CPUMaxWattsPerSocket-n.Spec.CPUIdleWattsPerSocket)*util
		n.raplCPUuj[s] = wrapUJ(n.raplCPUuj[s] + p*dtSec*1e6)
		cpuPowerW += p
	}
	memFrac := float64(memUsed) / float64(n.Spec.MemBytes)
	dramPowerW := n.Spec.DRAMIdleWatts + (n.Spec.DRAMMaxWatts-n.Spec.DRAMIdleWatts)*clamp01(memFrac)
	for s := 0; s < n.Spec.Sockets; s++ {
		n.raplDRAMuj[s] = wrapUJ(n.raplDRAMuj[s] + dramPowerW/float64(n.Spec.Sockets)*dtSec*1e6)
	}

	// GPUs: utilization is the max over bound workloads (a device runs one
	// kernel stream at a time; concurrent use shows as high util).
	gpuPowerW := 0.0
	gpuUtilByOrd := make([]float64, len(n.gpus))
	for _, a := range acts {
		for _, ord := range a.w.GPUOrdinals {
			if a.gpuUtil > gpuUtilByOrd[ord] {
				gpuUtilByOrd[ord] = a.gpuUtil
			}
		}
	}
	for i, g := range n.gpus {
		g.util = gpuUtilByOrd[i]
		g.powerW = g.Kind.IdlePowerWatts() +
			(g.Kind.MaxPowerWatts()-g.Kind.IdlePowerWatts())*g.util
		g.energyMJ += g.powerW * dtSec * 1000
		g.memUsed = int64(g.util * float64(g.Kind.MemoryBytes()) * 0.9)
		gpuPowerW += g.powerW
	}

	// IPMI: whole node at the wall, with optional GPU inclusion and noise.
	components := cpuPowerW + dramPowerW + n.Spec.OtherWatts
	if n.Spec.IPMIIncludesGPU {
		components += gpuPowerW
	}
	wall := components / n.Spec.PSUEfficiency
	if n.Spec.NoiseFrac > 0 {
		wall *= 1 + n.Spec.NoiseFrac*(2*n.rng.Float64()-1)
	}
	n.ipmiWatts = wall
	n.lastCPUPowerW, n.lastDRAMPowerW, n.lastGPUPowerW = cpuPowerW, dramPowerW, gpuPowerW

	// Ground-truth attribution: CPU power by active cpu-seconds, DRAM by
	// resident bytes, other+PSU loss by equal share — the best possible
	// per-process decomposition of this power model.
	wallNoGPU := (cpuPowerW + dramPowerW + n.Spec.OtherWatts) / n.Spec.PSUEfficiency
	nw := float64(len(acts))
	for _, a := range acts {
		te := n.truth[a.w.ID]
		var cpuShare, memShare float64
		if activeSec > 0 {
			cpuShare = a.cpuSec / activeSec
		}
		if memUsed > 0 {
			memShare = float64(a.mem) / float64(memUsed)
		}
		hostW := cpuPowerW*cpuShare + dramPowerW*memShare + n.Spec.OtherWatts/math.Max(nw, 1)
		// Scale to the wall (PSU losses follow the components).
		hostW *= wallNoGPU / (cpuPowerW + dramPowerW + n.Spec.OtherWatts)
		te.HostJoules += hostW * dtSec
		te.CPUSeconds += a.cpuSec
		for _, ord := range a.w.GPUOrdinals {
			te.GPUJoules += n.gpus[ord].powerW * dtSec
		}
	}

	n.writeDynamic(dtSec)
}

func clamp01(v float64) float64 { return math.Max(0, math.Min(1, v)) }

func wrapUJ(v float64) float64 {
	for v >= RAPLMaxEnergyUJ {
		v -= RAPLMaxEnergyUJ
	}
	return v
}

// writeStatic writes files that never change.
func (n *Node) writeStatic() {
	for s := 0; s < n.Spec.Sockets; s++ {
		base := fmt.Sprintf("/sys/class/powercap/intel-rapl:%d", s)
		n.FS.WriteString(base+"/name", fmt.Sprintf("package-%d\n", s))
		n.FS.WriteString(base+"/max_energy_range_uj", fmt.Sprintf("%d\n", int64(RAPLMaxEnergyUJ)))
		if n.Spec.Vendor == VendorIntel {
			sub := fmt.Sprintf("%s/intel-rapl:%d:0", base, s)
			n.FS.WriteString(sub+"/name", "dram\n")
			n.FS.WriteString(sub+"/max_energy_range_uj", fmt.Sprintf("%d\n", int64(RAPLMaxEnergyUJ)))
		}
	}
	n.FS.WriteString("/proc/meminfo_total_kb", fmt.Sprintf("%d\n", n.Spec.MemBytes/1024))
}

// writeDynamic refreshes all time-varying files. Caller holds n.mu.
func (n *Node) writeDynamic(dtSec float64) {
	// RAPL counters.
	for s := 0; s < n.Spec.Sockets; s++ {
		base := fmt.Sprintf("/sys/class/powercap/intel-rapl:%d", s)
		n.FS.WriteString(base+"/energy_uj", fmt.Sprintf("%d\n", uint64(n.raplCPUuj[s])))
		if n.Spec.Vendor == VendorIntel {
			n.FS.WriteString(fmt.Sprintf("%s/intel-rapl:%d:0/energy_uj", base, s),
				fmt.Sprintf("%d\n", uint64(n.raplDRAMuj[s])))
		}
	}
	// /proc/stat: aggregate cpu line in jiffies. user≈80% of active,
	// system≈20%.
	userJ := uint64(n.cpuTotalSec * 0.8 * UserHZ)
	sysJ := uint64(n.cpuTotalSec * 0.2 * UserHZ)
	idleJ := uint64(n.idleSec * UserHZ)
	n.FS.WriteString("/proc/stat",
		fmt.Sprintf("cpu  %d 0 %d %d 0 0 0 0 0 0\n", userJ, sysJ, idleJ))
	// /proc/meminfo.
	availKB := (n.Spec.MemBytes - n.memUsed) / 1024
	n.FS.WriteString("/proc/meminfo", fmt.Sprintf(
		"MemTotal:       %d kB\nMemFree:        %d kB\nMemAvailable:   %d kB\n",
		n.Spec.MemBytes/1024, availKB, availKB))
	// Cgroup trees.
	ids := make([]string, 0, len(n.workloads))
	for id := range n.workloads {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := n.workloads[id]
		usageUsec := uint64(w.cpuUsageSec * 1e6)
		n.FS.WriteString(w.CgroupPath+"/cpu.stat", fmt.Sprintf(
			"usage_usec %d\nuser_usec %d\nsystem_usec %d\n",
			usageUsec, usageUsec*8/10, usageUsec*2/10))
		n.FS.WriteString(w.CgroupPath+"/memory.current", fmt.Sprintf("%d\n", w.memCurrent))
		n.FS.WriteString(w.CgroupPath+"/memory.max", fmt.Sprintf("%d\n", w.MemLimit))
		n.FS.WriteString(w.CgroupPath+"/cgroup.procs", "1\n")
		n.FS.WriteString(w.CgroupPath+"/cpuset.cpus.effective",
			fmt.Sprintf("0-%d\n", w.CPUs-1))
	}
}

// FlushFiles rewrites the dynamic pseudo-files immediately, so cgroup
// trees of freshly-placed workloads exist before the next Advance.
func (n *Node) FlushFiles() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.writeDynamic(0)
}

// ComponentPowers returns the last instantaneous component powers
// (CPU, DRAM, GPU watts) for diagnostics and ablation baselines.
func (n *Node) ComponentPowers() (cpu, dram, gpu float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastCPUPowerW, n.lastDRAMPowerW, n.lastGPUPowerW
}
