package hw

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
	"repro/internal/sysfs"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newTestNode(t *testing.T, spec NodeSpec) *Node {
	t.Helper()
	n, err := NewNode(spec, t0)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	return n
}

func TestSpecValidate(t *testing.T) {
	good := DefaultIntelSpec("n1")
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []NodeSpec{
		{},
		{Name: "x", Sockets: 0, CoresPerSocket: 8, MemBytes: 1, PSUEfficiency: 0.9},
		{Name: "x", Sockets: 1, CoresPerSocket: 8, MemBytes: 0, PSUEfficiency: 0.9},
		{Name: "x", Sockets: 1, CoresPerSocket: 8, MemBytes: 1, PSUEfficiency: 1.5},
		{Name: "x", Sockets: 1, CoresPerSocket: 8, MemBytes: 1, PSUEfficiency: 0.9,
			CPUIdleWattsPerSocket: 100, CPUMaxWattsPerSocket: 50},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestStaticFiles(t *testing.T) {
	n := newTestNode(t, DefaultIntelSpec("n1"))
	for _, p := range []string{
		"/sys/class/powercap/intel-rapl:0/name",
		"/sys/class/powercap/intel-rapl:0/energy_uj",
		"/sys/class/powercap/intel-rapl:0/intel-rapl:0:0/name",
		"/sys/class/powercap/intel-rapl:1/energy_uj",
		"/proc/stat",
		"/proc/meminfo",
	} {
		if !n.FS.Exists(p) {
			t.Errorf("missing %s", p)
		}
	}
	// AMD nodes must not have a DRAM domain.
	amd := newTestNode(t, DefaultAMDSpec("a1"))
	if amd.FS.Exists("/sys/class/powercap/intel-rapl:0/intel-rapl:0:0/name") {
		t.Error("AMD node has DRAM RAPL domain")
	}
}

func TestRAPLCountersAdvance(t *testing.T) {
	spec := DefaultIntelSpec("n1")
	spec.NoiseFrac = 0
	n := newTestNode(t, spec)
	before, err := sysfs.ReadUint64(n.FS, "/sys/class/powercap/intel-rapl:0/energy_uj")
	if err != nil {
		t.Fatal(err)
	}
	n.Advance(15 * time.Second)
	after, err := sysfs.ReadUint64(n.FS, "/sys/class/powercap/intel-rapl:0/energy_uj")
	if err != nil {
		t.Fatal(err)
	}
	// Near-idle node: per-socket power ≈ idle (45 W) + small OS activity.
	deltaJ := float64(after-before) / 1e6
	watts := deltaJ / 15
	if watts < 40 || watts > 60 {
		t.Errorf("idle package power = %.1f W, want ~45", watts)
	}
}

func TestRAPLWrap(t *testing.T) {
	spec := DefaultIntelSpec("n1")
	spec.Seed = 42
	n := newTestNode(t, spec)
	// Force the counter near the wrap boundary.
	n.mu.Lock()
	n.raplCPUuj[0] = RAPLMaxEnergyUJ - 100
	n.mu.Unlock()
	n.Advance(15 * time.Second)
	v, _ := sysfs.ReadUint64(n.FS, "/sys/class/powercap/intel-rapl:0/energy_uj")
	if float64(v) >= RAPLMaxEnergyUJ {
		t.Errorf("counter did not wrap: %d", v)
	}
}

func TestWorkloadAccounting(t *testing.T) {
	spec := DefaultIntelSpec("n1")
	spec.NoiseFrac = 0
	n := newTestNode(t, spec)
	w := &Workload{
		ID: "job_1", CPUs: 16, MemLimit: 64 << 30,
		CPUUtil: func(time.Duration) float64 { return 0.75 },
		MemUtil: func(time.Duration) float64 { return 0.5 },
	}
	if err := n.AddWorkload(w); err != nil {
		t.Fatalf("AddWorkload: %v", err)
	}
	for i := 0; i < 4; i++ {
		n.Advance(15 * time.Second)
	}
	// cpu.stat: 0.75 * 16 cpus * 60 s = 720 s = 7.2e8 usec.
	kv, err := sysfs.ReadKVFile(n.FS, w.CgroupPath+"/cpu.stat")
	if err != nil {
		t.Fatalf("cpu.stat: %v", err)
	}
	if got := float64(kv["usage_usec"]) / 1e6; math.Abs(got-720) > 1 {
		t.Errorf("cgroup cpu usage = %v s, want 720", got)
	}
	mem, _ := sysfs.ReadUint64(n.FS, w.CgroupPath+"/memory.current")
	if got := int64(mem); got != 32<<30 {
		t.Errorf("memory.current = %d, want %d", got, int64(32<<30))
	}
	// Ground truth accumulated.
	te, ok := n.Truth("job_1")
	if !ok || te.CPUSeconds < 719 || te.CPUSeconds > 721 {
		t.Errorf("truth cpu sec = %+v", te)
	}
	if te.HostJoules <= 0 {
		t.Error("truth host energy not accumulated")
	}
	// Removal deletes the cgroup and returns the truth.
	got := n.RemoveWorkload("job_1")
	if got.CPUSeconds != te.CPUSeconds {
		t.Errorf("removed truth mismatch")
	}
	if n.FS.Exists(w.CgroupPath + "/cpu.stat") {
		t.Error("cgroup not removed")
	}
}

func TestOversubscriptionRejected(t *testing.T) {
	n := newTestNode(t, DefaultIntelSpec("n1")) // 64 cpus
	if err := n.AddWorkload(&Workload{ID: "a", CPUs: 60, MemLimit: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddWorkload(&Workload{ID: "b", CPUs: 8, MemLimit: 1 << 30}); err == nil {
		t.Error("oversubscription accepted")
	}
	if err := n.AddWorkload(&Workload{ID: "a", CPUs: 1, MemLimit: 1}); err == nil {
		t.Error("duplicate id accepted")
	}
}

func TestGPUWorkload(t *testing.T) {
	spec := DefaultGPUSpec("g1", true, model.GPUA100, model.GPUA100)
	spec.NoiseFrac = 0
	n := newTestNode(t, spec)
	w := &Workload{
		ID: "job_g", CPUs: 8, MemLimit: 32 << 30, GPUOrdinals: []int{1},
		CPUUtil: func(time.Duration) float64 { return 0.2 },
		GPUUtil: func(time.Duration) float64 { return 1.0 },
	}
	if err := n.AddWorkload(w); err != nil {
		t.Fatal(err)
	}
	n.Advance(15 * time.Second)
	gpus := n.GPUs()
	if gpus[0].Util() != 0 || gpus[1].Util() != 1 {
		t.Errorf("gpu utils = %v, %v", gpus[0].Util(), gpus[1].Util())
	}
	if gpus[1].PowerWatts() != model.GPUA100.MaxPowerWatts() {
		t.Errorf("busy gpu power = %v", gpus[1].PowerWatts())
	}
	if gpus[0].PowerWatts() != model.GPUA100.IdlePowerWatts() {
		t.Errorf("idle gpu power = %v", gpus[0].PowerWatts())
	}
	// Energy counter: 400 W * 15 s * 1000 mJ.
	wantMJ := model.GPUA100.MaxPowerWatts() * 15 * 1000
	if math.Abs(gpus[1].EnergyMilliJoules()-wantMJ) > 1 {
		t.Errorf("gpu energy = %v mJ, want %v", gpus[1].EnergyMilliJoules(), wantMJ)
	}
	// Truth includes GPU energy.
	te, _ := n.Truth("job_g")
	if math.Abs(te.GPUJoules-model.GPUA100.MaxPowerWatts()*15) > 0.1 {
		t.Errorf("truth gpu joules = %v", te.GPUJoules)
	}
	// Bad ordinal rejected.
	if err := n.AddWorkload(&Workload{ID: "bad", CPUs: 1, MemLimit: 1, GPUOrdinals: []int{7}}); err == nil {
		t.Error("bad GPU ordinal accepted")
	}
}

func TestIPMIIncludesGPUVariants(t *testing.T) {
	run := func(include bool) float64 {
		spec := DefaultGPUSpec("g", include, model.GPUH100)
		spec.NoiseFrac = 0
		n, _ := NewNode(spec, t0)
		n.AddWorkload(&Workload{
			ID: "j", CPUs: 4, MemLimit: 1 << 30, GPUOrdinals: []int{0},
			GPUUtil: func(time.Duration) float64 { return 1 },
		})
		n.Advance(15 * time.Second)
		w, _ := n.PowerReading()
		return w
	}
	with := run(true)
	without := run(false)
	// H100 at full power adds ~700 W (divided by PSU efficiency).
	if with-without < 600 {
		t.Errorf("IPMI GPU inclusion delta = %v, want > 600", with-without)
	}
}

func TestIPMIPSUandNoise(t *testing.T) {
	spec := DefaultIntelSpec("n1")
	spec.NoiseFrac = 0
	n := newTestNode(t, spec)
	n.Advance(15 * time.Second)
	ipmi, err := n.PowerReading()
	if err != nil {
		t.Fatal(err)
	}
	cpu, dram, _ := n.ComponentPowers()
	want := (cpu + dram + spec.OtherWatts) / spec.PSUEfficiency
	if math.Abs(ipmi-want) > 0.001 {
		t.Errorf("ipmi = %v, want %v", ipmi, want)
	}
	// IPMI must exceed RAPL-covered components (the gap Eq. 1 bridges).
	if ipmi <= cpu+dram {
		t.Error("IPMI should exceed RAPL domains")
	}
	// With noise, readings vary but stay within the band.
	spec2 := DefaultIntelSpec("n2")
	spec2.NoiseFrac = 0.02
	n2 := newTestNode(t, spec2)
	for i := 0; i < 10; i++ {
		n2.Advance(15 * time.Second)
		r, _ := n2.PowerReading()
		c2, d2, _ := n2.ComponentPowers()
		base := (c2 + d2 + spec2.OtherWatts) / spec2.PSUEfficiency
		if math.Abs(r-base)/base > 0.021 {
			t.Errorf("noise out of band: %v vs %v", r, base)
		}
	}
}

func TestProcStat(t *testing.T) {
	spec := DefaultIntelSpec("n1")
	spec.NoiseFrac = 0
	n := newTestNode(t, spec)
	n.AddWorkload(&Workload{ID: "j", CPUs: 32, MemLimit: 1 << 30,
		CPUUtil: func(time.Duration) float64 { return 1 }})
	n.Advance(60 * time.Second)
	data, err := n.FS.ReadFile("/proc/stat")
	if err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(string(data))
	if !strings.HasPrefix(line, "cpu ") {
		t.Fatalf("proc/stat = %q", line)
	}
	fields := strings.Fields(line)
	// user + system jiffies ≈ (32 busy + 0.256 OS) cpus * 60 s * 100 Hz.
	var user, system uint64
	for i, f := range fields {
		v := uint64(0)
		for _, c := range f {
			if c >= '0' && c <= '9' {
				v = v*10 + uint64(c-'0')
			}
		}
		if i == 1 {
			user = v
		}
		if i == 3 {
			system = v
		}
	}
	totalSec := float64(user+system) / UserHZ
	if totalSec < 1900 || totalSec > 2000 {
		t.Errorf("proc/stat active sec = %v, want ~1935", totalSec)
	}
}

// Property: total reported energy is conserved — the integral of IPMI power
// equals component power / PSU efficiency within noise bounds, for any
// workload mix.
func TestEnergyConservationProperty(t *testing.T) {
	f := func(cpuFrac, memFrac uint8, nj uint8) bool {
		spec := DefaultIntelSpec("p")
		spec.NoiseFrac = 0
		n, err := NewNode(spec, t0)
		if err != nil {
			return false
		}
		jobs := int(nj%4) + 1
		cpusEach := spec.TotalCPUs() / jobs
		cf := float64(cpuFrac%101) / 100
		mf := float64(memFrac%101) / 100
		for j := 0; j < jobs; j++ {
			err := n.AddWorkload(&Workload{
				ID: "j" + string(rune('0'+j)), CPUs: cpusEach,
				MemLimit: spec.MemBytes / int64(jobs),
				CPUUtil:  func(time.Duration) float64 { return cf },
				MemUtil:  func(time.Duration) float64 { return mf },
			})
			if err != nil {
				return false
			}
		}
		var ipmiJoules float64
		for i := 0; i < 8; i++ {
			n.Advance(15 * time.Second)
			w, _ := n.PowerReading()
			ipmiJoules += w * 15
		}
		// Sum of per-workload truth + unattributed OS share must not
		// exceed the IPMI integral, and must be close to it (workloads
		// dominate; OS baseline is tiny but has no truth entry).
		var truthJ float64
		for j := 0; j < jobs; j++ {
			te, ok := n.Truth("j" + string(rune('0'+j)))
			if !ok {
				return false
			}
			truthJ += te.HostJoules
		}
		if truthJ > ipmiJoules*1.001 {
			return false
		}
		// OS baseline + idle-power share not attributed to jobs: the gap
		// must stay under 50% at any non-zero utilization (measured ratio
		// is >= 0.76 already at CPUUtil 0.01). At exactly zero utilization
		// the attributed share legitimately drops to ~0.37-0.47 (idle
		// power of unused capacity is only partly attributed via cpu
		// share), so that corner gets a 0.3 bound — the unconditional 0.5
		// bound flaked whenever quick drew cpuFrac % 101 == 0.
		bound := 0.5
		if cf == 0 {
			bound = 0.3
		}
		return truthJ > ipmiJoules*bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdvance(b *testing.B) {
	spec := DefaultIntelSpec("bench")
	n, _ := NewNode(spec, t0)
	for j := 0; j < 8; j++ {
		n.AddWorkload(&Workload{
			ID: "job_" + string(rune('0'+j)), CPUs: 8, MemLimit: 16 << 30,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Advance(15 * time.Second)
	}
}
