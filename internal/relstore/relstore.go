// Package relstore is the embedded relational store backing the CEEMS API
// server, standing in for SQLite (paper §II.D: SQLite was chosen for
// simplicity, no external dependencies, and a single-writer access
// pattern). It provides typed tables with primary keys and secondary
// indexes, predicate queries with ordering and pagination, a JSON
// write-ahead log with snapshot checkpoints for durability, and a
// Litestream-style continuous replica (replica.go).
//
// Like the paper's deployment it enforces the single-writer model: all
// mutations serialize through one lock, while reads proceed concurrently.
package relstore

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ColumnType enumerates supported column types.
type ColumnType string

const (
	ColInt   ColumnType = "int"   // int64
	ColFloat ColumnType = "float" // float64
	ColText  ColumnType = "text"  // string
	ColBool  ColumnType = "bool"  // bool
)

// Column defines one table column.
type Column struct {
	Name string     `json:"name"`
	Type ColumnType `json:"type"`
}

// Schema defines a table.
type Schema struct {
	Name       string   `json:"name"`
	Columns    []Column `json:"columns"`
	PrimaryKey string   `json:"primary_key"`
	// Indexes are secondary equality indexes by column name.
	Indexes []string `json:"indexes"`
}

// Validate checks internal consistency.
func (s Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("relstore: table name required")
	}
	cols := map[string]ColumnType{}
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("relstore: table %s: empty column name", s.Name)
		}
		if _, dup := cols[c.Name]; dup {
			return fmt.Errorf("relstore: table %s: duplicate column %s", s.Name, c.Name)
		}
		switch c.Type {
		case ColInt, ColFloat, ColText, ColBool:
		default:
			return fmt.Errorf("relstore: table %s: bad column type %q", s.Name, c.Type)
		}
		cols[c.Name] = c.Type
	}
	if _, ok := cols[s.PrimaryKey]; !ok {
		return fmt.Errorf("relstore: table %s: primary key %q is not a column", s.Name, s.PrimaryKey)
	}
	for _, idx := range s.Indexes {
		if _, ok := cols[idx]; !ok {
			return fmt.Errorf("relstore: table %s: index on unknown column %q", s.Name, idx)
		}
	}
	return nil
}

// Row is one record; values must match the schema column types
// (int64/float64/string/bool).
type Row map[string]any

// Op is a filter comparison operator.
type Op string

const (
	OpEq  Op = "="
	OpNe  Op = "!="
	OpLt  Op = "<"
	OpLe  Op = "<="
	OpGt  Op = ">"
	OpGe  Op = ">="
	OpHas Op = "contains" // substring match on text columns
)

// Cond is one filter condition (ANDed together in Query).
type Cond struct {
	Col string
	Op  Op
	Val any
}

// Query describes a Select.
type Query struct {
	Where   []Cond
	OrderBy string // column name; empty = primary-key order
	Desc    bool
	Limit   int // 0 = unlimited
	Offset  int
}

// DB is the store. Dir == "" keeps everything in memory (used by tests);
// otherwise the WAL and snapshots live under Dir.
type DB struct {
	dir string

	mu     sync.RWMutex
	tables map[string]*table
	walF   *os.File
	walN   int // records in current WAL
	seq    uint64
}

type table struct {
	schema Schema
	rows   map[string]Row
	// indexes: column -> encoded value -> pk set
	indexes map[string]map[string]map[string]struct{}
}

// walRecord is one WAL entry.
type walRecord struct {
	Seq    uint64  `json:"seq"`
	Op     string  `json:"op"` // create|upsert|delete
	Table  string  `json:"table"`
	Schema *Schema `json:"schema,omitempty"`
	PK     string  `json:"pk,omitempty"`
	Row    Row     `json:"row,omitempty"`
}

const (
	snapshotFile = "snapshot.json"
	walFile      = "wal.jsonl"
)

// Open opens (or creates) a store in dir; pass "" for memory-only.
func Open(dir string) (*DB, error) {
	db := &DB{dir: dir, tables: map[string]*table{}}
	if dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := db.loadSnapshot(filepath.Join(dir, snapshotFile)); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	if err := db.replayWAL(filepath.Join(dir, walFile)); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	db.walF = f
	return db, nil
}

// Close flushes and closes the WAL.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.walF != nil {
		err := db.walF.Close()
		db.walF = nil
		return err
	}
	return nil
}

// CreateTable registers a table; creating an existing table with an equal
// schema is a no-op.
func (db *DB) CreateTable(s Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if ex, ok := db.tables[s.Name]; ok {
		exJSON, _ := json.Marshal(ex.schema)
		newJSON, _ := json.Marshal(s)
		if string(exJSON) == string(newJSON) {
			return nil
		}
		return fmt.Errorf("relstore: table %s exists with different schema", s.Name)
	}
	db.createTableLocked(s)
	return db.appendWALLocked(walRecord{Op: "create", Table: s.Name, Schema: &s})
}

func (db *DB) createTableLocked(s Schema) {
	t := &table{
		schema:  s,
		rows:    map[string]Row{},
		indexes: map[string]map[string]map[string]struct{}{},
	}
	for _, idx := range s.Indexes {
		t.indexes[idx] = map[string]map[string]struct{}{}
	}
	db.tables[s.Name] = t
}

// encodeKey renders any column value into a stable string key.
func encodeKey(v any) string {
	switch x := v.(type) {
	case string:
		return "s:" + x
	case int64:
		return "i:" + strconv.FormatInt(x, 10)
	case int:
		return "i:" + strconv.Itoa(x)
	case float64:
		return "f:" + strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return "b:" + strconv.FormatBool(x)
	case nil:
		return "z:"
	}
	return fmt.Sprintf("x:%v", v)
}

// normalize coerces a value to the column type (JSON round-trips turn
// int64 into float64; this undoes that).
func normalize(t ColumnType, v any) (any, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case ColInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case float64:
			if x != math.Trunc(x) {
				return nil, fmt.Errorf("non-integer %v for int column", x)
			}
			return int64(x), nil
		}
	case ColFloat:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		case int:
			return float64(x), nil
		}
	case ColText:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case ColBool:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	}
	return nil, fmt.Errorf("value %T does not fit column type %s", v, t)
}

// Upsert inserts or replaces the row identified by its primary key.
func (db *DB) Upsert(tableName string, row Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("relstore: no table %q", tableName)
	}
	norm := make(Row, len(row))
	for _, c := range t.schema.Columns {
		v, present := row[c.Name]
		if !present {
			continue
		}
		nv, err := normalize(c.Type, v)
		if err != nil {
			return fmt.Errorf("relstore: %s.%s: %w", tableName, c.Name, err)
		}
		norm[c.Name] = nv
	}
	for k := range row {
		if _, ok := colType(t.schema, k); !ok {
			return fmt.Errorf("relstore: %s: unknown column %q", tableName, k)
		}
	}
	pkv, ok := norm[t.schema.PrimaryKey]
	if !ok || pkv == nil {
		return fmt.Errorf("relstore: %s: row missing primary key %s", tableName, t.schema.PrimaryKey)
	}
	pk := encodeKey(pkv)
	db.upsertLocked(t, pk, norm)
	return db.appendWALLocked(walRecord{Op: "upsert", Table: tableName, PK: pk, Row: norm})
}

func (db *DB) upsertLocked(t *table, pk string, row Row) {
	if old, exists := t.rows[pk]; exists {
		for col, vm := range t.indexes {
			if ov, ok := old[col]; ok {
				key := encodeKey(ov)
				delete(vm[key], pk)
				if len(vm[key]) == 0 {
					delete(vm, key)
				}
			}
		}
	}
	t.rows[pk] = row
	for col, vm := range t.indexes {
		if v, ok := row[col]; ok {
			key := encodeKey(v)
			set, ok := vm[key]
			if !ok {
				set = map[string]struct{}{}
				vm[key] = set
			}
			set[pk] = struct{}{}
		}
	}
}

// Delete removes a row by primary-key value, reporting whether it existed.
func (db *DB) Delete(tableName string, pkValue any) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return false, fmt.Errorf("relstore: no table %q", tableName)
	}
	pkCol, _ := colType(t.schema, t.schema.PrimaryKey)
	nv, err := normalize(pkCol, pkValue)
	if err != nil {
		return false, err
	}
	pk := encodeKey(nv)
	old, exists := t.rows[pk]
	if !exists {
		return false, nil
	}
	for col, vm := range t.indexes {
		if ov, ok := old[col]; ok {
			key := encodeKey(ov)
			delete(vm[key], pk)
			if len(vm[key]) == 0 {
				delete(vm, key)
			}
		}
	}
	delete(t.rows, pk)
	return true, db.appendWALLocked(walRecord{Op: "delete", Table: tableName, PK: pk})
}

// Get fetches one row by primary-key value.
func (db *DB) Get(tableName string, pkValue any) (Row, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, false, fmt.Errorf("relstore: no table %q", tableName)
	}
	pkCol, _ := colType(t.schema, t.schema.PrimaryKey)
	nv, err := normalize(pkCol, pkValue)
	if err != nil {
		return nil, false, err
	}
	row, exists := t.rows[encodeKey(nv)]
	if !exists {
		return nil, false, nil
	}
	return cloneRow(row), true, nil
}

// Select runs a query and returns matching rows.
func (db *DB) Select(tableName string, q Query) ([]Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", tableName)
	}
	// Validate conditions upfront so errors surface even on empty tables.
	for _, c := range q.Where {
		ct, known := colType(t.schema, c.Col)
		if !known {
			return nil, fmt.Errorf("relstore: %s: condition on unknown column %q", tableName, c.Col)
		}
		if c.Op == OpHas && ct != ColText {
			return nil, fmt.Errorf("relstore: %s: contains requires text column, %s is %s", tableName, c.Col, ct)
		}
	}
	// Candidate set: use a secondary index for the first indexed equality
	// condition; otherwise scan.
	var candidates []string
	usedCond := -1
	for i, c := range q.Where {
		if c.Op != OpEq {
			continue
		}
		vm, indexed := t.indexes[c.Col]
		if !indexed {
			continue
		}
		ct, _ := colType(t.schema, c.Col)
		nv, err := normalize(ct, c.Val)
		if err != nil {
			return nil, err
		}
		for pk := range vm[encodeKey(nv)] {
			candidates = append(candidates, pk)
		}
		usedCond = i
		break
	}
	if usedCond < 0 {
		candidates = make([]string, 0, len(t.rows))
		for pk := range t.rows {
			candidates = append(candidates, pk)
		}
	}
	var out []Row
	for _, pk := range candidates {
		row := t.rows[pk]
		match, err := rowMatches(t.schema, row, q.Where)
		if err != nil {
			return nil, err
		}
		if match {
			out = append(out, row)
		}
	}
	orderCol := q.OrderBy
	if orderCol == "" {
		orderCol = t.schema.PrimaryKey
	}
	if _, ok := colType(t.schema, orderCol); !ok {
		return nil, fmt.Errorf("relstore: %s: order by unknown column %q", tableName, orderCol)
	}
	sort.Slice(out, func(i, j int) bool {
		less := compareVals(out[i][orderCol], out[j][orderCol]) < 0
		if q.Desc {
			return !less
		}
		return less
	})
	if q.Offset > 0 {
		if q.Offset >= len(out) {
			out = nil
		} else {
			out = out[q.Offset:]
		}
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	cloned := make([]Row, len(out))
	for i, r := range out {
		cloned[i] = cloneRow(r)
	}
	return cloned, nil
}

// Count returns the number of rows matching the conditions.
func (db *DB) Count(tableName string, where ...Cond) (int, error) {
	rows, err := db.Select(tableName, Query{Where: where})
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// Tables lists table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func colType(s Schema, name string) (ColumnType, bool) {
	for _, c := range s.Columns {
		if c.Name == name {
			return c.Type, true
		}
	}
	return "", false
}

func cloneRow(r Row) Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

func rowMatches(s Schema, row Row, conds []Cond) (bool, error) {
	for _, c := range conds {
		ct, ok := colType(s, c.Col)
		if !ok {
			return false, fmt.Errorf("relstore: condition on unknown column %q", c.Col)
		}
		want, err := normalize(ct, c.Val)
		if err != nil {
			return false, err
		}
		got := row[c.Col]
		if c.Op == OpHas {
			gs, ok1 := got.(string)
			ws, ok2 := want.(string)
			if !ok1 || !ok2 {
				return false, fmt.Errorf("relstore: contains requires text column")
			}
			if !strings.Contains(gs, ws) {
				return false, nil
			}
			continue
		}
		cmp := compareVals(got, want)
		ok = false
		switch c.Op {
		case OpEq:
			ok = cmp == 0
		case OpNe:
			ok = cmp != 0
		case OpLt:
			ok = cmp < 0
		case OpLe:
			ok = cmp <= 0
		case OpGt:
			ok = cmp > 0
		case OpGe:
			ok = cmp >= 0
		default:
			return false, fmt.Errorf("relstore: unknown operator %q", c.Op)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// compareVals orders two normalized values of the same column type; nil
// sorts first.
func compareVals(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	switch x := a.(type) {
	case int64:
		y, ok := b.(int64)
		if !ok {
			return strings.Compare(encodeKey(a), encodeKey(b))
		}
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case float64:
		y, ok := b.(float64)
		if !ok {
			return strings.Compare(encodeKey(a), encodeKey(b))
		}
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case string:
		y, ok := b.(string)
		if !ok {
			return strings.Compare(encodeKey(a), encodeKey(b))
		}
		return strings.Compare(x, y)
	case bool:
		y, ok := b.(bool)
		if !ok {
			return strings.Compare(encodeKey(a), encodeKey(b))
		}
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
		return 0
	}
	return strings.Compare(encodeKey(a), encodeKey(b))
}
