package relstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// appendWALLocked writes one WAL record; caller holds db.mu. Memory-only
// stores skip the WAL entirely.
func (db *DB) appendWALLocked(rec walRecord) error {
	if db.walF == nil {
		return nil
	}
	db.seq++
	rec.Seq = db.seq
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := db.walF.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("relstore: wal append: %w", err)
	}
	db.walN++
	return nil
}

// snapshot is the on-disk checkpoint format.
type snapshot struct {
	Seq    uint64               `json:"seq"`
	Tables map[string]snapTable `json:"tables"`
}

type snapTable struct {
	Schema Schema         `json:"schema"`
	Rows   map[string]Row `json:"rows"`
}

// Checkpoint writes a full snapshot and truncates the WAL. It is the
// equivalent of a SQLite WAL checkpoint and also serves as the "in-built
// punctual backup solution" of the CEEMS API server when pointed at a
// backup directory via the replica. The snapshot is fsynced into place
// (file and directory) before the WAL is truncated: a crash between the
// two steps must find either the old WAL or the complete new snapshot on
// stable storage, never neither.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.dir == "" {
		return nil
	}
	if err := db.writeSnapshotLocked(filepath.Join(db.dir, snapshotFile)); err != nil {
		return err
	}
	// Truncate the WAL: close, recreate.
	if db.walF != nil {
		if err := db.walF.Close(); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(filepath.Join(db.dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	db.walF = f
	db.walN = 0
	return nil
}

// WALRecords returns the number of records in the current WAL segment.
func (db *DB) WALRecords() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.walN
}

func (db *DB) writeSnapshotLocked(path string) error {
	snap := snapshot{Seq: db.seq, Tables: map[string]snapTable{}}
	for name, t := range db.tables {
		snap.Tables[name] = snapTable{Schema: t.schema, Rows: t.rows}
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(&snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// The snapshot replaces the WAL as the source of truth the moment the
	// rename lands; it must be on disk — not in the page cache — before
	// that, and the rename itself must be durable before the caller
	// truncates the WAL.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so renames inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (db *DB) loadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("relstore: corrupt snapshot: %w", err)
	}
	db.seq = snap.Seq
	for name, st := range snap.Tables {
		db.createTableLocked(st.Schema)
		t := db.tables[name]
		for pk, row := range st.Rows {
			norm, err := normalizeRow(st.Schema, row)
			if err != nil {
				return fmt.Errorf("relstore: snapshot row %s/%s: %w", name, pk, err)
			}
			db.upsertLocked(t, pk, norm)
		}
	}
	return nil
}

// replayWAL applies WAL records on top of the loaded snapshot. Records at
// or before the snapshot sequence are skipped; a trailing partial line
// (torn write) is tolerated.
func (db *DB) replayWAL(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail write: stop replaying, keep what we have.
			break
		}
		if rec.Seq <= db.seq {
			continue
		}
		db.seq = rec.Seq
		db.walN++
		switch rec.Op {
		case "create":
			if rec.Schema != nil {
				if _, exists := db.tables[rec.Table]; !exists {
					db.createTableLocked(*rec.Schema)
				}
			}
		case "upsert":
			t, ok := db.tables[rec.Table]
			if !ok {
				continue
			}
			norm, err := normalizeRow(t.schema, rec.Row)
			if err != nil {
				continue
			}
			db.upsertLocked(t, rec.PK, norm)
		case "delete":
			t, ok := db.tables[rec.Table]
			if !ok {
				continue
			}
			if old, exists := t.rows[rec.PK]; exists {
				for col, vm := range t.indexes {
					if ov, ok := old[col]; ok {
						key := encodeKey(ov)
						delete(vm[key], rec.PK)
						if len(vm[key]) == 0 {
							delete(vm, key)
						}
					}
				}
				delete(t.rows, rec.PK)
			}
		}
	}
	return sc.Err()
}

// normalizeRow coerces all values of a JSON-decoded row to schema types.
func normalizeRow(s Schema, row Row) (Row, error) {
	out := make(Row, len(row))
	for _, c := range s.Columns {
		v, ok := row[c.Name]
		if !ok {
			continue
		}
		nv, err := normalize(c.Type, v)
		if err != nil {
			return nil, err
		}
		out[c.Name] = nv
	}
	return out, nil
}
