package relstore

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Replica continuously ships the store's snapshot and WAL to a backup
// directory, standing in for Litestream ("SQLite DB can be backed up
// continuously onto long-term storage using Litestream", paper §II.C). A
// backup is point-in-time consistent: the WAL segment is copied after the
// snapshot, and restore replays it on top.
type Replica struct {
	DB  *DB
	Dir string
	// Interval between sync passes in Run; default 10s.
	Interval time.Duration
	// OnError receives replication errors; nil drops them.
	OnError func(error)

	syncs int
}

// Sync copies the current snapshot and WAL into the backup directory. The
// source DB checkpoint is NOT forced; the copy pairs the last snapshot with
// the WAL records accumulated since, exactly like Litestream's
// generation+WAL shipping.
func (r *Replica) Sync() error {
	if r.DB.dir == "" {
		return fmt.Errorf("relstore: cannot replicate a memory-only store")
	}
	if err := os.MkdirAll(r.Dir, 0o755); err != nil {
		return err
	}
	// Snapshot may not exist yet (no checkpoint taken); that is fine as
	// long as the WAL carries everything.
	src := filepath.Join(r.DB.dir, snapshotFile)
	if _, err := os.Stat(src); err == nil {
		if err := copyFile(src, filepath.Join(r.Dir, snapshotFile)); err != nil {
			return err
		}
	}
	// Copy WAL under the read lock so no write tears the tail.
	r.DB.mu.RLock()
	err := copyFile(filepath.Join(r.DB.dir, walFile), filepath.Join(r.Dir, walFile))
	r.DB.mu.RUnlock()
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	r.syncs++
	return nil
}

// Syncs returns how many successful sync passes have completed.
func (r *Replica) Syncs() int { return r.syncs }

// Run syncs on the interval until ctx is cancelled.
func (r *Replica) Run(ctx context.Context) {
	interval := r.Interval
	if interval <= 0 {
		interval = 10 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if err := r.Sync(); err != nil && r.OnError != nil {
				r.OnError(err)
			}
		}
	}
}

// Restore opens a store reconstructed from a backup directory produced by
// Sync. The restored store lives in restoreDir.
func Restore(backupDir, restoreDir string) (*DB, error) {
	if err := os.MkdirAll(restoreDir, 0o755); err != nil {
		return nil, err
	}
	for _, name := range []string{snapshotFile, walFile} {
		src := filepath.Join(backupDir, name)
		if _, err := os.Stat(src); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		if err := copyFile(src, filepath.Join(restoreDir, name)); err != nil {
			return nil, err
		}
	}
	return Open(restoreDir)
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	tmp := dst + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		os.Remove(tmp)
		return err
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, dst)
}
