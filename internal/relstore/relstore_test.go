package relstore

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func unitsSchema() Schema {
	return Schema{
		Name: "units",
		Columns: []Column{
			{Name: "uuid", Type: ColText},
			{Name: "user", Type: ColText},
			{Name: "project", Type: ColText},
			{Name: "cpus", Type: ColInt},
			{Name: "energy_j", Type: ColFloat},
			{Name: "running", Type: ColBool},
		},
		PrimaryKey: "uuid",
		Indexes:    []string{"user", "project"},
	}
}

func openMem(t *testing.T) *DB {
	t.Helper()
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(unitsSchema()); err != nil {
		t.Fatal(err)
	}
	return db
}

func seedUnits(t *testing.T, db *DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := db.Upsert("units", Row{
			"uuid":     fmt.Sprintf("u%03d", i),
			"user":     fmt.Sprintf("user%d", i%4),
			"project":  fmt.Sprintf("proj%d", i%2),
			"cpus":     int64(4 * (i + 1)),
			"energy_j": float64(i) * 100,
			"running":  i%3 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := unitsSchema().Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	bad := []Schema{
		{},
		{Name: "t", Columns: []Column{{Name: "a", Type: ColInt}}, PrimaryKey: "b"},
		{Name: "t", Columns: []Column{{Name: "a", Type: "weird"}}, PrimaryKey: "a"},
		{Name: "t", Columns: []Column{{Name: "a", Type: ColInt}, {Name: "a", Type: ColInt}}, PrimaryKey: "a"},
		{Name: "t", Columns: []Column{{Name: "a", Type: ColInt}}, PrimaryKey: "a", Indexes: []string{"zz"}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestUpsertGetDelete(t *testing.T) {
	db := openMem(t)
	seedUnits(t, db, 5)
	row, ok, err := db.Get("units", "u002")
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	if row["cpus"].(int64) != 12 || row["user"].(string) != "user2" {
		t.Errorf("row = %v", row)
	}
	// Upsert replaces.
	db.Upsert("units", Row{"uuid": "u002", "user": "other", "cpus": int64(1)})
	row, _, _ = db.Get("units", "u002")
	if row["user"].(string) != "other" {
		t.Errorf("upsert did not replace: %v", row)
	}
	// Delete.
	existed, err := db.Delete("units", "u002")
	if err != nil || !existed {
		t.Fatalf("Delete: %v %v", existed, err)
	}
	if _, ok, _ := db.Get("units", "u002"); ok {
		t.Error("row survived delete")
	}
	existed, _ = db.Delete("units", "u002")
	if existed {
		t.Error("double delete reported existence")
	}
}

func TestUpsertErrors(t *testing.T) {
	db := openMem(t)
	if err := db.Upsert("nope", Row{"uuid": "x"}); err == nil {
		t.Error("unknown table accepted")
	}
	if err := db.Upsert("units", Row{"user": "x"}); err == nil {
		t.Error("missing PK accepted")
	}
	if err := db.Upsert("units", Row{"uuid": "x", "ghost": 1}); err == nil {
		t.Error("unknown column accepted")
	}
	if err := db.Upsert("units", Row{"uuid": "x", "cpus": "many"}); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := db.Upsert("units", Row{"uuid": "x", "cpus": 3.5}); err == nil {
		t.Error("fractional int accepted")
	}
	// int and whole float64 are coerced.
	if err := db.Upsert("units", Row{"uuid": "x", "cpus": 4, "energy_j": 5}); err != nil {
		t.Errorf("coercion failed: %v", err)
	}
}

func TestSelectFilters(t *testing.T) {
	db := openMem(t)
	seedUnits(t, db, 20)
	cases := []struct {
		q    Query
		want int
	}{
		{Query{Where: []Cond{{"user", OpEq, "user1"}}}, 5},
		{Query{Where: []Cond{{"user", OpEq, "user1"}, {"project", OpEq, "proj1"}}}, 5},
		{Query{Where: []Cond{{"cpus", OpGt, int64(40)}}}, 10},
		{Query{Where: []Cond{{"cpus", OpGe, int64(40)}}}, 11},
		{Query{Where: []Cond{{"energy_j", OpLt, 500.0}}}, 5},
		{Query{Where: []Cond{{"running", OpEq, true}}}, 7},
		{Query{Where: []Cond{{"uuid", OpHas, "01"}}}, 11}, // u001, u010..u019
		{Query{Where: []Cond{{"user", OpNe, "user0"}}}, 15},
		{Query{}, 20},
	}
	for i, c := range cases {
		rows, err := db.Select("units", c.q)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(rows) != c.want {
			t.Errorf("case %d: got %d rows, want %d", i, len(rows), c.want)
		}
	}
}

func TestSelectOrderLimitOffset(t *testing.T) {
	db := openMem(t)
	seedUnits(t, db, 10)
	rows, err := db.Select("units", Query{OrderBy: "energy_j", Desc: true, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0]["energy_j"].(float64) != 900 {
		t.Errorf("desc order = %v", rows)
	}
	rows, _ = db.Select("units", Query{OrderBy: "energy_j", Offset: 8})
	if len(rows) != 2 || rows[0]["energy_j"].(float64) != 800 {
		t.Errorf("offset = %v", rows)
	}
	rows, _ = db.Select("units", Query{Offset: 100})
	if len(rows) != 0 {
		t.Errorf("overlarge offset = %v", rows)
	}
	if _, err := db.Select("units", Query{OrderBy: "ghost"}); err == nil {
		t.Error("order by unknown column accepted")
	}
}

func TestSelectErrors(t *testing.T) {
	db := openMem(t)
	if _, err := db.Select("ghost", Query{}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.Select("units", Query{Where: []Cond{{"ghost", OpEq, 1}}}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := db.Select("units", Query{Where: []Cond{{"cpus", OpHas, "x"}}}); err == nil {
		t.Error("contains on int accepted")
	}
}

func TestIndexConsistencyAfterUpdate(t *testing.T) {
	db := openMem(t)
	db.Upsert("units", Row{"uuid": "a", "user": "alice"})
	db.Upsert("units", Row{"uuid": "a", "user": "bob"})
	rows, _ := db.Select("units", Query{Where: []Cond{{"user", OpEq, "alice"}}})
	if len(rows) != 0 {
		t.Errorf("stale index entry: %v", rows)
	}
	rows, _ = db.Select("units", Query{Where: []Cond{{"user", OpEq, "bob"}}})
	if len(rows) != 1 {
		t.Errorf("missing index entry: %v", rows)
	}
}

func TestCount(t *testing.T) {
	db := openMem(t)
	seedUnits(t, db, 12)
	n, err := db.Count("units", Cond{"project", OpEq, "proj0"})
	if err != nil || n != 6 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestCreateTableIdempotent(t *testing.T) {
	db := openMem(t)
	if err := db.CreateTable(unitsSchema()); err != nil {
		t.Errorf("re-create same schema: %v", err)
	}
	s := unitsSchema()
	s.PrimaryKey = "user"
	if err := db.CreateTable(s); err == nil {
		t.Error("conflicting schema accepted")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(unitsSchema()); err != nil {
		t.Fatal(err)
	}
	seedUnits(t, db, 8)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows, err := db2.Select("units", Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("recovered %d rows, want 8", len(rows))
	}
	// Indexes rebuilt.
	rows, _ = db2.Select("units", Query{Where: []Cond{{"user", OpEq, "user1"}}})
	if len(rows) != 2 {
		t.Errorf("index after recovery = %d", len(rows))
	}
	// Types preserved (not float64 from JSON).
	if _, ok := rows[0]["cpus"].(int64); !ok {
		t.Errorf("cpus type = %T", rows[0]["cpus"])
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir)
	db.CreateTable(unitsSchema())
	seedUnits(t, db, 5)
	if db.WALRecords() == 0 {
		t.Fatal("no WAL records before checkpoint")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if db.WALRecords() != 0 {
		t.Errorf("WAL not truncated: %d", db.WALRecords())
	}
	// More writes post-checkpoint, then reopen: snapshot + wal replay.
	db.Upsert("units", Row{"uuid": "post", "user": "x"})
	db.Close()
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	n, _ := db2.Count("units")
	if n != 6 {
		t.Errorf("rows after checkpoint+wal recovery = %d, want 6", n)
	}
}

// TestCheckpointSnapshotAloneRecoversAcknowledged pins the durability
// contract of Checkpoint: the snapshot is fsynced into place BEFORE the WAL
// is truncated, so in the worst crash window — WAL already gone, snapshot
// the only artifact — every acknowledged write must come back from the
// snapshot alone.
func TestCheckpointSnapshotAloneRecoversAcknowledged(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(unitsSchema()); err != nil {
		t.Fatal(err)
	}
	seedUnits(t, db, 7)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	// Simulate the crash right after the WAL truncation: only the snapshot
	// survives.
	if err := os.Remove(filepath.Join(dir, walFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile+".tmp")); !os.IsNotExist(err) {
		t.Fatal("checkpoint left a stale snapshot temp file")
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	n, err := db2.Count("units")
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("snapshot-only recovery lost acknowledged rows: %d, want 7", n)
	}
}

func TestTornWALTailTolerated(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir)
	db.CreateTable(unitsSchema())
	seedUnits(t, db, 3)
	db.Close()
	// Append garbage (torn write).
	f, err := os.OpenFile(filepath.Join(dir, "wal.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":999,"op":"upsert","table":"uni`)
	f.Close()
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail broke open: %v", err)
	}
	defer db2.Close()
	n, _ := db2.Count("units")
	if n != 3 {
		t.Errorf("rows = %d, want 3", n)
	}
}

func TestReplicaSyncAndRestore(t *testing.T) {
	srcDir := t.TempDir()
	backupDir := t.TempDir()
	restoreDir := t.TempDir()

	db, _ := Open(srcDir)
	db.CreateTable(unitsSchema())
	seedUnits(t, db, 6)
	db.Checkpoint()
	db.Upsert("units", Row{"uuid": "late", "user": "tail"})

	rep := &Replica{DB: db, Dir: backupDir}
	if err := rep.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if rep.Syncs() != 1 {
		t.Error("sync count")
	}

	restored, err := Restore(backupDir, restoreDir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer restored.Close()
	n, _ := restored.Count("units")
	if n != 7 {
		t.Errorf("restored rows = %d, want 7 (snapshot + wal tail)", n)
	}
	row, ok, _ := restored.Get("units", "late")
	if !ok || row["user"].(string) != "tail" {
		t.Errorf("wal-tail row missing: %v", row)
	}
	db.Close()
}

func TestReplicaMemoryStoreRejected(t *testing.T) {
	db, _ := Open("")
	rep := &Replica{DB: db, Dir: t.TempDir()}
	if err := rep.Sync(); err == nil {
		t.Error("memory-store replication accepted")
	}
}

// Property: Upsert→Get round-trips typed values exactly.
func TestUpsertGetProperty(t *testing.T) {
	db := openMem(t)
	f := func(id string, cpus int64, energy float64, run bool) bool {
		if id == "" {
			return true
		}
		row := Row{"uuid": id, "cpus": cpus, "energy_j": energy, "running": run}
		if db.Upsert("units", row) != nil {
			return false
		}
		got, ok, err := db.Get("units", id)
		if err != nil || !ok {
			return false
		}
		if got["cpus"].(int64) != cpus || got["running"].(bool) != run {
			return false
		}
		ge := got["energy_j"].(float64)
		return ge == energy || (ge != ge && energy != energy) // NaN-safe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Select with an indexed equality equals a full-scan filter.
func TestIndexEquivalenceProperty(t *testing.T) {
	db := openMem(t)
	seedUnits(t, db, 50)
	f := func(u uint8) bool {
		user := fmt.Sprintf("user%d", u%6)
		indexed, err := db.Select("units", Query{Where: []Cond{{"user", OpEq, user}}})
		if err != nil {
			return false
		}
		// Full scan: inequality condition first prevents index use.
		scanned, err := db.Select("units", Query{Where: []Cond{
			{"cpus", OpGt, int64(-1)}, {"user", OpEq, user}}})
		if err != nil {
			return false
		}
		return reflect.DeepEqual(indexed, scanned)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUpsert(b *testing.B) {
	db, _ := Open("")
	db.CreateTable(unitsSchema())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Upsert("units", Row{
			"uuid": fmt.Sprintf("u%d", i%10000), "user": "u", "cpus": int64(i),
		})
	}
}

func BenchmarkSelectIndexed(b *testing.B) {
	db, _ := Open("")
	db.CreateTable(unitsSchema())
	for i := 0; i < 10000; i++ {
		db.Upsert("units", Row{
			"uuid": fmt.Sprintf("u%d", i), "user": fmt.Sprintf("user%d", i%100),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Select("units", Query{Where: []Cond{{"user", OpEq, "user42"}}})
	}
}
