package sysfs

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMemFSReadWrite(t *testing.T) {
	fs := NewMemFS()
	fs.WriteString("/a/b/c.txt", "hello")
	data, err := fs.ReadFile("/a/b/c.txt")
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	// Path cleaning.
	data, err = fs.ReadFile("a/b/../b/c.txt")
	if err != nil || string(data) != "hello" {
		t.Errorf("cleaned path read failed: %v", err)
	}
	if _, err := fs.ReadFile("/missing"); !os.IsNotExist(err) {
		t.Errorf("missing file error = %v", err)
	}
}

func TestMemFSOverwrite(t *testing.T) {
	fs := NewMemFS()
	fs.WriteString("/f", "1")
	fs.WriteString("/f", "2")
	data, _ := fs.ReadFile("/f")
	if string(data) != "2" {
		t.Errorf("overwrite failed: %q", data)
	}
	if fs.Len() != 1 {
		t.Errorf("Len = %d", fs.Len())
	}
}

func TestMemFSReadDir(t *testing.T) {
	fs := NewMemFS()
	fs.WriteString("/sys/fs/cgroup/job_1/cpu.stat", "x")
	fs.WriteString("/sys/fs/cgroup/job_2/cpu.stat", "x")
	fs.WriteString("/sys/fs/cgroup/job_2/memory.current", "x")
	fs.WriteString("/sys/fs/cgroup/top.txt", "x")
	names, err := fs.ReadDir("/sys/fs/cgroup")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	want := []string{"job_1", "job_2", "top.txt"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("ReadDir = %v, want %v", names, want)
	}
	if _, err := fs.ReadDir("/nope"); !os.IsNotExist(err) {
		t.Errorf("ReadDir missing error = %v", err)
	}
}

func TestMemFSExists(t *testing.T) {
	fs := NewMemFS()
	fs.WriteString("/d/e/f", "x")
	if !fs.Exists("/d/e/f") {
		t.Error("file should exist")
	}
	if !fs.Exists("/d/e") || !fs.Exists("/d") {
		t.Error("directory prefixes should exist")
	}
	if fs.Exists("/d/e/g") {
		t.Error("missing file exists")
	}
}

func TestMemFSRemove(t *testing.T) {
	fs := NewMemFS()
	fs.WriteString("/a/1", "x")
	fs.WriteString("/a/2", "x")
	fs.WriteString("/b/1", "x")
	fs.Remove("/a/1")
	if fs.Exists("/a/1") {
		t.Error("Remove failed")
	}
	fs.RemoveAll("/a")
	if fs.Exists("/a/2") || fs.Exists("/a") {
		t.Error("RemoveAll failed")
	}
	if !fs.Exists("/b/1") {
		t.Error("RemoveAll removed too much")
	}
}

func TestReadUint64(t *testing.T) {
	fs := NewMemFS()
	fs.WriteString("/v", "12345\n")
	v, err := ReadUint64(fs, "/v")
	if err != nil || v != 12345 {
		t.Errorf("ReadUint64 = %d, %v", v, err)
	}
	fs.WriteString("/bad", "not a number\n")
	if _, err := ReadUint64(fs, "/bad"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ReadUint64(fs, "/missing"); err == nil {
		t.Error("expected not-exist error")
	}
}

func TestReadKVFile(t *testing.T) {
	fs := NewMemFS()
	fs.WriteString("/cpu.stat", "usage_usec 100\nuser_usec 80\nsystem_usec 20\nweird line here\n")
	kv, err := ReadKVFile(fs, "/cpu.stat")
	if err != nil {
		t.Fatal(err)
	}
	if kv["usage_usec"] != 100 || kv["user_usec"] != 80 {
		t.Errorf("kv = %v", kv)
	}
	if _, ok := kv["weird"]; ok {
		t.Error("malformed line parsed")
	}
}

func TestOSFS(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "sys", "test")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "value"), []byte("42\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := OSFS{Root: dir}
	v, err := ReadUint64(fs, "/sys/test/value")
	if err != nil || v != 42 {
		t.Errorf("OSFS ReadUint64 = %d, %v", v, err)
	}
	names, err := fs.ReadDir("/sys/test")
	if err != nil || len(names) != 1 || names[0] != "value" {
		t.Errorf("OSFS ReadDir = %v, %v", names, err)
	}
	if !fs.Exists("/sys/test/value") || fs.Exists("/sys/nope") {
		t.Error("OSFS Exists wrong")
	}
}

// Property: what you write is what you read, for arbitrary path-safe names
// and contents.
func TestWriteReadProperty(t *testing.T) {
	f := func(name string, content []byte) bool {
		if name == "" {
			return true
		}
		// Normalize into a safe single segment.
		safe := "/p/"
		for _, r := range name {
			if r == '/' || r == 0 {
				r = '_'
			}
			safe += string(r)
		}
		if safe == "/p/" || safe == "/p/." || safe == "/p/.." {
			return true
		}
		fs := NewMemFS()
		fs.WriteFile(safe, content)
		got, err := fs.ReadFile(safe)
		return err == nil && reflect.DeepEqual(got, append([]byte(nil), content...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
