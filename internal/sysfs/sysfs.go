// Package sysfs provides the pseudo-filesystem abstraction the CEEMS
// exporter collectors read from. On a real node the collectors walk /proc,
// /sys and /sys/fs/cgroup; in this repository the hardware and resource-
// manager simulators write the same file layout into an in-memory FS and
// the collectors are none the wiser. An OS-backed implementation is
// provided for completeness so the same collectors could run against real
// kernel files.
package sysfs

import (
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// FS is the interface collectors use. Paths are slash-separated and
// absolute ("/sys/fs/cgroup/...").
type FS interface {
	// ReadFile returns the file contents.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the immediate children (names only, sorted) of dir.
	ReadDir(dir string) ([]string, error)
	// Exists reports whether a file or directory exists.
	Exists(name string) bool
}

// WritableFS extends FS with mutation, used by the simulators.
type WritableFS interface {
	FS
	// WriteFile creates or replaces a file, creating parents implicitly.
	WriteFile(name string, data []byte)
	// Remove deletes a file.
	Remove(name string)
	// RemoveAll deletes every file under prefix.
	RemoveAll(prefix string)
}

// MemFS is an in-memory WritableFS, safe for concurrent use.
type MemFS struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

func clean(name string) string {
	return path.Clean("/" + strings.TrimPrefix(name, "/"))
}

// WriteFile creates or replaces a file.
func (m *MemFS) WriteFile(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[clean(name)] = append([]byte(nil), data...)
}

// WriteString is WriteFile for string content.
func (m *MemFS) WriteString(name, data string) { m.WriteFile(name, []byte(data)) }

// ReadFile returns a copy of the file contents.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[clean(name)]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), data...), nil
}

// ReadDir lists immediate children of dir: both files and implied
// subdirectories.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	d := clean(dir)
	prefix := d
	if prefix != "/" {
		prefix += "/"
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	seen := map[string]bool{}
	for p := range m.files {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := p[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		seen[rest] = true
	}
	if len(seen) == 0 {
		return nil, &os.PathError{Op: "readdir", Path: dir, Err: os.ErrNotExist}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// Exists reports whether name is a file or a directory prefix.
func (m *MemFS) Exists(name string) bool {
	n := clean(name)
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.files[n]; ok {
		return true
	}
	prefix := n + "/"
	for p := range m.files {
		if strings.HasPrefix(p, prefix) {
			return true
		}
	}
	return false
}

// Remove deletes one file (no error if absent).
func (m *MemFS) Remove(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, clean(name))
}

// RemoveAll deletes every file under prefix (and the exact path itself).
func (m *MemFS) RemoveAll(prefix string) {
	p := clean(prefix)
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, p)
	pre := p + "/"
	for f := range m.files {
		if strings.HasPrefix(f, pre) {
			delete(m.files, f)
		}
	}
}

// Len returns the number of files (for tests/diagnostics).
func (m *MemFS) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.files)
}

// OSFS reads the real operating-system filesystem rooted at Root ("" means
// /). It implements FS only; the kernel owns writes.
type OSFS struct {
	Root string
}

// ReadFile reads from the host filesystem.
func (o OSFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(o.Root + clean(name))
}

// ReadDir lists a host directory.
func (o OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(o.Root + clean(dir))
	if err != nil {
		return nil, err
	}
	out := make([]string, len(ents))
	for i, e := range ents {
		out[i] = e.Name()
	}
	return out, nil
}

// Exists checks the host filesystem.
func (o OSFS) Exists(name string) bool {
	_, err := os.Stat(o.Root + clean(name))
	return err == nil
}

// ReadUint64 reads a file containing a single decimal integer (the common
// shape of sysfs/cgroup files).
func ReadUint64(fs FS, name string) (uint64, error) {
	data, err := fs.ReadFile(name)
	if err != nil {
		return 0, err
	}
	s := strings.TrimSpace(string(data))
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sysfs: %s: bad integer %q: %w", name, s, err)
	}
	return v, nil
}

// ReadKVFile parses files of "key value" lines (cpu.stat, memory.stat).
func ReadKVFile(fs FS, name string) (map[string]uint64, error) {
	data, err := fs.ReadFile(name)
	if err != nil {
		return nil, err
	}
	out := map[string]uint64{}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, nil
}
