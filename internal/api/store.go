// Package api implements the CEEMS API server (paper §II.B.b): it
// periodically fetches compute units from the resource managers, estimates
// their aggregate metrics by querying the TSDB, stores everything in a
// relational DB under a unified schema, serves the REST API Grafana and
// the load balancer consume, and cleans up TSDB series of short-lived
// units to bound cardinality.
package api

import (
	"encoding/json"
	"fmt"

	"repro/internal/model"
	"repro/internal/relstore"
)

// Table names of the unified schema.
const (
	TableUnits    = "units"
	TableUsers    = "users"
	TableProjects = "projects"
	TableAdmins   = "admin_users"
)

// Schemas returns the unified DB schema for compute units of any resource
// manager plus user/project rollups.
func Schemas() []relstore.Schema {
	return []relstore.Schema{
		{
			Name: TableUnits,
			Columns: []relstore.Column{
				{Name: "uuid", Type: relstore.ColText}, // cluster/manager/id
				{Name: "id", Type: relstore.ColText},
				{Name: "cluster", Type: relstore.ColText},
				{Name: "manager", Type: relstore.ColText},
				{Name: "name", Type: relstore.ColText},
				{Name: "user", Type: relstore.ColText},
				{Name: "project", Type: relstore.ColText},
				{Name: "partition", Type: relstore.ColText},
				{Name: "state", Type: relstore.ColText},
				{Name: "created_at", Type: relstore.ColInt},
				{Name: "started_at", Type: relstore.ColInt},
				{Name: "ended_at", Type: relstore.ColInt},
				{Name: "elapsed_sec", Type: relstore.ColInt},
				{Name: "cpus", Type: relstore.ColInt},
				{Name: "memory_bytes", Type: relstore.ColInt},
				{Name: "gpus", Type: relstore.ColInt},
				{Name: "gpu_ordinals", Type: relstore.ColText}, // JSON array
				{Name: "nodes", Type: relstore.ColText},        // JSON array
				{Name: "exit_code", Type: relstore.ColInt},
				{Name: "avg_cpu_usage", Type: relstore.ColFloat},
				{Name: "avg_cpu_mem_usage", Type: relstore.ColFloat},
				{Name: "avg_gpu_usage", Type: relstore.ColFloat},
				{Name: "cpu_time_sec", Type: relstore.ColFloat},
				{Name: "host_energy_j", Type: relstore.ColFloat},
				{Name: "gpu_energy_j", Type: relstore.ColFloat},
				{Name: "total_energy_j", Type: relstore.ColFloat},
				{Name: "emissions_g", Type: relstore.ColFloat},
				{Name: "num_samples", Type: relstore.ColInt},
			},
			PrimaryKey: "uuid",
			Indexes:    []string{"user", "project", "cluster", "state"},
		},
		{
			Name: TableUsers,
			Columns: []relstore.Column{
				{Name: "key", Type: relstore.ColText}, // cluster/user
				{Name: "cluster", Type: relstore.ColText},
				{Name: "user", Type: relstore.ColText},
				{Name: "num_units", Type: relstore.ColInt},
				{Name: "cpu_time_sec", Type: relstore.ColFloat},
				{Name: "avg_cpu_usage", Type: relstore.ColFloat},
				{Name: "avg_gpu_usage", Type: relstore.ColFloat},
				{Name: "total_energy_j", Type: relstore.ColFloat},
				{Name: "emissions_g", Type: relstore.ColFloat},
				{Name: "num_samples", Type: relstore.ColInt},
			},
			PrimaryKey: "key",
			Indexes:    []string{"cluster", "user"},
		},
		{
			Name: TableProjects,
			Columns: []relstore.Column{
				{Name: "key", Type: relstore.ColText}, // cluster/project
				{Name: "cluster", Type: relstore.ColText},
				{Name: "project", Type: relstore.ColText},
				{Name: "num_units", Type: relstore.ColInt},
				{Name: "cpu_time_sec", Type: relstore.ColFloat},
				{Name: "total_energy_j", Type: relstore.ColFloat},
				{Name: "emissions_g", Type: relstore.ColFloat},
				{Name: "num_samples", Type: relstore.ColInt},
			},
			PrimaryKey: "key",
			Indexes:    []string{"cluster", "project"},
		},
		{
			Name: TableAdmins,
			Columns: []relstore.Column{
				{Name: "user", Type: relstore.ColText},
			},
			PrimaryKey: "user",
		},
	}
}

// unitToRow converts a compute unit to its DB row.
func unitToRow(u model.Unit) relstore.Row {
	ords, _ := json.Marshal(u.GPUOrdinals)
	nodes, _ := json.Marshal(u.Nodes)
	return relstore.Row{
		"uuid": u.UUID, "id": u.ID, "cluster": u.Cluster,
		"manager": string(u.Manager), "name": u.Name,
		"user": u.User, "project": u.Project, "partition": u.Partition,
		"state": string(u.State), "created_at": u.CreatedAt,
		"started_at": u.StartedAt, "ended_at": u.EndedAt,
		"elapsed_sec": u.ElapsedSec, "cpus": int64(u.CPUs),
		"memory_bytes": u.MemoryBytes, "gpus": int64(u.GPUs),
		"gpu_ordinals": string(ords), "nodes": string(nodes),
		"exit_code":         int64(u.ExitCode),
		"avg_cpu_usage":     u.Aggregate.AvgCPUUsage,
		"avg_cpu_mem_usage": u.Aggregate.AvgCPUMemUsage,
		"avg_gpu_usage":     u.Aggregate.AvgGPUUsage,
		"cpu_time_sec":      u.Aggregate.CPUTimeSec,
		"host_energy_j":     u.Aggregate.HostEnergyJoules,
		"gpu_energy_j":      u.Aggregate.GPUEnergyJoules,
		"total_energy_j":    u.Aggregate.TotalEnergyJoules,
		"emissions_g":       u.Aggregate.EmissionsGrams,
		"num_samples":       u.Aggregate.NumSamples,
	}
}

// rowToUnit converts a DB row back to a compute unit.
func rowToUnit(r relstore.Row) model.Unit {
	var ords []int
	var nodes []string
	if s, ok := r["gpu_ordinals"].(string); ok && s != "" {
		json.Unmarshal([]byte(s), &ords)
	}
	if s, ok := r["nodes"].(string); ok && s != "" {
		json.Unmarshal([]byte(s), &nodes)
	}
	return model.Unit{
		UUID:        str(r, "uuid"),
		ID:          str(r, "id"),
		Cluster:     str(r, "cluster"),
		Manager:     model.ResourceManager(str(r, "manager")),
		Name:        str(r, "name"),
		User:        str(r, "user"),
		Project:     str(r, "project"),
		Partition:   str(r, "partition"),
		State:       model.UnitState(str(r, "state")),
		CreatedAt:   i64(r, "created_at"),
		StartedAt:   i64(r, "started_at"),
		EndedAt:     i64(r, "ended_at"),
		ElapsedSec:  i64(r, "elapsed_sec"),
		CPUs:        int(i64(r, "cpus")),
		MemoryBytes: i64(r, "memory_bytes"),
		GPUs:        int(i64(r, "gpus")),
		GPUOrdinals: ords,
		Nodes:       nodes,
		ExitCode:    int(i64(r, "exit_code")),
		Aggregate: model.UsageAggregate{
			AvgCPUUsage:       f64(r, "avg_cpu_usage"),
			AvgCPUMemUsage:    f64(r, "avg_cpu_mem_usage"),
			AvgGPUUsage:       f64(r, "avg_gpu_usage"),
			CPUTimeSec:        f64(r, "cpu_time_sec"),
			HostEnergyJoules:  f64(r, "host_energy_j"),
			GPUEnergyJoules:   f64(r, "gpu_energy_j"),
			TotalEnergyJoules: f64(r, "total_energy_j"),
			EmissionsGrams:    f64(r, "emissions_g"),
			NumSamples:        i64(r, "num_samples"),
		},
	}
}

func str(r relstore.Row, k string) string {
	v, _ := r[k].(string)
	return v
}

func i64(r relstore.Row, k string) int64 {
	v, _ := r[k].(int64)
	return v
}

func f64(r relstore.Row, k string) float64 {
	v, _ := r[k].(float64)
	return v
}

func userKey(cluster, user string) string       { return fmt.Sprintf("%s/%s", cluster, user) }
func projectKey(cluster, project string) string { return fmt.Sprintf("%s/%s", cluster, project) }
