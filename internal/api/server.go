package api

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/model"
	"repro/internal/relstore"
)

// Server exposes the CEEMS API server's REST endpoints. Endpoints follow
// the real server's API: units, users, projects and usage listings, plus
// the ownership-verification endpoint the load balancer calls when it
// cannot read the DB file directly.
//
//	GET /api/v1/units?cluster=&user=&project=&state=&from=&to=&limit=&offset=
//	GET /api/v1/users?cluster=
//	GET /api/v1/projects?cluster=
//	GET /api/v1/units/verify?user=<u>&uuid=<cluster/manager/id or bare id>
//	GET /api/v1/health
//
// The requesting identity arrives in the X-Grafana-User header; ordinary
// users can only list their own units while admins see everything (paper
// §II.B.c).
type Server struct {
	Store *relstore.DB
	// Updater, when set, exposes its stats on /api/v1/health.
	Updater *Updater
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/units", s.handleUnits)
	mux.HandleFunc("/api/v1/units/verify", s.handleVerify)
	mux.HandleFunc("/api/v1/users", s.handleUsers)
	mux.HandleFunc("/api/v1/projects", s.handleProjects)
	mux.HandleFunc("/api/v1/health", s.handleHealth)
	return mux
}

// IsAdmin reports whether the user is in the admin table.
func (s *Server) IsAdmin(user string) bool {
	if user == "" {
		return false
	}
	_, ok, err := s.Store.Get(TableAdmins, user)
	return err == nil && ok
}

// AddAdmin registers an administrator.
func (s *Server) AddAdmin(user string) error {
	return s.Store.Upsert(TableAdmins, relstore.Row{"user": user})
}

// OwnsUnit reports whether the user owns the unit identified by uuid. The
// uuid may be the full cluster/manager/id key or a bare manager-native ID
// (as extracted from a PromQL query by the LB); bare IDs match any cluster.
func (s *Server) OwnsUnit(user, uuid string) (bool, error) {
	if row, ok, err := s.Store.Get(TableUnits, uuid); err != nil {
		return false, err
	} else if ok {
		return rowToUnit(row).User == user, nil
	}
	// Bare ID: search by the id column.
	rows, err := s.Store.Select(TableUnits, relstore.Query{
		Where: []relstore.Cond{{Col: "id", Op: relstore.OpEq, Val: uuid}},
	})
	if err != nil {
		return false, err
	}
	if len(rows) == 0 {
		return false, nil
	}
	for _, r := range rows {
		if rowToUnit(r).User != user {
			return false, nil
		}
	}
	return true, nil
}

func requestUser(r *http.Request) string { return r.Header.Get("X-Grafana-User") }

func (s *Server) handleUnits(w http.ResponseWriter, r *http.Request) {
	q := relstore.Query{OrderBy: "created_at", Desc: true}
	user := requestUser(r)
	qs := r.URL.Query()

	// Non-admins are forced onto their own units.
	if !s.IsAdmin(user) {
		if user == "" {
			http.Error(w, "missing X-Grafana-User", http.StatusUnauthorized)
			return
		}
		q.Where = append(q.Where, relstore.Cond{Col: "user", Op: relstore.OpEq, Val: user})
	} else if v := qs.Get("user"); v != "" {
		q.Where = append(q.Where, relstore.Cond{Col: "user", Op: relstore.OpEq, Val: v})
	}
	for _, col := range []string{"cluster", "project", "state"} {
		if v := qs.Get(col); v != "" {
			q.Where = append(q.Where, relstore.Cond{Col: col, Op: relstore.OpEq, Val: v})
		}
	}
	if v := qs.Get("from"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad from", http.StatusBadRequest)
			return
		}
		q.Where = append(q.Where, relstore.Cond{Col: "created_at", Op: relstore.OpGe, Val: ms})
	}
	if v := qs.Get("to"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad to", http.StatusBadRequest)
			return
		}
		q.Where = append(q.Where, relstore.Cond{Col: "created_at", Op: relstore.OpLe, Val: ms})
	}
	q.Limit = atoiDefault(qs.Get("limit"), 1000)
	q.Offset = atoiDefault(qs.Get("offset"), 0)

	rows, err := s.Store.Select(TableUnits, q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	units := make([]model.Unit, len(rows))
	for i, row := range rows {
		units[i] = rowToUnit(row)
	}
	writeJSON(w, units)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	uuid := r.URL.Query().Get("uuid")
	if user == "" || uuid == "" {
		http.Error(w, "user and uuid required", http.StatusBadRequest)
		return
	}
	if s.IsAdmin(user) {
		writeJSON(w, map[string]bool{"owns": true})
		return
	}
	owns, err := s.OwnsUnit(user, uuid)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !owns {
		w.WriteHeader(http.StatusForbidden)
	}
	writeJSON(w, map[string]bool{"owns": owns})
}

func (s *Server) handleUsers(w http.ResponseWriter, r *http.Request) {
	s.handleRollup(w, r, TableUsers, "user")
}

func (s *Server) handleProjects(w http.ResponseWriter, r *http.Request) {
	s.handleRollup(w, r, TableProjects, "project")
}

func (s *Server) handleRollup(w http.ResponseWriter, r *http.Request, table, selfCol string) {
	q := relstore.Query{OrderBy: "total_energy_j", Desc: true}
	user := requestUser(r)
	admin := s.IsAdmin(user)
	if !admin {
		if user == "" {
			http.Error(w, "missing X-Grafana-User", http.StatusUnauthorized)
			return
		}
		if table == TableUsers {
			q.Where = append(q.Where, relstore.Cond{Col: "user", Op: relstore.OpEq, Val: user})
		}
		// Project rollups: a user may query projects they have units in;
		// for simplicity non-admins see projects of their own units.
	}
	if v := r.URL.Query().Get("cluster"); v != "" {
		q.Where = append(q.Where, relstore.Cond{Col: "cluster", Op: relstore.OpEq, Val: v})
	}
	rows, err := s.Store.Select(table, q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if table == TableProjects && !admin {
		rows = s.filterProjectsFor(user, rows)
	}
	writeJSON(w, rows)
}

// filterProjectsFor keeps only projects in which the user has units.
func (s *Server) filterProjectsFor(user string, rows []relstore.Row) []relstore.Row {
	mine, err := s.Store.Select(TableUnits, relstore.Query{
		Where: []relstore.Cond{{Col: "user", Op: relstore.OpEq, Val: user}},
	})
	if err != nil {
		return nil
	}
	member := map[string]bool{}
	for _, r := range mine {
		member[projectKey(str(r, "cluster"), str(r, "project"))] = true
	}
	out := rows[:0]
	for _, r := range rows {
		if member[str(r, "key")] {
			out = append(out, r)
		}
	}
	return out
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{"status": "ok", "tables": s.Store.Tables()}
	if s.Updater != nil {
		resp["units_seen"] = s.Updater.UnitsSeen
		resp["series_deleted"] = s.Updater.SeriesDeleted
		resp["updates"] = s.Updater.UpdatesApplied
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}

// RunPeriodic drives the updater and optional backup on intervals until
// ctx is cancelled (the production loop; simulations call Update/Sync
// directly with virtual clocks).
func RunPeriodic(ctx context.Context, u *Updater, interval time.Duration, backup func() error) {
	if interval <= 0 {
		interval = time.Minute
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			u.Update(ctx, time.Now())
			if backup != nil {
				backup()
			}
		}
	}
}
