package api

import (
	"context"
	"fmt"
	"time"

	"repro/internal/emissions"
	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
	"repro/internal/relstore"
	"repro/internal/resourcemanager"
)

// SeriesDeleter deletes matching series from a metrics store; it is the
// "Clean TSDB" edge of Fig. 1 (tsdb.DB implements it).
type SeriesDeleter interface {
	DeleteSeries(ms ...*labels.Matcher) int
}

// Updater implements the API server's periodic aggregation pass: fetch the
// unit list from every resource manager, estimate each unit's aggregate
// metrics from TSDB queries over the window since the previous pass, merge
// them into the DB, roll up users and projects, and optionally clean the
// TSDB of short-lived units (the "Clean TSDB" arrow in Fig. 1).
type Updater struct {
	Store    *relstore.DB
	Fetchers []resourcemanager.Fetcher
	// Query is the metrics source: the hot TSDB or the Thanos fan-in.
	Query  promql.Queryable
	Engine *promql.Engine
	// Factor converts energy to emissions; nil skips emissions.
	Factor emissions.Provider
	// Zone is the grid zone for emission factors (e.g. "FR").
	Zone string
	// ShortUnitCutoff: terminated units with less runtime than this get
	// their TSDB series deleted to reduce cardinality; 0 disables.
	ShortUnitCutoff time.Duration
	// Cleaner is the TSDB to clean; nil disables cleanup. *tsdb.DB
	// satisfies it, fanning the deletion across head shards.
	Cleaner SeriesDeleter

	lastUpdate time.Time
	// Stats.
	UnitsSeen      int64
	SeriesDeleted  int64
	UpdatesApplied int64
}

// Update runs one aggregation pass at the given (simulated or wall) time.
func (u *Updater) Update(ctx context.Context, now time.Time) error {
	if u.Engine == nil {
		u.Engine = promql.NewEngine()
	}
	windowStart := u.lastUpdate
	if windowStart.IsZero() {
		windowStart = now.Add(-time.Hour)
	}
	var firstErr error
	for _, f := range u.Fetchers {
		units, err := f.FetchUnits(ctx, windowStart.Add(-time.Minute))
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("api: fetch %s: %w", f.ClusterID(), err)
			}
			continue
		}
		for _, unit := range units {
			u.UnitsSeen++
			if err := u.updateUnit(ctx, unit, windowStart, now); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := u.rollup(); err != nil && firstErr == nil {
		firstErr = err
	}
	u.lastUpdate = now
	u.UpdatesApplied++
	return firstErr
}

// updateUnit merges the unit's metadata and the aggregate increment for
// the [windowStart, now] window into the store.
func (u *Updater) updateUnit(ctx context.Context, unit model.Unit, windowStart, now time.Time) error {
	// Preserve previously accumulated aggregates.
	prev, found, err := u.Store.Get(TableUnits, unit.UUID)
	if err != nil {
		return err
	}
	var agg model.UsageAggregate
	if found {
		agg = rowToUnit(prev).Aggregate
	}

	// Clamp the query window to the unit's lifetime.
	qStart := windowStart
	if s := time.UnixMilli(unit.StartedAt); unit.StartedAt > 0 && s.After(qStart) {
		qStart = s
	}
	qEnd := now
	if e := time.UnixMilli(unit.EndedAt); unit.EndedAt > 0 && e.Before(qEnd) {
		qEnd = e
	}
	if unit.StartedAt > 0 && qEnd.After(qStart) {
		inc, err := u.queryIncrement(ctx, unit, qStart, qEnd)
		if err != nil {
			return err
		}
		agg.Merge(inc)
	}
	unit.Aggregate = agg

	if err := u.Store.Upsert(TableUnits, unitToRow(unit)); err != nil {
		return err
	}

	// Cardinality cleanup: short-lived terminated units lose their TSDB
	// series once their aggregates are safely in the DB.
	if u.Cleaner != nil && u.ShortUnitCutoff > 0 && unit.State.Terminated() &&
		unit.ElapsedSec < int64(u.ShortUnitCutoff.Seconds()) {
		n := u.Cleaner.DeleteSeries(
			labels.MustMatcher(labels.MatchEqual, "uuid", unit.ID),
			labels.MustMatcher(labels.MatchEqual, "cluster", unit.Cluster),
		)
		u.SeriesDeleted += int64(n)
	}
	return nil
}

// queryIncrement estimates the unit's usage over one window from TSDB.
func (u *Updater) queryIncrement(ctx context.Context, unit model.Unit, qStart, qEnd time.Time) (model.UsageAggregate, error) {
	var inc model.UsageAggregate
	win := qEnd.Sub(qStart)
	winSec := win.Seconds()
	winStr := fmt.Sprintf("%dms", win.Milliseconds())
	sel := fmt.Sprintf(`{uuid=%q,cluster=%q}`, unit.ID, unit.Cluster)

	scalarQ := func(q string) (float64, bool) {
		v, err := u.Engine.Instant(u.Query, q, qEnd)
		if err != nil {
			return 0, false
		}
		vec, ok := v.(promql.Vector)
		if !ok || len(vec) == 0 {
			return 0, false
		}
		s := 0.0
		for _, smp := range vec {
			s += smp.V
		}
		return s, true
	}

	// Host and total power averages over the window → energy increments.
	hostW, _ := scalarQ(fmt.Sprintf(`avg_over_time({__name__=~"uuid:host_watts:.+",uuid=%q,cluster=%q}[%s])`, unit.ID, unit.Cluster, winStr))
	totalW, haveTotal := scalarQ(fmt.Sprintf(`avg_over_time({__name__=~"uuid:total_watts:.+",uuid=%q,cluster=%q}[%s])`, unit.ID, unit.Cluster, winStr))
	if !haveTotal {
		totalW = hostW
	}
	inc.HostEnergyJoules = hostW * winSec
	inc.TotalEnergyJoules = totalW * winSec
	inc.GPUEnergyJoules = (totalW - hostW) * winSec
	if inc.GPUEnergyJoules < 0 {
		inc.GPUEnergyJoules = 0
	}

	// CPU time and utilization of the allocation.
	cpuTime, _ := scalarQ(fmt.Sprintf(`increase(ceems_compute_unit_cpu_usage_seconds_total%s[%s])`, sel, winStr))
	inc.CPUTimeSec = cpuTime
	if unit.CPUs > 0 && winSec > 0 {
		inc.AvgCPUUsage = cpuTime / (winSec * float64(unit.CPUs))
	}
	// Memory utilization fraction of the limit.
	memUsed, _ := scalarQ(fmt.Sprintf(`avg_over_time(ceems_compute_unit_memory_used_bytes%s[%s])`, sel, winStr))
	if unit.MemoryBytes > 0 {
		inc.AvgCPUMemUsage = memUsed / float64(unit.MemoryBytes)
	}
	// GPU utilization via the per-unit util rule when present.
	gpuUtil, haveGPU := scalarQ(fmt.Sprintf(`avg_over_time({__name__=~"uuid:gpu_util_percent:.+",uuid=%q,cluster=%q}[%s])`, unit.ID, unit.Cluster, winStr))
	if haveGPU && unit.GPUs > 0 {
		inc.AvgGPUUsage = gpuUtil / 100 / float64(unit.GPUs)
	}
	// Sample count for weighted merging.
	nsamp, _ := scalarQ(fmt.Sprintf(`count_over_time({__name__=~"uuid:host_watts:.+",uuid=%q,cluster=%q}[%s])`, unit.ID, unit.Cluster, winStr))
	inc.NumSamples = int64(nsamp)
	if inc.NumSamples == 0 && inc.TotalEnergyJoules > 0 {
		inc.NumSamples = 1
	}

	// Emissions for this window's energy.
	if u.Factor != nil && inc.TotalEnergyJoules > 0 {
		f, err := u.Factor.Factor(ctx, u.Zone)
		if err == nil {
			inc.EmissionsGrams = f.Grams(inc.TotalEnergyJoules)
		}
	}
	return inc, nil
}

// rollup recomputes the user and project tables from the units table.
func (u *Updater) rollup() error {
	units, err := u.Store.Select(TableUnits, relstore.Query{})
	if err != nil {
		return err
	}
	type acc struct {
		n   int64
		agg model.UsageAggregate
	}
	users := map[string]*acc{}
	projects := map[string]*acc{}
	meta := map[string][2]string{} // key -> (cluster, name)
	for _, row := range units {
		unit := rowToUnit(row)
		uk := userKey(unit.Cluster, unit.User)
		pk := projectKey(unit.Cluster, unit.Project)
		for _, e := range []struct {
			m   map[string]*acc
			key string
			nm  string
		}{{users, uk, unit.User}, {projects, pk, unit.Project}} {
			a, ok := e.m[e.key]
			if !ok {
				a = &acc{}
				e.m[e.key] = a
				meta[e.key] = [2]string{unit.Cluster, e.nm}
			}
			a.n++
			a.agg.Merge(unit.Aggregate)
		}
	}
	for key, a := range users {
		m := meta[key]
		err := u.Store.Upsert(TableUsers, relstore.Row{
			"key": key, "cluster": m[0], "user": m[1],
			"num_units": a.n, "cpu_time_sec": a.agg.CPUTimeSec,
			"avg_cpu_usage": a.agg.AvgCPUUsage, "avg_gpu_usage": a.agg.AvgGPUUsage,
			"total_energy_j": a.agg.TotalEnergyJoules, "emissions_g": a.agg.EmissionsGrams,
			"num_samples": a.agg.NumSamples,
		})
		if err != nil {
			return err
		}
	}
	for key, a := range projects {
		m := meta[key]
		err := u.Store.Upsert(TableProjects, relstore.Row{
			"key": key, "cluster": m[0], "project": m[1],
			"num_units": a.n, "cpu_time_sec": a.agg.CPUTimeSec,
			"total_energy_j": a.agg.TotalEnergyJoules, "emissions_g": a.agg.EmissionsGrams,
			"num_samples": a.agg.NumSamples,
		})
		if err != nil {
			return err
		}
	}
	return nil
}
